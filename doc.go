// Package repro is a from-scratch Go reproduction of Morrison & Afek,
// "Fence-Free Work Stealing on Bounded TSO Processors" (ASPLOS 2014).
//
// The root package only anchors the module and the figure-level benchmark
// harness (bench_test.go); the system lives in the internal packages:
//
//   - internal/tso      — executable abstract TSO[S] machine (chaos and
//     timed engines) with the §7.3 drain-stage/coalescing model
//   - internal/core     — THE, FF-THE, THEP, Chase-Lev, FF-CL and the
//     idempotent queues, transcribed from Figures 2–5
//   - internal/sched    — the CilkPlus-equivalent work-stealing runtime
//   - internal/apps     — the Table 1 benchmark suite
//   - internal/graph    — the §8.2 transitive-closure/spanning-tree workloads
//   - internal/measure  — the Figure 6/7 store-buffer capacity measurement
//   - internal/litmus   — the Figure 8/9 TSO[S] litmus grid
//   - internal/expt     — drivers that regenerate every figure
//   - internal/native   — a real Go work-stealing library (Chase-Lev deque
//     and goroutine pool), the adoptable artifact
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
