// Command tsoserve runs the long-lived model-checking service: an HTTP
// daemon that accepts deque programs as jobs (POST /v1/jobs), shards each
// job's schedule frontier across a bounded worker pool, and serves
// results — including a replayable witness schedule when a job violates
// its spec — at GET /v1/jobs/{id}. Progress is checkpointed to a spool
// directory so a restarted server resumes unfinished jobs from where the
// previous process stopped; SIGTERM/SIGINT drain gracefully, spooling
// every in-flight frontier before exit.
//
// Usage:
//
//	tsoserve [-config FILE] [-listen ADDR] [-spool DIR] [-workers N] [-spool-codec binary|json] [-print-config]
//
// Flags override the config file. With -print-config the effective
// configuration is printed and the server does not start.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsoserve: ")
	cfgPath := flag.String("config", "", "JSON config file (see internal/serve.Config)")
	listen := flag.String("listen", "", "listen address (overrides the config file)")
	spool := flag.String("spool", "", "checkpoint spool directory (overrides the config file)")
	workers := flag.Int("workers", 0, "exploration workers (overrides the config file)")
	spoolCodec := flag.String("spool-codec", "", `checkpoint wire format for spool writes: "binary" (default) or "json" (legacy; reads accept both either way)`)
	printConfig := flag.Bool("print-config", false, "print the effective config and exit")
	flag.Parse()

	cfg := serve.DefaultConfig()
	if *cfgPath != "" {
		loaded, err := serve.LoadConfig(*cfgPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg = loaded
	}
	if *listen != "" {
		cfg.ListenAddr = *listen
	}
	if *spool != "" {
		cfg.SpoolDir = *spool
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *spoolCodec != "" {
		cfg.SpoolCodec = *spoolCodec
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	if *printConfig {
		fmt.Println(cfg.String())
		return
	}

	srv, err := serve.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Addr: cfg.ListenAddr, Handler: srv.Handler()}

	ctx, stop := serve.SignalDrain(context.Background())
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (spool %s, %d workers)", cfg.ListenAddr, cfg.SpoolDir, cfg.Workers)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Stop accepting connections, then drain: interrupt in-flight slices
	// at a run boundary and spool every unfinished frontier so the next
	// process resumes them.
	log.Print("draining: spooling unfinished jobs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Print(err)
	}
	srv.Drain()
	log.Print("drained")
}
