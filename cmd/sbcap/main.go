// Command sbcap regenerates Figures 6 and 7: the store-buffer capacity
// measurement. It sweeps store-sequence lengths on the simulated platform
// and reports the cycles-per-iteration curve, whose knee is the observable
// store-buffer capacity (33 on the Westmere-EX model, 43 on Haswell).
//
// Usage:
//
//	sbcap [-platform westmere|haswell] [-csv]
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sbcap: ")
	platform := flag.String("platform", "westmere", "machine model: westmere or haswell")
	csv := flag.Bool("csv", false, "emit the raw curve as CSV instead of a table")
	flag.Parse()

	var p expt.Platform
	switch *platform {
	case "westmere":
		p = expt.Westmere()
	case "haswell":
		p = expt.HaswellP()
	default:
		log.Fatalf("unknown -platform %q", *platform)
	}

	res, err := expt.Figure7(p)
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		expt.RenderCapacityCSV(os.Stdout, res.Points)
		return
	}
	expt.RenderFigure7(os.Stdout, res)
}
