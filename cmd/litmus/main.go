// Command litmus regenerates Figures 8 and 9: the TSO[S] litmus grid. It
// runs the Figure 9 program (worker and thief emptying an FF-THE queue)
// across the paper's (L, δ) sweep on the Westmere model, then prints the
// same runs interpreted under an assumed bound of S=32 (Figure 8a, showing
// the failures caused by the drain-stage entry) and S=33 (Figure 8b,
// correct except the L=0 coalescing case).
//
// Usage:
//
//	litmus [-tasks 512] [-seeds 60] [-metrics] [-p N]
//
// -p runs the (L, δ, bias, seed) grid on a worker pool (0 = GOMAXPROCS);
// the grid is byte-identical at any pool size. -metrics appends an
// instrumented chaos-engine run on the same Westmere model (occupancy,
// stall and drain series in scheduler steps). ^C cancels the remaining
// runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/expt"
	"repro/internal/litmus"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("litmus: ")
	tasks := flag.Int("tasks", 512, "queue prefill size (paper: 512)")
	seeds := flag.Int("seeds", 60, "chaos seeds per drain bias per point")
	metrics := flag.Bool("metrics", false, "append an instrumented chaos-engine metrics run")
	workers := flag.Int("p", 0, "worker-pool size for the grid (0 = GOMAXPROCS)")
	flag.Parse()

	ctx, stop := runner.SignalContext(context.Background())
	defer stop()
	prog := runner.NewProgress(os.Stderr, "litmus grid", 0)
	opts := litmus.Options{
		Tasks:       *tasks,
		Seeds:       *seeds,
		DrainBiases: []float64{0.02, 0.15, 0.4},
		Runner:      &runner.Runner{Workers: *workers, Progress: prog},
	}
	start := time.Now()
	res, err := expt.Figure8Ctx(ctx, opts)
	prog.Finish()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Figure 9 litmus program: %d-task FF-THE queue, worker with L scratch stores\n", *tasks)
	fmt.Printf("per take vs thief with candidate delta; %d runs per point.\n\n", *seeds*len(opts.DrainBiases))

	expt.RenderFigure8Panel(os.Stdout, "Figure 8a", 32, res.PanelA)
	expt.RenderFigure8Panel(os.Stdout, "Figure 8b", 33, res.PanelB)

	fmt.Println("Expected: 8a shows INCORRECT points on the delta >= alpha line where")
	fmt.Println("ceil(32/(L+1)) divides evenly (the true bound is 33); 8b is correct on")
	fmt.Println("and above the line except alpha=33 (L=0), where drain-stage coalescing")
	fmt.Println("of back-to-back stores to T defeats any delta.")
	fmt.Printf("\n(%d litmus runs in %v)\n", totalRuns(res.Raw), time.Since(start).Round(time.Millisecond))

	if *metrics {
		rep, err := expt.CollectMetrics(expt.Westmere(), "chaos")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		expt.RenderMetrics(os.Stdout, rep)
	}
}

func totalRuns(rs []litmus.Result) int {
	n := 0
	for _, r := range rs {
		n += r.Runs
	}
	return n
}
