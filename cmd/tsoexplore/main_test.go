package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/tso"
)

// midFlight runs the exhaustive SB exploration with a tiny run budget so
// it stops with a spooled frontier, and returns that checkpoint (labeled
// with the given phase, as sbExhaustive labels its own).
func midFlight(t *testing.T, cfg tso.Config, phase string) *tso.Checkpoint {
	t.Helper()
	mk, out := sbProgs(false)
	_, res := tso.ExploreExhaustive(cfg, mk, out, tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxRuns: 10},
		Label:          phase,
	})
	if res.Complete || res.Checkpoint == nil {
		t.Fatalf("SB tree exhausted within the tiny budget (complete=%v); cannot build a mid-flight checkpoint", res.Complete)
	}
	return res.Checkpoint
}

// TestSpoolAtomicBinaryWriteAndResume is the spool round trip at the CLI
// layer: the checkpoint is written atomically (no temp files survive),
// lands in the binary wire format under the .ckpt name, resumes to the
// exact counts of an uninterrupted exploration, and is cleared afterward.
func TestSpoolAtomicBinaryWriteAndResume(t *testing.T) {
	cfg := tso.Config{Threads: 2, BufferSize: 2}
	dir := t.TempDir()
	prefix := filepath.Join(dir, "run")
	cp := midFlight(t, cfg, "sb")
	if err := writeCheckpoint(prefix, "sb", cp); err != nil {
		t.Fatal(err)
	}

	ckptPath, legacyPath := spoolPaths(prefix, "sb")
	raw, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("TSOF")) {
		t.Fatalf("spool file is not the binary wire format: %q...", raw[:min(8, len(raw))])
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file survived the atomic write: %s", e.Name())
		}
	}
	if _, err := os.Stat(legacyPath); !os.IsNotExist(err) {
		t.Fatalf("unexpected legacy spool file: %v", err)
	}

	opts := tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 22},
		Label:          "sb",
	}
	loaded, err := loadCheckpoint(prefix, "sb", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("spooled checkpoint not found")
	}

	mk, out := sbProgs(false)
	opts.Resume = loaded
	set, res := tso.ExploreExhaustive(cfg, mk, out, opts)
	if !res.Complete {
		t.Fatalf("resumed exploration incomplete after %d runs", res.Runs)
	}
	want, wres := tso.ExploreExhaustive(cfg, mk, out, tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 22},
	})
	if !wres.Complete {
		t.Fatalf("reference exploration incomplete after %d runs", wres.Runs)
	}
	if !reflect.DeepEqual(set.Counts, want.Counts) {
		t.Fatalf("resumed counts %v, uninterrupted counts %v", set.Counts, want.Counts)
	}

	if err := clearCheckpoint(prefix, "sb"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived clearCheckpoint: %v", err)
	}
}

// TestSpoolLegacyJSONResumes: a JSON-era spool at the legacy path still
// loads, and the next spool write migrates the phase to the binary file
// while removing the superseded legacy one (so later resumes are
// unambiguous).
func TestSpoolLegacyJSONResumes(t *testing.T) {
	cfg := tso.Config{Threads: 2, BufferSize: 2}
	prefix := filepath.Join(t.TempDir(), "run")
	cp := midFlight(t, cfg, "sb")

	ckptPath, legacyPath := spoolPaths(prefix, "sb")
	f, err := os.Create(legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.EncodeJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	opts := tso.ExhaustiveOptions{Label: "sb"}
	loaded, err := loadCheckpoint(prefix, "sb", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || !reflect.DeepEqual(loaded, cp) {
		t.Fatalf("legacy spool loaded %+v, want %+v", loaded, cp)
	}

	if err := writeCheckpoint(prefix, "sb", loaded); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(legacyPath); !os.IsNotExist(err) {
		t.Fatalf("legacy spool survived the binary rewrite: %v", err)
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatal(err)
	}
}

// TestSpoolAmbiguousCheckpoint: when both the binary and the legacy file
// exist for a phase, the load refuses with a clear error instead of
// guessing which frontier is current.
func TestSpoolAmbiguousCheckpoint(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run")
	ckptPath, legacyPath := spoolPaths(prefix, "sb")
	for _, p := range []string{ckptPath, legacyPath} {
		if err := os.WriteFile(p, []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err := loadCheckpoint(prefix, "sb", tso.Config{Threads: 2, BufferSize: 2}, tso.ExhaustiveOptions{Label: "sb"})
	if err == nil || !strings.Contains(err.Error(), "ambiguous checkpoint") {
		t.Fatalf("got %v, want ambiguous-checkpoint error", err)
	}
}

// TestSpoolRejectsPhaseCollision: a checkpoint that belongs to one phase
// but sits at the path another phase resolves to — what a prefix
// collision between phases produces — is rejected by the embedded label
// check, and so is a resume under a different reorder bound.
func TestSpoolRejectsPhaseCollision(t *testing.T) {
	cfg := tso.Config{Threads: 2, BufferSize: 2}
	prefix := filepath.Join(t.TempDir(), "run")
	cp := midFlight(t, cfg, "sb")

	// Park the sb-labeled frontier where phase "sb-fenced" will look.
	ckptPath, _ := spoolPaths(prefix, "sb-fenced")
	f, err := os.Create(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = loadCheckpoint(prefix, "sb-fenced", cfg, tso.ExhaustiveOptions{Label: "sb-fenced"})
	if err == nil || !strings.Contains(err.Error(), `"sb"`) || !strings.Contains(err.Error(), `"sb-fenced"`) {
		t.Fatalf("got %v, want label-collision error naming both phases", err)
	}

	// The matching phase with a mismatched reorder bound is refused too.
	_, err = loadCheckpoint(prefix, "sb-fenced", cfg, tso.ExhaustiveOptions{Label: "sb", MaxReorderings: 2})
	if err == nil || !strings.Contains(err.Error(), "reorder") {
		t.Fatalf("got %v, want reorder-bound mismatch error", err)
	}
}
