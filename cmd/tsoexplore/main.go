// Command tsoexplore demonstrates the abstract TSO[S] machine directly:
// it runs the classic store-buffering litmus test under many adversarial
// schedules and tallies the observed outcomes, with and without fences,
// and shows the bounded-reordering lag experiment that underpins the
// fence-free queues.
//
// Usage:
//
//	tsoexplore [-s 4] [-runs 2000] [-stage]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/expt"
	"repro/internal/tso"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsoexplore: ")
	s := flag.Int("s", 4, "store buffer entries per thread")
	runs := flag.Int("runs", 2000, "schedules to explore per experiment")
	stage := flag.Bool("stage", false, "model the post-retirement drain stage B (bound becomes S+1)")
	flag.Parse()

	cfg := tso.Config{Threads: 2, BufferSize: *s, DrainBuffer: *stage, DrainBias: 0.1}
	fmt.Printf("Abstract TSO[%d] machine (drain stage: %v, observable bound %d)\n\n",
		*s, *stage, cfg.ObservableBound())

	sbOutcomes(cfg, *runs, false)
	sbOutcomes(cfg, *runs, true)
	lagHistogram(cfg, *runs)
}

// sbOutcomes runs the SB litmus test (x:=1; r0:=y || y:=1; r1:=x) and
// tallies result pairs.
func sbOutcomes(cfg tso.Config, runs int, fenced bool) {
	counts := map[[2]uint64]int{}
	for seed := 0; seed < runs; seed++ {
		c := cfg
		c.Seed = int64(seed)
		m := tso.NewMachine(c)
		x, y := m.Alloc(1), m.Alloc(1)
		var r0, r1 uint64
		err := m.Run(
			func(c tso.Context) {
				c.Store(x, 1)
				if fenced {
					c.Fence()
				}
				r0 = c.Load(y)
			},
			func(c tso.Context) {
				c.Store(y, 1)
				if fenced {
					c.Fence()
				}
				r1 = c.Load(x)
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		counts[[2]uint64{r0, r1}]++
	}
	title := "without fences"
	if fenced {
		title = "with fences"
	}
	fmt.Printf("Store-buffering litmus, %s (%d schedules):\n", title, runs)
	rows := [][]string{}
	for _, k := range [][2]uint64{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		note := ""
		if k == [2]uint64{0, 0} {
			if fenced {
				note = "impossible with fences"
			} else {
				note = "the TSO reordering outcome"
			}
		}
		rows = append(rows, []string{fmt.Sprintf("r0=%d r1=%d", k[0], k[1]), fmt.Sprintf("%d", counts[k]), note})
	}
	expt.WriteTable(os.Stdout, []string{"outcome", "count", ""}, rows)
	fmt.Println()
}

// lagHistogram measures how many of the worker's most recent stores a
// concurrent reader missed — the quantity the TSO[S] bound caps and the
// fence-free queues reason about.
func lagHistogram(cfg tso.Config, runs int) {
	bound := cfg.ObservableBound()
	hist := make([]int, bound+2)
	for seed := 0; seed < runs; seed++ {
		c := cfg
		c.Seed = int64(seed)
		c.DrainBias = 0.05
		m := tso.NewMachine(c)
		loc := m.Alloc(8)
		issued := uint64(0)
		maxLag := 0
		err := m.Run(
			func(c tso.Context) {
				for i := uint64(1); i <= 64; i++ {
					c.Store(loc+tso.Addr(i%8), i)
					issued = i
				}
			},
			func(c tso.Context) {
				for i := 0; i < 128; i++ {
					newest := uint64(0)
					before := issued
					for j := 0; j < 8; j++ {
						if v := c.Load(loc + tso.Addr(j)); v > newest {
							newest = v
						}
					}
					if before > newest && int(before-newest) > maxLag {
						maxLag = int(before - newest)
					}
				}
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		if maxLag > bound+1 {
			maxLag = bound + 1
		}
		hist[maxLag]++
	}
	fmt.Printf("Max hidden-store lag per schedule (distinct addresses, %d schedules):\n", runs)
	rows := [][]string{}
	for lag, n := range hist {
		if n == 0 {
			continue
		}
		note := ""
		if lag == bound {
			note = "= observable bound"
		}
		if lag > bound {
			note = "BOUND VIOLATION"
		}
		rows = append(rows, []string{fmt.Sprintf("%d", lag), fmt.Sprintf("%d", n), note})
	}
	expt.WriteTable(os.Stdout, []string{"max lag", "schedules", ""}, rows)
	fmt.Printf("\nNo schedule exceeds the bound of %d: a thief that assumes at most %d\n", bound, bound)
	fmt.Println("hidden stores is safe, which is exactly the FF-THE/FF-CL argument.")
}
