// Command tsoexplore demonstrates the abstract TSO[S] machine directly:
// it runs the classic store-buffering litmus test under many adversarial
// schedules and tallies the observed outcomes, with and without fences,
// and shows the bounded-reordering lag experiment that underpins the
// fence-free queues. With -exhaustive the store-buffering tallies come
// from the model-checking engine instead of sampling: every schedule is
// accounted for exactly, optionally in parallel (-par) and with
// canonical-state pruning (-prune).
//
// With -fuzz N the tool instead differential-fuzzes the deque
// implementations: it generates N random small put/take/steal programs
// (random buffer size, drain stage, prefill and thief mix), runs every
// implemented algorithm on each under the semantic oracle's spec for that
// algorithm (exactly-once for the precise queues, at-least-once for the
// idempotent ones), and exits nonzero if any sampled schedule violates.
//
// An exhaustive run with -checkpoint PREFIX is interruptible: on SIGTERM
// or SIGINT the engine stops at the next run boundary and the unexplored
// frontier is written to PREFIX-<phase>.json in the same wire format the
// tsoserve spool uses; rerunning the same command resumes it (and
// deletes the file once the phase completes).
//
// Usage:
//
//	tsoexplore [-s 4] [-runs 2000] [-stage] [-exhaustive] [-par N] [-prune] [-checkpoint PREFIX] [-cpuprofile f] [-memprofile f]
//	tsoexplore -fuzz N [-seed S] [-runs per-program schedules]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/oracle"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/tso"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsoexplore: ")
	s := flag.Int("s", 4, "store buffer entries per thread")
	runs := flag.Int("runs", 2000, "schedules to sample per experiment (ignored with -exhaustive)")
	stage := flag.Bool("stage", false, "model the post-retirement drain stage B (bound becomes S+1)")
	exhaustive := flag.Bool("exhaustive", false, "explore every schedule of the SB test instead of sampling")
	par := flag.Int("par", 1, "exploration workers for -exhaustive")
	prune := flag.Bool("prune", false, "canonical-state pruning for -exhaustive")
	checkpoint := flag.String("checkpoint", "", "frontier checkpoint path prefix for interruptible -exhaustive runs")
	fuzz := flag.Int("fuzz", 0, "differential-fuzz N random deque programs across every algorithm (0: off)")
	seed := flag.Int64("seed", 1, "base RNG seed for -fuzz program generation")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap (allocs) profile to this file on exit")
	flag.Parse()

	stopProfiles, err := runner.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	if *fuzz > 0 {
		if !oracleFuzz(*fuzz, *seed, *runs) {
			if err := stopProfiles(); err != nil {
				log.Print(err)
			}
			os.Exit(1)
		}
		return
	}

	cfg := tso.Config{Threads: 2, BufferSize: *s, DrainBuffer: *stage, DrainBias: 0.1}
	fmt.Printf("Abstract TSO[%d] machine (drain stage: %v, observable bound %d)\n\n",
		*s, *stage, cfg.ObservableBound())

	if *exhaustive {
		// SIGTERM/SIGINT stop the engine at a run boundary; with
		// -checkpoint the frontier is spooled and the process exits
		// cleanly instead of losing the exploration.
		ctx, cancel := serve.SignalDrain(context.Background())
		defer cancel()
		if !sbExhaustive(ctx, cfg, false, *par, *prune, *checkpoint) ||
			!sbExhaustive(ctx, cfg, true, *par, *prune, *checkpoint) {
			fmt.Println("interrupted: rerun the same command to resume from the checkpoint")
			return
		}
	} else {
		sbOutcomes(cfg, *runs, false)
		sbOutcomes(cfg, *runs, true)
	}
	lagHistogram(cfg, *runs)
}

// oracleFuzz is the -fuzz mode: nprogs random programs, every algorithm,
// sampled schedules under the semantic oracle. Returns false if any
// violation was found.
func oracleFuzz(nprogs int, seed int64, samples int) bool {
	if samples <= 0 {
		samples = 50
	}
	r := rand.New(rand.NewSource(seed))
	fmt.Printf("Differential deque fuzzing: %d random programs x %d algorithms x %d sampled schedules (seed %d)\n\n",
		nprogs, len(core.AllAlgos), samples, seed)
	rows := [][]string{}
	violations := 0
	for i := 0; i < nprogs; i++ {
		p := oracle.RandomProgram(r)
		worst := "ok"
		for _, algo := range core.AllAlgos {
			q := p
			q.Algo = algo
			q.Delta = q.Config().ObservableBound()
			rep := oracle.Run(q.Scenario(), oracle.RunOptions{
				Spec:           q.Spec(),
				SampleRuns:     samples,
				MaxStepsPerRun: 100_000,
				Counterexample: true,
			})
			if rep.Violating == 0 {
				continue
			}
			violations++
			worst = fmt.Sprintf("%s under %s spec: %d/%d schedules violate", algo, rep.Spec, rep.Violating, samples)
			fmt.Printf("VIOLATION: %s\n  %s\n", q, worst)
			if ce := rep.Counterexample; ce != nil {
				fmt.Printf("  counterexample: seed %d, verdict %q\n", ce.Seed, ce.Outcome)
				for _, line := range ce.Trace {
					fmt.Println("    " + line)
				}
			}
		}
		rows = append(rows, []string{fmt.Sprintf("%d", i), p.String(), worst})
	}
	expt.WriteTable(os.Stdout, []string{"#", "program", "result"}, rows)
	if violations > 0 {
		fmt.Printf("\n%d violating (program, algorithm) pairs — see counterexamples above.\n", violations)
		return false
	}
	fmt.Printf("\nAll programs satisfied their specs on every sampled schedule.\n")
	return true
}

// sbTable renders the four SB outcome rows in their canonical order.
func sbTable(counts map[string]int, fenced bool) {
	rows := [][]string{}
	for _, k := range [][2]uint64{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		note := ""
		if k == [2]uint64{0, 0} {
			if fenced {
				note = "impossible with fences"
			} else {
				note = "the TSO reordering outcome"
			}
		}
		key := fmt.Sprintf("r0=%d r1=%d", k[0], k[1])
		rows = append(rows, []string{key, fmt.Sprintf("%d", counts[key]), note})
	}
	expt.WriteTable(os.Stdout, []string{"outcome", "count", ""}, rows)
	fmt.Println()
}

// sbOutcomes samples the SB litmus test (x:=1; r0:=y || y:=1; r1:=x)
// under seeded adversarial schedules via the shared engine and tallies
// result pairs.
func sbOutcomes(cfg tso.Config, runs int, fenced bool) {
	var r0, r1 uint64
	mk := func(m *tso.Machine) []func(tso.Context) {
		x, y := m.Alloc(1), m.Alloc(1)
		return []func(tso.Context){
			func(c tso.Context) {
				c.Store(x, 1)
				if fenced {
					c.Fence()
				}
				r0 = c.Load(y)
			},
			func(c tso.Context) {
				c.Store(y, 1)
				if fenced {
					c.Fence()
				}
				r1 = c.Load(x)
			},
		}
	}
	out := func(m *tso.Machine) string { return fmt.Sprintf("r0=%d r1=%d", r0, r1) }
	set := tso.SampleOutcomes(cfg, runs, mk, out)
	title := "without fences"
	if fenced {
		title = "with fences"
	}
	fmt.Printf("Store-buffering litmus, %s (%d schedules):\n", title, runs)
	sbTable(set.Counts, fenced)
}

// sbExhaustive proves the SB tallies instead of sampling them: the counts
// are over every schedule of the machine. The programs publish their
// registers to result words (rather than captured locals) so the factory
// is safe on the engine's concurrent workers. With a checkpoint prefix
// the phase resumes from PREFIX-<phase>.json when present and spools the
// remaining frontier there when ctx is cancelled mid-exploration; the
// return value reports whether the phase ran to completion.
func sbExhaustive(ctx context.Context, cfg tso.Config, fenced bool, par int, prune bool, ckptPrefix string) bool {
	const xA, yA, r0A, r1A = tso.Addr(0), tso.Addr(1), tso.Addr(2), tso.Addr(3)
	mk := func(m *tso.Machine) []func(tso.Context) {
		m.Alloc(4)
		return []func(tso.Context){
			func(c tso.Context) {
				c.Store(xA, 1)
				if fenced {
					c.Fence()
				}
				c.Store(r0A, c.Load(yA)+1)
			},
			func(c tso.Context) {
				c.Store(yA, 1)
				if fenced {
					c.Fence()
				}
				c.Store(r1A, c.Load(xA)+1)
			},
		}
	}
	out := func(m *tso.Machine) string {
		return fmt.Sprintf("r0=%d r1=%d", m.Peek(r0A)-1, m.Peek(r1A)-1)
	}
	title := "without fences"
	phase := "sb"
	if fenced {
		title = "with fences"
		phase = "sb-fenced"
	}

	opts := tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 22},
		Parallel:       par,
		Prune:          prune,
		Interrupt:      ctx.Done(),
	}
	ckptFile := ""
	if ckptPrefix != "" {
		ckptFile = ckptPrefix + "-" + phase + ".json"
		if f, err := os.Open(ckptFile); err == nil {
			cp, derr := tso.DecodeCheckpoint(f)
			f.Close()
			if derr != nil {
				log.Fatalf("checkpoint %s: %v", ckptFile, derr)
			}
			if err := cp.CompatibleWith(cfg); err != nil {
				log.Fatalf("checkpoint %s: %v", ckptFile, err)
			}
			opts.Resume = cp
			fmt.Printf("resuming %s from %s (%d runs done, %d frontier units)\n",
				phase, ckptFile, cp.Runs, len(cp.Units))
		} else if !os.IsNotExist(err) {
			log.Fatalf("checkpoint %s: %v", ckptFile, err)
		}
	}

	set, res := tso.ExploreExhaustive(cfg, mk, out, opts)
	if !res.Complete && res.Checkpoint != nil && ctx.Err() != nil {
		if ckptFile == "" {
			log.Fatalf("interrupted %s with no -checkpoint prefix; exploration lost", phase)
		}
		f, err := os.Create(ckptFile)
		if err != nil {
			log.Fatalf("checkpoint %s: %v", ckptFile, err)
		}
		if err := res.Checkpoint.Encode(f); err != nil {
			log.Fatalf("checkpoint %s: %v", ckptFile, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("checkpoint %s: %v", ckptFile, err)
		}
		fmt.Printf("interrupted %s after %d runs; frontier (%d units) spooled to %s\n",
			phase, res.Checkpoint.Runs, len(res.Checkpoint.Units), ckptFile)
		return false
	}
	if ckptFile != "" {
		if err := os.Remove(ckptFile); err != nil && !os.IsNotExist(err) {
			log.Print(err)
		}
	}
	fmt.Printf("Store-buffering litmus, %s (every schedule: %d, executed %d, complete=%v):\n",
		title, set.Total(), res.Runs, res.Complete)
	if prune {
		fmt.Printf("pruning: %d states deduped, %d schedules saved\n",
			res.Prune.StatesDeduped, res.Prune.SchedulesSaved)
	}
	sbTable(set.Counts, fenced)
	return true
}

// lagHistogram measures how many of the worker's most recent stores a
// concurrent reader missed — the quantity the TSO[S] bound caps and the
// fence-free queues reason about. The lag is a property of one sampled
// schedule, so this experiment always samples via the shared engine.
func lagHistogram(cfg tso.Config, runs int) {
	bound := cfg.ObservableBound()
	var maxLag int
	cfg.DrainBias = 0.05
	mk := func(m *tso.Machine) []func(tso.Context) {
		loc := m.Alloc(8)
		issued := uint64(0)
		maxLag = 0
		return []func(tso.Context){
			func(c tso.Context) {
				for i := uint64(1); i <= 64; i++ {
					c.Store(loc+tso.Addr(i%8), i)
					issued = i
				}
			},
			func(c tso.Context) {
				for i := 0; i < 128; i++ {
					newest := uint64(0)
					before := issued
					for j := 0; j < 8; j++ {
						if v := c.Load(loc + tso.Addr(j)); v > newest {
							newest = v
						}
					}
					if before > newest && int(before-newest) > maxLag {
						maxLag = int(before - newest)
					}
				}
			},
		}
	}
	out := func(m *tso.Machine) string {
		lag := maxLag
		if lag > bound+1 {
			lag = bound + 1
		}
		return fmt.Sprintf("%d", lag)
	}
	set := tso.SampleOutcomes(cfg, runs, mk, out)
	fmt.Printf("Max hidden-store lag per schedule (distinct addresses, %d schedules):\n", runs)
	rows := [][]string{}
	for lag := 0; lag <= bound+1; lag++ {
		n := set.Counts[fmt.Sprintf("%d", lag)]
		if n == 0 {
			continue
		}
		note := ""
		if lag == bound {
			note = "= observable bound"
		}
		if lag > bound {
			note = "BOUND VIOLATION"
		}
		rows = append(rows, []string{fmt.Sprintf("%d", lag), fmt.Sprintf("%d", n), note})
	}
	expt.WriteTable(os.Stdout, []string{"max lag", "schedules", ""}, rows)
	fmt.Printf("\nNo schedule exceeds the bound of %d: a thief that assumes at most %d\n", bound, bound)
	fmt.Println("hidden stores is safe, which is exactly the FF-THE/FF-CL argument.")
}
