// Command tsoexplore demonstrates the abstract TSO[S] machine directly:
// it runs the classic store-buffering litmus test under many adversarial
// schedules and tallies the observed outcomes, with and without fences,
// and shows the bounded-reordering lag experiment that underpins the
// fence-free queues. With -exhaustive the store-buffering tallies come
// from the model-checking engine instead of sampling: every schedule is
// accounted for exactly, optionally in parallel (-par) and with
// canonical-state pruning (-prune).
//
// With -fuzz N the tool instead differential-fuzzes the deque
// implementations: it generates N random small put/take/steal programs
// (random buffer size, drain stage, prefill and thief mix), runs every
// implemented algorithm on each under the semantic oracle's spec for that
// algorithm (exactly-once for the precise queues, at-least-once for the
// idempotent ones), and exits nonzero if any sampled schedule violates.
//
// An exhaustive run with -checkpoint PREFIX is interruptible: on SIGTERM
// or SIGINT the engine stops at the next run boundary and the unexplored
// frontier is written atomically (temp file + rename) to
// PREFIX-<phase>.ckpt in the binary frontier wire format the tsoserve
// spool uses; rerunning the same command resumes it (and deletes the
// file once the phase completes). Legacy PREFIX-<phase>.json spools from
// the JSON-checkpoint era still resume; if both files exist the run
// refuses with an ambiguity error rather than guessing, and a checkpoint
// whose embedded phase label does not match the phase resolving to its
// path (a prefix collision) is rejected rather than silently folded into
// the wrong experiment.
//
// Usage:
//
//	tsoexplore [-s 4] [-runs 2000] [-stage] [-exhaustive] [-par N] [-prune] [-dpor] [-reorder K] [-checkpoint PREFIX] [-cpuprofile f] [-memprofile f]
//	tsoexplore -fuzz N [-seed S] [-runs per-program schedules]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/oracle"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/tso"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsoexplore: ")
	s := flag.Int("s", 4, "store buffer entries per thread")
	runs := flag.Int("runs", 2000, "schedules to sample per experiment (ignored with -exhaustive)")
	stage := flag.Bool("stage", false, "model the post-retirement drain stage B (bound becomes S+1)")
	exhaustive := flag.Bool("exhaustive", false, "explore every schedule of the SB test instead of sampling")
	par := flag.Int("par", 1, "exploration workers for -exhaustive")
	prune := flag.Bool("prune", false, "canonical-state pruning for -exhaustive")
	reorder := flag.Int("reorder", 0, "with -exhaustive, bound the store→load reorderings per schedule (<=0: unbounded)")
	dpor := flag.Bool("dpor", false, "with -exhaustive, source-set DPOR (same outcome set, one executed schedule per equivalence class; excludes -reorder)")
	checkpoint := flag.String("checkpoint", "", "frontier checkpoint path prefix for interruptible -exhaustive runs")
	fuzz := flag.Int("fuzz", 0, "differential-fuzz N random deque programs across every algorithm (0: off)")
	seed := flag.Int64("seed", 1, "base RNG seed for -fuzz program generation")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap (allocs) profile to this file on exit")
	flag.Parse()

	if *dpor && *reorder > 0 {
		log.Fatal("-dpor cannot combine with -reorder: the reorder bound is not closed under commuting swaps")
	}

	stopProfiles, err := runner.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	if *fuzz > 0 {
		if !oracleFuzz(*fuzz, *seed, *runs) {
			if err := stopProfiles(); err != nil {
				log.Print(err)
			}
			os.Exit(1)
		}
		return
	}

	cfg := tso.Config{Threads: 2, BufferSize: *s, DrainBuffer: *stage, DrainBias: 0.1}
	fmt.Printf("Abstract TSO[%d] machine (drain stage: %v, observable bound %d)\n\n",
		*s, *stage, cfg.ObservableBound())

	if *exhaustive {
		// SIGTERM/SIGINT stop the engine at a run boundary; with
		// -checkpoint the frontier is spooled and the process exits
		// cleanly instead of losing the exploration.
		ctx, cancel := serve.SignalDrain(context.Background())
		defer cancel()
		for _, fenced := range []bool{false, true} {
			done, err := sbExhaustive(ctx, cfg, fenced, *par, *prune, *dpor, *reorder, *checkpoint)
			if err != nil {
				log.Fatal(err)
			}
			if !done {
				fmt.Println("interrupted: rerun the same command to resume from the checkpoint")
				return
			}
		}
	} else {
		sbOutcomes(cfg, *runs, false)
		sbOutcomes(cfg, *runs, true)
	}
	lagHistogram(cfg, *runs)
}

// oracleFuzz is the -fuzz mode: nprogs random programs, every algorithm,
// sampled schedules under the semantic oracle. Returns false if any
// violation was found.
func oracleFuzz(nprogs int, seed int64, samples int) bool {
	if samples <= 0 {
		samples = 50
	}
	r := rand.New(rand.NewSource(seed))
	fmt.Printf("Differential deque fuzzing: %d random programs x %d algorithms x %d sampled schedules (seed %d)\n\n",
		nprogs, len(core.AllAlgos), samples, seed)
	rows := [][]string{}
	violations := 0
	for i := 0; i < nprogs; i++ {
		p := oracle.RandomProgram(r)
		worst := "ok"
		for _, algo := range core.AllAlgos {
			q := p
			q.Algo = algo
			q.Delta = q.Config().ObservableBound()
			rep := oracle.Run(q.Scenario(), oracle.RunOptions{
				Spec:           q.Spec(),
				SampleRuns:     samples,
				MaxStepsPerRun: 100_000,
				Counterexample: true,
			})
			if rep.Violating == 0 {
				continue
			}
			violations++
			worst = fmt.Sprintf("%s under %s spec: %d/%d schedules violate", algo, rep.Spec, rep.Violating, samples)
			fmt.Printf("VIOLATION: %s\n  %s\n", q, worst)
			if ce := rep.Counterexample; ce != nil {
				fmt.Printf("  counterexample: seed %d, verdict %q\n", ce.Seed, ce.Outcome)
				for _, line := range ce.Trace {
					fmt.Println("    " + line)
				}
			}
		}
		rows = append(rows, []string{fmt.Sprintf("%d", i), p.String(), worst})
	}
	expt.WriteTable(os.Stdout, []string{"#", "program", "result"}, rows)
	if violations > 0 {
		fmt.Printf("\n%d violating (program, algorithm) pairs — see counterexamples above.\n", violations)
		return false
	}
	fmt.Printf("\nAll programs satisfied their specs on every sampled schedule.\n")
	return true
}

// sbTable renders the four SB outcome rows in their canonical order.
func sbTable(counts map[string]int, fenced bool) {
	rows := [][]string{}
	for _, k := range [][2]uint64{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		note := ""
		if k == [2]uint64{0, 0} {
			if fenced {
				note = "impossible with fences"
			} else {
				note = "the TSO reordering outcome"
			}
		}
		key := fmt.Sprintf("r0=%d r1=%d", k[0], k[1])
		rows = append(rows, []string{key, fmt.Sprintf("%d", counts[key]), note})
	}
	expt.WriteTable(os.Stdout, []string{"outcome", "count", ""}, rows)
	fmt.Println()
}

// sbOutcomes samples the SB litmus test (x:=1; r0:=y || y:=1; r1:=x)
// under seeded adversarial schedules via the shared engine and tallies
// result pairs.
func sbOutcomes(cfg tso.Config, runs int, fenced bool) {
	var r0, r1 uint64
	mk := func(m *tso.Machine) []func(tso.Context) {
		x, y := m.Alloc(1), m.Alloc(1)
		return []func(tso.Context){
			func(c tso.Context) {
				c.Store(x, 1)
				if fenced {
					c.Fence()
				}
				r0 = c.Load(y)
			},
			func(c tso.Context) {
				c.Store(y, 1)
				if fenced {
					c.Fence()
				}
				r1 = c.Load(x)
			},
		}
	}
	out := func(m *tso.Machine) string { return fmt.Sprintf("r0=%d r1=%d", r0, r1) }
	set := tso.SampleOutcomes(cfg, runs, mk, out)
	title := "without fences"
	if fenced {
		title = "with fences"
	}
	fmt.Printf("Store-buffering litmus, %s (%d schedules):\n", title, runs)
	sbTable(set.Counts, fenced)
}

// spoolPaths maps a checkpoint prefix and phase name to the phase's two
// possible spool files: the binary-format path every new spool uses and
// the legacy JSON-era path old spools may still sit at.
func spoolPaths(prefix, phase string) (ckpt, legacy string) {
	base := prefix + "-" + phase
	return base + ".ckpt", base + ".json"
}

// loadCheckpoint resolves a phase's spooled frontier, if any. It accepts
// either wire format (the package decoder sniffs), refuses to guess when
// both the binary and the legacy file exist, and rejects checkpoints that
// are incompatible with the machine or options — including a phase label
// that disagrees with the phase this path resolved to, which is what a
// prefix collision between two phases looks like on disk. A nil
// checkpoint with a nil error means there is nothing to resume.
func loadCheckpoint(prefix, phase string, cfg tso.Config, opts tso.ExhaustiveOptions) (*tso.Checkpoint, error) {
	ckpt, legacy := spoolPaths(prefix, phase)
	var have []string
	for _, p := range []string{ckpt, legacy} {
		if _, err := os.Stat(p); err == nil {
			have = append(have, p)
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("checkpoint %s: %w", p, err)
		}
	}
	switch len(have) {
	case 0:
		return nil, nil
	case 2:
		return nil, fmt.Errorf("ambiguous checkpoint for phase %s: both %s and %s exist; remove the stale one", phase, ckpt, legacy)
	}
	f, err := os.Open(have[0])
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", have[0], err)
	}
	defer f.Close()
	cp, err := tso.DecodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", have[0], err)
	}
	if err := cp.CompatibleWithOptions(cfg, opts); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w (prefix collision between phases?)", have[0], err)
	}
	return cp, nil
}

// writeCheckpoint spools cp for the phase atomically: the frontier is
// encoded to a temp file in the destination directory and renamed over
// the final path, so an interrupted write can never leave a truncated
// checkpoint where the next run would trust it (os.Rename replaces the
// destination on every supported platform). A superseded legacy JSON
// spool is removed so the next resume is unambiguous.
func writeCheckpoint(prefix, phase string, cp *tso.Checkpoint) error {
	ckpt, legacy := spoolPaths(prefix, phase)
	tmp, err := os.CreateTemp(filepath.Dir(ckpt), filepath.Base(ckpt)+".tmp-*")
	if err != nil {
		return err
	}
	if err := cp.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint %s: %w", ckpt, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint %s: %w", ckpt, err)
	}
	if err := os.Rename(tmp.Name(), ckpt); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Remove(legacy); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// clearCheckpoint removes a completed phase's spool files, both formats.
func clearCheckpoint(prefix, phase string) error {
	ckpt, legacy := spoolPaths(prefix, phase)
	for _, p := range []string{ckpt, legacy} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// sbProgs builds the exhaustive-mode SB programs: registers publish to
// result words (offset by one so "stored 0" and "never stored" differ)
// rather than captured locals, keeping the factory safe on the engine's
// concurrent workers. Shared with the checkpoint-spool regression tests.
func sbProgs(fenced bool) (func(m *tso.Machine) []func(tso.Context), func(m *tso.Machine) string) {
	const xA, yA, r0A, r1A = tso.Addr(0), tso.Addr(1), tso.Addr(2), tso.Addr(3)
	mk := func(m *tso.Machine) []func(tso.Context) {
		m.Alloc(4)
		return []func(tso.Context){
			func(c tso.Context) {
				c.Store(xA, 1)
				if fenced {
					c.Fence()
				}
				c.Store(r0A, c.Load(yA)+1)
			},
			func(c tso.Context) {
				c.Store(yA, 1)
				if fenced {
					c.Fence()
				}
				c.Store(r1A, c.Load(xA)+1)
			},
		}
	}
	out := func(m *tso.Machine) string {
		return fmt.Sprintf("r0=%d r1=%d", m.Peek(r0A)-1, m.Peek(r1A)-1)
	}
	return mk, out
}

// sbExhaustive proves the SB tallies instead of sampling them: the counts
// are over every schedule of the machine (or, with reorder >= 1, every
// schedule with at most that many store→load reorderings). The programs
// publish their registers to result words (rather than captured locals)
// so the factory is safe on the engine's concurrent workers. With a
// checkpoint prefix the phase resumes from its spool file when present
// and spools the remaining frontier there when ctx is cancelled
// mid-exploration; the first return value reports whether the phase ran
// to completion.
func sbExhaustive(ctx context.Context, cfg tso.Config, fenced bool, par int, prune, dpor bool, reorder int, ckptPrefix string) (bool, error) {
	mk, out := sbProgs(fenced)
	title := "without fences"
	phase := "sb"
	if fenced {
		title = "with fences"
		phase = "sb-fenced"
	}

	opts := tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 22},
		Parallel:       par,
		Prune:          prune,
		DPOR:           dpor,
		MaxReorderings: reorder,
		Label:          phase,
		Interrupt:      ctx.Done(),
	}
	if ckptPrefix != "" {
		cp, err := loadCheckpoint(ckptPrefix, phase, cfg, opts)
		if err != nil {
			return false, err
		}
		if cp != nil {
			opts.Resume = cp
			fmt.Printf("resuming %s (%d runs done, %d frontier units)\n",
				phase, cp.Runs, len(cp.Units))
		}
	}

	set, res := tso.ExploreExhaustive(cfg, mk, out, opts)
	if !res.Complete && res.Checkpoint != nil && ctx.Err() != nil {
		if ckptPrefix == "" {
			return false, fmt.Errorf("interrupted %s with no -checkpoint prefix; exploration lost", phase)
		}
		if err := writeCheckpoint(ckptPrefix, phase, res.Checkpoint); err != nil {
			return false, err
		}
		ckptFile, _ := spoolPaths(ckptPrefix, phase)
		fmt.Printf("interrupted %s after %d runs; frontier (%d units) spooled to %s\n",
			phase, res.Checkpoint.Runs, len(res.Checkpoint.Units), ckptFile)
		return false, nil
	}
	if ckptPrefix != "" {
		if err := clearCheckpoint(ckptPrefix, phase); err != nil {
			log.Print(err)
		}
	}
	space := "every schedule"
	if reorder >= 1 {
		space = fmt.Sprintf("every schedule with <=%d reorderings", reorder)
	}
	fmt.Printf("Store-buffering litmus, %s (%s: %d, executed %d, complete=%v):\n",
		title, space, set.Total(), res.Runs, res.Complete)
	if prune {
		fmt.Printf("pruning: %d states deduped, %d schedules saved\n",
			res.Prune.StatesDeduped, res.Prune.SchedulesSaved)
	}
	if dpor {
		fmt.Printf("dpor: %d races detected, %d backtracks, %d sleep skips (counts below are per-class representatives)\n",
			res.Prune.DPORRaces, res.Prune.DPORBacktracks, res.Prune.DPORSleepSkips)
	}
	if reorder >= 1 {
		fmt.Printf("reorder bound %d: %d subtrees cut (%d schedules skipped)\n",
			reorder, res.Prune.SubtreesCut, res.Prune.ReorderSkips)
	}
	sbTable(set.Counts, fenced)
	return true, nil
}

// lagHistogram measures how many of the worker's most recent stores a
// concurrent reader missed — the quantity the TSO[S] bound caps and the
// fence-free queues reason about. The lag is a property of one sampled
// schedule, so this experiment always samples via the shared engine.
func lagHistogram(cfg tso.Config, runs int) {
	bound := cfg.ObservableBound()
	var maxLag int
	cfg.DrainBias = 0.05
	mk := func(m *tso.Machine) []func(tso.Context) {
		loc := m.Alloc(8)
		issued := uint64(0)
		maxLag = 0
		return []func(tso.Context){
			func(c tso.Context) {
				for i := uint64(1); i <= 64; i++ {
					c.Store(loc+tso.Addr(i%8), i)
					issued = i
				}
			},
			func(c tso.Context) {
				for i := 0; i < 128; i++ {
					newest := uint64(0)
					before := issued
					for j := 0; j < 8; j++ {
						if v := c.Load(loc + tso.Addr(j)); v > newest {
							newest = v
						}
					}
					if before > newest && int(before-newest) > maxLag {
						maxLag = int(before - newest)
					}
				}
			},
		}
	}
	out := func(m *tso.Machine) string {
		lag := maxLag
		if lag > bound+1 {
			lag = bound + 1
		}
		return fmt.Sprintf("%d", lag)
	}
	set := tso.SampleOutcomes(cfg, runs, mk, out)
	fmt.Printf("Max hidden-store lag per schedule (distinct addresses, %d schedules):\n", runs)
	rows := [][]string{}
	for lag := 0; lag <= bound+1; lag++ {
		n := set.Counts[fmt.Sprintf("%d", lag)]
		if n == 0 {
			continue
		}
		note := ""
		if lag == bound {
			note = "= observable bound"
		}
		if lag > bound {
			note = "BOUND VIOLATION"
		}
		rows = append(rows, []string{fmt.Sprintf("%d", lag), fmt.Sprintf("%d", n), note})
	}
	expt.WriteTable(os.Stdout, []string{"max lag", "schedules", ""}, rows)
	fmt.Printf("\nNo schedule exceeds the bound of %d: a thief that assumes at most %d\n", bound, bound)
	fmt.Println("hidden stores is safe, which is exactly the FF-THE/FF-CL argument.")
}
