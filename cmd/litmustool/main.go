// Command litmustool runs memory-model litmus tests on the abstract
// TSO[S]/PSO machine by exhaustive schedule exploration. With no
// arguments it runs the built-in library of classic tests (SB, MP, LB,
// CoRR, 2+2W, S, R, WRC, fence/CAS variants) and checks each literature
// verdict; given file paths it runs those tests instead.
//
// Usage:
//
//	litmustool [-list] [-max 2000000] [file.litmus ...]
//
// See internal/litmusdsl for the file format.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/litmusdsl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("litmustool: ")
	list := flag.Bool("list", false, "print the built-in library and exit")
	maxSched := flag.Int("max", 2_000_000, "schedule-exploration cap per test")
	verbose := flag.Bool("v", false, "print every distinct outcome per test")
	witness := flag.Bool("witness", false, "for allowed tests, print one schedule reaching the condition")
	flag.Parse()

	if *list {
		for _, src := range litmusdsl.Library {
			fmt.Println(src)
			fmt.Println()
		}
		return
	}

	var tests []*litmusdsl.Test
	if flag.NArg() == 0 {
		for _, src := range litmusdsl.Library {
			t, err := litmusdsl.Parse(src)
			if err != nil {
				log.Fatalf("built-in library: %v", err)
			}
			tests = append(tests, t)
		}
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		t, err := litmusdsl.Parse(string(data))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		tests = append(tests, t)
	}

	failures := 0
	for _, t := range tests {
		start := time.Now()
		res, err := litmusdsl.Run(t, litmusdsl.RunOptions{MaxSchedules: *maxSched, Witness: *witness})
		if err != nil {
			log.Fatalf("%s: %v", t.Name, err)
		}
		status := "ok  "
		if !res.Ok() {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %-14s model=%-3s verdict=%-10s expect=%-9s schedules=%-7d complete=%-5v occ=%v %v\n",
			status, t.Name, t.Model, res.Verdict, t.Expect, res.Schedules, res.Complete,
			res.MaxOccupancy, time.Since(start).Round(time.Millisecond))
		if *verbose {
			keys := make([]string, 0, len(res.Outcomes))
			for o := range res.Outcomes {
				keys = append(keys, o)
			}
			sort.Strings(keys)
			for _, o := range keys {
				fmt.Printf("       %6d  %s\n", res.Outcomes[o], o)
			}
		}
		if *witness && len(res.Witness) > 0 {
			fmt.Println("       witness schedule:")
			for _, line := range res.Witness {
				fmt.Println("         " + line)
			}
		}
	}
	if failures > 0 {
		log.Fatalf("%d test(s) FAILED", failures)
	}
}
