// Command litmustool runs memory-model litmus tests on the abstract
// TSO[S]/PSO machine by exhaustive schedule exploration. With no
// arguments it runs the built-in library of classic tests (SB, MP, LB,
// CoRR, 2+2W, S, R, WRC, fence/CAS variants) and checks each literature
// verdict; given file paths it runs those tests instead.
//
// Usage:
//
//	litmustool [-list] [-max 2000000] [-par N] [-prune] [-dpor] [-reorder K] [-cpuprofile f] [-memprofile f] [file.litmus ...]
//
// -par spreads the exploration over N workers; -prune turns on
// canonical-state memoization, which proves the same outcome counts while
// executing a fraction of the schedules (the executed= column). -dpor
// switches to source-set dynamic partial-order reduction: the outcome
// set and verdict are identical while only one schedule per equivalence
// class executes (PSO tests in the run fall back to unreduced
// exploration). -reorder K bounds exploration to schedules with at most
// K store->load reorderings — verdicts are then proofs over the
// K-bounded space only. See internal/litmusdsl for the file format.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/litmusdsl"
	"repro/internal/runner"
	"repro/internal/tso"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("litmustool: ")
	list := flag.Bool("list", false, "print the built-in library and exit")
	maxSched := flag.Int("max", 2_000_000, "schedule-exploration cap per test")
	verbose := flag.Bool("v", false, "print every distinct outcome per test")
	witness := flag.Bool("witness", false, "for allowed tests, print one schedule reaching the condition")
	par := flag.Int("par", 1, "exploration workers per test")
	prune := flag.Bool("prune", false, "canonical-state pruning (same counts, fewer executed schedules)")
	dpor := flag.Bool("dpor", false, "source-set DPOR (same outcome set and verdict, one executed schedule per equivalence class; PSO tests run unreduced)")
	reorder := flag.Int("reorder", 0, "bound schedules to at most K store->load reorderings (0: unbounded); verdicts are proofs over the bounded space only")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap (allocs) profile to this file on exit")
	flag.Parse()

	if *dpor && *reorder > 0 {
		log.Fatal("-dpor cannot combine with -reorder: the reorder bound is not closed under commuting swaps")
	}

	stopProfiles, err := runner.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	if *list {
		for _, src := range litmusdsl.Library {
			fmt.Println(src)
			fmt.Println()
		}
		return
	}

	var tests []*litmusdsl.Test
	if flag.NArg() == 0 {
		for _, src := range litmusdsl.Library {
			t, err := litmusdsl.Parse(src)
			if err != nil {
				log.Fatalf("built-in library: %v", err)
			}
			tests = append(tests, t)
		}
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		t, err := litmusdsl.Parse(string(data))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		tests = append(tests, t)
	}

	failures := 0
	var pruneTotal tso.PruneStats
	for _, t := range tests {
		start := time.Now()
		useDPOR := *dpor && t.Model != tso.ModelPSO
		res, err := litmusdsl.Run(t, litmusdsl.RunOptions{
			MaxSchedules: *maxSched, Witness: *witness, Parallel: *par, Prune: *prune,
			DPOR: useDPOR, MaxReorderings: *reorder,
		})
		if err != nil {
			log.Fatalf("%s: %v", t.Name, err)
		}
		status := "ok  "
		if !res.Ok() {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %-14s model=%-3s verdict=%-10s expect=%-9s schedules=%-9d executed=%-7d complete=%-5v occ=%v tree=d%d/f%d/c%d %v\n",
			status, t.Name, t.Model, res.Verdict, t.Expect, res.Schedules, res.Executed, res.Complete,
			res.MaxOccupancy, res.Tree.MaxDepth, res.Tree.MaxFanout, res.Tree.ChoicePoints,
			time.Since(start).Round(time.Millisecond))
		pruneTotal.StatesSeen += res.Prune.StatesSeen
		pruneTotal.StatesDeduped += res.Prune.StatesDeduped
		pruneTotal.SubtreesCut += res.Prune.SubtreesCut
		pruneTotal.SchedulesSaved += res.Prune.SchedulesSaved
		pruneTotal.SleepSkips += res.Prune.SleepSkips
		pruneTotal.DPORRaces += res.Prune.DPORRaces
		pruneTotal.DPORBacktracks += res.Prune.DPORBacktracks
		pruneTotal.DPORSleepSkips += res.Prune.DPORSleepSkips
		if *verbose {
			keys := make([]string, 0, len(res.Outcomes))
			for o := range res.Outcomes {
				keys = append(keys, o)
			}
			sort.Strings(keys)
			for _, o := range keys {
				fmt.Printf("       %6d  %s\n", res.Outcomes[o], o)
			}
		}
		if *witness && len(res.Witness) > 0 {
			fmt.Println("       witness schedule:")
			for _, line := range res.Witness {
				fmt.Println("         " + line)
			}
			fmt.Printf("       witness choices (replayable with tso.ReplaySchedule): %v\n", res.WitnessChoices)
		}
	}
	if *prune {
		fmt.Printf("pruning: %d states seen, %d deduped, %d subtrees cut, %d schedules saved\n",
			pruneTotal.StatesSeen, pruneTotal.StatesDeduped, pruneTotal.SubtreesCut, pruneTotal.SchedulesSaved)
	}
	if *dpor {
		fmt.Printf("dpor: %d races detected, %d backtracks, %d sleep skips\n",
			pruneTotal.DPORRaces, pruneTotal.DPORBacktracks, pruneTotal.DPORSleepSkips)
	}
	if failures > 0 {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
		log.Fatalf("%d test(s) FAILED", failures)
	}
}
