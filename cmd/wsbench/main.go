// Command wsbench regenerates Figure 10 (and documents Table 1): the
// CilkPlus benchmark suite on the scaled Westmere-EX and Haswell models,
// comparing THE against FF-THE and THEP at the paper's δ settings.
//
// Usage:
//
//	wsbench [-platform westmere|haswell|both] [-runs 5] [-size test|bench] [-table1] [-metrics] [-p N] [-cpuprofile f] [-memprofile f]
//
// -p runs the app × algorithm × seed matrix on a worker pool (0 =
// GOMAXPROCS); the tables are byte-identical at any pool size.
// -metrics appends an instrumented run per platform (store-buffer
// occupancy, stall and drain-latency series, per-worker steal counters).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/expt"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wsbench: ")
	platform := flag.String("platform", "both", "westmere, haswell or both")
	runs := flag.Int("runs", 5, "scheduler seeds per configuration (paper: 10 timing runs)")
	sizeFlag := flag.String("size", "bench", "input scale: test or bench")
	table1 := flag.Bool("table1", false, "print Table 1 (the benchmark list) and exit")
	ht := flag.Bool("ht", false, "enable hyperthreading: 2x threads, pairs sharing cores (§8.1)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of tables")
	metrics := flag.Bool("metrics", false, "also print an instrumented metrics run per platform")
	workers := flag.Int("p", 0, "worker-pool size for the matrix (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap (allocs) profile to this file on exit")
	flag.Parse()

	stopProfiles, err := runner.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	if *table1 {
		printTable1()
		return
	}

	size := apps.SizeBench
	if *sizeFlag == "test" {
		size = apps.SizeTest
	}

	var platforms []expt.Platform
	switch *platform {
	case "westmere":
		platforms = []expt.Platform{expt.ScaledWestmere()}
	case "haswell":
		platforms = []expt.Platform{expt.ScaledHaswell()}
	case "both":
		platforms = []expt.Platform{expt.ScaledWestmere(), expt.ScaledHaswell()}
	default:
		log.Fatalf("unknown -platform %q", *platform)
	}

	ctx, stop := runner.SignalContext(context.Background())
	defer stop()
	for _, p := range platforms {
		if *ht {
			p = expt.HT(p)
		}
		start := time.Now()
		prog := runner.NewProgress(os.Stderr, p.Name, 0)
		res, err := expt.Figure10Ctx(ctx, &runner.Runner{Workers: *workers, Progress: prog}, p, size, *runs)
		prog.Finish()
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			if err := expt.WriteFigure10JSON(os.Stdout, res); err != nil {
				log.Fatal(err)
			}
			continue
		}
		expt.RenderFigure10(os.Stdout, res)
		fmt.Printf("(%v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *metrics {
		for _, p := range platforms {
			if *ht {
				p = expt.HT(p)
			}
			rep, err := expt.CollectMetrics(p, "timed")
			if err != nil {
				log.Fatal(err)
			}
			if *jsonOut {
				if err := expt.WriteMetricsJSON(os.Stdout, rep); err != nil {
					log.Fatal(err)
				}
				continue
			}
			expt.RenderMetrics(os.Stdout, rep)
			fmt.Println()
		}
	}
	if *jsonOut {
		return
	}
	fmt.Println("Paper reference: THEP improves 8-9 of 11 programs by up to 23%")
	fmt.Println("(11-13% average) and FF-THE's default delta collapses several programs")
	fmt.Println("to near-serial speed, recovering with delta=4.")
}

func printTable1() {
	fmt.Println("Table 1: CilkPlus benchmark applications")
	fmt.Println()
	rows := make([][]string, 0, 11)
	for _, a := range apps.All() {
		rows = append(rows, []string{a.Name, a.Desc, a.PaperInput})
	}
	expt.WriteTable(os.Stdout, []string{"Benchmark", "Description", "Input size (paper -> here)"}, rows)
}
