// Command graphbench regenerates Figure 11: parallel transitive closure
// over the K-graph, random graph and torus inputs, comparing the Chase-Lev
// baseline against FF-CL and the idempotent queues, reporting normalized
// run time (11a) and percent of work obtained by stealing (11b).
//
// Usage:
//
//	graphbench [-scale 2000] [-runs 5] [-p N]
//
// -p runs the workload × queue × seed matrix on a worker pool (0 =
// GOMAXPROCS); the table is byte-identical at any pool size.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/expt"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphbench: ")
	scale := flag.Int("scale", 2000, "graph scale: K-graph/random get 2*scale nodes (paper: 10^6)")
	runs := flag.Int("runs", 5, "scheduler seeds per cell (paper: 10 timing runs)")
	workload := flag.String("workload", "closure", "closure or spanning (the paper reports closure; \"spanning tree results are similar\")")
	jsonOut := flag.Bool("json", false, "emit JSON instead of the table")
	workers := flag.Int("p", 0, "worker-pool size for the matrix (0 = GOMAXPROCS)")
	flag.Parse()

	problem := expt.ProblemTransitiveClosure
	switch *workload {
	case "closure":
	case "spanning":
		problem = expt.ProblemSpanningTree
	default:
		log.Fatalf("unknown -workload %q", *workload)
	}

	ctx, stop := runner.SignalContext(context.Background())
	defer stop()
	start := time.Now()
	prog := runner.NewProgress(os.Stderr, "graph matrix", 0)
	res, err := expt.Figure11ProblemCtx(ctx, &runner.Runner{Workers: *workers, Progress: prog},
		expt.ScaledHaswell(), problem, *scale, *runs)
	prog.Finish()
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		if err := expt.WriteFigure11JSON(os.Stdout, res); err != nil {
			log.Fatal(err)
		}
		return
	}
	expt.RenderFigure11(os.Stdout, res)
	fmt.Printf("(%v)\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("Paper reference: all three fence-free queues perform comparably,")
	fmt.Println("~17% faster than Chase-Lev on average (torus gains most, ~33%), and")
	fmt.Println("the stolen-work fraction stays well under 1% on random/torus inputs —")
	fmt.Println("the worker's path, not the thief's, is what matters.")
}
