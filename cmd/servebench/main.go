// Command servebench runs the serving-regime scheduler sweeps: an
// open-loop latency workload (Poisson arrivals with bursts, fork/join
// request trees entering at worker 0) over the algorithm × scheduler-
// knob × arrival-rate × grain cross product, reporting tail latency and
// steal-path mix per cell, followed by the multiplicity companion sweep
// (sequential requests, where the relaxed WS-MULT family is legal and
// duplicate executions are priced as dups/req). The defaults are
// load.ReferenceSweep and load.ReferenceMultSweep, the two grids behind
// results/BENCH_sched.json.
//
// Usage:
//
//	servebench [-requests 256] [-seeds 3] [-json] [-p N] [-cache dir] [-nocache]
//
// Cells are cached under -cache keyed by (cell config, code version),
// so an interrupted sweep (SIGINT) resumes where it stopped on the next
// invocation; -nocache forces recomputation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/expt"
	"repro/internal/load"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("servebench: ")
	requests := flag.Int("requests", 0, "requests per cell per seed (0 = reference sweep's 256)")
	seeds := flag.Int("seeds", 0, "seeded runs merged per cell (0 = reference sweep's 3)")
	jsonOut := flag.Bool("json", false, "emit the BENCH_sched.json report instead of a table")
	workers := flag.Int("p", 0, "worker-pool size for the sweep (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", runner.DefaultCacheDir, "cell cache directory")
	nocache := flag.Bool("nocache", false, "recompute every cell, ignoring the cache")
	flag.Parse()

	sc := load.ReferenceSweep()
	mc := load.ReferenceMultSweep()
	if *requests > 0 {
		sc.Requests = *requests
		mc.Requests = *requests
	}
	if *seeds > 0 {
		sc.Seeds = *seeds
		mc.Seeds = *seeds
	}

	var cache *runner.Cache
	if !*nocache {
		var err error
		if cache, err = runner.OpenCache(*cacheDir); err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := runner.SignalContext(context.Background())
	defer stop()
	start := time.Now()
	prog := runner.NewProgress(os.Stderr, "serving sweep", 0)
	r := &runner.Runner{Workers: *workers, Progress: prog}
	rows, err := load.Sweep(ctx, r, cache, sc)
	if err == nil {
		var mrows []load.Row
		mrows, err = load.Sweep(ctx, r, cache, mc)
		rows = append(rows, mrows...)
	}
	prog.Finish()
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		if err := load.WriteReport(os.Stdout, load.Report{Requests: sc.Requests, Seeds: sc.Seeds, Rows: rows}); err != nil {
			log.Fatal(err)
		}
		return
	}
	render(rows)
	fmt.Printf("(%d cells, %d requests x %d seeds each, %v)\n",
		len(rows), sc.Requests, sc.Seeds, time.Since(start).Round(time.Millisecond))
}

// render prints the sweep as one aligned table, gap-major like the row
// order.
func render(rows []load.Row) {
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%g", r.Gap),
			fmt.Sprintf("%d", r.Grain),
			fmt.Sprintf("%d", r.Fanout),
			r.Algo,
			r.Knob,
			fmt.Sprintf("%d", r.P50),
			fmt.Sprintf("%d", r.P99),
			fmt.Sprintf("%d", r.P999),
			fmt.Sprintf("%.2f", r.StealsPerReq),
			fmt.Sprintf("%.2f", r.StolenPerReq),
			fmt.Sprintf("%.2f", r.AbortsPerReq),
			fmt.Sprintf("%.2f", r.DupsPerReq),
		})
	}
	expt.WriteTable(os.Stdout, []string{
		"gap", "grain", "fanout", "algorithm", "knob", "p50", "p99", "p99.9",
		"steals/req", "stolen/req", "aborts/req", "dups/req",
	}, table)
}
