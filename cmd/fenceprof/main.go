// Command fenceprof regenerates Figure 1: single-threaded execution time
// of the CilkPlus benchmarks with the take() fence removed, normalized to
// the fenced THE baseline.
//
// Usage:
//
//	fenceprof [-size test|bench]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/apps"
	"repro/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fenceprof: ")
	sizeFlag := flag.String("size", "bench", "input scale: test or bench")
	jsonOut := flag.Bool("json", false, "emit JSON instead of the table")
	flag.Parse()

	size := apps.SizeBench
	switch *sizeFlag {
	case "bench":
	case "test":
		size = apps.SizeTest
	default:
		log.Fatalf("unknown -size %q", *sizeFlag)
	}

	rows, err := expt.Figure1(size)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		if err := expt.WriteFigure1JSON(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
		return
	}
	expt.RenderFigure1(os.Stdout, rows)
	fmt.Println()
	fmt.Println("Paper reference (Haswell): Fib ~75%, Jacobi ~93%, QuickSort ~89%,")
	fmt.Println("Matmul ~95%, Integrate ~80%, knapsack ~78%, cholesky ~97%.")
}
