// Command reproduce regenerates the paper's entire evaluation in one run:
// Table 1 and Figures 1, 7, 8, 10 and 11, in order, with the paper's
// reference values noted next to each. It is the one-command version of
// the individual tools (fenceprof, sbcap, litmus, wsbench, graphbench).
//
// Usage:
//
//	reproduce [-quick]
//
// -quick uses reduced sizes/seeds (~15s); the default full run takes a few
// minutes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"unicode/utf8"

	"repro/internal/apps"
	"repro/internal/expt"
	"repro/internal/litmus"
	"repro/internal/litmusdsl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")
	quick := flag.Bool("quick", false, "reduced sizes and seeds")
	full := flag.Bool("full", false, "also run hyperthreading, spanning tree, litmus-DSL matrix and ablations")
	flag.Parse()

	size := apps.SizeBench
	runs := 5
	litmusOpts := litmus.Options{Tasks: 512, Seeds: 60, DrainBiases: []float64{0.02, 0.15, 0.4}}
	scale := 2000
	if *quick {
		size = apps.SizeTest
		runs = 2
		litmusOpts = litmus.Options{Tasks: 64, Seeds: 15, DrainBiases: []float64{0.02, 0.2}}
		scale = 400
	}

	total := time.Now()
	section("Table 1 — benchmark applications")
	rows := make([][]string, 0, 11)
	for _, a := range apps.All() {
		rows = append(rows, []string{a.Name, a.Desc, a.PaperInput})
	}
	expt.WriteTable(os.Stdout, []string{"Benchmark", "Description", "Input size (paper -> here)"}, rows)

	section("Figure 1 — single-threaded fence overhead")
	step(func() {
		f1, err := expt.Figure1(size)
		check(err)
		expt.RenderFigure1(os.Stdout, f1)
		fmt.Println("\npaper: Fib ~75%, Jacobi ~93%, QuickSort ~89%, Matmul ~95%,")
		fmt.Println("       Integrate ~80%, knapsack ~78%, cholesky ~97%")
	})

	section("Figure 7 — store-buffer capacity")
	step(func() {
		for _, p := range []expt.Platform{expt.Westmere(), expt.HaswellP()} {
			res, err := expt.Figure7(p)
			check(err)
			fmt.Printf("%s: measured %d (same-location: %d); paper: %d\n",
				p.Name, res.Measured, res.SameMeasured, p.Cfg.ObservableBound())
		}
	})

	section("Figure 8 — TSO[S] litmus grid")
	step(func() {
		res := expt.Figure8(litmusOpts)
		expt.RenderFigure8Panel(os.Stdout, "Figure 8a", 32, res.PanelA)
		expt.RenderFigure8Panel(os.Stdout, "Figure 8b", 33, res.PanelB)
		fmt.Println("paper: 8a fails on the line exactly where ceil(32/(L+1)) divides;")
		fmt.Println("       8b correct on/above the line except L=0 (coalescing)")
	})

	section("Figure 10 — CilkPlus suite")
	step(func() {
		for _, p := range []expt.Platform{expt.ScaledWestmere(), expt.ScaledHaswell()} {
			res, err := expt.Figure10(p, size, runs)
			check(err)
			expt.RenderFigure10(os.Stdout, res)
		}
		fmt.Println("paper: THEP up to -23% (avg -11/-13% on improved programs);")
		fmt.Println("       FF-THE default-delta collapses several programs, delta=4 recovers")
	})

	section("Figure 11 — graph workloads")
	step(func() {
		res, err := expt.Figure11(expt.ScaledHaswell(), scale, runs)
		check(err)
		expt.RenderFigure11(os.Stdout, res)
		fmt.Println("paper: fence-free queues comparable, ~17% over Chase-Lev;")
		fmt.Println("       stolen work well under 1% on random/torus")
	})

	if *full {
		section("Figure 10 with hyperthreading (§8.1)")
		step(func() {
			for _, p := range []expt.Platform{expt.ScaledWestmere(), expt.ScaledHaswell()} {
				res, err := expt.Figure10(expt.HT(p), size, runs)
				check(err)
				expt.RenderFigure10(os.Stdout, res)
			}
			fmt.Println("paper: HT shrinks the fence-removal benefit (Haswell 11% -> 7%)")
		})

		section("Figure 11 companion — spanning tree")
		step(func() {
			res, err := expt.Figure11Problem(expt.ScaledHaswell(), expt.ProblemSpanningTree, scale, runs)
			check(err)
			expt.RenderFigure11(os.Stdout, res)
			fmt.Println("paper: \"spanning tree results are similar\"")
		})

		section("Memory-model validation — classic litmus matrix")
		step(func() {
			for _, src := range litmusdsl.Library {
				tst, err := litmusdsl.Parse(src)
				check(err)
				res, err := litmusdsl.Run(tst, litmusdsl.RunOptions{})
				check(err)
				ok := "ok  "
				if !res.Ok() {
					ok = "FAIL"
				}
				fmt.Printf("%s %-14s %s (expect %s, %d schedules, complete=%v)\n",
					ok, tst.Name, res.Verdict, tst.Expect, res.Schedules, res.Complete)
			}
		})

		section("Ablations")
		step(func() {
			rows, err := expt.AblationDeltaCliff(expt.ScaledHaswell())
			check(err)
			expt.RenderAblation(os.Stdout, "FF-THE delta sweep (the collapse mechanism)", rows)
		})
	}

	fmt.Printf("\nall experiments regenerated in %v\n", time.Since(total).Round(time.Second))
}

func section(title string) {
	fmt.Printf("\n%s\n%s\n\n", title, dashes(utf8.RuneCountInString(title)))
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '='
	}
	return string(b)
}

func step(fn func()) {
	start := time.Now()
	fn()
	fmt.Printf("[%v]\n", time.Since(start).Round(time.Millisecond))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
