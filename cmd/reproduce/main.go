// Command reproduce regenerates the paper's entire evaluation in one run:
// Table 1 and Figures 1, 7, 8, 10 and 11, in order, with the paper's
// reference values noted next to each. It is the one-command version of
// the individual tools (fenceprof, sbcap, litmus, wsbench, graphbench).
//
// Usage:
//
//	reproduce [-quick] [-full] [-p N] [-json] [-metrics] [-cache] [-cachedir DIR] [-cpuprofile f] [-memprofile f]
//
// -quick uses reduced sizes/seeds; the default full run takes a few
// minutes. -p sets the worker-pool size for the sweeps (default
// GOMAXPROCS; figures are byte-identical at any -p). -json writes one
// manifest of every figure's result to stdout instead of the text
// tables. -metrics appends an instrumented run (per-thread occupancy,
// stall and drain-latency series plus per-worker steal counters); the
// default output is unchanged without it. -cache=false disables the
// on-disk result cache (results/cache/ by default) that lets re-runs
// skip already-computed figures.
//
// Figures and tables go to stdout; progress, per-section timing and
// cache notes go to stderr, so stdout is byte-for-byte reproducible.
// A failing figure marks its section FAILED and the exit status reports
// which sections failed instead of dying mid-output; ^C cancels the
// remaining jobs and sections.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"unicode/utf8"

	"repro/internal/apps"
	"repro/internal/expt"
	"repro/internal/litmus"
	"repro/internal/runner"
)

// sweep bundles one section's execution state: where text output goes,
// where progress goes, the worker pool size and the result cache.
type sweep struct {
	out      io.Writer // figures/tables (stdout, or discarded under -json)
	errW     io.Writer // progress, timings, cache notes
	workers  int
	cache    *runner.Cache
	manifest []expt.ManifestEntry
	failures []string
	total    time.Time
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")
	quick := flag.Bool("quick", false, "reduced sizes and seeds")
	full := flag.Bool("full", false, "also run hyperthreading, spanning tree, litmus-DSL matrix and ablations")
	workers := flag.Int("p", 0, "worker-pool size for the sweeps (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit one JSON manifest of all figure results instead of tables")
	metrics := flag.Bool("metrics", false, "append an instrumented metrics run (occupancy/stall/drain series)")
	useCache := flag.Bool("cache", true, "reuse cached figure results from -cachedir")
	cacheDir := flag.String("cachedir", runner.DefaultCacheDir, "result cache directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap (allocs) profile to this file on exit")
	flag.Parse()

	stopProfiles, err := runner.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
	}()

	size := apps.SizeBench
	runs := 5
	litmusOpts := litmus.Options{Tasks: 512, Seeds: 60, DrainBiases: []float64{0.02, 0.15, 0.4}}
	scale := 2000
	if *quick {
		size = apps.SizeTest
		runs = 2
		litmusOpts = litmus.Options{Tasks: 64, Seeds: 15, DrainBiases: []float64{0.02, 0.2}}
		scale = 400
	}

	s := &sweep{out: os.Stdout, errW: os.Stderr, workers: *workers, total: time.Now()}
	if *jsonOut {
		s.out = io.Discard
	}
	if *useCache {
		c, err := runner.OpenCache(*cacheDir)
		if err != nil {
			log.Printf("cache disabled: %v", err)
		} else {
			s.cache = c
		}
	}
	ctx, stop := runner.SignalContext(context.Background())
	defer stop()

	// cacheCfg keys every cached figure on the parameters that shape it;
	// the cache adds the code version itself.
	type cacheCfg struct {
		Quick bool   `json:"quick"`
		Runs  int    `json:"runs"`
		Scale int    `json:"scale"`
		Part  string `json:"part"`
	}
	key := func(part string) cacheCfg { return cacheCfg{Quick: *quick, Runs: runs, Scale: scale, Part: part} }

	s.step(ctx, "Table 1 — benchmark applications", "table1",
		func(r *runner.Runner) (any, func(io.Writer), error) {
			rows := make([][]string, 0, 11)
			for _, a := range apps.All() {
				rows = append(rows, []string{a.Name, a.Desc, a.PaperInput})
			}
			return rows, func(w io.Writer) {
				expt.WriteTable(w, []string{"Benchmark", "Description", "Input size (paper -> here)"}, rows)
			}, nil
		})

	s.step(ctx, "Figure 1 — single-threaded fence overhead", "figure1",
		func(r *runner.Runner) (any, func(io.Writer), error) {
			rows, hit, err := runner.Cached(s.cache, "figure1", key(""), func() ([]expt.Fig1Row, error) {
				return expt.Figure1(size)
			})
			s.noteCache("figure1", hit)
			if err != nil {
				return nil, nil, err
			}
			return rows, func(w io.Writer) {
				expt.RenderFigure1(w, rows)
				fmt.Fprintln(w, "\npaper: Fib ~75%, Jacobi ~93%, QuickSort ~89%, Matmul ~95%,")
				fmt.Fprintln(w, "       Integrate ~80%, knapsack ~78%, cholesky ~97%")
			}, nil
		})

	s.step(ctx, "Figure 7 — store-buffer capacity", "figure7",
		func(r *runner.Runner) (any, func(io.Writer), error) {
			results, hit, err := runner.Cached(s.cache, "figure7", key(""), func() ([]expt.Fig7Result, error) {
				var out []expt.Fig7Result
				for _, p := range []expt.Platform{expt.Westmere(), expt.HaswellP()} {
					res, err := expt.Figure7(p)
					if err != nil {
						return nil, err
					}
					out = append(out, res)
				}
				return out, nil
			})
			s.noteCache("figure7", hit)
			if err != nil {
				return nil, nil, err
			}
			bounds := map[string]int{
				expt.Westmere().Name: expt.Westmere().Cfg.ObservableBound(),
				expt.HaswellP().Name: expt.HaswellP().Cfg.ObservableBound(),
			}
			return results, func(w io.Writer) {
				for _, res := range results {
					fmt.Fprintf(w, "%s: measured %d (same-location: %d); paper: %d\n",
						res.Platform, res.Measured, res.SameMeasured, bounds[res.Platform])
				}
			}, nil
		})

	s.step(ctx, "Figure 8 — TSO[S] litmus grid", "figure8",
		func(r *runner.Runner) (any, func(io.Writer), error) {
			res, hit, err := runner.Cached(s.cache, "figure8", key(""), func() (expt.Fig8Result, error) {
				opts := litmusOpts
				opts.Runner = r
				return expt.Figure8Ctx(ctx, opts)
			})
			s.noteCache("figure8", hit)
			if err != nil {
				return nil, nil, err
			}
			return res, func(w io.Writer) {
				expt.RenderFigure8Panel(w, "Figure 8a", 32, res.PanelA)
				expt.RenderFigure8Panel(w, "Figure 8b", 33, res.PanelB)
				fmt.Fprintln(w, "paper: 8a fails on the line exactly where ceil(32/(L+1)) divides;")
				fmt.Fprintln(w, "       8b correct on/above the line except L=0 (coalescing)")
			}, nil
		})

	s.step(ctx, "Figure 10 — CilkPlus suite", "figure10",
		func(r *runner.Runner) (any, func(io.Writer), error) {
			results, hit, err := runner.Cached(s.cache, "figure10", key(""), func() ([]expt.Fig10Result, error) {
				var out []expt.Fig10Result
				for _, p := range []expt.Platform{expt.ScaledWestmere(), expt.ScaledHaswell()} {
					res, err := expt.Figure10Ctx(ctx, r, p, size, runs)
					if err != nil {
						return nil, err
					}
					out = append(out, res)
				}
				return out, nil
			})
			s.noteCache("figure10", hit)
			if err != nil {
				return nil, nil, err
			}
			return results, func(w io.Writer) {
				for _, res := range results {
					expt.RenderFigure10(w, res)
				}
				fmt.Fprintln(w, "paper: THEP up to -23% (avg -11/-13% on improved programs);")
				fmt.Fprintln(w, "       FF-THE default-delta collapses several programs, delta=4 recovers")
			}, nil
		})

	s.step(ctx, "Figure 11 — graph workloads", "figure11",
		func(r *runner.Runner) (any, func(io.Writer), error) {
			res, hit, err := runner.Cached(s.cache, "figure11", key(""), func() (expt.Fig11Result, error) {
				return expt.Figure11Ctx(ctx, r, expt.ScaledHaswell(), scale, runs)
			})
			s.noteCache("figure11", hit)
			if err != nil {
				return nil, nil, err
			}
			return res, func(w io.Writer) {
				expt.RenderFigure11(w, res)
				fmt.Fprintln(w, "paper: fence-free queues comparable, ~17% over Chase-Lev;")
				fmt.Fprintln(w, "       stolen work well under 1% on random/torus")
			}, nil
		})

	if *full {
		s.step(ctx, "Figure 10 with hyperthreading (§8.1)", "figure10-ht",
			func(r *runner.Runner) (any, func(io.Writer), error) {
				results, hit, err := runner.Cached(s.cache, "figure10-ht", key(""), func() ([]expt.Fig10Result, error) {
					var out []expt.Fig10Result
					for _, p := range []expt.Platform{expt.ScaledWestmere(), expt.ScaledHaswell()} {
						res, err := expt.Figure10Ctx(ctx, r, expt.HT(p), size, runs)
						if err != nil {
							return nil, err
						}
						out = append(out, res)
					}
					return out, nil
				})
				s.noteCache("figure10-ht", hit)
				if err != nil {
					return nil, nil, err
				}
				return results, func(w io.Writer) {
					for _, res := range results {
						expt.RenderFigure10(w, res)
					}
					fmt.Fprintln(w, "paper: HT shrinks the fence-removal benefit (Haswell 11% -> 7%)")
				}, nil
			})

		s.step(ctx, "Figure 11 companion — spanning tree", "figure11-spanning",
			func(r *runner.Runner) (any, func(io.Writer), error) {
				res, hit, err := runner.Cached(s.cache, "figure11-spanning", key(""), func() (expt.Fig11Result, error) {
					return expt.Figure11ProblemCtx(ctx, r, expt.ScaledHaswell(), expt.ProblemSpanningTree, scale, runs)
				})
				s.noteCache("figure11-spanning", hit)
				if err != nil {
					return nil, nil, err
				}
				return res, func(w io.Writer) {
					expt.RenderFigure11(w, res)
					fmt.Fprintln(w, "paper: \"spanning tree results are similar\"")
				}, nil
			})

		s.step(ctx, "Memory-model validation — classic litmus matrix", "litmus-matrix",
			func(r *runner.Runner) (any, func(io.Writer), error) {
				rows, hit, err := runner.Cached(s.cache, "litmus-matrix", key(""), func() ([]expt.MatrixRow, error) {
					return expt.LitmusMatrix(ctx, r)
				})
				s.noteCache("litmus-matrix", hit)
				if err != nil {
					return nil, nil, err
				}
				return rows, func(w io.Writer) { expt.RenderLitmusMatrix(w, rows) }, nil
			})

		s.step(ctx, "Ablations", "ablation-delta-cliff",
			func(r *runner.Runner) (any, func(io.Writer), error) {
				rows, hit, err := runner.Cached(s.cache, "ablation-delta-cliff", key(""), func() ([]expt.AblationRow, error) {
					return expt.AblationDeltaCliff(expt.ScaledHaswell())
				})
				s.noteCache("ablation-delta-cliff", hit)
				if err != nil {
					return nil, nil, err
				}
				return rows, func(w io.Writer) {
					expt.RenderAblation(w, "FF-THE delta sweep (the collapse mechanism)", rows)
				}, nil
			})
	}

	if *metrics {
		s.step(ctx, "Observability — instrumented metrics run", "metrics",
			func(r *runner.Runner) (any, func(io.Writer), error) {
				rep, err := expt.CollectMetrics(expt.ScaledHaswell(), "timed")
				if err != nil {
					return nil, nil, err
				}
				return rep, func(w io.Writer) { expt.RenderMetrics(w, rep) }, nil
			})
	}

	if *jsonOut {
		if err := expt.WriteManifestJSON(os.Stdout, s.manifest); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(s.errW, "\nall experiments regenerated in %v\n", time.Since(s.total).Round(time.Second))
	if len(s.failures) > 0 {
		for _, f := range s.failures {
			log.Printf("FAILED %s", f)
		}
		if err := stopProfiles(); err != nil {
			log.Print(err)
		}
		os.Exit(1)
	}
}

// step runs one section: header to the text writer, the section body on
// a fresh pool wearing this section's progress reporter, then either the
// rendered figure plus a manifest entry, or a FAILED marker. Errors no
// longer kill the process mid-output — the section is recorded as failed
// and the run continues (unless the context is cancelled).
func (s *sweep) step(ctx context.Context, title, experiment string, fn func(r *runner.Runner) (any, func(io.Writer), error)) {
	fmt.Fprintf(s.out, "\n%s\n%s\n\n", title, dashes(utf8.RuneCountInString(title)))
	if err := ctx.Err(); err != nil {
		s.fail(title, err)
		return
	}
	prog := runner.NewProgress(s.errW, title, 0)
	r := &runner.Runner{Workers: s.workers, Progress: prog}
	start := time.Now()
	data, render, err := fn(r)
	prog.Finish()
	if err != nil {
		s.fail(title, err)
		return
	}
	render(s.out)
	s.manifest = append(s.manifest, expt.ManifestEntry{Experiment: experiment, Data: data})
	fmt.Fprintf(s.errW, "[%s in %v]\n", title, time.Since(start).Round(time.Millisecond))
}

// fail records a failed or skipped section on both streams.
func (s *sweep) fail(title string, err error) {
	s.failures = append(s.failures, fmt.Sprintf("%s: %v", title, err))
	fmt.Fprintf(s.out, "FAILED: %v\n", err)
	fmt.Fprintf(s.errW, "[%s FAILED: %v]\n", title, err)
}

// noteCache reports a cache hit on stderr so stdout stays reproducible.
func (s *sweep) noteCache(name string, hit bool) {
	if hit {
		fmt.Fprintf(s.errW, "[%s: cached]\n", name)
	}
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '='
	}
	return string(b)
}
