// Command ablate runs the reproduction's ablation studies: the design
// choices behind the figures, isolated one at a time. See
// internal/expt/ablation.go for what each sweep demonstrates.
//
// Usage:
//
//	ablate
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	p := expt.ScaledHaswell()

	rows, err := expt.AblationClientStores(p)
	if err != nil {
		log.Fatal(err)
	}
	expt.RenderAblation(os.Stdout,
		"Ablation 1: client stores between takes (x) with the matching sound delta = ceil(S/(x+1))", rows)
	fmt.Println("More client stores shrink delta, letting thieves steal from shallower queues (§4).")
	fmt.Println()

	rows, err = expt.AblationDeltaCliff(p)
	if err != nil {
		log.Fatal(err)
	}
	expt.RenderAblation(os.Stdout, "Ablation 2: FF-THE delta sweep on Fib (fixed workload)", rows)
	fmt.Println("Once delta exceeds the queue's typical depth, aborts replace steals and the")
	fmt.Println("run collapses toward single-threaded time — Figure 10's FF-THE pathology, isolated.")
	fmt.Println()

	rows, err = expt.AblationDrainLatency()
	if err != nil {
		log.Fatal(err)
	}
	expt.RenderAblation(os.Stdout,
		"Ablation 3: drain latency vs single-threaded fence overhead on Fib (normalized = fence-free/fenced)", rows)
	fmt.Println("The fence penalty is store-drain latency made visible: overhead grows with it,")
	fmt.Println("confirming the modelled mechanism behind Figure 1.")
	fmt.Println()

	scaling, err := expt.AblationWorkerScaling(expt.Figure10Variants()[3].Algo, 7, []int{1, 2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	expt.RenderAblation(os.Stdout, "Ablation 5: worker scaling (THEP, Fib)", scaling)
	fmt.Println("The runtime parallelizes: makespan falls as workers are added (not a paper")
	fmt.Println("figure; a sanity check that the scheduler under the figures actually scales).")
	fmt.Println()

	rows, err = expt.AblationStealBackoff(p)
	if err != nil {
		log.Fatal(err)
	}
	expt.RenderAblation(os.Stdout, "Ablation 4: failed-steal backoff on a wide flat graph", rows)
	fmt.Println("The runtime's backoff is not load-bearing for the paper's comparisons: all")
	fmt.Println("algorithms share it, and its effect is small next to the fence/delta effects.")
}
