// Command ablate runs the reproduction's ablation studies: the design
// choices behind the figures, isolated one at a time. See
// internal/expt/ablation.go for what each sweep demonstrates.
//
// Usage:
//
//	ablate [-metrics] [-p N]
//
// The five studies are independent, so they run as jobs on a worker pool
// (-p 0 = GOMAXPROCS) and render in a fixed order — the output is
// byte-identical at any pool size. -metrics appends an instrumented
// timed-engine run on the studies' platform. ^C cancels the studies not
// yet started.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/expt"
	"repro/internal/runner"
)

// study is one ablation: a titled sweep plus the sentence that says what
// it demonstrates.
type study struct {
	title   string
	prose   []string
	compute func() ([]expt.AblationRow, error)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ablate: ")
	metrics := flag.Bool("metrics", false, "append an instrumented timed-engine metrics run")
	workers := flag.Int("p", 0, "worker-pool size for the studies (0 = GOMAXPROCS)")
	flag.Parse()
	p := expt.ScaledHaswell()

	studies := []study{
		{
			title: "Ablation 1: client stores between takes (x) with the matching sound delta = ceil(S/(x+1))",
			prose: []string{"More client stores shrink delta, letting thieves steal from shallower queues (§4)."},
			compute: func() ([]expt.AblationRow, error) { return expt.AblationClientStores(p) },
		},
		{
			title: "Ablation 2: FF-THE delta sweep on Fib (fixed workload)",
			prose: []string{
				"Once delta exceeds the queue's typical depth, aborts replace steals and the",
				"run collapses toward single-threaded time — Figure 10's FF-THE pathology, isolated.",
			},
			compute: func() ([]expt.AblationRow, error) { return expt.AblationDeltaCliff(p) },
		},
		{
			title: "Ablation 3: drain latency vs single-threaded fence overhead on Fib (normalized = fence-free/fenced)",
			prose: []string{
				"The fence penalty is store-drain latency made visible: overhead grows with it,",
				"confirming the modelled mechanism behind Figure 1.",
			},
			compute: expt.AblationDrainLatency,
		},
		{
			title: "Ablation 5: worker scaling (THEP, Fib)",
			prose: []string{
				"The runtime parallelizes: makespan falls as workers are added (not a paper",
				"figure; a sanity check that the scheduler under the figures actually scales).",
			},
			compute: func() ([]expt.AblationRow, error) {
				return expt.AblationWorkerScaling(expt.Figure10Variants()[3].Algo, 7, []int{1, 2, 4, 8})
			},
		},
		{
			title: "Ablation 4: failed-steal backoff on a wide flat graph",
			prose: []string{
				"The runtime's backoff is not load-bearing for the paper's comparisons: all",
				"algorithms share it, and its effect is small next to the fence/delta effects.",
			},
			compute: func() ([]expt.AblationRow, error) { return expt.AblationStealBackoff(p) },
		},
	}

	ctx, stop := runner.SignalContext(context.Background())
	defer stop()
	prog := runner.NewProgress(os.Stderr, "ablations", 0)
	pool := &runner.Runner{Workers: *workers, Progress: prog}
	name := func(_ int, s study) string { return s.title }
	results, err := runner.Map(ctx, pool, studies, name,
		func(_ context.Context, s study) ([]expt.AblationRow, error) { return s.compute() })
	prog.Finish()
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range studies {
		expt.RenderAblation(os.Stdout, s.title, results[i])
		for _, line := range s.prose {
			fmt.Println(line)
		}
		if i < len(studies)-1 {
			fmt.Println()
		}
	}

	if *metrics {
		rep, err := expt.CollectMetrics(p, "timed")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		expt.RenderMetrics(os.Stdout, rep)
	}
}
