package repro

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllExportedIdentifiersDocumented walks every non-test source file in
// the module and fails if an exported declaration lacks a doc comment —
// the "documented public API" deliverable, enforced mechanically.
func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "results" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					missing = append(missing, pos(fset, d.Pos(), "func "+d.Name.Name))
				}
			case *ast.GenDecl:
				checkGenDecl(fset, d, &missing)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("exported identifiers without doc comments:\n  %s", strings.Join(missing, "\n  "))
	}
}

// checkGenDecl flags undocumented exported types, consts and vars. A doc
// comment on the grouped declaration covers its members, matching godoc's
// rendering.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl, missing *[]string) {
	groupDocumented := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDocumented && s.Doc == nil && s.Comment == nil {
				*missing = append(*missing, pos(fset, s.Pos(), "type "+s.Name.Name))
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				checkFields(fset, s.Name.Name, st, missing)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && !groupDocumented && s.Doc == nil && s.Comment == nil {
					*missing = append(*missing, pos(fset, n.Pos(), "value "+n.Name))
				}
			}
		}
	}
}

// checkFields flags undocumented exported fields of exported structs; a
// line comment counts.
func checkFields(fset *token.FileSet, typeName string, st *ast.StructType, missing *[]string) {
	for _, f := range st.Fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, n := range f.Names {
			if n.IsExported() {
				*missing = append(*missing, pos(fset, n.Pos(), "field "+typeName+"."+n.Name))
			}
		}
	}
}

func pos(fset *token.FileSet, p token.Pos, what string) string {
	pp := fset.Position(p)
	return pp.Filename + ":" + itoa(pp.Line) + " " + what
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
