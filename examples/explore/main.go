// Explore: exhaustive model checking on the abstract TSO[S] machine.
//
// Where the other examples sample adversarial schedules, this one
// enumerates *all* of them for three small programs, proving (rather than
// suggesting) the memory-model facts the paper builds on — and showing the
// whole argument collapse under PSO, the §10 future-work boundary.
//
// Run with:
//
//	go run ./examples/explore
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tso"
)

func main() {
	fmt.Println("== 1. Store buffering (SB): the reordering TSO allows ==")
	sb(false)
	fmt.Println("\n== 2. SB with fences: the reordering the fence forbids ==")
	sb(true)
	fmt.Println("\n== 3. Message passing under TSO vs PSO ==")
	mp(tso.ModelTSO)
	mp(tso.ModelPSO)
	fmt.Println("\n== 4. The laws-of-order state ρ, exhaustively ==")
	rho()
}

func sb(fenced bool) {
	var x, y, r0a, r1a tso.Addr
	mk := func(m *tso.Machine) []func(tso.Context) {
		x, y = m.Alloc(1), m.Alloc(1)
		r0a, r1a = m.Alloc(1), m.Alloc(1)
		prog := func(store, load tso.Addr, res tso.Addr) func(tso.Context) {
			return func(c tso.Context) {
				c.Store(store, 1)
				if fenced {
					c.Fence()
				}
				c.Store(res, c.Load(load)+1)
			}
		}
		return []func(tso.Context){prog(x, y, r0a), prog(y, x, r1a)}
	}
	out := func(m *tso.Machine) string {
		return fmt.Sprintf("r0=%d r1=%d", m.Peek(r0a)-1, m.Peek(r1a)-1)
	}
	set, res := tso.ExploreOutcomes(tso.Config{Threads: 2, BufferSize: 2}, mk, out, tso.ExploreOptions{})
	fmt.Printf("schedules: %d (complete)\n", res.Runs)
	for _, o := range []string{"r0=0 r1=0", "r0=0 r1=1", "r0=1 r1=0", "r0=1 r1=1"} {
		fmt.Printf("  %-10s reachable: %v\n", o, set.Has(o))
	}
}

func mp(model tso.MemoryModel) {
	var x, y, fA, dA tso.Addr
	mk := func(m *tso.Machine) []func(tso.Context) {
		x, y = m.Alloc(1), m.Alloc(1)
		fA, dA = m.Alloc(1), m.Alloc(1)
		return []func(tso.Context){
			func(c tso.Context) { c.Store(x, 1); c.Store(y, 1) },
			func(c tso.Context) {
				f := c.Load(y)
				d := c.Load(x)
				c.Store(fA, f)
				c.Store(dA, d)
			},
		}
	}
	out := func(m *tso.Machine) string {
		return fmt.Sprintf("flag=%d data=%d", m.Peek(fA), m.Peek(dA))
	}
	set, res := tso.ExploreOutcomes(tso.Config{Threads: 2, BufferSize: 2, Model: model}, mk, out, tso.ExploreOptions{})
	fmt.Printf("%s: %d schedules; flag-without-data reachable: %v\n",
		model, res.Runs, set.Has("flag=1 data=0"))
}

func rho() {
	var resA tso.Addr
	mk := func(m *tso.Machine) []func(tso.Context) {
		q := core.NewFFCL(m, 8, 1)
		q.Prefill(m, []uint64{42})
		resA = m.Alloc(1)
		return []func(tso.Context){
			func(c tso.Context) {
				_, st := q.Steal(c)
				c.Store(resA, uint64(st))
			},
		}
	}
	out := func(m *tso.Machine) string { return core.Status(m.Peek(resA)).String() }
	set, res := tso.ExploreOutcomes(tso.Config{Threads: 1, BufferSize: 4}, mk, out, tso.ExploreOptions{})
	fmt.Printf("FF-CL lone thief on a 1-task queue: %d schedule(s), outcomes %v\n", res.Runs, set.Counts)
	fmt.Println("The steal from ρ never happens — the tightness assumption of the")
	fmt.Println("\"laws of order\" impossibility result is violated, which is how the")
	fmt.Println("algorithms get away without the worker's fence (§6).")
}
