// Simulate: run the paper's fence-free queues on the abstract TSO[S]
// machine and watch the bounded-reordering argument work — and fail when
// δ is chosen below the machine's observable bound.
//
// Run with:
//
//	go run ./examples/simulate
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/tso"
)

func main() {
	fmt.Println("== A sound δ: every task delivered exactly once ==")
	duplicates, aborts := drain(4 /* S */, 4 /* δ = S: sound for L=0 */, 400)
	fmt.Printf("δ=4 on an S=4 machine: %d duplicates across 400 schedules (aborts: %d)\n\n", duplicates, aborts)
	if duplicates != 0 {
		log.Fatal("sound δ produced a duplicate!")
	}

	fmt.Println("== An unsound δ: the reordering bound bites ==")
	duplicates, _ = drain(4, 1 /* δ < S: unsound */, 400)
	fmt.Printf("δ=1 on an S=4 machine: %d duplicates across 400 schedules\n", duplicates)
	if duplicates == 0 {
		log.Fatal("expected violations with an unsound δ")
	}
	fmt.Println("\nThe thief saw a stale tail index and stole a task whose removal was")
	fmt.Println("still sitting in the worker's store buffer — the exact failure the")
	fmt.Println("fence (or a correct δ) prevents.")
}

// drain runs the Figure 9-style program: a worker takes and a thief steals
// from an FF-THE queue of 40 tasks on a 2-thread TSO[S] machine, counting
// double deliveries across many adversarial schedules.
func drain(s, delta int, schedules int) (duplicates, aborts int) {
	for seed := 0; seed < schedules; seed++ {
		m := tso.NewMachine(tso.Config{
			Threads:    2,
			BufferSize: s,
			Seed:       int64(seed),
			DrainBias:  0.05, // starve drains: maximize reordering
		})
		q := core.NewFFTHE(m, 128, delta)
		const n = 40
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(i) + 1
		}
		q.Prefill(m, vals)

		counts := make([]int, n+1)
		workerDone := false
		err := m.Run(
			func(c tso.Context) { // worker: take until empty, no fence!
				for {
					v, st := q.Take(c)
					if st == core.Empty {
						workerDone = true
						return
					}
					counts[v]++
				}
			},
			func(c tso.Context) { // thief: steal until the worker finishes
				for {
					v, st := q.Steal(c)
					switch st {
					case core.OK:
						counts[v]++
					case core.Abort:
						aborts++
						if workerDone {
							return
						}
					}
				}
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		for _, cnt := range counts {
			if cnt > 1 {
				duplicates++
			}
		}
	}
	return duplicates, aborts
}
