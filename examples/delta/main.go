// Delta: derive a safe δ for a client program, the way §4 and §8.1 do.
//
// The workflow mirrors the paper's: (1) measure the machine's observable
// store-buffer bound with the Figure 6 microbenchmark, (2) count the
// stores the client performs between take() calls, (3) compute
// δ = ⌈S/(x+1)⌉, and (4) validate the choice against the litmus test.
//
// Run with:
//
//	go run ./examples/delta
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/measure"
	"repro/internal/tso"
)

func main() {
	// Step 1: measure the observable bound on the "deployment" machine —
	// here a Westmere-EX model whose documented store buffer has 32
	// entries but whose drain stage makes 33 observable.
	cfg := tso.WestmereEX()
	pts := measure.StoreBufferCapacity(cfg, measure.CapacityOptions{MaxSeq: 45, Iters: 16})
	s, err := measure.DetectCapacity(pts, tso.DefaultCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured observable store-buffer bound: S = %d (documented entries: %d)\n",
		s, cfg.BufferSize)

	// Step 2+3: δ for a few client profiles.
	fmt.Println("\nδ = ⌈S/(x+1)⌉ for x client stores between take() calls:")
	for _, x := range []int{0, 1, 2, 4, 8, 32} {
		fmt.Printf("  x = %2d  ->  δ = %d\n", x, core.Delta(s, x))
	}
	fmt.Println("\nCilkPlus writes one field of the dequeued task after every take(),")
	fmt.Printf("so x >= 1 and the default δ is %d.\n", core.DefaultDelta(s))

	// Step 4: validate δ with the litmus test (a scaled-down machine so
	// this example runs in about a second).
	small := tso.Config{BufferSize: 4, DrainBuffer: true} // observable bound 5
	bound := small.ObservableBound()
	opts := litmus.Options{Tasks: 64, Seeds: 60, DrainBiases: []float64{0.03, 0.2}}

	good := litmus.RunPoint(small, 1, core.Delta(bound, 1), opts)
	bad := litmus.RunPoint(small, 1, core.Delta(bound, 1)-1, opts)
	fmt.Printf("\nvalidation on an S=%d model (bound %d), L=1 store between takes:\n", small.BufferSize, bound)
	fmt.Printf("  δ = %d (sound):   %d/%d incorrect runs\n", good.Delta, good.Incorrect, good.Runs)
	fmt.Printf("  δ = %d (unsound): %d/%d incorrect runs\n", bad.Delta, bad.Incorrect, bad.Runs)
	if !good.Correct() {
		log.Fatal("sound δ failed the litmus test")
	}
	if bad.Correct() {
		fmt.Println("  (note: the unsound δ happened to survive this sweep; rerun with more seeds)")
	}
}
