// Fib: fork/join Fibonacci two ways — natively on goroutines, and on the
// simulated TSO machine where the fence actually costs cycles.
//
// The native run shows the adoptable library at work (and why its take
// path cannot elide the fence in Go); the simulated run reproduces the
// paper's headline: removing the worker's fence makes fine-grained
// work stealing ~25% faster.
//
// Run with:
//
//	go run ./examples/fib
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/sched"
	"repro/internal/tso"
)

func main() {
	const n = 25
	fmt.Printf("== native pool: fib(%d) on 4 goroutine workers ==\n", n)
	nativeFib(n)

	fmt.Println("\n== simulated TSO machine: the cost of the fence ==")
	simulatedFib(18)
}

func nativeFib(n int) {
	pool := native.NewPool(native.Options{Workers: 4})
	defer pool.Close()
	var sum atomic.Int64 // fib(n) = number of leaves reaching n<2 weighted by n
	var fib func(n int) native.Task
	fib = func(n int) native.Task {
		return func(c *native.Context) {
			if n < 2 {
				sum.Add(int64(n))
				return
			}
			c.Spawn(fib(n - 1))
			c.Spawn(fib(n - 2))
		}
	}
	if err := pool.Submit(fib(n)); err != nil {
		log.Fatal(err)
	}
	pool.Wait()
	executed, steals, _ := pool.Stats()
	fmt.Printf("fib(%d) = %d; %d tasks, %d steals\n", n, sum.Load(), executed, steals)
}

// simulatedFib runs the same computation on the timed TSO machine with the
// fenced THE queue and the fence-free THEP queue, single worker plus three
// thieves, and compares virtual cycles.
func simulatedFib(n int) {
	run := func(algo core.Algo, delta int) uint64 {
		m := tso.NewTimedMachine(tso.Config{Threads: 4, BufferSize: 13, DrainBuffer: true})
		p := sched.NewPool(m, sched.Options{Algo: algo, Delta: delta, Seed: 1})
		var out uint64
		root := fibTask(n, &out)
		if _, err := p.Run(root); err != nil {
			log.Fatal(err)
		}
		if out != fibSerial(n) {
			log.Fatalf("fib(%d) = %d want %d", n, out, fibSerial(n))
		}
		return m.Elapsed()
	}
	fenced := run(core.AlgoTHE, 0)
	free := run(core.AlgoTHEP, core.DefaultDelta(14))
	fmt.Printf("THE  (fenced):      %8d cycles\n", fenced)
	fmt.Printf("THEP (fence-free):  %8d cycles  (%.1f%% of baseline)\n",
		free, 100*float64(free)/float64(fenced))
}

func fibTask(n int, out *uint64) sched.TaskFunc {
	return func(w *sched.Worker) {
		w.Work(45)
		if n < 2 {
			*out = uint64(n)
			return
		}
		var a, b uint64
		w.Fork(func(w *sched.Worker) {
			w.Work(10)
			*out = a + b
		}, fibTask(n-1, &a), fibTask(n-2, &b))
	}
}

func fibSerial(n int) uint64 {
	a, b := uint64(0), uint64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}
