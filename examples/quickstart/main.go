// Quickstart: the native work-stealing pool.
//
// This example uses the repository's adoptable artifact — the Chase-Lev
// deque pool in internal/native — to parallelize a simple divide-and-
// conquer sum. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"repro/internal/native"
)

func main() {
	pool := native.NewPool(native.Options{Workers: 4})
	defer pool.Close()

	// Sum 1..10_000_000 by recursive splitting: each task either splits
	// its range or accumulates it directly.
	var total atomic.Int64
	var sum func(lo, hi int64) native.Task
	sum = func(lo, hi int64) native.Task {
		return func(c *native.Context) {
			if hi-lo <= 100_000 {
				s := int64(0)
				for i := lo; i < hi; i++ {
					s += i
				}
				total.Add(s)
				return
			}
			mid := (lo + hi) / 2
			c.Spawn(sum(lo, mid))
			c.Spawn(sum(mid, hi))
		}
	}

	const n = 10_000_001
	if err := pool.Submit(sum(1, n)); err != nil {
		log.Fatal(err)
	}
	pool.Wait()

	want := int64(n-1) * int64(n) / 2
	fmt.Printf("sum(1..%d) = %d (want %d)\n", n-1, total.Load(), want)
	executed, steals, _ := pool.Stats()
	fmt.Printf("tasks executed: %d, obtained by stealing: %d\n", executed, steals)
	if total.Load() != want {
		log.Fatal("wrong sum")
	}
}
