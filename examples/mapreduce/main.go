// MapReduce: the intro's other motivating domain ("…as well as in
// (multicore) MapReduce") on the native work-stealing pool: a word-count
// over synthetic documents, with parallel map, per-worker combiners, and a
// parallel reduce over the partitioned key space.
//
// Run with:
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/native"
)

const shards = 64

// shardMap is a sharded concurrent counter: word → count, hashed across
// independently locked shards so mapper tasks rarely contend.
type shardMap struct {
	mu     [shards]sync.Mutex
	counts [shards]map[string]int
}

func newShardMap() *shardMap {
	s := &shardMap{}
	for i := range s.counts {
		s.counts[i] = map[string]int{}
	}
	return s
}

func (s *shardMap) add(word string, n int) {
	h := fnv(word) % shards
	s.mu[h].Lock()
	s.counts[h][word] += n
	s.mu[h].Unlock()
}

func fnv(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

func main() {
	docs := synthesize(2000)
	pool := native.NewPool(native.Options{Workers: 4})
	defer pool.Close()

	// Map phase: one task per document, sharded combiner.
	counts := newShardMap()
	native.For(pool, 0, len(docs), 8, func(i int) {
		for _, w := range strings.Fields(docs[i]) {
			counts.add(w, 1)
		}
	})

	// Reduce phase: fold the shards in parallel into (word, count) pairs.
	type kv struct {
		word  string
		count int
	}
	shardsOut := native.Map(pool, counts.counts[:], 4, func(m map[string]int) []kv {
		out := make([]kv, 0, len(m))
		for w, c := range m {
			out = append(out, kv{w, c})
		}
		return out
	})
	var all []kv
	for _, s := range shardsOut {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].word < all[j].word
	})

	perWord := native.Map(pool, all, 32, func(e kv) int { return e.count })
	total := native.Reduce(pool, perWord, 32, 0, func(a, b int) int { return a + b })

	fmt.Printf("%d documents, %d distinct words, %d total words\n", len(docs), len(all), total)
	fmt.Println("top 5:")
	for _, e := range all[:5] {
		fmt.Printf("  %-12s %d\n", e.word, e.count)
	}

	// Verify against a serial count.
	serial := map[string]int{}
	st := 0
	for _, d := range docs {
		for _, w := range strings.Fields(d) {
			serial[w]++
			st++
		}
	}
	if st != total || len(serial) != len(all) {
		log.Fatalf("mismatch: parallel %d/%d vs serial %d/%d", total, len(all), st, len(serial))
	}
	fmt.Println("verified against serial word count")
}

var vocabulary = strings.Fields(`work stealing deque fence store buffer load
reorder tso bound thief worker task queue steal take put cilk spawn sync
memory model drain coalesce echo abort delta capacity haswell westmere`)

func synthesize(n int) []string {
	r := rand.New(rand.NewSource(7))
	docs := make([]string, n)
	for i := range docs {
		var b strings.Builder
		words := 20 + r.Intn(60)
		for w := 0; w < words; w++ {
			b.WriteString(vocabulary[r.Intn(len(vocabulary))])
			b.WriteByte(' ')
		}
		docs[i] = b.String()
	}
	return docs
}
