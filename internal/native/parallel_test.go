package native

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(Options{Workers: 4, Seed: 11})
	defer p.Close()
	const n = 10_000
	var counts [n]atomic.Int32
	For(p, 0, n, 64, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestForEmptyAndTinyRanges(t *testing.T) {
	p := NewPool(Options{Workers: 2, Seed: 12})
	defer p.Close()
	ran := 0
	For(p, 5, 5, 8, func(int) { ran++ })
	if ran != 0 {
		t.Fatal("empty range ran")
	}
	For(p, 3, 4, 8, func(i int) {
		if i != 3 {
			t.Errorf("i=%d", i)
		}
		ran++
	})
	if ran != 1 {
		t.Fatalf("single-element range ran %d times", ran)
	}
	// Degenerate grain.
	var total atomic.Int64
	For(p, 0, 10, 0, func(i int) { total.Add(int64(i)) })
	if total.Load() != 45 {
		t.Fatalf("grain-0 sum = %d", total.Load())
	}
}

func TestMapOrderPreserved(t *testing.T) {
	p := NewPool(Options{Workers: 4, Seed: 13})
	defer p.Close()
	in := make([]int, 5000)
	for i := range in {
		in[i] = i
	}
	out := Map(p, in, 37, func(x int) int { return x * x })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d want %d", i, v, i*i)
		}
	}
}

func TestReduceNonCommutativeOp(t *testing.T) {
	// String concatenation is associative but not commutative: Reduce
	// must preserve order.
	p := NewPool(Options{Workers: 4, Seed: 14})
	defer p.Close()
	in := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	got := Reduce(p, in, 3, "", func(a, b string) string { return a + b })
	if got != "abcdefghij" {
		t.Fatalf("reduce = %q", got)
	}
}

func TestReduceEmpty(t *testing.T) {
	p := NewPool(Options{Workers: 2, Seed: 15})
	defer p.Close()
	if got := Reduce(p, nil, 4, 42, func(a, b int) int { return a + b }); got != 42 {
		t.Fatalf("empty reduce = %d want identity", got)
	}
}

func TestQuickReduceMatchesSerial(t *testing.T) {
	p := NewPool(Options{Workers: 4, Seed: 16})
	defer p.Close()
	f := func(seed int64, grainRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		in := make([]int64, r.Intn(500))
		want := int64(0)
		for i := range in {
			in[i] = int64(r.Intn(1000)) - 500
			want += in[i]
		}
		grain := int(grainRaw)%64 + 1
		got := Reduce(p, in, grain, 0, func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForWithBoundedStealsPool(t *testing.T) {
	p := NewPool(Options{Workers: 4, Delta: 2, Seed: 17})
	defer p.Close()
	var total atomic.Int64
	For(p, 0, 5000, 16, func(i int) { total.Add(1) })
	if total.Load() != 5000 {
		t.Fatalf("covered %d want 5000", total.Load())
	}
}
