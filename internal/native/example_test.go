package native_test

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/native"
)

// ExamplePool is the library's quickstart: a task tree counted to
// completion with Wait.
func ExamplePool() {
	pool := native.NewPool(native.Options{Workers: 4, Seed: 1})
	defer pool.Close()
	var leaves atomic.Int64
	var tree func(depth int) native.Task
	tree = func(depth int) native.Task {
		return func(c *native.Context) {
			if depth == 0 {
				leaves.Add(1)
				return
			}
			c.Spawn(tree(depth - 1))
			c.Spawn(tree(depth - 1))
		}
	}
	if err := pool.Submit(tree(8)); err != nil {
		panic(err)
	}
	pool.Wait()
	fmt.Println("leaves:", leaves.Load())
	// Output:
	// leaves: 256
}

// ExampleFor parallelizes a loop with recursive range splitting.
func ExampleFor() {
	pool := native.NewPool(native.Options{Workers: 4, Seed: 2})
	defer pool.Close()
	squares := make([]int, 8)
	native.For(pool, 0, len(squares), 2, func(i int) {
		squares[i] = i * i
	})
	fmt.Println(squares)
	// Output:
	// [0 1 4 9 16 25 36 49]
}

// ExampleReduce folds in parallel while preserving order, so the operator
// only needs associativity.
func ExampleReduce() {
	pool := native.NewPool(native.Options{Workers: 4, Seed: 3})
	defer pool.Close()
	words := []string{"fence", "-", "free", " ", "work", " ", "stealing"}
	sentence := native.Reduce(pool, words, 2, "", func(a, b string) string { return a + b })
	fmt.Println(sentence)
	// Output:
	// fence-free work stealing
}

// ExampleDeque_StealBounded shows the paper's δ-gated steal in the native
// API: thieves refuse to touch the last δ tasks, leaving them to the
// owner.
func ExampleDeque_StealBounded() {
	d := native.NewDeque[int](16)
	for i := 1; i <= 5; i++ {
		d.PushBottom(i)
	}
	var stolen []int
	for {
		v, res := d.StealBounded(2)
		if res != native.Stole {
			fmt.Println("thief stops with:", res)
			break
		}
		stolen = append(stolen, v)
	}
	var owner []int
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		owner = append(owner, v)
	}
	sort.Ints(owner)
	fmt.Println("stolen:", stolen)
	fmt.Println("owner :", owner)
	// Output:
	// thief stops with: Aborted
	// stolen: [1 2 3]
	// owner : [4 5]
}
