package native

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is a unit of work executed by the pool. Tasks may submit more
// tasks via the Context.
type Task func(ctx *Context)

// Context is passed to every task; it identifies the executing worker and
// lets the task spawn child tasks onto the worker's own deque (the
// work-first discipline work stealing relies on).
type Context struct {
	pool   *Pool
	worker int
}

// Worker returns the executing worker's index.
func (c *Context) Worker() int { return c.worker }

// Spawn enqueues a child task on the executing worker's deque.
func (c *Context) Spawn(t Task) { c.pool.spawnAt(c.worker, t) }

// Options configures a Pool.
type Options struct {
	// Workers is the number of worker goroutines (default GOMAXPROCS).
	Workers int
	// Delta, when >= 1, makes thieves use the δ-gated StealBounded of the
	// relaxed specification: a steal aborts rather than contending when a
	// victim has at most Delta visible tasks. 0 uses plain Chase-Lev
	// steals.
	Delta int64
	// Seed drives victim selection (for reproducible tests).
	Seed int64
}

// Pool is a work-stealing goroutine pool: one Chase-Lev deque per worker,
// steal-on-empty, with blocking-wait idleness management.
type Pool struct {
	opts     Options
	deques   []*Deque[Task]
	pending  atomic.Int64 // tasks submitted but not yet finished
	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	overflow []Task       // externally submitted tasks; guarded by mu
	idleGen  atomic.Int64 // bumped whenever new work arrives, to re-scan
	idlers   atomic.Int64 // workers currently parked or about to park

	wg       sync.WaitGroup
	stats    PoolStats
	panicked atomic.Pointer[panicRecord]
}

// PoolStats counts scheduler events (approximate under concurrency).
type PoolStats struct {
	Executed atomic.Int64
	Steals   atomic.Int64
	Aborts   atomic.Int64
}

type panicRecord struct {
	value any
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("native: pool is closed")

// NewPool starts a work-stealing pool.
func NewPool(opts Options) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{opts: opts}
	p.cond = sync.NewCond(&p.mu)
	p.deques = make([]*Deque[Task], opts.Workers)
	for i := range p.deques {
		p.deques[i] = NewDeque[Task](64)
	}
	p.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go p.worker(i)
	}
	return p
}

// Submit enqueues a task from outside the pool (round-robin over worker
// deques would race with owners, so external submissions go to worker 0's
// deque only when called from worker 0; otherwise they are handed to a
// random worker through a short lock-protected path).
func (p *Pool) Submit(t Task) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.pending.Add(1)
	// External submissions may not touch an owner end; park the task in
	// the overflow list and wake a worker.
	p.overflow = append(p.overflow, t)
	p.idleGen.Add(1)
	p.cond.Broadcast()
	p.mu.Unlock()
	return nil
}

// spawnAt enqueues t on worker w's own deque. Internal: called by Context.
func (p *Pool) spawnAt(w int, t Task) {
	p.pending.Add(1)
	p.deques[w].PushBottom(t)
	p.idleGen.Add(1)
	p.wake()
}

// wake makes newly published work visible to parked workers. The empty
// lock/unlock pulse closes the lost-wakeup window: a parker that already
// checked idleGen holds mu until it enters cond.Wait, so by the time the
// pulse acquires mu the parker is wait-registered and the broadcast
// reaches it; a parker that has not checked yet will observe the bumped
// idleGen. The fast path (no idlers) is a single atomic load.
func (p *Pool) wake() {
	if p.idlers.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.mu.Unlock() //nolint:staticcheck // deliberate pulse, see comment
	p.cond.Broadcast()
}

// Wait blocks until every submitted task (and its transitively spawned
// children) has finished. It re-panics the first task panic, if any.
func (p *Pool) Wait() {
	p.mu.Lock()
	for p.pending.Load() != 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
	if pr := p.panicked.Load(); pr != nil {
		panic(fmt.Sprintf("native: task panicked: %v", pr.value))
	}
}

// Close shuts the pool down after outstanding work completes and joins the
// workers. The pool cannot be reused.
func (p *Pool) Close() {
	p.Wait()
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() (executed, steals, aborts int64) {
	return p.stats.Executed.Load(), p.stats.Steals.Load(), p.stats.Aborts.Load()
}

func (p *Pool) worker(id int) {
	defer p.wg.Done()
	r := rand.New(rand.NewSource(p.opts.Seed + int64(id)*1617264643))
	my := p.deques[id]
	for {
		// 1. Drain own deque.
		for {
			t, ok := my.PopBottom()
			if !ok {
				break
			}
			p.runTask(id, t)
		}
		// 2. Overflow queue (external submissions).
		if t, ok := p.takeOverflow(); ok {
			p.runTask(id, t)
			continue
		}
		// 3. Steal.
		if t, ok := p.trySteal(id, r); ok {
			p.runTask(id, t)
			continue
		}
		// 4. Park until new work or shutdown.
		if p.park() {
			return
		}
	}
}

func (p *Pool) takeOverflow() (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.overflow) == 0 {
		return nil, false
	}
	t := p.overflow[0]
	p.overflow = p.overflow[1:]
	return t, true
}

// trySteal makes a bounded number of steal passes over random victims.
func (p *Pool) trySteal(id int, r *rand.Rand) (Task, bool) {
	n := len(p.deques)
	for attempt := 0; attempt < 2*n; attempt++ {
		victim := r.Intn(n)
		if victim == id {
			continue
		}
		if p.opts.Delta >= 1 {
			t, res := p.deques[victim].StealBounded(p.opts.Delta)
			switch res {
			case Stole:
				p.stats.Steals.Add(1)
				return t, true
			case Aborted:
				p.stats.Aborts.Add(1)
			}
			continue
		}
		if t, ok := p.deques[victim].Steal(); ok {
			p.stats.Steals.Add(1)
			return t, true
		}
	}
	return nil, false
}

// park blocks until the work generation changes or the pool closes;
// returns true on shutdown.
func (p *Pool) park() bool {
	gen := p.idleGen.Load()
	p.idlers.Add(1)
	defer p.idlers.Add(-1)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return true
		}
		if p.idleGen.Load() != gen || len(p.overflow) > 0 {
			return false
		}
		p.cond.Wait()
	}
}

func (p *Pool) runTask(id int, t Task) {
	defer func() {
		if v := recover(); v != nil {
			p.panicked.CompareAndSwap(nil, &panicRecord{value: v})
		}
		p.stats.Executed.Add(1)
		if p.pending.Add(-1) == 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}()
	t(&Context{pool: p, worker: id})
}
