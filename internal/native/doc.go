// Package native is a real, directly usable Go work-stealing library: a
// growable Chase-Lev deque and a goroutine worker pool built on it. It is
// the repository's adoptable artifact, complementing the simulated queues
// in internal/core that reproduce the paper's results.
//
// # Why the native deque is NOT fence-free
//
// The paper's contribution removes the memory fence from the worker's
// take() path by reasoning about the bounded store buffer of TSO[S]
// hardware. Expressing that in Go is impossible today:
//
//   - sync/atomic operations are sequentially consistent; Go has no
//     relaxed or acquire/release atomics, so the ordering the fence would
//     enforce is re-introduced by the atomics themselves.
//   - Plain (non-atomic) loads and stores have no defined behaviour under
//     concurrent access (the race detector rightly flags them), so the
//     paper's "plain store to T, no fence" cannot be written portably.
//   - Even with assembly, Go's compiler and runtime give no contract about
//     store-buffer depth at safepoints, and goroutines migrate between Ms
//     (OS threads); the §4 "context switches drain the buffer" argument
//     holds for OS migration but Go adds its own scheduling layer one
//     cannot audit from user code.
//
// Deque.Take therefore pays the ordering cost the paper elides — this is
// precisely the repro gap the simulation in internal/tso exists to close.
//
// What carries over usefully is the algorithmic structure: StealBounded
// implements FF-CL's δ-gated steal (returning Abort instead of racing when
// fewer than δ tasks are visible). Under Go's strong atomics it is purely
// a semantic/contention choice — thieves keep away from the hot tail of a
// nearly-empty deque — but it makes the relaxed work-stealing
// specification of §4 available to Go programs and keeps this library
// API-compatible with the simulated queues.
package native
