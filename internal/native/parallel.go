package native

import (
	"fmt"
	"sync"
)

// This file provides the data-parallel conveniences a work-stealing
// runtime is usually adopted for: parallel for, map, and reduce, all built
// on recursive range splitting so the deques see the same
// large-chunks-near-the-head structure as cilk_for loops (which is what
// makes stealing profitable and δ-gated stealing meaningful).

// For runs fn(i) for every i in [lo, hi) on the pool, splitting the range
// recursively down to grain-sized chunks. It blocks until the whole range
// has been processed. fn must be safe to call concurrently for distinct i.
//
// For (and Map/Reduce) must be called from outside the pool: calling it
// from within a Task would block that worker goroutine on the wait.
func For(p *Pool, lo, hi, grain int, fn func(i int)) {
	if hi <= lo {
		return
	}
	if grain < 1 {
		grain = 1
	}
	var wg sync.WaitGroup
	var split func(lo, hi int) Task
	split = func(lo, hi int) Task {
		return func(c *Context) {
			defer wg.Done()
			// Peel halves off the right side until the chunk is small
			// enough, leaving the large remainders stealable at the head
			// of the deque — the cilk_for loop shape.
			for hi-lo > grain {
				mid := lo + (hi-lo)/2
				wg.Add(1)
				c.Spawn(split(mid, hi))
				hi = mid
			}
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	}
	wg.Add(1)
	if err := p.Submit(split(lo, hi)); err != nil {
		wg.Done()
		panic(fmt.Sprintf("native: For on closed pool: %v", err))
	}
	wg.Wait()
}

// Map applies fn to every element of in, in parallel, returning the
// results in order.
func Map[T, U any](p *Pool, in []T, grain int, fn func(T) U) []U {
	out := make([]U, len(in))
	For(p, 0, len(in), grain, func(i int) {
		out[i] = fn(in[i])
	})
	return out
}

// Reduce folds in with an associative op, in parallel: grain-sized chunks
// are folded sequentially, then the per-chunk partials are folded left to
// right, so op need not be commutative. zero must be op's identity.
func Reduce[T any](p *Pool, in []T, grain int, zero T, op func(a, b T) T) T {
	if len(in) == 0 {
		return zero
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (len(in) + grain - 1) / grain
	partials := make([]T, chunks)
	For(p, 0, chunks, 1, func(ci int) {
		lo := ci * grain
		hi := lo + grain
		if hi > len(in) {
			hi = len(in)
		}
		acc := zero
		for _, v := range in[lo:hi] {
			acc = op(acc, v)
		}
		partials[ci] = acc
	})
	acc := zero
	for _, v := range partials {
		acc = op(acc, v)
	}
	return acc
}
