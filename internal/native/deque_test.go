package native

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDequeSequentialLIFO(t *testing.T) {
	d := NewDeque[int](4)
	for i := 1; i <= 100; i++ {
		d.PushBottom(i)
	}
	if d.Size() != 100 {
		t.Fatalf("size=%d want 100", d.Size())
	}
	for i := 100; i >= 1; i-- {
		v, ok := d.PopBottom()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("pop on empty succeeded")
	}
}

func TestDequeSequentialStealFIFO(t *testing.T) {
	d := NewDeque[int](4)
	for i := 1; i <= 50; i++ {
		d.PushBottom(i)
	}
	for i := 1; i <= 50; i++ {
		v, ok := d.Steal()
		if !ok || v != i {
			t.Fatalf("steal = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("steal on empty succeeded")
	}
}

func TestDequeGrowthPreservesContents(t *testing.T) {
	d := NewDeque[int](8)
	// Interleave pushes and steals so top advances and the ring wraps
	// before growing.
	for i := 0; i < 6; i++ {
		d.PushBottom(i)
	}
	for i := 0; i < 4; i++ {
		if v, ok := d.Steal(); !ok || v != i {
			t.Fatalf("steal %d failed", i)
		}
	}
	for i := 6; i < 40; i++ { // forces growth across the wrap
		d.PushBottom(i)
	}
	for want := 39; want >= 4; want-- {
		v, ok := d.PopBottom()
		if !ok || v != want {
			t.Fatalf("pop = %d,%v want %d,true", v, ok, want)
		}
	}
}

func TestStealBoundedSemantics(t *testing.T) {
	d := NewDeque[int](8)
	for i := 1; i <= 10; i++ {
		d.PushBottom(i)
	}
	const delta = 3
	stolen := 0
	for {
		_, res := d.StealBounded(delta)
		if res != Stole {
			if res != Aborted {
				t.Fatalf("res=%v want Aborted at the δ boundary", res)
			}
			break
		}
		stolen++
	}
	if stolen != 10-delta {
		t.Fatalf("stole %d want %d", stolen, 10-delta)
	}
	// Owner still sees the remaining δ tasks.
	remaining := 0
	for {
		if _, ok := d.PopBottom(); !ok {
			break
		}
		remaining++
	}
	if remaining != delta {
		t.Fatalf("owner drained %d want %d", remaining, delta)
	}
}

func TestStealBoundedPanicsOnBadDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("delta 0 did not panic")
		}
	}()
	NewDeque[int](8).StealBounded(0)
}

// TestDequeConcurrentExactlyOnce is the real-hardware analogue of the
// simulator's safety tests: one owner and several thieves drain a large
// deque; every value must be delivered exactly once. Run with -race.
func TestDequeConcurrentExactlyOnce(t *testing.T) {
	const n = 20000
	const thieves = 3
	d := NewDeque[int](64)
	var counts [n]atomic.Int32
	var wg sync.WaitGroup
	var stop atomic.Bool

	wg.Add(thieves)
	for th := 0; th < thieves; th++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if v, ok := d.Steal(); ok {
					counts[v].Add(1)
				}
			}
			// Final sweep after the owner finished.
			for {
				v, ok := d.Steal()
				if !ok {
					return
				}
				counts[v].Add(1)
			}
		}()
	}

	// Owner: push everything, popping intermittently.
	popped := 0
	for i := 0; i < n; i++ {
		d.PushBottom(i)
		if i%3 == 0 {
			if v, ok := d.PopBottom(); ok {
				counts[v].Add(1)
				popped++
			}
		}
	}
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		counts[v].Add(1)
	}
	stop.Store(true)
	wg.Wait()

	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("value %d delivered %d times", i, got)
		}
	}
}

// TestDequeConcurrentBounded: same exactly-once property with δ-gated
// thieves; the owner must pick up whatever thieves refuse.
func TestDequeConcurrentBounded(t *testing.T) {
	const n = 10000
	d := NewDeque[int](64)
	var counts [n]atomic.Int32
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(2)
	for th := 0; th < 2; th++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if v, res := d.StealBounded(4); res == Stole {
					counts[v].Add(1)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		d.PushBottom(i)
	}
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		counts[v].Add(1)
	}
	stop.Store(true)
	wg.Wait()
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("value %d delivered %d times", i, got)
		}
	}
}

// TestQuickDequeModel checks a random owner-op sequence against a slice
// model.
func TestQuickDequeModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := NewDeque[int](8)
		var model []int
		for op := 0; op < 500; op++ {
			switch r.Intn(3) {
			case 0, 1:
				v := r.Intn(1 << 20)
				d.PushBottom(v)
				model = append(model, v)
			default:
				v, ok := d.PopBottom()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || v != want {
					return false
				}
			}
		}
		return d.Size() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
