package native

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(Options{Workers: 4, Seed: 1})
	defer p.Close()
	var count atomic.Int64
	for i := 0; i < 500; i++ {
		if err := p.Submit(func(*Context) { count.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	if got := count.Load(); got != 500 {
		t.Fatalf("ran %d tasks want 500", got)
	}
}

func TestPoolSpawnTree(t *testing.T) {
	p := NewPool(Options{Workers: 4, Seed: 2})
	defer p.Close()
	var count atomic.Int64
	var spawn func(depth int) Task
	spawn = func(depth int) Task {
		return func(c *Context) {
			count.Add(1)
			if depth == 0 {
				return
			}
			c.Spawn(spawn(depth - 1))
			c.Spawn(spawn(depth - 1))
		}
	}
	if err := p.Submit(spawn(10)); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if want := int64(1<<11 - 1); count.Load() != want {
		t.Fatalf("ran %d tasks want %d", count.Load(), want)
	}
}

func TestPoolParallelFib(t *testing.T) {
	p := NewPool(Options{Workers: 4, Seed: 3})
	defer p.Close()
	// Continuation-free fib: accumulate leaf contributions.
	var sum atomic.Int64
	var fib func(n int) Task
	fib = func(n int) Task {
		return func(c *Context) {
			if n < 2 {
				sum.Add(int64(n))
				return
			}
			c.Spawn(fib(n - 1))
			c.Spawn(fib(n - 2))
		}
	}
	if err := p.Submit(fib(20)); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if got, want := sum.Load(), int64(6765); got != want {
		t.Fatalf("fib(20) = %d want %d", got, want)
	}
}

func TestPoolBoundedStealsWork(t *testing.T) {
	p := NewPool(Options{Workers: 4, Delta: 2, Seed: 4})
	defer p.Close()
	var count atomic.Int64
	var wide func(n int) Task
	wide = func(n int) Task {
		return func(c *Context) {
			count.Add(1)
			for i := 0; i < n; i++ {
				c.Spawn(func(*Context) { count.Add(1); spin(2000) })
			}
		}
	}
	if err := p.Submit(wide(400)); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if got := count.Load(); got != 401 {
		t.Fatalf("ran %d want 401", got)
	}
}

func spin(n int) {
	x := 1
	for i := 0; i < n; i++ {
		x = x*31 + i
	}
	_ = x
}

func TestPoolWaitThenMoreWork(t *testing.T) {
	p := NewPool(Options{Workers: 2, Seed: 5})
	defer p.Close()
	var count atomic.Int64
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			if err := p.Submit(func(*Context) { count.Add(1) }); err != nil {
				t.Fatal(err)
			}
		}
		p.Wait()
		if got, want := count.Load(), int64(50*(round+1)); got != want {
			t.Fatalf("round %d: ran %d want %d", round, got, want)
		}
	}
}

func TestPoolSubmitAfterCloseFails(t *testing.T) {
	p := NewPool(Options{Workers: 2, Seed: 6})
	p.Close()
	if err := p.Submit(func(*Context) {}); err != ErrClosed {
		t.Fatalf("err=%v want ErrClosed", err)
	}
}

func TestPoolTaskPanicSurfacesInWait(t *testing.T) {
	p := NewPool(Options{Workers: 2, Seed: 7})
	if err := p.Submit(func(*Context) { panic("task boom") }); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Wait did not re-panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "task boom") {
			t.Fatalf("panic value %v", v)
		}
		// Drain the pool so goroutines exit.
		p.mu.Lock()
		p.closed = true
		p.cond.Broadcast()
		p.mu.Unlock()
		p.wg.Wait()
	}()
	p.Wait()
}

func TestPoolStats(t *testing.T) {
	p := NewPool(Options{Workers: 4, Seed: 8})
	defer p.Close()
	var root Task = func(c *Context) {
		for i := 0; i < 200; i++ {
			c.Spawn(func(*Context) { spin(5000) })
		}
	}
	if err := p.Submit(root); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	executed, _, _ := p.Stats()
	if executed != 201 {
		t.Fatalf("executed=%d want 201", executed)
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(Options{})
	defer p.Close()
	if len(p.deques) < 1 {
		t.Fatal("no workers")
	}
	if err := p.Submit(func(*Context) {}); err != nil {
		t.Fatal(err)
	}
	p.Wait()
}
