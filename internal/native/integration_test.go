package native

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
)

// Integration tests: real algorithms on the native pool, the way a
// downstream user would write them. Run with -race.

func TestIntegrationQuickSort(t *testing.T) {
	p := NewPool(Options{Workers: 4, Seed: 41})
	defer p.Close()
	r := rand.New(rand.NewSource(99))
	data := make([]int, 50_000)
	for i := range data {
		data[i] = r.Intn(1 << 24)
	}
	var checksum uint64
	for _, v := range data {
		checksum += uint64(v)
	}

	var qsort func(a []int) Task
	qsort = func(a []int) Task {
		return func(c *Context) {
			for len(a) > 48 {
				p := partitionInts(a)
				// Recurse on the smaller side via spawn; iterate on the
				// larger to bound stack/task depth.
				if p < len(a)-p-1 {
					c.Spawn(qsort(a[:p]))
					a = a[p+1:]
				} else {
					c.Spawn(qsort(a[p+1:]))
					a = a[:p]
				}
			}
			sort.Ints(a)
		}
	}
	if err := p.Submit(qsort(data)); err != nil {
		t.Fatal(err)
	}
	p.Wait()

	if !sort.IntsAreSorted(data) {
		t.Fatal("not sorted")
	}
	var sum uint64
	for _, v := range data {
		sum += uint64(v)
	}
	if sum != checksum {
		t.Fatal("elements lost or duplicated")
	}
}

func partitionInts(a []int) int {
	mid, hi := len(a)/2, len(a)-1
	if a[mid] < a[0] {
		a[mid], a[0] = a[0], a[mid]
	}
	if a[hi] < a[0] {
		a[hi], a[0] = a[0], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	a[mid], a[hi-1] = a[hi-1], a[mid]
	pivot := a[hi-1]
	i := 0
	for j := 1; j < hi-1; j++ {
		if a[j] < pivot {
			i++
			a[i], a[j] = a[j], a[i]
		}
	}
	a[i+1], a[hi-1] = a[hi-1], a[i+1]
	return i + 1
}

func TestIntegrationGraphReachability(t *testing.T) {
	// The §8.2 workload shape on real goroutines: visit tasks claiming
	// nodes with an atomic test-and-set, duplicates tolerated.
	p := NewPool(Options{Workers: 4, Seed: 42})
	defer p.Close()
	const n = 20_000
	adj := make([][]int32, n)
	for i := range adj {
		adj[i] = []int32{int32((i + 1) % n), int32((i + 7) % n), int32((i * 3) % n)}
	}
	visited := make([]atomic.Bool, n)
	var visit func(u int32) Task
	visit = func(u int32) Task {
		return func(c *Context) {
			if !visited[u].CompareAndSwap(false, true) {
				return
			}
			for _, v := range adj[u] {
				if !visited[v].Load() {
					c.Spawn(visit(v))
				}
			}
		}
	}
	if err := p.Submit(visit(0)); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	for i := range visited {
		if !visited[i].Load() {
			t.Fatalf("node %d unreachable", i)
		}
	}
}

func TestIntegrationParallelMatVec(t *testing.T) {
	p := NewPool(Options{Workers: 4, Delta: 2, Seed: 43})
	defer p.Close()
	const n = 400
	a := make([]float64, n*n)
	x := make([]float64, n)
	r := rand.New(rand.NewSource(5))
	for i := range a {
		a[i] = r.Float64()
	}
	for i := range x {
		x[i] = r.Float64()
	}
	got := Map(p, index(n), 16, func(i int) float64 {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		return s
	})
	for i := 0; i < n; i += 37 {
		want := 0.0
		for j := 0; j < n; j++ {
			want += a[i*n+j] * x[j]
		}
		if d := got[i] - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("row %d: %v want %v", i, got[i], want)
		}
	}
}

func index(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
