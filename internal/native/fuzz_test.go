package native

import (
	"testing"
)

// FuzzDequeOwnerOps drives the deque's owner operations with a byte-coded
// script and cross-checks against a slice model. The seed corpus runs as
// part of the normal test suite; `go test -fuzz=FuzzDequeOwnerOps` explores
// further.
func FuzzDequeOwnerOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 1, 1, 2})
	f.Add([]byte{0, 1, 2, 0, 0, 0, 1, 1, 1, 1})
	f.Add([]byte{2, 2, 2, 0, 2, 1, 2})
	f.Fuzz(func(t *testing.T, script []byte) {
		d := NewDeque[int](8)
		var model []int
		next := 0
		for _, op := range script {
			switch op % 3 {
			case 0: // push
				d.PushBottom(next)
				model = append(model, next)
				next++
			case 1: // pop
				v, ok := d.PopBottom()
				if len(model) == 0 {
					if ok {
						t.Fatalf("pop on empty returned %d", v)
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || v != want {
					t.Fatalf("pop = %d,%v want %d,true", v, ok, want)
				}
			case 2: // steal (same goroutine: owner is quiescent, legal)
				v, ok := d.Steal()
				if len(model) == 0 {
					if ok {
						t.Fatalf("steal on empty returned %d", v)
					}
					continue
				}
				want := model[0]
				model = model[1:]
				if !ok || v != want {
					t.Fatalf("steal = %d,%v want %d,true", v, ok, want)
				}
			}
		}
		if d.Size() != len(model) {
			t.Fatalf("size %d want %d", d.Size(), len(model))
		}
	})
}

// FuzzStealBounded checks the δ gate against the model: a bounded steal
// succeeds iff more than delta elements are visible, and never removes out
// of order.
func FuzzStealBounded(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0}, uint8(2))
	f.Add([]byte{0, 1, 0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, script []byte, deltaRaw uint8) {
		delta := int64(deltaRaw)%5 + 1
		d := NewDeque[int](8)
		var model []int
		next := 0
		for _, op := range script {
			if op%2 == 0 {
				d.PushBottom(next)
				model = append(model, next)
				next++
				continue
			}
			v, res := d.StealBounded(delta)
			switch res {
			case Stole:
				if int64(len(model)) <= delta {
					t.Fatalf("stole with only %d <= δ=%d visible", len(model), delta)
				}
				if v != model[0] {
					t.Fatalf("stole %d want %d", v, model[0])
				}
				model = model[1:]
			case Aborted:
				if int64(len(model)) > delta {
					t.Fatalf("aborted with %d > δ=%d visible", len(model), delta)
				}
			case EmptyQ:
				if len(model) != 0 {
					t.Fatalf("empty with %d visible", len(model))
				}
			case Retry:
				t.Fatal("retry without contention")
			}
		}
	})
}
