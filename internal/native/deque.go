package native

import (
	"sync/atomic"
)

// StealResult is the outcome of a Steal or StealBounded.
type StealResult int

const (
	// Stole means a task was removed and returned.
	Stole StealResult = iota
	// EmptyQ means the deque was observably empty.
	EmptyQ
	// Retry means the thief lost a race and should try again (Chase-Lev's
	// CAS failure); Steal retries internally, StealBounded reports it.
	Retry
	// Aborted means a bounded steal refused because fewer than δ tasks
	// were visible (the §4 relaxed specification).
	Aborted
)

func (r StealResult) String() string {
	switch r {
	case Stole:
		return "Stole"
	case EmptyQ:
		return "Empty"
	case Retry:
		return "Retry"
	case Aborted:
		return "Aborted"
	default:
		return "StealResult(?)"
	}
}

// Deque is a growable Chase-Lev work-stealing deque. PushBottom and
// PopBottom may be called only by the owning goroutine; Steal and
// StealBounded by any goroutine.
//
// The zero value is not usable; call NewDeque.
type Deque[T any] struct {
	top    atomic.Int64 // steal end (head); non-wrapping
	bottom atomic.Int64 // owner end (tail); non-wrapping
	ring   atomic.Pointer[ring[T]]
}

// ring is a power-of-two circular array addressed by non-wrapping indices.
// Elements are atomic pointers so a thief racing a grow still reads a
// coherent value.
type ring[T any] struct {
	mask  int64
	items []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{mask: capacity - 1, items: make([]atomic.Pointer[T], capacity)}
}

func (r *ring[T]) get(i int64) *T    { return r.items[i&r.mask].Load() }
func (r *ring[T]) set(i int64, v *T) { r.items[i&r.mask].Store(v) }
func (r *ring[T]) cap() int64        { return r.mask + 1 }

// grow returns a doubled ring holding elements [top, bottom).
func (r *ring[T]) grow(top, bottom int64) *ring[T] {
	n := newRing[T](2 * r.cap())
	for i := top; i < bottom; i++ {
		n.set(i, r.get(i))
	}
	return n
}

// NewDeque builds a deque with the given initial capacity (rounded up to a
// power of two, minimum 8).
func NewDeque[T any](capacity int) *Deque[T] {
	c := int64(8)
	for c < int64(capacity) {
		c <<= 1
	}
	d := &Deque[T]{}
	d.ring.Store(newRing[T](c))
	return d
}

// Size returns a linearizable-enough snapshot of the current length; it
// may be stale by in-flight operations.
func (d *Deque[T]) Size() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b < t {
		return 0
	}
	return int(b - t)
}

// PushBottom enqueues v at the owner's end, growing the ring when full.
// Owner only.
func (d *Deque[T]) PushBottom(v T) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= r.cap() {
		r = r.grow(t, b)
		d.ring.Store(r)
	}
	r.set(b, &v)
	d.bottom.Store(b + 1)
}

// PopBottom dequeues from the owner's end (Figure 2c's take, with Go's
// sequentially consistent atomics standing in for the fence). Owner only.
func (d *Deque[T]) PopBottom() (T, bool) {
	var zero T
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if b < t {
		// Empty: restore.
		d.bottom.Store(t)
		return zero, false
	}
	r := d.ring.Load()
	v := r.get(b)
	if b > t {
		return *v, true
	}
	// Last element: race thieves with a CAS on top.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(t + 1)
	if !won {
		return zero, false
	}
	return *v, true
}

// Steal dequeues from the head, retrying internally on lost races. Any
// goroutine.
func (d *Deque[T]) Steal() (T, bool) {
	for {
		v, res := d.stealOnce(0)
		switch res {
		case Stole:
			return v, true
		case EmptyQ:
			var zero T
			return zero, false
		}
	}
}

// StealBounded is FF-CL's δ-gated steal (Figure 4): it refuses (Aborted)
// unless more than delta tasks are visible, never retries internally, and
// never contends with an owner working near the tail. delta must be >= 1.
func (d *Deque[T]) StealBounded(delta int64) (T, StealResult) {
	if delta < 1 {
		panic("native: StealBounded needs delta >= 1")
	}
	return d.stealOnce(delta)
}

func (d *Deque[T]) stealOnce(delta int64) (T, StealResult) {
	var zero T
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return zero, EmptyQ
	}
	if delta > 0 && b-delta <= t {
		return zero, Aborted
	}
	r := d.ring.Load()
	v := r.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return zero, Retry
	}
	return *v, Stole
}
