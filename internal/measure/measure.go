// Package measure implements §7.2's store-buffer capacity measurement
// (Figures 6 and 7): time sequences of stores of increasing length
// alternated with a long-latency non-memory instruction sequence, and find
// the length at which execution starts to stall.
//
// On the timed engine the mechanism is exactly the paper's: store-buffer
// entries drain in the background while the filler "instructions" (Work)
// execute, so as long as the sequence fits in the buffer the filler
// dominates; one store beyond capacity triggers the pipeline-entry stall
// and the per-iteration time jumps by about DrainCycles per extra store.
// With the §7.3 drain stage enabled the measured capacity is S+1 — the
// "observable store buffer capacity" the paper measures as 33 and 43.
package measure

import (
	"fmt"

	"repro/internal/tso"
)

// Point is one row of the Figure 7 curve.
type Point struct {
	Stores        int     // length of the store sequence
	CyclesPerIter float64 // average virtual cycles per iteration
}

// CapacityOptions parameterizes the Figure 6 measurement loop.
type CapacityOptions struct {
	// MaxSeq is the longest store sequence tried (Figure 7 uses 52).
	MaxSeq int
	// Iters is K, the repetitions per sequence length.
	Iters int
	// FillerWork is the latency of the non-memory sequence; it must
	// exceed MaxSeq×DrainCycles so each iteration starts with an empty
	// buffer, as the paper's filler does.
	FillerWork uint64
	// SameLocation makes every store in the sequence target one address —
	// the §7.2 follow-up experiment showing coalesced stores still occupy
	// distinct store-buffer entries.
	SameLocation bool
}

func (o CapacityOptions) withDefaults(cfg tso.Config) CapacityOptions {
	if o.MaxSeq == 0 {
		o.MaxSeq = 52
	}
	if o.Iters == 0 {
		o.Iters = 64
	}
	if o.FillerWork == 0 {
		c := cfg.Cost
		if c == (tso.CostModel{}) {
			c = tso.DefaultCost
		}
		o.FillerWork = uint64(o.MaxSeq+4) * c.DrainCycles
	}
	return o
}

// StoreBufferCapacity runs the Figure 6 measurement on a timed machine
// configured by cfg (Threads is forced to 1) and returns one Point per
// sequence length 1..MaxSeq.
//
// The measurement relies on the paper's out-of-order dispatch behaviour:
// store *issue* is fully hidden under the long-latency filler, and only
// the buffer-full dispatch stall is observable. The timed engine is
// in-order, so the harness models this by issuing the measurement stores
// at zero cycles; the stall and drain costs are unchanged. Without this
// the 1-cycle issue rate lets background drains keep pace and the knee
// drifts above the true capacity — an artifact of in-order issue, not of
// the buffer.
func StoreBufferCapacity(cfg tso.Config, opts CapacityOptions) []Point {
	cfg.Threads = 1
	if cfg.Cost == (tso.CostModel{}) {
		cfg.Cost = tso.DefaultCost
	}
	cfg.Cost.StoreCycles = 0
	opts = opts.withDefaults(cfg)
	points := make([]Point, 0, opts.MaxSeq)
	m := tso.NewTimedMachine(cfg)
	defer m.Close()
	for seq := 1; seq <= opts.MaxSeq; seq++ {
		m.Reset()
		base := m.Alloc(opts.MaxSeq + 1)
		err := m.Run(func(c tso.Context) {
			for k := 0; k < opts.Iters; k++ {
				for s := 0; s < seq; s++ {
					a := base + tso.Addr(s)
					if opts.SameLocation {
						a = base
					}
					c.Store(a, uint64(k))
				}
				c.Work(opts.FillerWork)
			}
		})
		if err != nil {
			panic(fmt.Sprintf("measure: %v", err))
		}
		points = append(points, Point{
			Stores:        seq,
			CyclesPerIter: float64(m.Elapsed()) / float64(opts.Iters),
		})
	}
	return points
}

// DetectCapacity locates the knee of a capacity curve: the longest
// sequence length that does not stall. A store within capacity adds
// ~StoreCycles to an iteration; the first store beyond capacity adds
// ~DrainCycles, so the knee is the last point before the marginal cost
// jumps past the midpoint of the two.
func DetectCapacity(points []Point, cost tso.CostModel) (int, error) {
	if len(points) < 2 {
		return 0, fmt.Errorf("measure: need at least 2 points, got %d", len(points))
	}
	threshold := float64(cost.StoreCycles+cost.DrainCycles) / 2
	for i := 1; i < len(points); i++ {
		if points[i].CyclesPerIter-points[i-1].CyclesPerIter > threshold {
			return points[i-1].Stores, nil
		}
	}
	return 0, fmt.Errorf("measure: no knee found up to %d stores (buffer larger than sweep?)", points[len(points)-1].Stores)
}
