package measure

import (
	"testing"

	"repro/internal/tso"
)

func TestCapacityKneeWithoutStage(t *testing.T) {
	cfg := tso.Config{Threads: 1, BufferSize: 8}
	pts := StoreBufferCapacity(cfg, CapacityOptions{MaxSeq: 14, Iters: 16})
	if len(pts) != 14 {
		t.Fatalf("got %d points want 14", len(pts))
	}
	got, err := DetectCapacity(pts, tso.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("detected capacity %d want 8", got)
	}
}

func TestCapacityKneeWithStage(t *testing.T) {
	// The drain stage behaves as one extra entry: measured capacity S+1,
	// the paper's 32→33 observation.
	cfg := tso.Config{Threads: 1, BufferSize: 8, DrainBuffer: true}
	pts := StoreBufferCapacity(cfg, CapacityOptions{MaxSeq: 14, Iters: 16})
	got, err := DetectCapacity(pts, tso.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("detected capacity %d want 9 (S+1)", got)
	}
}

func TestSameLocationSequencesSameKnee(t *testing.T) {
	// §7.2: sequences of stores to one location still occupy distinct
	// buffer entries, so the knee does not move.
	cfg := tso.Config{Threads: 1, BufferSize: 6}
	distinct := StoreBufferCapacity(cfg, CapacityOptions{MaxSeq: 10, Iters: 16})
	same := StoreBufferCapacity(cfg, CapacityOptions{MaxSeq: 10, Iters: 16, SameLocation: true})
	cd, err := DetectCapacity(distinct, tso.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := DetectCapacity(same, tso.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if cd != cs {
		t.Fatalf("same-location knee %d differs from distinct-location knee %d", cs, cd)
	}
}

func TestCurveMonotoneAfterKnee(t *testing.T) {
	cfg := tso.Config{Threads: 1, BufferSize: 4}
	pts := StoreBufferCapacity(cfg, CapacityOptions{MaxSeq: 10, Iters: 8})
	for i := 5; i < len(pts); i++ {
		if pts[i].CyclesPerIter <= pts[i-1].CyclesPerIter {
			t.Fatalf("curve not rising after knee at %d stores", pts[i].Stores)
		}
	}
	// The first store past capacity pays the full drain latency; stores
	// beyond that pay the pipelined drain throughput per store.
	jump := pts[4].CyclesPerIter - pts[3].CyclesPerIter
	if jump < float64(tso.DefaultCost.DrainCycles)*0.5 {
		t.Fatalf("knee jump %v too shallow", jump)
	}
	d := pts[9].CyclesPerIter - pts[8].CyclesPerIter
	if d < float64(tso.DefaultCost.DrainThroughputCycles)*0.5 {
		t.Fatalf("post-knee slope %v too shallow", d)
	}
}

func TestDetectCapacityErrors(t *testing.T) {
	if _, err := DetectCapacity([]Point{{1, 10}}, tso.DefaultCost); err == nil {
		t.Fatal("single point accepted")
	}
	flat := []Point{{1, 10}, {2, 11}, {3, 12}}
	if _, err := DetectCapacity(flat, tso.DefaultCost); err == nil {
		t.Fatal("flat curve produced a knee")
	}
}

func TestWestmereAndHaswellPresetsMeasureTheirBounds(t *testing.T) {
	for _, tc := range []struct {
		cfg  tso.Config
		want int
	}{
		{tso.WestmereEX(), 33},
		{tso.Haswell(), 43},
	} {
		pts := StoreBufferCapacity(tc.cfg, CapacityOptions{MaxSeq: tc.want + 10, Iters: 8})
		got, err := DetectCapacity(pts, tso.DefaultCost)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("measured %d want %d", got, tc.want)
		}
	}
}
