package viz

import (
	"bytes"
	"strings"
	"testing"
)

func render(bars []Bar, opts Options) string {
	var buf bytes.Buffer
	Chart(&buf, "t", bars, opts)
	return buf.String()
}

func TestChartBasicShape(t *testing.T) {
	out := render([]Bar{
		{Label: "a", Value: 50},
		{Label: "bb", Value: 100},
	}, Options{Width: 20, Max: 100})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // title + 2 bars
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "a  ") {
		t.Fatalf("label alignment: %q", lines[1])
	}
	aHashes := strings.Count(lines[1], "#")
	bHashes := strings.Count(lines[2], "#")
	if aHashes != 10 || bHashes != 20 {
		t.Fatalf("bar lengths %d/%d want 10/20:\n%s", aHashes, bHashes, out)
	}
}

func TestChartReferenceLine(t *testing.T) {
	out := render([]Bar{
		{Label: "below", Value: 50},
		{Label: "above", Value: 150},
	}, Options{Width: 40, Max: 200, Reference: 100})
	if !strings.Contains(out, "|") {
		t.Fatalf("no reference marker on short bar:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Fatalf("no reference marker through long bar:\n%s", out)
	}
	if !strings.Contains(out, "^ 100") {
		t.Fatalf("no reference legend:\n%s", out)
	}
}

func TestChartClipping(t *testing.T) {
	out := render([]Bar{{Label: "x", Value: 500, Note: "off-scale"}}, Options{Width: 10, Max: 100})
	if !strings.Contains(out, ">") || !strings.Contains(out, "off-scale") {
		t.Fatalf("clipped bar not marked:\n%s", out)
	}
}

func TestChartAutoScale(t *testing.T) {
	out := render([]Bar{{Label: "x", Value: 80}}, Options{Width: 10})
	if strings.Contains(out, ">") {
		t.Fatalf("auto-scaled chart clipped:\n%s", out)
	}
	if !strings.Contains(out, "80.0") {
		t.Fatalf("value label missing:\n%s", out)
	}
}

func TestChartZeroAndNegativeValues(t *testing.T) {
	out := render([]Bar{{Label: "z", Value: 0}, {Label: "n", Value: -5}}, Options{Width: 10, Max: 100})
	for _, line := range strings.Split(out, "\n")[1:] {
		if strings.Contains(line, "#") {
			t.Fatalf("zero/negative bar drew marks: %q", line)
		}
	}
}

func TestNormalizedChart(t *testing.T) {
	var buf bytes.Buffer
	NormalizedChart(&buf, "fig", []Bar{{Label: "v", Value: 75}}, 120)
	out := buf.String()
	if !strings.Contains(out, "%") || !strings.Contains(out, "^ 100%") {
		t.Fatalf("normalized chart output:\n%s", out)
	}
}

func TestEmptyBars(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, "none", nil, Options{})
	if !strings.Contains(buf.String(), "none") {
		t.Fatal("title missing for empty chart")
	}
}

func TestHistogram(t *testing.T) {
	var buf bytes.Buffer
	Histogram(&buf, "occ", []int64{4, 2, 0, 1, 0, 0, 0, 0}, Options{Width: 8})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "occ" {
		t.Fatalf("title line = %q", lines[0])
	}
	// Buckets 0..3 have data; one trailing empty bucket (4) stays visible,
	// then the elision marker covers 5..7.
	if len(lines) != 7 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "########") || !strings.Contains(lines[1], " 4") {
		t.Errorf("bucket 0 = %q", lines[1])
	}
	if !strings.Contains(lines[5], " 0") {
		t.Errorf("kept empty bucket = %q", lines[5])
	}
	if !strings.Contains(lines[6], "buckets 5..7 empty") {
		t.Errorf("elision line = %q", lines[6])
	}
}

func TestHistogramNoElision(t *testing.T) {
	var buf bytes.Buffer
	Histogram(&buf, "", []int64{1, 2}, Options{Width: 4})
	out := buf.String()
	if strings.Contains(out, "empty") {
		t.Fatalf("unexpected elision:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 2 {
		t.Fatalf("got %d lines:\n%s", got, out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var buf bytes.Buffer
	Histogram(&buf, "x", nil, Options{})
	if buf.Len() != 0 {
		t.Fatalf("output for empty buckets: %q", buf.String())
	}
}
