package viz

import (
	"bytes"
	"strings"
	"testing"
)

func render(bars []Bar, opts Options) string {
	var buf bytes.Buffer
	Chart(&buf, "t", bars, opts)
	return buf.String()
}

func TestChartBasicShape(t *testing.T) {
	out := render([]Bar{
		{Label: "a", Value: 50},
		{Label: "bb", Value: 100},
	}, Options{Width: 20, Max: 100})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // title + 2 bars
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "a  ") {
		t.Fatalf("label alignment: %q", lines[1])
	}
	aHashes := strings.Count(lines[1], "#")
	bHashes := strings.Count(lines[2], "#")
	if aHashes != 10 || bHashes != 20 {
		t.Fatalf("bar lengths %d/%d want 10/20:\n%s", aHashes, bHashes, out)
	}
}

func TestChartReferenceLine(t *testing.T) {
	out := render([]Bar{
		{Label: "below", Value: 50},
		{Label: "above", Value: 150},
	}, Options{Width: 40, Max: 200, Reference: 100})
	if !strings.Contains(out, "|") {
		t.Fatalf("no reference marker on short bar:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Fatalf("no reference marker through long bar:\n%s", out)
	}
	if !strings.Contains(out, "^ 100") {
		t.Fatalf("no reference legend:\n%s", out)
	}
}

func TestChartClipping(t *testing.T) {
	out := render([]Bar{{Label: "x", Value: 500, Note: "off-scale"}}, Options{Width: 10, Max: 100})
	if !strings.Contains(out, ">") || !strings.Contains(out, "off-scale") {
		t.Fatalf("clipped bar not marked:\n%s", out)
	}
}

func TestChartAutoScale(t *testing.T) {
	out := render([]Bar{{Label: "x", Value: 80}}, Options{Width: 10})
	if strings.Contains(out, ">") {
		t.Fatalf("auto-scaled chart clipped:\n%s", out)
	}
	if !strings.Contains(out, "80.0") {
		t.Fatalf("value label missing:\n%s", out)
	}
}

func TestChartZeroAndNegativeValues(t *testing.T) {
	out := render([]Bar{{Label: "z", Value: 0}, {Label: "n", Value: -5}}, Options{Width: 10, Max: 100})
	for _, line := range strings.Split(out, "\n")[1:] {
		if strings.Contains(line, "#") {
			t.Fatalf("zero/negative bar drew marks: %q", line)
		}
	}
}

func TestNormalizedChart(t *testing.T) {
	var buf bytes.Buffer
	NormalizedChart(&buf, "fig", []Bar{{Label: "v", Value: 75}}, 120)
	out := buf.String()
	if !strings.Contains(out, "%") || !strings.Contains(out, "^ 100%") {
		t.Fatalf("normalized chart output:\n%s", out)
	}
}

func TestEmptyBars(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, "none", nil, Options{})
	if !strings.Contains(buf.String(), "none") {
		t.Fatal("title missing for empty chart")
	}
}
