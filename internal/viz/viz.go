// Package viz renders the paper's bar charts as plain-text graphics, so
// the regenerated figures read like figures rather than tables. It is
// deliberately tiny: horizontal bars with optional reference line and
// value labels, suitable for normalized-percentage data.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labelled value.
type Bar struct {
	Label string
	Value float64
	// Note is appended after the value (e.g. an off-scale marker).
	Note string
}

// Options controls chart rendering.
type Options struct {
	// Width is the bar area width in characters (default 50).
	Width int
	// Max clips/sets the scale's right edge; 0 auto-scales to the data.
	Max float64
	// Reference draws a vertical marker at this value (e.g. 100 for
	// normalized charts); 0 disables it.
	Reference float64
	// Unit is appended to value labels (e.g. "%").
	Unit string
}

func (o Options) withDefaults(bars []Bar) Options {
	if o.Width <= 0 {
		o.Width = 50
	}
	if o.Max <= 0 {
		for _, b := range bars {
			if b.Value > o.Max {
				o.Max = b.Value
			}
		}
		if o.Reference > o.Max {
			o.Max = o.Reference
		}
		if o.Max <= 0 {
			o.Max = 1
		}
		o.Max *= 1.05
	}
	return o
}

// Chart writes a horizontal bar chart.
func Chart(w io.Writer, title string, bars []Bar, opts Options) {
	opts = opts.withDefaults(bars)
	if title != "" {
		fmt.Fprintln(w, title)
	}
	labelW := 0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	refCol := -1
	if opts.Reference > 0 && opts.Reference <= opts.Max {
		refCol = col(opts.Reference, opts.Max, opts.Width)
	}
	for _, b := range bars {
		n := col(b.Value, opts.Max, opts.Width)
		clipped := b.Value > opts.Max
		row := make([]byte, opts.Width)
		for i := range row {
			switch {
			case i < n:
				row[i] = '#'
			case i == refCol:
				row[i] = '|'
			default:
				row[i] = ' '
			}
		}
		if refCol >= 0 && refCol < n {
			// keep the reference visible through the bar
			row[refCol] = '+'
		}
		mark := ""
		if clipped {
			mark = ">"
		}
		note := b.Note
		if note != "" {
			note = "  " + note
		}
		fmt.Fprintf(w, "%-*s %s%s %.1f%s%s\n", labelW, b.Label, string(row), mark, b.Value, opts.Unit, note)
	}
	if refCol >= 0 {
		pad := strings.Repeat(" ", labelW+1+refCol)
		fmt.Fprintf(w, "%s^ %.0f%s\n", pad, opts.Reference, opts.Unit)
	}
}

// col maps a value to a column count.
func col(v, max float64, width int) int {
	if v <= 0 {
		return 0
	}
	n := int(math.Round(v / max * float64(width)))
	if n > width {
		n = width
	}
	return n
}

// NormalizedChart is Chart preconfigured for the paper's
// percent-of-baseline figures: reference line at 100%, unit "%".
func NormalizedChart(w io.Writer, title string, bars []Bar, maxPct float64) {
	Chart(w, title, bars, Options{Reference: 100, Unit: "%", Max: maxPct})
}

// Histogram renders integer bucket counts — one bar per bucket index, the
// metrics layer's occupancy-distribution view. Trailing all-zero buckets
// are elided (but the slice's last bucket is always shown, so the
// histogram's domain stays visible). Options.Width applies; Max/Reference
// are scaled on the counts like Chart.
func Histogram(w io.Writer, title string, buckets []int64, opts Options) {
	if len(buckets) == 0 {
		return
	}
	last := len(buckets) - 1
	top := 0
	for i, c := range buckets {
		if c > 0 {
			top = i
		}
	}
	if top < last {
		top++ // keep one empty bucket so the cut is visible
	}
	if opts.Width <= 0 {
		opts.Width = 40
	}
	var max float64
	for _, c := range buckets {
		if float64(c) > max {
			max = float64(c)
		}
	}
	if max <= 0 {
		max = 1
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	labelW := len(fmt.Sprint(last))
	for i := 0; i <= top; i++ {
		n := col(float64(buckets[i]), max, opts.Width)
		fmt.Fprintf(w, "%*d %s %d\n", labelW, i, strings.Repeat("#", n)+strings.Repeat(" ", opts.Width-n), buckets[i])
	}
	if top < last {
		fmt.Fprintf(w, "%*s (buckets %d..%d empty)\n", labelW, "…", top+1, last)
	}
}
