package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/tso"
)

// Random-DAG property tests: generate arbitrary fork/join trees and check
// the scheduler's fundamental invariants on every queue algorithm under
// adversarial schedules — every node executes exactly once (for exact
// queues), continuations run after all their children's subtrees, and the
// completion propagation matches a sequential evaluation of the same tree.

// dagNode describes one task of a generated tree.
type dagNode struct {
	children []*dagNode
	cont     bool // whether this node forks (has a continuation)
	id       int
}

// genDAG builds a random tree with at most maxNodes nodes.
func genDAG(r *rand.Rand, maxNodes int) (*dagNode, int) {
	count := 0
	var build func(depth int) *dagNode
	build = func(depth int) *dagNode {
		n := &dagNode{id: count}
		count++
		if depth >= 4 || count >= maxNodes || r.Intn(3) == 0 {
			return n
		}
		kids := 1 + r.Intn(3)
		n.cont = true
		for i := 0; i < kids && count < maxNodes; i++ {
			n.children = append(n.children, build(depth+1))
		}
		if len(n.children) == 0 {
			n.cont = false
		}
		return n
	}
	root := build(0)
	return root, count
}

// dagTask converts a node into a TaskFunc that records execution order and
// continuation timing.
func dagTask(n *dagNode, ran []int, contAfter func(n *dagNode)) TaskFunc {
	return func(w *Worker) {
		w.Work(3)
		ran[n.id]++
		if !n.cont {
			return
		}
		kids := make([]TaskFunc, len(n.children))
		for i, ch := range n.children {
			kids[i] = dagTask(ch, ran, contAfter)
		}
		w.Fork(func(w *Worker) {
			w.Work(2)
			contAfter(n)
		}, kids...)
	}
}

// subtreeIDs collects all node ids in a subtree.
func subtreeIDs(n *dagNode, out map[int]bool) {
	out[n.id] = true
	for _, ch := range n.children {
		subtreeIDs(ch, out)
	}
}

func TestQuickRandomDAGs(t *testing.T) {
	algos := []core.Algo{core.AlgoTHE, core.AlgoChaseLev, core.AlgoTHEP, core.AlgoFFTHE, core.AlgoFFCL}
	f := func(seed int64, algoRaw uint8) bool {
		algo := algos[int(algoRaw)%len(algos)]
		r := rand.New(rand.NewSource(seed))
		root, nodes := genDAG(r, 40)

		m := tso.NewMachine(tso.Config{Threads: 3, BufferSize: 4, Seed: seed, DrainBias: 0.2})
		p := NewPool(m, Options{Algo: algo, Delta: 2, Seed: seed})

		ran := make([]int, nodes)
		// Record, for each forking node, which of its subtree's nodes had
		// executed when its continuation ran: the join contract says all
		// of them.
		violation := false
		contAfter := func(n *dagNode) {
			want := map[int]bool{}
			for _, ch := range n.children {
				subtreeIDs(ch, want)
			}
			for id := range want {
				if ran[id] == 0 {
					violation = true
				}
			}
		}
		if _, err := p.Run(dagTask(root, ran, contAfter)); err != nil {
			return false
		}
		if violation {
			return false
		}
		for _, c := range ran {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomDAGsTimedEngine(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root, nodes := genDAG(r, 60)
		m := tso.NewTimedMachine(tso.Config{Threads: 4, BufferSize: 14, DrainBuffer: true})
		p := NewPool(m, Options{Algo: core.AlgoTHEP, Delta: 7, Seed: seed})
		ran := make([]int, nodes)
		if _, err := p.Run(dagTask(root, ran, func(*dagNode) {})); err != nil {
			return false
		}
		for _, c := range ran {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
