package sched

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tso"
)

// errStopProbe is the sentinel the probe context uses to stop stealLoop.
var errStopProbe = errors.New("sched: steal probe done")

// probeCtx is a white-box tso.Context for driving stealLoop outside a
// machine run: loads read committed memory via Peek, Work calls are
// recorded (stopping the loop after limit of them), stores and fences
// are dropped, CAS is out of bounds for the paths under test.
type probeCtx struct {
	p     *Pool
	tid   int
	works []uint64
	limit int
}

func (c *probeCtx) Load(a tso.Addr) uint64     { return c.p.m.Peek(a) }
func (c *probeCtx) Store(a tso.Addr, v uint64) {}
func (c *probeCtx) Fence()                     {}
func (c *probeCtx) ThreadID() int              { return c.tid }
func (c *probeCtx) CAS(a tso.Addr, old, new uint64) (uint64, bool) {
	panic("probeCtx: unexpected CAS")
}
func (c *probeCtx) Work(cycles uint64) {
	c.works = append(c.works, cycles)
	if len(c.works) >= c.limit {
		c.p.failure = errStopProbe
	}
}

// probePool builds a pool around empty Chase-Lev queues (whose empty
// Steal path is pure loads) plus a probe context on worker 0.
func probePool(t *testing.T, threads int, opts Options) (*Pool, *Worker, *probeCtx) {
	t.Helper()
	opts.Algo = core.AlgoChaseLev
	m := chaosMachine(threads, 1)
	p := NewPool(m, opts)
	ctx := &probeCtx{p: p, limit: 1 << 30}
	return p, &Worker{pool: p, id: 0, ctx: ctx}, ctx
}

// TestStealBackoffCapAndDither drives stealLoop against empty queues and
// checks the failed-steal backoff contract: attempt i waits within
// [base, 2·base] for base = StealBackoff << min(i+1, 8) — exponential
// growth, a hard cap at streak 8, and random dither inside the window.
func TestStealBackoffCapAndDither(t *testing.T) {
	const backoff = 4
	p, w, ctx := probePool(t, 3, Options{StealBackoff: backoff, Seed: 9})
	ctx.limit = 40
	if got := p.stealLoop(w); got {
		t.Fatal("stealLoop reported a successful steal against empty queues")
	}
	if len(ctx.works) != 40 {
		t.Fatalf("recorded %d backoff waits, want 40", len(ctx.works))
	}
	dithered := false
	for i, wk := range ctx.works {
		streak := i + 1
		if streak > 8 {
			streak = 8
		}
		base := uint64(backoff) << streak
		if wk < base || wk > 2*base {
			t.Fatalf("wait %d = %d outside [%d, %d]", i, wk, base, 2*base)
		}
		if wk != base {
			dithered = true
		}
	}
	if !dithered {
		t.Fatal("every wait hit the window's floor; dither is inert")
	}
	// The cap: late waits stay within the streak-8 window.
	capBase := uint64(backoff) << 8
	for _, wk := range ctx.works[8:] {
		if wk > 2*capBase {
			t.Fatalf("wait %d exceeds the capped window %d", wk, 2*capBase)
		}
	}
}

// TestPickVictimNeverSelfAndUnbiased checks the single-draw uniform
// victim pick: never the thief itself, and — because the draw samples
// n-1 values and remaps past the thief's id instead of re-rolling — all
// other workers come up equally often with every draw charged.
func TestPickVictimNeverSelfAndUnbiased(t *testing.T) {
	p, w, _ := probePool(t, 4, Options{Seed: 3})
	counts := make([]int, 4)
	const draws = 9000
	for i := 0; i < draws; i++ {
		counts[p.pickVictim(w, p.rngs[w.id])]++
	}
	if counts[w.id] != 0 {
		t.Fatalf("thief picked itself %d times", counts[w.id])
	}
	for v, c := range counts {
		if v == w.id {
			continue
		}
		if c < draws/3-draws/20 || c > draws/3+draws/20 {
			t.Errorf("victim %d drawn %d times, want ~%d", v, c, draws/3)
		}
	}
}

// TestPickVictimPolicies exercises the non-uniform policies through the
// probe: last-success returns to a remembered victim until a failed
// visit clears it, and power-of-two never picks the thief.
func TestPickVictimPolicies(t *testing.T) {
	p, w, _ := probePool(t, 4, Options{Victim: VictimLastSuccess, Seed: 3})
	p.noteVictim(w, 2, core.OK)
	for i := 0; i < 5; i++ {
		if v := p.pickVictim(w, p.rngs[w.id]); v != 2 {
			t.Fatalf("last-success pick = %d, want remembered victim 2", v)
		}
	}
	p.noteVictim(w, 2, core.Empty)
	if p.lastVictim[w.id] != -1 {
		t.Fatal("failed visit did not clear the remembered victim")
	}
	for i := 0; i < 100; i++ {
		if v := p.pickVictim(w, p.rngs[w.id]); v == w.id {
			t.Fatal("last-success fallback picked the thief itself")
		}
	}

	p2, w2, _ := probePool(t, 5, Options{Victim: VictimPowerOfTwo, Seed: 4})
	for i := 0; i < 200; i++ {
		if v := p2.pickVictim(w2, p2.rngs[w2.id]); v == w2.id {
			t.Fatal("power-of-two picked the thief itself")
		}
	}
}

// TestPerWorkerRNGDeterminism checks the per-worker RNG satellite: a
// worker's victim sequence is a function of (Seed, worker id) alone —
// equal across pools with the same seed, distinct across workers.
func TestPerWorkerRNGDeterminism(t *testing.T) {
	seq := func(p *Pool, id int) []int {
		w := &Worker{pool: p, id: id, ctx: &probeCtx{p: p, limit: 1 << 30}}
		out := make([]int, 50)
		for i := range out {
			out[i] = p.pickVictim(w, p.rngs[id])
		}
		return out
	}
	pa, _, _ := probePool(t, 4, Options{Seed: 7})
	pb, _, _ := probePool(t, 4, Options{Seed: 7})
	for id := 0; id < 4; id++ {
		a, b := seq(pa, id), seq(pb, id)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("worker %d: victim sequences diverge at %d despite equal seeds", id, i)
			}
		}
	}
	a0, a1 := seq(pa, 0), seq(pa, 1)
	same := true
	for i := range a0 {
		// Compare the raw draws modulo the self-remap: distinct streams
		// disagree somewhere in 50 draws with overwhelming probability.
		if a0[i] != a1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("workers 0 and 1 share a victim stream; per-worker seeding is broken")
	}
}

// TestTwoThreadTHETimedNoLivelock pins the regression the dithered
// exponential backoff exists to prevent: on the timed engine a THE
// thief's lock-CAS drains its own buffered unlock and can re-acquire
// the victim's queue lock in the same instant, so with a constant
// inter-attempt gap a two-thread run can starve the worker's take()
// forever. The watchdog turns the livelock into a loud failure instead
// of a test-suite timeout.
func TestTwoThreadTHETimedNoLivelock(t *testing.T) {
	guard := time.AfterFunc(60*time.Second, func() {
		panic("sched: two-thread THE timed run livelocked — the steal backoff regressed")
	})
	defer guard.Stop()
	for seed := int64(0); seed < 5; seed++ {
		m := tso.NewTimedMachine(tso.Config{Threads: 2, BufferSize: 33})
		p := NewPool(m, Options{Algo: core.AlgoTHE, Seed: seed})
		var out uint64
		st, err := p.Run(fibTask(12, &out))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if want := fibSerial(12); out != want {
			t.Fatalf("seed %d: fib(12) = %d want %d", seed, out, want)
		}
		if st.Elapsed == 0 {
			t.Fatalf("seed %d: no elapsed cycles recorded", seed)
		}
	}
}

// TestBatchStealSeedsThiefQueue checks the pool-level batching path on
// a timed Chase-Lev run: batching must deliver more tasks than visits
// (StolenTasks > Steals) and cut the number of visits versus the same
// run with single steals.
func TestBatchStealSeedsThiefQueue(t *testing.T) {
	run := func(batch int) Stats {
		m := timedMachine(4)
		p := NewPool(m, Options{Algo: core.AlgoChaseLev, BatchSteal: batch, Seed: 6})
		st, err := p.Run(func(w *Worker) {
			for i := 0; i < 200; i++ {
				w.Spawn(func(w *Worker) { w.Work(200) })
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	single, batched := run(1), run(8)
	if single.StolenTasks != single.Steals {
		t.Fatalf("single steal: %d stolen tasks over %d visits", single.StolenTasks, single.Steals)
	}
	if batched.StolenTasks <= batched.Steals {
		t.Fatalf("batching never took more than one task per visit (%d over %d)", batched.StolenTasks, batched.Steals)
	}
	if batched.Steals >= single.Steals {
		t.Errorf("batched visits %d not below single-steal visits %d", batched.Steals, single.Steals)
	}
}
