package sched

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tso"
)

func chaosMachine(threads int, seed int64) Machine {
	return tso.NewMachine(tso.Config{Threads: threads, BufferSize: 4, Seed: seed, DrainBias: 0.25})
}

func timedMachine(threads int) Machine {
	return tso.NewTimedMachine(tso.Config{Threads: threads, BufferSize: 33})
}

// fibTask builds the classic fork/join fib as a TaskFunc tree, writing the
// result through out.
func fibTask(n int, out *uint64) TaskFunc {
	return func(w *Worker) {
		w.Work(8)
		if n < 2 {
			*out = uint64(n)
			return
		}
		var a, b uint64
		w.Fork(func(w *Worker) {
			w.Work(4)
			*out = a + b
		}, fibTask(n-1, &a), fibTask(n-2, &b))
	}
}

func fibSerial(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return fibSerial(n-1) + fibSerial(n-2)
}

func TestFibSingleWorkerAllAlgos(t *testing.T) {
	for _, algo := range core.Algos {
		if algo.Idempotent() {
			continue // fork/join requires an exact queue
		}
		m := chaosMachine(1, 11)
		p := NewPool(m, Options{Algo: algo, Delta: 2, Seed: 1})
		var out uint64
		st, err := p.Run(fibTask(10, &out))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if want := fibSerial(10); out != want {
			t.Fatalf("%v: fib(10) = %d want %d", algo, out, want)
		}
		if st.Duplicates != 0 {
			t.Fatalf("%v: %d duplicate executions", algo, st.Duplicates)
		}
	}
}

func TestFibMultiWorkerChaos(t *testing.T) {
	for _, algo := range []core.Algo{core.AlgoTHE, core.AlgoChaseLev, core.AlgoTHEP, core.AlgoFFTHE, core.AlgoFFCL} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				m := chaosMachine(3, seed)
				// δ=2 is sound here: S=4 and PostTakeStores=1 → ⌈4/2⌉=2.
				p := NewPool(m, Options{Algo: algo, Delta: 2, Seed: seed})
				var out uint64
				st, err := p.Run(fibTask(9, &out))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if want := fibSerial(9); out != want {
					t.Fatalf("seed %d: fib(9) = %d want %d", seed, out, want)
				}
				if st.Duplicates != 0 {
					t.Fatalf("seed %d: duplicates", seed)
				}
				if st.Executed < st.Spawned {
					t.Fatalf("seed %d: executed %d < spawned %d", seed, st.Executed, st.Spawned)
				}
			}
		})
	}
}

func TestFibTimedEngine(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := timedMachine(workers)
		p := NewPool(m, Options{Algo: core.AlgoTHE, Seed: 3})
		var out uint64
		st, err := p.Run(fibTask(12, &out))
		if err != nil {
			t.Fatal(err)
		}
		if want := fibSerial(12); out != want {
			t.Fatalf("fib(12) = %d want %d", out, want)
		}
		if st.Elapsed == 0 {
			t.Fatal("timed run reported zero elapsed cycles")
		}
	}
}

func TestParallelismShortensMakespan(t *testing.T) {
	elapsed := func(workers int) uint64 {
		m := timedMachine(workers)
		p := NewPool(m, Options{Algo: core.AlgoTHE, Seed: 5})
		var out uint64
		st, err := p.Run(fibTask(13, &out))
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	e1, e4 := elapsed(1), elapsed(4)
	if float64(e4) > 0.7*float64(e1) {
		t.Fatalf("4 workers (%d cycles) not meaningfully faster than 1 (%d cycles)", e4, e1)
	}
}

func TestSpawnFlatGraph(t *testing.T) {
	// A flat fan-out of independent tasks via Spawn, counted meta-side.
	for _, algo := range core.Algos {
		m := chaosMachine(2, 21)
		p := NewPool(m, Options{Algo: algo, Delta: 2, Seed: 2})
		counted := make([]int, 50)
		st, err := p.Run(func(w *Worker) {
			for i := 0; i < 50; i++ {
				i := i
				w.Spawn(func(w *Worker) {
					w.Work(3)
					counted[i]++
				})
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for i, c := range counted {
			if c < 1 {
				t.Fatalf("%v: task %d never ran", algo, i)
			}
			if c > 1 && !algo.Idempotent() {
				t.Fatalf("%v: task %d ran %d times", algo, i, c)
			}
		}
		if algo.Idempotent() {
			// A duplicated delivery re-runs the task body, so spawn
			// counts can exceed the exact count.
			if st.Spawned < 51 {
				t.Fatalf("%v: spawned %d want >= 51", algo, st.Spawned)
			}
		} else if st.Spawned != 51 {
			t.Fatalf("%v: spawned %d want 51", algo, st.Spawned)
		}
	}
}

// TestSpawnFlatGraphWSMultFamily runs the flat Spawn-only graph on the
// fully read/write WS-MULT family under chaos scheduling: every task
// runs at least once (the queues never lose work), re-executions are
// tolerated and counted rather than fatal (NewPool derives
// TolerateDuplicates from the Idempotent capability), and Fork stays
// rejected — the family only supports flat graphs.
func TestSpawnFlatGraphWSMultFamily(t *testing.T) {
	for _, algo := range []core.Algo{core.AlgoWSMult, core.AlgoWSMultRelaxed} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				m := chaosMachine(3, seed)
				p := NewPool(m, Options{Algo: algo, Seed: seed})
				counted := make([]int, 40)
				st, err := p.Run(func(w *Worker) {
					for i := 0; i < 40; i++ {
						i := i
						w.Spawn(func(w *Worker) {
							w.Work(3)
							counted[i]++
						})
					}
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				extra := int64(0)
				for i, c := range counted {
					if c < 1 {
						t.Fatalf("seed %d: task %d never ran", seed, i)
					}
					extra += int64(c - 1)
				}
				// A body re-execution has exactly two sources: a task id
				// delivered twice (counted in Duplicates) or a duplicated
				// root re-running the spawn loop under fresh ids (visible
				// as Spawned beyond the exact 41).
				if extra > 0 && st.Duplicates == 0 && st.Spawned <= 41 {
					t.Fatalf("seed %d: %d unexplained re-executions: %+v", seed, extra, st)
				}
			}
			m := chaosMachine(1, 99)
			p := NewPool(m, Options{Algo: algo, Seed: 1})
			_, err := p.Run(func(w *Worker) {
				w.Fork(func(*Worker) {}, func(*Worker) {})
			})
			var pp *tso.ProgramPanic
			if !errors.As(err, &pp) {
				t.Fatalf("Fork on %v: err=%v want panic", algo, err)
			}
		})
	}
}

func TestIdempotentDuplicatesAreCountedNotFatal(t *testing.T) {
	sawDup := false
	for seed := int64(0); seed < 40 && !sawDup; seed++ {
		m := tso.NewMachine(tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.05})
		p := NewPool(m, Options{Algo: core.AlgoIdempotentLIFO, Seed: seed})
		ran := make([]int, 60)
		_, err := p.Run(func(w *Worker) {
			for i := 0; i < 60; i++ {
				i := i
				w.Spawn(func(w *Worker) {
					w.Work(2)
					ran[i]++
				})
			}
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, c := range ran {
			if c > 1 {
				sawDup = true
			}
		}
	}
	// Duplicates are permitted, not required; this is informational.
	t.Logf("observed duplicate execution: %v", sawDup)
}

func TestDoubleExecutionIsFatalForExactQueues(t *testing.T) {
	// Force unsoundness: FF-CL with δ=1 on an S=4 machine and no post-take
	// stores. The pool must detect the double delivery and fail.
	sawFailure := false
	for seed := int64(0); seed < 300 && !sawFailure; seed++ {
		m := tso.NewMachine(tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.05})
		p := NewPool(m, Options{Algo: core.AlgoFFCL, Delta: 1, PostTakeStores: -1, Seed: seed})
		_, err := p.Run(func(w *Worker) {
			for i := 0; i < 40; i++ {
				w.Spawn(func(w *Worker) {})
			}
		})
		if err != nil {
			if !errors.Is(err, ErrDoubleExecution) {
				t.Fatalf("seed %d: unexpected error %v", seed, err)
			}
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("unsound δ never produced a detected double execution")
	}
}

func TestForkPanicsOnIdempotent(t *testing.T) {
	m := chaosMachine(1, 31)
	p := NewPool(m, Options{Algo: core.AlgoIdempotentDE, Seed: 1})
	_, err := p.Run(func(w *Worker) {
		w.Fork(func(*Worker) {}, func(*Worker) {})
	})
	var pp *tso.ProgramPanic
	if !errors.As(err, &pp) {
		t.Fatalf("Fork on an idempotent pool: err=%v want panic", err)
	}
}

func TestNestedForks(t *testing.T) {
	// Three levels of forks with continuations that themselves fork.
	m := chaosMachine(2, 41)
	p := NewPool(m, Options{Algo: core.AlgoTHEP, Delta: 2, Seed: 4})
	total := 0
	_, err := p.Run(func(w *Worker) {
		w.Fork(func(w *Worker) {
			// Continuation forks again.
			w.Fork(func(w *Worker) {
				total += 100
			}, func(w *Worker) { total++ }, func(w *Worker) { total++ })
		},
			func(w *Worker) { total += 10 },
			func(w *Worker) { total += 10 },
			func(w *Worker) { total += 10 },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 132 {
		t.Fatalf("total = %d want 132 (ordering of join chain broken)", total)
	}
}

func TestStealsActuallyHappen(t *testing.T) {
	// With several workers and a wide flat graph, thieves must get work.
	m := timedMachine(4)
	p := NewPool(m, Options{Algo: core.AlgoTHE, Seed: 6})
	st, err := p.Run(func(w *Worker) {
		for i := 0; i < 200; i++ {
			w.Spawn(func(w *Worker) { w.Work(200) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Steals == 0 {
		t.Fatal("no successful steals in a 4-worker wide graph")
	}
	if st.StolenFrac <= 0 || st.StolenFrac >= 1 {
		t.Fatalf("stolen fraction %v out of range", st.StolenFrac)
	}
}

func TestFFTHEWithHugeDeltaRunsSerially(t *testing.T) {
	// Figure 10's pathology: FF-THE with δ larger than the queue ever gets
	// aborts every steal, so one worker does everything.
	m := timedMachine(4)
	p := NewPool(m, Options{Algo: core.AlgoFFTHE, Delta: core.DeltaInfinite, Seed: 7})
	st, err := p.Run(func(w *Worker) {
		for i := 0; i < 60; i++ {
			w.Spawn(func(w *Worker) { w.Work(50) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Steals != 0 {
		t.Fatalf("steals=%d want 0 with δ=∞", st.Steals)
	}
	if st.Aborts == 0 {
		t.Fatal("expected aborted steal attempts")
	}
}

func TestPoolReuse(t *testing.T) {
	m := chaosMachine(2, 51)
	p := NewPool(m, Options{Algo: core.AlgoChaseLev, Seed: 8})
	for round := 0; round < 3; round++ {
		var out uint64
		if _, err := p.Run(fibTask(7, &out)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if want := fibSerial(7); out != want {
			t.Fatalf("round %d: fib(7) = %d want %d", round, out, want)
		}
	}
}

func TestStatsSpawnAccounting(t *testing.T) {
	m := chaosMachine(1, 61)
	p := NewPool(m, Options{Algo: core.AlgoTHE, Seed: 9})
	st, err := p.Run(func(w *Worker) {
		w.Fork(func(w *Worker) {}, func(w *Worker) {}, func(w *Worker) {})
	})
	if err != nil {
		t.Fatal(err)
	}
	// root + 2 children + continuation = 4
	if st.Spawned != 4 {
		t.Fatalf("spawned = %d want 4", st.Spawned)
	}
	if st.Executed != 4 {
		t.Fatalf("executed = %d want 4", st.Executed)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.QueueCap != 1<<14 || o.PostTakeStores != 1 || o.StealBackoff != 4 {
		t.Fatalf("defaults: %+v", o)
	}
	o = Options{PostTakeStores: -1}.withDefaults()
	if o.PostTakeStores != 0 {
		t.Fatalf("negative PostTakeStores should mean zero, got %d", o.PostTakeStores)
	}
	o = Options{PostTakeStores: 3, StealBackoff: 9, QueueCap: 64}.withDefaults()
	if o.PostTakeStores != 3 || o.StealBackoff != 9 || o.QueueCap != 64 {
		t.Fatalf("explicit values overridden: %+v", o)
	}
}

func TestDebugState(t *testing.T) {
	m := chaosMachine(2, 91)
	p := NewPool(m, Options{Algo: core.AlgoTHE, Seed: 1})
	if _, err := p.Run(func(w *Worker) {}); err != nil {
		t.Fatal(err)
	}
	s := p.DebugState()
	if !strings.Contains(s, "idle=") || !strings.Contains(s, "sizes=") {
		t.Fatalf("debug state: %q", s)
	}
}
