// Package sched is the work-stealing runtime the experiments run on: the
// CilkPlus-equivalent substrate of §8. Each worker owns one task queue
// (any algorithm from internal/core); workers drain their own queue with
// Take and, when it empties, become thieves that Steal from uniformly
// random victims — or, under the serving-regime ablation knobs, from
// victims picked by affinity (VictimLastSuccess) or two-choice occupancy
// sampling (VictimPowerOfTwo), optionally taking several tasks per visit
// (Options.BatchSteal over core.BatchStealer queues).
//
// Tasks are continuation-passing fork/join closures (Cilk-style): a task
// may call Worker.Fork once, handing the scheduler child tasks and a
// continuation that runs after all children's subtrees complete. Task
// bodies model computation cost with Worker.Work and may freely use Go
// state for their actual results — the simulated machine serializes
// execution, so task-level Go state is race-free; only the queue protocol
// itself lives in simulated memory, because that protocol is the system
// under test.
//
// Two properties the paper's algorithms rely on are explicit here:
//
//   - Workers keep taking until their queue is empty (they cannot rely on
//     work being stolen), which is what bounds THEP's echo wait (§5).
//   - After every successful Take the worker performs a configurable
//     number of scratch stores (PostTakeStores, default 1), mirroring the
//     CilkPlus runtime's store into the dequeued task. This both justifies
//     δ = ⌈S/2⌉ and prevents back-to-back stores to T from coalescing in
//     the drain stage (§7.3).
package sched

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/tso"
)

// Machine is the slice of the tso engines the scheduler needs; both
// tso.Machine and tso.TimedMachine satisfy it.
type Machine interface {
	tso.Allocator
	Run(progs ...func(tso.Context)) error
	Peek(a tso.Addr) uint64
	Config() tso.Config
}

// TaskFunc is a task body. It runs on some worker; it may call Fork (at
// most once, as its logically last action), Spawn, and Work.
type TaskFunc func(w *Worker)

// VictimPolicy selects how a thief picks its next victim. The policies
// are serving-regime ablation knobs (see internal/load): they change
// where steal traffic lands, not any queue protocol.
type VictimPolicy int

const (
	// VictimUniform draws victims uniformly at random — the paper's
	// runtime and the default.
	VictimUniform VictimPolicy = iota
	// VictimLastSuccess returns to the last victim this thief stole
	// from successfully, falling back to a uniform draw after any
	// failed visit. Under bursty single-source load the queue that fed
	// a thief once usually still has work.
	VictimLastSuccess
	// VictimPowerOfTwo samples two distinct victims and attacks the one
	// whose queue looks longer. The occupancy reads are real simulated
	// loads charged to the thief — the information is paid for, and may
	// be stale exactly as it would be on hardware.
	VictimPowerOfTwo
)

func (v VictimPolicy) String() string {
	switch v {
	case VictimUniform:
		return "uniform"
	case VictimLastSuccess:
		return "last"
	case VictimPowerOfTwo:
		return "p2c"
	default:
		return fmt.Sprintf("VictimPolicy(%d)", int(v))
	}
}

// VictimPolicies lists every implemented policy in flag order.
var VictimPolicies = []VictimPolicy{VictimUniform, VictimLastSuccess, VictimPowerOfTwo}

// ParseVictimPolicy resolves a policy by its String name. The boolean
// reports whether the name was recognized.
func ParseVictimPolicy(name string) (VictimPolicy, bool) {
	for _, v := range VictimPolicies {
		if v.String() == name {
			return v, true
		}
	}
	return 0, false
}

// Options configures a pool.
type Options struct {
	// Algo selects the queue algorithm; Delta parameterizes the
	// fence-free ones (ignored otherwise).
	Algo  core.Algo
	Delta int
	// QueueCap is each queue's task-array capacity (default 1<<14).
	QueueCap int
	// Victim selects the victim-selection policy (default
	// VictimUniform, the paper's runtime).
	Victim VictimPolicy
	// BatchSteal caps how many tasks a thief takes in one successful
	// steal visit when the victim's queue implements core.BatchStealer
	// (the Chase-Lev family). Values <= 1 mean single steal — the paper
	// behaviour and the default — and queues without batch support
	// always fall back to single steal. Stolen tasks beyond the first
	// are Put on the thief's own queue.
	BatchSteal int
	// PostTakeStores is the number of scratch stores the worker performs
	// after each successful Take; 0 means the default of 1 (CilkPlus
	// behaviour). Pass a negative value for literally zero stores, which
	// on a DrainBuffer machine deliberately recreates the unsound L=0
	// coalescing regime of §7.3.
	PostTakeStores int
	// StealBackoff is the Work charged between failed steal attempts
	// (default 4 cycles).
	StealBackoff uint64
	// Seed drives victim selection and backoff dither. Each worker
	// derives its own RNG from (Seed, worker id), so victim sequences
	// are deterministic per seed regardless of how workers interleave.
	Seed int64
	// TolerateDuplicates suppresses the double-execution panic; it is
	// implied by idempotent algorithms and required by their clients.
	TolerateDuplicates bool
}

func (o Options) withDefaults() Options {
	if o.QueueCap == 0 {
		o.QueueCap = 1 << 14
	}
	if o.PostTakeStores == 0 {
		o.PostTakeStores = 1
	} else if o.PostTakeStores < 0 {
		o.PostTakeStores = 0
	}
	if o.StealBackoff == 0 {
		o.StealBackoff = 4
	}
	return o
}

// Stats aggregates scheduler-level counters for one Run.
type Stats struct {
	Executed    int64 // task executions (including duplicate deliveries)
	Duplicates  int64 // executions beyond the first delivery of a task
	Spawned     int64 // tasks enqueued (root included)
	Steals      int64 // successful steal visits
	StolenTasks int64 // tasks obtained by stealing (== Steals without batching)
	Aborts      int64 // fence-free steal aborts
	FailedSteal int64 // empty/lost-race steals
	// StolenFrac is StolenTasks / Executed: the fraction of work
	// obtained by stealing (Figure 11b's metric). Tasks a batched steal
	// moves onto the thief's queue count as stolen even though the
	// thief later Takes them — they crossed queues via the steal path.
	StolenFrac float64
	// Elapsed is the virtual-cycle makespan when run on a TimedMachine, 0
	// on the chaos engine.
	Elapsed uint64
	// Workers holds per-worker steal-outcome counters. Populated only
	// when the machine's Config.Metrics is set (the observability layer);
	// nil otherwise, so the scheduler's hot path stays untouched.
	Workers []WorkerStats `json:"Workers,omitempty"`
}

// WorkerStats is one worker's share of the pool's activity: how it
// obtained work and how its steal attempts ended. The per-worker split is
// what shows steal-path mix — e.g. a δ too large for the workload turns a
// thief's Steals into Aborts (§6, Figure 10's FF-THE collapse).
type WorkerStats struct {
	// Takes counts tasks the worker took from its own queue.
	Takes int64
	// Steals counts its successful steal visits.
	Steals int64
	// Batched counts tasks it obtained beyond the first in batched
	// steal visits (0 without batching).
	Batched int64
	// Aborts counts fence-free steal aborts it hit.
	Aborts int64
	// Empties counts steal attempts that found the victim empty or lost
	// the race.
	Empties int64
}

// ErrDoubleExecution reports that an exact (non-idempotent) queue delivered
// some task twice — a safety violation of the queue under test.
var ErrDoubleExecution = errors.New("sched: task delivered twice by an exact queue")

// task is the scheduler's meta-level task record.
type task struct {
	fn         TaskFunc
	completion *join // decremented when this task's subtree completes
	delivered  int   // number of times handed out by a queue
}

// join is a fork/join countdown: when remaining reaches zero the
// continuation is enqueued, inheriting the fork's completion obligation.
type join struct {
	remaining  int
	cont       TaskFunc
	completion *join
}

// Pool schedules tasks over the workers of one machine run.
type Pool struct {
	opts       Options
	m          Machine
	queues     []core.Deque
	sizers     []core.MetaSizer
	scratch    []tso.Addr
	tasks      []task
	rngs       []*rand.Rand // per-worker, derived from (Seed, worker id)
	lastVictim []int        // per-worker VictimLastSuccess memory (-1 none)
	// loot holds per-worker batched-steal scratch (nil when BatchSteal
	// <= 1). Per worker because steal visits interleave: two thieves
	// can be mid-batch at once, each parked inside a simulated op.
	loot    [][]uint64
	idle    []bool
	stats   Stats
	failure error
}

// Worker is the per-thread handle passed to task bodies.
type Worker struct {
	pool   *Pool
	id     int
	ctx    tso.Context
	forked bool // current task called Fork
	cur    int  // current task index
}

// ID returns the worker's thread id.
func (w *Worker) ID() int { return w.id }

// Work charges cycles of computation to the worker (see tso.Context.Work).
func (w *Worker) Work(cycles uint64) { w.ctx.Work(cycles) }

// Now returns the worker's current virtual clock when the pool runs on
// a timed machine, and 0 otherwise. The machine computes one simulated
// thread at a time, so the read is race-free; serving workloads (see
// internal/load) use it to stamp request arrivals and completions.
func (w *Worker) Now() uint64 {
	if tm, ok := w.pool.m.(interface{ ThreadCycles(int) uint64 }); ok {
		return tm.ThreadCycles(w.id)
	}
	return 0
}

// NewPool builds a pool with one queue per machine thread. Queues and
// scratch space are allocated on m; call before m runs.
func NewPool(m Machine, opts Options) *Pool {
	opts = opts.withDefaults()
	n := m.Config().Threads
	if n < 1 {
		panic("sched: machine has no threads")
	}
	p := &Pool{
		opts:       opts,
		m:          m,
		queues:     make([]core.Deque, n),
		sizers:     make([]core.MetaSizer, n),
		scratch:    make([]tso.Addr, n),
		rngs:       make([]*rand.Rand, n),
		lastVictim: make([]int, n),
		idle:       make([]bool, n),
	}
	for i := range p.rngs {
		// Distinct deterministic per-worker streams: a worker's victim
		// and dither sequence depends only on (Seed, i), never on how
		// the workers' steal attempts interleave.
		p.rngs[i] = rand.New(rand.NewSource(opts.Seed + int64(i)*0x6A09E667F3BCC909))
	}
	if opts.BatchSteal > 1 {
		p.loot = make([][]uint64, n)
		for i := range p.loot {
			p.loot[i] = make([]uint64, opts.BatchSteal)
		}
	}
	if opts.Algo.Idempotent() {
		p.opts.TolerateDuplicates = true
	}
	for i := range p.queues {
		q := core.New(opts.Algo, m, opts.QueueCap, opts.Delta)
		p.queues[i] = q
		sizer, ok := q.(core.MetaSizer)
		if !ok {
			panic(fmt.Sprintf("sched: %s does not expose MetaSize", q.Name()))
		}
		p.sizers[i] = sizer
		p.scratch[i] = m.Alloc(8)
	}
	return p
}

// Run seeds root onto worker 0's queue and runs the machine until every
// task (transitively spawned) has executed and all workers are idle. It
// returns scheduler stats; queue-safety violations and simulated-thread
// panics surface as errors.
func (p *Pool) Run(root TaskFunc) (Stats, error) {
	p.stats = Stats{}
	if p.m.Config().Metrics {
		p.stats.Workers = make([]WorkerStats, len(p.queues))
	}
	p.failure = nil
	p.tasks = p.tasks[:0]
	for i := range p.lastVictim {
		p.lastVictim[i] = -1
	}
	rootID := p.addTask(root, nil)

	n := len(p.queues)
	progs := make([]func(tso.Context), n)
	for i := 0; i < n; i++ {
		i := i
		progs[i] = func(c tso.Context) {
			w := &Worker{pool: p, id: i, ctx: c}
			if i == 0 {
				p.queues[0].Put(c, taskWord(rootID))
			}
			p.workerLoop(w)
		}
	}
	err := p.m.Run(progs...)
	if err == nil {
		err = p.failure
	}
	if p.stats.Executed > 0 {
		p.stats.StolenFrac = float64(p.stats.StolenTasks) / float64(p.stats.Executed)
	}
	if tm, ok := p.m.(interface{ Elapsed() uint64 }); ok {
		p.stats.Elapsed = tm.Elapsed()
	}
	return p.stats, err
}

// taskWord encodes a task index as a queue value; ids are offset by one so
// the zero word never denotes a task.
func taskWord(id int) uint64 { return uint64(id) + 1 }

func wordTask(v uint64) int { return int(v) - 1 }

func (p *Pool) addTask(fn TaskFunc, completion *join) int {
	p.tasks = append(p.tasks, task{fn: fn, completion: completion})
	p.stats.Spawned++
	return len(p.tasks) - 1
}

// done is the termination detector: every worker idle and every queue
// empty as read from memory. Meta-state reads are serialized by the
// machine (only one simulated thread holds the floor at a time), so this
// requires no locking; see the package comment in core/metasize.go for why
// memory lag is only ever conservative here.
func (p *Pool) done() bool {
	for _, idle := range p.idle {
		if !idle {
			return false
		}
	}
	for _, s := range p.sizers {
		if s.MetaSize(p.m.Peek) > 0 {
			return false
		}
	}
	return true
}

func (p *Pool) workerLoop(w *Worker) {
	myQ := p.queues[w.id]
	for {
		v, st := myQ.Take(w.ctx)
		if st == core.OK {
			if p.stats.Workers != nil {
				p.stats.Workers[w.id].Takes++
			}
			p.postTake(w)
			p.exec(w, v, false)
			continue
		}
		// Own queue empty: become a thief.
		p.idle[w.id] = true
		if !p.stealLoop(w) {
			return
		}
	}
}

// postTake performs the client stores after a take (CilkPlus's x >= 1
// store into the dequeued task), rotating addresses so consecutive scratch
// stores never coalesce either.
func (p *Pool) postTake(w *Worker) {
	base := p.scratch[w.id]
	for i := 0; i < p.opts.PostTakeStores; i++ {
		w.ctx.Store(base+tso.Addr(i%8), uint64(i))
	}
}

// stealLoop runs until a steal succeeds (executes it and returns true) or
// the pool is done (returns false).
//
// Failed steals back off exponentially (capped), as real work-stealing
// runtimes do. Besides reducing contention, this is load-bearing on the
// timed engine: a THE thief's lock-CAS drains its own buffered unlock and
// can re-acquire the victim's queue lock in the same instant, so without a
// growing gap between attempts a two-thread configuration can starve the
// victim's take() on its own lock forever — a livelock that timing noise
// breaks on real hardware. The backoff is seeded-random-dithered, keeping
// runs reproducible per seed.
func (p *Pool) stealLoop(w *Worker) bool {
	n := len(p.queues)
	rng := p.rngs[w.id]
	streak := 0
	for {
		if p.done() || p.failure != nil {
			return false
		}
		if n == 1 {
			// Single-worker pool: nothing to steal; spin until done.
			w.ctx.Work(p.opts.StealBackoff)
			continue
		}
		victim := p.pickVictim(w, rng)
		v, extra, st := p.stealFrom(w, victim)
		p.noteVictim(w, victim, st)
		if p.stats.Workers != nil {
			ws := &p.stats.Workers[w.id]
			switch st {
			case core.OK:
				ws.Steals++
				ws.Batched += int64(extra)
			case core.Abort:
				ws.Aborts++
			default:
				ws.Empties++
			}
		}
		switch st {
		case core.OK:
			p.idle[w.id] = false
			p.stats.Steals++
			p.stats.StolenTasks += int64(1 + extra)
			p.exec(w, v, true)
			return true
		case core.Abort:
			p.stats.Aborts++
		default:
			p.stats.FailedSteal++
		}
		if streak < 8 {
			streak++
		}
		backoff := p.opts.StealBackoff << streak
		w.ctx.Work(backoff + uint64(rng.Intn(int(backoff)+1)))
	}
}

// pickVictim chooses a victim != w.id under the configured policy.
// Callers guarantee n > 1. The uniform draw samples [0, n-1) and remaps
// past the thief's own id, so a single draw suffices — no Work-free
// re-roll on a self-draw.
func (p *Pool) pickVictim(w *Worker, rng *rand.Rand) int {
	n := len(p.queues)
	uniform := func() int {
		v := rng.Intn(n - 1)
		if v >= w.id {
			v++
		}
		return v
	}
	switch p.opts.Victim {
	case VictimLastSuccess:
		if lv := p.lastVictim[w.id]; lv >= 0 {
			return lv
		}
	case VictimPowerOfTwo:
		a := uniform()
		if n == 2 {
			return a
		}
		// Draw b from the n-2 queues that are neither the thief nor a,
		// remapping upward past both in ascending order.
		b := rng.Intn(n - 2)
		lo, hi := w.id, a
		if lo > hi {
			lo, hi = hi, lo
		}
		if b >= lo {
			b++
		}
		if b >= hi {
			b++
		}
		// Read both occupancies through the thief's own context: the
		// loads cost real cycles on the timed machine and may observe
		// memory that lags the owners' buffered updates, exactly like a
		// hardware thief peeking at H and T.
		peek := func(a tso.Addr) uint64 { return w.ctx.Load(a) }
		if p.sizers[b].MetaSize(peek) > p.sizers[a].MetaSize(peek) {
			return b
		}
		return a
	}
	return uniform()
}

// noteVictim updates the last-successful-victim memory after a visit.
// Any failed visit (empty, lost race, δ-abort) clears the affinity so
// the thief does not fixate on a drained or uncertain queue.
func (p *Pool) noteVictim(w *Worker, victim int, st core.Status) {
	if p.opts.Victim != VictimLastSuccess {
		return
	}
	if st == core.OK {
		p.lastVictim[w.id] = victim
	} else if p.lastVictim[w.id] == victim {
		p.lastVictim[w.id] = -1
	}
}

// stealFrom performs one steal visit against victim. A batched visit
// (Options.BatchSteal > 1 against a core.BatchStealer queue) delivers
// the oldest stolen task for immediate execution and Puts the rest of
// the loot on the thief's own queue — seeding it so the thief's next
// tasks are cheap fence-free takes and rival thieves spread the burst
// further; extra is that loot count. Every other configuration is a
// plain single Steal.
func (p *Pool) stealFrom(w *Worker, victim int) (v uint64, extra int, st core.Status) {
	if p.loot != nil {
		if bs, ok := p.queues[victim].(core.BatchStealer); ok {
			loot := p.loot[w.id]
			k, st := bs.StealBatch(w.ctx, loot)
			if st != core.OK {
				return 0, 0, st
			}
			for _, task := range loot[1:k] {
				p.queues[w.id].Put(w.ctx, task)
			}
			return loot[0], k - 1, core.OK
		}
	}
	v, st = p.queues[victim].Steal(w.ctx)
	return v, 0, st
}

// exec runs a delivered task and settles its completion.
func (p *Pool) exec(w *Worker, word uint64, stolen bool) {
	id := wordTask(word)
	if id < 0 || id >= len(p.tasks) {
		panic(fmt.Sprintf("sched: queue delivered unknown task word %d", word))
	}
	t := &p.tasks[id]
	t.delivered++
	p.stats.Executed++
	if t.delivered > 1 {
		p.stats.Duplicates++
		if !p.opts.TolerateDuplicates {
			if p.failure == nil {
				p.failure = fmt.Errorf("%w: task %d (algorithm %s)", ErrDoubleExecution, id, p.queues[0].Name())
			}
			return
		}
	}
	w.forked = false
	w.cur = id
	t.fn(w)
	if !w.forked {
		p.complete(w, t.completion)
	}
}

// complete settles a finished subtree: the last child of a join enqueues
// the continuation, which inherits the join's own completion obligation
// (so completion keeps propagating when the continuation later finishes).
func (p *Pool) complete(w *Worker, j *join) {
	if j == nil {
		return
	}
	j.remaining--
	if j.remaining > 0 {
		return
	}
	id := p.addTask(j.cont, j.completion)
	p.queues[w.id].Put(w.ctx, taskWord(id))
}

// Spawn enqueues an independent task (no join) on the calling worker's
// queue.
func (w *Worker) Spawn(fn TaskFunc) {
	id := w.pool.addTask(fn, nil)
	w.pool.queues[w.id].Put(w.ctx, taskWord(id))
}

// Fork enqueues children and registers cont to run after all their
// subtrees complete; the current task's own completion obligation
// transfers to cont. Fork may be called at most once per task execution
// and must be its logically last action.
func (w *Worker) Fork(cont TaskFunc, children ...TaskFunc) {
	if w.forked {
		panic("sched: Fork called twice in one task")
	}
	if len(children) == 0 {
		panic("sched: Fork with no children")
	}
	if w.pool.opts.Algo.Idempotent() {
		// A duplicated delivery would decrement the join twice and fire
		// the continuation early. Idempotent queues therefore only
		// support flat Spawn-style task graphs, as in Michael et al.'s
		// own benchmarks.
		panic("sched: Fork/join task graphs require an exact queue; idempotent queues support Spawn only")
	}
	w.forked = true
	cur := &w.pool.tasks[w.cur]
	j := &join{remaining: len(children), cont: cont, completion: cur.completion}
	for _, ch := range children {
		id := w.pool.addTask(ch, j)
		w.pool.queues[w.id].Put(w.ctx, taskWord(id))
	}
}

// DebugState reports the termination detector's inputs: worker idleness
// and per-queue memory sizes. Harness debugging only; racy by nature.
func (p *Pool) DebugState() string {
	s := fmt.Sprintf("idle=%v sizes=[", p.idle)
	for _, sz := range p.sizers {
		s += fmt.Sprintf(" %d", sz.MetaSize(p.m.Peek))
	}
	return s + " ] executed=" + fmt.Sprint(p.stats.Executed) + " spawned=" + fmt.Sprint(p.stats.Spawned)
}
