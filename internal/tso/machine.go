package tso

import (
	"fmt"
	"math/rand"
)

// Machine is the chaos engine: an executable abstract TSO[S] machine whose
// scheduler explores thread interleavings and store-buffer drain schedules
// under a seeded RNG. Exactly one simulated thread executes at a time, and
// between any two thread actions the scheduler may drain any thread's
// store-buffer entries — the full nondeterminism of the §2 abstract
// machine, driven adversarially.
//
// A Machine is not safe for concurrent use; each Run call owns it until it
// returns. Memory contents persist across Run calls, so a harness can
// initialize state, run one program phase, inspect memory, and run another.
type Machine struct {
	cfg  Config
	mem  *memory
	bufs []*storeBuffer
	rng  *rand.Rand
	next Addr

	stats Stats

	// per-Run scheduler state
	reqCh   chan *request
	grants  []chan response
	pending []*request
	steps   int64

	// tracer, when non-nil, receives every executed action in schedule
	// order (see trace.go).
	tracer Tracer

	// chooser, when non-nil, replaces the random scheduling policy: at
	// every step the machine enumerates its possible actions (run each
	// thread with a pending request, drain each non-empty buffer, in
	// deterministic order) and asks chooser to pick one. Explore uses
	// this to enumerate schedules exhaustively.
	chooser func(n int) int
}

// action is one scheduler decision: execute a thread's pending request or
// drain one entry of a thread's store buffer (idx selects which entry
// under PSO; always 0 under TSO's FIFO rule).
type action struct {
	drain bool
	id    int
	idx   int
}

type opKind int

const (
	opLoad opKind = iota
	opStore
	opFence
	opCAS
	opWork
	opDone
	opPanic
)

type request struct {
	tid      int
	kind     opKind
	addr     Addr
	val      uint64 // store value / CAS old
	val2     uint64 // CAS new
	panicVal any
}

type response struct {
	val   uint64
	ok    bool
	abort bool
}

// abortSignal is panicked inside simulated threads when the machine tears a
// run down (step limit or another thread's panic); the thread wrapper
// recovers it and exits cleanly.
type abortSignal struct{}

// ProgramPanic wraps a panic raised by simulated-thread code so the harness
// sees which thread failed and why.
type ProgramPanic struct {
	Thread int
	Value  any
}

func (e *ProgramPanic) Error() string {
	return fmt.Sprintf("tso: simulated thread %d panicked: %v", e.Thread, e.Value)
}

// NewMachine builds a chaos machine for cfg. It panics on invalid
// configuration, since that is a programming error in the harness.
func NewMachine(cfg Config) *Machine {
	c, err := cfg.withDefaults()
	if err != nil {
		panic(err)
	}
	m := &Machine{
		cfg: c,
		mem: newMemory(c.MemWords),
		rng: rand.New(rand.NewSource(c.Seed)),
	}
	m.bufs = make([]*storeBuffer, c.Threads)
	for i := range m.bufs {
		m.bufs[i] = newStoreBuffer(c.BufferSize, c.DrainBuffer)
	}
	return m
}

// Config returns the configuration the machine was built with (after
// defaulting).
func (m *Machine) Config() Config { return m.cfg }

// Alloc reserves n zero-initialized words of simulated memory and returns
// the base address. Call it before Run.
func (m *Machine) Alloc(n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("tso: Alloc(%d)", n))
	}
	base := m.next
	m.next += Addr(n)
	m.mem.ensure(m.next - 1)
	return base
}

// Peek reads simulated memory directly, bypassing store buffers. Intended
// for harness inspection after Run (when all buffers have drained).
func (m *Machine) Peek(a Addr) uint64 { return m.mem.read(a) }

// Poke writes simulated memory directly, bypassing store buffers. Intended
// for harness initialization before Run.
func (m *Machine) Poke(a Addr, v uint64) { m.mem.write(a, v) }

// Stats returns cumulative event counts across all Run calls.
func (m *Machine) Stats() Stats {
	s := m.stats
	for _, b := range m.bufs {
		s.Drains += b.drains
		s.Coalesces += b.coalesces
		if b.maxOcc > s.MaxOccupancy {
			s.MaxOccupancy = b.maxOcc
		}
	}
	return s
}

// Run executes one simulated program per configured thread to completion,
// then flushes all store buffers. It returns ErrStepLimit if the schedule
// exceeds Config.MaxSteps (livelock/deadlock), or a *ProgramPanic if a
// program panics.
func (m *Machine) Run(progs ...func(Context)) error {
	if len(progs) != m.cfg.Threads {
		return fmt.Errorf("tso: machine has %d threads, Run got %d programs", m.cfg.Threads, len(progs))
	}
	m.reqCh = make(chan *request)
	m.grants = make([]chan response, len(progs))
	m.pending = make([]*request, len(progs))
	m.steps = 0
	for i := range progs {
		m.grants[i] = make(chan response)
		go m.runThread(i, progs[i])
	}
	err := m.schedule(len(progs))
	for tid, b := range m.bufs {
		for !b.empty() {
			if m.tracer != nil {
				var e entry
				if len(b.entries) > 0 {
					e = b.entries[0]
				} else {
					e = b.stage
				}
				m.trace("drain", tid, e.addr, e.val, false)
			}
			b.drainOne(m.mem)
		}
	}
	m.stats.Steps += m.steps
	return err
}

func (m *Machine) runThread(tid int, prog func(Context)) {
	defer func() {
		switch v := recover(); v.(type) {
		case nil:
			m.reqCh <- &request{tid: tid, kind: opDone}
		case abortSignal:
			m.reqCh <- &request{tid: tid, kind: opDone}
		default:
			m.reqCh <- &request{tid: tid, kind: opPanic, panicVal: v}
		}
	}()
	prog(&chaosCtx{m: m, tid: tid})
}

// schedule is the machine's main loop. Invariant: a live thread is either
// "computing" (its goroutine is running between Context calls) or has a
// pending request. At most one thread computes at a time, so the loop first
// gathers requests until every live thread has one, then picks an action.
func (m *Machine) schedule(threads int) error {
	live := threads
	pendingN := 0
	var fail error

	for {
		for pendingN < live {
			r := <-m.reqCh
			switch r.kind {
			case opDone:
				live--
			case opPanic:
				live--
				if fail == nil {
					fail = &ProgramPanic{Thread: r.tid, Value: r.panicVal}
				}
			default:
				m.pending[r.tid] = r
				pendingN++
			}
		}
		if fail != nil {
			m.abortPending(&pendingN)
			m.drainDone(&live, &pendingN)
			return fail
		}
		if live == 0 {
			return nil
		}
		if m.steps >= m.cfg.MaxSteps {
			m.abortPending(&pendingN)
			m.drainDone(&live, &pendingN)
			return fmt.Errorf("%w after %d steps", ErrStepLimit, m.steps)
		}
		m.steps++

		act := m.nextAction()
		if act.drain {
			b := m.bufs[act.id]
			if m.tracer != nil {
				// Identify which store this drain advances: the stage
				// entry when it reaches memory, or the FIFO head when it
				// moves into (or coalesces with) the stage.
				var e entry
				switch {
				case m.cfg.Model == ModelPSO:
					e = b.entries[act.idx]
				case b.hasStage && len(b.entries) == 0:
					e = b.stage
				case b.hasStage && b.entries[0].addr == b.stage.addr:
					e = b.entries[0] // coalesces; the stage value is discarded
				case b.hasStage:
					e = b.stage
				default:
					e = b.entries[0]
				}
				m.trace("drain", act.id, e.addr, e.val, false)
			}
			if m.cfg.Model == ModelPSO {
				b.drainAt(m.mem, act.idx)
			} else {
				b.drainOne(m.mem)
			}
			continue
		}
		tid := act.id
		r := m.pending[tid]
		m.pending[tid] = nil
		pendingN--
		m.grants[tid] <- m.exec(r)
	}
}

// nextAction picks the step's action: randomly under the default policy,
// or via the chooser over the full enumerated action list. Under PSO the
// drain actions additionally select which eligible entry to write (one per
// distinct buffered address).
func (m *Machine) nextAction() action {
	pso := m.cfg.Model == ModelPSO
	if m.chooser == nil {
		if k, ok := m.pickDrain(); ok {
			a := action{drain: true, id: k}
			if pso {
				el := m.bufs[k].eligibleDrains()
				a.idx = el[m.rng.Intn(len(el))]
			}
			return a
		}
		return action{id: m.pickRunnable()}
	}
	var acts []action
	for tid, r := range m.pending {
		if r != nil {
			acts = append(acts, action{id: tid})
		}
	}
	for tid, b := range m.bufs {
		if b.occupancy() == 0 {
			continue
		}
		if pso {
			for _, idx := range b.eligibleDrains() {
				acts = append(acts, action{drain: true, id: tid, idx: idx})
			}
			continue
		}
		acts = append(acts, action{drain: true, id: tid})
	}
	return acts[m.chooser(len(acts))]
}

// pickDrain decides whether this step drains a buffer entry, and whose.
func (m *Machine) pickDrain() (int, bool) {
	var drainable []int
	for i, b := range m.bufs {
		if b.occupancy() > 0 {
			drainable = append(drainable, i)
		}
	}
	if len(drainable) == 0 {
		return 0, false
	}
	if m.rng.Float64() >= m.cfg.DrainBias {
		return 0, false
	}
	return drainable[m.rng.Intn(len(drainable))], true
}

func (m *Machine) pickRunnable() int {
	var runnable []int
	for tid, r := range m.pending {
		if r != nil {
			runnable = append(runnable, tid)
		}
	}
	return runnable[m.rng.Intn(len(runnable))]
}

// exec performs one memory action for a thread, applying the abstract
// machine's forced-drain rules for full buffers, fences, and atomics.
func (m *Machine) exec(r *request) response {
	buf := m.bufs[r.tid]
	switch r.kind {
	case opLoad:
		m.stats.Loads++
		if v, ok := buf.forward(r.addr); ok {
			m.stats.ForwardLoads++
			m.trace("load", r.tid, r.addr, v, false)
			return response{val: v}
		}
		v := m.mem.read(r.addr)
		m.trace("load", r.tid, r.addr, v, false)
		return response{val: v}
	case opStore:
		m.stats.Stores++
		// Rule 6: if the buffer is full the memory subsystem must first
		// dequeue at least one entry.
		for buf.full() {
			buf.drainOne(m.mem)
		}
		buf.push(r.addr, r.val)
		m.trace("store", r.tid, r.addr, r.val, false)
		return response{}
	case opFence:
		m.stats.Fences++
		buf.drainAll(m.mem)
		m.trace("fence", r.tid, 0, 0, false)
		return response{}
	case opCAS:
		m.stats.CASes++
		// Rule 4: atomics run with the memory-subsystem lock held and an
		// empty store buffer, so the implicit drain happens first.
		buf.drainAll(m.mem)
		cur := m.mem.read(r.addr)
		if cur == r.val {
			m.mem.write(r.addr, r.val2)
			m.trace("cas", r.tid, r.addr, r.val2, true)
			return response{val: cur, ok: true}
		}
		m.trace("cas", r.tid, r.addr, r.val2, false)
		return response{val: cur, ok: false}
	case opWork:
		m.trace("work", r.tid, 0, 0, false)
		return response{}
	default:
		panic(fmt.Sprintf("tso: unknown op %d", r.kind))
	}
}

// abortPending tells every thread blocked on a grant to unwind.
func (m *Machine) abortPending(pendingN *int) {
	for tid, r := range m.pending {
		if r != nil {
			m.pending[tid] = nil
			*pendingN--
			m.grants[tid] <- response{abort: true}
		}
	}
}

// drainDone consumes the opDone notifications of unwinding threads so no
// goroutine is left blocked on reqCh.
func (m *Machine) drainDone(live, pendingN *int) {
	for *live > 0 {
		r := <-m.reqCh
		switch r.kind {
		case opDone, opPanic:
			*live--
		default:
			// A thread that was computing issued one more request before
			// observing the abort; bounce it.
			m.grants[r.tid] <- response{abort: true}
		}
	}
}

// chaosCtx is the Context implementation handed to chaos-engine threads.
type chaosCtx struct {
	m   *Machine
	tid int
}

func (c *chaosCtx) do(r request) response {
	r.tid = c.tid
	c.m.reqCh <- &r
	resp := <-c.m.grants[c.tid]
	if resp.abort {
		panic(abortSignal{})
	}
	return resp
}

func (c *chaosCtx) Load(a Addr) uint64 {
	return c.do(request{kind: opLoad, addr: a}).val
}

func (c *chaosCtx) Store(a Addr, v uint64) {
	c.do(request{kind: opStore, addr: a, val: v})
}

func (c *chaosCtx) Fence() {
	c.do(request{kind: opFence})
}

func (c *chaosCtx) CAS(a Addr, old, new uint64) (uint64, bool) {
	r := c.do(request{kind: opCAS, addr: a, val: old, val2: new})
	return r.val, r.ok
}

func (c *chaosCtx) Work(cycles uint64) {
	// Work is a scheduling point: the chaos engine may run other threads
	// or drain buffers "during" the computation.
	c.do(request{kind: opWork})
}

func (c *chaosCtx) ThreadID() int { return c.tid }
