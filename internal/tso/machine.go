package tso

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
)

// Machine is the unified abstract TSO[S] machine core. One request/grant
// executor, one memory + store-buffer substrate and one Stats sink serve
// every engine; what differs between engines is expressed as a pluggable
// scheduling/cost policy (see policy.go):
//
//   - the chaos policy (NewMachine) explores thread interleavings and
//     store-buffer drain schedules under a seeded RNG — the full
//     nondeterminism of the §2 abstract machine, driven adversarially;
//   - the chooser policy (installed by Explore) enumerates the decision
//     tree deterministically for exhaustive schedule exploration;
//   - the timed policy (NewTimedMachine) runs a min-virtual-clock
//     discrete-event simulation with pipelined drains (§7.1 cost model).
//
// Exactly one simulated thread executes at a time; between any two thread
// actions a policy may drain store-buffer entries.
//
// The request/grant rendezvous is channel-free on its steady-state path:
// each simulated thread is a pooled worker goroutine (spawned at the first
// Run, reused across Runs) whose single in-flight request is embedded in
// the worker itself, and the two directions of the handoff are parked
// single-slot gates (an atomic state word backed by a 1-slot semaphore —
// see gate). A simulated operation therefore performs zero heap
// allocations and no shared-channel traffic; the only per-operation cost
// is the two goroutine switches the one-thread-at-a-time semantics demand.
//
// A Machine is not safe for concurrent use; each Run call owns it until it
// returns. Memory contents persist across Run calls, so a harness can
// initialize state, run one program phase, inspect memory, and run another.
// Reset rewinds the machine to its just-constructed state without giving
// up any allocation, which is how the exploration engines execute millions
// of runs on a handful of machines.
type Machine struct {
	cfg  Config
	mem  *memory
	bufs []*storeBuffer
	rng  *rand.Rand
	next Addr

	// rngStale defers the RNG reseed a Reset implies until the first draw:
	// seeding math/rand's source regenerates its whole 607-word feedback
	// state (microseconds), which would dominate Reset for the
	// deterministic engines that never draw.
	rngStale bool

	stats Stats
	met   *MachineMetrics // non-nil iff Config.Metrics

	// pol is the engine's scheduling/cost policy.
	pol policy

	// workers are the pooled per-thread goroutines; nil until the first
	// Run (or after Close). reqGate is the scheduler's side of the
	// handoff: workers post requests by flagging themselves and releasing
	// it. reaper carries the GC finalizer that reclaims the workers of a
	// machine dropped without Close (see spawnWorkers).
	workers []*worker
	reaper  *reaper
	reqGate gate

	// pending[tid] points at tid's posted-but-ungranted request (embedded
	// in its worker); the slice is allocated once and reused across Runs.
	pending []*request
	steps   int64

	// opSeq numbers every executed request on the buffered substrate since
	// the last Reset. The id is assigned whether or not a tracer is
	// attached, so trace event ids are stable across re-runs of the same
	// schedule with tracing toggled — the property counterexample replay
	// relies on. A store's drain event carries the store's id (see entry.id).
	opSeq int64

	// tracer, when non-nil, receives every executed action in schedule
	// order (see trace.go).
	tracer Tracer

	// flushHook, when non-nil, is called before each end-of-run forced
	// drain (flushBuffered), while the buffer still holds the entry. The
	// DPOR engine uses it to record the flush suffix as dependence
	// events: those drains perform the run's remaining memory writes, and
	// races against them are what schedule a buffer's drain before
	// another thread's load.
	flushHook func(tid int)
}

// action is one scheduler decision: execute a thread's pending request or
// drain one entry of a thread's store buffer (idx selects which entry
// under PSO; always 0 under TSO's FIFO rule).
type action struct {
	drain bool
	id    int
	idx   int
}

type opKind int

const (
	opLoad opKind = iota
	opStore
	opFence
	opCAS
	opWork
	opDone
	opPanic
)

type request struct {
	tid      int
	kind     opKind
	addr     Addr
	val      uint64 // store value / CAS old / Work cycles
	val2     uint64 // CAS new
	panicVal any
}

type response struct {
	val   uint64
	ok    bool
	abort bool
}

// gate is a single-consumer park/unpark primitive: one atomic state word
// counting banked signals (with -1 meaning "consumer parked") backed by a
// 1-slot semaphore channel that is touched only when a park actually
// happens. release banks a signal or unparks the parked consumer; acquire
// consumes a banked signal without blocking, or parks until one arrives.
// Multiple producers may release concurrently; at most one goroutine may
// acquire. The atomic read-modify-writes give the same happens-before
// edges a channel would, so plain writes made before release are visible
// after the matching acquire.
type gate struct {
	state atomic.Int32
	sem   chan struct{}
}

func (g *gate) init() { g.sem = make(chan struct{}, 1) }

func (g *gate) release() {
	if g.state.Add(1) <= 0 {
		// The consumer was parked (-1 → 0): hand it the semaphore slot.
		g.sem <- struct{}{}
	}
}

func (g *gate) acquire() {
	if g.state.Add(-1) >= 0 {
		return // a signal was banked: no park
	}
	<-g.sem
}

// worker is one pooled simulated-thread goroutine and its half of the
// handoff: the thread's single in-flight request and response live here,
// so the steady-state operation path allocates nothing. The goroutine
// itself parks on start between Runs holding no reference to the machine,
// which lets an un-Closed machine be finalized (see Close).
type worker struct {
	m     *Machine
	tid   int
	req   request
	resp  response
	grant gate        // scheduler → thread: response ready
	start chan func() // Run → goroutine: next program bound and ready
	run   func()      // pre-bound runProg, sent on start each Run
	prog  func(Context)

	// posted tells the scheduler's gather scan that req holds a fresh
	// request; the store-release/CAS-acquire pair carries the request
	// fields across.
	posted atomic.Bool
}

// abortSignal is panicked inside simulated threads when the machine tears a
// run down (step limit or another thread's panic); the thread wrapper
// recovers it and exits cleanly.
type abortSignal struct{}

// ProgramPanic wraps a panic raised by simulated-thread code so the harness
// sees which thread failed and why.
type ProgramPanic struct {
	Thread int
	Value  any
}

func (e *ProgramPanic) Error() string {
	return fmt.Sprintf("tso: simulated thread %d panicked: %v", e.Thread, e.Value)
}

// NewMachine builds a chaos-policy machine for cfg. It panics on invalid
// configuration, since that is a programming error in the harness.
func NewMachine(cfg Config) *Machine {
	c, err := cfg.withDefaults()
	if err != nil {
		panic(err)
	}
	m := &Machine{
		cfg: c,
		mem: newMemory(c.MemWords),
		rng: rand.New(rand.NewSource(c.Seed)),
	}
	m.bufs = make([]*storeBuffer, c.Threads)
	for i := range m.bufs {
		m.bufs[i] = newStoreBuffer(c.BufferSize, c.DrainBuffer)
	}
	m.pending = make([]*request, c.Threads)
	m.reqGate.init()
	m.pol = &chaosPolicy{}
	if c.Metrics {
		m.enableMetrics()
	}
	return m
}

// Config returns the configuration the machine was built with (after
// defaulting).
func (m *Machine) Config() Config { return m.cfg }

// Alloc reserves n zero-initialized words of simulated memory and returns
// the base address. Call it before Run.
func (m *Machine) Alloc(n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("tso: Alloc(%d)", n))
	}
	base := m.next
	m.next += Addr(n)
	m.mem.ensure(m.next - 1)
	return base
}

// Peek reads simulated memory directly, bypassing store buffers. Intended
// for harness inspection after Run (when all buffers have drained).
func (m *Machine) Peek(a Addr) uint64 { return m.mem.read(a) }

// Poke writes simulated memory directly, bypassing store buffers. Intended
// for harness initialization before Run.
func (m *Machine) Poke(a Addr, v uint64) { m.mem.write(a, v) }

// Stats returns cumulative event counts across all Run calls. Counters
// recorded inside the store buffers (drains, coalesces, the occupancy
// high-water mark) are folded in here, so there is a single stats sink for
// every engine.
func (m *Machine) Stats() Stats {
	s := m.stats
	for _, b := range m.bufs {
		s.Drains += b.drains
		s.Coalesces += b.coalesces
		if b.maxOcc > s.MaxOccupancy {
			s.MaxOccupancy = b.maxOcc
		}
	}
	return s
}

// Reset rewinds the machine to its just-constructed state — memory zeroed,
// the allocator at address 0, store buffers empty, statistics, metrics and
// the high-water marks cleared, the chaos scheduler RNG reseeded from
// Config.Seed — while keeping every allocation: the memory words, the
// buffer arrays, and the pooled worker goroutines. A Reset machine behaves
// byte-for-byte like a fresh NewMachine/NewTimedMachine of the same
// Config, which is what lets the exploration engines reuse one machine
// across millions of runs. Reset must only be called between Runs.
func (m *Machine) Reset() {
	m.mem.reset()
	for _, b := range m.bufs {
		b.reset()
	}
	m.next = 0
	m.steps = 0
	m.opSeq = 0
	m.stats = Stats{}
	m.rngStale = m.rng != nil
	if m.met != nil {
		m.resetMetrics()
	}
}

// ResetSeed is Reset under a new chaos-scheduler seed — the sampling
// engines' path for sweeping seeds across one reused machine.
func (m *Machine) ResetSeed(seed int64) {
	m.cfg.Seed = seed
	m.Reset()
}

// rand returns the chaos scheduler's RNG, reseeding it first if a Reset
// left it stale. Only the chaos policy draws, so machines under a
// deterministic policy never pay for the seed.
func (m *Machine) rand() *rand.Rand {
	if m.rngStale {
		m.rng.Seed(m.cfg.Seed)
		m.rngStale = false
	}
	return m.rng
}

// Close releases the machine's pooled worker goroutines. It must not be
// called concurrently with Run; calling Run afterwards is allowed (the
// workers respawn). Machines that are dropped without Close are closed by
// a GC finalizer — the parked workers hold no reference to the machine —
// so forgetting Close leaks nothing permanently, but harnesses that churn
// machines in a loop should Close (or Reset and reuse) deterministically.
func (m *Machine) Close() {
	if m.workers == nil {
		return
	}
	runtime.SetFinalizer(m.reaper, nil)
	m.reaper.reap()
	m.reaper = nil
	m.workers = nil
}

// reaper closes a worker pool's start channels, releasing the parked
// goroutines. It exists as a separate object because the GC finalizer
// cannot live on the Machine itself: machine and workers reference each
// other, and a finalizer on a member of a reference cycle is not
// guaranteed to run. The reaper is referenced one-way (machine → reaper →
// channels), so it becomes unreachable exactly when the machine's cycle
// is collected, and its finalizer then reaps the workers.
type reaper struct {
	starts []chan func()
}

func (r *reaper) reap() {
	for _, ch := range r.starts {
		close(ch)
	}
}

// spawnWorkers starts the pooled per-thread goroutines on first use. The
// goroutines park on their start channels holding nothing but the channel,
// so an unreachable machine can still be finalized and its workers
// reclaimed.
func (m *Machine) spawnWorkers() {
	m.workers = make([]*worker, m.cfg.Threads)
	m.reaper = &reaper{starts: make([]chan func(), m.cfg.Threads)}
	for i := range m.workers {
		w := &worker{m: m, tid: i}
		w.req.tid = i
		w.grant.init()
		// Capacity 1 is load-bearing: Run may send the next program before
		// the worker has looped back from posting its previous opDone.
		w.start = make(chan func(), 1)
		w.run = w.runProg
		m.workers[i] = w
		m.reaper.starts[i] = w.start
		go workerLoop(w.start)
	}
	runtime.SetFinalizer(m.reaper, (*reaper).reap)
}

func workerLoop(start chan func()) {
	for f := range start {
		f()
	}
}

// Run executes one simulated program per configured thread to completion,
// then flushes all store buffers. Under a bounded policy (chaos, chooser)
// it returns ErrStepLimit if the schedule exceeds Config.MaxSteps
// (livelock/deadlock); a program panic surfaces as *ProgramPanic.
func (m *Machine) Run(progs ...func(Context)) error {
	if len(progs) != m.cfg.Threads {
		return fmt.Errorf("tso: machine has %d threads, Run got %d programs", m.cfg.Threads, len(progs))
	}
	if m.workers == nil {
		m.spawnWorkers()
	}
	for i := range m.pending {
		m.pending[i] = nil
	}
	m.steps = 0
	m.pol.reset(m)
	for i, p := range progs {
		w := m.workers[i]
		w.prog = p
		w.start <- w.run
	}
	err := m.schedule(len(progs))
	m.pol.flush(m)
	m.stats.Steps += m.steps
	return err
}

// runProg is one worker cycle: run the bound program, then post the
// terminal opDone/opPanic through the embedded request. It reuses the
// request in place, so the wrapper path allocates nothing either.
func (w *worker) runProg() {
	defer func() {
		w.req.addr = 0
		w.req.val = 0
		w.req.val2 = 0
		w.req.panicVal = nil
		switch v := recover(); v.(type) {
		case nil, abortSignal:
			w.req.kind = opDone
		default:
			w.req.kind = opPanic
			w.req.panicVal = v
		}
		w.m.post(w)
	}()
	w.prog(w)
}

// post publishes w's embedded request to the scheduler: flag the worker,
// then release the scheduler's gate. The flag store happens-before the
// gather scan's consuming CAS, which carries the request fields across.
func (m *Machine) post(w *worker) {
	w.posted.Store(true)
	m.reqGate.release()
}

// gather blocks until some worker has posted a request and returns it,
// consuming exactly one post. Which posted worker is returned first when
// several race (Run start, teardown) is scheduling-dependent, but the
// schedule loop collects until every live thread has a pending request
// before consulting the policy, so the machine's behaviour — and the
// chaos engine's same-seed determinism — do not depend on gather order.
func (m *Machine) gather() *worker {
	m.reqGate.acquire()
	for {
		for _, w := range m.workers {
			if w.posted.Load() && w.posted.CompareAndSwap(true, false) {
				return w
			}
		}
		// The release that satisfied acquire is always preceded by its
		// flag store, so the scan cannot miss forever; this retry only
		// spins if we consumed a flag whose release is still in flight.
	}
}

// grant hands tid's response back and unparks its worker.
func (m *Machine) grant(tid int, resp response) {
	w := m.workers[tid]
	w.resp = resp
	w.grant.release()
}

// schedule is the machine's main loop. Invariant: a live thread is either
// "computing" (its goroutine is running between Context calls) or has a
// pending request. At most one thread computes at a time, so the loop first
// gathers requests until every live thread has one, then asks the policy
// for an action.
func (m *Machine) schedule(threads int) error {
	live := threads
	pendingN := 0
	var fail error

	for {
		for pendingN < live {
			w := m.gather()
			switch w.req.kind {
			case opDone:
				live--
			case opPanic:
				live--
				if fail == nil {
					fail = &ProgramPanic{Thread: w.tid, Value: w.req.panicVal}
				}
			default:
				m.pending[w.tid] = &w.req
				pendingN++
			}
		}
		if fail != nil {
			m.abortPending(&pendingN)
			m.drainDone(&live)
			return fail
		}
		if live == 0 {
			return nil
		}
		if m.pol.bounded() && m.steps >= m.cfg.MaxSteps {
			m.abortPending(&pendingN)
			m.drainDone(&live)
			return fmt.Errorf("%w after %d steps", ErrStepLimit, m.steps)
		}
		m.steps++

		act := m.pol.next(m)
		if m.pol.cancelled() {
			// The policy abandoned the run mid-schedule (the exhaustive
			// engine's memoization cut). Unwind every thread and report the
			// sentinel so the engine can tell a cut from a real failure.
			m.abortPending(&pendingN)
			m.drainDone(&live)
			return errRunCut
		}
		if act.drain {
			m.drainStep(act)
			continue
		}
		tid := act.id
		r := m.pending[tid]
		m.pending[tid] = nil
		pendingN--
		m.grant(tid, m.pol.exec(m, r))
	}
}

// drainStep performs a policy-chosen drain action on the buffered
// substrate, tracing which store it advances.
func (m *Machine) drainStep(act action) {
	b := m.bufs[act.id]
	if m.tracer != nil {
		// Identify which store this drain advances: the stage entry when
		// it reaches memory, or the FIFO head when it moves into (or
		// coalesces with) the stage.
		var e entry
		switch {
		case m.cfg.Model == ModelPSO:
			e = b.entries[act.idx]
		case b.hasStage && len(b.entries) == 0:
			e = b.stage
		case b.hasStage && b.entries[0].addr == b.stage.addr:
			e = b.entries[0] // coalesces; the stage value is discarded
		case b.hasStage:
			e = b.stage
		default:
			e = b.entries[0]
		}
		m.trace("drain", act.id, e.addr, e.val, false, e.id)
	}
	if m.cfg.Model == ModelPSO {
		b.drainAt(m.mem, act.idx)
	} else {
		b.drainOne(m.mem)
	}
}

// execBuffered performs one memory action for a thread on the buffered
// (untimed) substrate, applying the abstract machine's forced-drain rules
// for full buffers, fences, and atomics. The chaos and chooser policies
// share it.
func (m *Machine) execBuffered(r *request) response {
	buf := m.bufs[r.tid]
	m.opSeq++
	id := m.opSeq
	switch r.kind {
	case opLoad:
		m.stats.Loads++
		if v, ok := buf.forward(r.addr); ok {
			m.stats.ForwardLoads++
			m.metForward(r.tid)
			m.trace("load", r.tid, r.addr, v, false, id)
			return response{val: v}
		}
		v := m.mem.read(r.addr)
		m.trace("load", r.tid, r.addr, v, false, id)
		return response{val: v}
	case opStore:
		m.stats.Stores++
		// Rule 6: if the buffer is full the memory subsystem must first
		// dequeue at least one entry.
		for buf.full() {
			buf.drainOne(m.mem)
		}
		buf.push(entry{addr: r.addr, val: r.val, born: uint64(m.steps), id: id})
		m.metPush(r.tid, buf)
		m.trace("store", r.tid, r.addr, r.val, false, id)
		return response{}
	case opFence:
		m.stats.Fences++
		m.metFenceStall(r.tid, uint64(buf.occupancy()))
		buf.drainAll(m.mem)
		m.trace("fence", r.tid, 0, 0, false, id)
		return response{}
	case opCAS:
		m.stats.CASes++
		// Rule 4: atomics run with the memory-subsystem lock held and an
		// empty store buffer, so the implicit drain happens first.
		m.metCASStall(r.tid, uint64(buf.occupancy()))
		buf.drainAll(m.mem)
		cur := m.mem.read(r.addr)
		if cur == r.val {
			m.mem.write(r.addr, r.val2)
			m.trace("cas", r.tid, r.addr, r.val2, true, id)
			return response{val: cur, ok: true}
		}
		m.trace("cas", r.tid, r.addr, r.val2, false, id)
		return response{val: cur, ok: false}
	case opWork:
		m.trace("work", r.tid, 0, 0, false, id)
		return response{}
	default:
		panic(fmt.Sprintf("tso: unknown op %d", r.kind))
	}
}

// flushBuffered empties every store buffer at end of Run, tracing the
// drains (chaos and chooser policies).
func (m *Machine) flushBuffered() {
	for tid, b := range m.bufs {
		for !b.empty() {
			if m.flushHook != nil {
				m.flushHook(tid)
			}
			if m.tracer != nil {
				var e entry
				if len(b.entries) > 0 {
					e = b.entries[0]
				} else {
					e = b.stage
				}
				m.trace("drain", tid, e.addr, e.val, false, e.id)
			}
			b.drainOne(m.mem)
		}
	}
}

// abortPending tells every thread blocked on a grant to unwind.
func (m *Machine) abortPending(pendingN *int) {
	for tid, r := range m.pending {
		if r != nil {
			m.pending[tid] = nil
			*pendingN--
			m.grant(tid, response{abort: true})
		}
	}
}

// drainDone consumes the opDone notifications of unwinding threads so no
// worker is left mid-cycle when Run returns.
func (m *Machine) drainDone(live *int) {
	for *live > 0 {
		w := m.gather()
		switch w.req.kind {
		case opDone, opPanic:
			*live--
		default:
			// A thread that was computing issued one more request before
			// observing the abort; bounce it.
			m.grant(w.tid, response{abort: true})
		}
	}
}

// The worker doubles as the Context implementation handed to its simulated
// thread; the installed policy interprets the requests. Embedding the
// request and response in the worker makes every operation below
// allocation-free.

func (w *worker) do() response {
	w.m.post(w)
	w.grant.acquire()
	if w.resp.abort {
		panic(abortSignal{})
	}
	return w.resp
}

// The Context methods assign every request field, not just the ones the
// op reads: the embedded request is reused across ops, and observers of
// the whole struct (the model checker's history hashes) must see the
// same bytes a freshly zeroed request would carry.

func (w *worker) Load(a Addr) uint64 {
	w.req.kind = opLoad
	w.req.addr = a
	w.req.val = 0
	w.req.val2 = 0
	return w.do().val
}

func (w *worker) Store(a Addr, v uint64) {
	w.req.kind = opStore
	w.req.addr = a
	w.req.val = v
	w.req.val2 = 0
	w.do()
}

func (w *worker) Fence() {
	w.req.kind = opFence
	w.req.addr = 0
	w.req.val = 0
	w.req.val2 = 0
	w.do()
}

func (w *worker) CAS(a Addr, old, new uint64) (uint64, bool) {
	w.req.kind = opCAS
	w.req.addr = a
	w.req.val = old
	w.req.val2 = new
	r := w.do()
	return r.val, r.ok
}

func (w *worker) Work(cycles uint64) {
	// Work is a scheduling point: a policy may run other threads or drain
	// buffers "during" the computation. The timed policy charges the
	// cycles to the thread's clock and treats zero-cycle work as a no-op.
	if cycles == 0 && w.m.pol.zeroWorkIsNop() {
		return
	}
	w.req.kind = opWork
	w.req.addr = 0
	w.req.val = cycles
	w.req.val2 = 0
	w.do()
}

func (w *worker) ThreadID() int { return w.tid }
