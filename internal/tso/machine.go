package tso

import (
	"fmt"
	"math/rand"
)

// Machine is the unified abstract TSO[S] machine core. One request/grant
// executor, one memory + store-buffer substrate and one Stats sink serve
// every engine; what differs between engines is expressed as a pluggable
// scheduling/cost policy (see policy.go):
//
//   - the chaos policy (NewMachine) explores thread interleavings and
//     store-buffer drain schedules under a seeded RNG — the full
//     nondeterminism of the §2 abstract machine, driven adversarially;
//   - the chooser policy (installed by Explore) enumerates the decision
//     tree deterministically for exhaustive schedule exploration;
//   - the timed policy (NewTimedMachine) runs a min-virtual-clock
//     discrete-event simulation with pipelined drains (§7.1 cost model).
//
// Exactly one simulated thread executes at a time; between any two thread
// actions a policy may drain store-buffer entries.
//
// A Machine is not safe for concurrent use; each Run call owns it until it
// returns. Memory contents persist across Run calls, so a harness can
// initialize state, run one program phase, inspect memory, and run another.
type Machine struct {
	cfg  Config
	mem  *memory
	bufs []*storeBuffer
	rng  *rand.Rand
	next Addr

	stats Stats
	met   *MachineMetrics // non-nil iff Config.Metrics

	// pol is the engine's scheduling/cost policy.
	pol policy

	// per-Run scheduler state
	reqCh   chan *request
	grants  []chan response
	pending []*request
	steps   int64

	// tracer, when non-nil, receives every executed action in schedule
	// order (see trace.go).
	tracer Tracer
}

// action is one scheduler decision: execute a thread's pending request or
// drain one entry of a thread's store buffer (idx selects which entry
// under PSO; always 0 under TSO's FIFO rule).
type action struct {
	drain bool
	id    int
	idx   int
}

type opKind int

const (
	opLoad opKind = iota
	opStore
	opFence
	opCAS
	opWork
	opDone
	opPanic
)

type request struct {
	tid      int
	kind     opKind
	addr     Addr
	val      uint64 // store value / CAS old / Work cycles
	val2     uint64 // CAS new
	panicVal any
}

type response struct {
	val   uint64
	ok    bool
	abort bool
}

// abortSignal is panicked inside simulated threads when the machine tears a
// run down (step limit or another thread's panic); the thread wrapper
// recovers it and exits cleanly.
type abortSignal struct{}

// ProgramPanic wraps a panic raised by simulated-thread code so the harness
// sees which thread failed and why.
type ProgramPanic struct {
	Thread int
	Value  any
}

func (e *ProgramPanic) Error() string {
	return fmt.Sprintf("tso: simulated thread %d panicked: %v", e.Thread, e.Value)
}

// NewMachine builds a chaos-policy machine for cfg. It panics on invalid
// configuration, since that is a programming error in the harness.
func NewMachine(cfg Config) *Machine {
	c, err := cfg.withDefaults()
	if err != nil {
		panic(err)
	}
	m := &Machine{
		cfg: c,
		mem: newMemory(c.MemWords),
		rng: rand.New(rand.NewSource(c.Seed)),
	}
	m.bufs = make([]*storeBuffer, c.Threads)
	for i := range m.bufs {
		m.bufs[i] = newStoreBuffer(c.BufferSize, c.DrainBuffer)
	}
	m.pol = &chaosPolicy{rng: m.rng}
	if c.Metrics {
		m.enableMetrics()
	}
	return m
}

// Config returns the configuration the machine was built with (after
// defaulting).
func (m *Machine) Config() Config { return m.cfg }

// Alloc reserves n zero-initialized words of simulated memory and returns
// the base address. Call it before Run.
func (m *Machine) Alloc(n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("tso: Alloc(%d)", n))
	}
	base := m.next
	m.next += Addr(n)
	m.mem.ensure(m.next - 1)
	return base
}

// Peek reads simulated memory directly, bypassing store buffers. Intended
// for harness inspection after Run (when all buffers have drained).
func (m *Machine) Peek(a Addr) uint64 { return m.mem.read(a) }

// Poke writes simulated memory directly, bypassing store buffers. Intended
// for harness initialization before Run.
func (m *Machine) Poke(a Addr, v uint64) { m.mem.write(a, v) }

// Stats returns cumulative event counts across all Run calls. Counters
// recorded inside the store buffers (drains, coalesces, the occupancy
// high-water mark) are folded in here, so there is a single stats sink for
// every engine.
func (m *Machine) Stats() Stats {
	s := m.stats
	for _, b := range m.bufs {
		s.Drains += b.drains
		s.Coalesces += b.coalesces
		if b.maxOcc > s.MaxOccupancy {
			s.MaxOccupancy = b.maxOcc
		}
	}
	return s
}

// Run executes one simulated program per configured thread to completion,
// then flushes all store buffers. Under a bounded policy (chaos, chooser)
// it returns ErrStepLimit if the schedule exceeds Config.MaxSteps
// (livelock/deadlock); a program panic surfaces as *ProgramPanic.
func (m *Machine) Run(progs ...func(Context)) error {
	if len(progs) != m.cfg.Threads {
		return fmt.Errorf("tso: machine has %d threads, Run got %d programs", m.cfg.Threads, len(progs))
	}
	m.reqCh = make(chan *request)
	m.grants = make([]chan response, len(progs))
	m.pending = make([]*request, len(progs))
	m.steps = 0
	m.pol.reset(m)
	for i := range progs {
		m.grants[i] = make(chan response)
		go m.runThread(i, progs[i])
	}
	err := m.schedule(len(progs))
	m.pol.flush(m)
	m.stats.Steps += m.steps
	return err
}

func (m *Machine) runThread(tid int, prog func(Context)) {
	defer func() {
		switch v := recover(); v.(type) {
		case nil:
			m.reqCh <- &request{tid: tid, kind: opDone}
		case abortSignal:
			m.reqCh <- &request{tid: tid, kind: opDone}
		default:
			m.reqCh <- &request{tid: tid, kind: opPanic, panicVal: v}
		}
	}()
	prog(&threadCtx{m: m, tid: tid})
}

// schedule is the machine's main loop. Invariant: a live thread is either
// "computing" (its goroutine is running between Context calls) or has a
// pending request. At most one thread computes at a time, so the loop first
// gathers requests until every live thread has one, then asks the policy
// for an action.
func (m *Machine) schedule(threads int) error {
	live := threads
	pendingN := 0
	var fail error

	for {
		for pendingN < live {
			r := <-m.reqCh
			switch r.kind {
			case opDone:
				live--
			case opPanic:
				live--
				if fail == nil {
					fail = &ProgramPanic{Thread: r.tid, Value: r.panicVal}
				}
			default:
				m.pending[r.tid] = r
				pendingN++
			}
		}
		if fail != nil {
			m.abortPending(&pendingN)
			m.drainDone(&live, &pendingN)
			return fail
		}
		if live == 0 {
			return nil
		}
		if m.pol.bounded() && m.steps >= m.cfg.MaxSteps {
			m.abortPending(&pendingN)
			m.drainDone(&live, &pendingN)
			return fmt.Errorf("%w after %d steps", ErrStepLimit, m.steps)
		}
		m.steps++

		act := m.pol.next(m)
		if m.pol.cancelled() {
			// The policy abandoned the run mid-schedule (the exhaustive
			// engine's memoization cut). Unwind every thread and report the
			// sentinel so the engine can tell a cut from a real failure.
			m.abortPending(&pendingN)
			m.drainDone(&live, &pendingN)
			return errRunCut
		}
		if act.drain {
			m.drainStep(act)
			continue
		}
		tid := act.id
		r := m.pending[tid]
		m.pending[tid] = nil
		pendingN--
		m.grants[tid] <- m.pol.exec(m, r)
	}
}

// drainStep performs a policy-chosen drain action on the buffered
// substrate, tracing which store it advances.
func (m *Machine) drainStep(act action) {
	b := m.bufs[act.id]
	if m.tracer != nil {
		// Identify which store this drain advances: the stage entry when
		// it reaches memory, or the FIFO head when it moves into (or
		// coalesces with) the stage.
		var e entry
		switch {
		case m.cfg.Model == ModelPSO:
			e = b.entries[act.idx]
		case b.hasStage && len(b.entries) == 0:
			e = b.stage
		case b.hasStage && b.entries[0].addr == b.stage.addr:
			e = b.entries[0] // coalesces; the stage value is discarded
		case b.hasStage:
			e = b.stage
		default:
			e = b.entries[0]
		}
		m.trace("drain", act.id, e.addr, e.val, false)
	}
	if m.cfg.Model == ModelPSO {
		b.drainAt(m.mem, act.idx)
	} else {
		b.drainOne(m.mem)
	}
}

// execBuffered performs one memory action for a thread on the buffered
// (untimed) substrate, applying the abstract machine's forced-drain rules
// for full buffers, fences, and atomics. The chaos and chooser policies
// share it.
func (m *Machine) execBuffered(r *request) response {
	buf := m.bufs[r.tid]
	switch r.kind {
	case opLoad:
		m.stats.Loads++
		if v, ok := buf.forward(r.addr); ok {
			m.stats.ForwardLoads++
			m.metForward(r.tid)
			m.trace("load", r.tid, r.addr, v, false)
			return response{val: v}
		}
		v := m.mem.read(r.addr)
		m.trace("load", r.tid, r.addr, v, false)
		return response{val: v}
	case opStore:
		m.stats.Stores++
		// Rule 6: if the buffer is full the memory subsystem must first
		// dequeue at least one entry.
		for buf.full() {
			buf.drainOne(m.mem)
		}
		buf.push(entry{addr: r.addr, val: r.val, born: uint64(m.steps)})
		m.metPush(r.tid, buf)
		m.trace("store", r.tid, r.addr, r.val, false)
		return response{}
	case opFence:
		m.stats.Fences++
		m.metFenceStall(r.tid, uint64(buf.occupancy()))
		buf.drainAll(m.mem)
		m.trace("fence", r.tid, 0, 0, false)
		return response{}
	case opCAS:
		m.stats.CASes++
		// Rule 4: atomics run with the memory-subsystem lock held and an
		// empty store buffer, so the implicit drain happens first.
		m.metCASStall(r.tid, uint64(buf.occupancy()))
		buf.drainAll(m.mem)
		cur := m.mem.read(r.addr)
		if cur == r.val {
			m.mem.write(r.addr, r.val2)
			m.trace("cas", r.tid, r.addr, r.val2, true)
			return response{val: cur, ok: true}
		}
		m.trace("cas", r.tid, r.addr, r.val2, false)
		return response{val: cur, ok: false}
	case opWork:
		m.trace("work", r.tid, 0, 0, false)
		return response{}
	default:
		panic(fmt.Sprintf("tso: unknown op %d", r.kind))
	}
}

// flushBuffered empties every store buffer at end of Run, tracing the
// drains (chaos and chooser policies).
func (m *Machine) flushBuffered() {
	for tid, b := range m.bufs {
		for !b.empty() {
			if m.tracer != nil {
				var e entry
				if len(b.entries) > 0 {
					e = b.entries[0]
				} else {
					e = b.stage
				}
				m.trace("drain", tid, e.addr, e.val, false)
			}
			b.drainOne(m.mem)
		}
	}
}

// abortPending tells every thread blocked on a grant to unwind.
func (m *Machine) abortPending(pendingN *int) {
	for tid, r := range m.pending {
		if r != nil {
			m.pending[tid] = nil
			*pendingN--
			m.grants[tid] <- response{abort: true}
		}
	}
}

// drainDone consumes the opDone notifications of unwinding threads so no
// goroutine is left blocked on reqCh.
func (m *Machine) drainDone(live, pendingN *int) {
	for *live > 0 {
		r := <-m.reqCh
		switch r.kind {
		case opDone, opPanic:
			*live--
		default:
			// A thread that was computing issued one more request before
			// observing the abort; bounce it.
			m.grants[r.tid] <- response{abort: true}
		}
	}
}

// threadCtx is the Context implementation handed to simulated threads of
// every engine; the installed policy interprets the requests.
type threadCtx struct {
	m   *Machine
	tid int
}

func (c *threadCtx) do(r request) response {
	r.tid = c.tid
	c.m.reqCh <- &r
	resp := <-c.m.grants[c.tid]
	if resp.abort {
		panic(abortSignal{})
	}
	return resp
}

func (c *threadCtx) Load(a Addr) uint64 {
	return c.do(request{kind: opLoad, addr: a}).val
}

func (c *threadCtx) Store(a Addr, v uint64) {
	c.do(request{kind: opStore, addr: a, val: v})
}

func (c *threadCtx) Fence() {
	c.do(request{kind: opFence})
}

func (c *threadCtx) CAS(a Addr, old, new uint64) (uint64, bool) {
	r := c.do(request{kind: opCAS, addr: a, val: old, val2: new})
	return r.val, r.ok
}

func (c *threadCtx) Work(cycles uint64) {
	// Work is a scheduling point: a policy may run other threads or drain
	// buffers "during" the computation. The timed policy charges the
	// cycles to the thread's clock and treats zero-cycle work as a no-op.
	if cycles == 0 && c.m.pol.zeroWorkIsNop() {
		return
	}
	c.do(request{kind: opWork, val: cycles})
}

func (c *threadCtx) ThreadID() int { return c.tid }
