package tso

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// This file tests the channel-free execution substrate: Machine.Reset
// equivalence against fresh machines, pooled-worker teardown under panics
// and step limits, the gate handoff primitive, and the zero-allocation
// guarantee of the steady-state operation path.

const fuzzWords = 8 // addresses a fuzz program touches

// fuzzProgs builds one deterministic pseudo-random program per thread:
// a mix of stores, loads, CAS, fences and Work driven by a thread-local
// RNG, folding every observed value into a signature that the thread
// stores at base+fuzzWords+tid so the run's observable behaviour ends up
// in memory.
func fuzzProgs(progSeed int64, threads int, base Addr) []func(Context) {
	progs := make([]func(Context), threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		progs[tid] = func(c Context) {
			rng := rand.New(rand.NewSource(progSeed*31 + int64(tid)))
			sig := uint64(0)
			for i := 0; i < 200; i++ {
				a := base + Addr(rng.Intn(fuzzWords))
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					c.Store(a, rng.Uint64()%97)
				case 4, 5, 6:
					sig = sig*1099511628211 + c.Load(a)
				case 7:
					v, ok := c.CAS(a, sig%97, rng.Uint64()%97)
					sig = sig*1099511628211 + v
					if ok {
						sig++
					}
				case 8:
					c.Fence()
				case 9:
					c.Work(uint64(rng.Intn(3)))
				}
			}
			c.Store(base+fuzzWords+Addr(tid), sig)
		}
	}
	return progs
}

// machineSnapshot captures everything a Run leaves behind: the memory
// image over the program's footprint, cumulative stats, and the metric
// series.
type machineSnapshot struct {
	mem   []uint64
	stats Stats
	met   *MachineMetrics
}

func snapshotOf(m *Machine, words int) machineSnapshot {
	s := machineSnapshot{stats: m.Stats(), met: m.Metrics()}
	for a := Addr(0); a < Addr(words); a++ {
		s.mem = append(s.mem, m.Peek(a))
	}
	return s
}

func (a machineSnapshot) diff(b machineSnapshot) string {
	if !reflect.DeepEqual(a.mem, b.mem) {
		return fmt.Sprintf("memory image differs:\n  %v\n  %v", a.mem, b.mem)
	}
	if a.stats != b.stats {
		return fmt.Sprintf("stats differ:\n  %+v\n  %+v", a.stats, b.stats)
	}
	if !reflect.DeepEqual(a.met, b.met) {
		return fmt.Sprintf("metrics differ:\n  %+v\n  %+v", a.met, b.met)
	}
	return ""
}

// TestResetEquivalence fuzzes: run a dirtying program, Reset, run a
// reference program, and require the machine to be byte-for-byte
// indistinguishable from a fresh machine that only ran the reference
// program — memory, stats, and metrics.
func TestResetEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, drain := range []bool{false, true} {
			cfg := Config{
				Threads: 2 + int(seed%2), BufferSize: 3, Seed: seed,
				DrainBias: 0.3, DrainBuffer: drain, Metrics: true,
			}
			words := fuzzWords + cfg.Threads

			fresh := NewMachine(cfg)
			base := fresh.Alloc(words)
			if err := fresh.Run(fuzzProgs(seed, cfg.Threads, base)...); err != nil {
				t.Fatalf("seed %d: fresh run: %v", seed, err)
			}
			want := snapshotOf(fresh, words)
			fresh.Close()

			reused := NewMachine(cfg)
			dirtyBase := reused.Alloc(words + 5) // different layout on purpose
			if err := reused.Run(fuzzProgs(seed+1000, cfg.Threads, dirtyBase)...); err != nil {
				t.Fatalf("seed %d: dirty run: %v", seed, err)
			}
			reused.Reset()
			if got := reused.Alloc(words); got != base {
				t.Fatalf("seed %d: Reset did not rewind the allocator: got base %d, want %d", seed, got, base)
			}
			if err := reused.Run(fuzzProgs(seed, cfg.Threads, base)...); err != nil {
				t.Fatalf("seed %d: reused run: %v", seed, err)
			}
			got := snapshotOf(reused, words)
			reused.Close()

			if d := want.diff(got); d != "" {
				t.Fatalf("seed %d drain=%v: reset machine diverged from fresh machine: %s", seed, drain, d)
			}
		}
	}
}

// TestResetEquivalenceTimed is the timed-engine counterpart, additionally
// comparing the virtual-cycle makespan.
func TestResetEquivalenceTimed(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cfg := Config{Threads: 2, BufferSize: 5, DrainBuffer: seed%2 == 0, Metrics: true}
		words := fuzzWords + cfg.Threads

		fresh := NewTimedMachine(cfg)
		base := fresh.Alloc(words)
		if err := fresh.Run(fuzzProgs(seed, cfg.Threads, base)...); err != nil {
			t.Fatalf("seed %d: fresh run: %v", seed, err)
		}
		want := snapshotOf(&fresh.Machine, words)
		wantElapsed := fresh.Elapsed()
		fresh.Close()

		reused := NewTimedMachine(cfg)
		dirtyBase := reused.Alloc(words + 3)
		if err := reused.Run(fuzzProgs(seed+1000, cfg.Threads, dirtyBase)...); err != nil {
			t.Fatalf("seed %d: dirty run: %v", seed, err)
		}
		reused.Reset()
		if reused.Elapsed() != 0 {
			t.Fatalf("seed %d: Reset left Elapsed at %d", seed, reused.Elapsed())
		}
		reused.Alloc(words)
		if err := reused.Run(fuzzProgs(seed, cfg.Threads, base)...); err != nil {
			t.Fatalf("seed %d: reused run: %v", seed, err)
		}
		got := snapshotOf(&reused.Machine, words)
		gotElapsed := reused.Elapsed()
		reused.Close()

		if d := want.diff(got); d != "" {
			t.Fatalf("seed %d: reset timed machine diverged: %s", seed, d)
		}
		if wantElapsed != gotElapsed {
			t.Fatalf("seed %d: makespan differs: fresh %d, reset %d", seed, wantElapsed, gotElapsed)
		}
	}
}

// TestResetSeedEquivalence proves ResetSeed reproduces the schedule a
// fresh machine with that seed would take — the contract SampleOutcomes
// relies on to sweep seeds over one machine.
func TestResetSeedEquivalence(t *testing.T) {
	cfg := Config{Threads: 2, BufferSize: 4, DrainBias: 0.3, Metrics: true}
	words := fuzzWords + cfg.Threads
	reused := NewMachine(cfg)
	defer reused.Close()
	for seed := int64(0); seed < 10; seed++ {
		c := cfg
		c.Seed = seed
		fresh := NewMachine(c)
		base := fresh.Alloc(words)
		if err := fresh.Run(fuzzProgs(7, cfg.Threads, base)...); err != nil {
			t.Fatalf("seed %d: fresh run: %v", seed, err)
		}
		want := snapshotOf(fresh, words)
		fresh.Close()

		reused.ResetSeed(seed)
		reused.Alloc(words)
		if err := reused.Run(fuzzProgs(7, cfg.Threads, base)...); err != nil {
			t.Fatalf("seed %d: reused run: %v", seed, err)
		}
		if d := want.diff(snapshotOf(reused, words)); d != "" {
			t.Fatalf("seed %d: ResetSeed diverged from fresh machine: %s", seed, d)
		}
	}
}

// waitForGoroutines polls until the live goroutine count drops to at most
// want, giving finalizer/teardown goroutines time to exit.
func waitForGoroutines(t *testing.T, want int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count stuck at %d, want <= %d", runtime.NumGoroutine(), want)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestTeardownPanickingThread drives the handoff through its panic path:
// one simulated thread panics mid-run while others are mid-operation, the
// error surfaces as ProgramPanic, the machine stays reusable, and Close
// returns the goroutine count to baseline.
func TestTeardownPanickingThread(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := NewMachine(Config{Threads: 3, BufferSize: 4, Seed: 42, DrainBias: 0.3})
	x := m.Alloc(1)
	spin := func(c Context) {
		for i := 0; i < 1000; i++ {
			c.Store(x, uint64(i))
			c.Load(x)
		}
	}
	boom := func(c Context) {
		c.Load(x)
		panic("boom")
	}
	err := m.Run(spin, boom, spin)
	var pp *ProgramPanic
	if !errors.As(err, &pp) || pp.Thread != 1 || pp.Value != "boom" {
		t.Fatalf("Run = %v, want ProgramPanic{Thread: 1, Value: boom}", err)
	}
	// The machine must remain usable after a panic teardown.
	m.Reset()
	m.Alloc(1)
	if err := m.Run(spin, spin, spin); err != nil {
		t.Fatalf("Run after panic teardown: %v", err)
	}
	m.Close()
	waitForGoroutines(t, baseline, 5*time.Second)
}

// TestTeardownMaxSteps drives the step-limit teardown: threads that never
// finish are unwound, the machine stays reusable, and Close reaps the
// workers.
func TestTeardownMaxSteps(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := NewMachine(Config{Threads: 2, BufferSize: 4, Seed: 7, DrainBias: 0.3, MaxSteps: 500})
	x := m.Alloc(1)
	forever := func(c Context) {
		for {
			c.Load(x)
		}
	}
	if err := m.Run(forever, forever); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("Run = %v, want ErrStepLimit", err)
	}
	// Reuse after a step-limit teardown, including another teardown.
	for i := 0; i < 3; i++ {
		m.Reset()
		m.Alloc(1)
		if err := m.Run(forever, forever); !errors.Is(err, ErrStepLimit) {
			t.Fatalf("Run #%d = %v, want ErrStepLimit", i+2, err)
		}
	}
	m.Close()
	waitForGoroutines(t, baseline, 5*time.Second)
}

// TestCloseRespawn proves Close is idempotent and a closed machine
// respawns its workers on the next Run.
func TestCloseRespawn(t *testing.T) {
	m := NewMachine(Config{Threads: 2, BufferSize: 4, Seed: 1})
	x := m.Alloc(1)
	inc := func(c Context) {
		for {
			old := c.Load(x)
			if _, ok := c.CAS(x, old, old+1); ok {
				return
			}
		}
	}
	if err := m.Run(inc, inc); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // idempotent
	if err := m.Run(inc, inc); err != nil {
		t.Fatalf("Run after Close: %v", err)
	}
	m.Close()
	if got := m.Peek(x); got != 4 {
		t.Fatalf("x = %d after 4 atomic increments, want 4", got)
	}
}

// TestWorkerPoolNoLeak churns machines with explicit Close and requires
// the goroutine count to return to baseline — no pooled worker survives
// its machine.
func TestWorkerPoolNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		m := NewMachine(Config{Threads: 4, BufferSize: 4, Seed: int64(i), DrainBias: 0.2})
		x := m.Alloc(1)
		p := func(c Context) { c.Store(x, 1); c.Load(x) }
		if err := m.Run(p, p, p, p); err != nil {
			t.Fatal(err)
		}
		m.Close()
	}
	waitForGoroutines(t, baseline+2, 5*time.Second)
}

// TestFinalizerReapsWorkers drops machines without Close and checks the
// GC finalizer eventually reaps their parked workers. Finalizer timing is
// not guaranteed, so the test only requires the count to come back down
// under repeated GC, with slack.
func TestFinalizerReapsWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	func() {
		for i := 0; i < 30; i++ {
			m := NewMachine(Config{Threads: 4, BufferSize: 4, Seed: int64(i)})
			x := m.Alloc(1)
			p := func(c Context) { c.Store(x, 1) }
			if err := m.Run(p, p, p, p); err != nil {
				t.Fatal(err)
			}
			// Dropped without Close: the finalizer must reap the workers.
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+30 {
		if time.Now().After(deadline) {
			t.Fatalf("finalizers did not reap pooled workers: %d goroutines, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGateStress hammers one gate with concurrent producers — the
// multi-producer single-consumer pattern the scheduler's request side
// uses — and checks signal conservation under the race detector.
func TestGateStress(t *testing.T) {
	const producers = 4
	const perProducer = 20000
	var g gate
	g.init()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				g.release()
			}
		}()
	}
	for i := 0; i < producers*perProducer; i++ {
		g.acquire()
	}
	wg.Wait()
	if s := g.state.Load(); s != 0 {
		t.Fatalf("gate state = %d after balanced release/acquire, want 0", s)
	}
	if len(g.sem) != 0 {
		t.Fatalf("gate semaphore holds %d tokens after balanced traffic, want 0", len(g.sem))
	}
}

// TestStepPathZeroAlloc is the tentpole's allocation guarantee: after
// warmup (worker spawn, scratch growth), a full Reset+Run cycle — every
// simulated operation, the request/grant handoffs, the end-of-run
// teardown — performs zero heap allocations on the chaos engine.
func TestStepPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation")
	}
	m := NewMachine(Config{Threads: 2, BufferSize: 4, Seed: 3, DrainBias: 0.3})
	defer m.Close()
	var x, y Addr
	var runErr error
	progs := []func(Context){
		func(c Context) {
			for i := 0; i < 64; i++ {
				c.Store(x, uint64(i))
				c.Load(y)
				if i%16 == 0 {
					c.Fence()
					c.CAS(x, uint64(i), uint64(i+1))
					c.Work(1)
				}
			}
		},
		func(c Context) {
			for i := 0; i < 64; i++ {
				c.Store(y, uint64(i))
				c.Load(x)
			}
		},
	}
	cycle := func() {
		m.Reset()
		x = m.Alloc(1)
		y = m.Alloc(1)
		if err := m.Run(progs...); err != nil {
			runErr = err
		}
	}
	cycle() // warmup: spawns workers, grows policy scratch
	if runErr != nil {
		t.Fatal(runErr)
	}
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Fatalf("chaos Reset+Run cycle allocates %.1f objects, want 0", avg)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
}

// TestStepPathZeroAllocTimed is the timed-engine counterpart.
func TestStepPathZeroAllocTimed(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation")
	}
	m := NewTimedMachine(Config{Threads: 2, BufferSize: 8})
	defer m.Close()
	var x, y Addr
	var runErr error
	progs := []func(Context){
		func(c Context) {
			for i := 0; i < 64; i++ {
				c.Store(x, uint64(i))
				c.Load(y)
				c.Work(3)
			}
			c.Fence()
		},
		func(c Context) {
			for i := 0; i < 64; i++ {
				c.CAS(x, 0, uint64(i))
				c.Load(x)
			}
		},
	}
	cycle := func() {
		m.Reset()
		x = m.Alloc(1)
		y = m.Alloc(1)
		if err := m.Run(progs...); err != nil {
			runErr = err
		}
	}
	cycle()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Fatalf("timed Reset+Run cycle allocates %.1f objects, want 0", avg)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
}

// TestPendingSliceReused pins the satellite fix: Run must not reallocate
// its per-thread bookkeeping, so back-to-back Runs without Reset are also
// allocation-free.
func TestPendingSliceReused(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation")
	}
	m := NewMachine(Config{Threads: 2, BufferSize: 4, Seed: 9, DrainBias: 0.2})
	defer m.Close()
	x := m.Alloc(1)
	var runErr error
	progs := []func(Context){
		func(c Context) { c.Store(x, 1); c.Load(x) },
		func(c Context) { c.Load(x) },
	}
	run := func() {
		if err := m.Run(progs...); err != nil {
			runErr = err
		}
	}
	run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("bare Run allocates %.1f objects, want 0", avg)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
}
