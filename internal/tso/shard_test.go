package tso

import (
	"reflect"
	"testing"
)

// foldShards explores every shard independently (sequentially here; the
// fold is order-insensitive) with the given per-slice budget, looping
// each shard's remainder until it completes, and folds all deltas.
func foldShards(t *testing.T, cfg Config, mk func(m *Machine) []func(Context), out func(m *Machine) string,
	base *Checkpoint, shards []*Checkpoint, sliceRuns int, prune bool) (OutcomeSet, ExploreResult) {
	t.Helper()
	fold := NewFold(cfg.Threads)
	fold.AddBase(base)
	for _, shard := range shards {
		cp := shard
		for {
			set, res := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{
				ExploreOptions: ExploreOptions{MaxRuns: sliceRuns},
				Prune:          prune,
				Resume:         cp,
			})
			fold.Add(set, res)
			if res.Complete {
				break
			}
			if res.Checkpoint == nil {
				t.Fatal("incomplete shard slice without a checkpoint")
			}
			// The slice's delta is folded already, so the remainder must
			// resume from a zero-progress checkpoint — Shards() strips the
			// accumulated counts into a base this loop discards.
			_, rest := res.Checkpoint.Shards()
			if len(rest) != 1 {
				t.Fatalf("single-unit shard resumed into %d units", len(rest))
			}
			cp = rest[0]
		}
	}
	return fold.Result(true)
}

// TestShardFrontierFoldMatchesDirect: splitting the SB tree into shards,
// exploring each independently and folding must reproduce the undivided
// exploration byte-for-byte — counts, occupancy, and tree shape — with
// and without pruning.
func TestShardFrontierFoldMatchesDirect(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}

	// Pruned shards memoize independently, so only the unpruned fold can
	// match the direct tree shape and run tally; counts must match always.
	want, wantRes := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{})

	for _, prune := range []bool{false, true} {
		cp, err := ShardFrontier(cfg, mk, ExhaustiveOptions{Units: 7})
		if err != nil {
			t.Fatal(err)
		}
		if len(cp.Units) < 2 {
			t.Fatalf("frontier did not split: %d units", len(cp.Units))
		}
		if cp.Runs != 0 || len(cp.Counts) != 0 {
			t.Fatalf("ShardFrontier checkpoint carries progress: %+v", cp)
		}
		if err := cp.Validate(); err != nil {
			t.Fatalf("ShardFrontier checkpoint invalid: %v", err)
		}
		base, shards := cp.Shards()
		if len(shards) != len(cp.Units) {
			t.Fatalf("Shards returned %d shards for %d units", len(shards), len(cp.Units))
		}
		set, res := foldShards(t, cfg, mk, out, base, shards, 1<<20, prune)
		if !reflect.DeepEqual(set.Counts, want.Counts) {
			t.Fatalf("prune=%v: folded counts %v, want %v", prune, set.Counts, want.Counts)
		}
		if !reflect.DeepEqual(set.MaxOccupancy, want.MaxOccupancy) {
			t.Fatalf("prune=%v: folded occupancy %v, want %v", prune, set.MaxOccupancy, want.MaxOccupancy)
		}
		if !prune {
			if res.Tree != wantRes.Tree {
				t.Fatalf("folded tree %+v, want %+v", res.Tree, wantRes.Tree)
			}
			if res.Runs != wantRes.Runs {
				t.Fatalf("unpruned folded runs %d, want %d", res.Runs, wantRes.Runs)
			}
		}
	}
}

// TestShardSliceResumeMatchesDirect: the service's actual execution shape
// — every shard explored in small budget slices, each slice resumed from
// the previous remainder, deltas folded in — must still land on the
// undivided counts.
func TestShardSliceResumeMatchesDirect(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	want, _ := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{})

	cp, err := ShardFrontier(cfg, mk, ExhaustiveOptions{Units: 5})
	if err != nil {
		t.Fatal(err)
	}
	base, shards := cp.Shards()
	set, res := foldShards(t, cfg, mk, out, base, shards, 9, false)
	if !reflect.DeepEqual(set.Counts, want.Counts) {
		t.Fatalf("sliced counts %v, want %v", set.Counts, want.Counts)
	}
	if !res.Complete {
		t.Fatal("fold not marked complete")
	}
	if set.Total() != want.Total() {
		t.Fatalf("sliced total %d, want %d", set.Total(), want.Total())
	}
}

// TestInterruptBeforeStartCheckpointsWholeFrontier: an interrupt that is
// already receivable stops workers before any schedule executes, so the
// checkpoint must hand back the entire frontier, and resuming it must
// reproduce the full exploration.
func TestInterruptBeforeStartCheckpointsWholeFrontier(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	want, _ := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{})

	interrupted := make(chan struct{})
	close(interrupted)
	set, res := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{
		Parallel:  2,
		Interrupt: interrupted,
	})
	if res.Complete {
		t.Fatal("interrupted exploration reported complete")
	}
	if res.Checkpoint == nil {
		t.Fatal("interrupted exploration carries no checkpoint")
	}
	if res.Runs != 0 || set.Total() != 0 {
		t.Fatalf("interrupt-before-start still executed %d runs (%d outcomes)", res.Runs, set.Total())
	}
	got, gotRes := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{Resume: res.Checkpoint})
	if !gotRes.Complete {
		t.Fatal("resume after interrupt incomplete")
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Fatalf("resumed counts %v, want %v", got.Counts, want.Counts)
	}
}

// TestInterruptMidFlightResumes: interrupting a running exploration from
// another goroutine must yield either a completed result or a resumable
// checkpoint whose continuation reproduces the direct counts exactly.
func TestInterruptMidFlightResumes(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 3}
	want, _ := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{})

	interrupt := make(chan struct{})
	go close(interrupt) // race the workers deliberately
	set, res := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{
		Parallel:  2,
		Units:     8,
		Interrupt: interrupt,
	})
	// Resumed checkpoints carry cumulative counts, so the final leg's set
	// is the whole exploration.
	legs := 0
	for !res.Complete {
		if res.Checkpoint == nil {
			t.Fatal("incomplete interrupted exploration without a checkpoint")
		}
		if legs++; legs > 1000 {
			t.Fatal("interrupt resume not converging")
		}
		set, res = ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{Resume: res.Checkpoint})
	}
	if !reflect.DeepEqual(set.Counts, want.Counts) {
		t.Fatalf("post-interrupt counts %v, want %v", set.Counts, want.Counts)
	}
}
