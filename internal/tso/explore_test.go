package tso

import (
	"fmt"
	"testing"
)

// exhaustive SB litmus: both threads store then load. Registers are
// written to reserved result cells at the end of each program so visit can
// read them from memory after the run's final flush.
func sbProgs(fenced bool) (func(m *Machine) []func(Context), func(m *Machine) string) {
	var x, y, r0a, r1a Addr
	mk := func(m *Machine) []func(Context) {
		x, y = m.Alloc(1), m.Alloc(1)
		r0a, r1a = m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) {
				c.Store(x, 1)
				if fenced {
					c.Fence()
				}
				c.Store(r0a, c.Load(y)+100) // +100 marks "written"
			},
			func(c Context) {
				c.Store(y, 1)
				if fenced {
					c.Fence()
				}
				c.Store(r1a, c.Load(x)+100)
			},
		}
	}
	out := func(m *Machine) string {
		return fmt.Sprintf("r0=%d r1=%d", m.Peek(r0a)-100, m.Peek(r1a)-100)
	}
	return mk, out
}

func TestExploreSBUnfencedAllFourOutcomes(t *testing.T) {
	mk, out := sbProgs(false)
	set, res := ExploreOutcomes(Config{Threads: 2, BufferSize: 2}, mk, out, ExploreOptions{})
	if !res.Complete {
		t.Fatalf("exploration incomplete after %d runs", res.Runs)
	}
	for _, want := range []string{"r0=0 r1=0", "r0=0 r1=1", "r0=1 r1=0", "r0=1 r1=1"} {
		if !set.Has(want) {
			t.Errorf("outcome %q unreachable; counts=%v", want, set.Counts)
		}
	}
	if len(set.Counts) != 4 {
		t.Errorf("unexpected outcomes: %v", set.Counts)
	}
	t.Logf("SB unfenced: %d schedules, outcomes %v", res.Runs, set.Counts)
}

func TestExploreWithChoicesReplaysWitness(t *testing.T) {
	// Extract the schedule that reaches the TSO reordering outcome, then
	// replay it on a fresh machine via ReplaySchedule: the outcome must
	// reproduce exactly, and the replayed trace must pair every store with
	// its drain by op id.
	mk, out := sbProgs(false)
	var witness []int
	res := ExploreWithChoices(Config{Threads: 2, BufferSize: 2}, mk, ExploreOptions{}, func(m *Machine, err error, choices []int) bool {
		if err != nil {
			t.Fatal(err)
		}
		if out(m) != "r0=0 r1=0" {
			return false
		}
		witness = append([]int(nil), choices...)
		return true
	})
	if witness == nil {
		t.Fatalf("r0=r1=0 not found in %d runs", res.Runs)
	}
	var tr *RingTracer
	mkTraced := func(m *Machine) []func(Context) {
		tr = NewRingTracer(256)
		m.SetTracer(tr)
		return mk(m)
	}
	err := ReplaySchedule(Config{Threads: 2, BufferSize: 2}, mkTraced, witness, func(m *Machine, err error) {
		if got := out(m); got != "r0=0 r1=0" {
			t.Fatalf("replayed outcome %q, want r0=0 r1=0", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	stores := map[int64]bool{}
	for _, e := range tr.Events() {
		if e.Kind == "store" {
			stores[e.ID] = true
		}
		if e.Kind == "drain" && !stores[e.ID] {
			t.Fatalf("replayed drain op %d without its store:\n%v", e.ID, tr.Events())
		}
	}
}

func TestReplayScheduleClampsWildChoices(t *testing.T) {
	// Fuzz-derived prefixes carry arbitrary ints; replay must clamp them
	// to the action range and still complete a legal schedule.
	mk, out := sbProgs(false)
	err := ReplaySchedule(Config{Threads: 2, BufferSize: 2}, mk, []int{99, -3, 7, 0, 42}, func(m *Machine, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got := out(m)
		legal := map[string]bool{"r0=0 r1=0": true, "r0=0 r1=1": true, "r0=1 r1=0": true, "r0=1 r1=1": true}
		if !legal[got] {
			t.Fatalf("illegal outcome %q", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExploreSBFencedExcludesZeroZero(t *testing.T) {
	mk, out := sbProgs(true)
	set, res := ExploreOutcomes(Config{Threads: 2, BufferSize: 2}, mk, out, ExploreOptions{})
	if !res.Complete {
		t.Fatalf("exploration incomplete after %d runs", res.Runs)
	}
	if set.Has("r0=0 r1=0") {
		t.Fatalf("fenced SB reached r0=r1=0: fence semantics broken (counts=%v)", set.Counts)
	}
	for _, want := range []string{"r0=0 r1=1", "r0=1 r1=0", "r0=1 r1=1"} {
		if !set.Has(want) {
			t.Errorf("outcome %q unreachable", want)
		}
	}
}

// TestExploreMessagePassing proves TSO's FIFO-drain guarantee: if the
// reader sees the flag (y=1) it must also see the data (x=1) — the
// outcome r0=1 ∧ r1=0 is unreachable in *any* schedule.
func TestExploreMessagePassing(t *testing.T) {
	var x, y, r0a, r1a Addr
	mk := func(m *Machine) []func(Context) {
		x, y = m.Alloc(1), m.Alloc(1)
		r0a, r1a = m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) {
				c.Store(x, 1)
				c.Store(y, 1)
			},
			func(c Context) {
				r0 := c.Load(y)
				r1 := c.Load(x)
				c.Store(r0a, r0)
				c.Store(r1a, r1)
			},
		}
	}
	out := func(m *Machine) string {
		return fmt.Sprintf("flag=%d data=%d", m.Peek(r0a), m.Peek(r1a))
	}
	for _, stage := range []bool{false, true} {
		set, res := ExploreOutcomes(Config{Threads: 2, BufferSize: 2, DrainBuffer: stage}, mk, out, ExploreOptions{})
		if !res.Complete {
			t.Fatalf("stage=%v: incomplete after %d runs", stage, res.Runs)
		}
		if set.Has("flag=1 data=0") {
			t.Fatalf("stage=%v: message passing violated (counts=%v)", stage, set.Counts)
		}
	}
}

// TestExploreCoalescingStaysTSOLegal proves the §7.3 requirement
// exhaustively: with buffered A:=1; B:=1; A:=2 and the coalescing drain
// stage, no schedule lets a reader observe A=2 and then B=0 — coalescing
// only merges *consecutive* same-address drains.
func TestExploreCoalescingStaysTSOLegal(t *testing.T) {
	var a, bAddr, ra, rb Addr
	mk := func(m *Machine) []func(Context) {
		a, bAddr = m.Alloc(1), m.Alloc(1)
		ra, rb = m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) {
				c.Store(a, 1)
				c.Store(bAddr, 1)
				c.Store(a, 2)
			},
			func(c Context) {
				va := c.Load(a)
				vb := c.Load(bAddr)
				c.Store(ra, va)
				c.Store(rb, vb)
			},
		}
	}
	out := func(m *Machine) string {
		return fmt.Sprintf("A=%d B=%d", m.Peek(ra), m.Peek(rb))
	}
	set, res := ExploreOutcomes(Config{Threads: 2, BufferSize: 3, DrainBuffer: true}, mk, out, ExploreOptions{})
	if !res.Complete {
		t.Fatalf("incomplete after %d runs", res.Runs)
	}
	if set.Has("A=2 B=0") {
		t.Fatalf("illegal TSO outcome A=2,B=0 reachable (counts=%v)", set.Counts)
	}
	// Sanity: the coalesced final state is reachable, and so is observing
	// the intermediate A=1.
	if !set.Has("A=2 B=1") || !set.Has("A=1 B=0") {
		t.Fatalf("expected outcomes missing: %v", set.Counts)
	}
}

// TestExploreBoundedLagExact proves the reordering bound on a small
// machine: with S=2 and no drain stage, a reader can observe the writer's
// counter lagging by at most 2 — and a lag of exactly 2 is reachable.
func TestExploreBoundedLagExact(t *testing.T) {
	var loc, lagA Addr
	mk := func(m *Machine) []func(Context) {
		loc = m.Alloc(1)
		lagA = m.Alloc(1)
		issued := uint64(0)
		return []func(Context){
			func(c Context) {
				for i := uint64(1); i <= 3; i++ {
					c.Store(loc, i)
					issued = i
				}
			},
			func(c Context) {
				// The first op is a scheduling point; only after it does
				// this goroutine hold the machine's floor, making the
				// meta-counter read race-free and consistent.
				c.Work(1)
				before := issued
				v := c.Load(loc)
				if before > v {
					c.Store(lagA, before-v)
				} else {
					c.Store(lagA, 0)
				}
			},
		}
	}
	out := func(m *Machine) string { return fmt.Sprintf("lag=%d", m.Peek(lagA)) }
	set, res := ExploreOutcomes(Config{Threads: 2, BufferSize: 2}, mk, out, ExploreOptions{})
	if !res.Complete {
		t.Fatalf("incomplete after %d runs", res.Runs)
	}
	if set.Has("lag=3") {
		t.Fatalf("lag beyond S reachable: %v", set.Counts)
	}
	if !set.Has("lag=2") {
		t.Fatalf("maximum lag S not reachable: %v", set.Counts)
	}
}

func TestExploreMaxRunsCap(t *testing.T) {
	mk, out := sbProgs(false)
	_, res := ExploreOutcomes(Config{Threads: 2, BufferSize: 2}, mk, out, ExploreOptions{MaxRuns: 5})
	if res.Complete {
		t.Fatal("claimed completeness under a 5-run cap")
	}
	if res.Runs != 5 {
		t.Fatalf("runs=%d want 5", res.Runs)
	}
}

func TestExploreStepLimitedRunsCounted(t *testing.T) {
	mk := func(m *Machine) []func(Context) {
		flag := m.Alloc(1)
		return []func(Context){
			func(c Context) {
				for c.Load(flag) == 0 {
				}
			},
		}
	}
	res := Explore(Config{Threads: 1, BufferSize: 1}, mk, ExploreOptions{MaxRuns: 3, MaxStepsPerRun: 200},
		func(m *Machine, err error) {})
	if res.StepLimited == 0 {
		t.Fatal("blocked program not counted as step-limited")
	}
}

// TestExploreMatchesRandomSampling cross-validates the two scheduling
// policies: every outcome the random chaos scheduler finds for SB must be
// in the exhaustive set.
func TestExploreMatchesRandomSampling(t *testing.T) {
	mk, out := sbProgs(false)
	set, _ := ExploreOutcomes(Config{Threads: 2, BufferSize: 2}, mk, out, ExploreOptions{})
	for seed := int64(0); seed < 100; seed++ {
		m := NewMachine(Config{Threads: 2, BufferSize: 2, Seed: seed, DrainBias: 0.3})
		progs := mk(m)
		if err := m.Run(progs...); err != nil {
			t.Fatal(err)
		}
		if o := out(m); !set.Has(o) {
			t.Fatalf("random run produced outcome %q outside the exhaustive set %v", o, set.Counts)
		}
	}
}
