package tso

// policy is the pluggable scheduling/cost engine behind the unified
// machine core. The core owns the request/grant plumbing, the memory and
// store-buffer substrate and the stats sink; the policy decides what
// happens at each scheduler step and what it costs.
type policy interface {
	// reset prepares per-Run policy state; called at the start of Run.
	reset(m *Machine)
	// next picks the step's action once every live thread has a pending
	// request: run a thread, or drain a store-buffer entry.
	next(m *Machine) action
	// exec performs a thread's pending request and produces its response.
	exec(m *Machine, r *request) response
	// flush empties every store buffer at the end of Run.
	flush(m *Machine)
	// bounded reports whether Config.MaxSteps applies: schedule-exploring
	// policies convert livelock into ErrStepLimit, the timed policy's
	// deterministic schedule needs no bound.
	bounded() bool
	// zeroWorkIsNop reports whether Work(0) can skip its scheduling point
	// (the timed engine's historical behaviour).
	zeroWorkIsNop() bool
	// cancelled reports whether the policy wants the current Run torn down
	// immediately (the schedule loop then unwinds every thread and returns
	// errRunCut). The exhaustive engine uses it to abandon a schedule the
	// moment state memoization proves its suffix redundant.
	cancelled() bool
	// drainLatency is the metrics clock: how long entry e spent buffered,
	// in the policy's time unit (scheduler steps or virtual cycles).
	drainLatency(m *Machine, e entry) uint64
}

// bufferedPolicy is the shared behaviour of the policies that run the
// buffered (untimed) substrate: execution and end-of-run flushing live on
// the machine core, and scheduler steps are bounded by Config.MaxSteps.
type bufferedPolicy struct{}

func (bufferedPolicy) reset(*Machine) {}

func (bufferedPolicy) exec(m *Machine, r *request) response { return m.execBuffered(r) }

func (bufferedPolicy) flush(m *Machine) { m.flushBuffered() }

func (bufferedPolicy) bounded() bool { return true }

func (bufferedPolicy) zeroWorkIsNop() bool { return false }

func (bufferedPolicy) cancelled() bool { return false }

func (bufferedPolicy) drainLatency(m *Machine, e entry) uint64 { return uint64(m.steps) - e.born }

// chaosPolicy samples schedules under a seeded RNG with a configurable
// drain bias — the adversarial engine behind the litmus grids. It draws
// from the machine's RNG via m.rand(), which reseeds lazily after Reset.
type chaosPolicy struct {
	bufferedPolicy

	// drainable/runnable are reusable candidate buffers so the per-step
	// path allocates nothing.
	drainable []int
	runnable  []int
}

func (p *chaosPolicy) next(m *Machine) action {
	pso := m.cfg.Model == ModelPSO
	if k, ok := p.pickDrain(m); ok {
		a := action{drain: true, id: k}
		if pso {
			el := m.bufs[k].eligibleDrains()
			a.idx = el[m.rand().Intn(len(el))]
		}
		return a
	}
	return action{id: p.pickRunnable(m)}
}

// pickDrain decides whether this step drains a buffer entry, and whose.
func (p *chaosPolicy) pickDrain(m *Machine) (int, bool) {
	drainable := p.drainable[:0]
	for i, b := range m.bufs {
		if b.occupancy() > 0 {
			drainable = append(drainable, i)
		}
	}
	p.drainable = drainable
	if len(drainable) == 0 {
		return 0, false
	}
	if m.rand().Float64() >= m.cfg.DrainBias {
		return 0, false
	}
	return drainable[m.rand().Intn(len(drainable))], true
}

func (p *chaosPolicy) pickRunnable(m *Machine) int {
	runnable := p.runnable[:0]
	for tid, r := range m.pending {
		if r != nil {
			runnable = append(runnable, tid)
		}
	}
	p.runnable = runnable
	return runnable[m.rand().Intn(len(runnable))]
}

// chooserPolicy replaces random scheduling with deterministic enumeration:
// at every step it lists the possible actions (run each thread with a
// pending request, drain each non-empty buffer, in deterministic order)
// and asks choose to pick one. Explore and the exhaustive engine use it to
// enumerate schedules.
type chooserPolicy struct {
	bufferedPolicy
	// choose picks one of the listed actions. The slice is only valid for
	// the duration of the call.
	choose func(acts []action) int
	// onExec, when non-nil, observes every executed request and its
	// response — the exhaustive engine folds them into per-thread history
	// hashes for canonical-state pruning.
	onExec func(r *request, resp response)
	// cancel, when set by choose, tears the current run down (see
	// policy.cancelled).
	cancel bool
	// acts is next's reusable action buffer (see the choose contract: the
	// slice is only valid for the duration of the call).
	acts []action
}

func (p *chooserPolicy) next(m *Machine) action {
	pso := m.cfg.Model == ModelPSO
	acts := p.acts[:0]
	for tid, r := range m.pending {
		if r != nil {
			acts = append(acts, action{id: tid})
		}
	}
	for tid, b := range m.bufs {
		if b.occupancy() == 0 {
			continue
		}
		if pso {
			for _, idx := range b.eligibleDrains() {
				acts = append(acts, action{drain: true, id: tid, idx: idx})
			}
			continue
		}
		acts = append(acts, action{drain: true, id: tid})
	}
	p.acts = acts
	return acts[p.choose(acts)]
}

// reset clears a previous run's cancellation: a chooser policy outlives
// the runs it drives (the engines reuse one machine and policy across an
// entire exploration).
func (p *chooserPolicy) reset(*Machine) { p.cancel = false }

func (p *chooserPolicy) exec(m *Machine, r *request) response {
	resp := m.execBuffered(r)
	if p.onExec != nil {
		p.onExec(r, resp)
	}
	return resp
}

func (p *chooserPolicy) cancelled() bool { return p.cancel }
