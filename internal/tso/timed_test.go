package tso

import (
	"errors"
	"testing"
)

// testCost is a round-number model so expected clocks can be computed by
// hand in the tests below.
// The throughput equals the latency here, so drains chain serially at 10
// cycles apart (10/20/30...) and expected clocks stay easy to compute.
var testCost = CostModel{
	LoadCycles:            1,
	StoreCycles:           1,
	DrainCycles:           10,
	DrainThroughputCycles: 10,
	FenceCycles:           2,
	CASCycles:             5,
}

func TestTimedDrainsArePipelined(t *testing.T) {
	// Latency 10, throughput 2: a burst of 4 stores at t≈0 becomes fully
	// visible by ~10+3×2, so a fence costs far less than 4×10.
	cost := CostModel{LoadCycles: 1, StoreCycles: 1, DrainCycles: 10, DrainThroughputCycles: 2, FenceCycles: 2}
	m := NewTimedMachine(Config{Threads: 1, BufferSize: 8, Cost: cost})
	x := m.Alloc(4)
	err := m.Run(func(c Context) {
		c.Store(x, 1)   // @0 -> done 10
		c.Store(x+1, 2) // @1 -> done max(11,12)=12
		c.Store(x+2, 3) // @2 -> done 14
		c.Store(x+3, 4) // @3 -> done 16
		c.Fence()       // wait to 16, +2
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed(); got != 18 {
		t.Fatalf("elapsed=%d want 18 (pipelined drain tail)", got)
	}
}

func newTimed(threads, bufSize int) *TimedMachine {
	return NewTimedMachine(Config{Threads: threads, BufferSize: bufSize, Cost: testCost})
}

func TestTimedStoreFenceCost(t *testing.T) {
	m := newTimed(1, 8)
	x := m.Alloc(4)
	err := m.Run(func(c Context) {
		// Stores at clocks 0,1,2 with drain completions 10,20,30 (serial
		// drains); the fence waits for the last drain then costs 2.
		c.Store(x, 1)
		c.Store(x+1, 2)
		c.Store(x+2, 3)
		c.Fence()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed(); got != 32 {
		t.Fatalf("elapsed=%d want 32 (3 stores, serial drains 10/20/30, fence +2)", got)
	}
}

func TestTimedWorkHidesDrainLatency(t *testing.T) {
	m := newTimed(1, 8)
	x := m.Alloc(1)
	err := m.Run(func(c Context) {
		c.Store(x, 1) // issued at 0, drains at 10
		c.Work(50)    // clock 51; drain long done
		c.Fence()     // no wait, +2
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed(); got != 53 {
		t.Fatalf("elapsed=%d want 53 (drain hidden under Work)", got)
	}
}

func TestTimedBufferFullStall(t *testing.T) {
	m := newTimed(1, 2)
	x := m.Alloc(4)
	err := m.Run(func(c Context) {
		c.Store(x, 1)   // @0, drains at 10
		c.Store(x+1, 2) // @1, drains at 20
		c.Store(x+2, 3) // buffer full: stall until 10, issue, drains at 30
	})
	if err != nil {
		t.Fatal(err)
	}
	// Third store stalls to clock 10, then costs 1 -> 11.
	if got := m.Elapsed(); got != 11 {
		t.Fatalf("elapsed=%d want 11 (pipeline-entry stall at full buffer)", got)
	}
}

func TestTimedNoStallBelowCapacity(t *testing.T) {
	m := newTimed(1, 3)
	x := m.Alloc(4)
	err := m.Run(func(c Context) {
		c.Store(x, 1)
		c.Store(x+1, 2)
		c.Store(x+2, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed(); got != 3 {
		t.Fatalf("elapsed=%d want 3 (stores fit in buffer, no stalls)", got)
	}
}

func TestTimedDrainStageAddsCapacity(t *testing.T) {
	m := NewTimedMachine(Config{Threads: 1, BufferSize: 2, DrainBuffer: true, Cost: testCost})
	x := m.Alloc(4)
	err := m.Run(func(c Context) {
		c.Store(x, 1)
		c.Store(x+1, 2)
		c.Store(x+2, 3) // fits: observable capacity is S+1 = 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed(); got != 3 {
		t.Fatalf("elapsed=%d want 3 (stage B acts as an extra entry)", got)
	}
}

func TestTimedVisibilityAtDrainTime(t *testing.T) {
	m := newTimed(2, 8)
	x := m.Alloc(1)
	var early, late uint64
	err := m.Run(
		func(c Context) {
			c.Store(x, 1) // drains at virtual time 10
			c.Work(100)
		},
		func(c Context) {
			c.Work(5)
			early = c.Load(x) // at ~5: store not yet drained
			c.Work(20)
			late = c.Load(x) // at ~26: drained
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if early != 0 {
		t.Fatalf("early load=%d want 0 (store still buffered at t=5)", early)
	}
	if late != 1 {
		t.Fatalf("late load=%d want 1 (store drained by t=26)", late)
	}
}

func TestTimedReadOwnWrite(t *testing.T) {
	m := newTimed(1, 8)
	x := m.Alloc(1)
	var got uint64
	err := m.Run(func(c Context) {
		c.Store(x, 9)
		got = c.Load(x)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("read-own-write=%d want 9", got)
	}
}

func TestTimedCAS(t *testing.T) {
	m := newTimed(1, 8)
	x := m.Alloc(1)
	var v1 uint64
	var ok1, ok2 bool
	err := m.Run(func(c Context) {
		_, ok1 = c.CAS(x, 0, 5)
		v1, ok2 = c.CAS(x, 0, 6)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok1 || ok2 || v1 != 5 {
		t.Fatalf("CAS results ok1=%v ok2=%v v1=%d want true,false,5", ok1, ok2, v1)
	}
	if got := m.Peek(x); got != 5 {
		t.Fatalf("mem=%d want 5", got)
	}
	if got := m.Elapsed(); got != 10 {
		t.Fatalf("elapsed=%d want 10 (two CASes at 5 cycles)", got)
	}
}

func TestTimedCASWaitsForOwnDrains(t *testing.T) {
	m := newTimed(1, 8)
	x := m.Alloc(2)
	err := m.Run(func(c Context) {
		c.Store(x, 1)    // drains at 10
		c.CAS(x+1, 0, 1) // waits to 10, +5
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed(); got != 15 {
		t.Fatalf("elapsed=%d want 15 (CAS drains the buffer first)", got)
	}
}

func TestTimedDeterministic(t *testing.T) {
	run := func() uint64 {
		m := newTimed(3, 4)
		x := m.Alloc(1)
		prog := func(c Context) {
			for i := 0; i < 50; i++ {
				old := c.Load(x)
				c.CAS(x, old, old+1)
				c.Work(3)
			}
		}
		if err := m.Run(prog, prog, prog); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("timed engine nondeterministic: %d vs %d", a, b)
	}
}

func TestTimedElapsedIsMaxThreadClock(t *testing.T) {
	m := newTimed(2, 4)
	err := m.Run(
		func(c Context) { c.Work(100) },
		func(c Context) { c.Work(700) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed(); got != 700 {
		t.Fatalf("elapsed=%d want 700", got)
	}
	if m.ThreadCycles(0) != 100 || m.ThreadCycles(1) != 700 {
		t.Fatalf("thread cycles %d,%d want 100,700", m.ThreadCycles(0), m.ThreadCycles(1))
	}
}

func TestTimedFenceCostScalesWithBufferDepth(t *testing.T) {
	// The crux of Figure 1: a fence issued right after k stores costs about
	// k×DrainCycles. Deeper buffers at fence time must cost more.
	elapsedWith := func(stores int) uint64 {
		m := newTimed(1, 64)
		x := m.Alloc(64)
		if err := m.Run(func(c Context) {
			for i := 0; i < stores; i++ {
				c.Store(x+Addr(i), 1)
			}
			c.Fence()
		}); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed()
	}
	e1, e4 := elapsedWith(1), elapsedWith(4)
	if e4 <= e1 {
		t.Fatalf("fence after 4 stores (%d) not costlier than after 1 (%d)", e4, e1)
	}
	if want := uint64(42); e4 != want { // 4 stores + wait to 40 + 2
		t.Fatalf("elapsed=%d want %d", e4, want)
	}
}

func TestTimedProgramPanic(t *testing.T) {
	m := newTimed(2, 4)
	x := m.Alloc(1)
	err := m.Run(
		func(c Context) { panic("timed boom") },
		func(c Context) {
			for i := 0; i < 10; i++ {
				c.Load(x)
			}
		},
	)
	var pp *ProgramPanic
	if !errors.As(err, &pp) {
		t.Fatalf("err=%v want *ProgramPanic", err)
	}
}

func TestTimedRunArityMismatch(t *testing.T) {
	m := newTimed(2, 4)
	if err := m.Run(func(Context) {}); err == nil {
		t.Fatal("Run with wrong program count succeeded")
	}
}

func TestTimedMemoryFlushedAfterRun(t *testing.T) {
	m := newTimed(1, 8)
	x := m.Alloc(1)
	if err := m.Run(func(c Context) { c.Store(x, 3) }); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(x); got != 3 {
		t.Fatalf("mem=%d want 3 (end-of-run flush)", got)
	}
}

func TestTimedZeroWorkIsFree(t *testing.T) {
	m := newTimed(1, 4)
	if err := m.Run(func(c Context) { c.Work(0) }); err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed(); got != 0 {
		t.Fatalf("elapsed=%d want 0", got)
	}
}
