package tso

import "testing"

func TestSMTNeedsEvenThreads(t *testing.T) {
	if _, err := (Config{Threads: 3, BufferSize: 2, SMT: true}).withDefaults(); err == nil {
		t.Fatal("odd SMT thread count accepted")
	}
}

func TestSMTSerializesIssueOnOneCore(t *testing.T) {
	// Two hyperthreads each doing 100 cycles of pure work share one core:
	// makespan ~200 instead of ~100.
	m := NewTimedMachine(Config{Threads: 2, BufferSize: 4, SMT: true, Cost: testCost})
	err := m.Run(
		func(c Context) { c.Work(100) },
		func(c Context) { c.Work(100) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed(); got != 200 {
		t.Fatalf("elapsed=%d want 200 (issue serialized)", got)
	}
	// Without SMT the same program takes 100.
	m2 := NewTimedMachine(Config{Threads: 2, BufferSize: 4, Cost: testCost})
	if err := m2.Run(func(c Context) { c.Work(100) }, func(c Context) { c.Work(100) }); err != nil {
		t.Fatal(err)
	}
	if got := m2.Elapsed(); got != 100 {
		t.Fatalf("non-SMT elapsed=%d want 100", got)
	}
}

func TestSMTDistinctCoresDoNotShare(t *testing.T) {
	m := NewTimedMachine(Config{Threads: 4, BufferSize: 4, SMT: true, Cost: testCost})
	err := m.Run(
		func(c Context) { c.Work(100) },
		func(c Context) {}, // idle sibling of 0
		func(c Context) { c.Work(100) },
		func(c Context) {}, // idle sibling of 2
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed(); got != 100 {
		t.Fatalf("elapsed=%d want 100 (separate cores run in parallel)", got)
	}
}

// TestSMTHidesFenceStall is §8.1's mechanism: a fence's drain wait
// consumes no core issue, so the sibling runs during it — the pair
// finishes sooner than the sum of their serialized work.
func TestSMTHidesFenceStall(t *testing.T) {
	// Thread 0: store (drains at 10) then fence (waits ~9 cycles, then 2
	// issue cycles). Thread 1: 9 cycles of work, which fit entirely into
	// the stall window.
	m := NewTimedMachine(Config{Threads: 2, BufferSize: 4, SMT: true, Cost: testCost})
	x := m.Alloc(1)
	err := m.Run(
		func(c Context) {
			c.Store(x, 1) // issue 1 cycle; drains at 10
			c.Fence()     // stall to t=10, then 2 issue cycles
		},
		func(c Context) {
			c.Work(9)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Serialized issue would be 1+2+9 = 12 ending at >= 12; with the
	// stall overlapped, thread 1's work (9 cycles) fits inside thread 0's
	// wait-to-10, and the fence issues right after: makespan 12 at most,
	// but critically thread 1 finished by 10, not 12+.
	if got := m.Elapsed(); got > 13 {
		t.Fatalf("elapsed=%d: fence stall not overlapped with sibling work", got)
	}
	if m.ThreadCycles(1) > 10 {
		t.Fatalf("sibling finished at %d; should fit within the stall window", m.ThreadCycles(1))
	}
}

// TestSMTFenceBenefitShrinks reproduces the §8.1 headline at
// microbenchmark scale: the relative gain from removing a fence is
// smaller with a busy hyperthread sibling than without one.
func TestSMTFenceBenefitShrinks(t *testing.T) {
	run := func(smt, fenced bool) uint64 {
		threads := 2
		m := NewTimedMachine(Config{Threads: threads, BufferSize: 8, SMT: smt, Cost: testCost})
		x := m.Alloc(1)
		worker := func(c Context) {
			for i := 0; i < 50; i++ {
				c.Store(x, uint64(i))
				if fenced {
					c.Fence()
				}
				c.Work(5)
			}
		}
		sibling := func(c Context) {
			for i := 0; i < 50; i++ {
				c.Work(6)
			}
		}
		if err := m.Run(worker, sibling); err != nil {
			t.Fatal(err)
		}
		return m.ThreadCycles(0)
	}
	gain := func(smt bool) float64 {
		fenced := run(smt, true)
		free := run(smt, false)
		return float64(fenced-free) / float64(fenced)
	}
	alone, shared := gain(false), gain(true)
	if shared >= alone {
		t.Fatalf("fence-removal gain with SMT (%.3f) not smaller than without (%.3f)", shared, alone)
	}
}
