package tso

import (
	"reflect"
	"testing"
)

// TestMemoLimitSaturationCountsIdentical is the saturation bar for the
// striped arena: once the table stops admitting (here: evicts), the
// exploration must still produce byte-identical counts — memo loss costs
// re-exploration, never correctness. Exercised against both a limit far
// below the state count and the default limit, sequentially and in
// parallel.
func TestMemoLimitSaturationCountsIdentical(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 3}
	want, wantRes := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{})
	if !wantRes.Complete {
		t.Fatal("reference exploration incomplete")
	}

	variants := []struct {
		name string
		opts ExhaustiveOptions
	}{
		{"default-limit", ExhaustiveOptions{Prune: true}},
		{"tiny-limit", ExhaustiveOptions{Prune: true, MemoLimit: 8}},
		{"tiny-limit/one-stripe", ExhaustiveOptions{Prune: true, MemoLimit: 8, MemoStripes: 1}},
		{"tiny-limit/parallel", ExhaustiveOptions{Prune: true, MemoLimit: 8, Parallel: 4, Units: 8}},
		{"limit-one", ExhaustiveOptions{Prune: true, MemoLimit: 1, MemoStripes: 1}},
	}
	for _, v := range variants {
		set, res := ExploreExhaustive(cfg, mk, out, v.opts)
		if !res.Complete {
			t.Errorf("%s: incomplete", v.name)
			continue
		}
		if !reflect.DeepEqual(set.Counts, want.Counts) {
			t.Errorf("%s: counts %v, want %v", v.name, set.Counts, want.Counts)
		}
		if !reflect.DeepEqual(set.MaxOccupancy, want.MaxOccupancy) {
			t.Errorf("%s: MaxOccupancy %v, want %v", v.name, set.MaxOccupancy, want.MaxOccupancy)
		}
		if res.Memo.Entries == 0 || res.Memo.Admitted == 0 {
			t.Errorf("%s: pruned run reported empty memo stats %+v", v.name, res.Memo)
		}
		if int64(res.Memo.Entries) > res.Memo.Admitted+res.Memo.Evicted {
			t.Errorf("%s: inconsistent memo stats %+v", v.name, res.Memo)
		}
	}

	// The tiny limit must actually saturate — otherwise the variants above
	// never left the fast path and proved nothing.
	_, res := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{Prune: true, MemoLimit: 8, MemoStripes: 1})
	if res.Memo.Evicted == 0 {
		t.Errorf("MemoLimit=8 never evicted (memo %+v): litmus too small for the saturation test", res.Memo)
	}
	if res.Memo.Entries > 8 {
		t.Errorf("MemoLimit=8 but %d entries resident", res.Memo.Entries)
	}
}

// TestMemoStripesEquivalence: the stripe count is a performance knob,
// never a semantic one — 1, a non-power-of-two, and many stripes must all
// reproduce the same counts, and the arena must report the rounded
// power-of-two it actually ran with.
func TestMemoStripesEquivalence(t *testing.T) {
	mk, out := mpProgsShared()
	cfg := Config{Threads: 2, BufferSize: 2}
	want, _ := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{Prune: true})

	for _, stripes := range []int{1, 3, 8, 64} {
		set, res := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{
			Prune: true, MemoStripes: stripes, Parallel: 4, Units: 8,
		})
		if !res.Complete {
			t.Fatalf("stripes=%d: incomplete", stripes)
		}
		if !reflect.DeepEqual(set.Counts, want.Counts) {
			t.Errorf("stripes=%d: counts %v, want %v", stripes, set.Counts, want.Counts)
		}
		wantStripes := 1
		for wantStripes < stripes {
			wantStripes <<= 1
		}
		if res.Memo.Stripes != wantStripes {
			t.Errorf("stripes=%d: arena reports %d stripes, want %d", stripes, res.Memo.Stripes, wantStripes)
		}
	}
}

// TestMemoStatsZeroWithoutPrune: no pruning, no arena — the stats must
// stay zero rather than report a phantom table.
func TestMemoStatsZeroWithoutPrune(t *testing.T) {
	mk, out := sbProgsShared(false)
	_, res := ExploreExhaustive(Config{Threads: 2, BufferSize: 2}, mk, out, ExhaustiveOptions{})
	if res.Memo != (MemoStats{}) {
		t.Fatalf("unpruned run reported memo stats %+v", res.Memo)
	}
}

// TestFoldReportsMemoStats: shard results folded through Fold must
// surface the summed arena statistics — the serve layer's /metrics
// gauges read them from the folded ExploreResult.
func TestFoldReportsMemoStats(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	cp, err := ShardFrontier(cfg, mk, ExhaustiveOptions{Units: 4})
	if err != nil {
		t.Fatal(err)
	}
	base, shards := cp.Shards()
	fold := NewFold(cfg.Threads)
	fold.AddBase(base)
	for _, sh := range shards {
		set, res := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{Prune: true, Resume: sh})
		fold.Add(set, res)
	}
	_, res := fold.Result(true)
	if res.Memo.Entries == 0 || res.Memo.Admitted == 0 || res.Memo.Stripes == 0 {
		t.Fatalf("folded memo stats empty: %+v", res.Memo)
	}
}
