package tso

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// TestIndependentMatchesFootprints pins the claim in depend.go: the legacy
// sleep-set relation independent(actID, actID) is exactly the drain/drain
// special case of footprint disjointness. A drain's footprint writes its
// buffer pseudo-address plus its memory effect address (when not
// buffer-internal), so the two relations are checked against each other
// over every small (tid, effect) combination.
func TestIndependentMatchesFootprints(t *testing.T) {
	const threads = 3
	drainFP := func(tid int, eff Addr) footprint {
		w := []fpAddr{bufAddr(tid)}
		if eff >= 0 {
			w = append(w, fpAddr(eff))
		}
		return footprint{writes: w}
	}
	effects := []Addr{-1, 0, 1, 2}
	for ta := 0; ta < threads; ta++ {
		for tb := 0; tb < threads; tb++ {
			for _, ea := range effects {
				for _, eb := range effects {
					a := actID{drain: true, tid: ta, addr: ea}
					b := actID{drain: true, tid: tb, addr: eb}
					legacy := independent(a, b)
					pa := procFor(threads, action{drain: true, id: ta})
					pb := procFor(threads, action{drain: true, id: tb})
					fp := !dependent(pa, drainFP(ta, ea), pb, drainFP(tb, eb))
					if legacy != fp {
						t.Errorf("drain(t%d→%d) vs drain(t%d→%d): legacy independent=%v, footprint independent=%v",
							ta, ea, tb, eb, legacy, fp)
					}
				}
			}
		}
	}
	// Thread steps are conservatively dependent under the legacy relation;
	// the footprint layer refines that (e.g. two Work steps commute), so
	// only the drain/drain fragment is an equivalence. Pin the legacy side.
	if independent(actID{tid: 0}, actID{tid: 1}) {
		t.Fatalf("legacy relation claims thread steps commute")
	}
}

// triProgs is SB plus a third thread whose lone store commutes with
// everything — the structure DPOR exists to collapse — while staying
// small enough to enumerate unreduced as a reference.
func triProgs() (func(m *Machine) []func(Context), func(m *Machine) string) {
	mk := func(m *Machine) []func(Context) {
		x, y, z := m.Alloc(1), m.Alloc(1), m.Alloc(1)
		ra, rb := m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) { c.Store(x, 1); c.Store(ra, c.Load(y)+100) },
			func(c Context) { c.Store(y, 1); c.Store(rb, c.Load(x)+100) },
			func(c Context) { c.Store(z, 1) },
		}
	}
	out := func(m *Machine) string {
		return fmt.Sprintf("a=%d b=%d z=%d",
			int64(m.Peek(3))-100, int64(m.Peek(4))-100, m.Peek(2))
	}
	return mk, out
}

// casDuelProgs contends two threads on a CAS-guarded counter — exercises
// the CAS footprint (atomic read+write plus full-buffer flush).
func casDuelProgs() (func(m *Machine) []func(Context), func(m *Machine) string) {
	mk := func(m *Machine) []func(Context) {
		lock, n := m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) {
				if _, ok := c.CAS(lock, 0, 1); ok {
					c.Store(n, c.Load(n)+1)
					c.Fence()
					c.Store(lock, 0)
				}
			},
			func(c Context) {
				if _, ok := c.CAS(lock, 0, 2); ok {
					c.Store(n, c.Load(n)+10)
					c.Fence()
					c.Store(lock, 0)
				}
			},
		}
	}
	out := func(m *Machine) string { return fmt.Sprintf("n=%d", m.Peek(1)) }
	return mk, out
}

// TestDPORPreservesOutcomeSets is the preservation bar for source-set
// DPOR: on every litmus the reachable outcome set, completeness, and
// per-thread occupancy high-water marks must match unreduced exploration
// exactly, while the executed run count must strictly shrink whenever the
// program has commuting structure.
func TestDPORPreservesOutcomeSets(t *testing.T) {
	sbMk, sbOut := sbProgsShared(false)
	sbfMk, sbfOut := sbProgsShared(true)
	mpMk, mpOut := mpProgsShared()
	triMk, triOut := triProgs()
	casMk, casOut := casDuelProgs()
	cases := []struct {
		name string
		cfg  Config
		mk   func(m *Machine) []func(Context)
		out  func(m *Machine) string
	}{
		{"SB/S=1", Config{Threads: 2, BufferSize: 1}, sbMk, sbOut},
		{"SB/S=2", Config{Threads: 2, BufferSize: 2}, sbMk, sbOut},
		{"SB+fence/S=2", Config{Threads: 2, BufferSize: 2}, sbfMk, sbfOut},
		{"MP/S=2", Config{Threads: 2, BufferSize: 2}, mpMk, mpOut},
		{"MP/S=2+stage", Config{Threads: 2, BufferSize: 2, DrainBuffer: true}, mpMk, mpOut},
		{"tri/S=1", Config{Threads: 3, BufferSize: 1}, triMk, triOut},
		{"cas/S=2", Config{Threads: 2, BufferSize: 2}, casMk, casOut},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, wantRes := ExploreExhaustive(tc.cfg, tc.mk, tc.out, ExhaustiveOptions{})
			if !wantRes.Complete {
				t.Fatalf("reference exploration incomplete")
			}
			for _, par := range []int{0, 4} {
				set, res := ExploreExhaustive(tc.cfg, tc.mk, tc.out, ExhaustiveOptions{DPOR: true, Parallel: par})
				if !res.Complete {
					t.Fatalf("par=%d: DPOR incomplete after %d runs", par, res.Runs)
				}
				for o := range want.Counts {
					if !set.Has(o) {
						t.Errorf("par=%d: outcome %q lost under DPOR (got %v)", par, o, set.Counts)
					}
				}
				for o := range set.Counts {
					if !want.Has(o) {
						t.Errorf("par=%d: outcome %q invented under DPOR", par, o)
					}
				}
				if !reflect.DeepEqual(set.MaxOccupancy, want.MaxOccupancy) {
					t.Errorf("par=%d: MaxOccupancy %v, want %v", par, set.MaxOccupancy, want.MaxOccupancy)
				}
				if res.Runs >= wantRes.Runs {
					t.Errorf("par=%d: DPOR executed %d runs, unreduced needed %d — no reduction",
						par, res.Runs, wantRes.Runs)
				}
				if par == 0 {
					t.Logf("%s: %d runs (unreduced %d), races=%d backtracks=%d sleepSkips=%d",
						tc.name, res.Runs, wantRes.Runs,
						res.Prune.DPORRaces, res.Prune.DPORBacktracks, res.Prune.DPORSleepSkips)
				}
			}
		})
	}
}

// TestDPORBeatsSleepSets: on SB the dependence-derived reduction must
// execute no more runs than the legacy sleep-set engine, and its prune
// statistics must show actual race-driven work.
func TestDPORBeatsSleepSets(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	_, legacy := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{Prune: true, SleepSets: true})
	_, dpor := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{DPOR: true})
	if dpor.Runs > legacy.Runs {
		t.Fatalf("DPOR executed %d runs, sleep sets needed %d", dpor.Runs, legacy.Runs)
	}
	if dpor.Prune.DPORRaces == 0 || dpor.Prune.DPORBacktracks == 0 {
		t.Fatalf("SB has racing stores but no DPOR race work recorded: %+v", dpor.Prune)
	}
	t.Logf("SB S=2: sleep-set runs %d, DPOR runs %d", legacy.Runs, dpor.Runs)
}

// TestDPORStepLimitComposes: DPOR under MaxStepsPerRun keeps the
// "<step-limit>" bucketing sound. Equivalent *complete* runs have equal
// length, so the limit is class-closed for them; runs that hit the limit
// taint every frame they cross into exploring all branches (mcFrame.all),
// so no reversal is lost to a race hidden past the horizon. The surviving
// outcome set must match the unreduced step-limited exploration.
func TestDPORStepLimitComposes(t *testing.T) {
	mk, out := triProgs()
	cfg := Config{Threads: 3, BufferSize: 1}
	const lim = 8
	want, wantRes := ExploreExhaustive(cfg, mk, out,
		ExhaustiveOptions{ExploreOptions: ExploreOptions{MaxStepsPerRun: lim}})
	set, res := ExploreExhaustive(cfg, mk, out,
		ExhaustiveOptions{ExploreOptions: ExploreOptions{MaxStepsPerRun: lim}, DPOR: true})
	if !res.Complete || !wantRes.Complete {
		t.Fatalf("step-limited explorations incomplete: dpor=%v ref=%v", res.Complete, wantRes.Complete)
	}
	if wantRes.StepLimited == 0 {
		t.Fatalf("limit %d truncated nothing; test needs a binding limit", int64(lim))
	}
	for o := range want.Counts {
		if !set.Has(o) {
			t.Errorf("outcome %q lost under DPOR+step-limit", o)
		}
	}
	for o := range set.Counts {
		if !want.Has(o) {
			t.Errorf("outcome %q invented under DPOR+step-limit", o)
		}
	}
	if res.StepLimited == 0 {
		t.Errorf("DPOR exploration reports no step-limited runs; reference had %d", wantRes.StepLimited)
	}
}

// TestDPORStepLimitTruncationTaint pins the soundness fix for DPOR under
// a *binding* step limit. The victim thread spins forever unless it
// observes the signal store, so the DPOR representative run truncates
// inside the spin without ever executing the signaller — the race that
// would add the reversal to a backtrack set lies past the horizon.
// Without the truncation taint (mcFrame.all) the signalled outcome is
// silently lost; with it, the step-limited DPOR support matches the
// unreduced step-limited support.
func TestDPORStepLimitTruncationTaint(t *testing.T) {
	mk := func(m *Machine) []func(Context) {
		x, res := m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) {
				for c.Load(x) == 0 {
					c.Work(1)
				}
				c.Store(res, 1)
				c.Fence()
			},
			func(c Context) { c.Store(x, 1) },
		}
	}
	out := func(m *Machine) string { return fmt.Sprintf("res=%d", m.Peek(1)) }
	cfg := Config{Threads: 2, BufferSize: 1}
	const lim = 12
	want, wantRes := ExploreExhaustive(cfg, mk, out,
		ExhaustiveOptions{ExploreOptions: ExploreOptions{MaxStepsPerRun: lim}})
	got, res := ExploreExhaustive(cfg, mk, out,
		ExhaustiveOptions{ExploreOptions: ExploreOptions{MaxStepsPerRun: lim}, DPOR: true})
	if !wantRes.Complete || !res.Complete {
		t.Fatalf("explorations incomplete: ref=%v dpor=%v", wantRes.Complete, res.Complete)
	}
	if !want.Has("res=1") {
		t.Fatalf("reference lost the signalled outcome; raise lim (outcomes %v)", want.Counts)
	}
	if res.StepLimited == 0 {
		t.Fatalf("limit %d truncated no DPOR run; the spin must out-run the limit", int64(lim))
	}
	for o := range want.Counts {
		if !got.Has(o) {
			t.Errorf("outcome %q lost under DPOR+step-limit", o)
		}
	}
	for o := range got.Counts {
		if !want.Has(o) {
			t.Errorf("outcome %q invented under DPOR+step-limit", o)
		}
	}
}

// TestDPORResumeRoundTrip drives a DPOR exploration through repeated
// budget exhaustion with binary-codec round-trips between legs, and
// checks the union of legs reaches the unreduced outcome set. Resumed
// frames re-enable every unexplored branch (the done masks carry which
// are finished), so the leg union may execute more runs than one-shot
// DPOR — but never more than the unreduced total, and the support is
// exact.
func TestDPORResumeRoundTrip(t *testing.T) {
	mk, out := triProgs()
	cfg := Config{Threads: 3, BufferSize: 1}
	want, wantRes := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{})

	union := map[string]bool{}
	var cp *Checkpoint
	totalRuns := 0
	complete := false
	// Resume re-enables every unexplored branch of the live frames, so
	// small legs shed reduction; the cap is sized for that degeneration
	// (the leg union can approach the unreduced total, never exceed it).
	for leg := 0; leg < 2000 && !complete; leg++ {
		opts := ExhaustiveOptions{ExploreOptions: ExploreOptions{MaxRuns: 60}, DPOR: true, Resume: cp}
		set, res := ExploreExhaustive(cfg, mk, out, opts)
		for o := range set.Counts {
			union[o] = true
		}
		totalRuns = res.Runs
		if res.Complete {
			complete = true
			break
		}
		if res.Checkpoint == nil {
			t.Fatalf("leg %d: incomplete but no checkpoint", leg)
		}
		var buf bytes.Buffer
		if err := (BinaryCodec{}).EncodeCheckpoint(&buf, res.Checkpoint); err != nil {
			t.Fatalf("leg %d: encode: %v", leg, err)
		}
		rt, err := DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatalf("leg %d: decode: %v", leg, err)
		}
		if !rt.DPOR {
			t.Fatalf("leg %d: DPOR flag lost in round-trip", leg)
		}
		cp = rt
	}
	if !complete {
		t.Fatalf("resume legs never completed (last leg at %d runs)", totalRuns)
	}
	for o := range want.Counts {
		if !union[o] {
			t.Errorf("outcome %q lost across DPOR resume legs", o)
		}
	}
	for o := range union {
		if !want.Has(o) {
			t.Errorf("outcome %q invented across DPOR resume legs", o)
		}
	}
	if totalRuns > wantRes.Runs {
		t.Errorf("resumed DPOR executed %d runs, unreduced one-shot needed %d", totalRuns, wantRes.Runs)
	}
	t.Logf("tri: resumed DPOR executed %d runs, unreduced %d", totalRuns, wantRes.Runs)
}

// TestDPORRejectsUnsupported pins dporCheck's refusals: PSO (drains of one
// buffer are not serialized, breaking the proc abstraction), a reorder
// bound (not closed under commuting swaps), and thread counts past the
// done-mask width.
func TestDPORRejectsUnsupported(t *testing.T) {
	mk, out := sbProgsShared(false)
	expectPanic := func(name string, cfg Config, opts ExhaustiveOptions) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: ExploreExhaustive did not panic", name)
			}
		}()
		ExploreExhaustive(cfg, mk, out, opts)
	}
	expectPanic("pso", Config{Threads: 2, BufferSize: 2, Model: ModelPSO},
		ExhaustiveOptions{DPOR: true})
	expectPanic("reorder", Config{Threads: 2, BufferSize: 2},
		ExhaustiveOptions{DPOR: true, MaxReorderings: 2})
	if _, err := ShardFrontier(Config{Threads: 2, BufferSize: 2, Model: ModelPSO}, mk,
		ExhaustiveOptions{DPOR: true, Units: 4}); err == nil {
		t.Errorf("ShardFrontier accepted DPOR under PSO")
	}
}

// TestDPORShardFold: cutting a DPOR frontier into shards, exploring each
// independently, and folding must reproduce the undivided DPOR
// exploration's outcome support, and the folded checkpoint must carry the
// DPOR stamp so later resumes are validated against it.
func TestDPORShardFold(t *testing.T) {
	mk, out := triProgs()
	cfg := Config{Threads: 3, BufferSize: 1}
	opts := ExhaustiveOptions{DPOR: true}
	want, _ := ExploreExhaustive(cfg, mk, out, opts)

	cp, shardErr := ShardFrontier(cfg, mk, opts.withDefaults())
	if shardErr != nil {
		t.Fatalf("ShardFrontier: %v", shardErr)
	}
	if !cp.DPOR {
		t.Fatalf("frontier checkpoint not stamped DPOR")
	}
	base, shards := cp.Shards()
	fold := NewFold(cfg.Threads)
	fold.AddBase(base)
	for i, sh := range shards {
		o := opts
		o.Resume = sh
		set, res := ExploreExhaustive(cfg, mk, out, o)
		if !res.Complete {
			t.Fatalf("shard %d incomplete", i)
		}
		fold.Add(set, res)
	}
	set, res := fold.Result(true)
	if !res.Complete {
		t.Fatalf("fold incomplete")
	}
	for o := range want.Counts {
		if !set.Has(o) {
			t.Errorf("outcome %q lost across DPOR shards", o)
		}
	}
	for o := range set.Counts {
		if !want.Has(o) {
			t.Errorf("outcome %q invented across DPOR shards", o)
		}
	}
	folded, err := fold.Checkpoint(cfg, nil)
	if err != nil {
		t.Fatalf("fold checkpoint: %v", err)
	}
	if !folded.DPOR {
		t.Fatalf("folded checkpoint lost the DPOR stamp")
	}
}

// TestResumeMutationMatrix is the satellite mutation matrix: starting from
// one valid binary-encoded DPOR-off frontier, each single-axis mutation —
// DPOR mode, codec format version, reorder bound, phase label — must be
// refused with that axis's distinct sentinel, distinguishable by
// errors.Is.
func TestResumeMutationMatrix(t *testing.T) {
	mk, _ := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	baseOpts := ExhaustiveOptions{Label: "phase-a", Units: 4}
	cp, err := ShardFrontier(cfg, mk, baseOpts)
	if err != nil {
		t.Fatalf("ShardFrontier: %v", err)
	}
	var spool bytes.Buffer
	if err := (BinaryCodec{}).EncodeCheckpoint(&spool, cp); err != nil {
		t.Fatalf("encode: %v", err)
	}
	wire := spool.Bytes()

	decode := func(t *testing.T, raw []byte) (*Checkpoint, error) {
		t.Helper()
		return DecodeCheckpoint(bytes.NewReader(raw))
	}

	cases := []struct {
		name     string
		mutate   func(opts *ExhaustiveOptions, raw []byte) []byte
		sentinel error
	}{
		{
			name: "dpor-mode",
			mutate: func(o *ExhaustiveOptions, raw []byte) []byte {
				o.DPOR = true
				return raw
			},
			sentinel: ErrResumeDPOR,
		},
		{
			name: "codec-version",
			mutate: func(o *ExhaustiveOptions, raw []byte) []byte {
				bad := append([]byte(nil), raw...)
				bad[4] = 0x7f // future format version
				return bad
			},
			sentinel: ErrCodecVersion,
		},
		{
			name: "reorder-bound",
			mutate: func(o *ExhaustiveOptions, raw []byte) []byte {
				o.MaxReorderings = 3
				return raw
			},
			sentinel: ErrResumeReorder,
		},
		{
			name: "phase-label",
			mutate: func(o *ExhaustiveOptions, raw []byte) []byte {
				o.Label = "phase-b"
				return raw
			},
			sentinel: ErrResumeLabel,
		},
	}
	sentinels := []error{ErrResumeDPOR, ErrCodecVersion, ErrResumeReorder, ErrResumeLabel}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := baseOpts
			raw := tc.mutate(&opts, wire)
			got, err := decode(t, raw)
			if err == nil {
				err = got.CompatibleWithOptions(cfg, opts)
			}
			if err == nil {
				t.Fatalf("mutated resume accepted")
			}
			for _, s := range sentinels {
				if errors.Is(err, s) != (s == tc.sentinel) {
					t.Errorf("error %v: errors.Is(%v) = %v, want sentinel %v only",
						err, s, errors.Is(err, s), tc.sentinel)
				}
			}
		})
	}

	// The unmutated control must decode and validate cleanly.
	got, err := decode(t, wire)
	if err != nil {
		t.Fatalf("control decode: %v", err)
	}
	if err := got.CompatibleWithOptions(cfg, baseOpts); err != nil {
		t.Fatalf("control resume refused: %v", err)
	}
}

// TestBinaryCodecReadsV1 pins backward compatibility of wire v2: a
// v1-tagged stream (no DPOR flag, no DPOR counters, no done masks) must
// still decode, with the v2 fields zero.
func TestBinaryCodecReadsV1(t *testing.T) {
	mk, _ := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	cp, err := ShardFrontier(cfg, mk, ExhaustiveOptions{Units: 4})
	if err != nil {
		t.Fatalf("ShardFrontier: %v", err)
	}
	var buf bytes.Buffer
	if err := (BinaryCodec{}).EncodeCheckpoint(&buf, cp); err != nil {
		t.Fatalf("encode: %v", err)
	}
	raw := buf.Bytes()

	// Rewrite the stream as its v1 prefix: same header bytes up to the
	// Reorder varint, dropping the v2-only insertions. Easiest done by
	// re-encoding field-by-field with a v1 layout.
	var v1 bytes.Buffer
	v1.Write([]byte{'T', 'S', 'O', 'F', binVersionV1})
	bw := &binWriter{w: bufio.NewWriter(&v1)}
	bw.vint(int64(cp.Version))
	bw.vint(int64(cp.Threads))
	bw.vint(int64(cp.BufferSize))
	bw.str(cp.Model)
	bw.bool(cp.DrainBuffer)
	bw.str(cp.Label)
	bw.vint(int64(cp.Reorder))
	bw.vint(int64(cp.Runs))
	bw.vint(int64(cp.StepLimited))
	bw.vint(int64(cp.Tree.MaxDepth))
	bw.vint(int64(cp.Tree.MaxFanout))
	bw.vint(cp.Tree.ChoicePoints)
	bw.vint(cp.Prune.StatesSeen)
	bw.vint(cp.Prune.StatesDeduped)
	bw.vint(cp.Prune.SubtreesCut)
	bw.vint(cp.Prune.SchedulesSaved)
	bw.vint(cp.Prune.SleepSkips)
	bw.vint(cp.Prune.ReorderSkips)
	bw.uvint(0) // counts: empty map
	bw.ints(cp.MaxOccupancy)
	bw.uvint(uint64(len(cp.Units)))
	for _, u := range cp.Units {
		bw.ints(u.Root)
		bw.ints(u.RootFanout)
		bw.ints(u.Prefix)
		bw.ints(u.Fanout)
	}
	if bw.err == nil {
		bw.err = bw.w.Flush()
	}
	if bw.err != nil {
		t.Fatalf("hand-encode v1: %v", bw.err)
	}
	got, err := DecodeCheckpoint(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("decode v1: %v", err)
	}
	if got.DPOR {
		t.Fatalf("v1 stream decoded with DPOR set")
	}
	if got.Threads != cp.Threads || len(got.Units) != len(cp.Units) {
		t.Fatalf("v1 decode mangled: threads=%d units=%d", got.Threads, len(got.Units))
	}
	for i, u := range got.Units {
		if u.Done != nil {
			t.Fatalf("unit %d: v1 stream decoded with done masks", i)
		}
		if !reflect.DeepEqual(u.Root, cp.Units[i].Root) {
			t.Fatalf("unit %d: root %v, want %v", i, u.Root, cp.Units[i].Root)
		}
	}
	_ = raw
}
