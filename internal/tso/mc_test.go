package tso

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// sbProgsShared is a parallel-safe SB litmus: the address layout is fixed
// by Alloc's deterministic order, so the factory writes no shared captured
// state and may run on concurrent machines.
func sbProgsShared(fenced bool) (func(m *Machine) []func(Context), func(m *Machine) string) {
	const xA, yA, r0A, r1A = Addr(0), Addr(1), Addr(2), Addr(3)
	mk := func(m *Machine) []func(Context) {
		x, y := m.Alloc(1), m.Alloc(1)
		r0a, r1a := m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) {
				c.Store(x, 1)
				if fenced {
					c.Fence()
				}
				c.Store(r0a, c.Load(y)+100)
			},
			func(c Context) {
				c.Store(y, 1)
				if fenced {
					c.Fence()
				}
				c.Store(r1a, c.Load(x)+100)
			},
		}
	}
	// The +100/-100 dance distinguishes "load observed 0" from "the
	// result store never landed": an unwritten result cell reads back as
	// the impossible r=-100, not as a plausible r=0.
	out := func(m *Machine) string {
		return fmt.Sprintf("r0=%d r1=%d", int64(m.Peek(r0A))-100, int64(m.Peek(r1A))-100)
	}
	_ = xA
	_ = yA
	return mk, out
}

// mpProgsShared is a parallel-safe message-passing litmus.
func mpProgsShared() (func(m *Machine) []func(Context), func(m *Machine) string) {
	mk := func(m *Machine) []func(Context) {
		x, y := m.Alloc(1), m.Alloc(1)
		r0a, r1a := m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) {
				c.Store(x, 1)
				c.Store(y, 1)
			},
			func(c Context) {
				r0 := c.Load(y)
				r1 := c.Load(x)
				c.Store(r0a, r0)
				c.Store(r1a, r1)
			},
		}
	}
	out := func(m *Machine) string {
		return fmt.Sprintf("flag=%d data=%d", m.Peek(2), m.Peek(3))
	}
	return mk, out
}

// TestExhaustiveMatchesSequential is the engine-equivalence bar: for every
// litmus/config pair, every combination of parallelism and dedup pruning
// must reproduce the sequential reference engine's outcome counts,
// completeness, and occupancy high-water marks byte-identically.
func TestExhaustiveMatchesSequential(t *testing.T) {
	sbMk, sbOut := sbProgsShared(false)
	sbfMk, sbfOut := sbProgsShared(true)
	mpMk, mpOut := mpProgsShared()
	cases := []struct {
		name string
		cfg  Config
		mk   func(m *Machine) []func(Context)
		out  func(m *Machine) string
	}{
		{"SB/S=2", Config{Threads: 2, BufferSize: 2}, sbMk, sbOut},
		{"SB+fence/S=2", Config{Threads: 2, BufferSize: 2}, sbfMk, sbfOut},
		{"MP/S=2", Config{Threads: 2, BufferSize: 2}, mpMk, mpOut},
		{"MP/S=2+stage", Config{Threads: 2, BufferSize: 2, DrainBuffer: true}, mpMk, mpOut},
	}
	variants := []struct {
		name string
		opts ExhaustiveOptions
	}{
		{"seq", ExhaustiveOptions{}},
		{"prune", ExhaustiveOptions{Prune: true}},
		{"par", ExhaustiveOptions{Parallel: 4}},
		{"par+prune", ExhaustiveOptions{Parallel: 4, Prune: true}},
	}
	for _, tc := range cases {
		want, wantRes := ExploreOutcomes(tc.cfg, tc.mk, tc.out, ExploreOptions{})
		if !wantRes.Complete {
			t.Fatalf("%s: reference exploration incomplete", tc.name)
		}
		for _, v := range variants {
			set, res := ExploreExhaustive(tc.cfg, tc.mk, tc.out, v.opts)
			if !res.Complete {
				t.Errorf("%s/%s: incomplete after %d runs", tc.name, v.name, res.Runs)
			}
			if !reflect.DeepEqual(set.Counts, want.Counts) {
				t.Errorf("%s/%s: counts diverge from sequential engine:\n got %v\nwant %v",
					tc.name, v.name, set.Counts, want.Counts)
			}
			if !reflect.DeepEqual(set.MaxOccupancy, want.MaxOccupancy) {
				t.Errorf("%s/%s: MaxOccupancy %v, want %v", tc.name, v.name, set.MaxOccupancy, want.MaxOccupancy)
			}
			if set.Total() != wantRes.Runs {
				t.Errorf("%s/%s: accounted %d schedules, reference enumerated %d",
					tc.name, v.name, set.Total(), wantRes.Runs)
			}
		}
	}
}

// TestExhaustivePruneSavesWork checks that dedup pruning actually cuts the
// search on a litmus with converging interleavings, not just matches it.
func TestExhaustivePruneSavesWork(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	_, seqRes := ExploreOutcomes(cfg, mk, out, ExploreOptions{})
	set, res := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{Prune: true})
	if res.Prune.StatesDeduped == 0 || res.Prune.SchedulesSaved == 0 {
		t.Fatalf("no dedup on SB: %+v", res.Prune)
	}
	if res.Runs >= seqRes.Runs {
		t.Fatalf("pruned engine executed %d runs, sequential needed %d", res.Runs, seqRes.Runs)
	}
	if set.Total() != seqRes.Runs {
		t.Fatalf("pruned engine accounted %d schedules, want %d", set.Total(), seqRes.Runs)
	}
	t.Logf("SB S=2: %d runs executed for %d schedules (%d states seen, %d deduped, %d saved)",
		res.Runs, set.Total(), res.Prune.StatesSeen, res.Prune.StatesDeduped, res.Prune.SchedulesSaved)
}

// TestExhaustiveSleepSetsPreserveSupport: sleep sets drop redundant orders
// of commuting drains, so schedule counts shrink, but the reachable
// outcome set, completeness, and occupancy bounds must survive.
func TestExhaustiveSleepSetsPreserveSupport(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	want, _ := ExploreOutcomes(cfg, mk, out, ExploreOptions{})
	set, res := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{Prune: true, SleepSets: true})
	if !res.Complete {
		t.Fatalf("incomplete after %d runs", res.Runs)
	}
	if res.Prune.SleepSkips == 0 {
		t.Fatalf("no sleep-set skips on SB: %+v", res.Prune)
	}
	for o := range want.Counts {
		if !set.Has(o) {
			t.Errorf("outcome %q lost under sleep sets (got %v)", o, set.Counts)
		}
	}
	for o := range set.Counts {
		if !want.Has(o) {
			t.Errorf("outcome %q invented under sleep sets", o)
		}
	}
	if !reflect.DeepEqual(set.MaxOccupancy, want.MaxOccupancy) {
		t.Errorf("MaxOccupancy %v, want %v", set.MaxOccupancy, want.MaxOccupancy)
	}
}

// TestExhaustiveResumeRoundTrip drives an exploration through repeated
// budget exhaustion, serializing the frontier to JSON and resuming from it
// each leg, and checks the union of legs reproduces the one-shot result.
func TestExhaustiveResumeRoundTrip(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	want, wantRes := ExploreOutcomes(cfg, mk, out, ExploreOptions{})

	opts := ExhaustiveOptions{ExploreOptions: ExploreOptions{MaxRuns: 7}}
	set, res := ExploreExhaustive(cfg, mk, out, opts)
	if res.Complete || res.Checkpoint == nil {
		t.Fatalf("expected a budget-limited frontier, got complete=%v checkpoint=%v", res.Complete, res.Checkpoint)
	}
	legs := 1
	for !res.Complete {
		if legs > 10*wantRes.Runs/7+10 {
			t.Fatalf("resume not converging after %d legs", legs)
		}
		var buf bytes.Buffer
		if err := res.Checkpoint.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		cp, err := DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		opts.Resume = cp
		set, res = ExploreExhaustive(cfg, mk, out, opts)
		legs++
	}
	if !reflect.DeepEqual(set.Counts, want.Counts) {
		t.Fatalf("resumed counts diverge after %d legs:\n got %v\nwant %v", legs, set.Counts, want.Counts)
	}
	if !reflect.DeepEqual(set.MaxOccupancy, want.MaxOccupancy) {
		t.Fatalf("resumed MaxOccupancy %v, want %v", set.MaxOccupancy, want.MaxOccupancy)
	}
	if res.Runs != wantRes.Runs {
		t.Fatalf("cumulative runs %d, want %d", res.Runs, wantRes.Runs)
	}
	t.Logf("converged in %d legs of ≤7 runs", legs)
}

// TestExhaustiveResumeRejectsMismatchedConfig: a checkpoint's choice
// prefixes are meaningless under a different machine, so resuming must
// fail loudly.
func TestExhaustiveResumeRejectsMismatchedConfig(t *testing.T) {
	mk, out := sbProgsShared(false)
	_, res := ExploreExhaustive(Config{Threads: 2, BufferSize: 2}, mk, out,
		ExhaustiveOptions{ExploreOptions: ExploreOptions{MaxRuns: 5}})
	if res.Checkpoint == nil {
		t.Fatal("expected a checkpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("resume under S=3 accepted a S=2 checkpoint")
		}
	}()
	ExploreExhaustive(Config{Threads: 2, BufferSize: 3}, mk, out, ExhaustiveOptions{Resume: res.Checkpoint})
}

// TestExploreTreeStatsReported: the tree-shape report must see through to
// the litmus's structure — SB at S=2 branches somewhere, and both engines
// agree on depth and fanout.
func TestExploreTreeStatsReported(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	_, seqRes := ExploreOutcomes(cfg, mk, out, ExploreOptions{})
	if seqRes.Tree.ChoicePoints == 0 || seqRes.Tree.MaxDepth == 0 || seqRes.Tree.MaxFanout < 2 {
		t.Fatalf("degenerate tree stats: %+v", seqRes.Tree)
	}
	_, exRes := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{})
	if exRes.Tree != seqRes.Tree {
		t.Fatalf("exhaustive tree stats %+v, sequential %+v", exRes.Tree, seqRes.Tree)
	}
}

// --- ExploreUntil edge cases (the sequential reference engine) ---

// TestExploreErrorRunsTruncateAndContinue: a program that panics on some
// schedules must not wedge the enumeration — error runs are unwound,
// counted, and the search still covers the rest of the tree.
func TestExploreErrorRunsTruncateAndContinue(t *testing.T) {
	mk := func(m *Machine) []func(Context) {
		x := m.Alloc(1)
		seen := m.Alloc(1)
		return []func(Context){
			func(c Context) {
				c.Store(x, 1)
			},
			func(c Context) {
				if c.Load(x) == 1 {
					panic("observed the store")
				}
				c.Store(seen, 1)
			},
		}
	}
	var okRuns, errRuns int
	res := Explore(Config{Threads: 2, BufferSize: 1}, mk, ExploreOptions{}, func(m *Machine, err error) {
		if err != nil {
			var pp *ProgramPanic
			if !strings.Contains(err.Error(), "observed the store") {
				t.Fatalf("unexpected error: %v", err)
			}
			_ = pp
			errRuns++
			return
		}
		okRuns++
	})
	if !res.Complete {
		t.Fatalf("incomplete after %d runs", res.Runs)
	}
	if errRuns == 0 || okRuns == 0 {
		t.Fatalf("expected both failing and clean schedules, got ok=%d err=%d", okRuns, errRuns)
	}
	if okRuns+errRuns != res.Runs {
		t.Fatalf("visit saw %d runs, engine reports %d", okRuns+errRuns, res.Runs)
	}
}

// TestExploreReplayDeterminismPanics: a factory whose program behaves
// differently across runs breaks the replay contract; the engine must
// refuse to explore garbage.
func TestExploreReplayDeterminismPanics(t *testing.T) {
	runN := 0
	mk := func(m *Machine) []func(Context) {
		x := m.Alloc(1)
		runN++
		extra := runN > 1
		return []func(Context){
			func(c Context) {
				c.Store(x, 1)
				if extra {
					c.Store(x, 2) // changes the action set mid-replay
				}
			},
			func(c Context) {
				c.Load(x)
			},
		}
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("non-replay-deterministic program explored without panic")
		}
		if !strings.Contains(fmt.Sprint(v), "replay-deterministic") {
			t.Fatalf("unexpected panic: %v", v)
		}
	}()
	Explore(Config{Threads: 2, BufferSize: 2}, mk, ExploreOptions{}, func(m *Machine, err error) {})
}

// TestExploreMaxRunsExactlyLastSchedule: when the budget lands exactly on
// the tree's final schedule the exploration IS complete, and must say so.
func TestExploreMaxRunsExactlyLastSchedule(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	_, full := ExploreOutcomes(cfg, mk, out, ExploreOptions{})
	if !full.Complete {
		t.Fatal("reference incomplete")
	}
	_, exact := ExploreOutcomes(cfg, mk, out, ExploreOptions{MaxRuns: full.Runs})
	if !exact.Complete {
		t.Fatalf("budget of exactly %d runs reported incomplete", full.Runs)
	}
	if exact.Runs != full.Runs {
		t.Fatalf("runs=%d want %d", exact.Runs, full.Runs)
	}
	// One fewer must flip it.
	_, short := ExploreOutcomes(cfg, mk, out, ExploreOptions{MaxRuns: full.Runs - 1})
	if short.Complete {
		t.Fatal("budget one short of the tree claimed completeness")
	}
	// Same contract for the exhaustive engine.
	_, exEx := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{ExploreOptions: ExploreOptions{MaxRuns: full.Runs}})
	if !exEx.Complete {
		t.Fatalf("exhaustive engine: budget of exactly %d runs reported incomplete", full.Runs)
	}
}

// TestSampleOutcomesMatchesChaosRuns: the shared sampling helper must be
// schedule-for-schedule identical to hand-rolled seeded chaos loops (it
// replaces several in cmd/), and its outcomes stay within the exhaustive
// set.
func TestSampleOutcomesMatchesChaosRuns(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2, DrainBias: 0.3}
	want := map[string]int{}
	for seed := 0; seed < 50; seed++ {
		c := cfg
		c.Seed = int64(seed)
		m := NewMachine(c)
		progs := mk(m)
		if err := m.Run(progs...); err != nil {
			t.Fatal(err)
		}
		want[out(m)]++
	}
	set := SampleOutcomes(cfg, 50, mk, out)
	if !reflect.DeepEqual(set.Counts, want) {
		t.Fatalf("SampleOutcomes %v, hand-rolled loop %v", set.Counts, want)
	}
	exact, _ := ExploreOutcomes(cfg, mk, out, ExploreOptions{})
	for o := range set.Counts {
		if !exact.Has(o) {
			t.Fatalf("sampled outcome %q outside the exhaustive set", o)
		}
	}
}

// TestExhaustivePruneHistorySeed pins the count-preservation contract on a
// CAS-heavy program whose thief begins by polling an untouched address: a
// self-contained port of the FF-CL duel the semantic oracle runs. It is a
// regression test for two ways the per-thread history hash could merge
// distinct histories: a zero-seeded rolling FNV (0 is a fixed point under
// the all-zero record of "load address 0, read 0", so history lengths
// vanish) and an ok bit mixed only when set (ambiguous against a following
// request of kind 1).
func TestExhaustivePruneHistorySeed(t *testing.T) {
	mk := func(m *Machine) []func(Context) {
		H := m.Alloc(1)
		T := m.Alloc(1)
		tasks := m.Alloc(4)
		m.Poke(tasks, 11)
		m.Poke(tasks+1, 22)
		m.Poke(H, 0)
		m.Poke(T, 2)
		take := func(c Context) {
			tt := int64(c.Load(T)) - 1
			c.Store(T, uint64(tt))
			h := int64(c.Load(H))
			if tt > h {
				c.Load(tasks + Addr(tt%4))
				return
			}
			if tt < h {
				c.Store(T, uint64(h))
				return
			}
			c.Store(T, uint64(h+1))
			if _, ok := c.CAS(H, uint64(h), uint64(h+1)); ok {
				c.Load(tasks + Addr(tt%4))
			}
		}
		worker := func(c Context) { take(c); take(c) }
		thief := func(c Context) {
			for {
				h := int64(c.Load(H))
				tt := int64(c.Load(T))
				if h >= tt {
					return
				}
				if tt-1 <= h {
					return
				}
				c.Load(tasks + Addr(h%4))
				if _, ok := c.CAS(H, uint64(h), uint64(h+1)); ok {
					return
				}
			}
		}
		return []func(Context){worker, thief}
	}
	out := func(m *Machine) string { return fmt.Sprintf("h=%d t=%d", m.Peek(0), m.Peek(1)) }
	cfg := Config{Threads: 2, BufferSize: 2}
	plain, res1 := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{})
	pruned, res2 := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{Prune: true})
	if !res1.Complete || !res2.Complete {
		t.Fatalf("incomplete exploration: plain %v pruned %v", res1.Complete, res2.Complete)
	}
	if !reflect.DeepEqual(plain.Counts, pruned.Counts) {
		t.Fatalf("pruned counts diverge from sequential engine:\n got %v\nwant %v", pruned.Counts, plain.Counts)
	}
	if res2.Prune.StatesDeduped == 0 {
		t.Fatalf("no dedup on the duel: %+v", res2.Prune)
	}
}
