//go:build !race

package tso

// raceEnabled reports whether the race detector is compiled in. The
// allocation-count tests skip themselves under -race: the detector
// instruments every allocation site, so testing.AllocsPerRun measures the
// detector, not the engine.
const raceEnabled = false
