package tso

import (
	"fmt"
	"io"
)

// DumpState writes a human-readable snapshot of the chaos machine: each
// thread's store-buffer contents (program order, oldest first, including
// the §7.3 drain stage) and a window of memory. Intended for debugging
// harness failures together with a RingTracer dump; it must only be called
// while the machine is quiescent (before Run, after Run, or from harness
// code while holding the floor).
func (m *Machine) DumpState(w io.Writer, memLo, memHi Addr) {
	fmt.Fprintf(w, "machine: %d threads, S=%d, stage=%v, model=%s, steps=%d\n",
		m.cfg.Threads, m.cfg.BufferSize, m.cfg.DrainBuffer, m.cfg.Model, m.steps)
	for tid, b := range m.bufs {
		fmt.Fprintf(w, "thread %d buffer (%d/%d):", tid, b.occupancy(), m.cfg.ObservableBound())
		if b.hasStage {
			fmt.Fprintf(w, " stage{[%d]=%d op%d}", b.stage.addr, b.stage.val, b.stage.id)
		}
		for _, e := range b.entries {
			fmt.Fprintf(w, " [%d]=%d op%d", e.addr, e.val, e.id)
		}
		fmt.Fprintln(w)
	}
	if memHi > memLo {
		fmt.Fprint(w, "memory:")
		for a := memLo; a < memHi; a++ {
			fmt.Fprintf(w, " [%d]=%d", a, m.mem.read(a))
		}
		fmt.Fprintln(w)
	}
}

// BufferedStores returns how many of tid's stores have not yet reached
// memory (including the drain stage) — the quantity the TSO[S] bound caps.
// Harness instrumentation; callers must hold the floor or be quiescent.
func (m *Machine) BufferedStores(tid int) int {
	return m.bufs[tid].occupancy()
}

// ThreadMaxOccupancy returns thread tid's high-water mark of buffered
// stores across every Run so far (drain stage included) — the per-thread
// witness of the observable reordering bound.
func (m *Machine) ThreadMaxOccupancy(tid int) int {
	return m.bufs[tid].maxOcc
}
