package tso

import "testing"

// BenchmarkHandoff measures the raw cost of one simulated operation: the
// round trip from a program goroutine through the scheduler and back. This
// is the floor under every simulated load/store/CAS in the repo, so a
// regression here taxes every figure and every exhaustive proof.
func BenchmarkHandoff(b *testing.B) {
	b.Run("chaos/load", func(b *testing.B) {
		m := NewMachine(Config{Threads: 1, BufferSize: 4, Seed: 1})
		x := m.Alloc(1)
		b.ResetTimer()
		err := m.Run(func(c Context) {
			for i := 0; i < b.N; i++ {
				c.Load(x)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	})
	b.Run("chaos/store", func(b *testing.B) {
		m := NewMachine(Config{Threads: 1, BufferSize: 4, Seed: 1})
		x := m.Alloc(1)
		b.ResetTimer()
		err := m.Run(func(c Context) {
			for i := 0; i < b.N; i++ {
				c.Store(x, uint64(i))
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	})
	b.Run("timed/load", func(b *testing.B) {
		m := NewTimedMachine(Config{Threads: 1, BufferSize: 33})
		x := m.Alloc(1)
		b.ResetTimer()
		err := m.Run(func(c Context) {
			for i := 0; i < b.N; i++ {
				c.Load(x)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkMachineRun measures whole-run overhead on a small SB-shaped
// program — the cost every explored schedule pays around its handful of
// simulated operations.
func BenchmarkMachineRun(b *testing.B) {
	prog0 := func(x, y Addr) func(Context) {
		return func(c Context) { c.Store(x, 1); c.Load(y) }
	}
	b.Run("new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewMachine(Config{Threads: 2, BufferSize: 4, Seed: 1})
			x, y := m.Alloc(1), m.Alloc(1)
			if err := m.Run(prog0(x, y), prog0(y, x)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reuse", func(b *testing.B) {
		m := NewMachine(Config{Threads: 2, BufferSize: 4, Seed: 1})
		defer m.Close()
		x, y := m.Alloc(1), m.Alloc(1)
		p0, p1 := prog0(x, y), prog0(y, x)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			m.Alloc(2) // re-reserve the words the reset rewound
			if err := m.Run(p0, p1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
