package tso

import (
	"bytes"
	"strings"
	"testing"
)

// validCheckpoint returns a structurally sound checkpoint with one
// resumable unit, the base the rejection table mutates.
func validCheckpoint() *Checkpoint {
	return &Checkpoint{
		Version:      1,
		Threads:      2,
		BufferSize:   2,
		Model:        "TSO",
		Runs:         7,
		StepLimited:  1,
		Counts:       map[string]int{"r0=0 r1=0": 3},
		MaxOccupancy: []int{2, 1},
		Units: []UnitCheckpoint{
			{Root: []int{1}, RootFanout: []int{2}},
			{Root: []int{0}, RootFanout: []int{2}, Prefix: []int{0, 2}, Fanout: []int{2, 3}},
		},
	}
}

// TestCheckpointValidateAccepts: the base checkpoint and its decoded
// round trip must pass — Validate is now on the DecodeCheckpoint path, so
// a false rejection would break every resume.
func TestCheckpointValidateAccepts(t *testing.T) {
	cp := validCheckpoint()
	if err := cp.Validate(); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(&buf); err != nil {
		t.Fatalf("valid checkpoint rejected on decode: %v", err)
	}
}

// TestCheckpointValidateRejects drives every malformation the service
// can ingest from disk or the wire through Validate and checks each
// fails loudly with a diagnostic naming the problem.
func TestCheckpointValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(cp *Checkpoint)
		want string
	}{
		{"version", func(cp *Checkpoint) { cp.Version = 2 }, "version"},
		{"threads", func(cp *Checkpoint) { cp.Threads = 0; cp.MaxOccupancy = nil }, "thread"},
		{"buffer-size", func(cp *Checkpoint) { cp.BufferSize = 0 }, "buffer"},
		{"unknown-model", func(cp *Checkpoint) { cp.Model = "ARMv8" }, "memory model"},
		{"negative-runs", func(cp *Checkpoint) { cp.Runs = -1 }, "negative run count"},
		{"negative-step-limited", func(cp *Checkpoint) { cp.StepLimited = -3 }, "step-limited"},
		{"negative-count", func(cp *Checkpoint) { cp.Counts["r0=0 r1=0"] = -2 }, "counts outcome"},
		{"occupancy-length", func(cp *Checkpoint) { cp.MaxOccupancy = []int{1} }, "occupancy"},
		{"root-fanout-length", func(cp *Checkpoint) { cp.Units[0].RootFanout = nil }, "unit 0"},
		{"root-choice-range", func(cp *Checkpoint) { cp.Units[0].Root[0] = 2 }, "outside fanout"},
		{"prefix-fanout-length", func(cp *Checkpoint) { cp.Units[1].Fanout = cp.Units[1].Fanout[:1] }, "unit 1"},
		{"prefix-shorter-than-root", func(cp *Checkpoint) {
			cp.Units[1].Root = []int{0, 1}
			cp.Units[1].RootFanout = []int{2, 2}
			cp.Units[1].Prefix = []int{0}
			cp.Units[1].Fanout = []int{2}
		}, "shorter than unit root"},
		{"prefix-diverges-from-root", func(cp *Checkpoint) { cp.Units[1].Prefix[0] = 1 }, "diverges"},
		{"prefix-choice-range", func(cp *Checkpoint) { cp.Units[1].Prefix[1] = 3 }, "outside fanout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := validCheckpoint()
			tc.mut(cp)
			err := cp.Validate()
			if err == nil {
				t.Fatalf("mutation %q accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("mutation %q: error %q does not mention %q", tc.name, err, tc.want)
			}
			// The same malformed checkpoint must be refused at the decode
			// boundary, where spool files and wire payloads enter.
			var buf bytes.Buffer
			if encErr := cp.Encode(&buf); encErr != nil {
				t.Fatal(encErr)
			}
			if _, decErr := DecodeCheckpoint(&buf); decErr == nil {
				t.Fatalf("mutation %q accepted by DecodeCheckpoint", tc.name)
			}
		})
	}
}

// TestCheckpointCompatibleWith: the graceful counterpart of the resume
// panic — a mismatched machine shape must be reported as an error.
func TestCheckpointCompatibleWith(t *testing.T) {
	cp := validCheckpoint()
	if err := cp.CompatibleWith(Config{Threads: 2, BufferSize: 2}); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
	if err := cp.CompatibleWith(Config{Threads: 2, BufferSize: 3}); err == nil {
		t.Fatal("S=3 config accepted an S=2 checkpoint")
	}
	if err := cp.CompatibleWith(Config{Threads: 3, BufferSize: 2}); err == nil {
		t.Fatal("3-thread config accepted a 2-thread checkpoint")
	}
	if err := cp.CompatibleWith(Config{Threads: 2, BufferSize: 2, DrainBuffer: true}); err == nil {
		t.Fatal("drain-stage config accepted a stage-less checkpoint")
	}
}
