package tso

// This file is the exhaustive model-checking engine behind
// ExploreExhaustive: the same replay-based schedule enumeration as
// ExploreUntil, restructured around three scalability mechanisms the
// sequential reference engine lacks.
//
//   - An explicit frontier: the decision tree is partitioned into
//     choice-prefix work units (frontier.go) so independent subtrees run
//     in parallel on a worker pool and the unexplored remainder can be
//     serialized as a Checkpoint and resumed later.
//
//   - Canonical-state memoization: at every new tree node the engine
//     hashes the machine's canonical state — shared memory, every store
//     buffer's contents, each thread's operation/response history, and the
//     step count — and, when the state was fully explored before, credits
//     the memoized outcome multiset instead of re-exploring the subtree.
//     Because the credit is the exact multiset of schedules under the
//     node, pruned exploration produces byte-identical OutcomeSet.Counts
//     to the sequential engine; redundant interleavings that converge to
//     the same state (the classic drain/op commutation diamonds) collapse
//     to a single exploration. The step count is part of the key so a
//     memoized suffix can never behave differently under MaxStepsPerRun
//     than it did when first explored; the cost is that only same-depth
//     convergence dedups, which is where virtually all of it lives.
//
//   - Commutativity sleep sets (optional): store-buffer drains by
//     different threads whose memory effects target different addresses
//     commute, so of the two interleavings only one needs running. Sleep
//     sets prune the redundant orders outright, which reduces the
//     *multiplicity* of each outcome while provably preserving the set of
//     reachable final states, Complete-ness, and the per-thread occupancy
//     high-water marks (a buffer's occupancy history depends only on its
//     own thread's order of pushes and drains, which is invariant across
//     the pruned reorderings). Use it for verdict-style questions
//     ("is this outcome reachable?"); leave it off when exact schedule
//     counts matter.
//
//   - Source-set DPOR (optional, DPOR): the strongest reduction. The
//     dependence layer (depend.go) classifies every action by read/write
//     footprint; race detection over each executed run (dpor.go) adds
//     backtrack points only where dependent actions actually met, so the
//     engine explores one representative per Mazurkiewicz class instead
//     of enumerating the tree. Same preservation contract as SleepSets
//     (outcome set, Complete, MaxOccupancy — not counts), typically
//     orders of magnitude fewer executed runs.
//
// A thread's local state (registers, loop counters) lives in its program
// closure and cannot be inspected, so the canonical state instead hashes
// the thread's full request/response history: a replay-deterministic
// program is a deterministic function of the responses it received, so
// equal histories imply equal future behaviour. This is exactly the
// replay-determinism contract Explore already imposes.

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// ExhaustiveOptions configures ExploreExhaustive. The zero value matches
// the sequential reference engine (one worker, no pruning).
type ExhaustiveOptions struct {
	ExploreOptions

	// Parallel is the number of worker goroutines exploring subtree work
	// units (<= 1: sequential). With Parallel > 1 the mkProgs and outcome
	// callbacks are invoked concurrently on distinct machines and must not
	// write shared captured state (compute address layouts up front).
	Parallel int

	// Prune enables canonical-state memoization. Counts stay byte-identical
	// to the sequential engine; Runs shrinks by the deduplicated subtrees.
	Prune bool

	// SleepSets additionally prunes redundant orders of commuting drains.
	// The set of reachable outcomes, Complete, and MaxOccupancy are
	// preserved; per-outcome counts are reduced to one representative per
	// commutation class. Implies Prune's bookkeeping but not its memo
	// table; the two compose.
	SleepSets bool

	// DPOR switches the engine to source-set dynamic partial-order
	// reduction over the dependence layer (depend.go, dpor.go): races
	// detected on each executed run add backtrack points, and only one
	// schedule per Mazurkiewicz class is explored. The outcome set,
	// Complete, and MaxOccupancy are preserved exactly; per-outcome
	// counts are not (one representative per class), so Prune's
	// count-preserving memoization is auto-disabled under DPOR — a memo
	// credit would also hide the executed suffixes race detection needs.
	// SleepSets is likewise superseded by the dependence-derived sleep
	// sets DPOR maintains itself. Requires ModelTSO and is mutually
	// exclusive with MaxReorderings (see dporCheck for why). Composes
	// with MaxStepsPerRun — which is what makes spin-lock duels
	// tractable as bounded proofs — but not for free: a truncated run
	// never exhibits its post-horizon races, so every frame such a run
	// crosses is tainted to explore all branches (mcFrame.all). Within
	// the truncated region the exploration is unreduced; reduction
	// survives only in subtrees whose runs all complete.
	DPOR bool

	// Units is the target number of frontier work units (default
	// 4×Parallel when parallel, 1 when sequential).
	Units int

	// MemoLimit bounds the memo arena (entries across all stripes); once a
	// stripe is full, admitting a new state evicts its oldest entry —
	// sound, because losing an entry only costs future dedup, never a
	// count. Default 1 << 22.
	MemoLimit int

	// MemoStripes is the number of lock stripes of the memo arena, rounded
	// up to a power of two. Zero selects automatically: one stripe when
	// sequential, scaled with Parallel otherwise. More stripes reduce
	// memo-lock contention between workers at a small fixed memory cost.
	MemoStripes int

	// MaxReorderings, when >= 1, bounds the store→load reorderings of each
	// explored schedule: a load that reads shared memory (no forwarding
	// hit) while its own thread still holds buffered stores counts as one
	// reordering, and branches that would push a schedule past the bound
	// are pruned. Zero and negative values (normalized to -1) disable the
	// bound, reproducing the unbounded exploration byte-identically. The
	// reorder-bounded literature's observation applies on TSO[S]: most
	// verdicts need only a handful of reorderings, so small k shrinks the
	// tree by orders of magnitude. Composes with Prune and SleepSets
	// (bounded counts stay exact over the bounded schedule set); under a
	// bound, MaxOccupancy may over-approximate by prefixes whose
	// completions were all pruned.
	MaxReorderings int

	// Label is an optional tag stamped into checkpoints this exploration
	// writes and checked against Resume's (when both are non-empty) — the
	// guard that keeps two phases spooling under one path prefix from
	// silently swapping frontiers.
	Label string

	// Resume continues a budget-interrupted exploration from its
	// serialized frontier. The configuration must match the one that
	// produced the checkpoint. MaxRuns is a fresh budget for this call;
	// reported Runs accumulate across resumes.
	Resume *Checkpoint

	// Interrupt, when non-nil, stops the exploration early once it
	// becomes receivable (typically a context's Done channel or a signal
	// handler's): workers stop at their next run boundary and the result
	// carries a resumable Checkpoint, exactly as if MaxRuns had been
	// exhausted. This is how SIGTERM drains land a final checkpoint
	// instead of dying mid-frontier.
	Interrupt <-chan struct{}
}

func (o ExhaustiveOptions) withDefaults() ExhaustiveOptions {
	o.ExploreOptions = o.ExploreOptions.withDefaults()
	if o.Parallel <= 0 {
		o.Parallel = 1
	}
	if o.Units <= 0 {
		if o.Parallel > 1 {
			o.Units = 4 * o.Parallel
		} else {
			o.Units = 1
		}
	}
	if o.MemoLimit <= 0 {
		o.MemoLimit = 1 << 22
	}
	if o.MemoStripes <= 0 {
		if o.Parallel > 1 {
			o.MemoStripes = 4 * o.Parallel
		} else {
			o.MemoStripes = 1
		}
	}
	if o.MaxReorderings <= 0 {
		o.MaxReorderings = -1
	}
	if o.DPOR {
		// See the DPOR field comment: memo credits are count-preserving,
		// DPOR counts are per-class, and a memo cut would hide executed
		// suffixes from race detection; the legacy sleep sets are a strict
		// subset of the dependence-derived ones DPOR maintains itself.
		o.Prune = false
		o.SleepSets = false
	}
	return o
}

// stateKey is a 2×64-bit canonical-state fingerprint. Collisions would be
// unsound, so the key is wide enough to make them implausible at model-
// checking scale (two independently seeded FNV-1a passes over the
// serialized state).
type stateKey struct{ a, b uint64 }

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
	// fnvOffset2 is an arbitrary second basis decorrelating the two passes.
	fnvOffset2 uint64 = 0x9e3779b97f4a7c15
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// memoEntry is the exact aggregate of one fully explored subtree: the
// multiset of final outcomes, the number of schedules it contains, how
// many hit the step limit, and the per-thread occupancy high-water mark
// over the subtree's schedules. Entries are immutable once published.
type memoEntry struct {
	counts      map[string]int
	runs        int64
	stepLimited int
	maxOcc      []int
}

func (a *memoEntry) addLeaf(outcome string, hw []int, stepLimited bool) {
	if a.counts == nil {
		a.counts = map[string]int{}
	}
	a.counts[outcome]++
	a.runs++
	if stepLimited {
		a.stepLimited++
	}
	a.foldOcc(hw)
}

// fold absorbs a finished child subtree.
func (a *memoEntry) fold(b *memoEntry) {
	if b.counts != nil {
		if a.counts == nil {
			a.counts = map[string]int{}
		}
		for k, v := range b.counts {
			a.counts[k] += v
		}
	}
	a.runs += b.runs
	a.stepLimited += b.stepLimited
	a.foldOcc(b.maxOcc)
}

// foldCredit absorbs a memoized subtree reached at a point whose
// schedules so far peaked at hwNow buffered stores per thread. The
// credited high-water mark max(hwNow, memo) can only over-approximate by
// a value some executed schedule genuinely reached, so the exploration's
// final MaxOccupancy is exact (see the equivalence tests).
func (a *memoEntry) foldCredit(b *memoEntry, hwNow []int) {
	if b != nil {
		a.fold(b)
	}
	a.foldOcc(hwNow)
}

func (a *memoEntry) foldOcc(hw []int) {
	if len(hw) == 0 {
		return
	}
	if a.maxOcc == nil {
		a.maxOcc = make([]int, len(hw))
	}
	for i, v := range hw {
		if v > a.maxOcc[i] {
			a.maxOcc[i] = v
		}
	}
}

// mcFrame is the engine's bookkeeping for one tree node on the current
// DFS path of a work unit.
type mcFrame struct {
	depth  int
	fanout int
	// acc aggregates the node's fully explored children and leaves.
	acc memoEntry
	// key/hashed: canonical state (Prune mode).
	key    stateKey
	hashed bool
	// noMemo marks frames whose exploration spans a checkpoint boundary:
	// their accumulators miss pre-checkpoint results, so they must never
	// be published to the memo table.
	noMemo bool
	// acts/sleep/skip: commutativity bookkeeping (SleepSets mode). skip[b]
	// marks branch b as covered by an earlier commuting exploration. DPOR
	// mode reuses skip for its sleep-blocked branches.
	acts  []actID
	sleep []actID
	skip  []bool

	// DPOR bookkeeping (nil otherwise). procs/fps classify each branch's
	// action by dependence proc and footprint; bt is the backtrack set
	// (race handling grows it; nil on resumed frames, meaning every
	// branch); done marks fully explored branches — unlike the plain
	// engine's ascending scan, backtracking can revisit lower indices;
	// dsleep is the dependence-derived sleep set arriving at this node.
	procs  []int32
	fps    []footprint
	bt     []bool
	done   []bool
	dsleep []dsleepEntry
	// all marks a DPOR node a step-limited run passed through. A
	// truncated run never exhibits its post-horizon races, so the
	// backtrack sets of the frames it crossed may be missing reversals
	// whose runs would themselves have completed within the limit.
	// Every branch of such a node is explored (and its sleep skips
	// ignored) — the unreduced behavior, restored exactly where the
	// reduction's completeness argument breaks.
	all bool
}

// firstAllowed returns the smallest non-skipped branch, or -1.
func (f *mcFrame) firstAllowed() int {
	for b := 0; b < f.fanout; b++ {
		if f.skip == nil || !f.skip[b] {
			return b
		}
	}
	return -1
}

// nextAllowed returns the smallest non-skipped branch > cur, or -1.
func (f *mcFrame) nextAllowed(cur int) int {
	for b := cur + 1; b < f.fanout; b++ {
		if f.skip == nil || !f.skip[b] {
			return b
		}
	}
	return -1
}

// mcUnit is one frontier work unit: the subtree under a choice prefix,
// explored by exactly one worker.
type mcUnit struct {
	// root is the unit's choice prefix; rootFan the recorded fanout at
	// each root depth (for the replay-determinism check).
	root    []int
	rootFan []int
	// prefix/fanout are the DFS position: the full current path, root
	// included. Non-nil before the first run only when resuming.
	prefix, fanout []int
	resumed        bool

	frames []*mcFrame
	// acc aggregates the unit root's fully explored subtree.
	acc      memoEntry
	res      ExploreResult
	complete bool
	started  bool

	// DPOR bookkeeping. freshFrom is the depth the current run first
	// diverges from already-race-scanned prefixes (race detection skips
	// replayed events below it; clock maintenance never does). doneMask
	// carries the per-frame explored-branch bitmasks across a
	// checkpoint: collected by snapshot, serialized per unit, and
	// restored into the rebuilt frames on resume so out-of-order
	// backtracking never re-runs or loses a subtree.
	freshFrom int
	doneMask  []uint64
}

// mcRunner is one worker's reusable execution state: a machine (Reset
// between schedules instead of rebuilt), the chooser policy driving it
// with its pre-bound choose/onExec hooks, the per-thread history hashes,
// and the hashing scratch. Each frontier worker owns exactly one runner
// for its whole lifetime, so the steady-state exploration loop performs no
// machine construction and no per-run closure allocation.
type mcRunner struct {
	e    *mcEngine
	m    *Machine
	pol  *chooserPolicy
	hist []uint64 // per-thread request/response history hashes (Prune)

	// Per-run state referenced by the pre-bound choose hook.
	u        *mcUnit
	depth    int
	mismatch bool
	cut      bool
	credit   *memoEntry
	cutHW    []int
	// reorder counts the store→load reorderings accumulated along the
	// current schedule (bounded mode only; see MaxReorderings).
	reorder int
	// creditBuf is the runner-owned copy a memo hit lands in: the arena
	// may evict the slot after the lookup, so credit never aliases it.
	creditBuf memoEntry

	// dp is the per-run DPOR state (events, clocks, race tables); nil
	// unless ExhaustiveOptions.DPOR.
	dp *dporState

	hw       []int   // leaf high-water-mark scratch
	scratch  []byte  // serialization buffer for state hashing
	sleepIDs []actID // stateKeyFor's sorted-sleep-set scratch
}

// newRunner builds a worker's runner: the one machine and policy it will
// reuse for every schedule it executes. Callers own the machine's
// lifetime (Close it when the worker retires).
func (e *mcEngine) newRunner() *mcRunner {
	c := e.cfg
	c.MaxSteps = e.opts.MaxStepsPerRun
	r := &mcRunner{e: e, m: NewMachine(c), pol: &chooserPolicy{}}
	r.pol.choose = r.choose
	if e.opts.Prune {
		// The rolling hashes MUST start from the FNV offset basis, not 0:
		// 0 is a fixed point of FNV-1a under zero bytes, so a zero-seeded
		// hash cannot tell apart histories that differ only by a prefix of
		// all-zero records (e.g. repeated loads of address 0 reading 0 —
		// exactly a thief polling an untouched head index). Such
		// different-length histories would share a key and falsely merge
		// their subtrees.
		r.hist = make([]uint64, c.Threads)
		for i := range r.hist {
			r.hist[i] = fnvOffset
		}
		r.pol.onExec = func(req *request, resp response) {
			h := r.hist[req.tid]
			h = fnvMix(h, uint64(req.kind))
			h = fnvMix(h, uint64(req.addr))
			h = fnvMix(h, req.val)
			h = fnvMix(h, req.val2)
			h = fnvMix(h, resp.val)
			// The ok bit is mixed unconditionally so every executed request
			// contributes a fixed-width record; mixing it only when set would
			// leave the stream ambiguous between an ok bit and a following
			// request whose kind is 1.
			var ok uint64
			if resp.ok {
				ok = 1
			}
			h = fnvMix(h, ok)
			r.hist[req.tid] = h
		}
	}
	if e.opts.DPOR {
		r.dp = newDPORState(c.Threads)
		// End-of-run forced drains are part of the run for dependence
		// purposes: they carry the remaining memory writes, so races
		// against them must still add backtrack points. Their events sit
		// past the last choice point, so they are never race *targets*
		// (dporRace's depth check rejects them) — only sources.
		r.m.flushHook = func(tid int) {
			r.dporRecord(action{drain: true, id: tid}, true)
		}
	}
	r.m.pol = r.pol
	return r
}

// mcEngine is the shared state of one ExploreExhaustive call.
type mcEngine struct {
	cfg     Config
	mk      func(m *Machine) []func(Context)
	outcome func(m *Machine) string
	opts    ExhaustiveOptions
	bound   int // normalized MaxReorderings (-1: unbounded)

	memo *memoTable // nil unless Prune

	executed atomic.Int64 // machine runs charged against MaxRuns
	stopped  atomic.Bool  // budget exhausted or a worker panicked

	splitTree TreeStats // choice points consumed by frontier splitting
}

// reorderDelta reports whether executing act in the machine's current
// state constitutes one store→load reordering: a load that reads shared
// memory while at least one of its own thread's earlier stores is still
// buffered (so the load completes ahead of them). A load satisfied by
// store-to-load forwarding contributes nothing — its value is the one
// program order demands — and drains and non-load requests never do.
func reorderDelta(m *Machine, act action) int {
	if act.drain {
		return 0
	}
	r := m.pending[act.id]
	if r == nil || r.kind != opLoad {
		return 0
	}
	b := m.bufs[act.id]
	if b.occupancy() == 0 {
		return 0
	}
	if _, fwd := b.forward(r.addr); fwd {
		return 0
	}
	return 1
}

// stateKeyFor hashes the machine's canonical state at a choice point:
// step count, allocated memory, per-thread buffer contents and
// request/response histories, plus the arriving sleep set (two states
// explored under different sleep sets have different residual subtrees,
// so the sleep set is part of the identity in SleepSets mode).
func (r *mcRunner) stateKeyFor(m *Machine, hist []uint64, sleep []actID) stateKey {
	buf := r.scratch[:0]
	put := func(v uint64) {
		buf = append(buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	put(uint64(m.steps))
	put(uint64(m.next))
	for a := Addr(0); a < m.next; a++ {
		put(m.mem.words[a])
	}
	for tid, b := range m.bufs {
		put(uint64(tid)<<32 | uint64(len(b.entries)))
		for _, en := range b.entries {
			put(uint64(en.addr))
			put(en.val)
		}
		if b.hasStage {
			put(1)
			put(uint64(b.stage.addr))
			put(b.stage.val)
		} else {
			put(0)
		}
		put(hist[tid])
	}
	if len(sleep) > 0 {
		// Sort into the runner's scratch: this runs once per visited
		// state, so a per-key copy would dominate the allocation profile.
		ids := append(r.sleepIDs[:0], sleep...)
		sort.Slice(ids, func(i, j int) bool {
			return ids[i].tid < ids[j].tid || (ids[i].tid == ids[j].tid && ids[i].addr < ids[j].addr)
		})
		r.sleepIDs = ids
		for _, id := range ids {
			put(uint64(id.tid)<<32 ^ uint64(id.addr))
		}
	}
	if r.e.bound >= 0 {
		// Bounded mode: two otherwise-identical machine states with
		// different consumed reorder counts have different residual
		// budgets, hence different admissible subtrees — the count is part
		// of the canonical identity. Unbounded explorations hash the exact
		// byte stream they always did.
		put(uint64(r.reorder))
	}
	r.scratch = buf
	ka, kb := fnvOffset, fnvOffset2
	for _, c := range buf {
		ka = (ka ^ uint64(c)) * fnvPrime
		kb = (kb ^ uint64(c)) * fnvPrime
	}
	return stateKey{ka, kb}
}

// childSleep computes the sleep set arriving at the child reached from
// the unit's deepest frame via its current branch: inherited entries
// still independent of the chosen action, plus every earlier-explored
// commuting sibling.
func (u *mcUnit) childSleep() []actID {
	if len(u.frames) == 0 {
		return nil
	}
	p := u.frames[len(u.frames)-1]
	if p.acts == nil {
		return nil // resumed frame: action identities unknown
	}
	chosen := u.prefix[p.depth]
	a := p.acts[chosen]
	var sleep []actID
	for _, t := range p.sleep {
		if independent(t, a) {
			sleep = append(sleep, t)
		}
	}
	for j := 0; j < chosen; j++ {
		if p.skip != nil && p.skip[j] {
			continue // never explored here; covered via an ancestor
		}
		if independent(p.acts[j], a) {
			sleep = append(sleep, p.acts[j])
		}
	}
	return sleep
}

// machineHWInto fills dst with the per-thread occupancy high-water marks.
// Callers pass a reusable scratch slice; every consumer (foldOcc) copies
// the values out, so aliasing the scratch is safe.
func machineHWInto(m *Machine, dst []int) []int {
	dst = dst[:0]
	for _, b := range m.bufs {
		dst = append(dst, b.maxOcc)
	}
	return dst
}

// exploreUnit runs the unit's subtree to completion or until the shared
// budget stops the engine, in which case the unit snapshots its resumable
// position. r is the calling worker's reusable runner.
func (e *mcEngine) exploreUnit(r *mcRunner, u *mcUnit) {
	u.started = true
	rootLen := len(u.root)
	if u.prefix == nil {
		u.prefix = append([]int(nil), u.root...)
		u.fanout = append([]int(nil), u.rootFan...)
	} else if u.resumed {
		// Rebuild empty frames for the checkpointed path. Their subtrees
		// were partially counted before the checkpoint, so they must not
		// be memoized, and sleep-set identities are gone: the remaining
		// branches are all explored (sound, merely less pruned). Under
		// DPOR the checkpoint's done-masks say which branches finished
		// before the interruption; bt stays nil (= every branch), since
		// the backtrack reasoning that pruned the rest is gone too.
		for d := rootLen; d < len(u.prefix); d++ {
			f := &mcFrame{depth: d, fanout: u.fanout[d], noMemo: true}
			if e.opts.DPOR {
				f.done = make([]bool, f.fanout)
				if di := d - rootLen; di < len(u.doneMask) {
					for b := range f.done {
						f.done[b] = u.doneMask[di]&(1<<b) != 0
					}
				}
			}
			u.frames = append(u.frames, f)
		}
		u.doneMask = nil
	}
	for {
		if e.stopped.Load() {
			u.snapshot()
			return
		}
		if n := e.executed.Add(1); int(n) > e.opts.MaxRuns {
			e.stopped.Store(true)
			u.snapshot()
			return
		}
		leafDepth, cut := e.runOne(r, u)
		if cut {
			// Prefix already ends at the cut node; nothing was appended.
			if !e.advance(u, rootLen) {
				return
			}
			continue
		}
		// Leaf: bookkeeping was already truncated to the depth reached.
		_ = leafDepth
		if !e.advance(u, rootLen) {
			return
		}
	}
}

// choose is the runner's pre-bound chooserPolicy hook: replay the unit's
// current prefix, then descend first-allowed branches, creating frames
// (and consulting the memo table) at every new node.
func (r *mcRunner) choose(acts []action) int {
	e, u, m := r.e, r.u, r.m
	d := r.depth
	n := len(acts)
	if d < len(u.prefix) {
		if e.bound >= 0 {
			r.reorder += reorderDelta(m, acts[u.prefix[d]])
		}
		if u.fanout[d] != n {
			r.mismatch = true
		}
		if r.dp != nil {
			// Clocks are maintained over the whole run; race detection
			// only fires from the depth this run first diverges at.
			r.dporRecord(acts[u.prefix[d]], d >= u.freshFrom)
		}
		r.depth++
		return u.prefix[d]
	}
	if r.dp != nil {
		return r.chooseDPOR(acts)
	}
	if e.bound >= 0 && r.reorder > e.bound {
		// The node itself sits past the bound. Reachable only through
		// positions recorded without per-branch skip marking — a unit root
		// from frontier splitting (splitting probes don't respect the
		// bound) or a sibling of a resumed frame (its skip array is gone).
		// No schedule through here is admissible, so nothing — not even
		// the occupancy high-water mark — is credited.
		u.res.Prune.ReorderSkips++
		u.res.Prune.SubtreesCut++
		r.cutHW = r.cutHW[:0]
		r.cut = true
		r.pol.cancel = true
		return 0
	}
	f := &mcFrame{depth: d, fanout: n}
	u.res.Tree.node(d, n)
	if e.opts.SleepSets {
		f.acts = actIDsFor(m, acts)
		f.sleep = u.childSleep()
		if len(f.sleep) > 0 {
			f.skip = make([]bool, n)
			for i, a := range f.acts {
				if !a.drain {
					continue
				}
				for _, t := range f.sleep {
					if t == a {
						f.skip[i] = true
						u.res.Prune.SleepSkips++
						u.res.Prune.SubtreesCut++
						break
					}
				}
			}
		}
	}
	if e.bound >= 0 && r.reorder >= e.bound {
		// At the bound exactly: any branch whose action is one more
		// reordering would exceed it, so prune it here. This is the whole
		// reduction — a load past a thread's own buffered stores is the
		// only way the count grows, so cutting these branches cuts every
		// over-bound schedule and nothing else. Sound alongside SleepSets:
		// the skipped drain orders commute, and commuting two drains of
		// different threads never changes any thread's own-buffer
		// occupancy, hence no load's reorder delta.
		for i := range acts {
			if (f.skip == nil || !f.skip[i]) && reorderDelta(m, acts[i]) > 0 {
				if f.skip == nil {
					f.skip = make([]bool, n)
				}
				f.skip[i] = true
				u.res.Prune.ReorderSkips++
				u.res.Prune.SubtreesCut++
			}
		}
	}
	if e.opts.Prune {
		f.key = r.stateKeyFor(m, r.hist, f.sleep)
		f.hashed = true
		u.res.Prune.StatesSeen++
		if e.memo.get(f.key, &r.creditBuf) {
			r.credit = &r.creditBuf
			r.cutHW = machineHWInto(m, r.cutHW)
			r.cut = true
			r.pol.cancel = true
			return 0
		}
	}
	b := f.firstAllowed()
	if b < 0 {
		// Every branch is covered by commuting explorations elsewhere:
		// the node contributes nothing of its own.
		r.cutHW = machineHWInto(m, r.cutHW)
		r.cut = true
		r.pol.cancel = true
		return 0
	}
	if e.bound >= 0 {
		r.reorder += reorderDelta(m, acts[b])
	}
	u.frames = append(u.frames, f)
	u.prefix = append(u.prefix, b)
	u.fanout = append(u.fanout, n)
	r.depth++
	return b
}

// runOne executes one schedule on the runner's reused machine. Returns
// the leaf depth, or cut=true when the run was abandoned at a memoized
// (or fully slept) node, which has already been credited.
func (e *mcEngine) runOne(r *mcRunner, u *mcUnit) (int, bool) {
	r.u = u
	r.depth = 0
	r.mismatch = false
	r.cut = false
	r.credit = nil
	r.reorder = 0
	for i := range r.hist {
		r.hist[i] = fnvOffset
	}
	m := r.m
	m.Reset()
	progs := e.mk(m)
	if r.dp != nil {
		r.dp.begin(m) // after mk: every address is allocated
	}
	err := m.Run(progs...)
	if r.mismatch {
		panic("tso: Explore program is not replay-deterministic (fanout changed under an identical choice prefix)")
	}
	if r.cut {
		if !errors.Is(err, errRunCut) && err != nil && !errors.Is(err, ErrStepLimit) {
			panic(fmt.Sprintf("tso: litmus program failed: %v", err))
		}
		if e.opts.DPOR && errors.Is(err, ErrStepLimit) {
			// A cut run that also hit the step limit still crossed its
			// frames without exhibiting post-horizon races; taint them
			// like any truncated leaf (mcFrame.all).
			for _, f := range u.frames {
				f.all = true
			}
		}
		u.res.Runs++ // the aborted pass-through still ran on a machine
		if r.credit != nil {
			u.res.Prune.StatesDeduped++
			u.res.Prune.SubtreesCut++
			u.res.Prune.SchedulesSaved += r.credit.runs
		}
		acc := &u.acc
		if len(u.frames) > 0 {
			acc = &u.frames[len(u.frames)-1].acc
		}
		acc.foldCredit(r.credit, r.cutHW)
		return r.depth, true
	}

	// A run can end before consuming the whole prefix only on the replay
	// of choices that previously went deeper — which replay determinism
	// rules out — so the depth reached always covers the prefix.
	if r.depth < len(u.prefix) {
		panic("tso: exhaustive engine: run ended inside its replay prefix")
	}
	if e.bound >= 0 && r.reorder > e.bound {
		// The schedule's final action pushed it past the bound with no
		// later choice point to cut at — possible only through positions
		// without skip marking (resumed frames, unit roots). Discard the
		// leaf: it is not part of the bounded schedule set.
		u.res.Runs++
		u.res.Prune.ReorderSkips++
		u.res.Prune.SubtreesCut++
		return r.depth, true
	}
	stepLimited := false
	var o string
	switch {
	case errors.Is(err, ErrStepLimit):
		stepLimited = true
		o = "<step-limit>"
	case err != nil:
		panic(fmt.Sprintf("tso: litmus program failed: %v", err))
	default:
		o = e.outcome(m)
	}
	u.res.Runs++
	if stepLimited {
		u.res.StepLimited++
		if e.opts.DPOR {
			// Bounded-DPOR soundness: the truncated run never exhibited
			// its post-horizon races, so the backtrack sets of the
			// frames it crossed may be missing reversals whose own runs
			// would have completed within the limit. Re-open every
			// branch of every node on its path (mcFrame.all).
			for _, f := range u.frames {
				f.all = true
			}
		}
	}
	acc := &u.acc
	if len(u.frames) > 0 {
		acc = &u.frames[len(u.frames)-1].acc
	}
	r.hw = machineHWInto(m, r.hw)
	acc.addLeaf(o, r.hw, stepLimited)
	return r.depth, false
}

// advance moves the unit's DFS position to the next unexplored branch at
// or below the unit root, finalizing (and memoizing) every node it
// retreats past. It reports false when the unit's subtree is exhausted.
func (e *mcEngine) advance(u *mcUnit, rootLen int) bool {
	if e.opts.DPOR {
		return e.advanceDPOR(u, rootLen)
	}
	for i := len(u.prefix) - 1; i >= rootLen; i-- {
		f := u.frames[i-rootLen]
		if nb := f.nextAllowed(u.prefix[i]); nb >= 0 {
			e.finalizeFrames(u, i+1)
			u.prefix = u.prefix[:i+1]
			u.fanout = u.fanout[:i+1]
			u.prefix[i] = nb
			return true
		}
	}
	e.finalizeFrames(u, rootLen)
	u.complete = true
	return false
}

// finalizeFrames pops every frame at depth >= downTo, publishing complete
// subtrees to the memo table and folding them into their parent.
func (e *mcEngine) finalizeFrames(u *mcUnit, downTo int) {
	for len(u.frames) > 0 {
		f := u.frames[len(u.frames)-1]
		if f.depth < downTo {
			return
		}
		u.frames = u.frames[:len(u.frames)-1]
		if f.hashed && !f.noMemo {
			e.memo.put(f.key, &f.acc)
		}
		if len(u.frames) > 0 {
			u.frames[len(u.frames)-1].acc.fold(&f.acc)
		} else {
			u.acc.fold(&f.acc)
		}
	}
}

// snapshot flushes partial frame accumulators into the unit result (they
// are part of the counts already reported via the checkpoint) and leaves
// prefix/fanout as the resumable position. Nothing is memoized: the
// flushed subtrees are incomplete. DPOR frames additionally deposit
// their explored-branch bitmasks in doneMask so the checkpoint can
// restore them — without this, an out-of-order backtrack schedule would
// make the resumed ascending sweep unsound.
func (u *mcUnit) snapshot() {
	rootLen := len(u.root)
	for len(u.frames) > 0 {
		f := u.frames[len(u.frames)-1]
		u.frames = u.frames[:len(u.frames)-1]
		if f.done != nil {
			if u.doneMask == nil {
				u.doneMask = make([]uint64, len(u.prefix)-rootLen)
			}
			if di := f.depth - rootLen; di >= 0 && di < len(u.doneMask) {
				u.doneMask[di] = doneMaskOf(f.done)
			}
		}
		if len(u.frames) > 0 {
			u.frames[len(u.frames)-1].acc.fold(&f.acc)
		} else {
			u.acc.fold(&f.acc)
		}
	}
}
