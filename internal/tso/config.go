package tso

import (
	"errors"
	"fmt"
)

// Addr addresses a 64-bit word of simulated shared memory.
type Addr int

// MemoryModel selects the abstract machine's reordering rules.
type MemoryModel int

const (
	// ModelTSO is the paper's model: the store buffer drains in FIFO
	// order, so only store→load reordering is possible.
	ModelTSO MemoryModel = iota
	// ModelPSO weakens the drain rule to per-address FIFO: stores to
	// *different* addresses may reach memory out of program order
	// (store→store reordering), as on SPARC PSO. The paper poses the
	// weak-model question as future work (§10); this mode exists to
	// demonstrate concretely that the fence-free queues depend on TSO —
	// under PSO a put()'s task store can drain after its tail-index
	// store, letting a thief steal garbage. Supported by the chaos
	// engine only, and not combinable with DrainBuffer.
	ModelPSO
)

func (m MemoryModel) String() string {
	if m == ModelPSO {
		return "PSO"
	}
	return "TSO"
}

// Config describes an abstract TSO[S] machine.
type Config struct {
	// Threads is the number of hardware threads. Run must be called with
	// exactly this many programs.
	Threads int

	// BufferSize is S, the number of store-buffer entries per thread.
	// Must be >= 1.
	BufferSize int

	// DrainBuffer enables the §7.3 post-retirement drain stage: draining
	// moves the oldest store-buffer entry into a one-entry stage B before
	// it reaches memory, and a drained store to the address currently held
	// in B overwrites it (same-address coalescing). With this enabled the
	// observable reordering bound is S+1, and a run of back-to-back stores
	// to a single location can hide unboundedly many stores — the L=0
	// failure mode of Figure 8b.
	DrainBuffer bool

	// MemWords is the initial size of simulated memory in 64-bit words.
	// Alloc grows memory on demand, so this is only a pre-sizing hint.
	MemWords int

	// Seed seeds the chaos engine's scheduler RNG. Runs with equal seeds
	// and equal programs produce identical schedules.
	Seed int64

	// DrainBias is the probability in [0,1] that a chaos-engine step
	// drains a store-buffer entry rather than letting a thread act, when
	// both choices are available. Low values starve drains and maximize
	// store/load reordering; high values approach sequential consistency.
	// The default (0) is replaced by 0.5.
	DrainBias float64

	// MaxSteps bounds the number of chaos-engine steps before Run gives up
	// and reports ErrStepLimit; this converts livelock and deadlock into a
	// diagnosable failure. The default (0) is replaced by 50 million.
	MaxSteps int64

	// Model selects TSO (default) or PSO drain rules; see MemoryModel.
	Model MemoryModel

	// SMT makes the timed engine treat threads 2i and 2i+1 as
	// hyperthreads sharing core i: their instruction-issue cycles
	// serialize on a per-core clock, but *stall* cycles (a fence or
	// buffer-full wait, a CAS's implicit drain wait) consume no core
	// issue, so the sibling runs during them. This reproduces §8.1's
	// hyperthreading observation — the processor schedules one
	// hyperthread while its sibling stalls on a fence, shrinking the
	// benefit of removing the fence. Threads must be even. Ignored by the
	// chaos engine (which has no notion of time).
	SMT bool

	// Cost is the timed engine's cycle model. Zero fields take defaults.
	Cost CostModel

	// Metrics enables the per-thread metric series (occupancy histograms,
	// stall costs, drain latency; see MachineMetrics). Off by default:
	// with Metrics unset every instrumentation point is a nil check, so
	// the figures' hot paths pay nothing for the observability layer.
	Metrics bool
}

// CostModel assigns virtual-cycle costs to the timed engine's actions.
type CostModel struct {
	// LoadCycles is the cost of a load (≥ 1 so spin loops make progress).
	LoadCycles uint64
	// StoreCycles is the cost of issuing a store (buffer-entry occupancy
	// and drain latency are charged separately).
	StoreCycles uint64
	// DrainCycles is the latency for one store-buffer entry to be written
	// to the memory subsystem (roughly an L1 store-to-visible latency).
	DrainCycles uint64
	// DrainThroughputCycles is the minimum spacing between consecutive
	// drain completions: drains are pipelined, so a burst of k stores
	// becomes visible DrainCycles + (k-1)×DrainThroughputCycles after
	// issue, not k×DrainCycles. A fence behind a burst therefore waits
	// latency plus the pipelined tail, matching how mfence behaves behind
	// a store burst on real cores. Zero means fully parallel drains.
	DrainThroughputCycles uint64
	// FenceCycles is the fixed cost of a fence, paid after waiting for the
	// store buffer to empty.
	FenceCycles uint64
	// CASCycles is the fixed cost of an atomic read-modify-write, paid
	// after the implicit drain of the issuing thread's store buffer.
	CASCycles uint64
}

// DefaultCost is the cost model used when Config.Cost is zero. The ratios
// (drain ≈ 12× a load, CAS ≈ 2× a drain) are chosen so that, as on the
// paper's Westmere-EX/Haswell machines, a take()-path fence costs tens of
// cycles while loads and stores cost ~1, reproducing Figure 1's 3–25%
// single-thread fence overhead across task granularities.
var DefaultCost = CostModel{
	LoadCycles:            1,
	StoreCycles:           1,
	DrainCycles:           12,
	DrainThroughputCycles: 2,
	FenceCycles:           3,
	CASCycles:             24,
}

const (
	defaultMemWords = 1 << 16
	defaultMaxSteps = 50_000_000
	defaultDrain    = 0.5
)

// ErrStepLimit is returned by Machine.Run when the schedule exceeds
// Config.MaxSteps, which indicates livelock or deadlock in the simulated
// program (for example, a THEP thief waiting for a worker that never comes).
var ErrStepLimit = errors.New("tso: step limit exceeded (livelock or deadlock)")

// errRunCut is returned by Machine.Run when the installed policy cancelled
// the schedule mid-run. Only the exhaustive engine's pruning path produces
// it, and it never escapes the tso package.
var errRunCut = errors.New("tso: run cut by the exploration engine")

func (c Config) withDefaults() (Config, error) {
	if c.Threads < 1 {
		return c, fmt.Errorf("tso: config needs at least 1 thread, got %d", c.Threads)
	}
	if c.BufferSize < 1 {
		return c, fmt.Errorf("tso: store buffer size must be >= 1, got %d", c.BufferSize)
	}
	if c.DrainBias < 0 || c.DrainBias > 1 {
		return c, fmt.Errorf("tso: drain bias %v outside [0,1]", c.DrainBias)
	}
	if c.Model == ModelPSO && c.DrainBuffer {
		return c, fmt.Errorf("tso: the drain-stage model is defined for TSO only")
	}
	if c.SMT && c.Threads%2 != 0 {
		return c, fmt.Errorf("tso: SMT needs an even thread count, got %d", c.Threads)
	}
	if c.MemWords <= 0 {
		c.MemWords = defaultMemWords
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = defaultMaxSteps
	}
	if c.DrainBias == 0 {
		c.DrainBias = defaultDrain
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCost
	}
	if c.Cost.LoadCycles == 0 {
		c.Cost.LoadCycles = 1
	}
	return c, nil
}

// ObservableBound returns the bound on store/load reordering that the
// configured machine actually exhibits: S, or S+1 when the drain-stage
// buffer B is enabled (§7.3, "B observably behaves as an additional store
// buffer entry"). Code that derives δ for the fence-free queues must use
// this value, not BufferSize — conflating the two is exactly the Figure 8a
// mistake.
func (c Config) ObservableBound() int {
	if c.DrainBuffer {
		return c.BufferSize + 1
	}
	return c.BufferSize
}

// WestmereEX returns the machine configuration modelling the paper's Intel
// Xeon E7-4870: 10 cores, a documented 32-entry store buffer, and the drain
// stage that makes the measured reordering bound S = 33 (§7.3, §8).
func WestmereEX() Config {
	return Config{Threads: 10, BufferSize: 32, DrainBuffer: true}
}

// Haswell returns the machine configuration modelling the paper's Intel
// Core i7-4770: 4 cores, a documented 42-entry store buffer, and a measured
// reordering bound S = 43 (§8).
func Haswell() Config {
	return Config{Threads: 4, BufferSize: 42, DrainBuffer: true}
}

// Stats aggregates per-thread event counts recorded by either engine.
type Stats struct {
	Loads        int64 // loads executed
	Stores       int64 // stores issued
	Fences       int64 // fences executed
	CASes        int64 // atomic read-modify-writes executed
	Drains       int64 // store-buffer entries written toward memory
	Coalesces    int64 // drain-stage same-address coalesces (DrainBuffer)
	ForwardLoads int64 // loads satisfied from the issuing thread's buffer
	MaxOccupancy int   // high-water mark of buffered stores (incl. stage B)
	Steps        int64 // chaos-engine scheduling steps taken
}

func (s *Stats) add(o Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.Fences += o.Fences
	s.CASes += o.CASes
	s.Drains += o.Drains
	s.Coalesces += o.Coalesces
	s.ForwardLoads += o.ForwardLoads
	if o.MaxOccupancy > s.MaxOccupancy {
		s.MaxOccupancy = o.MaxOccupancy
	}
	s.Steps += o.Steps
}
