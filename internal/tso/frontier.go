package tso

// This file is the frontier layer of the exhaustive engine: it partitions
// the decision tree into choice-prefix work units, drives them across a
// worker pool, merges their results deterministically, and serializes the
// unexplored remainder as a resumable Checkpoint.

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Checkpoint is the serialized unexplored frontier of an exhaustive
// exploration that stopped at its run budget: everything accounted so far
// (outcome counts, occupancy high-water marks, tree/prune statistics) plus
// the resumable position of every unfinished work unit. It round-trips
// through the binary wire format via Encode/DecodeCheckpoint (codec.go);
// legacy JSON spools stay decodable through the same DecodeCheckpoint.
type Checkpoint struct {
	Version      int              `json:"version"`
	Threads      int              `json:"threads"`
	BufferSize   int              `json:"buffer_size"`
	Model        string           `json:"model"`
	DrainBuffer  bool             `json:"drain_buffer,omitempty"`
	// Label is an optional caller tag (tsoexplore stamps its phase name)
	// checked at resume when both sides set one, so two explorations
	// spooling under one path prefix cannot silently swap frontiers.
	Label string `json:"label,omitempty"`
	// Reorder is the reorder bound the exploration ran under (0:
	// unbounded — the only value legacy checkpoints carry). Resume
	// requires the same bound: a frontier pruned at k is not a valid
	// position of any other exploration.
	Reorder int `json:"reorder,omitempty"`
	// DPOR records whether the exploration ran under source-set DPOR
	// (always false in legacy checkpoints). Resume requires agreement:
	// a DPOR frontier's unexplored remainder is meaningful only with
	// the per-unit Done masks and vice versa.
	DPOR         bool             `json:"dpor,omitempty"`
	Runs         int              `json:"runs"`
	StepLimited  int              `json:"step_limited,omitempty"`
	Counts       map[string]int   `json:"counts"`
	MaxOccupancy []int            `json:"max_occupancy"`
	Tree         TreeStats        `json:"tree"`
	Prune        PruneStats       `json:"prune"`
	Units        []UnitCheckpoint `json:"units"`
}

// UnitCheckpoint is the resumable position of one work unit: the unit's
// root choice prefix and, when the unit had started, the full DFS path to
// its next unexplored branch (with the recorded fanouts for the
// replay-determinism check).
type UnitCheckpoint struct {
	Root       []int `json:"root,omitempty"`
	RootFanout []int `json:"root_fanout,omitempty"`
	Prefix     []int `json:"prefix,omitempty"`
	Fanout     []int `json:"fanout,omitempty"`
	// Done is DPOR mode's per-frame explored-branch bitmask, one per
	// prefix depth past the unit root. DPOR backtracking visits
	// branches out of ascending order, so "everything before the
	// current choice" does not describe what finished; these masks do.
	Done []uint64 `json:"done,omitempty"`
}

// Encode writes the checkpoint in the default wire format (the binary
// codec; see codec.go). DecodeCheckpoint reads it back — and still reads
// the legacy JSON format older spools hold.
func (cp *Checkpoint) Encode(w io.Writer) error {
	return DefaultCodec.EncodeCheckpoint(w, cp)
}

// EncodeJSON writes the checkpoint in the legacy indented-JSON wire
// format — for human inspection and for exercising the migration path;
// new spools should use Encode.
func (cp *Checkpoint) EncodeJSON(w io.Writer) error {
	return JSONCodec{}.EncodeCheckpoint(w, cp)
}

// Validate checks the checkpoint's structural integrity independent of
// any machine configuration: a supported version, a known memory-model
// string, non-negative progress counters, and per-unit choice prefixes
// whose recorded fanouts are consistent (every choice within its fanout,
// resume paths extending their unit root). It does not check that the
// checkpoint matches a particular Config — resume does that — only that
// the frontier is a well-formed tree position at all.
func (cp *Checkpoint) Validate() error {
	if cp.Version != 1 {
		return fmt.Errorf("tso: unsupported checkpoint version %d", cp.Version)
	}
	if cp.Threads < 1 {
		return fmt.Errorf("tso: checkpoint needs at least 1 thread, got %d", cp.Threads)
	}
	if cp.BufferSize < 1 {
		return fmt.Errorf("tso: checkpoint store-buffer size must be >= 1, got %d", cp.BufferSize)
	}
	switch cp.Model {
	case ModelTSO.String(), ModelPSO.String():
	default:
		return fmt.Errorf("tso: checkpoint names unknown memory model %q", cp.Model)
	}
	if cp.Reorder < 0 {
		return fmt.Errorf("tso: checkpoint has negative reorder bound %d", cp.Reorder)
	}
	if cp.Runs < 0 {
		return fmt.Errorf("tso: checkpoint has negative run count %d", cp.Runs)
	}
	if cp.StepLimited < 0 {
		return fmt.Errorf("tso: checkpoint has negative step-limited count %d", cp.StepLimited)
	}
	for o, n := range cp.Counts {
		if n < 0 {
			return fmt.Errorf("tso: checkpoint counts outcome %q %d times", o, n)
		}
	}
	if len(cp.MaxOccupancy) != cp.Threads {
		return fmt.Errorf("tso: checkpoint records occupancy for %d threads, config says %d", len(cp.MaxOccupancy), cp.Threads)
	}
	for i, u := range cp.Units {
		if err := u.validate(); err != nil {
			return fmt.Errorf("tso: checkpoint unit %d: %w", i, err)
		}
	}
	return nil
}

// validate checks one work unit's positions: paired choice/fanout
// lengths, every choice within its recorded fanout, and a resume prefix
// that extends the unit root it belongs to.
func (uc *UnitCheckpoint) validate() error {
	if len(uc.Root) != len(uc.RootFanout) {
		return fmt.Errorf("root has %d choices but %d fanouts", len(uc.Root), len(uc.RootFanout))
	}
	for d, b := range uc.Root {
		if uc.RootFanout[d] < 1 || b < 0 || b >= uc.RootFanout[d] {
			return fmt.Errorf("root choice %d at depth %d outside fanout %d", b, d, uc.RootFanout[d])
		}
	}
	if len(uc.Prefix) != len(uc.Fanout) {
		return fmt.Errorf("prefix has %d choices but %d fanouts", len(uc.Prefix), len(uc.Fanout))
	}
	if len(uc.Prefix) == 0 {
		return nil
	}
	if len(uc.Prefix) < len(uc.Root) {
		return fmt.Errorf("resume prefix (%d choices) shorter than unit root (%d)", len(uc.Prefix), len(uc.Root))
	}
	for d := range uc.Root {
		if uc.Prefix[d] != uc.Root[d] || uc.Fanout[d] != uc.RootFanout[d] {
			return fmt.Errorf("resume prefix diverges from unit root at depth %d", d)
		}
	}
	for d, b := range uc.Prefix {
		if uc.Fanout[d] < 1 || b < 0 || b >= uc.Fanout[d] {
			return fmt.Errorf("prefix choice %d at depth %d outside fanout %d", b, d, uc.Fanout[d])
		}
	}
	if len(uc.Done) > 0 {
		if len(uc.Done) != len(uc.Prefix)-len(uc.Root) {
			return fmt.Errorf("unit has %d done-masks for %d resumable depths",
				len(uc.Done), len(uc.Prefix)-len(uc.Root))
		}
		for di, mask := range uc.Done {
			fan := uc.Fanout[len(uc.Root)+di]
			if fan < 64 && mask>>fan != 0 {
				return fmt.Errorf("done-mask %#x at depth %d marks branches past fanout %d",
					mask, len(uc.Root)+di, fan)
			}
		}
	}
	return nil
}

// CompatibleWith reports whether the checkpoint can be resumed under the
// configuration — same thread count, buffer size, memory model and drain
// stage — so callers holding externally supplied checkpoints (a spool
// directory, a wire request) can reject mismatches gracefully instead of
// panicking inside ExploreExhaustive.
func (cp *Checkpoint) CompatibleWith(c Config) error {
	cd, err := c.withDefaults()
	if err != nil {
		return err
	}
	return cp.validate(cd)
}

// CompatibleWithOptions extends CompatibleWith with the exploration
// options resume additionally requires agreement on: the reorder bound
// the frontier was pruned under, and the phase label when both sides
// carry one. The same graceful-rejection contract: callers holding
// externally supplied checkpoints check here instead of panicking
// inside ExploreExhaustive.
func (cp *Checkpoint) CompatibleWithOptions(c Config, o ExhaustiveOptions) error {
	if err := cp.CompatibleWith(c); err != nil {
		return err
	}
	return cp.validateOptions(o.withDefaults())
}

// Resume-refusal sentinels. Each axis resume must agree on gets its own
// sentinel so callers (and the mutation-matrix test) can tell exactly
// which mismatch refused a frontier; wrap-compare with errors.Is.
var (
	// ErrResumeReorder: the checkpoint's reorder bound differs from the
	// resuming options'.
	ErrResumeReorder = errors.New("tso: checkpoint reorder bound mismatch")
	// ErrResumeDPOR: the checkpoint's DPOR mode differs from the
	// resuming options'.
	ErrResumeDPOR = errors.New("tso: checkpoint DPOR mode mismatch")
	// ErrResumeLabel: both sides carry a phase label and they differ.
	ErrResumeLabel = errors.New("tso: checkpoint label mismatch")
)

// validateOptions rejects resuming under options the frontier was not
// explored with. o must be defaulted.
func (cp *Checkpoint) validateOptions(o ExhaustiveOptions) error {
	want := 0
	if o.MaxReorderings > 0 {
		want = o.MaxReorderings
	}
	if cp.Reorder != want {
		name := func(k int) string {
			if k == 0 {
				return "unbounded"
			}
			return fmt.Sprintf("k=%d", k)
		}
		return fmt.Errorf("%w: checkpoint was explored with reorder bound %s, options say %s",
			ErrResumeReorder, name(cp.Reorder), name(want))
	}
	if cp.DPOR != o.DPOR {
		name := func(b bool) string {
			if b {
				return "source-set DPOR"
			}
			return "no DPOR"
		}
		return fmt.Errorf("%w: checkpoint was explored with %s, options say %s",
			ErrResumeDPOR, name(cp.DPOR), name(o.DPOR))
	}
	if cp.Label != "" && o.Label != "" && cp.Label != o.Label {
		return fmt.Errorf("%w: checkpoint is labeled %q, options say %q",
			ErrResumeLabel, cp.Label, o.Label)
	}
	return nil
}

// validate rejects resuming under a configuration that would make the
// checkpointed prefixes meaningless.
func (cp *Checkpoint) validate(c Config) error {
	switch {
	case cp.Threads != c.Threads:
		return fmt.Errorf("tso: checkpoint is for %d threads, config has %d", cp.Threads, c.Threads)
	case cp.BufferSize != c.BufferSize:
		return fmt.Errorf("tso: checkpoint is for S=%d, config has S=%d", cp.BufferSize, c.BufferSize)
	case cp.Model != c.Model.String():
		return fmt.Errorf("tso: checkpoint is for %s, config is %s", cp.Model, c.Model)
	case cp.DrainBuffer != c.DrainBuffer:
		return fmt.Errorf("tso: checkpoint and config disagree on the drain stage")
	}
	return nil
}

// ExploreExhaustive is the scalable counterpart of ExploreOutcomes: the
// same enumeration of every schedule of the program built by mkProgs,
// restructured as parallel, pruned, resumable model checking (see mc.go
// for the pruning mechanics and their soundness arguments).
//
// With opts at its zero value the result is equivalent to ExploreOutcomes;
// with Prune set the outcome counts are still byte-identical while Runs —
// the schedules actually executed — shrinks by the memoized subtrees. Like
// ExploreOutcomes it panics on a program failure, and buckets step-limited
// schedules under "<step-limit>".
//
// With Parallel > 1, mkProgs and outcome run concurrently on distinct
// machines and must not write shared captured state. Frontier-splitting
// probe runs are not charged against MaxRuns.
func ExploreExhaustive(cfg Config, mkProgs func(m *Machine) []func(Context), outcome func(m *Machine) string, opts ExhaustiveOptions) (OutcomeSet, ExploreResult) {
	c, err := cfg.withDefaults()
	if err != nil {
		panic(err)
	}
	o := opts.withDefaults()
	if o.DPOR {
		if err := dporCheck(c, o); err != nil {
			panic(err)
		}
	}
	e := &mcEngine{cfg: c, mk: mkProgs, outcome: outcome, opts: o, bound: o.MaxReorderings}
	if o.Prune {
		e.memo = newMemoTable(o.MemoStripes, o.MemoLimit)
	}

	set := OutcomeSet{Counts: map[string]int{}, MaxOccupancy: make([]int, c.Threads)}
	var agg ExploreResult
	var units []*mcUnit
	if o.Resume != nil {
		if err := o.Resume.validate(c); err != nil {
			panic(err)
		}
		if err := o.Resume.validateOptions(o); err != nil {
			panic(err)
		}
		for k, v := range o.Resume.Counts {
			set.Counts[k] += v
		}
		for i, v := range o.Resume.MaxOccupancy {
			if i < len(set.MaxOccupancy) && v > set.MaxOccupancy[i] {
				set.MaxOccupancy[i] = v
			}
		}
		agg.Runs = o.Resume.Runs
		agg.StepLimited = o.Resume.StepLimited
		agg.Tree = o.Resume.Tree
		agg.Prune = o.Resume.Prune
		for _, uc := range o.Resume.Units {
			u := &mcUnit{
				root:    append([]int(nil), uc.Root...),
				rootFan: append([]int(nil), uc.RootFanout...),
			}
			if len(uc.Prefix) > 0 {
				u.prefix = append([]int(nil), uc.Prefix...)
				u.fanout = append([]int(nil), uc.Fanout...)
				u.resumed = true
				u.doneMask = append([]uint64(nil), uc.Done...)
			}
			units = append(units, u)
		}
	} else {
		units = e.split()
		agg.Tree.merge(e.splitTree)
	}

	if o.Interrupt != nil {
		// The watcher translates external interruption (a signal handler,
		// a server drain) into the same stop the run budget uses: workers
		// notice at their next run boundary and snapshot their units. An
		// interrupt already pending here is honored synchronously so no
		// worker executes a single run.
		select {
		case <-o.Interrupt:
			e.stopped.Store(true)
		default:
			watchDone := make(chan struct{})
			defer close(watchDone)
			go func() {
				select {
				case <-o.Interrupt:
					e.stopped.Store(true)
				case <-watchDone:
				}
			}()
		}
	}

	workers := o.Parallel
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicVal = p })
					e.stopped.Store(true)
				}
			}()
			// Each worker reuses one machine (and its policy, history
			// hashes and scratch) for every schedule it executes.
			r := e.newRunner()
			defer r.m.Close()
			for {
				i := int(next.Add(1))
				if i >= len(units) || e.stopped.Load() {
					return
				}
				e.exploreUnit(r, units[i])
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}

	complete := true
	for _, u := range units {
		for k, v := range u.acc.counts {
			set.Counts[k] += v
		}
		for i, v := range u.acc.maxOcc {
			if v > set.MaxOccupancy[i] {
				set.MaxOccupancy[i] = v
			}
		}
		agg.Runs += u.res.Runs
		agg.StepLimited += u.res.StepLimited
		agg.Tree.merge(u.res.Tree)
		agg.Prune.merge(u.res.Prune)
		if !u.complete {
			complete = false
		}
	}
	agg.Complete = complete
	if e.memo != nil {
		agg.Memo = e.memo.stats()
	}
	if !complete {
		agg.Checkpoint = buildCheckpoint(c, o, units, set, agg)
	}
	set.res = agg
	return set, agg
}

func buildCheckpoint(c Config, o ExhaustiveOptions, units []*mcUnit, set OutcomeSet, agg ExploreResult) *Checkpoint {
	reorder := 0
	if o.MaxReorderings > 0 {
		reorder = o.MaxReorderings
	}
	cp := &Checkpoint{
		Version:      1,
		Threads:      c.Threads,
		BufferSize:   c.BufferSize,
		Model:        c.Model.String(),
		DrainBuffer:  c.DrainBuffer,
		Label:        o.Label,
		Reorder:      reorder,
		DPOR:         o.DPOR,
		Runs:         agg.Runs,
		StepLimited:  agg.StepLimited,
		Counts:       map[string]int{},
		MaxOccupancy: append([]int(nil), set.MaxOccupancy...),
		Tree:         agg.Tree,
		Prune:        agg.Prune,
	}
	for k, v := range set.Counts {
		cp.Counts[k] = v
	}
	for _, u := range units {
		if u.complete {
			continue
		}
		uc := UnitCheckpoint{Root: u.root, RootFanout: u.rootFan}
		if u.started {
			uc.Prefix = u.prefix
			uc.Fanout = u.fanout
			uc.Done = u.doneMask
		} else if u.resumed {
			// Never picked up in this slice: its resumed position (and
			// DPOR masks) carry over unchanged.
			uc.Prefix = u.prefix
			uc.Fanout = u.fanout
			uc.Done = u.doneMask
		}
		cp.Units = append(cp.Units, uc)
	}
	return cp
}

// probeFanout executes one throwaway schedule on m (Reset here) replaying
// root and reports the fanout of the first choice past it (0 when the run
// ends first). Its outcome is discarded — the node's subtree belongs to
// exactly the units split from it.
func (e *mcEngine) probeFanout(m *Machine, root, rootFan []int) int {
	depth := 0
	fan := 0
	mismatch := false
	m.Reset()
	m.pol = &chooserPolicy{choose: func(acts []action) int {
		d := depth
		depth++
		if d < len(root) {
			if rootFan[d] != len(acts) {
				mismatch = true
			}
			return root[d]
		}
		if d == len(root) {
			fan = len(acts)
		}
		return 0
	}}
	err := m.Run(e.mk(m)...)
	if mismatch {
		panic("tso: Explore program is not replay-deterministic (fanout changed under an identical choice prefix)")
	}
	if err != nil && !errors.Is(err, ErrStepLimit) {
		panic(fmt.Sprintf("tso: litmus program failed: %v", err))
	}
	return fan
}

// split partitions the decision tree into roughly opts.Units work units by
// breadth-first probe runs: a node with fanout f is replaced by its f
// child prefixes until the target is met. The resulting unit roots
// partition the tree's schedules exactly, so merging unit results never
// double-counts. Choice points consumed by splitting are recorded in
// e.splitTree to keep the reported tree statistics whole.
func (e *mcEngine) split() []*mcUnit {
	type pend struct{ root, fan []int }
	// A defensive ceiling: past this depth a chain is cheaper to explore
	// than to keep probing.
	const maxSplitDepth = 64
	q := []pend{{nil, nil}}
	var done []*mcUnit
	// One machine serves every probe; splitting is sequential. Created
	// lazily so single-unit explorations pay nothing here.
	var pm *Machine
	defer func() {
		if pm != nil {
			pm.Close()
		}
	}()
	for len(q) > 0 && len(q)+len(done) < e.opts.Units {
		p := q[0]
		q = q[1:]
		if len(p.root) >= maxSplitDepth {
			done = append(done, &mcUnit{root: p.root, rootFan: p.fan})
			continue
		}
		if pm == nil {
			c := e.cfg
			c.MaxSteps = e.opts.MaxStepsPerRun
			pm = NewMachine(c)
		}
		fan := e.probeFanout(pm, p.root, p.fan)
		if fan < 2 {
			done = append(done, &mcUnit{root: p.root, rootFan: p.fan})
			continue
		}
		e.splitTree.node(len(p.root), fan)
		for b := 0; b < fan; b++ {
			q = append(q, pend{
				root: append(append([]int(nil), p.root...), b),
				fan:  append(append([]int(nil), p.fan...), fan),
			})
		}
	}
	for _, p := range q {
		done = append(done, &mcUnit{root: p.root, rootFan: p.fan})
	}
	return done
}
