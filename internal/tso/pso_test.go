package tso

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func quickCheck(f func(int64) bool, n int) error {
	return quick.Check(f, &quick.Config{MaxCount: n})
}

// The paper's §10 asks how bounded reordering extends to weaker memory
// models. ModelPSO answers one direction concretely: relaxing the drain
// rule to per-address FIFO (store→store reordering, as on SPARC PSO)
// invalidates the FIFO-publication argument every queue in the paper
// relies on. These tests pin the model's semantics.

func TestPSORejectsDrainStage(t *testing.T) {
	if _, err := (Config{Threads: 1, BufferSize: 2, Model: ModelPSO, DrainBuffer: true}).withDefaults(); err == nil {
		t.Fatal("PSO with drain stage accepted")
	}
}

func TestPSOTimedEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("timed engine accepted PSO")
		}
	}()
	NewTimedMachine(Config{Threads: 1, BufferSize: 2, Model: ModelPSO})
}

func TestModelString(t *testing.T) {
	if ModelTSO.String() != "TSO" || ModelPSO.String() != "PSO" {
		t.Fatal("model names wrong")
	}
}

// TestExploreMessagePassingBreaksUnderPSO: the flag=1,data=0 outcome that
// TSO forbids (and TestExploreMessagePassing proves unreachable) becomes
// reachable once stores to different addresses can drain out of order.
func TestExploreMessagePassingBreaksUnderPSO(t *testing.T) {
	var x, y, r0a, r1a Addr
	mk := func(m *Machine) []func(Context) {
		x, y = m.Alloc(1), m.Alloc(1)
		r0a, r1a = m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) {
				c.Store(x, 1) // data
				c.Store(y, 1) // flag
			},
			func(c Context) {
				r0 := c.Load(y)
				r1 := c.Load(x)
				c.Store(r0a, r0)
				c.Store(r1a, r1)
			},
		}
	}
	out := func(m *Machine) string {
		return fmt.Sprintf("flag=%d data=%d", m.Peek(r0a), m.Peek(r1a))
	}
	set, res := ExploreOutcomes(Config{Threads: 2, BufferSize: 2, Model: ModelPSO}, mk, out, ExploreOptions{})
	if !res.Complete {
		t.Fatalf("incomplete after %d runs", res.Runs)
	}
	if !set.Has("flag=1 data=0") {
		t.Fatalf("PSO did not exhibit store-store reordering: %v", set.Counts)
	}
}

// TestPSOPreservesPerAddressOrder: coherence still holds — a single
// location's values are observed in store order.
func TestPSOPreservesPerAddressOrder(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := NewMachine(Config{Threads: 2, BufferSize: 3, Model: ModelPSO, Seed: seed, DrainBias: 0.2})
		x := m.Alloc(1)
		var obs []uint64
		err := m.Run(
			func(c Context) {
				for i := uint64(1); i <= 60; i++ {
					c.Store(x, i)
				}
			},
			func(c Context) {
				for i := 0; i < 120; i++ {
					obs = append(obs, c.Load(x))
				}
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(obs); i++ {
			if obs[i] < obs[i-1] {
				t.Fatalf("seed %d: per-address order violated: %d after %d", seed, obs[i], obs[i-1])
			}
		}
	}
}

// TestPSOReadOwnWriteStillHolds: forwarding is program-order regardless of
// drain order.
func TestPSOReadOwnWriteStillHolds(t *testing.T) {
	m := NewMachine(Config{Threads: 1, BufferSize: 4, Model: ModelPSO, Seed: 1, DrainBias: 0.05})
	x, y := m.Alloc(1), m.Alloc(1)
	err := m.Run(func(c Context) {
		c.Store(x, 1)
		c.Store(y, 2)
		c.Store(x, 3)
		if c.Load(x) != 3 || c.Load(y) != 2 {
			panic("read-own-write broken under PSO")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPSOFenceRestoresOrder: with a fence between the data and flag
// stores, message passing is safe again even under PSO.
func TestPSOFenceRestoresOrder(t *testing.T) {
	var x, y, r0a, r1a Addr
	mk := func(m *Machine) []func(Context) {
		x, y = m.Alloc(1), m.Alloc(1)
		r0a, r1a = m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) {
				c.Store(x, 1)
				c.Fence()
				c.Store(y, 1)
			},
			func(c Context) {
				r0 := c.Load(y)
				r1 := c.Load(x)
				c.Store(r0a, r0)
				c.Store(r1a, r1)
			},
		}
	}
	out := func(m *Machine) string {
		return fmt.Sprintf("flag=%d data=%d", m.Peek(r0a), m.Peek(r1a))
	}
	set, res := ExploreOutcomes(Config{Threads: 2, BufferSize: 2, Model: ModelPSO}, mk, out, ExploreOptions{})
	if !res.Complete {
		t.Fatalf("incomplete after %d runs", res.Runs)
	}
	if set.Has("flag=1 data=0") {
		t.Fatalf("fenced MP still broken under PSO: %v", set.Counts)
	}
}

// TestEligibleDrains pins the buffer-side rule: one candidate per distinct
// address, oldest first.
func TestEligibleDrains(t *testing.T) {
	b := newStoreBuffer(8, false)
	b.push(entry{addr: 1, val: 10})
	b.push(entry{addr: 2, val: 20})
	b.push(entry{addr: 1, val: 11})
	b.push(entry{addr: 3, val: 30})
	el := b.eligibleDrains()
	want := []int{0, 1, 3}
	if len(el) != len(want) {
		t.Fatalf("eligible = %v want %v", el, want)
	}
	for i := range want {
		if el[i] != want[i] {
			t.Fatalf("eligible = %v want %v", el, want)
		}
	}
	mem := newMemory(8)
	b.drainAt(mem, 1) // drain the store to address 2 first
	if mem.read(2) != 20 || mem.read(1) != 0 {
		t.Fatal("drainAt wrote the wrong entry")
	}
	if got := b.eligibleDrains(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("eligible after drain = %v", got)
	}
}

// TestQuickPSOFinalState: whatever the drain order, the final memory value
// of each address is that address's newest store (per-address FIFO), for
// random single-thread programs.
func TestQuickPSOFinalState(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		m := NewMachine(Config{Threads: 1, BufferSize: 3, Model: ModelPSO, Seed: seed, DrainBias: 0.2})
		base := m.Alloc(6)
		want := map[Addr]uint64{}
		type op struct {
			addr Addr
			val  uint64
		}
		var ops []op
		for i := 0; i < 150; i++ {
			o := op{addr: Addr(r.Intn(6)), val: uint64(r.Intn(1000)) + 1}
			ops = append(ops, o)
			want[o.addr] = o.val
		}
		if err := m.Run(func(c Context) {
			for _, o := range ops {
				c.Store(base+o.addr, o.val)
			}
		}); err != nil {
			return false
		}
		for a, v := range want {
			if m.Peek(base+a) != v {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f, 60); err != nil {
		t.Fatal(err)
	}
}
