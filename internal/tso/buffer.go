package tso

// entry is one buffered store: a (64-bit address, 64-bit data) pair, exactly
// the store-buffer entry of the x86-TSO abstract machine, annotated with
// the engine timestamps the unified core's policies and metrics need.
type entry struct {
	addr Addr
	val  uint64
	done uint64 // timed policy: virtual time at which the store reaches memory
	born uint64 // issue time (virtual cycles) or issue step (chaos), for drain-latency metrics
}

// storeBuffer is a bounded FIFO store buffer, optionally extended with the
// §7.3 post-retirement drain stage B. Entries enter at the tail on a store
// and leave from the head on a drain; with the stage enabled, a drained
// entry first moves into B and only reaches memory on a subsequent drain,
// unless the next drained entry targets the same address, in which case it
// overwrites B (same-address coalescing).
type storeBuffer struct {
	cap      int // S: capacity of the entries FIFO proper
	entries  []entry
	stage    entry // valid iff hasStage; older than every entries element
	hasStage bool
	useStage bool // Config.DrainBuffer

	// instrumentation
	drains    int64
	coalesces int64
	maxOcc    int

	// onDrain, when non-nil, observes every entry that reaches memory
	// (coalesced-away entries excluded). Set only when Config.Metrics is
	// enabled, so the common path pays one nil check.
	onDrain func(entry)
}

func newStoreBuffer(capacity int, drainStage bool) *storeBuffer {
	return &storeBuffer{
		cap:      capacity,
		entries:  make([]entry, 0, capacity),
		useStage: drainStage,
	}
}

// occupancy is the number of stores not yet globally visible, counting the
// drain stage. This is the quantity the TSO[S] reordering bound caps.
func (b *storeBuffer) occupancy() int {
	n := len(b.entries)
	if b.hasStage {
		n++
	}
	return n
}

// empty reports whether every issued store has reached memory. Fences and
// atomic operations require this.
func (b *storeBuffer) empty() bool {
	return len(b.entries) == 0 && !b.hasStage
}

// full reports whether a new store would not fit in the FIFO proper. Per
// §7.1 a store that finds the buffer full stalls the pipeline until an
// entry drains.
func (b *storeBuffer) full() bool {
	return len(b.entries) >= b.cap
}

// push buffers a store. The caller must have ensured !full().
func (b *storeBuffer) push(e entry) {
	if b.full() {
		panic("tso: push into full store buffer")
	}
	b.entries = append(b.entries, e)
	if occ := b.occupancy(); occ > b.maxOcc {
		b.maxOcc = occ
	}
}

// forward returns the newest buffered value for address a, searching the
// FIFO from tail to head and then the drain stage (rule 2 of the abstract
// machine: a load reads the newest matching store in its own buffer).
func (b *storeBuffer) forward(a Addr) (uint64, bool) {
	for i := len(b.entries) - 1; i >= 0; i-- {
		if b.entries[i].addr == a {
			return b.entries[i].val, true
		}
	}
	if b.hasStage && b.stage.addr == a {
		return b.stage.val, true
	}
	return 0, false
}

// drainOne advances the oldest buffered store one step toward memory and
// returns any store that became globally visible. With the drain stage
// disabled this simply pops the head into memory. With it enabled, the
// semantics follow the paper's §7.3 hypothesis: the head moves into B,
// first flushing B to memory unless the head targets B's address, in which
// case B is overwritten and the older value is never written (coalescing).
//
// drainOne must only be called when occupancy() > 0.
func (b *storeBuffer) drainOne(mem *memory) {
	if !b.useStage {
		if len(b.entries) == 0 {
			panic("tso: drain of empty store buffer")
		}
		e := b.entries[0]
		b.entries = b.entries[1:]
		mem.write(e.addr, e.val)
		b.drains++
		if b.onDrain != nil {
			b.onDrain(e)
		}
		return
	}
	switch {
	case len(b.entries) == 0 && b.hasStage:
		// Nothing left in the FIFO: retire B itself.
		mem.write(b.stage.addr, b.stage.val)
		b.hasStage = false
		b.drains++
		if b.onDrain != nil {
			b.onDrain(b.stage)
		}
	case len(b.entries) > 0 && !b.hasStage:
		b.stage = b.entries[0]
		b.entries = b.entries[1:]
		b.hasStage = true
		b.drains++
	case len(b.entries) > 0 && b.hasStage:
		head := b.entries[0]
		if head.addr == b.stage.addr {
			// Same-address coalescing: the older value is discarded
			// without ever reaching memory. This is legal under TSO only
			// because the two stores are consecutive in the drain order.
			b.stage = head
			b.entries = b.entries[1:]
			b.coalesces++
			b.drains++
			return
		}
		old := b.stage
		mem.write(old.addr, old.val)
		b.stage = head
		b.entries = b.entries[1:]
		b.drains++
		if b.onDrain != nil {
			b.onDrain(old)
		}
	default:
		panic("tso: drain of empty store buffer")
	}
}

// drainAll writes every buffered store to memory in FIFO order. Used for
// fences, atomics, and end-of-run flushes.
func (b *storeBuffer) drainAll(mem *memory) {
	for !b.empty() {
		b.drainOne(mem)
	}
}

// eligibleDrains returns the indices of entries the PSO drain rule may
// write next: the oldest entry for each distinct address (per-address FIFO
// is all PSO preserves). Only valid without the drain stage.
func (b *storeBuffer) eligibleDrains() []int {
	if b.useStage {
		panic("tso: PSO drains with drain stage")
	}
	var out []int
	seen := map[Addr]bool{}
	for i, e := range b.entries {
		if !seen[e.addr] {
			seen[e.addr] = true
			out = append(out, i)
		}
	}
	return out
}

// drainAt writes the entry at index i to memory and removes it (PSO). The
// caller must pass an index returned by eligibleDrains.
func (b *storeBuffer) drainAt(mem *memory, i int) {
	e := b.entries[i]
	mem.write(e.addr, e.val)
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	b.drains++
	if b.onDrain != nil {
		b.onDrain(e)
	}
}

// memory is the simulated shared memory: a growable array of 64-bit words,
// all initially zero.
type memory struct {
	words []uint64
}

func newMemory(words int) *memory {
	return &memory{words: make([]uint64, words)}
}

func (m *memory) read(a Addr) uint64 {
	m.ensure(a)
	return m.words[a]
}

func (m *memory) write(a Addr, v uint64) {
	m.ensure(a)
	m.words[a] = v
}

func (m *memory) ensure(a Addr) {
	if a < 0 {
		panic("tso: negative address")
	}
	if int(a) >= len(m.words) {
		grown := make([]uint64, max(int(a)+1, 2*len(m.words)))
		copy(grown, m.words)
		m.words = grown
	}
}
