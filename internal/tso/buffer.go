package tso

// entry is one buffered store: a (64-bit address, 64-bit data) pair, exactly
// the store-buffer entry of the x86-TSO abstract machine, annotated with
// the engine timestamps the unified core's policies and metrics need.
type entry struct {
	addr Addr
	val  uint64
	done uint64 // timed policy: virtual time at which the store reaches memory
	born uint64 // issue time (virtual cycles) or issue step (chaos), for drain-latency metrics
	id   int64  // op id of the issuing store (buffered engines), linking the drain event back to it
}

// storeBuffer is a bounded FIFO store buffer, optionally extended with the
// §7.3 post-retirement drain stage B. Entries enter at the tail on a store
// and leave from the head on a drain; with the stage enabled, a drained
// entry first moves into B and only reaches memory on a subsequent drain,
// unless the next drained entry targets the same address, in which case it
// overwrites B (same-address coalescing).
type storeBuffer struct {
	cap      int // S: capacity of the entries FIFO proper
	entries  []entry
	stage    entry // valid iff hasStage; older than every entries element
	hasStage bool
	useStage bool // Config.DrainBuffer

	// instrumentation
	drains    int64
	coalesces int64
	maxOcc    int

	// onDrain, when non-nil, observes every entry that reaches memory
	// (coalesced-away entries excluded). Set only when Config.Metrics is
	// enabled, so the common path pays one nil check.
	onDrain func(entry)

	// elig is eligibleDrains' reusable result slice, so the PSO hot path
	// allocates nothing.
	elig []int
}

// reset empties the buffer and clears its counters, keeping the entry
// array and any armed onDrain hook — the buffer half of Machine.Reset.
func (b *storeBuffer) reset() {
	b.entries = b.entries[:0]
	b.hasStage = false
	b.drains = 0
	b.coalesces = 0
	b.maxOcc = 0
}

func newStoreBuffer(capacity int, drainStage bool) *storeBuffer {
	return &storeBuffer{
		cap:      capacity,
		entries:  make([]entry, 0, capacity),
		useStage: drainStage,
	}
}

// occupancy is the number of stores not yet globally visible, counting the
// drain stage. This is the quantity the TSO[S] reordering bound caps.
func (b *storeBuffer) occupancy() int {
	n := len(b.entries)
	if b.hasStage {
		n++
	}
	return n
}

// empty reports whether every issued store has reached memory. Fences and
// atomic operations require this.
func (b *storeBuffer) empty() bool {
	return len(b.entries) == 0 && !b.hasStage
}

// full reports whether a new store would not fit in the FIFO proper. Per
// §7.1 a store that finds the buffer full stalls the pipeline until an
// entry drains.
func (b *storeBuffer) full() bool {
	return len(b.entries) >= b.cap
}

// push buffers a store. The caller must have ensured !full().
func (b *storeBuffer) push(e entry) {
	if b.full() {
		panic("tso: push into full store buffer")
	}
	b.entries = append(b.entries, e)
	if occ := b.occupancy(); occ > b.maxOcc {
		b.maxOcc = occ
	}
}

// popFront removes and returns the FIFO head, shifting the remaining
// entries down in place. The backing array stays anchored at its original
// allocation — slicing the head off (entries = entries[1:]) would walk
// the array forward and force a reallocation on a later push, which is
// what the zero-allocation guarantee of the step path forbids.
func (b *storeBuffer) popFront() entry {
	e := b.entries[0]
	n := copy(b.entries, b.entries[1:])
	b.entries = b.entries[:n]
	return e
}

// forward returns the newest buffered value for address a, searching the
// FIFO from tail to head and then the drain stage (rule 2 of the abstract
// machine: a load reads the newest matching store in its own buffer).
func (b *storeBuffer) forward(a Addr) (uint64, bool) {
	for i := len(b.entries) - 1; i >= 0; i-- {
		if b.entries[i].addr == a {
			return b.entries[i].val, true
		}
	}
	if b.hasStage && b.stage.addr == a {
		return b.stage.val, true
	}
	return 0, false
}

// drainOne advances the oldest buffered store one step toward memory and
// returns any store that became globally visible. With the drain stage
// disabled this simply pops the head into memory. With it enabled, the
// semantics follow the paper's §7.3 hypothesis: the head moves into B,
// first flushing B to memory unless the head targets B's address, in which
// case B is overwritten and the older value is never written (coalescing).
//
// drainOne must only be called when occupancy() > 0.
func (b *storeBuffer) drainOne(mem *memory) {
	if !b.useStage {
		if len(b.entries) == 0 {
			panic("tso: drain of empty store buffer")
		}
		e := b.popFront()
		mem.write(e.addr, e.val)
		b.drains++
		if b.onDrain != nil {
			b.onDrain(e)
		}
		return
	}
	switch {
	case len(b.entries) == 0 && b.hasStage:
		// Nothing left in the FIFO: retire B itself.
		mem.write(b.stage.addr, b.stage.val)
		b.hasStage = false
		b.drains++
		if b.onDrain != nil {
			b.onDrain(b.stage)
		}
	case len(b.entries) > 0 && !b.hasStage:
		b.stage = b.popFront()
		b.hasStage = true
		b.drains++
	case len(b.entries) > 0 && b.hasStage:
		head := b.entries[0]
		if head.addr == b.stage.addr {
			// Same-address coalescing: the older value is discarded
			// without ever reaching memory. This is legal under TSO only
			// because the two stores are consecutive in the drain order.
			b.stage = b.popFront()
			b.coalesces++
			b.drains++
			return
		}
		old := b.stage
		mem.write(old.addr, old.val)
		b.stage = b.popFront()
		b.drains++
		if b.onDrain != nil {
			b.onDrain(old)
		}
	default:
		panic("tso: drain of empty store buffer")
	}
}

// drainAll writes every buffered store to memory in FIFO order. Used for
// fences, atomics, and end-of-run flushes.
func (b *storeBuffer) drainAll(mem *memory) {
	for !b.empty() {
		b.drainOne(mem)
	}
}

// eligibleDrains returns the indices of entries the PSO drain rule may
// write next: the oldest entry for each distinct address (per-address FIFO
// is all PSO preserves). Only valid without the drain stage. The returned
// slice is owned by the buffer and valid until the next call; the
// first-occurrence scan is quadratic in occupancy, which the capacity
// bound keeps tiny (S ≤ a few dozen).
func (b *storeBuffer) eligibleDrains() []int {
	if b.useStage {
		panic("tso: PSO drains with drain stage")
	}
	out := b.elig[:0]
	for i, e := range b.entries {
		first := true
		for j := 0; j < i; j++ {
			if b.entries[j].addr == e.addr {
				first = false
				break
			}
		}
		if first {
			out = append(out, i)
		}
	}
	b.elig = out
	return out
}

// drainAt writes the entry at index i to memory and removes it (PSO). The
// caller must pass an index returned by eligibleDrains.
func (b *storeBuffer) drainAt(mem *memory, i int) {
	e := b.entries[i]
	mem.write(e.addr, e.val)
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
	b.drains++
	if b.onDrain != nil {
		b.onDrain(e)
	}
}

// memory is the simulated shared memory: a growable array of 64-bit words,
// all initially zero. It tracks the dirty high-watermark so reset zeroes
// only the words a run actually touched, not the full default arena.
type memory struct {
	words []uint64
	hi    Addr // highest address ever written since the last reset
}

func newMemory(words int) *memory {
	return &memory{words: make([]uint64, words)}
}

// reset rezeroes every written word — the memory half of Machine.Reset.
func (m *memory) reset() {
	clear(m.words[:m.hi+1])
	m.hi = 0
}

func (m *memory) read(a Addr) uint64 {
	m.ensure(a)
	return m.words[a]
}

func (m *memory) write(a Addr, v uint64) {
	m.ensure(a)
	m.words[a] = v
	if a > m.hi {
		m.hi = a
	}
}

func (m *memory) ensure(a Addr) {
	if a < 0 {
		panic("tso: negative address")
	}
	if int(a) >= len(m.words) {
		grown := make([]uint64, max(int(a)+1, 2*len(m.words)))
		copy(grown, m.words)
		m.words = grown
	}
}
