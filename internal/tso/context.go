package tso

// Context is the instruction-set interface simulated threads program
// against. Both engines implement it, so algorithm code (internal/core,
// internal/sched) is engine-agnostic.
//
// All operations act on 64-bit words of simulated shared memory. Context
// values are only valid inside the program function they were passed to and
// must not be shared across simulated threads.
type Context interface {
	// Load reads a word. If the issuing thread has a buffered store to the
	// address, the newest such value is forwarded; otherwise the value
	// comes from memory, which may lag up to the reordering bound behind
	// the thread's own program order — the effect the paper exploits.
	Load(a Addr) uint64

	// Store buffers a write. It becomes globally visible only when drained;
	// a store issued into a full buffer stalls until space frees up.
	Store(a Addr, v uint64)

	// Fence drains the issuing thread's store buffer: every prior store is
	// globally visible when Fence returns. This is the instruction the
	// paper's algorithms remove from the worker's path.
	Fence()

	// CAS atomically compares the word at a with old and, if equal, writes
	// new. It returns the observed value and whether the swap happened.
	// As on x86/SPARC, an atomic read-modify-write drains the issuing
	// thread's store buffer first (it is performed while holding the
	// memory-subsystem lock with an empty buffer, rule 4 of §2).
	CAS(a Addr, old, new uint64) (uint64, bool)

	// Work models cycles of thread-local computation with no memory
	// effects. The chaos engine treats it as a scheduling point; the timed
	// engine advances the thread's clock. Store-buffer drains proceed in
	// the background during Work, which is what makes "x stores between
	// take()s" lower the required δ (§4).
	Work(cycles uint64)

	// ThreadID returns the simulated hardware-thread index, 0-based.
	ThreadID() int
}

// Allocator hands out simulated memory. Both engines implement it; queue
// constructors take an Allocator so they can be built for either.
type Allocator interface {
	// Alloc reserves n fresh zero-initialized words and returns the base
	// address. It must be called before Run starts the machine.
	Alloc(n int) Addr
}
