// Package tso implements the executable abstract TSO[S] machine from §2 of
// Morrison & Afek, "Fence-Free Work Stealing on Bounded TSO Processors"
// (ASPLOS 2014): Sewell et al.'s x86-TSO abstract machine with per-thread
// FIFO store buffers bounded at S entries.
//
// A load can be reordered with at most S prior stores by the same thread;
// this is the only reordering TSO permits, and the bound is the property the
// paper's fence-free work-stealing algorithms rely on. A single machine
// core (one request/grant executor, one memory + store-buffer substrate,
// one stats sink) hosts pluggable scheduling/cost policies (policy.go),
// giving two engines over the same store-buffer semantics:
//
//   - Machine (the "chaos" engine) explores interleavings and drain
//     schedules adversarially under a seeded RNG. It is the correctness
//     substrate: litmus tests, queue-safety property tests, and the Figure
//     8/9 experiments run on it. A configurable drain bias lets tests starve
//     store-buffer drains so that the maximum-reordering schedules that need
//     ~10^7 lottery runs on real hardware are forced deterministically.
//
//   - TimedMachine (the "timed" engine) is a discrete-event performance
//     model in virtual cycles. Stores occupy buffer entries that drain at a
//     fixed per-entry latency, a store into a full buffer stalls the thread
//     (§7.1's pipeline-entry stall), a fence waits for the thread's buffer
//     to empty, and atomic read-modify-write drains then pays a fixed cost.
//     It regenerates the shape of the paper's timing results (Figures 1, 7,
//     10, 11) without claiming absolute cycle counts.
//
// A third policy — deterministic choice enumeration — backs Explore's
// exhaustive schedule exploration over the chaos substrate.
//
// Both engines expose the same Context interface to simulated-thread code,
// so every queue algorithm in internal/core runs unchanged on either, and
// both record the same per-thread metric series when Config.Metrics is set
// (metrics.go).
//
// The §7.3 microarchitectural corner case — a post-retirement drain-stage
// buffer B that coalesces back-to-back stores to the same address, making
// the observable bound S+1 and unbounded for same-location store runs — is
// modelled by Config.DrainBuffer and is what the Figure 8 litmus grid
// exercises.
package tso
