package tso

import (
	"errors"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Threads: 0, BufferSize: 4},
		{Threads: 1, BufferSize: 0},
		{Threads: 1, BufferSize: 4, DrainBias: 1.5},
		{Threads: 1, BufferSize: 4, DrainBias: -0.1},
	}
	for i, c := range bad {
		if _, err := c.withDefaults(); err == nil {
			t.Errorf("config %d (%+v) unexpectedly valid", i, c)
		}
	}
	good, err := (Config{Threads: 2, BufferSize: 4}).withDefaults()
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if good.MaxSteps != defaultMaxSteps || good.DrainBias != defaultDrain || good.Cost != DefaultCost {
		t.Fatalf("defaults not applied: %+v", good)
	}
}

func TestObservableBound(t *testing.T) {
	if got := (Config{BufferSize: 32}).ObservableBound(); got != 32 {
		t.Errorf("bound=%d want 32", got)
	}
	if got := (Config{BufferSize: 32, DrainBuffer: true}).ObservableBound(); got != 33 {
		t.Errorf("bound with stage=%d want 33", got)
	}
	if got := WestmereEX().ObservableBound(); got != 33 {
		t.Errorf("WestmereEX bound=%d want 33", got)
	}
	if got := Haswell().ObservableBound(); got != 43 {
		t.Errorf("Haswell bound=%d want 43", got)
	}
}

func TestAllocDistinctAndPokePeek(t *testing.T) {
	m := NewMachine(Config{Threads: 1, BufferSize: 4})
	a := m.Alloc(3)
	b := m.Alloc(2)
	if b < a+3 {
		t.Fatalf("allocations overlap: a=%d b=%d", a, b)
	}
	m.Poke(b, 99)
	if got := m.Peek(b); got != 99 {
		t.Fatalf("Peek=%d want 99", got)
	}
}

func TestRunArityMismatch(t *testing.T) {
	m := NewMachine(Config{Threads: 2, BufferSize: 4})
	if err := m.Run(func(Context) {}); err == nil {
		t.Fatal("Run with wrong program count succeeded")
	}
}

func TestReadOwnWriteForwarding(t *testing.T) {
	m := NewMachine(Config{Threads: 1, BufferSize: 4, Seed: 1, DrainBias: 0.01})
	x := m.Alloc(1)
	var got uint64
	err := m.Run(func(c Context) {
		c.Store(x, 7)
		got = c.Load(x) // must forward from the buffer even if undrained
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("read-own-write got %d want 7", got)
	}
	if m.Stats().ForwardLoads == 0 {
		t.Fatal("expected at least one forwarded load")
	}
}

// TestSBLitmusRelaxedOutcomeOccurs checks that the machine actually exhibits
// store/load reordering: in the classic SB litmus test (x:=1; r0:=y ||
// y:=1; r1:=x) the outcome r0=r1=0 is TSO-legal and must be reachable.
func TestSBLitmusRelaxedOutcomeOccurs(t *testing.T) {
	seen00 := false
	for seed := int64(0); seed < 200 && !seen00; seed++ {
		m := NewMachine(Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.1})
		x, y := m.Alloc(1), m.Alloc(1)
		var r0, r1 uint64
		err := m.Run(
			func(c Context) { c.Store(x, 1); r0 = c.Load(y) },
			func(c Context) { c.Store(y, 1); r1 = c.Load(x) },
		)
		if err != nil {
			t.Fatal(err)
		}
		if r0 == 0 && r1 == 0 {
			seen00 = true
		}
	}
	if !seen00 {
		t.Fatal("relaxed outcome r0=r1=0 never observed: machine not exhibiting store/load reordering")
	}
}

// TestSBLitmusFencedNever00 checks the fence semantics: with a fence between
// the store and the load, r0=r1=0 becomes impossible.
func TestSBLitmusFencedNever00(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		m := NewMachine(Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.1})
		x, y := m.Alloc(1), m.Alloc(1)
		var r0, r1 uint64
		err := m.Run(
			func(c Context) { c.Store(x, 1); c.Fence(); r0 = c.Load(y) },
			func(c Context) { c.Store(y, 1); c.Fence(); r1 = c.Load(x) },
		)
		if err != nil {
			t.Fatal(err)
		}
		if r0 == 0 && r1 == 0 {
			t.Fatalf("seed %d: fenced SB produced r0=r1=0", seed)
		}
	}
}

// TestCASActsAsFence checks rule 4: an atomic RMW drains the issuing
// thread's buffer, so it orders prior stores before subsequent loads.
func TestCASActsAsFence(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		m := NewMachine(Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.1})
		x, y, scratch := m.Alloc(1), m.Alloc(1), m.Alloc(1)
		var r0, r1 uint64
		err := m.Run(
			func(c Context) { c.Store(x, 1); c.CAS(scratch, 0, 1); r0 = c.Load(y) },
			func(c Context) { c.Store(y, 1); c.CAS(scratch, 0, 1); r1 = c.Load(x) },
		)
		if err != nil {
			t.Fatal(err)
		}
		if r0 == 0 && r1 == 0 {
			t.Fatalf("seed %d: CAS-separated SB produced r0=r1=0", seed)
		}
	}
}

func TestCASAtomicIncrement(t *testing.T) {
	m := NewMachine(Config{Threads: 4, BufferSize: 4, Seed: 42})
	ctr := m.Alloc(1)
	inc := func(c Context) {
		for i := 0; i < 50; i++ {
			for {
				old := c.Load(ctr)
				if _, ok := c.CAS(ctr, old, old+1); ok {
					break
				}
			}
		}
	}
	if err := m.Run(inc, inc, inc, inc); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(ctr); got != 200 {
		t.Fatalf("counter=%d want 200", got)
	}
}

// TestLagBoundedWithoutStage verifies the heart of TSO[S]: the number of a
// thread's stores hidden from memory never exceeds S. The worker stores
// increasing sequence numbers; because the machine runs exactly one thread
// between scheduler steps, the meta-level issue counter is exact at every
// observer load.
func TestLagBoundedWithoutStage(t *testing.T) {
	const S = 4
	for seed := int64(0); seed < 50; seed++ {
		m := NewMachine(Config{Threads: 2, BufferSize: S, Seed: seed, DrainBias: 0.05})
		loc := m.Alloc(1)
		issued := uint64(0)
		maxLag := uint64(0)
		err := m.Run(
			func(c Context) {
				for i := uint64(1); i <= 200; i++ {
					c.Store(loc, i)
					issued = i
				}
			},
			func(c Context) {
				for i := 0; i < 400; i++ {
					v := c.Load(loc)
					if lag := issued - v; lag > maxLag {
						maxLag = lag
					}
				}
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		if maxLag > S {
			t.Fatalf("seed %d: observed lag %d > S=%d without drain stage", seed, maxLag, S)
		}
	}
}

// TestLagBoundedWithStageDistinctAddrs: with the drain stage but stores to
// distinct addresses (no coalescing possible), the observable bound is S+1.
func TestLagBoundedWithStageDistinctAddrs(t *testing.T) {
	const S = 4
	sawSPlus1 := false
	for seed := int64(0); seed < 100; seed++ {
		m := NewMachine(Config{Threads: 2, BufferSize: S, DrainBuffer: true, Seed: seed, DrainBias: 0.05})
		base := m.Alloc(256)
		issued := uint64(0)
		maxLag := uint64(0)
		err := m.Run(
			func(c Context) {
				for i := uint64(1); i <= 100; i++ {
					// Alternate addresses so no two consecutive drains
					// coalesce; publish progress via the value at each.
					c.Store(base+Addr(i%8), i)
					issued = i
				}
			},
			func(c Context) {
				for i := 0; i < 300; i++ {
					// Snapshot the issue counter before scanning: stores
					// drained during the scan only shrink the computed
					// lag, so it is a sound lower bound on the true lag
					// at scan start — safe for the <= S+1 assertion.
					before := issued
					newest := uint64(0)
					for j := 0; j < 8; j++ {
						if v := c.Load(base + Addr(j)); v > newest {
							newest = v
						}
					}
					if before > newest {
						if lag := before - newest; lag > maxLag {
							maxLag = lag
						}
					}
				}
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		if maxLag > S+1 {
			t.Fatalf("seed %d: lag %d > S+1=%d with drain stage", seed, maxLag, S+1)
		}
		if maxLag == S+1 {
			sawSPlus1 = true
		}
	}
	if !sawSPlus1 {
		t.Fatal("never observed lag of exactly S+1: stage B not acting as an extra entry")
	}
}

// TestLagUnboundedWithCoalescing: back-to-back stores to one location under
// the drain stage coalesce, so the hidden-store count can exceed S+1 — the
// L=0 failure mode of Figure 8b.
func TestLagUnboundedWithCoalescing(t *testing.T) {
	const S = 4
	exceeded := false
	for seed := int64(0); seed < 100 && !exceeded; seed++ {
		m := NewMachine(Config{Threads: 2, BufferSize: S, DrainBuffer: true, Seed: seed, DrainBias: 0.3})
		loc := m.Alloc(1)
		issued := uint64(0)
		err := m.Run(
			func(c Context) {
				for i := uint64(1); i <= 400; i++ {
					c.Store(loc, i)
					issued = i
				}
			},
			func(c Context) {
				for i := 0; i < 800; i++ {
					v := c.Load(loc)
					if issued-v > S+1 {
						exceeded = true
					}
				}
			},
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !exceeded {
		t.Fatal("coalescing never hid more than S+1 stores; stage coalescing not effective")
	}
}

func TestStepLimitReported(t *testing.T) {
	m := NewMachine(Config{Threads: 1, BufferSize: 2, Seed: 1, MaxSteps: 1000})
	flag := m.Alloc(1)
	err := m.Run(func(c Context) {
		for c.Load(flag) == 0 { // never set: livelock
		}
	})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err=%v want ErrStepLimit", err)
	}
}

func TestProgramPanicPropagates(t *testing.T) {
	m := NewMachine(Config{Threads: 2, BufferSize: 2, Seed: 1})
	x := m.Alloc(1)
	err := m.Run(
		func(c Context) { c.Store(x, 1); panic("boom") },
		func(c Context) {
			for i := 0; i < 1000; i++ {
				c.Load(x)
			}
		},
	)
	var pp *ProgramPanic
	if !errors.As(err, &pp) {
		t.Fatalf("err=%v want *ProgramPanic", err)
	}
	if pp.Thread != 0 || pp.Value != "boom" {
		t.Fatalf("panic info = %+v", pp)
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	trace := func(seed int64) []uint64 {
		m := NewMachine(Config{Threads: 2, BufferSize: 3, Seed: seed, DrainBias: 0.3})
		x := m.Alloc(1)
		var obs []uint64
		err := m.Run(
			func(c Context) {
				for i := uint64(1); i <= 50; i++ {
					c.Store(x, i)
				}
			},
			func(c Context) {
				for i := 0; i < 100; i++ {
					obs = append(obs, c.Load(x))
				}
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		return obs
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMemoryPersistsAcrossRuns(t *testing.T) {
	m := NewMachine(Config{Threads: 1, BufferSize: 2, Seed: 1})
	x := m.Alloc(1)
	if err := m.Run(func(c Context) { c.Store(x, 5) }); err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(x); got != 5 {
		t.Fatalf("after run mem=%d want 5 (buffers must flush at end of Run)", got)
	}
	var got uint64
	if err := m.Run(func(c Context) { got = c.Load(x) }); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("second run read %d want 5", got)
	}
}

func TestCoherencePerLocationMonotone(t *testing.T) {
	// Writes of an increasing sequence to one location must be observed in
	// non-decreasing order by another thread (TSO is coherent), with or
	// without the drain stage.
	for _, stage := range []bool{false, true} {
		for seed := int64(0); seed < 30; seed++ {
			m := NewMachine(Config{Threads: 2, BufferSize: 3, DrainBuffer: stage, Seed: seed, DrainBias: 0.2})
			x := m.Alloc(1)
			var obs []uint64
			err := m.Run(
				func(c Context) {
					for i := uint64(1); i <= 100; i++ {
						c.Store(x, i)
					}
				},
				func(c Context) {
					for i := 0; i < 200; i++ {
						obs = append(obs, c.Load(x))
					}
				},
			)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(obs); i++ {
				if obs[i] < obs[i-1] {
					t.Fatalf("stage=%v seed=%d: observed %d after %d (coherence violation)", stage, seed, obs[i], obs[i-1])
				}
			}
		}
	}
}

func TestWorkIsSchedulingPoint(t *testing.T) {
	// A thread spinning on Work must not prevent drains: the store below
	// eventually reaches memory while the worker only calls Work.
	m := NewMachine(Config{Threads: 2, BufferSize: 2, Seed: 3, DrainBias: 0.5})
	x := m.Alloc(1)
	sawOne := false
	err := m.Run(
		func(c Context) {
			c.Store(x, 1)
			for i := 0; i < 500; i++ {
				c.Work(1)
			}
		},
		func(c Context) {
			for i := 0; i < 500; i++ {
				if c.Load(x) == 1 {
					sawOne = true
					return
				}
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !sawOne {
		t.Fatal("store never drained while owner was in Work loop")
	}
}

func TestStatsCounts(t *testing.T) {
	m := NewMachine(Config{Threads: 1, BufferSize: 2, Seed: 1})
	x := m.Alloc(1)
	err := m.Run(func(c Context) {
		c.Store(x, 1)
		c.Load(x)
		c.Fence()
		c.CAS(x, 1, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Stores != 1 || s.Loads != 1 || s.Fences != 1 || s.CASes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxOccupancy < 1 {
		t.Fatalf("max occupancy %d want >= 1", s.MaxOccupancy)
	}
}
