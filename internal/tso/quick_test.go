package tso

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// progOp is one step of a randomly generated single-thread program.
type progOp struct {
	kind byte // 0 store, 1 load, 2 fence, 3 work
	addr Addr
	val  uint64
}

func genProgram(r *rand.Rand, n, addrs int) []progOp {
	ops := make([]progOp, n)
	for i := range ops {
		ops[i] = progOp{
			kind: byte(r.Intn(4)),
			addr: Addr(r.Intn(addrs)),
			val:  uint64(r.Intn(1000)) + 1,
		}
	}
	return ops
}

// TestQuickReadOwnWrite: under any drain schedule and drain-stage setting, a
// thread's load returns the value of its own most recent program-order store
// to that address (or the initial 0).
func TestQuickReadOwnWrite(t *testing.T) {
	f := func(seed int64, stage bool) bool {
		r := rand.New(rand.NewSource(seed))
		ops := genProgram(r, 200, 6)
		m := NewMachine(Config{Threads: 1, BufferSize: 3, DrainBuffer: stage, Seed: seed, DrainBias: 0.2})
		base := m.Alloc(6)
		last := map[Addr]uint64{}
		okAll := true
		err := m.Run(func(c Context) {
			for _, op := range ops {
				a := base + op.addr
				switch op.kind {
				case 0:
					c.Store(a, op.val)
					last[op.addr] = op.val
				case 1:
					if got := c.Load(a); got != last[op.addr] {
						okAll = false
					}
				case 2:
					c.Fence()
				case 3:
					c.Work(1)
				}
			}
		})
		return err == nil && okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFinalMemoryState: after a run completes (buffers flushed), memory
// holds each thread's last store per address, for threads writing disjoint
// address ranges.
func TestQuickFinalMemoryState(t *testing.T) {
	f := func(seed int64, stage bool) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMachine(Config{Threads: 2, BufferSize: 4, DrainBuffer: stage, Seed: seed, DrainBias: 0.3})
		base := m.Alloc(12)
		progs := make([]func(Context), 2)
		want := map[Addr]uint64{}
		for tid := 0; tid < 2; tid++ {
			ops := genProgram(r, 150, 6)
			lo := base + Addr(tid*6)
			for _, op := range ops {
				if op.kind == 0 {
					want[lo+op.addr] = op.val
				}
			}
			myOps := ops
			progs[tid] = func(c Context) {
				for _, op := range myOps {
					a := lo + op.addr
					switch op.kind {
					case 0:
						c.Store(a, op.val)
					case 1:
						c.Load(a)
					case 2:
						c.Fence()
					case 3:
						c.Work(1)
					}
				}
			}
		}
		if err := m.Run(progs[0], progs[1]); err != nil {
			return false
		}
		for a, v := range want {
			if m.Peek(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOccupancyBound: the number of globally invisible stores never
// exceeds the configured observable bound, no matter the program or drain
// schedule.
func TestQuickOccupancyBound(t *testing.T) {
	f := func(seed int64, stage bool) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := Config{Threads: 1, BufferSize: 1 + r.Intn(5), DrainBuffer: stage, Seed: seed, DrainBias: 0.05}
		m := NewMachine(cfg)
		base := m.Alloc(8)
		ops := genProgram(r, 300, 8)
		err := m.Run(func(c Context) {
			for _, op := range ops {
				switch op.kind {
				case 0:
					c.Store(base+op.addr, op.val)
				default:
					c.Load(base + op.addr)
				}
			}
		})
		cfgFull, _ := cfg.withDefaults()
		return err == nil && m.Stats().MaxOccupancy <= cfgFull.ObservableBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTimedMatchesChaosFinalState: for single-thread programs both
// engines must agree on final memory (they implement the same ISA).
func TestQuickTimedMatchesChaosFinalState(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ops := genProgram(r, 120, 5)
		run := func(run func(progs ...func(Context)) error, alloc func(int) Addr, peek func(Addr) uint64) []uint64 {
			base := alloc(5)
			if err := run(func(c Context) {
				for _, op := range ops {
					switch op.kind {
					case 0:
						c.Store(base+op.addr, op.val)
					case 1:
						c.Load(base + op.addr)
					case 2:
						c.Fence()
					case 3:
						c.Work(2)
					}
				}
			}); err != nil {
				t.Fatal(err)
			}
			out := make([]uint64, 5)
			for i := range out {
				out[i] = peek(base + Addr(i))
			}
			return out
		}
		cm := NewMachine(Config{Threads: 1, BufferSize: 3, Seed: seed, DrainBias: 0.2})
		tm := NewTimedMachine(Config{Threads: 1, BufferSize: 3})
		a := run(cm.Run, cm.Alloc, cm.Peek)
		b := run(tm.Run, tm.Alloc, tm.Peek)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWorkMonotoneInTimedEngine: adding local work never reduces the
// simulated makespan.
func TestQuickWorkMonotoneInTimedEngine(t *testing.T) {
	f := func(extraRaw uint8) bool {
		extra := uint64(extraRaw)
		elapsed := func(work uint64) uint64 {
			m := NewTimedMachine(Config{Threads: 1, BufferSize: 4, Cost: testCost})
			x := m.Alloc(4)
			if err := m.Run(func(c Context) {
				c.Store(x, 1)
				c.Work(work)
				c.Store(x+1, 2)
				c.Fence()
			}); err != nil {
				t.Fatal(err)
			}
			return m.Elapsed()
		}
		return elapsed(10+extra) >= elapsed(10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
