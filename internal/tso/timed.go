package tso

import (
	"fmt"
)

// TimedMachine is the performance engine: a discrete-event simulation of a
// TSO[S] multicore in virtual cycles. Its scheduling is deterministic — it
// always steps the thread with the smallest virtual clock — so a given
// program produces a single well-defined cycle count.
//
// The cost mechanics mirror §7.1: a store occupies a buffer entry that
// drains DrainCycles after its predecessor; a store into a full buffer
// stalls the thread until the oldest entry drains (the pipeline-entry
// stall); a fence waits for the thread's buffer to empty; an atomic RMW
// drains and then pays CASCycles. Buffered values become globally visible
// at their drain timestamps, and because the minimum-clock thread always
// runs next, reads are coherent in virtual time.
type TimedMachine struct {
	cfg     Config
	mem     *memory
	next    Addr
	threads []*timedThread
	cores   []uint64 // per-core next-free issue slot (SMT only)
	stats   Stats
	elapsed uint64

	reqCh   chan *request
	grants  []chan response
	pending []*request
}

type timedThread struct {
	clock    uint64
	buf      []timedEntry // FIFO of undrained stores
	lastDone uint64       // drain timestamp of the newest issued store
	maxOcc   int
}

type timedEntry struct {
	addr Addr
	val  uint64
	done uint64 // virtual time at which the store reaches memory
}

// NewTimedMachine builds a timed machine for cfg. It panics on invalid
// configuration.
func NewTimedMachine(cfg Config) *TimedMachine {
	c, err := cfg.withDefaults()
	if err != nil {
		panic(err)
	}
	if c.Model != ModelTSO {
		panic("tso: the timed engine models TSO only")
	}
	m := &TimedMachine{
		cfg: c,
		mem: newMemory(c.MemWords),
	}
	m.threads = make([]*timedThread, c.Threads)
	for i := range m.threads {
		m.threads[i] = &timedThread{}
	}
	if c.SMT {
		m.cores = make([]uint64, c.Threads/2)
	}
	return m
}

// issue charges k instruction-issue cycles to thread tid starting no
// earlier than its clock: on an SMT machine the cycles additionally
// serialize on the owning core's clock, so a busy sibling delays them —
// but a *stalled* sibling does not, because stalls never call issue.
func (m *TimedMachine) issue(tid int, k uint64) {
	th := m.threads[tid]
	if m.cores == nil {
		th.clock += k
		return
	}
	core := tid / 2
	start := th.clock
	if m.cores[core] > start {
		start = m.cores[core]
	}
	th.clock = start + k
	m.cores[core] = start + k
}

// Config returns the configuration the machine was built with (after
// defaulting).
func (m *TimedMachine) Config() Config { return m.cfg }

// Alloc reserves n zero-initialized words of simulated memory.
func (m *TimedMachine) Alloc(n int) Addr {
	if n <= 0 {
		panic(fmt.Sprintf("tso: Alloc(%d)", n))
	}
	base := m.next
	m.next += Addr(n)
	m.mem.ensure(m.next - 1)
	return base
}

// Peek reads simulated memory directly (for inspection after Run).
func (m *TimedMachine) Peek(a Addr) uint64 { return m.mem.read(a) }

// Poke writes simulated memory directly (for initialization before Run).
func (m *TimedMachine) Poke(a Addr, v uint64) { m.mem.write(a, v) }

// Stats returns cumulative event counts across Run calls.
func (m *TimedMachine) Stats() Stats {
	s := m.stats
	for _, t := range m.threads {
		if t.maxOcc > s.MaxOccupancy {
			s.MaxOccupancy = t.maxOcc
		}
	}
	return s
}

// Elapsed returns the makespan of the last Run in virtual cycles: the
// maximum finishing clock over all threads.
func (m *TimedMachine) Elapsed() uint64 { return m.elapsed }

// ThreadCycles returns the finishing clock of thread tid after the last Run.
func (m *TimedMachine) ThreadCycles(tid int) uint64 { return m.threads[tid].clock }

// capEff is the number of buffered stores a thread may hold: S, plus the
// drain-stage entry when modelled (ObservableBound).
func (m *TimedMachine) capEff() int { return m.cfg.ObservableBound() }

// Run executes one program per configured thread to completion in virtual
// time and records the makespan. Thread clocks reset at the start of each
// Run; memory persists. It returns a *ProgramPanic if a program panics.
func (m *TimedMachine) Run(progs ...func(Context)) error {
	if len(progs) != m.cfg.Threads {
		return fmt.Errorf("tso: machine has %d threads, Run got %d programs", m.cfg.Threads, len(progs))
	}
	m.reqCh = make(chan *request)
	m.grants = make([]chan response, len(progs))
	m.pending = make([]*request, len(progs))
	for i := range m.threads {
		m.threads[i].clock = 0
		m.threads[i].buf = m.threads[i].buf[:0]
		m.threads[i].lastDone = 0
	}
	for i := range m.cores {
		m.cores[i] = 0
	}
	for i := range progs {
		m.grants[i] = make(chan response)
		go m.runThread(i, progs[i])
	}
	err := m.schedule(len(progs))
	// Flush whatever is still buffered at the end of the run.
	for _, t := range m.threads {
		for _, e := range t.buf {
			m.mem.write(e.addr, e.val)
		}
		t.buf = t.buf[:0]
	}
	m.elapsed = 0
	for _, t := range m.threads {
		if t.clock > m.elapsed {
			m.elapsed = t.clock
		}
	}
	return err
}

func (m *TimedMachine) runThread(tid int, prog func(Context)) {
	defer func() {
		switch v := recover(); v.(type) {
		case nil:
			m.reqCh <- &request{tid: tid, kind: opDone}
		case abortSignal:
			m.reqCh <- &request{tid: tid, kind: opDone}
		default:
			m.reqCh <- &request{tid: tid, kind: opPanic, panicVal: v}
		}
	}()
	prog(&timedCtx{m: m, tid: tid})
}

func (m *TimedMachine) schedule(threads int) error {
	live := threads
	pendingN := 0
	var fail error
	for {
		for pendingN < live {
			r := <-m.reqCh
			switch r.kind {
			case opDone:
				live--
			case opPanic:
				live--
				if fail == nil {
					fail = &ProgramPanic{Thread: r.tid, Value: r.panicVal}
				}
			default:
				m.pending[r.tid] = r
				pendingN++
			}
		}
		if fail != nil {
			m.abortPending(&pendingN)
			m.drainDone(&live, &pendingN)
			return fail
		}
		if live == 0 {
			return nil
		}
		tid := m.minClockPending()
		r := m.pending[tid]
		m.pending[tid] = nil
		pendingN--
		m.grants[tid] <- m.exec(r)
	}
}

func (m *TimedMachine) abortPending(pendingN *int) {
	for tid, r := range m.pending {
		if r != nil {
			m.pending[tid] = nil
			*pendingN--
			m.grants[tid] <- response{abort: true}
		}
	}
}

func (m *TimedMachine) drainDone(live, pendingN *int) {
	for *live > 0 {
		r := <-m.reqCh
		switch r.kind {
		case opDone, opPanic:
			*live--
		default:
			m.grants[r.tid] <- response{abort: true}
		}
	}
}

// minClockPending picks the pending thread with the smallest virtual clock
// (lowest tid on ties), which keeps virtual time causally consistent.
func (m *TimedMachine) minClockPending() int {
	best := -1
	for tid, r := range m.pending {
		if r == nil {
			continue
		}
		if best == -1 || m.threads[tid].clock < m.threads[best].clock {
			best = tid
		}
	}
	return best
}

// flushUpTo applies to memory, in drain-timestamp order, every buffered
// store (any thread) whose drain completes at or before virtual time t.
func (m *TimedMachine) flushUpTo(t uint64) {
	for {
		bestTid := -1
		var bestDone uint64
		for tid, th := range m.threads {
			if len(th.buf) == 0 {
				continue
			}
			if d := th.buf[0].done; d <= t && (bestTid == -1 || d < bestDone) {
				bestTid = tid
				bestDone = d
			}
		}
		if bestTid == -1 {
			return
		}
		th := m.threads[bestTid]
		e := th.buf[0]
		th.buf = th.buf[1:]
		m.mem.write(e.addr, e.val)
		m.stats.Drains++
	}
}

func (m *TimedMachine) exec(r *request) response {
	th := m.threads[r.tid]
	cost := m.cfg.Cost
	m.flushUpTo(th.clock)
	switch r.kind {
	case opLoad:
		m.stats.Loads++
		m.issue(r.tid, cost.LoadCycles)
		for i := len(th.buf) - 1; i >= 0; i-- {
			if th.buf[i].addr == r.addr {
				m.stats.ForwardLoads++
				return response{val: th.buf[i].val}
			}
		}
		return response{val: m.mem.read(r.addr)}
	case opStore:
		m.stats.Stores++
		for len(th.buf) >= m.capEff() {
			// Pipeline-entry stall: wait for the oldest entry to drain.
			th.clock = maxU64(th.clock, th.buf[0].done)
			m.flushUpTo(th.clock)
		}
		// Drains are pipelined: full latency from issue, but only the
		// throughput spacing behind the previous drain.
		done := maxU64(th.clock+cost.DrainCycles, th.lastDone+cost.DrainThroughputCycles)
		th.buf = append(th.buf, timedEntry{addr: r.addr, val: r.val, done: done})
		th.lastDone = done
		if len(th.buf) > th.maxOcc {
			th.maxOcc = len(th.buf)
		}
		m.issue(r.tid, cost.StoreCycles)
		return response{}
	case opFence:
		m.stats.Fences++
		// The drain wait is a stall (no core issue); only the fence's own
		// cycles are issued.
		th.clock = maxU64(th.clock, th.lastDone)
		m.issue(r.tid, cost.FenceCycles)
		m.flushUpTo(th.clock)
		return response{}
	case opCAS:
		m.stats.CASes++
		th.clock = maxU64(th.clock, th.lastDone) // stall: no core issue
		m.flushUpTo(th.clock)
		m.issue(r.tid, cost.CASCycles)
		cur := m.mem.read(r.addr)
		if cur == r.val {
			m.mem.write(r.addr, r.val2)
			return response{val: cur, ok: true}
		}
		return response{val: cur, ok: false}
	case opWork:
		m.issue(r.tid, r.val)
		return response{}
	default:
		panic(fmt.Sprintf("tso: unknown op %d", r.kind))
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// timedCtx is the Context implementation handed to timed-engine threads.
type timedCtx struct {
	m   *TimedMachine
	tid int
}

func (c *timedCtx) do(r request) response {
	r.tid = c.tid
	c.m.reqCh <- &r
	resp := <-c.m.grants[c.tid]
	if resp.abort {
		panic(abortSignal{})
	}
	return resp
}

func (c *timedCtx) Load(a Addr) uint64 {
	return c.do(request{kind: opLoad, addr: a}).val
}

func (c *timedCtx) Store(a Addr, v uint64) {
	c.do(request{kind: opStore, addr: a, val: v})
}

func (c *timedCtx) Fence() {
	c.do(request{kind: opFence})
}

func (c *timedCtx) CAS(a Addr, old, new uint64) (uint64, bool) {
	r := c.do(request{kind: opCAS, addr: a, val: old, val2: new})
	return r.val, r.ok
}

func (c *timedCtx) Work(cycles uint64) {
	if cycles == 0 {
		return
	}
	c.do(request{kind: opWork, val: cycles})
}

func (c *timedCtx) ThreadID() int { return c.tid }
