package tso

// TimedMachine is the performance engine: the unified machine core under
// the timed policy, a discrete-event simulation of a TSO[S] multicore in
// virtual cycles. Its scheduling is deterministic — it always steps the
// thread with the smallest virtual clock — so a given program produces a
// single well-defined cycle count.
//
// The cost mechanics mirror §7.1: a store occupies a buffer entry that
// drains DrainCycles after its predecessor; a store into a full buffer
// stalls the thread until the oldest entry drains (the pipeline-entry
// stall); a fence waits for the thread's buffer to empty; an atomic RMW
// drains and then pays CASCycles. Buffered values become globally visible
// at their drain timestamps, and because the minimum-clock thread always
// runs next, reads are coherent in virtual time.
type TimedMachine struct {
	Machine
	tp *timedPolicy
}

// timedPolicy is the min-virtual-clock discrete-event scheduling/cost
// policy. Per-thread clocks and drain-pipeline state live here; buffered
// stores live in the core's shared store buffers, carrying their drain
// timestamps in entry.done.
type timedPolicy struct {
	clocks   []uint64 // per-thread virtual clock
	lastDone []uint64 // drain timestamp of each thread's newest issued store
	cores    []uint64 // per-core next-free issue slot (SMT only)
	elapsed  uint64   // makespan of the last Run
}

// NewTimedMachine builds a timed machine for cfg. It panics on invalid
// configuration.
func NewTimedMachine(cfg Config) *TimedMachine {
	c, err := cfg.withDefaults()
	if err != nil {
		panic(err)
	}
	if c.Model != ModelTSO {
		panic("tso: the timed engine models TSO only")
	}
	tp := &timedPolicy{
		clocks:   make([]uint64, c.Threads),
		lastDone: make([]uint64, c.Threads),
	}
	if c.SMT {
		tp.cores = make([]uint64, c.Threads/2)
	}
	m := &TimedMachine{tp: tp}
	m.cfg = c
	m.mem = newMemory(c.MemWords)
	m.bufs = make([]*storeBuffer, c.Threads)
	for i := range m.bufs {
		// The timed engine has no coalescing drain stage; the §7.3 stage
		// entry instead shows up as one extra slot of FIFO capacity, which
		// is exactly the observable S+1 bound.
		m.bufs[i] = newStoreBuffer(c.ObservableBound(), false)
	}
	m.pending = make([]*request, c.Threads)
	m.reqGate.init()
	m.pol = tp
	if c.Metrics {
		m.enableMetrics()
	}
	return m
}

// Elapsed returns the makespan of the last Run in virtual cycles: the
// maximum finishing clock over all threads.
func (m *TimedMachine) Elapsed() uint64 { return m.tp.elapsed }

// Reset rewinds the timed machine to its just-constructed state (see
// Machine.Reset); on top of the core state it clears the recorded
// makespan. Per-thread clocks need no clearing here — they restart at
// every Run.
func (m *TimedMachine) Reset() {
	m.Machine.Reset()
	m.tp.elapsed = 0
}

// ThreadCycles returns the finishing clock of thread tid after the last
// Run. During a run it reads tid's live clock, which is safe from tid's
// own program code: the machine computes one simulated thread at a time,
// and the gate handoff orders the engine's clock writes before the
// thread resumes (sched.Worker.Now relies on this).
func (m *TimedMachine) ThreadCycles(tid int) uint64 { return m.tp.clocks[tid] }

// reset zeroes the virtual clocks and drain-pipeline state. Thread clocks
// restart at every Run; memory persists.
func (p *timedPolicy) reset(m *Machine) {
	for i := range p.clocks {
		p.clocks[i] = 0
		p.lastDone[i] = 0
	}
	for i := range p.cores {
		p.cores[i] = 0
	}
}

// next picks the pending thread with the smallest virtual clock (lowest
// tid on ties), which keeps virtual time causally consistent. The timed
// policy never emits drain actions: drains happen at their timestamps,
// inside exec.
func (p *timedPolicy) next(m *Machine) action {
	best := -1
	for tid, r := range m.pending {
		if r == nil {
			continue
		}
		if best == -1 || p.clocks[tid] < p.clocks[best] {
			best = tid
		}
	}
	return action{id: best}
}

func (p *timedPolicy) bounded() bool { return false }

func (p *timedPolicy) zeroWorkIsNop() bool { return true }

func (p *timedPolicy) cancelled() bool { return false }

func (p *timedPolicy) drainLatency(m *Machine, e entry) uint64 { return e.done - e.born }

// issue charges k instruction-issue cycles to thread tid starting no
// earlier than its clock: on an SMT machine the cycles additionally
// serialize on the owning core's clock, so a busy sibling delays them —
// but a *stalled* sibling does not, because stalls never call issue.
func (p *timedPolicy) issue(tid int, k uint64) {
	if p.cores == nil {
		p.clocks[tid] += k
		return
	}
	core := tid / 2
	start := p.clocks[tid]
	if p.cores[core] > start {
		start = p.cores[core]
	}
	p.clocks[tid] = start + k
	p.cores[core] = start + k
}

// flushUpTo applies to memory, in drain-timestamp order, every buffered
// store (any thread) whose drain completes at or before virtual time t.
func (p *timedPolicy) flushUpTo(m *Machine, t uint64) {
	for {
		bestTid := -1
		var bestDone uint64
		for tid, b := range m.bufs {
			if len(b.entries) == 0 {
				continue
			}
			if d := b.entries[0].done; d <= t && (bestTid == -1 || d < bestDone) {
				bestTid = tid
				bestDone = d
			}
		}
		if bestTid == -1 {
			return
		}
		m.bufs[bestTid].drainOne(m.mem)
	}
}

func (p *timedPolicy) exec(m *Machine, r *request) response {
	buf := m.bufs[r.tid]
	cost := m.cfg.Cost
	p.flushUpTo(m, p.clocks[r.tid])
	switch r.kind {
	case opLoad:
		m.stats.Loads++
		p.issue(r.tid, cost.LoadCycles)
		if v, ok := buf.forward(r.addr); ok {
			m.stats.ForwardLoads++
			m.metForward(r.tid)
			return response{val: v}
		}
		return response{val: m.mem.read(r.addr)}
	case opStore:
		m.stats.Stores++
		for buf.full() {
			// Pipeline-entry stall: wait for the oldest entry to drain.
			p.clocks[r.tid] = maxU64(p.clocks[r.tid], buf.entries[0].done)
			p.flushUpTo(m, p.clocks[r.tid])
		}
		// Drains are pipelined: full latency from issue, but only the
		// throughput spacing behind the previous drain.
		done := maxU64(p.clocks[r.tid]+cost.DrainCycles, p.lastDone[r.tid]+cost.DrainThroughputCycles)
		buf.push(entry{addr: r.addr, val: r.val, done: done, born: p.clocks[r.tid]})
		m.metPush(r.tid, buf)
		p.lastDone[r.tid] = done
		p.issue(r.tid, cost.StoreCycles)
		return response{}
	case opFence:
		m.stats.Fences++
		// The drain wait is a stall (no core issue); only the fence's own
		// cycles are issued.
		if ld := p.lastDone[r.tid]; ld > p.clocks[r.tid] {
			m.metFenceStall(r.tid, ld-p.clocks[r.tid])
			p.clocks[r.tid] = ld
		}
		p.issue(r.tid, cost.FenceCycles)
		p.flushUpTo(m, p.clocks[r.tid])
		return response{}
	case opCAS:
		m.stats.CASes++
		if ld := p.lastDone[r.tid]; ld > p.clocks[r.tid] {
			m.metCASStall(r.tid, ld-p.clocks[r.tid])
			p.clocks[r.tid] = ld // stall: no core issue
		}
		p.flushUpTo(m, p.clocks[r.tid])
		p.issue(r.tid, cost.CASCycles)
		cur := m.mem.read(r.addr)
		if cur == r.val {
			m.mem.write(r.addr, r.val2)
			return response{val: cur, ok: true}
		}
		return response{val: cur, ok: false}
	case opWork:
		p.issue(r.tid, r.val)
		return response{}
	default:
		panic("tso: unknown op")
	}
}

// flush writes whatever is still buffered at the end of the run (in
// thread order, as the engine always has) and records the makespan.
func (p *timedPolicy) flush(m *Machine) {
	for _, b := range m.bufs {
		b.drainAll(m.mem)
	}
	p.elapsed = 0
	for _, c := range p.clocks {
		if c > p.elapsed {
			p.elapsed = c
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
