package tso

import (
	"bytes"
	"strings"
	"testing"
)

func TestDumpStateShowsBuffersAndMemory(t *testing.T) {
	m := NewMachine(Config{Threads: 2, BufferSize: 3, DrainBuffer: true, Seed: 1, DrainBias: 0.01})
	x := m.Alloc(2)
	var mid bytes.Buffer
	err := m.Run(
		func(c Context) {
			c.Store(x, 11)
			c.Store(x+1, 22)
			// Dump mid-run while holding the floor: the stores should
			// still be buffered under a starved drain schedule.
			m.DumpState(&mid, x, x+2)
		},
		func(c Context) { c.Load(x) },
	)
	if err != nil {
		t.Fatal(err)
	}
	out := mid.String()
	if !strings.Contains(out, "thread 0 buffer") || !strings.Contains(out, "thread 1 buffer") {
		t.Fatalf("missing buffer lines:\n%s", out)
	}
	if !strings.Contains(out, "=11") || !strings.Contains(out, "=22") {
		t.Fatalf("buffered stores not shown:\n%s", out)
	}
	if !strings.Contains(out, "=11 op") || !strings.Contains(out, "=22 op") {
		t.Fatalf("buffered stores missing op ids:\n%s", out)
	}
	if !strings.Contains(out, "model=TSO") {
		t.Fatalf("missing model:\n%s", out)
	}

	var after bytes.Buffer
	m.DumpState(&after, x, x+2)
	if !strings.Contains(after.String(), "[0]=11") || !strings.Contains(after.String(), "[1]=22") {
		t.Fatalf("post-run memory not shown:\n%s", after.String())
	}
}

func TestBufferedStores(t *testing.T) {
	m := NewMachine(Config{Threads: 1, BufferSize: 4, Seed: 2, DrainBias: 0.01})
	x := m.Alloc(4)
	var during int
	err := m.Run(func(c Context) {
		c.Store(x, 1)
		c.Store(x+1, 2)
		during = m.BufferedStores(0)
		c.Fence()
		if got := m.BufferedStores(0); got != 0 {
			panic("buffer not empty after fence")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if during < 1 || during > 2 {
		t.Fatalf("buffered count mid-run = %d want 1..2", during)
	}
	if m.BufferedStores(0) != 0 {
		t.Fatal("buffer not flushed after run")
	}
}
