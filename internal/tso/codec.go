package tso

// This file is the checkpoint wire layer: a Codec interface with two
// implementations — the legacy indented-JSON format the first spools
// used, and the versioned binary format that is now the default
// everywhere checkpoints flow (the tsoserve spool, the tsoexplore
// -checkpoint file, the shard wire). The binary format exists because a
// frontier unit is mostly small integers (choice indices and fanouts):
// varint packing shrinks a checkpoint by roughly an order of magnitude
// against indented JSON, which is the difference between a spool that
// survives billion-schedule campaigns and one that does not.
//
// DecodeCheckpoint sniffs the format from the first bytes (the binary
// magic vs JSON's leading '{'), so every existing caller — resume paths,
// the serve spool, corpus files — reads legacy JSON spools and new
// binary ones through the same entry point.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Codec serializes checkpoints. Implementations must be stateless and
// safe for concurrent use; both directions stream (encode never builds
// the whole wire image in memory, decode never slurps the reader).
type Codec interface {
	// Name is the codec's stable identifier ("binary", "json") — the
	// spelling config files and CLI flags use.
	Name() string
	// EncodeCheckpoint writes cp to w.
	EncodeCheckpoint(w io.Writer, cp *Checkpoint) error
	// DecodeCheckpoint reads one checkpoint from r and validates it
	// (Checkpoint.Validate); malformed frontiers fail here rather than
	// corrupt a later merge.
	DecodeCheckpoint(r io.Reader) (*Checkpoint, error)
}

// DefaultCodec is the codec Checkpoint.Encode writes: the binary format.
var DefaultCodec Codec = BinaryCodec{}

// CodecByName resolves a codec identifier ("binary", "json"); the empty
// string selects the default.
func CodecByName(name string) (Codec, error) {
	switch name {
	case "", BinaryCodec{}.Name():
		return BinaryCodec{}, nil
	case JSONCodec{}.Name():
		return JSONCodec{}, nil
	}
	return nil, fmt.Errorf("tso: unknown checkpoint codec %q", name)
}

// JSONCodec is the legacy wire format: one indented JSON document per
// checkpoint. Kept decodable forever so pre-binary spools migrate by
// simply being resumed; new spools should not choose it except for
// human inspection.
type JSONCodec struct{}

// Name returns "json".
func (JSONCodec) Name() string { return "json" }

// EncodeCheckpoint writes the checkpoint as indented JSON.
func (JSONCodec) EncodeCheckpoint(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// DecodeCheckpoint reads one JSON checkpoint and validates it.
func (JSONCodec) DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("tso: decoding checkpoint: %w", err)
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return &cp, nil
}

// binMagic opens every binary checkpoint: four tag bytes plus one wire
// format version byte. The tag cannot collide with JSON (which starts
// with whitespace or '{'), which is what DecodeCheckpoint's sniffing
// relies on. Version 1 is the original layout; version 2 added the
// DPOR mode flag, the three DPOR prune counters, and the per-unit
// explored-branch masks. The encoder always writes the current
// version; the decoder reads both (a v1 spool decodes with the new
// fields zero, exactly its meaning).
var binMagic = [5]byte{'T', 'S', 'O', 'F', binVersion}

const (
	binVersion   = 2
	binVersionV1 = 1
)

// ErrCodecVersion is the sentinel DecodeCheckpoint wraps when a binary
// checkpoint carries the TSOF tag but a wire version this build does
// not speak — the codec axis of resume refusal (compare with
// errors.Is).
var ErrCodecVersion = errors.New("tso: unsupported binary checkpoint format version")

// Decoder sanity caps: lengths beyond these are corruption, not data
// (the deepest real frontier prefixes are a few thousand choices, and
// outcome strings are short litmus verdicts). They bound the allocation
// a hostile or torn spool file can cause.
const (
	binMaxString = 1 << 20
	binMaxSlice  = 1 << 26
)

// BinaryCodec is the default wire format: the magic header followed by
// every checkpoint field in a fixed order, integers as signed varints
// (signed so even structurally invalid values round-trip to Validate
// instead of corrupting silently), strings length-prefixed, and the
// outcome table written as one sorted (string, count) run so equal
// checkpoints encode byte-identically.
type BinaryCodec struct{}

// Name returns "binary".
func (BinaryCodec) Name() string { return "binary" }

// binWriter is the encoder's streaming state: a buffered writer, a
// varint scratch, and a sticky first error so field writes chain without
// per-call error plumbing.
type binWriter struct {
	w   *bufio.Writer
	tmp [binary.MaxVarintLen64]byte
	err error
}

func (b *binWriter) vint(v int64) {
	if b.err != nil {
		return
	}
	n := binary.PutVarint(b.tmp[:], v)
	_, b.err = b.w.Write(b.tmp[:n])
}

func (b *binWriter) uvint(v uint64) {
	if b.err != nil {
		return
	}
	n := binary.PutUvarint(b.tmp[:], v)
	_, b.err = b.w.Write(b.tmp[:n])
}

func (b *binWriter) str(s string) {
	b.uvint(uint64(len(s)))
	if b.err != nil {
		return
	}
	_, b.err = b.w.WriteString(s)
}

func (b *binWriter) bool(v bool) {
	var x int64
	if v {
		x = 1
	}
	b.vint(x)
}

func (b *binWriter) ints(xs []int) {
	b.uvint(uint64(len(xs)))
	for _, x := range xs {
		b.vint(int64(x))
	}
}

func (b *binWriter) uints64(xs []uint64) {
	b.uvint(uint64(len(xs)))
	for _, x := range xs {
		b.uvint(x)
	}
}

// EncodeCheckpoint writes cp in the binary wire format.
func (BinaryCodec) EncodeCheckpoint(w io.Writer, cp *Checkpoint) error {
	bw := &binWriter{w: bufio.NewWriter(w)}
	if _, err := bw.w.Write(binMagic[:]); err != nil {
		return fmt.Errorf("tso: encoding checkpoint: %w", err)
	}
	bw.vint(int64(cp.Version))
	bw.vint(int64(cp.Threads))
	bw.vint(int64(cp.BufferSize))
	bw.str(cp.Model)
	bw.bool(cp.DrainBuffer)
	bw.str(cp.Label)
	bw.vint(int64(cp.Reorder))
	bw.bool(cp.DPOR)
	bw.vint(int64(cp.Runs))
	bw.vint(int64(cp.StepLimited))
	bw.vint(int64(cp.Tree.MaxDepth))
	bw.vint(int64(cp.Tree.MaxFanout))
	bw.vint(cp.Tree.ChoicePoints)
	bw.vint(cp.Prune.StatesSeen)
	bw.vint(cp.Prune.StatesDeduped)
	bw.vint(cp.Prune.SubtreesCut)
	bw.vint(cp.Prune.SchedulesSaved)
	bw.vint(cp.Prune.SleepSkips)
	bw.vint(cp.Prune.ReorderSkips)
	bw.vint(cp.Prune.DPORRaces)
	bw.vint(cp.Prune.DPORBacktracks)
	bw.vint(cp.Prune.DPORSleepSkips)
	// The outcome table: sorted keys make the encoding canonical, so two
	// equal checkpoints are byte-equal on the wire (spool diffing, test
	// golden files).
	keys := make([]string, 0, len(cp.Counts))
	for k := range cp.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw.uvint(uint64(len(keys)))
	for _, k := range keys {
		bw.str(k)
		bw.vint(int64(cp.Counts[k]))
	}
	bw.ints(cp.MaxOccupancy)
	bw.uvint(uint64(len(cp.Units)))
	for i := range cp.Units {
		u := &cp.Units[i]
		bw.ints(u.Root)
		bw.ints(u.RootFanout)
		bw.ints(u.Prefix)
		bw.ints(u.Fanout)
		bw.uints64(u.Done)
	}
	if bw.err == nil {
		bw.err = bw.w.Flush()
	}
	if bw.err != nil {
		return fmt.Errorf("tso: encoding checkpoint: %w", bw.err)
	}
	return nil
}

// binReader mirrors binWriter for decoding, with the same sticky-error
// chaining plus the sanity caps on declared lengths.
type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

func (b *binReader) vint() int64 {
	if b.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(b.r)
	b.fail(err)
	return v
}

func (b *binReader) uvint() uint64 {
	if b.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(b.r)
	b.fail(err)
	return v
}

func (b *binReader) length(max uint64) int {
	n := b.uvint()
	if b.err == nil && n > max {
		b.fail(fmt.Errorf("implausible length %d", n))
	}
	if b.err != nil {
		return 0
	}
	return int(n)
}

func (b *binReader) str() string {
	n := b.length(binMaxString)
	if b.err != nil || n == 0 {
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(b.r, buf); err != nil {
		b.fail(err)
		return ""
	}
	return string(buf)
}

func (b *binReader) bool() bool { return b.vint() != 0 }

func (b *binReader) ints() []int {
	n := b.length(binMaxSlice)
	if b.err != nil || n == 0 {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = int(b.vint())
	}
	if b.err != nil {
		return nil
	}
	return xs
}

func (b *binReader) uints64() []uint64 {
	n := b.length(binMaxSlice)
	if b.err != nil || n == 0 {
		return nil
	}
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = b.uvint()
	}
	if b.err != nil {
		return nil
	}
	return xs
}

// DecodeCheckpoint reads one binary checkpoint and validates it.
func (BinaryCodec) DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var magic [len(binMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tso: decoding checkpoint: %w", err)
	}
	if [4]byte(magic[:4]) != [4]byte(binMagic[:4]) {
		return nil, fmt.Errorf("tso: not a binary checkpoint (bad magic)")
	}
	ver := magic[4]
	if ver != binVersionV1 && ver != binVersion {
		return nil, fmt.Errorf("%w %d", ErrCodecVersion, ver)
	}
	b := &binReader{r: br}
	cp := &Checkpoint{}
	cp.Version = int(b.vint())
	cp.Threads = int(b.vint())
	cp.BufferSize = int(b.vint())
	cp.Model = b.str()
	cp.DrainBuffer = b.bool()
	cp.Label = b.str()
	cp.Reorder = int(b.vint())
	if ver >= binVersion {
		cp.DPOR = b.bool()
	}
	cp.Runs = int(b.vint())
	cp.StepLimited = int(b.vint())
	cp.Tree.MaxDepth = int(b.vint())
	cp.Tree.MaxFanout = int(b.vint())
	cp.Tree.ChoicePoints = b.vint()
	cp.Prune.StatesSeen = b.vint()
	cp.Prune.StatesDeduped = b.vint()
	cp.Prune.SubtreesCut = b.vint()
	cp.Prune.SchedulesSaved = b.vint()
	cp.Prune.SleepSkips = b.vint()
	cp.Prune.ReorderSkips = b.vint()
	if ver >= binVersion {
		cp.Prune.DPORRaces = b.vint()
		cp.Prune.DPORBacktracks = b.vint()
		cp.Prune.DPORSleepSkips = b.vint()
	}
	nCounts := b.length(binMaxSlice)
	cp.Counts = make(map[string]int, nCounts)
	for i := 0; i < nCounts && b.err == nil; i++ {
		k := b.str()
		cp.Counts[k] = int(b.vint())
	}
	cp.MaxOccupancy = b.ints()
	if cp.MaxOccupancy == nil {
		cp.MaxOccupancy = []int{}
	}
	nUnits := b.length(binMaxSlice)
	for i := 0; i < nUnits && b.err == nil; i++ {
		u := UnitCheckpoint{
			Root:       b.ints(),
			RootFanout: b.ints(),
			Prefix:     b.ints(),
			Fanout:     b.ints(),
		}
		if ver >= binVersion {
			u.Done = b.uints64()
		}
		cp.Units = append(cp.Units, u)
	}
	if b.err != nil {
		return nil, fmt.Errorf("tso: decoding checkpoint: %w", b.err)
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}

// DecodeCheckpoint reads one checkpoint in either wire format, sniffing
// binary (the TSOF magic) against legacy JSON (leading whitespace or
// '{') from the first bytes — the migration path: a pre-binary spool
// resumes under the binary-default build through the same call, and the
// next write moves it to the new format. Structurally invalid frontiers
// are rejected via Validate: checkpoints arrive from disk spools and the
// verification service's wire, so malformed input must fail loudly here
// rather than corrupt a later merge.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binMagic))
	if err != nil && len(head) == 0 {
		return nil, fmt.Errorf("tso: decoding checkpoint: %w", err)
	}
	if len(head) == len(binMagic) && [4]byte(head[:4]) == [4]byte(binMagic[:4]) {
		// Any TSOF-tagged stream is the binary codec's to judge — an
		// unknown version byte must surface as ErrCodecVersion, not fall
		// through to a JSON parse error.
		return BinaryCodec{}.DecodeCheckpoint(br)
	}
	return JSONCodec{}.DecodeCheckpoint(br)
}
