package tso

// This file is the exhaustive engine's dependence layer: one
// classification of every schedulable action — thread steps (load,
// store, fence, CAS, work) and store-buffer drains — by its read/write
// footprint over an extended address space, and the relations every
// pruning mode derives from it.
//
//   - dependent(): the single commutativity oracle. Two actions commute
//     (swapping them in any schedule changes neither the final state nor
//     each other's enabledness) unless they belong to the same proc or
//     their footprints conflict (write/write or read/write overlap).
//     Source-set DPOR (dpor.go) consumes exactly this relation.
//   - The legacy sleep-set relation independent(actID, actID), which
//     only ever recognized drain/drain commutation, is re-derived below
//     as the drain/drain special case of footprint disjointness.
//   - Per-run vector clocks over the executed events (dpor.go) define
//     happens-before as the transitive closure of per-proc order plus
//     dependence across procs — the relation race detection needs.
//
// The extended address space: every shared-memory word keeps its Addr,
// and every thread's store buffer gets one pseudo-address bufAddr(t)
// (encoded negative so it can never collide with a real word). The
// pseudo-address is what makes buffer mutations visible to a purely
// read/write relation: a store pushes into its own buffer (writes B_t),
// a drain pops from it (writes B_t plus the drained word), and a load
// consults it for forwarding (reads B_t). Footprints are conservative
// over-approximations of the true effect — e.g. a store into a full
// buffer forces a drain, so it is charged with every address the buffer
// currently holds — which is sound for every consumer: an
// over-approximated dependence can only schedule extra explorations,
// never skip a required one.
//
// Procs: thread t is proc t; thread t's store buffer is proc T+t. A
// buffer's drains are serialized with each other (TSO's FIFO drain
// rule) but interleave freely with the owning thread's steps — exactly
// the asynchrony the paper's TSO[S] machine models — so a buffer gets
// its own proc rather than sharing its thread's. Under PSO the drains
// of one buffer are *not* serialized (the order is per-address only),
// which breaks the proc abstraction; DPOR therefore requires ModelTSO
// (see dporCheck in dpor.go).

// fpAddr is an address in the extended (memory ∪ buffer pseudo-address)
// space: real words are their non-negative Addr, buffers are negative.
type fpAddr int32

// bufAddr is the pseudo-address of thread tid's store buffer.
func bufAddr(tid int) fpAddr { return fpAddr(-(tid + 1)) }

// footprint is an action's read and write sets over the extended address
// space. The slices are tiny (a handful of entries) and unsorted.
type footprint struct {
	reads, writes []fpAddr
}

func fpContains(s []fpAddr, x fpAddr) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func fpOverlap(a, b []fpAddr) bool {
	for _, x := range a {
		if fpContains(b, x) {
			return true
		}
	}
	return false
}

// fpConflict reports whether two footprints conflict: any write of one
// overlaps a read or write of the other.
func fpConflict(a, b footprint) bool {
	return fpOverlap(a.writes, b.writes) ||
		fpOverlap(a.reads, b.writes) ||
		fpOverlap(a.writes, b.reads)
}

// dependent is the engine's one commutativity oracle: two actions are
// dependent iff they belong to the same proc (per-proc order is fixed)
// or their footprints conflict.
func dependent(procA int32, a footprint, procB int32, b footprint) bool {
	return procA == procB || fpConflict(a, b)
}

// procFor maps an action to its dependence proc: thread t is proc t,
// thread t's store buffer is proc threads+t.
func procFor(threads int, act action) int32 {
	if act.drain {
		return int32(threads + act.id)
	}
	return int32(act.id)
}

// footprintInto computes act's footprint in m's current state, appending
// into the provided backing slices (reset to length zero first) so hot
// paths can reuse scratch. The returned footprint aliases them.
func footprintInto(m *Machine, act action, reads, writes []fpAddr) footprint {
	reads, writes = reads[:0], writes[:0]
	if act.drain {
		// A drain mutates its buffer and, unless the step is internal (a
		// move into the stage, or a same-address coalesce), writes one
		// memory word.
		writes = append(writes, bufAddr(act.id))
		if eff := drainEffect(m, act); eff >= 0 {
			writes = append(writes, fpAddr(eff))
		}
		return footprint{reads: reads, writes: writes}
	}
	req := m.pending[act.id]
	if req == nil {
		return footprint{reads: reads, writes: writes}
	}
	b := m.bufs[act.id]
	switch req.kind {
	case opLoad:
		// Reads the word (from memory or by forwarding) and consults the
		// buffer; charged with both so it conflicts with its own buffer's
		// drains — a drain changes whether the load forwards.
		reads = append(reads, fpAddr(req.addr), bufAddr(act.id))
	case opStore:
		writes = append(writes, bufAddr(act.id))
		if b.full() {
			// A store into a full buffer forces a drain before pushing;
			// charge it with everything the buffer could flush.
			writes = appendBuffered(writes, b)
		}
	case opFence:
		writes = append(writes, bufAddr(act.id))
		writes = appendBuffered(writes, b)
	case opCAS:
		// Drains the whole buffer, then reads and writes the target word
		// atomically.
		reads = append(reads, fpAddr(req.addr))
		writes = append(writes, fpAddr(req.addr), bufAddr(act.id))
		writes = appendBuffered(writes, b)
	case opWork:
		// Thread-local; no shared effect.
	}
	return footprint{reads: reads, writes: writes}
}

// footprintAlloc is footprintInto with exact-size owned slices, for
// storage that outlives the current run (frame branch footprints).
func footprintAlloc(m *Machine, act action) footprint {
	fp := footprintInto(m, act, nil, nil)
	return footprint{
		reads:  append([]fpAddr(nil), fp.reads...),
		writes: append([]fpAddr(nil), fp.writes...),
	}
}

// appendBuffered adds every address the buffer currently holds (entries
// and drain stage), deduplicated against dst.
func appendBuffered(dst []fpAddr, b *storeBuffer) []fpAddr {
	for _, en := range b.entries {
		if x := fpAddr(en.addr); !fpContains(dst, x) {
			dst = append(dst, x)
		}
	}
	if b.hasStage {
		if x := fpAddr(b.stage.addr); !fpContains(dst, x) {
			dst = append(dst, x)
		}
	}
	return dst
}

// actID identifies a schedulable action for the legacy sleep-set
// commutativity analysis: a drain is named by its thread and the memory
// address its next step writes (-1 when the step is internal to the
// buffer: a move into the drain stage, or a same-address coalesce).
// Thread actions never commute under this conservative analysis and
// carry drain=false.
type actID struct {
	drain bool
	tid   int
	addr  Addr
}

// independent reports whether two actions commute under the legacy
// analysis: drains by different threads whose memory effects cannot
// conflict. Everything else is conservatively dependent. This is the
// drain/drain special case of the footprint relation: a drain's
// footprint writes {bufAddr(tid)} ∪ {addr | addr >= 0}, so two drains'
// footprints are disjoint exactly when the threads differ and the
// effect addresses differ or either is buffer-internal —
// TestIndependentMatchesFootprints pins the equivalence.
func independent(a, b actID) bool {
	return a.drain && b.drain && a.tid != b.tid &&
		(a.addr < 0 || b.addr < 0 || a.addr != b.addr)
}

// drainEffect mirrors storeBuffer.drainOne/drainAt: the address the drain
// writes to memory, or -1 for buffer-internal steps.
func drainEffect(m *Machine, act action) Addr {
	b := m.bufs[act.id]
	if m.cfg.Model == ModelPSO {
		return b.entries[act.idx].addr
	}
	if !b.useStage {
		return b.entries[0].addr
	}
	switch {
	case len(b.entries) == 0 && b.hasStage:
		return b.stage.addr
	case !b.hasStage:
		return -1 // head moves into the empty stage
	case b.entries[0].addr == b.stage.addr:
		return -1 // same-address coalesce
	default:
		return b.stage.addr
	}
}

// actIDsFor names every action at a choice point for the legacy
// commutativity analysis.
func actIDsFor(m *Machine, acts []action) []actID {
	ids := make([]actID, len(acts))
	for i, a := range acts {
		if a.drain {
			ids[i] = actID{drain: true, tid: a.id, addr: drainEffect(m, a)}
		} else {
			ids[i] = actID{tid: a.id}
		}
	}
	return ids
}
