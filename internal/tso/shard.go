package tso

// This file exports the shard-level entry points of the exhaustive
// engine: splitting a program's decision tree into distributable work
// units without exploring it (ShardFrontier), decomposing a checkpoint
// into independently explorable single-unit shards (Checkpoint.Shards),
// and folding shard results back into one total with the engine's
// deterministic merge (Fold). The verification service (internal/serve)
// is the primary consumer: its dispatcher ships shards to a worker pool
// — or, via the same JSON wire format, to other processes — and folds
// the slices as they complete.

import "sync"

// ShardFrontier partitions the decision tree of the program built by
// mkProgs into up to opts.Units choice-prefix work units by breadth-first
// probe runs, without exploring any schedule. The returned zero-progress
// Checkpoint's units partition the program's schedules exactly, so
// resuming it (ExhaustiveOptions.Resume) — or exploring its Shards
// independently and folding the results — accounts every schedule exactly
// once. Tree statistics for the choice points consumed by splitting are
// carried in the checkpoint so a later fold reports the whole tree.
// Probe runs respect opts.MaxStepsPerRun and are never charged against
// any run budget. Returns an error for an invalid cfg; panics (like the
// exploration entry points) if the program fails or is not
// replay-deterministic.
func ShardFrontier(cfg Config, mkProgs func(m *Machine) []func(Context), opts ExhaustiveOptions) (*Checkpoint, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if o.DPOR {
		if err := dporCheck(c, o); err != nil {
			return nil, err
		}
	}
	e := &mcEngine{cfg: c, mk: mkProgs, opts: o, bound: o.MaxReorderings}
	units := e.split()
	reorder := 0
	if o.MaxReorderings > 0 {
		reorder = o.MaxReorderings
	}
	cp := &Checkpoint{
		Version:      1,
		Threads:      c.Threads,
		BufferSize:   c.BufferSize,
		Model:        c.Model.String(),
		DrainBuffer:  c.DrainBuffer,
		Label:        o.Label,
		Reorder:      reorder,
		DPOR:         o.DPOR,
		Counts:       map[string]int{},
		MaxOccupancy: make([]int, c.Threads),
		Tree:         e.splitTree,
	}
	for _, u := range units {
		cp.Units = append(cp.Units, UnitCheckpoint{Root: u.root, RootFanout: u.rootFan})
	}
	return cp, nil
}

// cloneUnit deep-copies a unit checkpoint so shards share no slices.
func cloneUnit(u UnitCheckpoint) UnitCheckpoint {
	return UnitCheckpoint{
		Root:       append([]int(nil), u.Root...),
		RootFanout: append([]int(nil), u.RootFanout...),
		Prefix:     append([]int(nil), u.Prefix...),
		Fanout:     append([]int(nil), u.Fanout...),
		Done:       append([]uint64(nil), u.Done...),
	}
}

// Shards decomposes the checkpoint into its accumulated base — counts and
// statistics, no units — plus one single-unit checkpoint per unexplored
// work unit: the distributable form of the frontier. Each shard is a
// complete, independently resumable checkpoint with zero accumulated
// progress, so exploring it yields exactly that unit's delta; folding the
// base and every shard's result with a Fold reproduces the undivided
// exploration's counts. The returned checkpoints share no mutable state
// with cp or each other.
func (cp *Checkpoint) Shards() (base *Checkpoint, shards []*Checkpoint) {
	base = &Checkpoint{
		Version:      cp.Version,
		Threads:      cp.Threads,
		BufferSize:   cp.BufferSize,
		Model:        cp.Model,
		DrainBuffer:  cp.DrainBuffer,
		Label:        cp.Label,
		Reorder:      cp.Reorder,
		DPOR:         cp.DPOR,
		Runs:         cp.Runs,
		StepLimited:  cp.StepLimited,
		Counts:       map[string]int{},
		MaxOccupancy: append([]int(nil), cp.MaxOccupancy...),
		Tree:         cp.Tree,
		Prune:        cp.Prune,
	}
	for k, v := range cp.Counts {
		base.Counts[k] = v
	}
	for _, u := range cp.Units {
		shards = append(shards, &Checkpoint{
			Version:      cp.Version,
			Threads:      cp.Threads,
			BufferSize:   cp.BufferSize,
			Model:        cp.Model,
			DrainBuffer:  cp.DrainBuffer,
			Label:        cp.Label,
			Reorder:      cp.Reorder,
			DPOR:         cp.DPOR,
			Counts:       map[string]int{},
			MaxOccupancy: make([]int, cp.Threads),
			Units:        []UnitCheckpoint{cloneUnit(u)},
		})
	}
	return base, shards
}

// Fold accumulates shard explorations into one total with the same
// deterministic merge ExploreExhaustive applies to its in-process work
// units: counts and run tallies sum, occupancy high-water marks max, and
// the tree/prune statistic merges are commutative — so the folded result
// is independent of the order shards complete in, and concurrent shards
// can be folded as they finish (Fold is internally synchronized). Use
// NewFold; the zero Fold is not usable.
type Fold struct {
	mu          sync.Mutex
	counts      map[string]int
	maxOcc      []int
	runs        int
	stepLimited int
	tree        TreeStats
	prune       PruneStats
	memo        MemoStats
	label       string
	reorder     int
	dpor        bool
}

// NewFold returns an empty fold for a machine with the given thread
// count (the length of the occupancy high-water vector).
func NewFold(threads int) *Fold {
	return &Fold{counts: map[string]int{}, maxOcc: make([]int, threads)}
}

// AddBase folds the accumulated progress of a checkpoint — counts, run
// tallies, occupancy, tree/prune statistics — ignoring its units. Call it
// once with the base of Checkpoint.Shards (or a resumed spool snapshot)
// before folding shard results.
func (f *Fold) AddBase(cp *Checkpoint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, v := range cp.Counts {
		f.counts[k] += v
	}
	f.foldOcc(cp.MaxOccupancy)
	f.runs += cp.Runs
	f.stepLimited += cp.StepLimited
	f.tree.merge(cp.Tree)
	f.prune.merge(cp.Prune)
	// The base's identity metadata carries into every checkpoint the fold
	// writes, so sliced explorations keep the phase label, reorder bound
	// and DPOR mode their shards were cut under.
	f.label = cp.Label
	f.reorder = cp.Reorder
	f.dpor = cp.DPOR
}

// Add folds one shard exploration's delta — the OutcomeSet and
// ExploreResult of an ExploreExhaustive call resumed from a zero-progress
// shard checkpoint.
func (f *Fold) Add(set OutcomeSet, res ExploreResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for k, v := range set.Counts {
		f.counts[k] += v
	}
	f.foldOcc(set.MaxOccupancy)
	f.runs += res.Runs
	f.stepLimited += res.StepLimited
	f.tree.merge(res.Tree)
	f.prune.merge(res.Prune)
	f.memo.merge(res.Memo)
}

func (f *Fold) foldOcc(occ []int) {
	for i, v := range occ {
		if i < len(f.maxOcc) && v > f.maxOcc[i] {
			f.maxOcc[i] = v
		}
	}
}

// Result snapshots the folded totals. complete is the caller's statement
// that every unit has been folded (the fold cannot know how many shards
// are outstanding); it is reported verbatim in the ExploreResult. The
// returned set shares no state with the fold.
func (f *Fold) Result(complete bool) (OutcomeSet, ExploreResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	res := ExploreResult{
		Runs:        f.runs,
		Complete:    complete,
		StepLimited: f.stepLimited,
		Tree:        f.tree,
		Prune:       f.prune,
		Memo:        f.memo,
	}
	set := OutcomeSet{Counts: map[string]int{}, MaxOccupancy: append([]int(nil), f.maxOcc...), res: res}
	for k, v := range f.counts {
		set.Counts[k] = v
	}
	return set, res
}

// Checkpoint serializes the fold's progress plus the given unexplored
// units as a resumable checkpoint under cfg — the spool snapshot a
// long-running job writes between slices. The units are deep-copied.
// Returns an error when cfg is invalid.
func (f *Fold) Checkpoint(cfg Config, units []UnitCheckpoint) (*Checkpoint, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := &Checkpoint{
		Version:      1,
		Threads:      c.Threads,
		BufferSize:   c.BufferSize,
		Model:        c.Model.String(),
		DrainBuffer:  c.DrainBuffer,
		Label:        f.label,
		Reorder:      f.reorder,
		DPOR:         f.dpor,
		Runs:         f.runs,
		StepLimited:  f.stepLimited,
		Counts:       map[string]int{},
		MaxOccupancy: append([]int(nil), f.maxOcc...),
		Tree:         f.tree,
		Prune:        f.prune,
	}
	for k, v := range f.counts {
		cp.Counts[k] = v
	}
	for _, u := range units {
		cp.Units = append(cp.Units, cloneUnit(u))
	}
	return cp, nil
}
