package tso

import (
	"reflect"
	"testing"
)

// equivProgs builds the engine-equivalence litmus program: each thread
// works a fixed straight-line op mix (stores, forwarded and drained loads,
// a fence, an always-succeeding CAS) over a private address range, so the
// final memory image and the per-op counts are schedule-independent. Both
// engines must agree on them exactly — the refactor's "one core, two
// policies" claim, checked end to end.
func equivProgs(m *Machine, threads int) (progs []func(Context), bases []Addr) {
	bases = make([]Addr, threads)
	for t := range bases {
		bases[t] = m.Alloc(8)
	}
	for t := 0; t < threads; t++ {
		base := bases[t]
		seed := uint64(t+1) * 100
		progs = append(progs, func(c Context) {
			for i := 0; i < 6; i++ {
				c.Store(base+Addr(i%4), seed+uint64(i))
			}
			// Forwarded from the buffer or read from memory — either way
			// the newest private value, on both engines.
			if got := c.Load(base + 3); got != seed+3 {
				panic("stale private load")
			}
			c.Work(3)
			c.Fence()
			// Post-fence the drained value is certain, so this CAS succeeds
			// on every schedule (retries would skew the op counts).
			if _, ok := c.CAS(base, seed+4, seed+40); !ok {
				panic("private CAS failed")
			}
			c.Store(base+4, seed+50)
			if got := c.Load(base + 4); got != seed+50 {
				panic("stale private load after CAS")
			}
		})
	}
	return progs, bases
}

// TestEngineEquivalence runs the same program on the chaos engine (with a
// drain-starving bias, to maximize reordering) and the timed engine, and
// requires identical final memory and identical op counts.
func TestEngineEquivalence(t *testing.T) {
	const threads = 3
	run := func(t *testing.T, mk func(Config) *Machine, cfg Config) (mem []uint64, st Stats) {
		t.Helper()
		cfg.Threads = threads
		cfg.BufferSize = 4
		cfg.DrainBuffer = true
		m := mk(cfg)
		progs, bases := equivProgs(m, threads)
		if err := m.Run(progs...); err != nil {
			t.Fatal(err)
		}
		for _, base := range bases {
			for i := 0; i < 8; i++ {
				mem = append(mem, m.Peek(base+Addr(i)))
			}
		}
		return mem, m.Stats()
	}

	chaosMem, chaosStats := run(t, NewMachine, Config{Seed: 7, DrainBias: 0.02})
	timedMem, timedStats := run(t, func(c Config) *Machine { return &NewTimedMachine(c).Machine }, Config{})

	if !reflect.DeepEqual(chaosMem, timedMem) {
		t.Errorf("final memory differs:\nchaos: %v\ntimed: %v", chaosMem, timedMem)
	}
	type opCounts struct{ Loads, Stores, Fences, CASes int64 }
	chaosOps := opCounts{chaosStats.Loads, chaosStats.Stores, chaosStats.Fences, chaosStats.CASes}
	timedOps := opCounts{timedStats.Loads, timedStats.Stores, timedStats.Fences, timedStats.CASes}
	if chaosOps != timedOps {
		t.Errorf("op counts differ:\nchaos: %+v\ntimed: %+v", chaosOps, timedOps)
	}
	want := opCounts{Loads: 2 * threads, Stores: 7 * threads, Fences: threads, CASes: threads}
	if chaosOps != want {
		t.Errorf("op counts = %+v want %+v", chaosOps, want)
	}
}

// TestStatsAddMergesEveryField audits Stats.add against two non-trivial
// values: counters sum, the high-water mark takes the max. The NumField
// guard makes adding a Stats field without extending add (and this test) a
// failure instead of a silent drop.
func TestStatsAddMergesEveryField(t *testing.T) {
	a := Stats{Loads: 1, Stores: 2, Fences: 3, CASes: 4, Drains: 5,
		Coalesces: 6, ForwardLoads: 7, MaxOccupancy: 8, Steps: 9}
	b := Stats{Loads: 10, Stores: 20, Fences: 30, CASes: 40, Drains: 50,
		Coalesces: 60, ForwardLoads: 70, MaxOccupancy: 3, Steps: 90}
	a.add(b)
	want := Stats{Loads: 11, Stores: 22, Fences: 33, CASes: 44, Drains: 55,
		Coalesces: 66, ForwardLoads: 77, MaxOccupancy: 8, Steps: 99}
	if a != want {
		t.Errorf("merged = %+v want %+v", a, want)
	}
	if n := reflect.TypeOf(Stats{}).NumField(); n != 9 {
		t.Errorf("Stats has %d fields; audit add() and this test, then update the count", n)
	}
}

// TestMetricsDisabledIsNil checks the zero-cost-when-disabled contract's
// visible half: no Config.Metrics, no series.
func TestMetricsDisabledIsNil(t *testing.T) {
	m := NewMachine(Config{Threads: 1, BufferSize: 2, Seed: 1})
	a := m.Alloc(1)
	if err := m.Run(func(c Context) { c.Store(a, 1); c.Fence() }); err != nil {
		t.Fatal(err)
	}
	if m.Metrics() != nil {
		t.Fatal("Metrics() non-nil without Config.Metrics")
	}
}

// TestMetricsSeries exercises the recorded series on both engines: the
// occupancy histogram samples every store, forwarded loads are counted,
// and every drained entry contributes a latency sample.
func TestMetricsSeries(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(Config) *Machine
	}{
		{"chaos", NewMachine},
		{"timed", func(c Config) *Machine { return &NewTimedMachine(c).Machine }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.mk(Config{Threads: 2, BufferSize: 3, Seed: 3, Metrics: true})
			progs, _ := equivProgs(m, 2)
			if err := m.Run(progs...); err != nil {
				t.Fatal(err)
			}
			met := m.Metrics()
			if met == nil {
				t.Fatal("no metrics")
			}
			if met.Bound != 3 {
				t.Errorf("bound = %d", met.Bound)
			}
			st := m.Stats()
			var pushes, drained, forwards int64
			for _, th := range met.Threads {
				if len(th.OccupancyHist) != met.Bound+1 {
					t.Errorf("thread %d hist has %d buckets", th.Thread, len(th.OccupancyHist))
				}
				for _, c := range th.OccupancyHist {
					pushes += c
				}
				drained += th.DrainedEntries
				forwards += th.ForwardLoads
				if th.DrainedEntries > 0 && th.DrainLatencyMax == 0 && tc.name == "timed" {
					t.Errorf("thread %d drained %d entries with zero max latency", th.Thread, th.DrainedEntries)
				}
			}
			if pushes != st.Stores {
				t.Errorf("histogram samples %d != stores %d", pushes, st.Stores)
			}
			if drained != st.Drains {
				t.Errorf("latency samples %d != drains %d", drained, st.Drains)
			}
			if forwards != st.ForwardLoads {
				t.Errorf("forward-load series %d != stats %d", forwards, st.ForwardLoads)
			}
		})
	}
}
