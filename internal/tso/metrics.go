package tso

// This file is the machine core's observability layer. When Config.Metrics
// is set, the core records per-thread metric series — the signals the
// paper's §7–§8 arguments are built on (buffer occupancy, drain timing,
// stall costs) — at a handful of guarded instrumentation points. With
// Metrics unset, every hook is a nil check and the series cost nothing.
//
// Units follow the engine's clock: the timed policy reports virtual
// cycles, the chaos and chooser policies report scheduler steps (for
// drain latency) or forced drains (for fence/CAS stalls).

// MachineMetrics is the per-thread metric series a machine records when
// Config.Metrics is set.
type MachineMetrics struct {
	// Bound is the configured observable reordering bound S (or S+1 with
	// the drain stage); occupancy histograms index up to it.
	Bound int `json:"bound"`
	// Threads holds one series per simulated hardware thread.
	Threads []ThreadMetrics `json:"threads"`
}

// ThreadMetrics is one simulated thread's metric series.
type ThreadMetrics struct {
	// Thread is the hardware-thread index.
	Thread int `json:"thread"`
	// OccupancyHist[k] counts stores issued when they brought the thread's
	// buffered-store count (drain stage included) to k. The distribution's
	// upper edge is the observable bound the fence-free δ derives from.
	OccupancyHist []int64 `json:"occupancy_hist"`
	// FenceStallCost is the total cost of waiting for the buffer to empty
	// at fences: stall cycles on the timed engine, forced drains on the
	// chaos engine.
	FenceStallCost uint64 `json:"fence_stall_cost"`
	// CASStallCost is the same wait attributed to atomics' implicit
	// drains (rule 4 of §2).
	CASStallCost uint64 `json:"cas_stall_cost"`
	// DrainLatencySum totals, over every entry that reached memory, the
	// time from issue to global visibility; DrainLatencyMax is the worst
	// single entry, DrainedEntries the sample count.
	DrainLatencySum uint64 `json:"drain_latency_sum"`
	// DrainLatencyMax is the slowest issue-to-visibility latency seen.
	DrainLatencyMax uint64 `json:"drain_latency_max"`
	// DrainedEntries counts entries that reached memory (the latency
	// sample count; coalesced-away entries are excluded).
	DrainedEntries int64 `json:"drained_entries"`
	// ForwardLoads counts loads this thread satisfied from its own buffer.
	ForwardLoads int64 `json:"forward_loads"`
	// Coalesces counts drain-stage same-address coalesces by this thread.
	Coalesces int64 `json:"coalesces"`
	// MaxOccupancy is this thread's high-water mark of buffered stores.
	MaxOccupancy int `json:"max_occupancy"`
}

// MeanDrainLatency returns the average issue-to-visibility latency, 0 when
// nothing drained.
func (t ThreadMetrics) MeanDrainLatency() float64 {
	if t.DrainedEntries == 0 {
		return 0
	}
	return float64(t.DrainLatencySum) / float64(t.DrainedEntries)
}

// enableMetrics allocates the metric sink and arms the drain hooks. Called
// from the machine constructors when Config.Metrics is set, after the
// policy is installed.
func (m *Machine) enableMetrics() {
	bound := m.cfg.ObservableBound()
	m.met = &MachineMetrics{Bound: bound, Threads: make([]ThreadMetrics, m.cfg.Threads)}
	for i := range m.met.Threads {
		m.met.Threads[i] = ThreadMetrics{Thread: i, OccupancyHist: make([]int64, bound+1)}
		tid := i
		m.bufs[i].onDrain = func(e entry) {
			t := &m.met.Threads[tid]
			lat := m.pol.drainLatency(m, e)
			t.DrainLatencySum += lat
			if lat > t.DrainLatencyMax {
				t.DrainLatencyMax = lat
			}
			t.DrainedEntries++
		}
	}
}

// resetMetrics zeroes the recorded series in place, keeping the histogram
// slices and the armed onDrain hooks (they read m.met at call time) — the
// metrics half of Machine.Reset.
func (m *Machine) resetMetrics() {
	for i := range m.met.Threads {
		t := &m.met.Threads[i]
		hist := t.OccupancyHist
		clear(hist)
		*t = ThreadMetrics{Thread: i, OccupancyHist: hist}
	}
}

// Metrics returns a snapshot of the per-thread metric series, folding in
// the counters kept inside the store buffers, or nil when Config.Metrics
// is unset.
func (m *Machine) Metrics() *MachineMetrics {
	if m.met == nil {
		return nil
	}
	out := &MachineMetrics{Bound: m.met.Bound, Threads: make([]ThreadMetrics, len(m.met.Threads))}
	for i := range m.met.Threads {
		t := m.met.Threads[i]
		t.OccupancyHist = append([]int64(nil), t.OccupancyHist...)
		t.Coalesces = m.bufs[i].coalesces
		t.MaxOccupancy = m.bufs[i].maxOcc
		out.Threads[i] = t
	}
	return out
}

// metPush records the occupancy a store's push reached.
func (m *Machine) metPush(tid int, b *storeBuffer) {
	if m.met != nil {
		m.met.Threads[tid].OccupancyHist[b.occupancy()]++
	}
}

// metForward records a store-to-load forwarding hit.
func (m *Machine) metForward(tid int) {
	if m.met != nil {
		m.met.Threads[tid].ForwardLoads++
	}
}

// metFenceStall charges a fence's drain wait (cycles or forced drains).
func (m *Machine) metFenceStall(tid int, cost uint64) {
	if m.met != nil {
		m.met.Threads[tid].FenceStallCost += cost
	}
}

// metCASStall charges an atomic's implicit-drain wait.
func (m *Machine) metCASStall(tid int, cost uint64) {
	if m.met != nil {
		m.met.Threads[tid].CASStallCost += cost
	}
}
