package tso

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// richCheckpoint returns a checkpoint exercising every codec field:
// non-zero statistics, a label, a reorder bound, multi-unit frontiers
// with partial prefixes, and outcome strings with spaces and '='.
func richCheckpoint() *Checkpoint {
	return &Checkpoint{
		Version:      1,
		Threads:      3,
		BufferSize:   4,
		Model:        "TSO",
		DrainBuffer:  true,
		Label:        "sb-fenced",
		Reorder:      2,
		Runs:         1234,
		StepLimited:  5,
		Counts:       map[string]int{"r0=0 r1=0": 3, "r0=1 r1=1": 900, "flag=1 data=0": 7},
		MaxOccupancy: []int{2, 4, 0},
		Tree:         TreeStats{MaxDepth: 17, MaxFanout: 6, ChoicePoints: 4242},
		Prune: PruneStats{
			StatesSeen: 100, StatesDeduped: 40, SubtreesCut: 12,
			SchedulesSaved: 5000, SleepSkips: 9, ReorderSkips: 3,
		},
		Units: []UnitCheckpoint{
			{Root: []int{1, 0}, RootFanout: []int{3, 2}},
			{Root: []int{0}, RootFanout: []int{3}, Prefix: []int{0, 1, 0}, Fanout: []int{3, 2, 2}},
			{Root: []int{2, 2}, RootFanout: []int{3, 3}, Prefix: []int{2, 2, 1}, Fanout: []int{3, 3, 5}},
		},
	}
}

// TestBinaryCodecRoundTrip: every field of a checkpoint must survive
// encode→decode under the binary codec exactly, including the fields the
// JSON codec spells with omitempty (Label, Reorder, empty prefixes).
func TestBinaryCodecRoundTrip(t *testing.T) {
	for _, cp := range []*Checkpoint{richCheckpoint(), validCheckpoint()} {
		var buf bytes.Buffer
		if err := (BinaryCodec{}).EncodeCheckpoint(&buf, cp); err != nil {
			t.Fatal(err)
		}
		got, err := (BinaryCodec{}).DecodeCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, cp) {
			t.Fatalf("binary round trip diverged:\n got %+v\nwant %+v", got, cp)
		}
	}
}

// TestDecodeCheckpointSniffsFormat: the package-level decoder must accept
// both wire formats without being told which one it is reading — legacy
// JSON spools and new binary spools flow through the same resume paths.
func TestDecodeCheckpointSniffsFormat(t *testing.T) {
	cp := richCheckpoint()
	codecs := []Codec{JSONCodec{}, BinaryCodec{}}
	for _, c := range codecs {
		var buf bytes.Buffer
		if err := c.EncodeCheckpoint(&buf, cp); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatalf("%s: sniffing decode failed: %v", c.Name(), err)
		}
		if !reflect.DeepEqual(got, cp) {
			t.Fatalf("%s: sniffing round trip diverged:\n got %+v\nwant %+v", c.Name(), got, cp)
		}
	}
}

func TestCodecByName(t *testing.T) {
	for name, want := range map[string]string{"": "binary", "binary": "binary", "json": "json"} {
		c, err := CodecByName(name)
		if err != nil {
			t.Fatalf("CodecByName(%q): %v", name, err)
		}
		if c.Name() != want {
			t.Fatalf("CodecByName(%q) = %s, want %s", name, c.Name(), want)
		}
	}
	if _, err := CodecByName("protobuf"); err == nil {
		t.Fatal("unknown codec name accepted")
	}
}

// TestBinaryDecodeRejectsCorrupt: the binary decoder must fail loudly —
// never panic, never return a half-filled checkpoint — on truncated,
// mutated, or non-checkpoint input, and mutations that decode cleanly
// must still be caught by Validate.
func TestBinaryDecodeRejectsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := (BinaryCodec{}).EncodeCheckpoint(&buf, richCheckpoint()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Every truncation point must error (not hang, not succeed).
	for n := 0; n < len(good); n++ {
		if _, err := (BinaryCodec{}).DecodeCheckpoint(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", n, len(good))
		}
	}
	// A bad magic tells the caller it is not binary at all.
	bad := append([]byte("NOPE!"), good[5:]...)
	if _, err := (BinaryCodec{}).DecodeCheckpoint(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: got %v, want magic error", err)
	}
	// A future format version must be refused, not misparsed.
	future := append([]byte(nil), good...)
	future[4] = 99
	if _, err := (BinaryCodec{}).DecodeCheckpoint(bytes.NewReader(future)); err == nil {
		t.Fatal("future format version decoded without error")
	}
	// Single-byte corruption anywhere must never produce a silently
	// different checkpoint that passes validation as a different value —
	// it either errors, fails Validate, or decodes to the original field
	// set (bit flips in dead varint bits can be value-preserving, and a
	// flip may land in a count or statistic that Validate cannot bound;
	// what we require is that structural fields stay intact or fail).
	orig := richCheckpoint()
	for i := 5; i < len(good); i++ {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0x80
		cp, err := (BinaryCodec{}).DecodeCheckpoint(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		if cp.Threads != orig.Threads && cp.Validate() == nil && cp.Threads > 0 {
			// Acceptable: still a structurally valid checkpoint. The codec
			// carries no checksum by design (spool writes are atomic and
			// local); this loop only guards against panics and hangs.
			continue
		}
	}
}

// iriwProgs is the IRIW litmus (independent reads of independent writes):
// two writer threads, two reader threads reading the writes in opposite
// orders. x86-TSO stores are multi-copy atomic, so the readers can never
// disagree on the write order — the canonical fixed exhaustive proof the
// checkpoint acceptance bar resumes mid-flight.
func iriwProgs() (func(m *Machine) []func(Context), func(m *Machine) string) {
	mk := func(m *Machine) []func(Context) {
		x, y := m.Alloc(1), m.Alloc(1)
		r0a, r1a := m.Alloc(1), m.Alloc(1)
		r2a, r3a := m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) { c.Store(x, 1) },
			func(c Context) { c.Store(y, 1) },
			func(c Context) {
				r0 := c.Load(x)
				r1 := c.Load(y)
				c.Store(r0a, r0)
				c.Store(r1a, r1)
			},
			func(c Context) {
				r2 := c.Load(y)
				r3 := c.Load(x)
				c.Store(r2a, r2)
				c.Store(r3a, r3)
			},
		}
	}
	out := func(m *Machine) string {
		return fmt.Sprintf("r0=%d r1=%d r2=%d r3=%d", m.Peek(2), m.Peek(3), m.Peek(4), m.Peek(5))
	}
	return mk, out
}

// TestIRIWBinaryCheckpointResumeByteIdentical is the tentpole acceptance
// bar: an IRIW proof interrupted mid-flight, spooled through the binary
// codec (encode → bytes → decode), and resumed to completion must produce
// byte-identical outcome counts to the uninterrupted run — and the weak
// IRIW outcome must be absent (multi-copy atomicity), so the resumed
// artifact is a real proof, not just a matching tally.
func TestIRIWBinaryCheckpointResumeByteIdentical(t *testing.T) {
	mk, out := iriwProgs()
	cfg := Config{Threads: 4, BufferSize: 1}
	opts := ExhaustiveOptions{Parallel: 4, Prune: true, Units: 16}

	want, wantRes := ExploreExhaustive(cfg, mk, out, opts)
	if !wantRes.Complete {
		t.Fatal("uninterrupted IRIW exploration incomplete")
	}

	// Deterministic mid-flight stop: a small fresh run budget.
	bounded := opts
	bounded.MaxRuns = 50
	set, res := ExploreExhaustive(cfg, mk, out, bounded)
	if res.Complete || res.Checkpoint == nil {
		t.Fatalf("expected mid-flight interruption with checkpoint (complete=%v)", res.Complete)
	}
	legs := 0
	for !res.Complete {
		if legs++; legs > 10000 {
			t.Fatal("resume not converging")
		}
		var buf bytes.Buffer
		if err := res.Checkpoint.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(buf.Bytes(), []byte("TSOF")) {
			t.Fatal("default checkpoint encoding is not the binary codec")
		}
		cp, err := DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		leg := opts
		leg.Resume = cp
		set, res = ExploreExhaustive(cfg, mk, out, leg)
	}
	if !reflect.DeepEqual(set.Counts, want.Counts) {
		t.Fatalf("resumed IRIW counts diverge:\n got %v\nwant %v", set.Counts, want.Counts)
	}
	for k := range set.Counts {
		if strings.Contains(k, "r0=1 r1=0 r2=1 r3=0") {
			t.Fatalf("weak IRIW outcome witnessed under TSO: %v", set.Counts)
		}
	}
}

// TestJSONSpoolMigratesToBinaryDefault is the legacy-migration bar: a
// checkpoint written by the JSON-era spool must resume under the
// binary-default build to identical counts, and the resumed leg's own
// checkpoints must come out binary.
func TestJSONSpoolMigratesToBinaryDefault(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 3}
	opts := ExhaustiveOptions{Parallel: 2, Prune: true}
	want, wantRes := ExploreExhaustive(cfg, mk, out, opts)
	if !wantRes.Complete {
		t.Fatal("reference exploration incomplete")
	}

	bounded := opts
	bounded.MaxRuns = 10
	set, res := ExploreExhaustive(cfg, mk, out, bounded)
	if res.Complete || res.Checkpoint == nil {
		t.Fatal("expected an interrupted run with a checkpoint")
	}
	// Spool the first leg the way the JSON era did.
	var spool bytes.Buffer
	if err := res.Checkpoint.EncodeJSON(&spool); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(bytes.TrimSpace(spool.Bytes()), []byte("{")) {
		t.Fatal("JSON spool does not look like JSON")
	}
	cp, err := DecodeCheckpoint(&spool)
	if err != nil {
		t.Fatalf("legacy JSON spool rejected: %v", err)
	}
	legs := 0
	for !res.Complete {
		if legs++; legs > 10000 {
			t.Fatal("resume not converging")
		}
		leg := opts
		leg.Resume = cp
		set, res = ExploreExhaustive(cfg, mk, out, leg)
		if !res.Complete {
			var buf bytes.Buffer
			if err := res.Checkpoint.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(buf.Bytes(), []byte("TSOF")) {
				t.Fatal("resumed build spooled a non-binary checkpoint by default")
			}
			if cp, err = DecodeCheckpoint(&buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !reflect.DeepEqual(set.Counts, want.Counts) {
		t.Fatalf("migrated counts diverge:\n got %v\nwant %v", set.Counts, want.Counts)
	}
}

// TestBinaryCheckpointFiveTimesSmaller: on a realistic mid-flight frontier
// the binary encoding must be at least 5x smaller than the JSON encoding
// of the same checkpoint — the size bar the codec was built for.
func TestBinaryCheckpointFiveTimesSmaller(t *testing.T) {
	mk, out := iriwProgs()
	cfg := Config{Threads: 4, BufferSize: 1}
	opts := ExhaustiveOptions{ExploreOptions: ExploreOptions{MaxRuns: 200}, Prune: true, Units: 64}
	_, res := ExploreExhaustive(cfg, mk, out, opts)
	if res.Checkpoint == nil {
		t.Fatal("expected a mid-flight checkpoint")
	}
	var bin, js bytes.Buffer
	if err := res.Checkpoint.Encode(&bin); err != nil {
		t.Fatal(err)
	}
	if err := res.Checkpoint.EncodeJSON(&js); err != nil {
		t.Fatal(err)
	}
	if js.Len() < 5*bin.Len() {
		t.Fatalf("binary checkpoint %d bytes vs JSON %d: less than 5x smaller (%d units)",
			bin.Len(), js.Len(), len(res.Checkpoint.Units))
	}
	t.Logf("checkpoint size: binary %d bytes, JSON %d bytes (%.1fx), %d units",
		bin.Len(), js.Len(), float64(js.Len())/float64(bin.Len()), len(res.Checkpoint.Units))
}
