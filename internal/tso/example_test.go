package tso_test

import (
	"fmt"

	"repro/internal/tso"
)

// ExampleMachine runs the classic store-buffering litmus test on one
// adversarial schedule: with drains starved, both threads read the other's
// variable before either store has reached memory — the reordering TSO
// permits and sequential consistency forbids.
func ExampleMachine() {
	m := tso.NewMachine(tso.Config{
		Threads:    2,
		BufferSize: 4,
		Seed:       3,
		DrainBias:  0.01, // starve drains: maximize reordering
	})
	x, y := m.Alloc(1), m.Alloc(1)
	var r0, r1 uint64
	err := m.Run(
		func(c tso.Context) { c.Store(x, 1); r0 = c.Load(y) },
		func(c tso.Context) { c.Store(y, 1); r1 = c.Load(x) },
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("r0=%d r1=%d\n", r0, r1)
	// Output:
	// r0=0 r1=0
}

// ExampleExplore proves a property instead of sampling it: across every
// schedule of the message-passing idiom, TSO's FIFO store buffer never
// lets the reader see the flag without the data.
func ExampleExplore() {
	var x, y, flagA, dataA tso.Addr
	mk := func(m *tso.Machine) []func(tso.Context) {
		x, y = m.Alloc(1), m.Alloc(1)
		flagA, dataA = m.Alloc(1), m.Alloc(1)
		return []func(tso.Context){
			func(c tso.Context) {
				c.Store(x, 1) // data
				c.Store(y, 1) // flag
			},
			func(c tso.Context) {
				f := c.Load(y)
				d := c.Load(x)
				c.Store(flagA, f)
				c.Store(dataA, d)
			},
		}
	}
	outcome := func(m *tso.Machine) string {
		return fmt.Sprintf("flag=%d data=%d", m.Peek(flagA), m.Peek(dataA))
	}
	set, res := tso.ExploreOutcomes(
		tso.Config{Threads: 2, BufferSize: 2},
		mk, outcome, tso.ExploreOptions{},
	)
	fmt.Println("complete:", res.Complete)
	fmt.Println("flag-without-data reachable:", set.Has("flag=1 data=0"))
	// Output:
	// complete: true
	// flag-without-data reachable: false
}

// ExampleConfig_ObservableBound shows the §7.3 distinction the litmus
// experiment turns on: the drain-stage buffer makes one more store
// observable than the documented capacity.
func ExampleConfig_ObservableBound() {
	documented := tso.Config{BufferSize: 32}
	withStage := tso.Config{BufferSize: 32, DrainBuffer: true}
	fmt.Println(documented.ObservableBound(), withStage.ObservableBound())
	// Output:
	// 32 33
}
