package tso

import (
	"errors"
	"fmt"
)

// Source-set dynamic partial-order reduction (ExhaustiveOptions.DPOR),
// built on the dependence layer in depend.go.
//
// The algorithm is Abdulla/Aronis/Jonsson/Sagonas source-DPOR
// specialized to the TSO[S] machine's two proc kinds (threads and
// store buffers):
//
//   - Every executed run records one event per choice point, carrying
//     the chosen action's proc and footprint plus a vector clock over
//     the 2T procs. Happens-before is per-proc order plus a
//     dependence edge between every ordered conflicting pair.
//   - Race detection: while extending the run, each fresh event e is
//     checked against the last writer of every address it touches and
//     the readers since (a sound over-approximation of "dependent and
//     adjacent in happens-before"); a pair (i, e) with different procs
//     and no intermediate happens-before path is a reversible race.
//   - For each race the engine ensures the backtrack set of the frame
//     where i was chosen contains some initial of the reversing
//     sequence v = (events after i not ordered after i) · e — the
//     source-set condition. Frames explore exactly their backtrack set
//     minus their sleep set.
//   - Sleep sets are re-derived from the same dependence relation
//     (full footprints, not just drain/drain), so the legacy SleepSets
//     mode is a strict special case and is superseded under DPOR.
//
// What DPOR preserves and what it rejects:
//
//   - The outcome *set* (and Complete, and MaxOccupancy — a thread's
//     own-buffer push/drain order is invariant within a Mazurkiewicz
//     class because store_t and drain_t conflict on bufAddr(t)) is
//     preserved; per-outcome counts collapse to one representative per
//     class, so canonical-state memoization's count-preserving credit
//     would be wrong above a DPOR node and Prune is auto-disabled
//     (withDefaults) — DPOR's race detection must see every executed
//     suffix anyway, which a memo cut would hide.
//   - MaxStepsPerRun composes soundly: equivalent runs are
//     permutations of the same events, hence equal length, so uniform
//     truncation at the step budget cuts whole classes, never part of
//     one. This is what upgrades the spin-lock duel to a completed
//     bounded proof (core/laws_test.go).
//   - ModelPSO is rejected: PSO drains of one buffer are not mutually
//     ordered (per-address FIFO only), which breaks the buffer-as-proc
//     abstraction. MaxReorderings >= 1 is rejected: the bound is not
//     closed under commuting swaps (a class's representative can carry
//     a different reorder count than the member that witnessed it), so
//     bounded outcome sets would not be preserved. Bounded POR à la
//     Coons/Musuvathi (BPOR) is the documented open follow-up.

// dporCheck validates a DPOR-mode exploration's configuration. It is
// the single gate every entry point (ExploreExhaustive, ShardFrontier)
// consults.
func dporCheck(c Config, o ExhaustiveOptions) error {
	if c.Model == ModelPSO {
		return errors.New("tso: DPOR requires ModelTSO: PSO drains of one buffer are not serialized, which breaks the dependence layer's buffer-as-proc abstraction")
	}
	if o.MaxReorderings > 0 {
		return errors.New("tso: DPOR cannot combine with MaxReorderings: the reorder bound is not closed under commuting swaps, so a class representative may be pruned while the class stays reachable")
	}
	if c.Threads > 31 {
		return errors.New("tso: DPOR supports at most 31 threads (checkpoint done-masks hold one bit per branch, fanout <= 2*threads <= 62)")
	}
	return nil
}

// dsleepEntry is one member of a dependence-derived sleep set: the proc
// whose action was fully explored at an ancestor and found independent
// of everything chosen since, plus the footprint it had there (needed
// to test independence against later chosen actions).
type dsleepEntry struct {
	proc int32
	fp   footprint
}

// dporVCap bounds the reversing-sequence window race handling analyzes
// exactly; beyond it the handler falls back to the first-event initial,
// which is always sound (merely adds backtrack points it could have
// proven redundant).
const dporVCap = 128

// dporState is one runner's per-run DPOR bookkeeping: the executed
// events (one per choice point, so event index == depth), their vector
// clocks, and per-address last-writer/readers tables driving race
// detection. Everything is arena-backed and reset per run.
type dporState struct {
	threads int
	nProcs  int // 2*threads: thread procs then buffer procs
	base    int // real-address slot count this run; buffer t maps to base+t

	nEvents int
	procs   []int32   // per event
	clocks  []int32   // nEvents × nProcs, row-major; clocks[e][q] = index of q's latest event happening-before e, or -1
	evFP    [][4]int32 // per event: reads offset/len, writes offset/len into arena
	arena   []fpAddr

	lastOfProc []int32   // latest event per proc, -1 if none
	lastW      []int32   // per slot: latest writer event, -1
	readers    [][]int32 // per slot: reader events since the latest write

	// scratch
	fpR, fpW []fpAddr
	vbuf     []int32
	initBuf  []int32
	seenBuf  []int32
}

func newDPORState(threads int) *dporState {
	dp := &dporState{threads: threads, nProcs: 2 * threads}
	dp.lastOfProc = make([]int32, dp.nProcs)
	return dp
}

// begin resets the per-run tables. Called after the run's programs are
// built (all addresses allocated) and before the first step.
func (dp *dporState) begin(m *Machine) {
	dp.base = int(m.next)
	slots := dp.base + dp.threads
	if cap(dp.lastW) < slots {
		dp.lastW = make([]int32, slots)
		dp.readers = make([][]int32, slots)
	}
	dp.lastW = dp.lastW[:slots]
	dp.readers = dp.readers[:slots]
	for i := range dp.lastW {
		dp.lastW[i] = -1
		dp.readers[i] = dp.readers[i][:0]
	}
	for i := range dp.lastOfProc {
		dp.lastOfProc[i] = -1
	}
	dp.nEvents = 0
	dp.procs = dp.procs[:0]
	dp.clocks = dp.clocks[:0]
	dp.evFP = dp.evFP[:0]
	dp.arena = dp.arena[:0]
}

// slot maps an extended address to its table index.
func (dp *dporState) slot(x fpAddr) int {
	if x >= 0 {
		if int(x) >= dp.base {
			panic("tso: DPOR saw an address allocated after the run started; allocate all addresses in the program factory")
		}
		return int(x)
	}
	return dp.base + int(-x) - 1
}

func (dp *dporState) clockOf(ev int32) []int32 {
	off := int(ev) * dp.nProcs
	return dp.clocks[off : off+dp.nProcs]
}

func (dp *dporState) eventFP(ev int32) footprint {
	f := dp.evFP[ev]
	return footprint{
		reads:  dp.arena[f[0] : f[0]+f[1]],
		writes: dp.arena[f[2] : f[2]+f[3]],
	}
}

// dporRecord appends the event for executing act at the current depth,
// updating clocks and — when the event is fresh (not a replay of an
// already-scanned prefix) — running race detection, which may add
// backtrack points to ancestor frames.
func (r *mcRunner) dporRecord(act action, fresh bool) {
	dp := r.dp
	fp := footprintInto(r.m, act, dp.fpR, dp.fpW)
	dp.fpR, dp.fpW = fp.reads, fp.writes // keep grown scratch
	p := procFor(dp.threads, act)
	n := dp.nEvents

	// Materialize the event's clock row: program order from the proc's
	// previous event, then joins for every conflict edge found below.
	need := (n + 1) * dp.nProcs
	if cap(dp.clocks) < need {
		nc := make([]int32, len(dp.clocks), need*2)
		copy(nc, dp.clocks)
		dp.clocks = nc
	}
	dp.clocks = dp.clocks[:need]
	clk := dp.clocks[n*dp.nProcs : need]
	if lp := dp.lastOfProc[p]; lp >= 0 {
		copy(clk, dp.clockOf(lp))
	} else {
		for i := range clk {
			clk[i] = -1
		}
	}
	clk[p] = int32(n)

	join := func(w int32) {
		for i, v := range dp.clockOf(w) {
			if v > clk[i] {
				clk[i] = v
			}
		}
	}
	// A partner i races with the new event iff it belongs to another
	// proc and no happens-before path reaches it through the edges
	// accumulated so far (program order plus conflicts already joined):
	// such a path would pass through an intermediate event, and races
	// are exactly the conflict pairs with no intermediate.
	check := func(w int32) {
		if fresh && dp.procs[w] != p && clk[dp.procs[w]] < w {
			r.dporRace(w, p, fp)
		}
	}
	for _, x := range fp.reads {
		s := dp.slot(x)
		if w := dp.lastW[s]; w >= 0 {
			check(w)
			join(w)
		}
	}
	for _, x := range fp.writes {
		s := dp.slot(x)
		if w := dp.lastW[s]; w >= 0 {
			check(w)
			join(w)
		}
		for _, rd := range dp.readers[s] {
			check(rd)
			join(rd)
		}
	}
	for _, x := range fp.writes {
		s := dp.slot(x)
		dp.lastW[s] = int32(n)
		dp.readers[s] = dp.readers[s][:0]
	}
	for _, x := range fp.reads {
		s := dp.slot(x)
		dp.readers[s] = append(dp.readers[s], int32(n))
	}
	dp.lastOfProc[p] = int32(n)
	dp.procs = append(dp.procs, p)
	rOff := int32(len(dp.arena))
	dp.arena = append(dp.arena, fp.reads...)
	wOff := int32(len(dp.arena))
	dp.arena = append(dp.arena, fp.writes...)
	dp.evFP = append(dp.evFP, [4]int32{rOff, int32(len(fp.reads)), wOff, int32(len(fp.writes))})
	dp.nEvents = n + 1
}

// dporRace handles one reversible race between event i and the event
// being appended (proc eProc, footprint eFP, index dp.nEvents): it
// ensures the backtrack set of the frame that chose i schedules some
// initial of the reversing sequence v = (events after i not ordered
// after i) · e. Races whose frame sits in the unit's fixed root prefix
// are ignored — sibling units own those reversals — as are races into
// resumed frames, which already explore every remaining branch.
func (r *mcRunner) dporRace(i int32, eProc int32, eFP footprint) {
	u, dp := r.u, r.dp
	rootLen := len(u.root)
	d := int(i) // event index == tree depth: one event per choice point
	if d < rootLen {
		return
	}
	fi := d - rootLen
	if fi >= len(u.frames) {
		return
	}
	f := u.frames[fi]
	if f.procs == nil {
		return // resumed frame: bt == all, nothing to add
	}
	u.res.Prune.DPORRaces++

	ip := dp.procs[i]
	n := int32(dp.nEvents)
	v := dp.vbuf[:0]
	for k := i + 1; k < n; k++ {
		if dp.clockOf(k)[ip] >= i {
			continue // i happens-before k: not part of the reversal
		}
		v = append(v, k)
	}
	dp.vbuf = v

	// Initials of v·e: procs whose first event in the sequence has no
	// dependent predecessor in it. The first event of the sequence is
	// always an initial; when the window is too large for the exact
	// O(|v|²) computation, using that single initial is sound (the
	// skip check below just fires less often).
	initProcs := dp.initBuf[:0]
	seen := dp.seenBuf[:0]
	exact := len(v) <= dporVCap
	for idx, k := range v {
		kp := dp.procs[k]
		if procsContain(seen, kp) {
			continue
		}
		seen = append(seen, kp)
		dep := false
		if exact {
			kfp := dp.eventFP(k)
			for _, j := range v[:idx] {
				if fpConflict(dp.eventFP(j), kfp) {
					dep = true
					break
				}
			}
		} else {
			dep = idx > 0
		}
		if !dep {
			initProcs = append(initProcs, kp)
		}
	}
	if !procsContain(seen, eProc) {
		dep := false
		if exact {
			for _, j := range v {
				if fpConflict(dp.eventFP(j), eFP) {
					dep = true
					break
				}
			}
		} else {
			dep = len(v) > 0
		}
		if !dep {
			initProcs = append(initProcs, eProc)
		}
	}
	dp.initBuf, dp.seenBuf = initProcs, seen

	// Source-set condition: if the backtrack set already schedules an
	// initial, this race's reversal is covered.
	for b := 0; b < f.fanout; b++ {
		if f.bt[b] && procsContain(initProcs, f.procs[b]) {
			return
		}
	}
	for _, q := range initProcs {
		for b := 0; b < f.fanout; b++ {
			if f.procs[b] == q {
				if !f.bt[b] {
					f.bt[b] = true
					u.res.Prune.DPORBacktracks++
				}
				return
			}
		}
	}
	// No initial has a branch at the frame. The enabledness argument in
	// depend.go's model says this cannot happen; schedule everything as
	// a sound fallback rather than trusting it.
	for b := 0; b < f.fanout; b++ {
		if !f.bt[b] {
			f.bt[b] = true
			u.res.Prune.DPORBacktracks++
		}
	}
}

func procsContain(s []int32, p int32) bool {
	for _, v := range s {
		if v == p {
			return true
		}
	}
	return false
}

// childSleepD computes the dependence-derived sleep set arriving at the
// child reached from the unit's deepest frame via its current branch:
// inherited entries still independent of the chosen action, plus every
// fully explored sibling that commutes with it.
func (u *mcUnit) childSleepD() []dsleepEntry {
	if len(u.frames) == 0 {
		return nil
	}
	p := u.frames[len(u.frames)-1]
	if p.procs == nil {
		return nil // resumed frame: action identities unknown
	}
	chosen := u.prefix[p.depth]
	cp, cfp := p.procs[chosen], p.fps[chosen]
	var out []dsleepEntry
	for _, t := range p.dsleep {
		if !dependent(t.proc, t.fp, cp, cfp) {
			out = append(out, t)
		}
	}
	for b := 0; b < p.fanout; b++ {
		if b == chosen || !p.done[b] {
			continue
		}
		if p.skip != nil && p.skip[b] {
			continue // never explored here; covered via an ancestor
		}
		if !dependent(p.procs[b], p.fps[b], cp, cfp) {
			out = append(out, dsleepEntry{proc: p.procs[b], fp: p.fps[b]})
		}
	}
	return out
}

// chooseDPOR is the DPOR-mode new-node path of mcRunner.choose: build
// the frame's dependence bookkeeping (per-branch procs and footprints,
// arriving sleep set, sleep-blocked branches), seed the backtrack set
// with the first runnable branch, and record the event.
func (r *mcRunner) chooseDPOR(acts []action) int {
	e, u, m := r.e, r.u, r.m
	d := r.depth
	n := len(acts)
	f := &mcFrame{depth: d, fanout: n}
	u.res.Tree.node(d, n)
	f.procs = make([]int32, n)
	f.fps = make([]footprint, n)
	for i, a := range acts {
		f.procs[i] = procFor(e.cfg.Threads, a)
		f.fps[i] = footprintAlloc(m, a)
	}
	f.bt = make([]bool, n)
	f.done = make([]bool, n)
	f.dsleep = u.childSleepD()
	if len(f.dsleep) > 0 {
		f.skip = make([]bool, n)
		for i := range acts {
			for _, t := range f.dsleep {
				if t.proc == f.procs[i] {
					f.skip[i] = true
					u.res.Prune.DPORSleepSkips++
					u.res.Prune.SubtreesCut++
					break
				}
			}
		}
	}
	b := -1
	for i := 0; i < n; i++ {
		if f.skip == nil || !f.skip[i] {
			b = i
			break
		}
	}
	if b < 0 {
		// Every branch is asleep: the node's whole subtree is covered by
		// commuting explorations elsewhere.
		r.cutHW = machineHWInto(m, r.cutHW)
		r.cut = true
		r.pol.cancel = true
		return 0
	}
	f.bt[b] = true
	r.dporRecord(acts[b], true)
	u.frames = append(u.frames, f)
	u.prefix = append(u.prefix, b)
	u.fanout = append(u.fanout, n)
	r.depth++
	return b
}

// nextBT returns the smallest runnable branch of a DPOR frame — in the
// backtrack set (or any branch, for resumed frames), not yet fully
// explored, not asleep — or -1. Unlike the plain engine's ascending
// nextAllowed, race handling can schedule branches below the current
// one, so the scan restarts from zero and done-marking tracks coverage.
func (f *mcFrame) nextBT() int {
	for b := 0; b < f.fanout; b++ {
		if f.done[b] {
			continue
		}
		if f.all {
			// A truncated run crossed this node: explore every branch,
			// sleep skips included (see mcFrame.all).
			return b
		}
		if f.skip != nil && f.skip[b] {
			continue
		}
		if f.bt == nil || f.bt[b] {
			return b
		}
	}
	return -1
}

// advanceDPOR is the DPOR-mode advance: mark the retreating branch
// done, then resume at the deepest frame whose backtrack set still
// holds unexplored branches.
func (e *mcEngine) advanceDPOR(u *mcUnit, rootLen int) bool {
	for i := len(u.prefix) - 1; i >= rootLen; i-- {
		f := u.frames[i-rootLen]
		f.done[u.prefix[i]] = true
		if nb := f.nextBT(); nb >= 0 {
			e.finalizeFrames(u, i+1)
			u.prefix = u.prefix[:i+1]
			u.fanout = u.fanout[:i+1]
			u.prefix[i] = nb
			u.freshFrom = i
			return true
		}
	}
	e.finalizeFrames(u, rootLen)
	u.complete = true
	return false
}

// doneMaskOf packs a frame's done set into a checkpoint bitmask.
func doneMaskOf(done []bool) uint64 {
	if len(done) > 64 {
		panic(fmt.Sprintf("tso: DPOR fanout %d exceeds the checkpoint done-mask width", len(done)))
	}
	var m uint64
	for b, d := range done {
		if d {
			m |= 1 << b
		}
	}
	return m
}
