package tso

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracerRecordsScheduleOrder(t *testing.T) {
	m := NewMachine(Config{Threads: 1, BufferSize: 4, Seed: 1})
	tr := NewRingTracer(64)
	m.SetTracer(tr)
	x := m.Alloc(1)
	err := m.Run(func(c Context) {
		c.Store(x, 7)
		c.Load(x)
		c.Fence()
		c.CAS(x, 7, 8)
		c.Work(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	joined := strings.Join(kinds, ",")
	// The store precedes its drain; the drain precedes (or is forced by)
	// the fence; the CAS and work come last.
	for _, want := range []string{"store", "drain", "fence", "cas", "work"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in trace %v", want, kinds)
		}
	}
	if idx(kinds, "store") > idx(kinds, "drain") {
		t.Fatalf("drain before store in %v", kinds)
	}
	if tr.Total() != int64(len(events)) {
		t.Fatalf("total %d != events %d", tr.Total(), len(events))
	}
}

func idx(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}

func TestTracerSeesReordering(t *testing.T) {
	// Find a schedule where the load executes before the prior store's
	// drain — the reordering itself, visible in the trace.
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		m := NewMachine(Config{Threads: 1, BufferSize: 4, Seed: seed, DrainBias: 0.05})
		tr := NewRingTracer(32)
		m.SetTracer(tr)
		x, y := m.Alloc(1), m.Alloc(1)
		if err := m.Run(func(c Context) {
			c.Store(x, 1)
			c.Load(y)
		}); err != nil {
			t.Fatal(err)
		}
		events := tr.Events()
		loadAt, drainAt := -1, -1
		for i, e := range events {
			if e.Kind == "load" {
				loadAt = i
			}
			if e.Kind == "drain" {
				drainAt = i
			}
		}
		if loadAt >= 0 && drainAt >= 0 && loadAt < drainAt {
			found = true
		}
	}
	if !found {
		t.Fatal("no schedule showed the load completing before the store's drain")
	}
}

func TestRingTracerEviction(t *testing.T) {
	tr := NewRingTracer(3)
	for i := int64(0); i < 7; i++ {
		tr.Record(Event{Step: i, Kind: "work"})
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d want 3", len(ev))
	}
	if ev[0].Step != 4 || ev[2].Step != 6 {
		t.Fatalf("wrong retained window: %v", ev)
	}
	if tr.Total() != 7 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestRingTracerDump(t *testing.T) {
	tr := NewRingTracer(8)
	tr.Record(Event{Step: 1, Thread: 0, Kind: "store", Addr: 5, Value: 9})
	tr.Record(Event{Step: 2, Thread: 1, Kind: "load", Addr: 5, Value: 0})
	tr.Record(Event{Step: 3, Thread: 0, Kind: "drain", Addr: 5, Value: 9})
	tr.Record(Event{Step: 4, Thread: 1, Kind: "cas", Addr: 5, Value: 7, OK: true})
	var buf bytes.Buffer
	tr.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"store [5] := 9", "load  [5] -> 0", "drain [5] := 9", "ok=true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestEventStringKinds(t *testing.T) {
	for _, k := range []string{"load", "store", "drain", "cas", "fence", "work", "mystery"} {
		if (Event{Kind: k}).String() == "" {
			t.Fatalf("empty String for %q", k)
		}
	}
}

func TestTraceOpIDLinksStoreToDrain(t *testing.T) {
	m := NewMachine(Config{Threads: 1, BufferSize: 4, Seed: 1})
	tr := NewRingTracer(64)
	m.SetTracer(tr)
	x := m.Alloc(2)
	if err := m.Run(func(c Context) {
		c.Store(x, 7)
		c.Store(x+1, 8)
	}); err != nil {
		t.Fatal(err)
	}
	stores := map[int64]Event{}
	drained := map[int64]bool{}
	lastID := int64(0)
	for _, e := range tr.Events() {
		switch e.Kind {
		case "store":
			if e.ID <= lastID {
				t.Fatalf("store op ids not increasing: %v", tr.Events())
			}
			lastID = e.ID
			stores[e.ID] = e
		case "drain":
			s, ok := stores[e.ID]
			if !ok {
				t.Fatalf("drain op %d has no earlier store:\n%v", e.ID, tr.Events())
			}
			if s.Addr != e.Addr || s.Value != e.Value {
				t.Fatalf("drain %v does not match its store %v", e, s)
			}
			if drained[e.ID] {
				t.Fatalf("op %d drained twice", e.ID)
			}
			drained[e.ID] = true
		}
	}
	if len(stores) != 2 {
		t.Fatalf("saw %d stores, want 2", len(stores))
	}
	for id := range stores {
		if !drained[id] {
			t.Fatalf("store op %d never linked to a drain", id)
		}
	}
}

func TestTraceOpIDResetsWithMachine(t *testing.T) {
	// Replays of a recorded schedule rely on op ids restarting after Reset:
	// two identical runs must produce byte-identical event lists.
	runOnce := func(m *Machine) []Event {
		tr := NewRingTracer(64)
		m.SetTracer(tr)
		x := m.Alloc(1)
		if err := m.Run(func(c Context) {
			c.Store(x, 1)
			c.Load(x)
		}); err != nil {
			t.Fatal(err)
		}
		return tr.Events()
	}
	m := NewMachine(Config{Threads: 1, BufferSize: 2, Seed: 3})
	first := runOnce(m)
	m.Reset()
	second := runOnce(m)
	if len(first) != len(second) {
		t.Fatalf("event counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("event %d differs after Reset: %v vs %v", i, first[i], second[i])
		}
	}
	if first[0].ID != 1 {
		t.Fatalf("first op id = %d, want 1", first[0].ID)
	}
}

func TestTraceOpIDCoalescedDrain(t *testing.T) {
	// Under the §7.3 drain stage, a coalesced store never reaches memory:
	// the final drain event for the address must carry the id of the last
	// (surviving) store, whatever the schedule did before it.
	m := NewMachine(Config{Threads: 1, BufferSize: 2, DrainBuffer: true, Seed: 1, DrainBias: 0.01})
	tr := NewRingTracer(64)
	m.SetTracer(tr)
	x := m.Alloc(1)
	if err := m.Run(func(c Context) {
		c.Store(x, 1)
		c.Store(x, 2)
	}); err != nil {
		t.Fatal(err)
	}
	var secondStore, lastDrain Event
	for _, e := range tr.Events() {
		if e.Kind == "store" && e.Value == 2 {
			secondStore = e
		}
		if e.Kind == "drain" && e.Addr == x {
			lastDrain = e
		}
	}
	if secondStore.Kind == "" || lastDrain.Kind == "" {
		t.Fatalf("missing store/drain events:\n%v", tr.Events())
	}
	if lastDrain.ID != secondStore.ID || lastDrain.Value != 2 {
		t.Fatalf("final drain %v does not carry the surviving store %v", lastDrain, secondStore)
	}
	if m.Peek(x) != 2 {
		t.Fatalf("memory [x]=%d, want 2", m.Peek(x))
	}
	if m.Stats().Coalesces < 1 {
		t.Fatalf("schedule under seed 1 did not coalesce; pick another seed")
	}
}

func TestRingTracerMinimumSize(t *testing.T) {
	tr := NewRingTracer(0)
	tr.Record(Event{Step: 1})
	if len(tr.Events()) != 1 {
		t.Fatal("zero-size tracer should clamp to 1")
	}
}
