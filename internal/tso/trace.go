package tso

import (
	"fmt"
	"io"
)

// Event is one recorded machine action: a thread's memory operation or a
// store-buffer drain.
type Event struct {
	Step   int64  // scheduler step (chaos) at which the action ran
	Thread int    // acting thread, or the buffer's owner for drains
	Kind   string // "load", "store", "fence", "cas", "work", "drain"
	Addr   Addr
	Value  uint64 // store value / load result / CAS new value
	OK     bool   // CAS success (meaningless otherwise)

	// ID is the stable op id: thread operations are numbered in execution
	// order (1, 2, …) since the machine's last Reset, and a drain carries
	// the id of the store it advances — the link that lets a counterexample
	// replay pair every "store" event with the exact "drain" that made it
	// globally visible. A coalesced drain carries the id of the surviving
	// (younger) store, whose value is the one memory will eventually see.
	ID int64
}

func (e Event) String() string {
	switch e.Kind {
	case "load":
		return fmt.Sprintf("#%d t%d load  [%d] -> %d (op %d)", e.Step, e.Thread, e.Addr, e.Value, e.ID)
	case "store":
		return fmt.Sprintf("#%d t%d store [%d] := %d (buffered, op %d)", e.Step, e.Thread, e.Addr, e.Value, e.ID)
	case "drain":
		return fmt.Sprintf("#%d t%d drain [%d] := %d reaches memory (op %d)", e.Step, e.Thread, e.Addr, e.Value, e.ID)
	case "cas":
		return fmt.Sprintf("#%d t%d cas   [%d] -> %d (ok=%v, op %d)", e.Step, e.Thread, e.Addr, e.Value, e.OK, e.ID)
	case "fence":
		return fmt.Sprintf("#%d t%d fence (op %d)", e.Step, e.Thread, e.ID)
	case "work":
		return fmt.Sprintf("#%d t%d work (op %d)", e.Step, e.Thread, e.ID)
	default:
		return fmt.Sprintf("#%d t%d %s", e.Step, e.Thread, e.Kind)
	}
}

// Tracer receives machine events. Implementations must be fast; Record is
// called on the machine's scheduling path.
type Tracer interface {
	Record(Event)
}

// SetTracer attaches a tracer to the chaos machine (nil detaches). Only
// thread actions and drains are recorded; the tracer sees them in exact
// schedule order, which makes it the tool for dumping the interleaving
// that led to a safety violation or step-limit abort.
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

func (m *Machine) trace(kind string, thread int, addr Addr, val uint64, ok bool, id int64) {
	if m.tracer == nil {
		return
	}
	m.tracer.Record(Event{Step: m.steps, Thread: thread, Kind: kind, Addr: addr, Value: val, OK: ok, ID: id})
}

// RingTracer keeps the last N events — enough to answer "what just
// happened" after a failure without unbounded memory.
type RingTracer struct {
	buf   []Event
	next  int
	full  bool
	total int64
}

// NewRingTracer builds a tracer holding the most recent n events.
func NewRingTracer(n int) *RingTracer {
	if n < 1 {
		n = 1
	}
	return &RingTracer{buf: make([]Event, n)}
}

// Record implements Tracer.
func (r *RingTracer) Record(e Event) {
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.total++
}

// Total returns the number of events recorded (including evicted ones).
func (r *RingTracer) Total() int64 { return r.total }

// Events returns the retained events, oldest first.
func (r *RingTracer) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump writes the retained events to w, oldest first.
func (r *RingTracer) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintln(w, e)
	}
}
