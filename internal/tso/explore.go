package tso

import (
	"errors"
	"fmt"
)

// This file implements exhaustive schedule exploration ("stateless model
// checking") over the abstract TSO[S] machine: every interleaving of
// thread actions and store-buffer drains of a small program is enumerated
// by depth-first search over the machine's decision tree. Where the chaos
// engine samples schedules randomly, Explore *proves* properties of small
// litmus programs — e.g. that the store-buffering outcome r0=r1=0 is
// reachable without fences and unreachable with them, or that FF-CL's
// thief aborts in every schedule of the laws-of-order state ρ.
//
// The exploration is the standard replay technique: each run re-executes
// the program from scratch, following a recorded prefix of choices and
// taking the first branch afterwards; when a run completes, the deepest
// choice with untried branches is advanced. Programs must therefore be
// replayable — the factory passed to Explore is invoked once per run and
// must rebuild all captured state.

// ExploreOptions bounds an exploration.
type ExploreOptions struct {
	// MaxRuns caps the number of schedules (default 1 << 20). If the tree
	// is larger, Explore returns Complete=false.
	MaxRuns int
	// MaxStepsPerRun bounds each schedule (default 100_000) so that
	// blocking programs (e.g. a lone THEP thief) terminate each run with
	// ErrStepLimit rather than hanging the search.
	MaxStepsPerRun int64
}

func (o ExploreOptions) withDefaults() ExploreOptions {
	if o.MaxRuns <= 0 {
		o.MaxRuns = 1 << 20
	}
	if o.MaxStepsPerRun <= 0 {
		o.MaxStepsPerRun = 100_000
	}
	return o
}

// TreeStats describes the shape of the explored decision tree.
type TreeStats struct {
	// MaxDepth is the longest schedule in decision steps.
	MaxDepth int
	// MaxFanout is the widest single decision (threads + drainable buffers).
	MaxFanout int
	// ChoicePoints counts the distinct tree nodes with fanout >= 2 — the
	// places where the schedule genuinely branched.
	ChoicePoints int64
}

func (t *TreeStats) node(depth, fanout int) {
	if depth+1 > t.MaxDepth {
		t.MaxDepth = depth + 1
	}
	if fanout > t.MaxFanout {
		t.MaxFanout = fanout
	}
	if fanout >= 2 {
		t.ChoicePoints++
	}
}

func (t *TreeStats) merge(o TreeStats) {
	if o.MaxDepth > t.MaxDepth {
		t.MaxDepth = o.MaxDepth
	}
	if o.MaxFanout > t.MaxFanout {
		t.MaxFanout = o.MaxFanout
	}
	t.ChoicePoints += o.ChoicePoints
}

// PruneStats reports the state-space reduction achieved by the exhaustive
// engine's pruning (all zero when pruning is disabled).
type PruneStats struct {
	// StatesSeen is the number of canonical states hashed (one per tree
	// node the engine actually entered).
	StatesSeen int64
	// StatesDeduped is the number of nodes whose canonical state was
	// already memoized, so their subtree was credited from the memo table
	// instead of re-explored.
	StatesDeduped int64
	// SubtreesCut is the total number of subtrees removed from the search:
	// memo hits plus sleep-set skips.
	SubtreesCut int64
	// SchedulesSaved is the number of complete schedules accounted from the
	// memo table without being executed.
	SchedulesSaved int64
	// SleepSkips counts branches skipped by the commutativity sleep sets.
	SleepSkips int64
	// ReorderSkips counts branches pruned by the reorder bound
	// (ExhaustiveOptions.MaxReorderings): loads that would have pushed
	// their schedule past k store→load reorderings.
	ReorderSkips int64
	// DPORRaces counts reversible races source-set DPOR detected on
	// executed runs (ExhaustiveOptions.DPOR). A race may be counted
	// again when later runs re-execute the same conflicting suffix.
	DPORRaces int64
	// DPORBacktracks counts branches race handling added to frame
	// backtrack sets — the schedules DPOR decided it must explore.
	DPORBacktracks int64
	// DPORSleepSkips counts branches skipped because the
	// dependence-derived sleep set already covers them (DPOR's
	// generalization of SleepSkips).
	DPORSleepSkips int64
}

func (p *PruneStats) merge(o PruneStats) {
	p.StatesSeen += o.StatesSeen
	p.StatesDeduped += o.StatesDeduped
	p.SubtreesCut += o.SubtreesCut
	p.SchedulesSaved += o.SchedulesSaved
	p.SleepSkips += o.SleepSkips
	p.ReorderSkips += o.ReorderSkips
	p.DPORRaces += o.DPORRaces
	p.DPORBacktracks += o.DPORBacktracks
	p.DPORSleepSkips += o.DPORSleepSkips
}

// ExploreResult summarizes an exploration.
type ExploreResult struct {
	// Runs is the number of schedules executed on a machine. Under pruning
	// this is smaller than the number of schedules accounted for (see
	// OutcomeSet.Total), which is the whole point.
	Runs int
	// Complete reports whether the entire decision tree was covered.
	Complete bool
	// StepLimited counts runs that hit MaxStepsPerRun (blocking programs).
	StepLimited int
	// Tree reports the shape of the explored decision tree.
	Tree TreeStats
	// Prune reports the reduction achieved by the exhaustive engine
	// (zero for the sequential reference engine).
	Prune PruneStats
	// Memo reports the memo arena's end state — occupancy, evictions,
	// stripe contention (zero unless the exhaustive engine pruned).
	Memo MemoStats
	// Checkpoint holds the serialized unexplored frontier when an
	// exhaustive exploration stopped at its run budget; pass it back via
	// ExhaustiveOptions.Resume to continue. Nil when Complete, and always
	// nil for the sequential reference engine.
	Checkpoint *Checkpoint
}

// Explore enumerates schedules of the program built by mkProgs on fresh
// machines configured by cfg. For every completed run it calls visit with
// the machine (buffers flushed; inspect memory with Peek) and the run's
// error, which is nil, step-limit, or a program panic.
//
// mkProgs is called once per run with the fresh machine; it must Alloc
// whatever it needs and return one program per configured thread.
func Explore(cfg Config, mkProgs func(m *Machine) []func(Context), opts ExploreOptions, visit func(m *Machine, err error)) ExploreResult {
	return ExploreUntil(cfg, mkProgs, opts, func(m *Machine, err error) bool {
		visit(m, err)
		return false
	})
}

// ExploreUntil is Explore with early termination: exploration stops when
// visit returns true (Complete stays false in that case). Used to extract
// a witness schedule for a reachable outcome without enumerating the rest
// of the tree.
func ExploreUntil(cfg Config, mkProgs func(m *Machine) []func(Context), opts ExploreOptions, visit func(m *Machine, err error) bool) ExploreResult {
	return ExploreWithChoices(cfg, mkProgs, opts, func(m *Machine, err error, _ []int) bool {
		return visit(m, err)
	})
}

// ExploreWithChoices is ExploreUntil additionally handing visit the run's
// schedule: choices[i] is the branch taken at decision step i (an index
// into the step's action list — threads with pending requests in thread
// order, then drainable buffers in thread order). The slice is reused
// across runs and only valid for the duration of the call; callers that
// keep a schedule (a witness, a counterexample for ReplaySchedule) must
// copy it.
func ExploreWithChoices(cfg Config, mkProgs func(m *Machine) []func(Context), opts ExploreOptions, visit func(m *Machine, err error, choices []int) bool) ExploreResult {
	opts = opts.withDefaults()
	var res ExploreResult

	// prefix holds the choice taken at each decision step of the current
	// run; fanout holds the number of alternatives that were available.
	var prefix, fanout []int
	var depth int
	var mismatch bool

	// One machine serves the whole exploration: each run Resets it back to
	// the just-constructed state instead of paying NewMachine (zeroed
	// memory arena, buffer allocation, goroutine spawns) per schedule.
	c := cfg
	c.MaxSteps = opts.MaxStepsPerRun
	m := NewMachine(c)
	defer m.Close()
	// Swap the chaos policy for deterministic enumeration: replay the
	// recorded prefix, then take the first untried branch.
	m.pol = &chooserPolicy{choose: func(acts []action) int {
		n := len(acts)
		if depth < len(prefix) {
			if depth < len(fanout) && fanout[depth] != n {
				// The program is not replay-deterministic; flag it
				// rather than silently exploring garbage.
				mismatch = true
			}
			i := prefix[depth]
			depth++
			return i
		}
		res.Tree.node(depth, n)
		prefix = append(prefix, 0)
		fanout = append(fanout, n)
		depth++
		return 0
	}}

	for {
		depth = 0
		mismatch = false
		m.Reset()
		progs := mkProgs(m)
		err := m.Run(progs...)
		if mismatch {
			panic("tso: Explore program is not replay-deterministic (fanout changed under an identical choice prefix)")
		}
		if errors.Is(err, ErrStepLimit) {
			res.StepLimited++
		}
		res.Runs++
		if visit(m, err, prefix[:depth]) {
			return res
		}

		// Truncate bookkeeping to the depth actually reached (a run can
		// end before consuming the whole prefix if an error cut it short).
		prefix = prefix[:depth]
		fanout = fanout[:depth]

		// Advance to the next schedule: bump the deepest choice that
		// still has untried alternatives.
		i := len(prefix) - 1
		for i >= 0 && prefix[i]+1 >= fanout[i] {
			i--
		}
		if i < 0 {
			res.Complete = true
			return res
		}
		if res.Runs >= opts.MaxRuns {
			return res
		}
		prefix = prefix[:i+1]
		fanout = fanout[:i+1]
		prefix[i]++
	}
}

// ReplaySchedule executes exactly one schedule of the program built by
// mkProgs: the machine follows the recorded choices (the slice a previous
// ExploreWithChoices visit handed out, or a corpus file), then takes the
// first available action once the prefix is exhausted. A choice outside
// the step's action range clamps to the last alternative, so arbitrary
// byte-derived prefixes (fuzzers) replay some schedule rather than
// panicking. mkProgs may attach a tracer via Machine.SetTracer to dump
// the replayed interleaving; visit (optional) receives the machine before
// it is closed. Returns the run error (nil, step-limit, or panic).
func ReplaySchedule(cfg Config, mkProgs func(m *Machine) []func(Context), choices []int, visit func(m *Machine, err error)) error {
	c := cfg
	if c.MaxSteps <= 0 {
		c.MaxSteps = 100_000
	}
	m := NewMachine(c)
	defer m.Close()
	depth := 0
	m.pol = &chooserPolicy{choose: func(acts []action) int {
		i := 0
		if depth < len(choices) {
			i = choices[depth]
			if i >= len(acts) {
				i = len(acts) - 1
			}
			if i < 0 {
				i = 0
			}
		}
		depth++
		return i
	}}
	progs := mkProgs(m)
	err := m.Run(progs...)
	if visit != nil {
		visit(m, err)
	}
	return err
}

// OutcomeSet is a convenience for litmus-style explorations: it tallies
// string-rendered outcomes across all schedules.
type OutcomeSet struct {
	Counts map[string]int
	// MaxOccupancy is the per-thread high-water mark of buffered stores
	// over every explored schedule — the observed reordering-bound
	// witness (≤ Config.ObservableBound by construction).
	MaxOccupancy []int
	res          ExploreResult
}

// ExploreOutcomes runs Explore and buckets each run by the string outcome
// returns. It panics on program panics, since a litmus program must not
// fail.
func ExploreOutcomes(cfg Config, mkProgs func(m *Machine) []func(Context), outcome func(m *Machine) string, opts ExploreOptions) (OutcomeSet, ExploreResult) {
	set := OutcomeSet{Counts: map[string]int{}, MaxOccupancy: make([]int, cfg.Threads)}
	res := Explore(cfg, mkProgs, opts, func(m *Machine, err error) {
		for tid := range set.MaxOccupancy {
			if occ := m.ThreadMaxOccupancy(tid); occ > set.MaxOccupancy[tid] {
				set.MaxOccupancy[tid] = occ
			}
		}
		if err != nil && !errors.Is(err, ErrStepLimit) {
			panic(fmt.Sprintf("tso: litmus program failed: %v", err))
		}
		if err != nil {
			set.Counts["<step-limit>"]++
			return
		}
		set.Counts[outcome(m)]++
	})
	set.res = res
	return set, res
}

// Has reports whether an outcome was observed.
func (s OutcomeSet) Has(outcome string) bool { return s.Counts[outcome] > 0 }

// Total is the number of schedules accounted for across all outcomes.
// Without pruning it equals ExploreResult.Runs; with pruning it counts the
// whole tree while Runs counts only the schedules actually executed.
func (s OutcomeSet) Total() int {
	n := 0
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// SampleOutcomes is the chaos-sampling counterpart of ExploreOutcomes: it
// runs the program under `runs` seeded adversarial schedules (seeds
// 0..runs-1) and buckets each run by its string outcome, so commands can
// switch between sampling and exhaustive exploration without maintaining
// two code paths. Like ExploreOutcomes it panics on a program failure and
// buckets step-limited runs under "<step-limit>".
func SampleOutcomes(cfg Config, runs int, mkProgs func(m *Machine) []func(Context), outcome func(m *Machine) string) OutcomeSet {
	set := OutcomeSet{Counts: map[string]int{}, MaxOccupancy: make([]int, cfg.Threads)}
	if runs > 0 {
		c := cfg
		c.Seed = 0
		m := NewMachine(c)
		defer m.Close()
		for seed := 0; seed < runs; seed++ {
			m.ResetSeed(int64(seed))
			progs := mkProgs(m)
			err := m.Run(progs...)
			for tid := range set.MaxOccupancy {
				if occ := m.ThreadMaxOccupancy(tid); occ > set.MaxOccupancy[tid] {
					set.MaxOccupancy[tid] = occ
				}
			}
			switch {
			case errors.Is(err, ErrStepLimit):
				set.Counts["<step-limit>"]++
			case err != nil:
				panic(fmt.Sprintf("tso: sampled program failed: %v", err))
			default:
				set.Counts[outcome(m)]++
			}
		}
	}
	set.res = ExploreResult{Runs: runs}
	return set
}
