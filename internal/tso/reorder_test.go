package tso

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestReorderUnboundedIdentity: MaxReorderings <= 0 is the unbounded
// engine, and a bound too large to ever bind (the whole tree is shallower
// than k reorderings) must also reproduce the unbounded counts
// byte-identically — the bounded bookkeeping may not perturb exploration
// order, memo keys, or the fold.
func TestReorderUnboundedIdentity(t *testing.T) {
	sbMk, sbOut := sbProgsShared(false)
	mpMk, mpOut := mpProgsShared()
	cases := []struct {
		name string
		cfg  Config
		mk   func(m *Machine) []func(Context)
		out  func(m *Machine) string
	}{
		{"SB/S=2", Config{Threads: 2, BufferSize: 2}, sbMk, sbOut},
		{"MP/S=2", Config{Threads: 2, BufferSize: 2}, mpMk, mpOut},
	}
	variants := []ExhaustiveOptions{
		{},
		{Prune: true},
		{Parallel: 4, Prune: true, SleepSets: true},
	}
	for _, tc := range cases {
		for _, v := range variants {
			want, wantRes := ExploreExhaustive(tc.cfg, tc.mk, tc.out, v)
			for _, k := range []int{-1, 0, 64} {
				opts := v
				opts.MaxReorderings = k
				set, res := ExploreExhaustive(tc.cfg, tc.mk, tc.out, opts)
				if res.Complete != wantRes.Complete || !reflect.DeepEqual(set.Counts, want.Counts) {
					t.Errorf("%s k=%d: counts %v (complete=%v), want %v (complete=%v)",
						tc.name, k, set.Counts, res.Complete, want.Counts, wantRes.Complete)
				}
				if !reflect.DeepEqual(set.MaxOccupancy, want.MaxOccupancy) {
					t.Errorf("%s k=%d: MaxOccupancy %v, want %v", tc.name, k, set.MaxOccupancy, want.MaxOccupancy)
				}
				if set.Total() != want.Total() {
					t.Errorf("%s k=%d: accounted %d schedules, want %d", tc.name, k, set.Total(), want.Total())
				}
			}
		}
	}
}

// TestReorderBoundSBBoundary pins what one reordering unit buys on the
// litmus everyone knows. A subtlety worth documenting in a test: the weak
// SB outcome r0=0 r1=0 needs only ONE reordering, not two — delay thread
// 1's store past its own load, and thread 0 can then read y=0 in plain SC
// order (drain x, load y) before thread 1's store drains. So even k=1
// keeps all four outcomes; what the bound prunes is the schedules where
// both loads bypass. SB's two loads also cap its reordering count at 2,
// so k=2 never binds and must reproduce the unbounded tally exactly.
func TestReorderBoundSBBoundary(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 2}
	full, fullRes := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{})
	if !fullRes.Complete {
		t.Fatal("unbounded reference incomplete")
	}

	set, res := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{MaxReorderings: 1})
	if !res.Complete {
		t.Fatal("k=1: bounded exploration incomplete")
	}
	for _, o := range []string{"r0=0 r1=0", "r0=0 r1=1", "r0=1 r1=0", "r0=1 r1=1"} {
		if set.Counts[o] == 0 {
			t.Errorf("k=1: outcome %q pruned away (counts %v)", o, set.Counts)
		}
	}
	if set.Total() >= full.Total() {
		t.Errorf("k=1: bound did not bind: %d schedules vs %d unbounded", set.Total(), full.Total())
	}
	if res.Prune.ReorderSkips == 0 {
		t.Errorf("k=1: bound binds but ReorderSkips == 0 (prune %+v)", res.Prune)
	}

	set, res = ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{MaxReorderings: 2})
	if !res.Complete {
		t.Fatal("k=2: bounded exploration incomplete")
	}
	if !reflect.DeepEqual(set.Counts, full.Counts) {
		t.Errorf("k=2 can never bind on SB, yet counts %v != unbounded %v", set.Counts, full.Counts)
	}

	// The fenced SB program performs no reorderings at all, so even k=1
	// must reproduce the full (weak-outcome-free) fenced support.
	fmk, fout := sbProgsShared(true)
	fwant, _ := ExploreExhaustive(cfg, fmk, fout, ExhaustiveOptions{})
	fset, fres := ExploreExhaustive(cfg, fmk, fout, ExhaustiveOptions{MaxReorderings: 1})
	if !fres.Complete {
		t.Fatal("fenced k=1 exploration incomplete")
	}
	if !reflect.DeepEqual(fset.Counts, fwant.Counts) {
		t.Errorf("fenced k=1: counts %v, want unbounded %v", fset.Counts, fwant.Counts)
	}
}

// doubleSBProgs chains two independent store-buffering rounds on the same
// two threads. Each round's weak outcome needs one reordering among that
// round's own accesses, and the rounds share no accesses, so the
// doubly-weak outcome a0=0 a1=0 b0=0 b1=0 needs at least two — the
// smallest litmus with a reorder-bound boundary strictly above k=1.
func doubleSBProgs() (func(m *Machine) []func(Context), func(m *Machine) string) {
	mk := func(m *Machine) []func(Context) {
		xa, ya := m.Alloc(1), m.Alloc(1)
		xb, yb := m.Alloc(1), m.Alloc(1)
		ra0, ra1 := m.Alloc(1), m.Alloc(1)
		rb0, rb1 := m.Alloc(1), m.Alloc(1)
		return []func(Context){
			func(c Context) {
				c.Store(xa, 1)
				c.Store(ra0, c.Load(ya)+100)
				c.Store(xb, 1)
				c.Store(rb0, c.Load(yb)+100)
			},
			func(c Context) {
				c.Store(ya, 1)
				c.Store(ra1, c.Load(xa)+100)
				c.Store(yb, 1)
				c.Store(rb1, c.Load(xb)+100)
			},
		}
	}
	out := func(m *Machine) string {
		return fmt.Sprintf("a0=%d a1=%d b0=%d b1=%d",
			int64(m.Peek(4))-100, int64(m.Peek(5))-100, int64(m.Peek(6))-100, int64(m.Peek(7))-100)
	}
	return mk, out
}

// TestReorderBoundDoubleSBBoundary: the doubly-weak outcome of two
// chained SB rounds must vanish at k=1 and reappear at k=2, while the
// singly-weak outcomes survive k=1.
func TestReorderBoundDoubleSBBoundary(t *testing.T) {
	mk, out := doubleSBProgs()
	cfg := Config{Threads: 2, BufferSize: 1}
	weakWeak := "a0=0 a1=0 b0=0 b1=0"

	for _, k := range []int{1, 2} {
		set, res := ExploreExhaustive(cfg, mk, out, ExhaustiveOptions{MaxReorderings: k, Prune: true})
		if !res.Complete {
			t.Fatalf("k=%d: bounded exploration incomplete", k)
		}
		if gotWeak, wantWeak := set.Counts[weakWeak] > 0, k >= 2; gotWeak != wantWeak {
			t.Errorf("k=%d: doubly-weak outcome present=%v, want %v", k, gotWeak, wantWeak)
		}
		for _, o := range []string{"a0=0 a1=0 b0=1 b1=1", "a0=1 a1=1 b0=0 b1=0"} {
			if set.Counts[o] == 0 {
				t.Errorf("k=%d: singly-weak outcome %q pruned away", k, o)
			}
		}
		if res.Prune.ReorderSkips == 0 {
			t.Errorf("k=%d: bound binds but ReorderSkips == 0 (prune %+v)", k, res.Prune)
		}
	}
}

// support reduces an outcome tally to its reachable-outcome set.
func support(counts map[string]int) map[string]bool {
	s := map[string]bool{}
	for k, v := range counts {
		if v > 0 {
			s[k] = true
		}
	}
	return s
}

// TestReorderBoundVariantsAgree: for a binding bound, the sequential
// bounded engine is the reference; pruning, sleep sets, and parallelism
// must each reproduce its counts byte-identically. This is the soundness
// bar for folding the reordering count into the canonical state key — a
// memo hit across different residual budgets would surface here as a
// count divergence.
func TestReorderBoundVariantsAgree(t *testing.T) {
	sbMk, sbOut := sbProgsShared(false)
	mpMk, mpOut := mpProgsShared()
	cases := []struct {
		name string
		cfg  Config
		mk   func(m *Machine) []func(Context)
		out  func(m *Machine) string
	}{
		{"SB/S=2", Config{Threads: 2, BufferSize: 2}, sbMk, sbOut},
		{"SB/S=3", Config{Threads: 2, BufferSize: 3}, sbMk, sbOut},
		{"MP/S=2", Config{Threads: 2, BufferSize: 2}, mpMk, mpOut},
	}
	for _, tc := range cases {
		for _, k := range []int{1, 2, 3} {
			ref, refRes := ExploreExhaustive(tc.cfg, tc.mk, tc.out, ExhaustiveOptions{MaxReorderings: k})
			if !refRes.Complete {
				t.Fatalf("%s k=%d: sequential bounded reference incomplete", tc.name, k)
			}
			for _, v := range []ExhaustiveOptions{
				{MaxReorderings: k, Prune: true},
				{MaxReorderings: k, Prune: true, SleepSets: true},
				{MaxReorderings: k, Parallel: 4, Prune: true, Units: 8},
				{MaxReorderings: k, Parallel: 4, Prune: true, SleepSets: true, Units: 8},
			} {
				set, res := ExploreExhaustive(tc.cfg, tc.mk, tc.out, v)
				if !res.Complete {
					t.Errorf("%s k=%d par=%d sleep=%v: incomplete", tc.name, k, v.Parallel, v.SleepSets)
					continue
				}
				if v.SleepSets {
					// Sleep sets drop redundant interleavings wholesale, so
					// (as in the unbounded engine) they preserve the reachable
					// outcome set, not the per-schedule tallies.
					if !reflect.DeepEqual(support(set.Counts), support(ref.Counts)) {
						t.Errorf("%s k=%d par=%d sleep=true: support %v, want %v",
							tc.name, k, v.Parallel, support(set.Counts), support(ref.Counts))
					}
				} else if !reflect.DeepEqual(set.Counts, ref.Counts) {
					t.Errorf("%s k=%d par=%d: counts %v, want %v",
						tc.name, k, v.Parallel, set.Counts, ref.Counts)
				}
			}
		}
	}
}

// TestReorderBoundResume: a bounded exploration interrupted mid-flight
// must resume — through the default binary codec — to the same counts as
// the uninterrupted bounded run, and the checkpoint must refuse to resume
// under a different bound (a silent bound switch would corrupt the proof
// the spool claims to hold).
func TestReorderBoundResume(t *testing.T) {
	mk, out := sbProgsShared(false)
	cfg := Config{Threads: 2, BufferSize: 3}
	opts := ExhaustiveOptions{MaxReorderings: 2, Prune: true, Label: "sb-k2"}
	want, wantRes := ExploreExhaustive(cfg, mk, out, opts)
	if !wantRes.Complete {
		t.Fatal("bounded reference incomplete")
	}

	bounded := opts
	bounded.MaxRuns = 5
	set, res := ExploreExhaustive(cfg, mk, out, bounded)
	if res.Complete || res.Checkpoint == nil {
		t.Fatal("expected mid-flight bounded checkpoint")
	}
	if res.Checkpoint.Reorder != 2 || res.Checkpoint.Label != "sb-k2" {
		t.Fatalf("checkpoint metadata: reorder=%d label=%q, want 2/sb-k2", res.Checkpoint.Reorder, res.Checkpoint.Label)
	}

	// Wrong bound, wrong label: refused with a diagnostic naming the field.
	if err := res.Checkpoint.CompatibleWithOptions(cfg, ExhaustiveOptions{MaxReorderings: 3}); err == nil ||
		!strings.Contains(err.Error(), "reorder") {
		t.Fatalf("bound mismatch: got %v, want reorder-bound error", err)
	}
	if err := res.Checkpoint.CompatibleWithOptions(cfg, ExhaustiveOptions{MaxReorderings: 2, Label: "other"}); err == nil ||
		!strings.Contains(err.Error(), "label") {
		t.Fatalf("label mismatch: got %v, want label error", err)
	}
	if err := res.Checkpoint.CompatibleWithOptions(cfg, opts); err != nil {
		t.Fatalf("matching options refused: %v", err)
	}

	legs := 0
	for !res.Complete {
		if legs++; legs > 10000 {
			t.Fatal("bounded resume not converging")
		}
		leg := opts
		leg.Resume = res.Checkpoint
		set, res = ExploreExhaustive(cfg, mk, out, leg)
	}
	if !reflect.DeepEqual(set.Counts, want.Counts) {
		t.Fatalf("resumed bounded counts %v, want %v", set.Counts, want.Counts)
	}
}
