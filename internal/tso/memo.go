package tso

// This file is the exhaustive engine's memo arena: the canonical-state →
// subtree-aggregate table behind Prune, restructured from one global
// RWMutex-guarded map into power-of-two lock stripes with arena-backed
// entry storage. Each stripe owns a slab of memoEntry values (admitted
// entries are copied in, so the per-entry header allocations of a
// map[stateKey]*memoEntry disappear), an index from key to slot, and a
// FIFO clock that evicts the stripe's oldest entry once the slab is
// full. Eviction is sound for the same reason the old stop-admitting
// policy was: entries are exact immutable aggregates consulted only for
// dedup, so losing one can cost re-exploration but never moves a count.
//
// The stripe is chosen from the key's first fingerprint word, which the
// double-FNV hashing already distributes uniformly; workers exploring
// different subtrees therefore contend only when they genuinely converge
// on the same stripe, and the contended counter (lock acquisitions that
// found the lock held) makes the residual contention observable — the
// tsoserve /metrics gauges read it out.

import "sync"

// MemoStats describes the memo arena at the end of an exploration — the
// saturation signals (occupancy, evictions) and the stripe-lock
// contention the table absorbed. All zero when pruning was off.
type MemoStats struct {
	// Stripes is the number of lock stripes the arena ran with.
	Stripes int `json:"stripes,omitempty"`
	// Entries is the number of memoized states resident at the end.
	Entries int `json:"entries,omitempty"`
	// Admitted counts entries written over the exploration (evicted slots
	// are re-admitted, so Admitted can exceed the arena capacity).
	Admitted int64 `json:"admitted,omitempty"`
	// Evicted counts entries displaced by the per-stripe FIFO clock once
	// their stripe filled.
	Evicted int64 `json:"evicted,omitempty"`
	// Contended counts lock acquisitions that found the stripe lock held
	// by another worker — the direct measure of memo-table contention.
	Contended int64 `json:"contended,omitempty"`
}

func (s *MemoStats) merge(o MemoStats) {
	if o.Stripes > s.Stripes {
		s.Stripes = o.Stripes
	}
	s.Entries += o.Entries
	s.Admitted += o.Admitted
	s.Evicted += o.Evicted
	s.Contended += o.Contended
}

// memoStripe is one lock-striped slice of the arena. All fields are
// guarded by mu; contended is incremented after acquisition, so it needs
// no atomics.
type memoStripe struct {
	mu    sync.Mutex
	idx   map[stateKey]int32
	slab  []memoEntry
	keys  []stateKey
	clock int // next eviction victim once the slab is full

	admitted  int64
	evicted   int64
	contended int64
}

// lock acquires the stripe, counting the acquisitions that had to wait.
func (s *memoStripe) lock() {
	if s.mu.TryLock() {
		return
	}
	s.mu.Lock()
	s.contended++
}

// memoTable is the striped memo arena. The stripe count is a power of
// two so stripe selection is a mask of the key's fingerprint.
type memoTable struct {
	stripes []memoStripe
	mask    uint64
	perCap  int // per-stripe entry capacity (MemoLimit / stripes, >= 1)
}

// newMemoTable sizes the arena: stripes rounded up to a power of two,
// the entry limit divided evenly among them.
func newMemoTable(stripes, limit int) *memoTable {
	n := 1
	for n < stripes {
		n <<= 1
	}
	perCap := limit / n
	if perCap < 1 {
		perCap = 1
	}
	return &memoTable{stripes: make([]memoStripe, n), mask: uint64(n - 1), perCap: perCap}
}

// get copies the entry for k into dst and reports whether one existed.
// Copying under the stripe lock is what makes eviction safe: a slot may
// be overwritten the instant the lock drops, but dst — and the immutable
// counts map and occupancy slice it references — never goes stale.
func (t *memoTable) get(k stateKey, dst *memoEntry) bool {
	s := &t.stripes[k.a&t.mask]
	s.lock()
	i, ok := s.idx[k]
	if ok {
		*dst = s.slab[i]
	}
	s.mu.Unlock()
	return ok
}

// put admits the aggregate for k, copying *ent into the arena (the
// caller's frame accumulator is about to be discarded; its maps and
// slices transfer to the slab and are immutable from here on). A full
// stripe evicts its oldest entry FIFO — the states hashed longest ago
// are the ones the DFS is least likely to converge back to. Duplicate
// keys keep the first-published entry, matching the old map's semantics
// (both candidates are the same exact aggregate anyway).
func (t *memoTable) put(k stateKey, ent *memoEntry) {
	s := &t.stripes[k.a&t.mask]
	s.lock()
	if _, dup := s.idx[k]; dup {
		s.mu.Unlock()
		return
	}
	if s.idx == nil {
		s.idx = make(map[stateKey]int32)
	}
	if len(s.slab) < t.perCap {
		s.idx[k] = int32(len(s.slab))
		s.slab = append(s.slab, *ent)
		s.keys = append(s.keys, k)
	} else {
		v := s.clock
		s.clock++
		if s.clock == t.perCap {
			s.clock = 0
		}
		delete(s.idx, s.keys[v])
		s.slab[v] = *ent
		s.keys[v] = k
		s.idx[k] = int32(v)
		s.evicted++
	}
	s.admitted++
	s.mu.Unlock()
}

// stats snapshots the arena's end-of-run statistics. Called after the
// worker pool has quiesced, but takes the locks anyway so mid-run
// callers would read consistent values.
func (t *memoTable) stats() MemoStats {
	st := MemoStats{Stripes: len(t.stripes)}
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		st.Entries += len(s.idx)
		st.Admitted += s.admitted
		st.Evicted += s.evicted
		st.Contended += s.contended
		s.mu.Unlock()
	}
	return st
}
