package tso

import "testing"

func TestStoreBufferForwardNewest(t *testing.T) {
	b := newStoreBuffer(4, false)
	b.push(entry{addr: 1, val: 10})
	b.push(entry{addr: 2, val: 20})
	b.push(entry{addr: 1, val: 11})
	if v, ok := b.forward(1); !ok || v != 11 {
		t.Fatalf("forward(1) = %v,%v want 11,true", v, ok)
	}
	if v, ok := b.forward(2); !ok || v != 20 {
		t.Fatalf("forward(2) = %v,%v want 20,true", v, ok)
	}
	if _, ok := b.forward(3); ok {
		t.Fatal("forward(3) unexpectedly hit")
	}
}

func TestStoreBufferFIFODrainOrder(t *testing.T) {
	mem := newMemory(8)
	b := newStoreBuffer(4, false)
	b.push(entry{addr: 5, val: 1})
	b.push(entry{addr: 5, val: 2})
	b.push(entry{addr: 5, val: 3})
	b.drainOne(mem)
	if got := mem.read(5); got != 1 {
		t.Fatalf("after first drain mem[5]=%d want 1 (FIFO)", got)
	}
	b.drainOne(mem)
	if got := mem.read(5); got != 2 {
		t.Fatalf("after second drain mem[5]=%d want 2", got)
	}
	b.drainAll(mem)
	if got := mem.read(5); got != 3 {
		t.Fatalf("after drainAll mem[5]=%d want 3", got)
	}
	if !b.empty() {
		t.Fatal("buffer not empty after drainAll")
	}
}

func TestStoreBufferFullEmptyOccupancy(t *testing.T) {
	b := newStoreBuffer(2, false)
	if !b.empty() || b.full() || b.occupancy() != 0 {
		t.Fatal("fresh buffer state wrong")
	}
	b.push(entry{addr: 0, val: 1})
	b.push(entry{addr: 1, val: 2})
	if !b.full() || b.occupancy() != 2 {
		t.Fatalf("full=%v occ=%d want true,2", b.full(), b.occupancy())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("push into full buffer did not panic")
		}
	}()
	b.push(entry{addr: 2, val: 3})
}

func TestDrainStageMovesThroughB(t *testing.T) {
	mem := newMemory(8)
	b := newStoreBuffer(4, true)
	b.push(entry{addr: 1, val: 100})
	// First drain moves the entry into B; memory is not yet written.
	b.drainOne(mem)
	if got := mem.read(1); got != 0 {
		t.Fatalf("entry reached memory while in stage B: mem[1]=%d", got)
	}
	if b.occupancy() != 1 || b.empty() {
		t.Fatalf("stage entry must count toward occupancy: occ=%d", b.occupancy())
	}
	// The staged value must still forward to the owner's loads.
	if v, ok := b.forward(1); !ok || v != 100 {
		t.Fatalf("forward from stage = %v,%v want 100,true", v, ok)
	}
	// Second drain retires B.
	b.drainOne(mem)
	if got := mem.read(1); got != 100 {
		t.Fatalf("mem[1]=%d want 100", got)
	}
	if !b.empty() {
		t.Fatal("buffer should be empty")
	}
}

func TestDrainStageCoalescesSameAddress(t *testing.T) {
	mem := newMemory(8)
	b := newStoreBuffer(4, true)
	b.push(entry{addr: 7, val: 1})
	b.push(entry{addr: 7, val: 2})
	b.push(entry{addr: 7, val: 3})
	b.drainOne(mem) // 1 -> B
	b.drainOne(mem) // 2 overwrites B (coalesce); 1 never reaches memory
	b.drainOne(mem) // 3 overwrites B (coalesce)
	if got := mem.read(7); got != 0 {
		t.Fatalf("coalesced values leaked to memory: mem[7]=%d", got)
	}
	if b.coalesces != 2 {
		t.Fatalf("coalesces=%d want 2", b.coalesces)
	}
	b.drainOne(mem) // retire B
	if got := mem.read(7); got != 3 {
		t.Fatalf("mem[7]=%d want 3 (only the newest value)", got)
	}
}

func TestDrainStageDifferentAddressWritesB(t *testing.T) {
	mem := newMemory(8)
	b := newStoreBuffer(4, true)
	b.push(entry{addr: 1, val: 10})
	b.push(entry{addr: 2, val: 20})
	b.drainOne(mem) // 10 -> B
	b.drainOne(mem) // B(=10) -> memory, 20 -> B
	if got := mem.read(1); got != 10 {
		t.Fatalf("mem[1]=%d want 10", got)
	}
	if got := mem.read(2); got != 0 {
		t.Fatalf("mem[2]=%d want 0 (still staged)", got)
	}
	b.drainAll(mem)
	if got := mem.read(2); got != 20 {
		t.Fatalf("mem[2]=%d want 20", got)
	}
}

func TestDrainStageCoalescingIsTSOLegal(t *testing.T) {
	// The §7.3 example: with buffered A:=1; B:=1; A:=2, coalescing A:=2
	// into A:=1 would let another processor observe A=2 while B=0, which
	// is illegal under TSO. Our stage only coalesces *consecutive* drains
	// to one address, so this must not happen.
	mem := newMemory(8)
	const a, bAddr = 0, 1
	buf := newStoreBuffer(4, true)
	buf.push(entry{addr: a, val: 1})
	buf.push(entry{addr: bAddr, val: 1})
	buf.push(entry{addr: a, val: 2})
	seenIllegal := false
	for !buf.empty() {
		buf.drainOne(mem)
		if mem.read(a) == 2 && mem.read(bAddr) == 0 {
			seenIllegal = true
		}
	}
	if seenIllegal {
		t.Fatal("observed A=2 with B=0: stage coalesced non-consecutive stores")
	}
	if mem.read(a) != 2 || mem.read(bAddr) != 1 {
		t.Fatalf("final state A=%d B=%d want 2,1", mem.read(a), mem.read(bAddr))
	}
}

func TestDrainEmptyPanics(t *testing.T) {
	mem := newMemory(1)
	for _, stage := range []bool{false, true} {
		b := newStoreBuffer(2, stage)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("drain of empty buffer (stage=%v) did not panic", stage)
				}
			}()
			b.drainOne(mem)
		}()
	}
}

func TestMemoryGrowsOnDemand(t *testing.T) {
	m := newMemory(2)
	m.write(100, 42)
	if got := m.read(100); got != 42 {
		t.Fatalf("mem[100]=%d want 42", got)
	}
	if got := m.read(50); got != 0 {
		t.Fatalf("mem[50]=%d want 0", got)
	}
}

func TestMemoryNegativeAddressPanics(t *testing.T) {
	m := newMemory(2)
	defer func() {
		if recover() == nil {
			t.Fatal("negative address did not panic")
		}
	}()
	m.read(-1)
}
