package core

import "testing"

// TestParseAlgoRoundTrip: every implemented algorithm must resolve from
// its own String name and from the case/separator variants a config file
// or job request plausibly spells.
func TestParseAlgoRoundTrip(t *testing.T) {
	for _, a := range AllAlgos {
		got, ok := ParseAlgo(a.String())
		if !ok || got != a {
			t.Fatalf("ParseAlgo(%q) = %v, %v", a.String(), got, ok)
		}
	}
	variants := map[string]Algo{
		"ff-cl":           AlgoFFCL,
		"FFCL":            AlgoFFCL,
		"ff cl":           AlgoFFCL,
		"chase-lev":       AlgoChaseLev,
		"chase_lev":       AlgoChaseLev,
		"idempotent lifo": AlgoIdempotentLIFO,
		"IDEMPOTENT-DE":   AlgoIdempotentDE,
		"the":             AlgoTHE,
		"thep":            AlgoTHEP,
	}
	for name, want := range variants {
		got, ok := ParseAlgo(name)
		if !ok || got != want {
			t.Fatalf("ParseAlgo(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
	for _, bad := range []string{"", "ABP", "Algo(9)", "fence-free"} {
		if got, ok := ParseAlgo(bad); ok {
			t.Fatalf("ParseAlgo(%q) accepted as %v", bad, got)
		}
	}
}
