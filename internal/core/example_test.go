package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tso"
)

// ExampleFFTHE shows the relaxed specification at the laws-of-order state
// ρ: a thief alone with one task refuses to steal (Abort), and the owner
// still gets the task.
func ExampleFFTHE() {
	m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 33})
	q := core.NewFFTHE(m, 64, core.DefaultDelta(33))
	q.Prefill(m, []uint64{42})
	err := m.Run(func(c tso.Context) {
		_, st := q.Steal(c)
		fmt.Println("lone thief:", st)
		v, st2 := q.Take(c)
		fmt.Println("owner take:", v, st2)
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// lone thief: ABORT
	// owner take: 42 OK
}

// ExampleDelta derives δ the way §4 does: from the machine's observable
// reordering bound and the number of client stores between takes.
func ExampleDelta() {
	s := tso.WestmereEX().ObservableBound()
	fmt.Println("bound:", s)
	fmt.Println("x=0:", core.Delta(s, 0))
	fmt.Println("x=1:", core.Delta(s, 1), "(the CilkPlus default)")
	fmt.Println("x=32:", core.Delta(s, 32))
	// Output:
	// bound: 33
	// x=0: 33
	// x=1: 17 (the CilkPlus default)
	// x=32: 1
}

// ExampleTHEP runs the full-specification fence-free queue with a worker
// and a thief concurrently draining three tasks: every task is delivered
// exactly once, with no fence on the worker's path.
func ExampleTHEP() {
	m := tso.NewMachine(tso.Config{Threads: 2, BufferSize: 4, Seed: 7, DrainBias: 0.1})
	q := core.NewTHEP(m, 64, 2)
	q.Prefill(m, []uint64{1, 2, 3})
	scratch := m.Alloc(1)
	delivered := make([]int, 4)
	workerDone := false
	err := m.Run(
		func(c tso.Context) {
			for {
				v, st := q.Take(c)
				if st != core.OK {
					workerDone = true
					return
				}
				delivered[v]++
				c.Store(scratch, v) // the CilkPlus-style post-take store
			}
		},
		func(c tso.Context) {
			for !workerDone {
				if v, st := q.Steal(c); st == core.OK {
					delivered[v]++
				}
			}
		},
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(delivered[1], delivered[2], delivered[3])
	// Output:
	// 1 1 1
}
