package core

import (
	"strings"
	"testing"

	"repro/internal/tso"
)

// wsMultVariants builds both family members on m for table-driven tests.
func wsMultVariants(m *tso.Machine, capacity int) []Deque {
	return []Deque{NewWSMult(m, capacity), NewWSMultRelaxed(m, capacity)}
}

// TestWSMultSequentialFIFO pins the family's single-ended FIFO order:
// unlike the paper's deques (owner-LIFO at the tail), owner and thieves
// alike remove from the head, so a lone thread sees queue order from
// both Take and Steal.
func TestWSMultSequentialFIFO(t *testing.T) {
	m := newChaos(1, 1)
	for _, q := range wsMultVariants(m, 64) {
		q := q
		runSolo(t, m, func(c tso.Context) {
			for i := uint64(1); i <= 20; i++ {
				q.Put(c, i)
			}
			for i := uint64(1); i <= 20; i++ {
				var v uint64
				var st Status
				if i%2 == 0 {
					v, st = q.Steal(c)
				} else {
					v, st = q.Take(c)
				}
				if st != OK || v != i {
					t.Errorf("%s: remove = %d,%v want %d,OK", q.Name(), v, st, i)
					return
				}
			}
			if _, st := q.Take(c); st != Empty {
				t.Errorf("%s: take on empty = %v want Empty", q.Name(), st)
			}
			if _, st := q.Steal(c); st != Empty {
				t.Errorf("%s: steal on empty = %v want Empty", q.Name(), st)
			}
		})
	}
}

// TestWSMultWrapAround drives the cyclic array through several laps to
// check the non-wrapping index / modular slot arithmetic.
func TestWSMultWrapAround(t *testing.T) {
	m := newChaos(1, 2)
	for _, q := range wsMultVariants(m, 4) {
		q := q
		runSolo(t, m, func(c tso.Context) {
			next, expect := uint64(0), uint64(0)
			for lap := 0; lap < 5; lap++ {
				for i := 0; i < 3; i++ {
					next++
					q.Put(c, next)
				}
				for i := 0; i < 3; i++ {
					expect++
					if v, st := q.Take(c); st != OK || v != expect {
						t.Fatalf("%s lap %d: take = %d,%v want %d,OK", q.Name(), lap, v, st, expect)
					}
				}
			}
		})
	}
}

// TestWSMultPrefillAndMetaSize checks the Prefiller seeding and the
// termination detector's size view before and after a drain.
func TestWSMultPrefillAndMetaSize(t *testing.T) {
	m := newChaos(1, 3)
	for _, q := range wsMultVariants(m, 8) {
		q := q
		q.(Prefiller).Prefill(m, []uint64{7, 8, 9})
		if sz := q.(MetaSizer).MetaSize(m.Peek); sz != 3 {
			t.Errorf("%s: prefilled MetaSize = %d, want 3", q.Name(), sz)
		}
		runSolo(t, m, func(c tso.Context) {
			for want := uint64(7); want <= 9; want++ {
				if v, st := q.Take(c); st != OK || v != want {
					t.Fatalf("%s: take = %d,%v want %d,OK", q.Name(), v, st, want)
				}
			}
		})
		if sz := q.(MetaSizer).MetaSize(m.Peek); sz != 0 {
			t.Errorf("%s: drained MetaSize = %d, want 0", q.Name(), sz)
		}
	}
}

// TestWSMultMetaSizeUsesAnnounces pins the detail the scheduler's
// termination detector depends on: WS-MULT's size is computed against
// the collected maximum of head and the announce slots, so a claimed
// index counts as removed even while the claimant's head store is
// stuck in its buffer (where the raw head word would report a stale,
// larger size — harmless, conservative) or lost to a crash model.
func TestWSMultMetaSizeUsesAnnounces(t *testing.T) {
	m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 4, Seed: 4})
	q := NewWSMult(m, 8)
	q.Prefill(m, []uint64{1, 2})
	// Claim both tasks by hand: announce 2 without ever storing head.
	m.Poke(q.ann+tso.Addr(0), 2)
	if sz := q.MetaSize(m.Peek); sz != 0 {
		t.Errorf("MetaSize = %d, want 0 (announce covers both tasks)", sz)
	}
}

// TestWSMultOverflowPanics checks the capacity guard on Put (the
// machine surfaces a simulated thread's panic as a Run error).
func TestWSMultOverflowPanics(t *testing.T) {
	m := newChaos(1, 5)
	for _, q := range wsMultVariants(m, 2) {
		q := q
		err := m.Run(func(c tso.Context) {
			for i := uint64(1); i <= 3; i++ {
				q.Put(c, i)
			}
		})
		if err == nil || !strings.Contains(err.Error(), "overflow") {
			t.Errorf("%s: overflowing Put: err = %v, want overflow panic", q.Name(), err)
		}
		m.Reset()
	}
}

// bareAllocator allocates without revealing a machine configuration,
// exercising NewWSMult's announce-array fallback sizing.
type bareAllocator struct {
	next tso.Addr
	m    *tso.Machine
}

func (b *bareAllocator) Alloc(n int) tso.Addr { return b.m.Alloc(n) }

// TestWSMultAnnounceSizing checks the announce array tracks the
// machine's thread count when the allocator reveals it and falls back
// to wsMultDefaultExtractors otherwise.
func TestWSMultAnnounceSizing(t *testing.T) {
	m := tso.NewMachine(tso.Config{Threads: 3, BufferSize: 2, Seed: 6})
	if q := NewWSMult(m, 4); q.nann != 3 {
		t.Errorf("config-aware announce slots = %d, want 3", q.nann)
	}
	if q := NewWSMult(&bareAllocator{m: m}, 4); q.nann != wsMultDefaultExtractors {
		t.Errorf("fallback announce slots = %d, want %d", q.nann, wsMultDefaultExtractors)
	}
}

// TestWSMultRegistry pins the family's registry rows: fence-free,
// relaxed (not exactly-once), δ-free, parseable under the usual
// spelling variants, excluded from the paper's evaluation set but
// present in AllAlgos for the oracle harnesses.
func TestWSMultRegistry(t *testing.T) {
	for _, a := range []Algo{AlgoWSMult, AlgoWSMultRelaxed} {
		if !a.FenceFree() {
			t.Errorf("%v: FenceFree = false, want true", a)
		}
		if a.ExactlyOnce() {
			t.Errorf("%v: ExactlyOnce = true, want false", a)
		}
		if !a.Idempotent() {
			t.Errorf("%v: Idempotent = false, want true", a)
		}
		if a.UsesDelta() {
			t.Errorf("%v: UsesDelta = true, want false", a)
		}
		for _, evaluated := range Algos {
			if evaluated == a {
				t.Errorf("%v: in Algos, but the paper's §8 evaluation set must not grow", a)
			}
		}
		var found bool
		for _, all := range AllAlgos {
			found = found || all == a
		}
		if !found {
			t.Errorf("%v: missing from AllAlgos", a)
		}
	}
	for spelling, want := range map[string]Algo{
		"WS-MULT":   AlgoWSMult,
		"ws mult":   AlgoWSMult,
		"wsmult":    AlgoWSMult,
		"WS-MULT-R": AlgoWSMultRelaxed,
		"ws_mult_r": AlgoWSMultRelaxed,
		"wsmultr":   AlgoWSMultRelaxed,
	} {
		if got, ok := ParseAlgo(spelling); !ok || got != want {
			t.Errorf("ParseAlgo(%q) = %v,%v want %v,true", spelling, got, ok, want)
		}
	}
}

// TestWSMultExactlyOnceComplement pins that every algorithm answers
// exactly one of ExactlyOnce/Idempotent — the predicate pair clients
// gate on instead of naming algorithms.
func TestWSMultExactlyOnceComplement(t *testing.T) {
	for _, a := range AllAlgos {
		if a.ExactlyOnce() == a.Idempotent() {
			t.Errorf("%v: ExactlyOnce = Idempotent = %v", a, a.ExactlyOnce())
		}
	}
}
