package core

import (
	"fmt"
	"strings"

	"repro/internal/tso"
)

// Algo identifies a queue algorithm for the experiment harnesses.
type Algo int

const (
	// AlgoTHE is Cilk's fenced THE queue (baseline of Figure 10).
	AlgoTHE Algo = iota
	// AlgoFFTHE is the fence-free THE variant (§4).
	AlgoFFTHE
	// AlgoTHEP is the fence-free echo variant (§5).
	AlgoTHEP
	// AlgoChaseLev is the fenced Chase-Lev deque (baseline of Figure 11).
	AlgoChaseLev
	// AlgoFFCL is the fence-free Chase-Lev variant (§4.1).
	AlgoFFCL
	// AlgoIdempotentLIFO is Michael et al.'s LIFO comparator.
	AlgoIdempotentLIFO
	// AlgoIdempotentDE is Michael et al.'s double-ended comparator.
	AlgoIdempotentDE
	// AlgoIdempotentFIFO is Michael et al.'s plain FIFO variant; it is not
	// part of the paper's §8.2 evaluation (which uses LIFO and
	// double-ended), so it is excluded from Algos but fully supported.
	AlgoIdempotentFIFO
	// AlgoWSMult is the fully read/write bounded-multiplicity queue
	// (Castañeda & Piña's relaxation): no CAS and no fence anywhere, with
	// per-task duplicate deliveries bounded by the extractor count via
	// the announce/collect protocol (see wsmult.go).
	AlgoWSMult
	// AlgoWSMultRelaxed is AlgoWSMult without the announce slots:
	// fully read/write with *unbounded* multiplicity.
	AlgoWSMultRelaxed
)

// algoInfo is one algorithm's registry row: the single source of truth
// for its display name, capability predicates, and constructor.
type algoInfo struct {
	name string
	// evaluated marks the paper's §8 evaluation set (Algos).
	evaluated bool
	// fenceFree: take() issues no fence.
	fenceFree bool
	// exactlyOnce: the queue never delivers a task twice.
	exactlyOnce bool
	// usesDelta: the algorithm is parameterized by δ.
	usesDelta bool
	make      func(a tso.Allocator, capacity, delta int) Deque
}

// algoInfos is indexed by Algo. The declaration order above is
// load-bearing: AllAlgos derives from it, and the fuzz decoders index
// AllAlgos by byte — append new algorithms, never reorder.
var algoInfos = []algoInfo{
	AlgoTHE: {name: "THE", evaluated: true, exactlyOnce: true,
		make: func(a tso.Allocator, capacity, _ int) Deque { return NewTHE(a, capacity) }},
	AlgoFFTHE: {name: "FF-THE", evaluated: true, fenceFree: true, exactlyOnce: true, usesDelta: true,
		make: func(a tso.Allocator, capacity, delta int) Deque { return NewFFTHE(a, capacity, delta) }},
	AlgoTHEP: {name: "THEP", evaluated: true, fenceFree: true, exactlyOnce: true, usesDelta: true,
		make: func(a tso.Allocator, capacity, delta int) Deque { return NewTHEP(a, capacity, delta) }},
	AlgoChaseLev: {name: "Chase-Lev", evaluated: true, exactlyOnce: true,
		make: func(a tso.Allocator, capacity, _ int) Deque { return NewChaseLev(a, capacity) }},
	AlgoFFCL: {name: "FF-CL", evaluated: true, fenceFree: true, exactlyOnce: true, usesDelta: true,
		make: func(a tso.Allocator, capacity, delta int) Deque { return NewFFCL(a, capacity, delta) }},
	AlgoIdempotentLIFO: {name: "Idempotent LIFO", evaluated: true, fenceFree: true,
		make: func(a tso.Allocator, capacity, _ int) Deque { return NewIdempotentLIFO(a, capacity) }},
	AlgoIdempotentDE: {name: "Idempotent DE", evaluated: true, fenceFree: true,
		make: func(a tso.Allocator, capacity, _ int) Deque { return NewIdempotentDE(a, capacity) }},
	AlgoIdempotentFIFO: {name: "Idempotent FIFO", fenceFree: true,
		make: func(a tso.Allocator, capacity, _ int) Deque { return NewIdempotentFIFO(a, capacity) }},
	AlgoWSMult: {name: "WS-MULT", fenceFree: true,
		make: func(a tso.Allocator, capacity, _ int) Deque { return NewWSMult(a, capacity) }},
	AlgoWSMultRelaxed: {name: "WS-MULT-R", fenceFree: true,
		make: func(a tso.Allocator, capacity, _ int) Deque { return NewWSMultRelaxed(a, capacity) }},
}

// info resolves the registry row, tolerating out-of-range values.
func (a Algo) info() (algoInfo, bool) {
	if a < 0 || int(a) >= len(algoInfos) {
		return algoInfo{}, false
	}
	return algoInfos[a], true
}

// Algos lists the paper's §8 evaluation set.
var Algos = func() []Algo {
	var out []Algo
	for a := range algoInfos {
		if algoInfos[a].evaluated {
			out = append(out, Algo(a))
		}
	}
	return out
}()

// AllAlgos is every implemented algorithm, in registry (declaration)
// order — Algos plus the variants outside the paper's §8 evaluation set
// (the idempotent FIFO and the WS-MULT multiplicity family). The
// semantic oracle's differential fuzzing harness cross-checks every
// implemented algorithm, not just the evaluated ones, and indexes this
// slice by fuzz byte, so the order is append-only.
var AllAlgos = func() []Algo {
	out := make([]Algo, len(algoInfos))
	for a := range algoInfos {
		out[a] = Algo(a)
	}
	return out
}()

func (a Algo) String() string {
	if inf, ok := a.info(); ok {
		return inf.name
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// ParseAlgo resolves an algorithm by its String name, ignoring case and
// the separators that vary between spellings ("ff-cl", "FF CL", and
// "ffcl" all resolve to AlgoFFCL). It accepts every algorithm in
// AllAlgos. The boolean reports whether the name was recognized.
func ParseAlgo(name string) (Algo, bool) {
	canon := func(s string) string {
		s = strings.ToLower(s)
		s = strings.ReplaceAll(s, "-", "")
		s = strings.ReplaceAll(s, "_", "")
		return strings.ReplaceAll(s, " ", "")
	}
	want := canon(name)
	for _, a := range AllAlgos {
		if canon(a.String()) == want {
			return a, true
		}
	}
	return 0, false
}

// FenceFree reports whether the algorithm's take() issues no fence.
func (a Algo) FenceFree() bool {
	inf, _ := a.info()
	return inf.fenceFree
}

// ExactlyOnce reports whether the algorithm guarantees each task is
// delivered at most once. Clients whose tasks must not re-execute —
// fork/join trees, the serving workload — must gate on this predicate
// rather than naming algorithms, so new relaxed families cannot slip
// into exact-semantics harnesses.
func (a Algo) ExactlyOnce() bool {
	inf, _ := a.info()
	return inf.exactlyOnce
}

// Idempotent reports whether the algorithm may deliver a task twice:
// the complement of ExactlyOnce (the idempotent comparators' at-least-
// once contract and the WS-MULT family's multiplicity relaxation).
func (a Algo) Idempotent() bool {
	if _, ok := a.info(); !ok {
		return false
	}
	return !a.ExactlyOnce()
}

// UsesDelta reports whether the algorithm is parameterized by δ.
func (a Algo) UsesDelta() bool {
	inf, _ := a.info()
	return inf.usesDelta
}

// New constructs a queue of the given algorithm on alloc. delta is ignored
// by algorithms that do not use it.
func New(algo Algo, alloc tso.Allocator, capacity, delta int) Deque {
	inf, ok := algo.info()
	if !ok {
		panic(fmt.Sprintf("core: unknown algorithm %d", int(algo)))
	}
	return inf.make(alloc, capacity, delta)
}
