package core

import (
	"fmt"
	"strings"

	"repro/internal/tso"
)

// Algo identifies a queue algorithm for the experiment harnesses.
type Algo int

const (
	// AlgoTHE is Cilk's fenced THE queue (baseline of Figure 10).
	AlgoTHE Algo = iota
	// AlgoFFTHE is the fence-free THE variant (§4).
	AlgoFFTHE
	// AlgoTHEP is the fence-free echo variant (§5).
	AlgoTHEP
	// AlgoChaseLev is the fenced Chase-Lev deque (baseline of Figure 11).
	AlgoChaseLev
	// AlgoFFCL is the fence-free Chase-Lev variant (§4.1).
	AlgoFFCL
	// AlgoIdempotentLIFO is Michael et al.'s LIFO comparator.
	AlgoIdempotentLIFO
	// AlgoIdempotentDE is Michael et al.'s double-ended comparator.
	AlgoIdempotentDE
	// AlgoIdempotentFIFO is Michael et al.'s plain FIFO variant; it is not
	// part of the paper's §8.2 evaluation (which uses LIFO and
	// double-ended), so it is excluded from Algos but fully supported.
	AlgoIdempotentFIFO
)

// Algos lists every implemented algorithm.
var Algos = []Algo{AlgoTHE, AlgoFFTHE, AlgoTHEP, AlgoChaseLev, AlgoFFCL, AlgoIdempotentLIFO, AlgoIdempotentDE}

// AllAlgos is Algos plus the variants excluded from the paper's §8
// evaluation set (currently AlgoIdempotentFIFO). The semantic oracle's
// differential fuzzing harness cross-checks every implemented algorithm,
// not just the evaluated ones.
var AllAlgos = []Algo{AlgoTHE, AlgoFFTHE, AlgoTHEP, AlgoChaseLev, AlgoFFCL, AlgoIdempotentLIFO, AlgoIdempotentDE, AlgoIdempotentFIFO}

func (a Algo) String() string {
	switch a {
	case AlgoTHE:
		return "THE"
	case AlgoFFTHE:
		return "FF-THE"
	case AlgoTHEP:
		return "THEP"
	case AlgoChaseLev:
		return "Chase-Lev"
	case AlgoFFCL:
		return "FF-CL"
	case AlgoIdempotentLIFO:
		return "Idempotent LIFO"
	case AlgoIdempotentDE:
		return "Idempotent DE"
	case AlgoIdempotentFIFO:
		return "Idempotent FIFO"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// ParseAlgo resolves an algorithm by its String name, ignoring case and
// the separators that vary between spellings ("ff-cl", "FF CL", and
// "ffcl" all resolve to AlgoFFCL). It accepts every algorithm in
// AllAlgos. The boolean reports whether the name was recognized.
func ParseAlgo(name string) (Algo, bool) {
	canon := func(s string) string {
		s = strings.ToLower(s)
		s = strings.ReplaceAll(s, "-", "")
		s = strings.ReplaceAll(s, "_", "")
		return strings.ReplaceAll(s, " ", "")
	}
	want := canon(name)
	for _, a := range AllAlgos {
		if canon(a.String()) == want {
			return a, true
		}
	}
	return 0, false
}

// FenceFree reports whether the algorithm's take() issues no fence.
func (a Algo) FenceFree() bool {
	return a != AlgoTHE && a != AlgoChaseLev
}

// Idempotent reports whether the algorithm may deliver a task twice.
func (a Algo) Idempotent() bool {
	return a == AlgoIdempotentLIFO || a == AlgoIdempotentDE || a == AlgoIdempotentFIFO
}

// UsesDelta reports whether the algorithm is parameterized by δ.
func (a Algo) UsesDelta() bool {
	return a == AlgoFFTHE || a == AlgoTHEP || a == AlgoFFCL
}

// New constructs a queue of the given algorithm on alloc. delta is ignored
// by algorithms that do not use it.
func New(algo Algo, alloc tso.Allocator, capacity, delta int) Deque {
	switch algo {
	case AlgoTHE:
		return NewTHE(alloc, capacity)
	case AlgoFFTHE:
		return NewFFTHE(alloc, capacity, delta)
	case AlgoTHEP:
		return NewTHEP(alloc, capacity, delta)
	case AlgoChaseLev:
		return NewChaseLev(alloc, capacity)
	case AlgoFFCL:
		return NewFFCL(alloc, capacity, delta)
	case AlgoIdempotentLIFO:
		return NewIdempotentLIFO(alloc, capacity)
	case AlgoIdempotentDE:
		return NewIdempotentDE(alloc, capacity)
	case AlgoIdempotentFIFO:
		return NewIdempotentFIFO(alloc, capacity)
	default:
		panic(fmt.Sprintf("core: unknown algorithm %d", int(algo)))
	}
}
