package core

import (
	"fmt"

	"repro/internal/tso"
)

// IdempotentFIFO is the third of Michael et al.'s idempotent queues: the
// worker puts at the tail and *both* the worker and thieves remove from
// the head (plain FIFO order). The paper's §8.2 evaluation uses only the
// LIFO and double-ended variants; this one is provided for completeness
// of the comparator suite and shares their at-least-once semantics.
//
// Layout: the same <head:24, size:16, tag:24> anchor as IdempotentDE; the
// difference is only which end Take uses.
type IdempotentFIFO struct {
	anchor tso.Addr
	tasks  tso.Addr
	w      int64
}

// NewIdempotentFIFO allocates an idempotent FIFO queue.
func NewIdempotentFIFO(a tso.Allocator, capacity int) *IdempotentFIFO {
	if capacity < 1 || capacity >= deSizeMax {
		panic(fmt.Sprintf("core: bad idempotent FIFO capacity %d (max %d)", capacity, deSizeMax-1))
	}
	return &IdempotentFIFO{anchor: a.Alloc(1), tasks: a.Alloc(capacity), w: int64(capacity)}
}

// Name implements Deque.
func (q *IdempotentFIFO) Name() string { return "Idempotent FIFO" }

func (q *IdempotentFIFO) slot(i uint64) tso.Addr {
	return q.tasks + tso.Addr(int64(i)%q.w)
}

// Put implements Deque: enqueue at the tail with one plain anchor store.
func (q *IdempotentFIFO) Put(c tso.Context, v uint64) {
	h, s, g := unpackDE(c.Load(q.anchor))
	if int64(s) >= q.w {
		panic(fmt.Sprintf("core: idempotent FIFO overflow (capacity %d)", q.w))
	}
	c.Store(q.slot(h+s), v)
	c.Store(q.anchor, packDE(h, s+1, (g+1)%deTagMax))
}

// Take implements Deque: the worker removes from the *head* — FIFO — with
// a plain store; its buffered anchor update is what a concurrent thief
// can miss, yielding a duplicate delivery.
func (q *IdempotentFIFO) Take(c tso.Context) (uint64, Status) {
	h, s, g := unpackDE(c.Load(q.anchor))
	if s == 0 {
		return 0, Empty
	}
	v := c.Load(q.slot(h))
	c.Store(q.anchor, packDE((h+1)%deHeadMax, s-1, g))
	return v, OK
}

// Steal implements Deque: thieves also remove from the head, racing
// through CAS.
func (q *IdempotentFIFO) Steal(c tso.Context) (uint64, Status) {
	for {
		old := c.Load(q.anchor)
		h, s, g := unpackDE(old)
		if s == 0 {
			return 0, Empty
		}
		v := c.Load(q.slot(h))
		if _, ok := c.CAS(q.anchor, old, packDE((h+1)%deHeadMax, s-1, g)); !ok {
			continue
		}
		return v, OK
	}
}

// Prefill implements Prefiller.
func (q *IdempotentFIFO) Prefill(p Poker, vals []uint64) {
	if int64(len(vals)) > q.w {
		panic("core: prefill exceeds capacity")
	}
	for i, v := range vals {
		p.Poke(q.slot(uint64(i)), v)
	}
	p.Poke(q.anchor, packDE(0, uint64(len(vals)), uint64(len(vals))%deTagMax))
}

// MetaSize implements MetaSizer.
func (q *IdempotentFIFO) MetaSize(peek func(tso.Addr) uint64) int64 {
	_, s, _ := unpackDE(peek(q.anchor))
	return int64(s)
}
