package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/tso"
)

// drainResult summarizes a concurrent drain of a prefilled queue.
type drainResult struct {
	counts     []int // removals per task id
	duplicates int   // tasks removed more than once
	missing    int   // tasks never removed
	aborts     int   // thief Abort results observed
	err        error
}

// drainConcurrently prefights a queue with n tasks and runs one worker
// (Take until Empty, doing clientStores scratch stores after each take)
// against one thief (Steal until the worker is done and the queue yields
// nothing). It reports per-task removal counts.
func drainConcurrently(cfg tso.Config, algo Algo, n, delta, clientStores int) drainResult {
	cfg.Threads = 2
	m := tso.NewMachine(cfg)
	q := New(algo, m, 2*n, delta)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i) + 1 // 1-based so 0 is never a task
	}
	q.(Prefiller).Prefill(m, vals)
	scratch := m.Alloc(64)

	res := drainResult{counts: make([]int, n+1)}
	workerDone := false
	res.err = m.Run(
		func(c tso.Context) { // worker
			defer func() { workerDone = true }()
			for {
				v, st := q.Take(c)
				if st == Empty {
					return
				}
				res.counts[v]++
				for i := 0; i < clientStores; i++ {
					c.Store(scratch+tso.Addr(i), v)
				}
			}
		},
		func(c tso.Context) { // thief
			idle := 0
			for {
				v, st := q.Steal(c)
				switch st {
				case OK:
					res.counts[v]++
					idle = 0
				case Abort:
					res.aborts++
					if workerDone {
						idle++
					}
				case Empty:
					if workerDone {
						idle++
					}
				}
				if idle > 3 {
					return
				}
				c.Work(1)
			}
		},
	)
	for id := 1; id <= n; id++ {
		switch {
		case res.counts[id] == 0:
			res.missing++
		case res.counts[id] > 1:
			res.duplicates++
		}
	}
	return res
}

// TestExactAlgorithmsNeverDuplicateOrLose: the fenced baselines and THEP
// must remove every task exactly once under adversarial schedules, and the
// fence-free variants must when δ matches the machine's observable bound.
func TestExactAlgorithmsNeverDuplicateOrLose(t *testing.T) {
	const S = 4
	cases := []struct {
		algo         Algo
		delta        int
		clientStores int
	}{
		{AlgoTHE, 0, 0},
		{AlgoChaseLev, 0, 0},
		// Fence-free with a *sound* δ: no client stores means a take is a
		// single store to T, so δ must be the full observable bound S.
		{AlgoFFTHE, S, 0},
		{AlgoFFCL, S, 0},
		{AlgoTHEP, S, 0},
		// One client store between takes halves the requirement: δ=⌈S/2⌉.
		{AlgoFFTHE, Delta(S, 1), 1},
		{AlgoFFCL, Delta(S, 1), 1},
		{AlgoTHEP, Delta(S, 1), 1},
		// THEP's take() stores to P after every store to T (the echo), so
		// even with no client stores x >= 1 and δ=⌈S/2⌉ is sound.
		{AlgoTHEP, Delta(S, 1), 0},
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("%v/delta=%d/L=%d", tc.algo, tc.delta, tc.clientStores)
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 120; seed++ {
				res := drainConcurrently(tso.Config{
					BufferSize: S,
					Seed:       seed,
					DrainBias:  0.08,
				}, tc.algo, 40, tc.delta, tc.clientStores)
				if res.err != nil {
					t.Fatalf("seed %d: %v", seed, res.err)
				}
				if res.duplicates > 0 || res.missing > 0 {
					t.Fatalf("seed %d: %d duplicates, %d missing", seed, res.duplicates, res.missing)
				}
			}
		})
	}
}

// TestFenceFreeUnsoundDeltaViolates is the negative control at the heart of
// the paper: with δ below the reordering bound, the fence-free queues DO
// exhibit double removal under some schedule. If this test fails, the
// simulator is not actually reordering stores and loads.
// THEP is included: its echo protocol resolves *uncertainty* without
// aborting, but the direct-steal path (T - δ > h) is only as sound as δ —
// exactly why §8.1 derives THEP's δ=4 from an analysis of program stores.
func TestFenceFreeUnsoundDeltaViolates(t *testing.T) {
	const S = 4
	for _, algo := range []Algo{AlgoFFTHE, AlgoFFCL, AlgoTHEP} {
		violated := false
		for seed := int64(0); seed < 400 && !violated; seed++ {
			res := drainConcurrently(tso.Config{
				BufferSize: S,
				Seed:       seed,
				DrainBias:  0.05,
			}, algo, 40, 1 /* δ=1 < S */, 0)
			if res.err != nil {
				t.Fatalf("%v seed %d: %v", algo, seed, res.err)
			}
			if res.duplicates > 0 {
				violated = true
			}
		}
		if !violated {
			t.Errorf("%v with δ=1 on an S=%d machine never double-removed a task; the bound is not being exercised", algo, S)
		}
	}
}

// TestCoalescingDefeatsDeltaAtL0: with the §7.3 drain stage, back-to-back
// stores to T coalesce, so when the worker performs no client stores (L=0)
// even δ = S+1 is unsound — the Figure 8b corner case.
func TestCoalescingDefeatsDeltaAtL0(t *testing.T) {
	const S = 3
	violated := false
	for seed := int64(0); seed < 3000 && !violated; seed++ {
		res := drainConcurrently(tso.Config{
			BufferSize:  S,
			DrainBuffer: true,
			Seed:        seed,
			DrainBias:   0.2,
		}, AlgoFFTHE, 40, S+1, 0)
		if res.err != nil {
			t.Fatalf("seed %d: %v", seed, res.err)
		}
		if res.duplicates > 0 {
			violated = true
		}
	}
	if !violated {
		t.Error("L=0 under store coalescing never violated δ=S+1; drain-stage coalescing is not being exercised")
	}
}

// TestClientStoresRestoreSoundnessUnderCoalescing: one client store between
// takes separates the stores to T, so coalescing cannot chain and
// δ = ⌈(S+1)/2⌉ is sound again (§7.3's software fix).
func TestClientStoresRestoreSoundnessUnderCoalescing(t *testing.T) {
	const S = 3
	bound := S + 1 // observable bound with the drain stage
	for seed := int64(0); seed < 200; seed++ {
		res := drainConcurrently(tso.Config{
			BufferSize:  S,
			DrainBuffer: true,
			Seed:        seed,
			DrainBias:   0.08,
		}, AlgoFFTHE, 40, Delta(bound, 1), 1)
		if res.err != nil {
			t.Fatalf("seed %d: %v", seed, res.err)
		}
		if res.duplicates > 0 || res.missing > 0 {
			t.Fatalf("seed %d: %d duplicates, %d missing with the software coalescing fix", seed, res.duplicates, res.missing)
		}
	}
}

// TestExploreCoalescingThreeTakesCannotDefeatDelta pins down the §7.3
// boundary exactly, which the seed sweeps above cannot: on an S=1 machine
// with the coalescing drain stage, δ = S+1 = 2 survives a worker doing
// *three* back-to-back takes — the pruned engine proves every one of the
// ~10^12 schedules of the three-take duel delivers each task exactly once.
// The violation needs a fourth take (next test): only then can the chain
// of coalesced decrements to T hide enough takes to outrun δ.
func TestExploreCoalescingThreeTakesCannotDefeatDelta(t *testing.T) {
	mk, out, cfg := ffclDuel(3, 3, 2, 1 /*S*/, 2 /*δ=S+1*/)
	cfg.DrainBuffer = true
	set, res := tso.ExploreExhaustive(cfg, mk, out,
		tso.ExhaustiveOptions{ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 20}, Prune: true})
	if !res.Complete {
		t.Fatalf("incomplete after %d executed runs (prune %+v)", res.Runs, res.Prune)
	}
	noDuelViolations(t, set, 3, 3, true)
	t.Logf("δ=S+1 proved safe for 3 takes under coalescing: %d schedules via %d runs", set.Total(), res.Runs)
}

// TestExploreCoalescingFourTakesDefeatDelta is the matching violation
// proof: one more take and δ = S+1 breaks — the explorer finds schedules
// where a task is delivered to both the worker and the thief, completing
// the Figure 8b corner case as an exact boundary (3 takes safe, 4 not).
// The full tree takes ~a minute to prove, so it is skipped under -short;
// the seed sweep TestCoalescingDefeatsDeltaAtL0 covers the property there.
func TestExploreCoalescingFourTakesDefeatDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("~50s exhaustive proof; covered probabilistically by TestCoalescingDefeatsDeltaAtL0")
	}
	mk, out, cfg := ffclDuel(4, 4, 2, 1 /*S*/, 2 /*δ=S+1*/)
	cfg.DrainBuffer = true
	set, res := tso.ExploreExhaustive(cfg, mk, out,
		tso.ExhaustiveOptions{ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 20}, Prune: true})
	if !res.Complete {
		t.Fatalf("incomplete after %d executed runs", res.Runs)
	}
	found := ""
	for o := range set.Counts {
		if doubleDelivered(o) {
			found = o
		}
	}
	if found == "" {
		t.Fatalf("4-take duel under coalescing never double-delivered across %d schedules", set.Total())
	}
	t.Logf("coalescing defeats δ=S+1 at 4 takes: witness %q among %d schedules (%d runs)",
		found, set.Total(), res.Runs)
}

// TestIdempotentAtLeastOnce: the idempotent queues may duplicate but must
// never lose a task.
func TestIdempotentAtLeastOnce(t *testing.T) {
	for _, algo := range []Algo{AlgoIdempotentLIFO, AlgoIdempotentDE} {
		sawDuplicate := false
		for seed := int64(0); seed < 300; seed++ {
			res := drainConcurrently(tso.Config{
				BufferSize: 4,
				Seed:       seed,
				DrainBias:  0.05,
			}, algo, 40, 0, 0)
			if res.err != nil {
				t.Fatalf("%v seed %d: %v", algo, seed, res.err)
			}
			if res.missing > 0 {
				t.Fatalf("%v seed %d: lost %d tasks (idempotent queues are at-least-once)", algo, seed, res.missing)
			}
			if res.duplicates > 0 {
				sawDuplicate = true
			}
		}
		if !sawDuplicate {
			t.Logf("%v: no duplicate observed in sweep (allowed, but unexpected under starved drains)", algo)
		}
	}
}

// TestTHEPNoAborts: THEP implements the original specification — Steal
// never returns Abort.
func TestTHEPNoAborts(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		res := drainConcurrently(tso.Config{
			BufferSize: 4,
			Seed:       seed,
			DrainBias:  0.1,
		}, AlgoTHEP, 30, 2, 0)
		if res.err != nil {
			t.Fatalf("seed %d: %v", seed, res.err)
		}
		if res.aborts != 0 {
			t.Fatalf("seed %d: THEP steal aborted %d times", seed, res.aborts)
		}
	}
}

// TestConcurrentPutsAndSteals exercises the grow-while-stealing path: the
// worker spawns new tasks while the thief steals.
func TestConcurrentPutsAndSteals(t *testing.T) {
	for _, algo := range []Algo{AlgoTHE, AlgoChaseLev, AlgoTHEP, AlgoFFTHE, AlgoFFCL} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			const root, childrenPer = 12, 3
			maxID := root + root*childrenPer
			for seed := int64(0); seed < 60; seed++ {
				m := tso.NewMachine(tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.15})
				q := New(algo, m, 4*maxID, 4)
				scratch := m.Alloc(1)
				vals := make([]uint64, root)
				for i := range vals {
					vals[i] = uint64(i) + 1
				}
				q.(Prefiller).Prefill(m, vals)
				counts := make([]int, maxID+1)
				spawned := make([]bool, maxID+1)
				workerDone := false
				err := m.Run(
					func(c tso.Context) {
						for {
							v, st := q.Take(c)
							if st == Empty {
								workerDone = true
								return
							}
							counts[v]++
							if v <= root {
								// Spawn children with ids unique per parent.
								for k := uint64(0); k < childrenPer; k++ {
									id := uint64(root) + (v-1)*childrenPer + k + 1
									q.Put(c, id)
									spawned[id] = true
								}
							}
							c.Store(scratch, v)
						}
					},
					func(c tso.Context) {
						idle := 0
						for {
							v, st := q.Steal(c)
							if st == OK {
								counts[v]++
								idle = 0
							} else if workerDone {
								idle++
							}
							if idle > 3 {
								return
							}
							c.Work(1)
						}
					},
				)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				// Every root task is removed exactly once. Children exist
				// only if the worker took their parent and spawned them;
				// each spawned child must also be removed exactly once.
				for id := 1; id <= root; id++ {
					if counts[id] != 1 {
						t.Fatalf("seed %d: root task %d removed %d times", seed, id, counts[id])
					}
				}
				for id := root + 1; id <= maxID; id++ {
					want := 0
					if spawned[id] {
						want = 1
					}
					if counts[id] != want {
						t.Fatalf("seed %d: child %d removed %d times want %d", seed, id, counts[id], want)
					}
				}
			}
		})
	}
}

// TestStepLimitSurfacesAsError double-checks harness behaviour: a THEP
// thief alone on a one-task queue blocks forever (§6) and the machine
// reports it rather than hanging.
func TestStepLimitSurfacesAsError(t *testing.T) {
	m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 4, Seed: 1, MaxSteps: 20000})
	q := NewTHEP(m, 16, 2)
	q.Prefill(m, []uint64{1})
	err := m.Run(func(c tso.Context) {
		q.Steal(c)
	})
	if !errors.Is(err, tso.ErrStepLimit) {
		t.Fatalf("lone THEP thief on 1-task queue: err=%v want step limit", err)
	}
}

// TestTHEPCounterWraparound: THEP keeps its steal heartbeat in 32 bits
// (the top half of H). Seed the counter at the wrap boundary and verify
// the echo protocol still functions across it.
func TestTHEPCounterWraparound(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		m := tso.NewMachine(tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.15})
		q := NewTHEP(m, 32, 2)
		vals := []uint64{1, 2, 3, 4, 5, 6}
		q.Prefill(m, vals)
		// Put the heartbeat one step from wrapping: H = <2^32-1, 0>.
		m.Poke(q.h, pack32(^uint32(0), 0))
		counts := make([]int, len(vals)+1)
		workerDone := false
		scratch := m.Alloc(1)
		err := m.Run(
			func(c tso.Context) {
				for {
					v, st := q.Take(c)
					if st == Empty {
						workerDone = true
						return
					}
					counts[v]++
					c.Store(scratch, v)
				}
			},
			func(c tso.Context) {
				idle := 0
				for {
					v, st := q.Steal(c)
					if st == OK {
						counts[v]++
						idle = 0
					} else if workerDone {
						idle++
					}
					if idle > 3 {
						return
					}
					c.Work(1)
				}
			},
		)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for id := 1; id <= len(vals); id++ {
			if counts[id] != 1 {
				t.Fatalf("seed %d: task %d removed %d times across counter wrap", seed, id, counts[id])
			}
		}
	}
}
