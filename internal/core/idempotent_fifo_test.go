package core

import (
	"testing"

	"repro/internal/tso"
)

func TestIdempotentFIFOSequentialOrder(t *testing.T) {
	m := newChaos(1, 71)
	q := NewIdempotentFIFO(m, 32)
	runSolo(t, m, func(c tso.Context) {
		for i := uint64(1); i <= 10; i++ {
			q.Put(c, i)
		}
		// Owner takes in FIFO order — the defining difference from the
		// LIFO and double-ended variants.
		for i := uint64(1); i <= 5; i++ {
			v, st := q.Take(c)
			if st != OK || v != i {
				t.Fatalf("take = %d,%v want %d,OK", v, st, i)
			}
		}
		// Thieves continue from the same head.
		for i := uint64(6); i <= 10; i++ {
			v, st := q.Steal(c)
			if st != OK || v != i {
				t.Fatalf("steal = %d,%v want %d,OK", v, st, i)
			}
		}
		if _, st := q.Take(c); st != Empty {
			t.Fatalf("take on empty = %v", st)
		}
		if _, st := q.Steal(c); st != Empty {
			t.Fatalf("steal on empty = %v", st)
		}
	})
}

func TestIdempotentFIFOWrapsRing(t *testing.T) {
	m := newChaos(1, 72)
	q := NewIdempotentFIFO(m, 4)
	runSolo(t, m, func(c tso.Context) {
		next := uint64(1)
		take := uint64(1)
		for round := 0; round < 10; round++ {
			for q.MetaSize(func(a tso.Addr) uint64 { return c.Load(a) }) < 4 {
				q.Put(c, next)
				next++
			}
			for k := 0; k < 2; k++ {
				v, st := q.Take(c)
				if st != OK || v != take {
					t.Fatalf("round %d: take = %d,%v want %d", round, v, st, take)
				}
				take++
			}
		}
	})
}

func TestIdempotentFIFOAtLeastOnce(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		res := drainConcurrently(tso.Config{
			BufferSize: 4,
			Seed:       seed,
			DrainBias:  0.05,
		}, AlgoIdempotentFIFO, 40, 0, 0)
		if res.err != nil {
			t.Fatalf("seed %d: %v", seed, res.err)
		}
		if res.missing > 0 {
			t.Fatalf("seed %d: lost %d tasks", seed, res.missing)
		}
	}
}

func TestIdempotentFIFOOverflowPanics(t *testing.T) {
	m := newChaos(1, 73)
	q := NewIdempotentFIFO(m, 2)
	err := m.Run(func(c tso.Context) {
		q.Put(c, 1)
		q.Put(c, 2)
		q.Put(c, 3)
	})
	if _, ok := err.(*tso.ProgramPanic); !ok {
		t.Fatalf("overflow err=%v want panic", err)
	}
}

func TestIdempotentFIFONotInEvaluatedSet(t *testing.T) {
	for _, a := range Algos {
		if a == AlgoIdempotentFIFO {
			t.Fatal("AlgoIdempotentFIFO must not be in the paper's evaluated set")
		}
	}
	m := newChaos(1, 74)
	q := New(AlgoIdempotentFIFO, m, 8, 0)
	if q.Name() != "Idempotent FIFO" {
		t.Fatalf("name = %q", q.Name())
	}
	if !AlgoIdempotentFIFO.Idempotent() || AlgoIdempotentFIFO.UsesDelta() {
		t.Fatal("classification wrong")
	}
}
