package core

import "repro/internal/tso"

// BatchStealer is an optional Deque extension: a thief extracts several
// tasks from the head of the victim's queue in one visit. The Chase-Lev
// family implements it (their Steal path is already CAS-arbitrated per
// task, so a batch is just consecutive claims in one visit); the THE
// family and the idempotent queues deliberately do not — those are the
// paper's algorithms under test, and they stay exactly as transcribed —
// so callers must fall back to single Steal when the assertion fails.
type BatchStealer interface {
	// StealBatch steals up to len(out) tasks into out, head-first (out[0]
	// is the oldest), and returns how many were taken. It never takes
	// more than half of the victim's visible queue, so a victim is never
	// emptied under the worker. The status is OK when at least one task
	// was taken, otherwise Empty or (FF-CL only) Abort, exactly as Steal
	// would have answered; a batch cut short by a lost CAS race keeps
	// what it already claimed.
	StealBatch(c tso.Context, out []uint64) (int, Status)
}

// stealBatch claims up to len(out) tasks head-first, one CAS per claim,
// re-reading H and T before every claim.
//
// One CAS per task is not an implementation shortcut — a single wide
// CAS H: h → h+k is unsound against the worker's take. take() claims
// task T-1 without touching H whenever it reads T-1 > H, so between the
// thief's read of T and its CAS the worker can take T-1, T-2, … down
// into [h, h+k) while H still holds h; the wide CAS then succeeds and
// re-delivers those tasks. Per-claim CASes keep the single-steal safety
// argument intact: each claim takes the task at the *current* head or
// fails. The batching win is not fewer CASes but fewer visits — the
// loot seeds the thief's own queue, turning would-be steals (victim
// selection, lock/CAS traffic, backoff) into cheap fence-free takes.
func (q *clBase) stealBatch(c tso.Context, out []uint64, delta int64) (int, Status) {
	n := 0
	target := len(out)
	for n < target {
		h := i64(c.Load(q.h))
		t := i64(c.Load(q.t))
		if h >= t {
			break // drained (possibly mid-batch by the worker or a rival)
		}
		if delta > 0 && t-delta <= h {
			// FF-CL's certification failed: the worker's T-stores may be
			// buffered. Abort only if nothing was claimed yet; a partial
			// batch is a success.
			if n == 0 {
				return 0, Abort
			}
			break
		}
		if n == 0 {
			// Size the batch off the first consistent snapshot: half the
			// visible queue rounded up (a lone task is stealable, but a
			// victim is never emptied), clamped under δ to the certified
			// region.
			half := (t - h + 1) / 2
			if delta > 0 && half > t-delta-h {
				half = t - delta - h
			}
			if half < int64(target) {
				target = int(half)
			}
		}
		task := c.Load(q.slot(h))
		if _, ok := c.CAS(q.h, u64(h), u64(h+1)); !ok {
			if n > 0 {
				break // lost a race mid-batch: keep the claims we hold
			}
			continue // first claim retries from scratch, like Steal
		}
		out[n] = task
		n++
	}
	if n == 0 {
		return 0, Empty
	}
	return n, OK
}

// StealBatch implements BatchStealer for the fenced Chase-Lev deque.
func (q *ChaseLev) StealBatch(c tso.Context, out []uint64) (int, Status) {
	return q.stealBatch(c, out, 0)
}

// StealBatch implements BatchStealer for FF-CL: every claim individually
// satisfies the T - δ > H certification, so the batch never touches a
// task whose ownership could be decided by a buffered take().
func (q *FFCL) StealBatch(c tso.Context, out []uint64) (int, Status) {
	return q.stealBatch(c, out, q.delta)
}
