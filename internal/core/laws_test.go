package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/tso"
)

// This file reproduces §6 ("Sidestepping the laws of order") and the §3.3
// linearizability discussion as executable facts.
//
// The "laws of order" theorem says a linearizable implementation of a
// strongly non-commutative method must fence or use an atomic in some
// execution — *assuming tightness*: every legal sequential execution can
// occur. The state ρ that makes take()/steal() strongly non-commutative is
// a queue holding exactly one task, and the paper's algorithms make the
// lone-thief-steals-from-ρ execution impossible: FF-THE and FF-CL refuse
// (Abort), and THEP blocks until a worker arrives.

// TestLawsOfOrderFFRefusesAtRho: a lone thief on a one-task queue gets
// Abort from the fence-free relaxed-specification queues, leaving the
// queue unchanged.
func TestLawsOfOrderFFRefusesAtRho(t *testing.T) {
	for _, algo := range []Algo{AlgoFFTHE, AlgoFFCL} {
		m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 4, Seed: 1})
		q := New(algo, m, 16, 1) // even the smallest legal δ refuses at ρ
		q.(Prefiller).Prefill(m, []uint64{77})
		err := m.Run(func(c tso.Context) {
			if _, st := q.Steal(c); st != Abort {
				t.Errorf("%v: lone thief at ρ got %v want Abort", algo, st)
			}
			// The queue is unchanged: the owner can still take the task.
			if v, st := q.Take(c); st != OK || v != 77 {
				t.Errorf("%v: after aborted steal, take = %d,%v want 77,OK", algo, v, st)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestLawsOfOrderFFRefusalProvedExhaustively upgrades the single-seed
// check above to a proof: in *every* schedule of the lone-thief program —
// all interleavings of thread steps and store-buffer drains on an S=4
// machine — the steal aborts and the subsequent take still returns the
// task. This is the tightness violation of §6 as a theorem about the
// model, not an observation about one run.
//
// (The worker-vs-thief duel at ρ is intractable for the exhaustive
// engine even at S=1: both sides contend on the queue spinlock, and
// lock-spin iterations differ only in step count, which canonical-state
// pruning must keep in its key to stay sound under per-run step budgets.
// The duel facts are instead proved on the spinlock-free paths by the
// ffclDuel tests in explore_test.go.)
func TestLawsOfOrderFFRefusalProvedExhaustively(t *testing.T) {
	for _, algo := range []Algo{AlgoFFTHE, AlgoFFCL} {
		var resA tso.Addr
		mk := func(m *tso.Machine) []func(tso.Context) {
			q := New(algo, m, 16, 1)
			q.(Prefiller).Prefill(m, []uint64{77})
			resA = m.Alloc(1)
			return []func(tso.Context){
				func(c tso.Context) {
					_, st := q.Steal(c)
					v, st2 := q.Take(c)
					c.Store(resA, uint64(st)*10000+uint64(st2)*1000+v)
					c.Fence()
				},
			}
		}
		out := func(m *tso.Machine) string { return fmt.Sprintf("%d", m.Peek(resA)) }
		set, res := tso.ExploreExhaustive(tso.Config{Threads: 1, BufferSize: 4}, mk, out,
			tso.ExhaustiveOptions{ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 20}, Prune: true})
		if !res.Complete {
			t.Fatalf("%v: incomplete after %d runs", algo, res.Runs)
		}
		// Abort=2 in the steal slot, OK=0 in the take slot, value 77.
		if len(set.Counts) != 1 || !set.Has("20077") {
			t.Fatalf("%v: lone thief at ρ outcomes %v want only steal=Abort,take=77,OK", algo, set.Counts)
		}
		t.Logf("%v: refusal at ρ proved over %d schedules (%d executed)", algo, set.Total(), res.Runs)
	}
}

// TestLawsOfOrderTHEPBlocksAtRho: a lone THEP thief at ρ waits for a worker
// echo that never comes (bounded here by the machine's step limit). This is
// the blocking form of the tightness violation.
func TestLawsOfOrderTHEPBlocksAtRho(t *testing.T) {
	m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 4, Seed: 1, MaxSteps: 50000})
	q := NewTHEP(m, 16, 1)
	q.Prefill(m, []uint64{77})
	err := m.Run(func(c tso.Context) {
		q.Steal(c)
		t.Error("THEP lone thief at ρ returned; it must block until a worker echoes")
	})
	if !errors.Is(err, tso.ErrStepLimit) {
		t.Fatalf("err=%v want step limit (blocked thief)", err)
	}
}

// TestLawsOfOrderTHEPUnblocksWhenWorkerArrives: the same state, but with a
// worker taking tasks: the thief's wait terminates because work-stealing
// clients keep taking until the queue empties (§5).
func TestLawsOfOrderTHEPUnblocksWhenWorkerArrives(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		m := tso.NewMachine(tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.2})
		q := NewTHEP(m, 16, 2)
		q.Prefill(m, []uint64{77})
		var (
			workerGot, thiefGot uint64
			workerSt, thiefSt   Status
			workerDone          bool
		)
		err := m.Run(
			func(c tso.Context) {
				workerGot, workerSt = q.Take(c)
				workerDone = true
			},
			func(c tso.Context) {
				thiefGot, thiefSt = q.Steal(c)
				_ = workerDone
			},
		)
		if err != nil {
			t.Fatalf("seed %d: %v (THEP thief must not block when a worker drains the queue)", seed, err)
		}
		gotTask := 0
		if workerSt == OK && workerGot == 77 {
			gotTask++
		}
		if thiefSt == OK && thiefGot == 77 {
			gotTask++
		}
		if gotTask != 1 {
			t.Fatalf("seed %d: task delivered %d times (worker=%v/%d thief=%v/%d)",
				seed, gotTask, workerSt, workerGot, thiefSt, thiefGot)
		}
	}
}

// TestTHEAllowsLoneStealAtRho: the baseline THE queue is tight — the SNC
// execution does occur: a lone thief steals the single task.
func TestTHEAllowsLoneStealAtRho(t *testing.T) {
	m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 4, Seed: 1})
	q := NewTHE(m, 16)
	q.Prefill(m, []uint64{77})
	err := m.Run(func(c tso.Context) {
		if v, st := q.Steal(c); st != OK || v != 77 {
			t.Errorf("THE lone steal = %d,%v want 77,OK", v, st)
		}
		if _, st := q.Take(c); st != Empty {
			t.Errorf("take after steal = %v want Empty", st)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLinearizabilityViolationSharedByBaselines reproduces §3.3: a put()
// delayed in the worker's store buffer can be missed by a thief, so even
// the *fenced* Chase-Lev queue is not linearizable under TSO. The paper
// stresses this violation exists in deployed baselines and is not what
// fence-freedom trades away.
func TestLinearizabilityViolationSharedByBaselines(t *testing.T) {
	for _, algo := range []Algo{AlgoChaseLev, AlgoFFCL, AlgoTHE, AlgoFFTHE, AlgoTHEP} {
		algo := algo
		sawViolation := false
		for seed := int64(0); seed < 300 && !sawViolation; seed++ {
			m := tso.NewMachine(tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.02})
			q := New(algo, m, 16, 1)
			putDone := false
			var stealSt Status
			stole := false
			err := m.Run(
				func(c tso.Context) {
					q.Put(c, 5)
					putDone = true
					// Keep the thread alive without fencing so the put
					// can stay buffered while the thief runs.
					for i := 0; i < 50; i++ {
						c.Work(1)
					}
				},
				func(c tso.Context) {
					// Wait (meta-level) until put() has returned, then
					// steal: EMPTY/ABORT here is a linearizability
					// violation, since put completed before steal began.
					for !putDone {
						c.Work(1)
					}
					_, stealSt = q.Steal(c)
					stole = true
					_ = stole
				},
			)
			if err != nil {
				t.Fatalf("%v seed %d: %v", algo, seed, err)
			}
			if stealSt == Empty || stealSt == Abort {
				sawViolation = true
			}
		}
		if !sawViolation {
			t.Errorf("%v: never observed the §3.3 linearizability violation; the put is draining too eagerly", algo)
		}
	}
}
