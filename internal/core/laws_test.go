package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/tso"
)

// This file reproduces §6 ("Sidestepping the laws of order") and the §3.3
// linearizability discussion as executable facts.
//
// The "laws of order" theorem says a linearizable implementation of a
// strongly non-commutative method must fence or use an atomic in some
// execution — *assuming tightness*: every legal sequential execution can
// occur. The state ρ that makes take()/steal() strongly non-commutative is
// a queue holding exactly one task, and the paper's algorithms make the
// lone-thief-steals-from-ρ execution impossible: FF-THE and FF-CL refuse
// (Abort), and THEP blocks until a worker arrives.

// TestLawsOfOrderFFRefusesAtRho: a lone thief on a one-task queue gets
// Abort from the fence-free relaxed-specification queues, leaving the
// queue unchanged.
func TestLawsOfOrderFFRefusesAtRho(t *testing.T) {
	for _, algo := range []Algo{AlgoFFTHE, AlgoFFCL} {
		m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 4, Seed: 1})
		q := New(algo, m, 16, 1) // even the smallest legal δ refuses at ρ
		q.(Prefiller).Prefill(m, []uint64{77})
		err := m.Run(func(c tso.Context) {
			if _, st := q.Steal(c); st != Abort {
				t.Errorf("%v: lone thief at ρ got %v want Abort", algo, st)
			}
			// The queue is unchanged: the owner can still take the task.
			if v, st := q.Take(c); st != OK || v != 77 {
				t.Errorf("%v: after aborted steal, take = %d,%v want 77,OK", algo, v, st)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestLawsOfOrderFFRefusalProvedExhaustively upgrades the single-seed
// check above to a proof: in *every* schedule of the lone-thief program —
// all interleavings of thread steps and store-buffer drains on an S=4
// machine — the steal aborts and the subsequent take still returns the
// task. This is the tightness violation of §6 as a theorem about the
// model, not an observation about one run.
//
// (The worker-vs-thief duel at ρ — both sides contending on the queue
// spinlock — was long documented intractable here: unbounded lock spins
// make the schedule tree infinite, and bounding runs by steps makes
// lock-spin iterations differ only in step count, which canonical-state
// pruning must keep in its key to stay sound. The dependence-layer DPOR
// engine closes it as a bounded proof instead:
// TestLawsOfOrderDuelAtRhoBoundedProof below. The spinlock-free duel
// facts remain proved by the ffclDuel tests in explore_test.go.)
func TestLawsOfOrderFFRefusalProvedExhaustively(t *testing.T) {
	for _, algo := range []Algo{AlgoFFTHE, AlgoFFCL} {
		var resA tso.Addr
		mk := func(m *tso.Machine) []func(tso.Context) {
			q := New(algo, m, 16, 1)
			q.(Prefiller).Prefill(m, []uint64{77})
			resA = m.Alloc(1)
			return []func(tso.Context){
				func(c tso.Context) {
					_, st := q.Steal(c)
					v, st2 := q.Take(c)
					c.Store(resA, uint64(st)*10000+uint64(st2)*1000+v)
					c.Fence()
				},
			}
		}
		out := func(m *tso.Machine) string { return fmt.Sprintf("%d", m.Peek(resA)) }
		set, res := tso.ExploreExhaustive(tso.Config{Threads: 1, BufferSize: 4}, mk, out,
			tso.ExhaustiveOptions{ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 20}, Prune: true})
		if !res.Complete {
			t.Fatalf("%v: incomplete after %d runs", algo, res.Runs)
		}
		// Abort=2 in the steal slot, OK=0 in the take slot, value 77.
		if len(set.Counts) != 1 || !set.Has("20077") {
			t.Fatalf("%v: lone thief at ρ outcomes %v want only steal=Abort,take=77,OK", algo, set.Counts)
		}
		t.Logf("%v: refusal at ρ proved over %d schedules (%d executed)", algo, set.Total(), res.Runs)
	}
}

// TestLawsOfOrderDuelAtRhoBoundedProof completes the duel the file-level
// comment used to document as intractable: a worker take racing a thief
// steal at ρ (one task, S=1), both sides contending on the queue
// spinlock. The spin makes the schedule tree infinite, so the proof is
// over the step-bounded space: every schedule either completes within
// the per-run step budget or is accounted under "<step-limit>", and the
// source-set DPOR engine — whose backtracking re-opens every node a
// truncated run crosses, keeping the reduction sound under the bound —
// covers that space completely.
//
// The facts proved: THE is tight at ρ (both the worker-wins and the
// thief-wins outcomes occur, task delivered exactly once either way),
// while FF-THE's thief refuses in *every* completed bounded schedule —
// the strongly-non-commutative execution the laws of order require
// never happens, which is the §6 tightness violation as a theorem over
// the bounded schedule space.
func TestLawsOfOrderDuelAtRhoBoundedProof(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("~20s bounded duel proof, >10m under -race; CI runs it race-free in perf-smoke")
	}
	duel := func(algo Algo, lim int64) (tso.OutcomeSet, tso.ExploreResult) {
		var wA, tA tso.Addr
		mk := func(m *tso.Machine) []func(tso.Context) {
			q := New(algo, m, 16, 1)
			q.(Prefiller).Prefill(m, []uint64{7})
			wA, tA = m.Alloc(1), m.Alloc(1)
			return []func(tso.Context){
				func(c tso.Context) {
					v, st := q.Take(c)
					c.Store(wA, uint64(st)*10+v)
					c.Fence()
				},
				func(c tso.Context) {
					v, st := q.Steal(c)
					c.Store(tA, uint64(st)*10+v)
					c.Fence()
				},
			}
		}
		out := func(m *tso.Machine) string {
			return fmt.Sprintf("w=%d t=%d", m.Peek(wA), m.Peek(tA))
		}
		return tso.ExploreExhaustive(tso.Config{Threads: 2, BufferSize: 1}, mk, out,
			tso.ExhaustiveOptions{
				ExploreOptions: tso.ExploreOptions{MaxRuns: 4 << 20, MaxStepsPerRun: lim},
				DPOR:           true,
				Parallel:       4,
			})
	}

	// THE: tight. The encoding is status*10+value (OK=0, Empty=1), so
	// "w=7 t=10" is worker-wins and "w=10 t=7" is thief-wins; both must
	// occur, and nothing else completes (no double delivery, no lost
	// task).
	set, res := duel(AlgoTHE, 20)
	if !res.Complete {
		t.Fatalf("THE duel incomplete after %d runs", res.Runs)
	}
	for o := range set.Counts {
		if o != "<step-limit>" && o != "w=7 t=10" && o != "w=10 t=7" {
			t.Errorf("THE duel reached %q: task lost or double-delivered", o)
		}
	}
	if !set.Has("w=7 t=10") || !set.Has("w=10 t=7") {
		t.Errorf("THE is tight at ρ: both duel winners must occur, got %v", set.Counts)
	}
	t.Logf("THE duel: %d executed runs, %d step-limited, outcomes %v", res.Runs, res.StepLimited, set.Counts)

	// FF-THE: the thief refuses (Abort=2) in every completed schedule —
	// the worker always wins the task.
	set, res = duel(AlgoFFTHE, 18)
	if !res.Complete {
		t.Fatalf("FF-THE duel incomplete after %d runs", res.Runs)
	}
	for o := range set.Counts {
		if o != "<step-limit>" && o != "w=7 t=20" {
			t.Errorf("FF-THE duel reached %q: the thief must refuse at ρ", o)
		}
	}
	if !set.Has("w=7 t=20") {
		t.Errorf("FF-THE duel never completed a schedule: %v", set.Counts)
	}
	t.Logf("FF-THE duel: %d executed runs, %d step-limited, outcomes %v", res.Runs, res.StepLimited, set.Counts)
}

// TestLawsOfOrderTHEPBlocksAtRho: a lone THEP thief at ρ waits for a worker
// echo that never comes (bounded here by the machine's step limit). This is
// the blocking form of the tightness violation.
func TestLawsOfOrderTHEPBlocksAtRho(t *testing.T) {
	m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 4, Seed: 1, MaxSteps: 50000})
	q := NewTHEP(m, 16, 1)
	q.Prefill(m, []uint64{77})
	err := m.Run(func(c tso.Context) {
		q.Steal(c)
		t.Error("THEP lone thief at ρ returned; it must block until a worker echoes")
	})
	if !errors.Is(err, tso.ErrStepLimit) {
		t.Fatalf("err=%v want step limit (blocked thief)", err)
	}
}

// TestLawsOfOrderTHEPUnblocksWhenWorkerArrives: the same state, but with a
// worker taking tasks: the thief's wait terminates because work-stealing
// clients keep taking until the queue empties (§5).
func TestLawsOfOrderTHEPUnblocksWhenWorkerArrives(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		m := tso.NewMachine(tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.2})
		q := NewTHEP(m, 16, 2)
		q.Prefill(m, []uint64{77})
		var (
			workerGot, thiefGot uint64
			workerSt, thiefSt   Status
			workerDone          bool
		)
		err := m.Run(
			func(c tso.Context) {
				workerGot, workerSt = q.Take(c)
				workerDone = true
			},
			func(c tso.Context) {
				thiefGot, thiefSt = q.Steal(c)
				_ = workerDone
			},
		)
		if err != nil {
			t.Fatalf("seed %d: %v (THEP thief must not block when a worker drains the queue)", seed, err)
		}
		gotTask := 0
		if workerSt == OK && workerGot == 77 {
			gotTask++
		}
		if thiefSt == OK && thiefGot == 77 {
			gotTask++
		}
		if gotTask != 1 {
			t.Fatalf("seed %d: task delivered %d times (worker=%v/%d thief=%v/%d)",
				seed, gotTask, workerSt, workerGot, thiefSt, thiefGot)
		}
	}
}

// TestTHEAllowsLoneStealAtRho: the baseline THE queue is tight — the SNC
// execution does occur: a lone thief steals the single task.
func TestTHEAllowsLoneStealAtRho(t *testing.T) {
	m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 4, Seed: 1})
	q := NewTHE(m, 16)
	q.Prefill(m, []uint64{77})
	err := m.Run(func(c tso.Context) {
		if v, st := q.Steal(c); st != OK || v != 77 {
			t.Errorf("THE lone steal = %d,%v want 77,OK", v, st)
		}
		if _, st := q.Take(c); st != Empty {
			t.Errorf("take after steal = %v want Empty", st)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLinearizabilityViolationSharedByBaselines reproduces §3.3: a put()
// delayed in the worker's store buffer can be missed by a thief, so even
// the *fenced* Chase-Lev queue is not linearizable under TSO. The paper
// stresses this violation exists in deployed baselines and is not what
// fence-freedom trades away.
func TestLinearizabilityViolationSharedByBaselines(t *testing.T) {
	for _, algo := range []Algo{AlgoChaseLev, AlgoFFCL, AlgoTHE, AlgoFFTHE, AlgoTHEP} {
		algo := algo
		sawViolation := false
		for seed := int64(0); seed < 300 && !sawViolation; seed++ {
			m := tso.NewMachine(tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.02})
			q := New(algo, m, 16, 1)
			putDone := false
			var stealSt Status
			stole := false
			err := m.Run(
				func(c tso.Context) {
					q.Put(c, 5)
					putDone = true
					// Keep the thread alive without fencing so the put
					// can stay buffered while the thief runs.
					for i := 0; i < 50; i++ {
						c.Work(1)
					}
				},
				func(c tso.Context) {
					// Wait (meta-level) until put() has returned, then
					// steal: EMPTY/ABORT here is a linearizability
					// violation, since put completed before steal began.
					for !putDone {
						c.Work(1)
					}
					_, stealSt = q.Steal(c)
					stole = true
					_ = stole
				},
			)
			if err != nil {
				t.Fatalf("%v seed %d: %v", algo, seed, err)
			}
			if stealSt == Empty || stealSt == Abort {
				sawViolation = true
			}
		}
		if !sawViolation {
			t.Errorf("%v: never observed the §3.3 linearizability violation; the put is draining too eagerly", algo)
		}
	}
}
