// Package core implements the paper's primary contribution: the work
// stealing task queues of Morrison & Afek, "Fence-Free Work Stealing on
// Bounded TSO Processors" (ASPLOS 2014), as direct transcriptions of the
// paper's Figures 2–5, plus the comparators evaluated in §8.
//
// All queues operate on simulated memory through tso.Context, so each runs
// unchanged on both the chaos (correctness) and timed (performance)
// engines. The implementations are:
//
//   - THE        — Cilk's THE protocol (Figure 2b), the fenced baseline.
//   - ChaseLev   — the Chase-Lev deque (Figure 2c), the fenced baseline.
//   - FFTHE      — fence-free THE (Figure 3): the thief refuses to steal
//     (returns Abort) unless the tail it read is more than δ ahead of the
//     head, where δ bounds the take() stores hidden in the worker's store
//     buffer.
//   - FFCL       — fence-free Chase-Lev (Figure 4), same δ reasoning.
//   - THEP       — fence-free THE with worker echoes (Figure 5): instead
//     of aborting under uncertainty, the thief publishes a heartbeat in
//     the top bits of H and waits for the worker to echo it through P,
//     preserving the original deterministic work-stealing specification.
//   - IdempotentLIFO, IdempotentDE — Michael et al.'s idempotent queues
//     (§8.2 comparators), which are fence-free but may hand out a task
//     more than once.
//
// Every queue is a single-owner deque: Put and Take may be called only by
// the owning worker thread; Steal may be called by any thread. THE-family
// steals additionally serialize on the queue's internal lock, exactly as in
// the paper.
package core

import (
	"repro/internal/tso"
)

// Status is the outcome of a Take or Steal.
type Status int

const (
	// OK means a task was removed and returned.
	OK Status = iota
	// Empty means the queue was (observably) empty.
	Empty
	// Abort means a fence-free thief could not rule out a conflict with a
	// buffered take() and refused to steal (§4's relaxed specification).
	// Only FFTHE and FFCL return it.
	Abort
)

func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case Empty:
		return "EMPTY"
	case Abort:
		return "ABORT"
	default:
		return "Status(?)"
	}
}

// Deque is the work-stealing task queue interface of §3.1, extended with
// the Abort status of the relaxed specification in §4.
type Deque interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Put enqueues v at the tail. Owner only.
	Put(c tso.Context, v uint64)
	// Take dequeues from the tail. Owner only.
	Take(c tso.Context) (uint64, Status)
	// Steal dequeues from the head. Any thread.
	Steal(c tso.Context) (uint64, Status)
}

// Poker writes simulated memory directly; both tso.Machine and
// tso.TimedMachine implement it. Queues use it to prefill tasks before a
// run (the Figure 9 litmus test starts from a queue of 512 items).
type Poker interface {
	Poke(a tso.Addr, v uint64)
}

// Prefiller is implemented by queues that support direct initialization.
type Prefiller interface {
	// Prefill installs vals as the queue's initial contents (head first)
	// by writing memory directly. Must be called before the machine runs.
	Prefill(p Poker, vals []uint64)
}

// i64 reinterprets a simulated memory word as a signed index. The paper's
// H and T are signed 64-bit integers (T-1 on an empty queue is -1); memory
// words are uint64, so the queues store two's-complement and compare via
// this helper.
func i64(v uint64) int64 { return int64(v) }

// u64 is the inverse of i64.
func u64(v int64) uint64 { return uint64(v) }

// pack32 packs two 32-bit halves into one memory word; THEP keeps the
// steal counter s in the top half of H and the head index h in the bottom
// (Figure 5 line 85).
func pack32(hi, lo uint32) uint64 { return uint64(hi)<<32 | uint64(lo) }

// unpack32 splits a word packed by pack32.
func unpack32(v uint64) (hi, lo uint32) { return uint32(v >> 32), uint32(v) }
