package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/tso"
)

// iriwProgs is the four-thread IRIW litmus: two writers publish x and y,
// two readers load the pair in opposite orders, each publishing its two
// observations (offset by one so "read 0" and "never ran" differ).
func iriwProgs() (func(m *tso.Machine) []func(tso.Context), func(m *tso.Machine) string) {
	const xA, yA = tso.Addr(0), tso.Addr(1)
	mk := func(m *tso.Machine) []func(tso.Context) {
		m.Alloc(6)
		reader := func(first, second tso.Addr, res tso.Addr) func(tso.Context) {
			return func(c tso.Context) {
				a := c.Load(first)
				b := c.Load(second)
				c.Store(res, a+1)
				c.Store(res+1, b+1)
				c.Fence()
			}
		}
		return []func(tso.Context){
			func(c tso.Context) { c.Store(xA, 1) },
			func(c tso.Context) { c.Store(yA, 1) },
			reader(xA, yA, 2),
			reader(yA, xA, 4),
		}
	}
	out := func(m *tso.Machine) string {
		return fmt.Sprintf("r1=%d%d r2=%d%d", m.Peek(2)-1, m.Peek(3)-1, m.Peek(4)-1, m.Peek(5)-1)
	}
	return mk, out
}

// TestBenchExplore measures the exploration core's two canonical
// workloads — the four-thread IRIW litmus and the FF-CL S=2 δ-soundness
// duel, each explored under Prune and under DPOR — plus the frontier
// checkpoint's wire cost per unit under both codecs. It only runs when
// BENCH_EXPLORE_OUT names an output file, where it writes a one-object
// JSON summary (CI uploads it as the BENCH_explore.json artifact). The
// checked-in copy under results/ doubles as a regression gate: executed-
// run counts are deterministic, so any count more than 25% above its
// reference value fails the bench.
func TestBenchExplore(t *testing.T) {
	out := os.Getenv("BENCH_EXPLORE_OUT")
	if out == "" {
		t.Skip("set BENCH_EXPLORE_OUT=path to run the exploration bench")
	}

	iriwCfg := tso.Config{Threads: 4, BufferSize: 1}
	iriwMk, iriwOut := iriwProgs()
	start := time.Now()
	iriwSet, iriwRes := tso.ExploreExhaustive(iriwCfg, iriwMk, iriwOut, tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 22},
		Parallel:       4,
		Prune:          true,
	})
	iriwSecs := time.Since(start).Seconds()
	if !iriwRes.Complete {
		t.Fatalf("IRIW exploration incomplete after %d executed runs", iriwRes.Runs)
	}

	ffclMk, ffclOut, ffclCfg := ffclDuel(3, 2, 2, 2 /*S*/, 2 /*δ=S*/)
	start = time.Now()
	ffclSet, ffclRes := tso.ExploreExhaustive(ffclCfg, ffclMk, ffclOut, tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 22},
		Parallel:       4,
		Prune:          true,
	})
	ffclSecs := time.Since(start).Seconds()
	if !ffclRes.Complete {
		t.Fatalf("FF-CL duel exploration incomplete after %d executed runs", ffclRes.Runs)
	}

	// The same two workloads under source-set DPOR. The executed-run
	// counts are the headline: one schedule per Mazurkiewicz class, so
	// any growth here means the dependence layer got coarser.
	start = time.Now()
	iriwDSet, iriwDRes := tso.ExploreExhaustive(iriwCfg, iriwMk, iriwOut, tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 22},
		Parallel:       4,
		DPOR:           true,
	})
	iriwDSecs := time.Since(start).Seconds()
	if !iriwDRes.Complete {
		t.Fatalf("IRIW DPOR exploration incomplete after %d executed runs", iriwDRes.Runs)
	}
	start = time.Now()
	ffclDSet, ffclDRes := tso.ExploreExhaustive(ffclCfg, ffclMk, ffclOut, tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 22},
		Parallel:       4,
		DPOR:           true,
	})
	ffclDSecs := time.Since(start).Seconds()
	if !ffclDRes.Complete {
		t.Fatalf("FF-CL duel DPOR exploration incomplete after %d executed runs", ffclDRes.Runs)
	}
	for _, w := range []struct {
		name       string
		pruned, dp tso.OutcomeSet
	}{{"iriw", iriwSet, iriwDSet}, {"ffcl_s2", ffclSet, ffclDSet}} {
		for o := range w.pruned.Counts {
			if !w.dp.Has(o) {
				t.Errorf("%s: outcome %q lost under DPOR", w.name, o)
			}
		}
		for o := range w.dp.Counts {
			if !w.pruned.Has(o) {
				t.Errorf("%s: outcome %q invented under DPOR", w.name, o)
			}
		}
	}

	// Wire cost per frontier unit, both codecs, on a realistic sharded
	// IRIW frontier.
	const units = 64
	cp, err := tso.ShardFrontier(iriwCfg, iriwMk, tso.ExhaustiveOptions{Units: units})
	if err != nil {
		t.Fatal(err)
	}
	var bin, js bytes.Buffer
	if err := (tso.BinaryCodec{}).EncodeCheckpoint(&bin, cp); err != nil {
		t.Fatal(err)
	}
	if err := (tso.JSONCodec{}).EncodeCheckpoint(&js, cp); err != nil {
		t.Fatal(err)
	}

	summary := map[string]any{
		"iriw_schedules":          iriwSet.Total(),
		"iriw_executed":           iriwRes.Runs,
		"iriw_seconds":            iriwSecs,
		"iriw_dpor_executed":      iriwDRes.Runs,
		"iriw_dpor_seconds":       iriwDSecs,
		"ffcl_s2_schedules":       ffclSet.Total(),
		"ffcl_s2_executed":        ffclRes.Runs,
		"ffcl_s2_seconds":         ffclSecs,
		"ffcl_s2_dpor_executed":   ffclDRes.Runs,
		"ffcl_s2_dpor_seconds":    ffclDSecs,
		"checkpoint_units":        len(cp.Units),
		"checkpoint_bytes_binary": bin.Len(),
		"checkpoint_bytes_json":   js.Len(),
		"bytes_per_unit_binary":   float64(bin.Len()) / float64(len(cp.Units)),
		"bytes_per_unit_json":     float64(js.Len()) / float64(len(cp.Units)),
		"json_over_binary_ratio":  float64(js.Len()) / float64(bin.Len()),
	}
	b, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("IRIW %d schedules in %.2fs (DPOR executed %d vs pruned %d); FF-CL S=2 %d schedules in %.2fs (DPOR executed %d vs pruned %d); checkpoint %dB binary vs %dB JSON (%.1fx)",
		iriwSet.Total(), iriwSecs, iriwDRes.Runs, iriwRes.Runs,
		ffclSet.Total(), ffclSecs, ffclDRes.Runs, ffclRes.Runs, bin.Len(), js.Len(),
		float64(js.Len())/float64(bin.Len()))

	// Regression gate against the checked-in reference. Executed-run
	// counts are deterministic functions of the engine's reduction
	// machinery (timings are not gated — CI runners jitter), so a count
	// >25% above its reference value means a reduction regressed.
	ref, err := os.ReadFile("../../results/BENCH_explore.json")
	if err != nil {
		t.Fatalf("no checked-in reference to gate against: %v", err)
	}
	var refCols map[string]float64
	if err := json.Unmarshal(ref, &refCols); err != nil {
		t.Fatalf("results/BENCH_explore.json: %v", err)
	}
	for col, got := range map[string]int{
		"iriw_executed":         iriwRes.Runs,
		"iriw_dpor_executed":    iriwDRes.Runs,
		"ffcl_s2_executed":      ffclRes.Runs,
		"ffcl_s2_dpor_executed": ffclDRes.Runs,
	} {
		want, ok := refCols[col]
		if !ok {
			t.Errorf("reference BENCH_explore.json lacks %q; regenerate it", col)
			continue
		}
		if float64(got) > want*1.25 {
			t.Errorf("%s regressed >25%%: executed %d runs, reference %d", col, got, int64(want))
		}
	}
}
