package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/tso"
)

// brokenCL is a deliberately sabotaged Chase-Lev variant used to validate
// the semantic oracle itself: when a thief sees two or more tasks it
// advances H by two while delivering only one, silently dropping the task
// in between. A drained run over it must produce a lost-task verdict —
// if the oracle ever stops flagging this mutant, the oracle is broken.
type brokenCL struct {
	h, t, tasks tso.Addr
	w           int64
}

func newBrokenCL(a tso.Allocator, capacity int) *brokenCL {
	return &brokenCL{h: a.Alloc(1), t: a.Alloc(1), tasks: a.Alloc(capacity), w: int64(capacity)}
}

func (q *brokenCL) slot(i int64) tso.Addr {
	i %= q.w
	if i < 0 {
		i += q.w
	}
	return q.tasks + tso.Addr(i)
}

func (q *brokenCL) Name() string { return "broken-CL" }

func (q *brokenCL) Put(c tso.Context, v uint64) {
	t := int64(c.Load(q.t))
	c.Store(q.slot(t), v)
	c.Store(q.t, uint64(t+1))
}

func (q *brokenCL) Take(c tso.Context) (uint64, core.Status) {
	t := int64(c.Load(q.t)) - 1
	c.Store(q.t, uint64(t))
	c.Fence()
	h := int64(c.Load(q.h))
	if t > h {
		return c.Load(q.slot(t)), core.OK
	}
	if t < h {
		c.Store(q.t, uint64(h))
		return 0, core.Empty
	}
	c.Store(q.t, uint64(h+1))
	if _, ok := c.CAS(q.h, uint64(h), uint64(h+1)); !ok {
		return 0, core.Empty
	}
	return c.Load(q.slot(t)), core.OK
}

func (q *brokenCL) Steal(c tso.Context) (uint64, core.Status) {
	for {
		h := int64(c.Load(q.h))
		t := int64(c.Load(q.t))
		if h >= t {
			return 0, core.Empty
		}
		task := c.Load(q.slot(h))
		adv := int64(1)
		if t-h >= 2 {
			adv = 2 // the planted bug: claim two, deliver one
		}
		if _, ok := c.CAS(q.h, uint64(h), uint64(h+adv)); !ok {
			continue
		}
		return task, core.OK
	}
}

func (q *brokenCL) Prefill(p core.Poker, vals []uint64) {
	for i, v := range vals {
		p.Poke(q.slot(int64(i)), v)
	}
	p.Poke(q.h, 0)
	p.Poke(q.t, uint64(len(vals)))
}

// brokenScenario drains two prefilled tasks through the mutant with one
// racing thief: the thief sees both, claims both, delivers one. The thief
// is thread 0 so the planted bug sits on an early DFS path and the
// counterexample search stays cheap.
func brokenScenario() oracle.Scenario {
	return oracle.Scenario{
		Name:   "broken-CL mutant",
		Config: tso.Config{Threads: 2, BufferSize: 2},
		Build: func(m *tso.Machine) ([]func(tso.Context), *oracle.History) {
			h := oracle.NewHistory()
			q := oracle.Instrument(newBrokenCL(m, 8), h)
			q.Prefill(m, []uint64{1, 2})
			h.ExpectDrained()
			worker := func(c tso.Context) {
				for {
					if _, st := q.Take(c); st == core.Empty {
						break
					}
				}
			}
			thief := func(c tso.Context) {
				if _, st := q.Steal(c); st == core.Empty {
					return
				}
			}
			return []func(tso.Context){thief, worker}, h
		},
	}
}

// TestOracleCatchesBrokenDeque is the oracle's mutation self-test: the
// planted double-advance bug must surface as a lost-task verdict within a
// bounded exhaustive exploration, with a replayable counterexample.
func TestOracleCatchesBrokenDeque(t *testing.T) {
	sc := brokenScenario()
	rep := oracle.Run(sc, oracle.RunOptions{Spec: oracle.Precise{}, Prune: true, Counterexample: true})
	if !rep.Complete {
		t.Fatalf("exploration incomplete after %d executed schedules", rep.Executed)
	}
	if rep.Violating == 0 {
		t.Fatalf("oracle missed the planted task drop: %v", rep.Outcomes)
	}
	lost := false
	for o := range rep.Outcomes {
		if strings.Contains(o, "lost") {
			lost = true
		}
	}
	if !lost {
		t.Fatalf("violations found but none lost: %v", rep.Outcomes)
	}
	ce := rep.Counterexample
	if ce == nil {
		t.Fatal("no counterexample extracted")
	}
	viols, _, err := oracle.Replay(sc, oracle.Precise{}, ce.Choices)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if got := oracle.RenderVerdict(viols); got != ce.Outcome {
		t.Fatalf("replay verdict %q != counterexample %q", got, ce.Outcome)
	}
}

// TestOracleAcceptsFixedDeque is the mutation test's control: the same
// drain duel over the real Chase-Lev queue stays clean, so the mutant's
// verdicts are attributable to the planted bug alone.
func TestOracleAcceptsFixedDeque(t *testing.T) {
	p := oracle.Program{Algo: core.AlgoChaseLev, S: 2, Prefill: 2, Thieves: []int{1}, Drain: true}
	rep := oracle.Run(p.Scenario(), oracle.RunOptions{Spec: oracle.Precise{}, Prune: true, Counterexample: true})
	if !rep.Complete {
		t.Fatalf("exploration incomplete after %d executed schedules", rep.Executed)
	}
	if rep.Violating != 0 {
		t.Fatalf("fixed deque flagged: %v (counterexample: %+v)", rep.Outcomes, rep.Counterexample)
	}
}
