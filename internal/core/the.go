package core

import (
	"fmt"

	"repro/internal/tso"
)

// theBase holds the memory layout shared by THE, FFTHE and THEP: head and
// tail indices, a task array of W slots addressed mod W with non-wrapping
// indices, and the per-queue lock (Figure 2a).
type theBase struct {
	h, t  tso.Addr // head and tail index words
	tasks tso.Addr // base of the W-slot task array
	w     int64    // W, the array capacity
	lk    spinlock
	// packedHead is set by THEP, whose H word holds <s:32, h:32>; the
	// shared overflow check must then unpack the low half.
	packedHead bool
}

func newTHEBase(a tso.Allocator, capacity int) theBase {
	if capacity < 1 {
		panic(fmt.Sprintf("core: queue capacity %d < 1", capacity))
	}
	return theBase{
		h:     a.Alloc(1),
		t:     a.Alloc(1),
		tasks: a.Alloc(capacity),
		w:     int64(capacity),
		lk:    newSpinlock(a),
	}
}

func (q *theBase) slot(i int64) tso.Addr {
	i %= q.w
	if i < 0 {
		i += q.w
	}
	return q.tasks + tso.Addr(i)
}

// put is Figure 2a's put(): store the task, then advance T. TSO's FIFO
// store buffer guarantees the task store reaches memory before the index
// store, so no fence is needed.
func (q *theBase) put(c tso.Context, v uint64) {
	t := i64(c.Load(q.t))
	h := i64(c.Load(q.h))
	if q.packedHead {
		_, lo := unpack32(u64(h))
		h = int64(lo)
	}
	if t-h >= q.w {
		panic(fmt.Sprintf("core: queue overflow (capacity %d); the paper elides resizing and so do the simulated queues", q.w))
	}
	c.Store(q.slot(t), v)
	c.Store(q.t, u64(t+1))
}

// take is Figure 2b's take(); withFence selects between THE (true) and
// FF-THE (false), which differ only in the worker's fence (Figure 3).
func (q *theBase) take(c tso.Context, withFence bool) (uint64, Status) {
	t := i64(c.Load(q.t)) - 1
	c.Store(q.t, u64(t))
	if withFence {
		c.Fence()
	}
	h := i64(c.Load(q.h))
	if t < h {
		// Possible conflict with a thief (or the queue was empty): fall
		// back to the lock-based protocol.
		q.lk.lock(c)
		if i64(c.Load(q.h)) >= t+1 {
			c.Store(q.t, u64(t+1))
			q.lk.unlock(c)
			return 0, Empty
		}
		q.lk.unlock(c)
	}
	return c.Load(q.slot(t)), OK
}

// Prefill implements Prefiller: install vals as tasks 0..n-1 with H=0, T=n.
func (q *theBase) Prefill(p Poker, vals []uint64) {
	if int64(len(vals)) > q.w {
		panic("core: prefill exceeds capacity")
	}
	for i, v := range vals {
		p.Poke(q.slot(int64(i)), v)
	}
	p.Poke(q.h, 0)
	p.Poke(q.t, u64(int64(len(vals))))
}

// THE is Cilk's THE work-stealing queue (Figure 2b): the fenced baseline.
// The worker publishes its decrement of T and fences before checking H;
// thieves serialize on the queue lock and raise H before checking T.
type THE struct {
	theBase
}

// NewTHE allocates a THE queue with the given task-array capacity.
func NewTHE(a tso.Allocator, capacity int) *THE {
	return &THE{newTHEBase(a, capacity)}
}

// Name implements Deque.
func (q *THE) Name() string { return "THE" }

// Put implements Deque.
func (q *THE) Put(c tso.Context, v uint64) { q.put(c, v) }

// Take implements Deque (Figure 2b lines 1–13, fence included).
func (q *THE) Take(c tso.Context) (uint64, Status) { return q.take(c, true) }

// Steal implements Deque (Figure 2b lines 15–28).
func (q *THE) Steal(c tso.Context) (uint64, Status) {
	q.lk.lock(c)
	h := i64(c.Load(q.h))
	c.Store(q.h, u64(h+1))
	c.Fence()
	var (
		ret uint64
		st  Status
	)
	if h+1 <= i64(c.Load(q.t)) { // H <= T
		ret = c.Load(q.slot(h))
		st = OK
	} else { // H > T: empty, or a worker just claimed the same task
		c.Store(q.h, u64(h))
		st = Empty
	}
	q.lk.unlock(c)
	return ret, st
}

// FFTHE is the fence-free THE queue of Figure 3. put() and take() are THE's
// with the worker's fence removed; a thief steals task h only if it
// observes T - δ > h, where δ bounds the take() decrements that can hide in
// the worker's store buffer, and otherwise returns Abort without modifying
// the queue.
type FFTHE struct {
	theBase
	delta int64
}

// NewFFTHE allocates an FF-THE queue. delta must be ≥ 1 (§4: "there is
// always uncertainty about the final store performed by the worker").
func NewFFTHE(a tso.Allocator, capacity, delta int) *FFTHE {
	if delta < 1 {
		panic(fmt.Sprintf("core: FF-THE needs delta >= 1, got %d", delta))
	}
	return &FFTHE{theBase: newTHEBase(a, capacity), delta: int64(delta)}
}

// Name implements Deque.
func (q *FFTHE) Name() string { return "FF-THE" }

// Delta returns the queue's δ parameter.
func (q *FFTHE) Delta() int { return int(q.delta) }

// Put implements Deque.
func (q *FFTHE) Put(c tso.Context, v uint64) { q.put(c, v) }

// Take implements Deque: THE's take() without the memory fence.
func (q *FFTHE) Take(c tso.Context) (uint64, Status) { return q.take(c, false) }

// Steal implements Deque (Figure 3). The Abort condition subsumes Empty:
// the thief can never distinguish an empty queue from one whose last takes
// are buffered, so it always answers Abort when uncertain.
func (q *FFTHE) Steal(c tso.Context) (uint64, Status) {
	q.lk.lock(c)
	h := i64(c.Load(q.h))
	c.Store(q.h, u64(h+1))
	c.Fence()
	var (
		ret uint64
		st  Status
	)
	if i64(c.Load(q.t))-q.delta > h {
		ret = c.Load(q.slot(h))
		st = OK
	} else {
		c.Store(q.h, u64(h))
		st = Abort
	}
	q.lk.unlock(c)
	return ret, st
}
