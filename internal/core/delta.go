package core

import "fmt"

// Delta computes δ = ⌈S/(x+1)⌉ from §4: the maximum number of take()
// stores to T that can be hidden in a store buffer with observable bound S
// when the client performs at least x stores between consecutive take()
// operations. A thief that observes T > h + δ knows the worker cannot have
// a pending removal of task h.
//
// S must be the machine's *observable* reordering bound
// (tso.Config.ObservableBound), not the raw store-buffer capacity —
// conflating the two is the Figure 8a failure.
func Delta(s, x int) int {
	if s < 1 {
		panic(fmt.Sprintf("core: Delta with bound %d < 1", s))
	}
	if x < 0 {
		panic(fmt.Sprintf("core: Delta with %d client stores", x))
	}
	return (s + x) / (x + 1) // ⌈s/(x+1)⌉
}

// DefaultDelta is the δ the paper's CilkPlus integration uses by default:
// δ = ⌈S/2⌉, justified because the CilkPlus runtime performs one store into
// the dequeued task after every take() (§8.1), so x = 1.
func DefaultDelta(s int) int { return Delta(s, 1) }

// DeltaInfinite is a δ so large the thief is never certain: FFTHE/FFCL
// always abort, and THEP always waits for the worker's echo (the "THEP
// δ = ∞" configuration of Figure 10).
const DeltaInfinite = int(^uint(0) >> 2)
