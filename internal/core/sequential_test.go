package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tso"
)

func newChaos(threads int, seed int64) *tso.Machine {
	return tso.NewMachine(tso.Config{
		Threads:    threads,
		BufferSize: 4,
		Seed:       seed,
		DrainBias:  0.3,
	})
}

// runSolo runs fn as the only simulated thread and fails the test on error.
func runSolo(t *testing.T, m *tso.Machine, fn func(tso.Context)) {
	t.Helper()
	if err := m.Run(fn); err != nil {
		t.Fatal(err)
	}
}

func allAlgos(alloc tso.Allocator, capacity, delta int) []Deque {
	ds := make([]Deque, 0, len(Algos))
	for _, a := range Algos {
		ds = append(ds, New(a, alloc, capacity, delta))
	}
	return ds
}

func TestSequentialPutTakeLIFO(t *testing.T) {
	m := newChaos(1, 1)
	for _, q := range allAlgos(m, 64, 2) {
		q := q
		runSolo(t, m, func(c tso.Context) {
			for i := uint64(1); i <= 20; i++ {
				q.Put(c, i)
			}
			for i := uint64(20); i >= 1; i-- {
				v, st := q.Take(c)
				if st != OK || v != i {
					t.Errorf("%s: take = %d,%v want %d,OK", q.Name(), v, st, i)
					return
				}
			}
			if _, st := q.Take(c); st != Empty {
				t.Errorf("%s: take on empty = %v want Empty", q.Name(), st)
			}
		})
	}
}

func TestSequentialPutTakeInterleaved(t *testing.T) {
	// Mixed puts and takes must behave as a stack at the tail for every
	// algorithm (the owner's view of the deque is LIFO).
	m := newChaos(1, 2)
	for _, q := range allAlgos(m, 128, 2) {
		q := q
		runSolo(t, m, func(c tso.Context) {
			var model []uint64
			r := rand.New(rand.NewSource(7))
			for step := 0; step < 400; step++ {
				if r.Intn(2) == 0 && len(model) < 100 {
					v := uint64(r.Intn(1000)) + 1
					q.Put(c, v)
					model = append(model, v)
				} else {
					v, st := q.Take(c)
					if len(model) == 0 {
						if st != Empty {
							t.Errorf("%s: take on empty = %v,%v", q.Name(), v, st)
							return
						}
						continue
					}
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if st != OK || v != want {
						t.Errorf("%s: take = %d,%v want %d,OK", q.Name(), v, st, want)
						return
					}
				}
			}
		})
	}
}

// stealAll drains the queue via Steal from a solo thread, stopping at the
// first non-OK status, and returns the stolen values.
func stealAll(c tso.Context, q Deque, limit int) []uint64 {
	var got []uint64
	for i := 0; i < limit; i++ {
		v, st := q.Steal(c)
		if st != OK {
			return got
		}
		got = append(got, v)
	}
	return got
}

func TestSequentialStealOrderFIFO(t *testing.T) {
	// Head-stealing algorithms hand out the oldest task first.
	m := newChaos(1, 3)
	for _, algo := range []Algo{AlgoTHE, AlgoChaseLev, AlgoIdempotentDE} {
		q := New(algo, m, 64, 1)
		runSolo(t, m, func(c tso.Context) {
			for i := uint64(1); i <= 10; i++ {
				q.Put(c, i)
			}
			got := stealAll(c, q, 20)
			if len(got) != 10 {
				t.Errorf("%s: stole %d tasks want 10", q.Name(), len(got))
				return
			}
			for i, v := range got {
				if v != uint64(i+1) {
					t.Errorf("%s: steal %d = %d want %d (FIFO)", q.Name(), i, v, i+1)
					return
				}
			}
		})
	}
}

func TestSequentialStealOrderIdempotentLIFOIsTop(t *testing.T) {
	m := newChaos(1, 4)
	q := NewIdempotentLIFO(m, 64)
	runSolo(t, m, func(c tso.Context) {
		for i := uint64(1); i <= 5; i++ {
			q.Put(c, i)
		}
		got := stealAll(c, q, 10)
		want := []uint64{5, 4, 3, 2, 1}
		if len(got) != len(want) {
			t.Fatalf("stole %d want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("steal %d = %d want %d (LIFO steals from the top)", i, got[i], want[i])
			}
		}
	})
}

func TestFFStealStopsWithinDelta(t *testing.T) {
	// Figure 3/4: the fence-free thief aborts once T - δ <= h, i.e. it can
	// drain a queue of n tasks only down to the last δ.
	const n, delta = 10, 3
	for _, mk := range []func(tso.Allocator) Deque{
		func(a tso.Allocator) Deque { return NewFFTHE(a, 64, delta) },
		func(a tso.Allocator) Deque { return NewFFCL(a, 64, delta) },
	} {
		m := newChaos(1, 5)
		q := mk(m)
		runSolo(t, m, func(c tso.Context) {
			for i := uint64(1); i <= n; i++ {
				q.Put(c, i)
			}
			got := stealAll(c, q, 2*n)
			if len(got) != n-delta {
				t.Errorf("%s: stole %d tasks want %d (δ=%d)", q.Name(), len(got), n-delta, delta)
				return
			}
			if _, st := q.Steal(c); st != Abort {
				t.Errorf("%s: steal within δ of the tail = %v want Abort", q.Name(), st)
			}
		})
	}
}

func TestEmptyQueueBehaviour(t *testing.T) {
	m := newChaos(1, 6)
	for _, q := range allAlgos(m, 16, 2) {
		q := q
		runSolo(t, m, func(c tso.Context) {
			if _, st := q.Take(c); st != Empty {
				t.Errorf("%s: take on fresh queue = %v want Empty", q.Name(), st)
			}
			// Fence-free steals may answer Abort instead of Empty (the
			// Abort condition subsumes Empty, §4); everything else must
			// say Empty.
			_, st := q.Steal(c)
			switch q.(type) {
			case *FFTHE, *FFCL:
				if st != Abort && st != Empty {
					t.Errorf("%s: steal on fresh queue = %v want Abort or Empty", q.Name(), st)
				}
			default:
				if st != Empty {
					t.Errorf("%s: steal on fresh queue = %v want Empty", q.Name(), st)
				}
			}
		})
	}
}

func TestPrefillMatchesPuts(t *testing.T) {
	// A prefilled queue must be indistinguishable from one filled by Put.
	for _, algo := range Algos {
		m1 := newChaos(1, 7)
		m2 := newChaos(1, 7)
		q1 := New(algo, m1, 32, 2)
		q2 := New(algo, m2, 32, 2)
		vals := []uint64{10, 20, 30, 40, 50}
		q1.(Prefiller).Prefill(m1, vals)
		runSolo(t, m2, func(c tso.Context) {
			for _, v := range vals {
				q2.Put(c, v)
			}
		})
		var takes1, takes2 []uint64
		runSolo(t, m1, func(c tso.Context) {
			for {
				v, st := q1.Take(c)
				if st != OK {
					return
				}
				takes1 = append(takes1, v)
			}
		})
		runSolo(t, m2, func(c tso.Context) {
			for {
				v, st := q2.Take(c)
				if st != OK {
					return
				}
				takes2 = append(takes2, v)
			}
		})
		if len(takes1) != len(vals) || len(takes2) != len(vals) {
			t.Fatalf("%v: drained %d / %d tasks want %d", algo, len(takes1), len(takes2), len(vals))
		}
		for i := range takes1 {
			if takes1[i] != takes2[i] {
				t.Fatalf("%v: prefilled take %d = %d, put take = %d", algo, i, takes1[i], takes2[i])
			}
		}
	}
}

func TestOverflowPanics(t *testing.T) {
	for _, algo := range Algos {
		m := newChaos(1, 8)
		q := New(algo, m, 4, 1)
		err := m.Run(func(c tso.Context) {
			for i := uint64(0); i < 10; i++ {
				q.Put(c, i+1)
			}
		})
		var pp *tso.ProgramPanic
		if !asProgramPanic(err, &pp) {
			t.Errorf("%v: overflow did not panic (err=%v)", algo, err)
		}
	}
}

func asProgramPanic(err error, pp **tso.ProgramPanic) bool {
	p, ok := err.(*tso.ProgramPanic)
	if ok {
		*pp = p
	}
	return ok
}

// TestQuickOwnerSemantics is the model-based property test: a random
// sequence of owner-side Put/Take operations must match an ideal stack for
// every algorithm, under any drain schedule.
func TestQuickOwnerSemantics(t *testing.T) {
	f := func(seed int64, algoRaw uint8) bool {
		algo := Algos[int(algoRaw)%len(Algos)]
		m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 3, DrainBuffer: seed%2 == 0, Seed: seed, DrainBias: 0.15})
		q := New(algo, m, 256, 2)
		r := rand.New(rand.NewSource(seed))
		ok := true
		err := m.Run(func(c tso.Context) {
			var model []uint64
			for step := 0; step < 300; step++ {
				if r.Intn(5) < 3 && len(model) < 200 {
					v := uint64(r.Intn(1 << 20))
					q.Put(c, v)
					model = append(model, v)
					continue
				}
				v, st := q.Take(c)
				if len(model) == 0 {
					if st != Empty {
						ok = false
						return
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if st != OK || v != want {
					ok = false
					return
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 70}); err != nil {
		t.Fatal(err)
	}
}

func TestDelta(t *testing.T) {
	cases := []struct{ s, x, want int }{
		{32, 0, 32},
		{32, 1, 16},
		{33, 1, 17},
		{33, 0, 33},
		{33, 32, 1},
		{33, 100, 1},
		{43, 1, 22},
		{1, 0, 1},
	}
	for _, tc := range cases {
		if got := Delta(tc.s, tc.x); got != tc.want {
			t.Errorf("Delta(%d,%d) = %d want %d", tc.s, tc.x, got, tc.want)
		}
	}
	if got := DefaultDelta(33); got != 17 {
		t.Errorf("DefaultDelta(33) = %d want 17", got)
	}
}

func TestDeltaPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Delta(0, 1) },
		func() { Delta(4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Delta arguments did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRegistry(t *testing.T) {
	m := newChaos(1, 9)
	for _, a := range Algos {
		q := New(a, m, 8, 1)
		if q.Name() != a.String() {
			t.Errorf("algo %v builds queue named %q", a, q.Name())
		}
	}
	if !AlgoFFTHE.FenceFree() || AlgoTHE.FenceFree() {
		t.Error("FenceFree misclassified")
	}
	if !AlgoIdempotentLIFO.Idempotent() || AlgoTHEP.Idempotent() {
		t.Error("Idempotent misclassified")
	}
	if !AlgoFFCL.UsesDelta() || AlgoChaseLev.UsesDelta() {
		t.Error("UsesDelta misclassified")
	}
}

func TestPackHelpers(t *testing.T) {
	if hi, lo := unpack32(pack32(0xDEAD, 0xBEEF)); hi != 0xDEAD || lo != 0xBEEF {
		t.Fatalf("pack32 roundtrip failed: %x %x", hi, lo)
	}
	h, s, g := unpackDE(packDE(12345, 678, 999))
	if h != 12345 || s != 678 || g != 999 {
		t.Fatalf("packDE roundtrip failed: %d %d %d", h, s, g)
	}
	if i64(u64(-5)) != -5 {
		t.Fatal("i64/u64 roundtrip failed")
	}
}
