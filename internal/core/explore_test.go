package core

import (
	"fmt"
	"testing"

	"repro/internal/tso"
)

// These tests use the machine's exhaustive schedule explorer on small
// configurations. Where the exploration completes, the assertion is
// *proved* over every interleaving of thread steps and store-buffer
// drains; where the tree exceeds the run cap, the test still checks every
// visited schedule and reports coverage.

// TestExploreFFCLAbortsAtRhoInEverySchedule: the §6 tightness violation,
// exhaustively — a lone thief on a one-task FF-CL queue aborts in every
// schedule, never observing a stealable task.
func TestExploreFFCLAbortsAtRhoInEverySchedule(t *testing.T) {
	var resA tso.Addr
	mk := func(m *tso.Machine) []func(tso.Context) {
		q := NewFFCL(m, 8, 1)
		q.Prefill(m, []uint64{42})
		resA = m.Alloc(1)
		return []func(tso.Context){
			func(c tso.Context) {
				_, st := q.Steal(c)
				c.Store(resA, uint64(st)+1)
			},
		}
	}
	out := func(m *tso.Machine) string { return Status(m.Peek(resA) - 1).String() }
	set, res := tso.ExploreOutcomes(tso.Config{Threads: 1, BufferSize: 2}, mk, out, tso.ExploreOptions{})
	if !res.Complete {
		t.Fatalf("incomplete after %d runs", res.Runs)
	}
	if len(set.Counts) != 1 || !set.Has("ABORT") {
		t.Fatalf("lone thief at ρ: outcomes %v want only ABORT", set.Counts)
	}
	t.Logf("proved over %d schedules", res.Runs)
}

// ffclDuel builds the minimal worker-vs-thief program: the worker performs
// `takes` Take calls on a queue prefilled with tasks 1..n (δ as given),
// the thief performs `steals` Steal calls; both publish what they removed
// as a base-10 digit string. The outcome string exposes double deliveries
// directly.
//
// Note an FF-CL double delivery needs the worker's *plain* (non-last-task)
// take hidden in the buffer: the last-task path goes through a CAS, which
// is sequentially consistent and can never be missed. The minimal
// violation therefore takes 3 tasks, two hidden plain takes (S=2), and two
// steals.
func ffclDuel(n, takes, steals, s, delta int) (func(m *tso.Machine) []func(tso.Context), func(m *tso.Machine) string, tso.Config) {
	var wA, tA tso.Addr
	mk := func(m *tso.Machine) []func(tso.Context) {
		q := NewFFCL(m, 8, delta)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(i) + 1
		}
		q.Prefill(m, vals)
		wA, tA = m.Alloc(1), m.Alloc(1)
		return []func(tso.Context){
			func(c tso.Context) { // worker: fixed number of takes
				got := uint64(0)
				for k := 0; k < takes; k++ {
					if v, st := q.Take(c); st == OK {
						got = got*10 + v
					}
				}
				c.Store(wA, got)
				c.Fence()
			},
			func(c tso.Context) { // thief: fixed number of steals
				got := uint64(0)
				for k := 0; k < steals; k++ {
					if v, st := q.Steal(c); st == OK {
						got = got*10 + v
					}
				}
				c.Store(tA, got)
				c.Fence()
			},
		}
	}
	out := func(m *tso.Machine) string {
		return fmt.Sprintf("w=%d t=%d", m.Peek(wA), m.Peek(tA))
	}
	return mk, out, tso.Config{Threads: 2, BufferSize: s}
}

// doubleDelivered reports whether an outcome string from ffclDuel shows
// some task delivered to both parties.
func doubleDelivered(outcome string) bool {
	var w, th uint64
	fmt.Sscanf(outcome, "w=%d t=%d", &w, &th)
	seen := map[uint64]bool{}
	for x := w; x > 0; x /= 10 {
		seen[x%10] = true
	}
	for x := th; x > 0; x /= 10 {
		if seen[x%10] {
			return true
		}
	}
	return false
}

// TestExploreFFCLSoundDeltaNeverDoubleDelivers: δ = S = 1 on a two-task
// queue, worker takes both, thief steals once. Every schedule delivers
// each task at most once and never loses one, and the thief does succeed
// in some schedules (the steal path is genuinely exercised).
func TestExploreFFCLSoundDeltaNeverDoubleDelivers(t *testing.T) {
	mk, out, cfg := ffclDuel(2, 2, 1, 1 /*S*/, 1 /*δ=S*/)
	set, res := tso.ExploreOutcomes(cfg, mk, out, tso.ExploreOptions{MaxRuns: exploreCap(t)})
	stole := false
	for o, cnt := range set.Counts {
		if doubleDelivered(o) {
			t.Fatalf("double delivery reachable with sound δ: %q ×%d", o, cnt)
		}
		var w, th uint64
		fmt.Sscanf(o, "w=%d t=%d", &w, &th)
		if th != 0 {
			stole = true
		}
		// No lost tasks: together they removed both.
		digits := 0
		for x := w; x > 0; x /= 10 {
			digits++
		}
		for x := th; x > 0; x /= 10 {
			digits++
		}
		if digits != 2 {
			t.Fatalf("schedule lost a task: %q", o)
		}
	}
	if !stole {
		t.Fatal("the thief never succeeded; scenario does not exercise stealing")
	}
	if !res.Complete {
		t.Logf("coverage capped at %d schedules (no violation found)", res.Runs)
	} else {
		t.Logf("proved over %d schedules, outcomes %v", res.Runs, set.Counts)
	}
}

// TestExploreFFCLUnsoundDeltaViolationReachable: S=2 with δ=1 — two plain
// takes hide in the buffer while the thief steals through them, so some
// schedule double-delivers task 2, and the explorer finds it quickly.
func TestExploreFFCLUnsoundDeltaViolationReachable(t *testing.T) {
	mk, out, cfg := ffclDuel(3, 2, 2, 2 /*S*/, 1 /*δ<S*/)
	found := ""
	set, res := tso.ExploreOutcomes(cfg, mk, out, tso.ExploreOptions{MaxRuns: 60_000})
	for o := range set.Counts {
		if doubleDelivered(o) {
			found = o
		}
	}
	if found == "" {
		t.Fatalf("no double delivery among %d schedules (complete=%v): %v", res.Runs, res.Complete, set.Counts)
	}
	t.Logf("violation witness %q found within %d schedules (complete=%v)", found, res.Runs, res.Complete)
}

// TestExploreTHELoneStealAlwaysSucceeds: the tight baseline, exhaustively —
// a lone THE thief at ρ steals the task in every schedule (contrast with
// the FF-CL abort above; this pair is the §6 argument in executable form).
func TestExploreTHELoneStealAlwaysSucceeds(t *testing.T) {
	var resA tso.Addr
	mk := func(m *tso.Machine) []func(tso.Context) {
		q := NewTHE(m, 8)
		q.Prefill(m, []uint64{42})
		resA = m.Alloc(1)
		return []func(tso.Context){
			func(c tso.Context) {
				v, st := q.Steal(c)
				c.Store(resA, uint64(st)*1000+v)
			},
		}
	}
	out := func(m *tso.Machine) string { return fmt.Sprintf("%d", m.Peek(resA)) }
	set, res := tso.ExploreOutcomes(tso.Config{Threads: 1, BufferSize: 2}, mk, out, tso.ExploreOptions{})
	if !res.Complete {
		t.Fatalf("incomplete after %d runs", res.Runs)
	}
	if len(set.Counts) != 1 || !set.Has("42") { // OK status = 0, value 42
		t.Fatalf("lone THE steal outcomes %v want only 42", set.Counts)
	}
}

// exploreCap bounds the sound-δ coverage sweep: generous by default,
// smaller under -short. The property is also proved complete on the
// smaller machine in the tso package's explorer tests.
func exploreCap(t *testing.T) int {
	if testing.Short() {
		return 20_000
	}
	return 150_000
}
