package core

import (
	"fmt"
	"testing"

	"repro/internal/tso"
)

// These tests use the machine's exhaustive schedule explorer on small
// configurations. Every assertion here is *proved* over every interleaving
// of thread steps and store-buffer drains: configurations whose decision
// trees used to exceed the run cap are driven through the pruned engine
// (tso.ExploreExhaustive), which accounts for the full tree while
// executing only the schedules canonical-state memoization cannot elide.

// TestExploreFFCLAbortsAtRhoInEverySchedule: the §6 tightness violation,
// exhaustively — a lone thief on a one-task FF-CL queue aborts in every
// schedule, never observing a stealable task.
func TestExploreFFCLAbortsAtRhoInEverySchedule(t *testing.T) {
	var resA tso.Addr
	mk := func(m *tso.Machine) []func(tso.Context) {
		q := NewFFCL(m, 8, 1)
		q.Prefill(m, []uint64{42})
		resA = m.Alloc(1)
		return []func(tso.Context){
			func(c tso.Context) {
				_, st := q.Steal(c)
				c.Store(resA, uint64(st)+1)
			},
		}
	}
	out := func(m *tso.Machine) string { return Status(m.Peek(resA) - 1).String() }
	set, res := tso.ExploreOutcomes(tso.Config{Threads: 1, BufferSize: 2}, mk, out, tso.ExploreOptions{})
	if !res.Complete {
		t.Fatalf("incomplete after %d runs", res.Runs)
	}
	if len(set.Counts) != 1 || !set.Has("ABORT") {
		t.Fatalf("lone thief at ρ: outcomes %v want only ABORT", set.Counts)
	}
	t.Logf("proved over %d schedules", res.Runs)
}

// ffclDuel builds the minimal worker-vs-thief program: the worker performs
// `takes` Take calls on a queue prefilled with tasks 1..n (δ as given),
// the thief performs `steals` Steal calls; both publish what they removed
// as a base-10 digit string. The outcome string exposes double deliveries
// directly.
//
// Note an FF-CL double delivery needs the worker's *plain* (non-last-task)
// take hidden in the buffer: the last-task path goes through a CAS, which
// is sequentially consistent and can never be missed. The minimal
// violation therefore takes 3 tasks, two hidden plain takes (S=2), and two
// steals.
func ffclDuel(n, takes, steals, s, delta int) (func(m *tso.Machine) []func(tso.Context), func(m *tso.Machine) string, tso.Config) {
	var wA, tA tso.Addr
	mk := func(m *tso.Machine) []func(tso.Context) {
		q := NewFFCL(m, 8, delta)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(i) + 1
		}
		q.Prefill(m, vals)
		wA, tA = m.Alloc(1), m.Alloc(1)
		return []func(tso.Context){
			func(c tso.Context) { // worker: fixed number of takes
				got := uint64(0)
				for k := 0; k < takes; k++ {
					if v, st := q.Take(c); st == OK {
						got = got*10 + v
					}
				}
				c.Store(wA, got)
				c.Fence()
			},
			func(c tso.Context) { // thief: fixed number of steals
				got := uint64(0)
				for k := 0; k < steals; k++ {
					if v, st := q.Steal(c); st == OK {
						got = got*10 + v
					}
				}
				c.Store(tA, got)
				c.Fence()
			},
		}
	}
	out := func(m *tso.Machine) string {
		return fmt.Sprintf("w=%d t=%d", m.Peek(wA), m.Peek(tA))
	}
	return mk, out, tso.Config{Threads: 2, BufferSize: s}
}

// doubleDelivered reports whether an outcome string from ffclDuel shows
// some task delivered to both parties.
func doubleDelivered(outcome string) bool {
	var w, th uint64
	fmt.Sscanf(outcome, "w=%d t=%d", &w, &th)
	seen := map[uint64]bool{}
	for x := w; x > 0; x /= 10 {
		seen[x%10] = true
	}
	for x := th; x > 0; x /= 10 {
		if seen[x%10] {
			return true
		}
	}
	return false
}

// noDuelViolations checks every outcome of an ffclDuel exploration: no
// task delivered to both parties, total removals within [minRemoved,
// maxRemoved] (exact when the duel is guaranteed to drain the queue; a
// range when the fixed take/steal counts can leave tasks behind), and —
// when requireSteal is set — the thief succeeds in at least one schedule,
// so the steal path is genuinely exercised.
func noDuelViolations(t *testing.T, set tso.OutcomeSet, minRemoved, maxRemoved int, requireSteal bool) {
	t.Helper()
	stole := false
	for o, cnt := range set.Counts {
		if doubleDelivered(o) {
			t.Fatalf("double delivery reachable with sound δ: %q ×%d", o, cnt)
		}
		var w, th uint64
		fmt.Sscanf(o, "w=%d t=%d", &w, &th)
		if th != 0 {
			stole = true
		}
		digits := 0
		for x := w; x > 0; x /= 10 {
			digits++
		}
		for x := th; x > 0; x /= 10 {
			digits++
		}
		if digits < minRemoved || digits > maxRemoved {
			t.Fatalf("schedule removed %d tasks, want %d..%d: %q", digits, minRemoved, maxRemoved, o)
		}
	}
	if requireSteal && !stole {
		t.Fatal("the thief never succeeded; scenario does not exercise stealing")
	}
}

// TestExploreFFCLSoundDeltaNeverDoubleDelivers: δ = S = 1 on a two-task
// queue, worker takes both, thief steals once. Every schedule delivers
// each task at most once and never loses one, and the thief does succeed
// in some schedules. The ~6.9M-schedule tree used to be far beyond a run
// cap; the pruned engine proves it completely in a couple thousand runs.
func TestExploreFFCLSoundDeltaNeverDoubleDelivers(t *testing.T) {
	mk, out, cfg := ffclDuel(2, 2, 1, 1 /*S*/, 1 /*δ=S*/)
	set, res := tso.ExploreExhaustive(cfg, mk, out,
		tso.ExhaustiveOptions{ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 20}, Prune: true})
	if !res.Complete {
		t.Fatalf("incomplete after %d executed runs (prune %+v)", res.Runs, res.Prune)
	}
	noDuelViolations(t, set, 2, 2, true)
	t.Logf("proved over %d schedules via %d executed runs, outcomes %v", set.Total(), res.Runs, set.Counts)
}

// TestExploreFFCLSoundDeltaLargerMachine is the same soundness proof on a
// machine the sequential explorer cannot touch: S=2, δ=2, three tasks,
// two takes against two steals — ~88M schedules, proved complete by the
// pruned engine in a few thousand executed runs.
func TestExploreFFCLSoundDeltaLargerMachine(t *testing.T) {
	mk, out, cfg := ffclDuel(3, 2, 2, 2 /*S*/, 2 /*δ=S*/)
	set, res := tso.ExploreExhaustive(cfg, mk, out,
		tso.ExhaustiveOptions{ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 20}, Prune: true})
	if !res.Complete {
		t.Fatalf("incomplete after %d executed runs (prune %+v)", res.Runs, res.Prune)
	}
	// Two takes plus up to two steals against three tasks: at least the
	// worker's two removals happen, and at most all three tasks go (a
	// fourth removal would have to be a duplicate).
	noDuelViolations(t, set, 2, 3, true)
	if set.Total() <= res.Runs {
		t.Fatalf("pruning accounted for nothing: %d schedules via %d runs", set.Total(), res.Runs)
	}
	t.Logf("proved over %d schedules via %d executed runs (%d states deduped)",
		set.Total(), res.Runs, res.Prune.StatesDeduped)
}

// TestExploreFFCLUnsoundDeltaViolationReachable: S=2 with δ=1 — two plain
// takes hide in the buffer while the thief steals through them, so some
// schedule double-delivers a task. The pruned engine explores the whole
// tree, so the witness count is exact, not a lucky sample.
func TestExploreFFCLUnsoundDeltaViolationReachable(t *testing.T) {
	mk, out, cfg := ffclDuel(3, 2, 2, 2 /*S*/, 1 /*δ<S*/)
	found := ""
	violating := 0
	set, res := tso.ExploreExhaustive(cfg, mk, out,
		tso.ExhaustiveOptions{ExploreOptions: tso.ExploreOptions{MaxRuns: 1 << 20}, Prune: true})
	if !res.Complete {
		t.Fatalf("incomplete after %d executed runs", res.Runs)
	}
	for o, cnt := range set.Counts {
		if doubleDelivered(o) {
			found = o
			violating += cnt
		}
	}
	if found == "" {
		t.Fatalf("no double delivery among %d schedules: %v", set.Total(), set.Counts)
	}
	t.Logf("violation witness %q; %d of %d schedules double-deliver", found, violating, set.Total())
}

// TestExploreTHELoneStealAlwaysSucceeds: the tight baseline, exhaustively —
// a lone THE thief at ρ steals the task in every schedule (contrast with
// the FF-CL abort above; this pair is the §6 argument in executable form).
func TestExploreTHELoneStealAlwaysSucceeds(t *testing.T) {
	var resA tso.Addr
	mk := func(m *tso.Machine) []func(tso.Context) {
		q := NewTHE(m, 8)
		q.Prefill(m, []uint64{42})
		resA = m.Alloc(1)
		return []func(tso.Context){
			func(c tso.Context) {
				v, st := q.Steal(c)
				c.Store(resA, uint64(st)*1000+v)
			},
		}
	}
	out := func(m *tso.Machine) string { return fmt.Sprintf("%d", m.Peek(resA)) }
	set, res := tso.ExploreOutcomes(tso.Config{Threads: 1, BufferSize: 2}, mk, out, tso.ExploreOptions{})
	if !res.Complete {
		t.Fatalf("incomplete after %d runs", res.Runs)
	}
	if len(set.Counts) != 1 || !set.Has("42") { // OK status = 0, value 42
		t.Fatalf("lone THE steal outcomes %v want only 42", set.Counts)
	}
}
