package core

import (
	"testing"

	"repro/internal/tso"
)

// batchAlgos are the queues that implement BatchStealer.
var batchAlgos = []struct {
	algo  Algo
	delta int
}{
	{AlgoChaseLev, 0},
	{AlgoFFCL, 2},
}

// TestBatchStealerAssertions pins which queues batch-steal: the
// Chase-Lev family does, the paper's THE family and the idempotent
// comparators fall back to single steal.
func TestBatchStealerAssertions(t *testing.T) {
	m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 4})
	for _, algo := range AllAlgos {
		q := New(algo, m, 16, 2)
		_, ok := q.(BatchStealer)
		want := algo == AlgoChaseLev || algo == AlgoFFCL
		if ok != want {
			t.Errorf("%v: BatchStealer = %v, want %v", algo, ok, want)
		}
	}
}

// runBatchSolo prefights a queue with n tasks and batch-steals once from
// a lone thread, returning the count and status.
func runBatchSolo(t *testing.T, algo Algo, n, delta, cap int) (got []uint64, st Status) {
	t.Helper()
	m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 4, Seed: 1})
	q := New(algo, m, 2*n+4, delta)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i) + 1
	}
	q.(Prefiller).Prefill(m, vals)
	out := make([]uint64, cap)
	var k int
	if err := m.Run(func(c tso.Context) {
		k, st = q.(BatchStealer).StealBatch(c, out)
	}); err != nil {
		t.Fatal(err)
	}
	return out[:k], st
}

// TestStealBatchHalf checks the sizing rule: at most half the visible
// queue (rounded up), clamped by the out buffer and, for FF-CL, by the
// δ-certified region; tasks arrive head-first.
func TestStealBatchHalf(t *testing.T) {
	cases := []struct {
		algo          Algo
		n, delta, cap int
		want          int
		wantSt        Status
	}{
		{AlgoChaseLev, 8, 0, 8, 4, OK}, // half of 8
		{AlgoChaseLev, 7, 0, 8, 4, OK}, // ceil(7/2)
		{AlgoChaseLev, 1, 0, 8, 1, OK}, // a lone task is stealable
		{AlgoChaseLev, 8, 0, 2, 2, OK}, // out buffer clamps
		{AlgoChaseLev, 0, 0, 4, 0, Empty},
		{AlgoFFCL, 8, 2, 8, 4, OK},    // certified region 6, half 4
		{AlgoFFCL, 8, 6, 8, 2, OK},    // certified region clamps to 2
		{AlgoFFCL, 2, 2, 8, 0, Abort}, // nothing certifiable
		{AlgoFFCL, 0, 2, 8, 0, Empty},
	}
	for _, tc := range cases {
		got, st := runBatchSolo(t, tc.algo, tc.n, tc.delta, tc.cap)
		if st != tc.wantSt || len(got) != tc.want {
			t.Errorf("%v n=%d delta=%d cap=%d: got %d tasks st=%v, want %d st=%v",
				tc.algo, tc.n, tc.delta, tc.cap, len(got), st, tc.want, tc.wantSt)
			continue
		}
		for i, v := range got {
			if v != uint64(i)+1 {
				t.Errorf("%v n=%d: out[%d] = %d, want %d (head-first order)", tc.algo, tc.n, i, v, i+1)
			}
		}
	}
}

// TestStealBatchSafety drains a prefilled queue with a taking worker
// racing a batch-stealing thief over many chaos schedules and checks
// exact-once delivery: no task lost, none delivered twice.
func TestStealBatchSafety(t *testing.T) {
	for _, ba := range batchAlgos {
		for seed := int64(1); seed <= 40; seed++ {
			const n = 24
			cfg := tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.25}
			m := tso.NewMachine(cfg)
			q := New(ba.algo, m, 2*n, ba.delta)
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64(i) + 1
			}
			q.(Prefiller).Prefill(m, vals)
			scratch := m.Alloc(8)

			counts := make([]int, n+1)
			workerDone := false
			loot := make([]uint64, 6)
			err := m.Run(
				func(c tso.Context) { // worker: take until empty
					defer func() { workerDone = true }()
					for {
						v, st := q.Take(c)
						if st != OK {
							return
						}
						counts[v]++
						c.Store(scratch, v)
					}
				},
				func(c tso.Context) { // thief: batch-steal until drained
					idle := 0
					for idle <= 3 {
						k, st := q.(BatchStealer).StealBatch(c, loot)
						switch st {
						case OK:
							for _, v := range loot[:k] {
								counts[v]++
							}
							idle = 0
						default:
							if workerDone {
								idle++
							}
						}
						c.Work(1)
					}
				},
			)
			if err != nil {
				t.Fatalf("%v seed %d: %v", ba.algo, seed, err)
			}
			for id := 1; id <= n; id++ {
				if counts[id] != 1 {
					t.Fatalf("%v seed %d: task %d delivered %d times", ba.algo, seed, id, counts[id])
				}
			}
		}
	}
}

// TestStealBatchRivalThieves races two batch thieves (no worker) over a
// prefilled queue: between them they must extract every task exactly
// once — a lost CAS mid-batch keeps prior claims and forfeits the rest.
func TestStealBatchRivalThieves(t *testing.T) {
	for _, ba := range batchAlgos {
		for seed := int64(1); seed <= 40; seed++ {
			const n = 24
			cfg := tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.25}
			m := tso.NewMachine(cfg)
			q := New(ba.algo, m, 2*n, ba.delta)
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64(i) + 1
			}
			q.(Prefiller).Prefill(m, vals)

			counts := make([]int, n+1)
			thief := func(c tso.Context) {
				loot := make([]uint64, 8)
				empties := 0
				for empties <= 3 {
					k, st := q.(BatchStealer).StealBatch(c, loot)
					switch st {
					case OK:
						for _, v := range loot[:k] {
							counts[v]++
						}
						empties = 0
					case Empty:
						empties++
					case Abort:
						// δ never certifies the last δ tasks with no
						// worker draining its buffer; the remainder is
						// checked below.
						return
					}
					c.Work(1)
				}
			}
			if err := m.Run(thief, thief); err != nil {
				t.Fatalf("%v seed %d: %v", ba.algo, seed, err)
			}
			for id := 1; id <= n; id++ {
				if counts[id] > 1 {
					t.Fatalf("%v seed %d: task %d delivered %d times", ba.algo, seed, id, counts[id])
				}
				// FF-CL thieves legitimately leave the uncertifiable tail.
				if ba.delta == 0 && counts[id] == 0 {
					t.Fatalf("%v seed %d: task %d lost", ba.algo, seed, id)
				}
			}
		}
	}
}
