package core

import (
	"fmt"

	"repro/internal/tso"
)

// pBottom is THEP's ⊥ value for the echo variable P (Figure 5 line 86).
// The worker only ever echoes 32-bit counter values, so a value with the
// top bit set can never collide with a real echo.
const pBottom = uint64(1) << 63

// THEP is the fence-free THE queue with worker echoes (Figure 5). It
// implements the *original* deterministic work-stealing specification:
// steals never abort. The thief keeps a heartbeat counter s in the top 32
// bits of H, incremented on every steal; when the bounded-reordering test
// cannot certify safety, the thief waits until the worker echoes s+1
// through P — at which point TSO guarantees any T value the thief reads
// was written after the worker observed the raised head — or until the
// queue is observably empty (T < H), which bounds the wait because workers
// drain their queues.
type THEP struct {
	theBase
	p     tso.Addr
	delta int64
}

// NewTHEP allocates a THEP queue. delta ≥ 1 as in FF-THE; DeltaInfinite
// yields the "always wait for the echo" variant of Figure 10.
func NewTHEP(a tso.Allocator, capacity, delta int) *THEP {
	if delta < 1 {
		panic(fmt.Sprintf("core: THEP needs delta >= 1, got %d", delta))
	}
	q := &THEP{theBase: newTHEBase(a, capacity), p: a.Alloc(1), delta: int64(delta)}
	q.packedHead = true
	return q
}

// Name implements Deque.
func (q *THEP) Name() string { return "THEP" }

// Delta returns the queue's δ parameter.
func (q *THEP) Delta() int { return int(q.delta) }

// Prefill implements Prefiller; it additionally resets P to ⊥.
func (q *THEP) Prefill(p Poker, vals []uint64) {
	q.theBase.Prefill(p, vals)
	p.Poke(q.p, pBottom)
}

// Put implements Deque.
func (q *THEP) Put(c tso.Context, v uint64) { q.put(c, v) }

// Take implements Deque (Figure 5 lines 89–107): fence-free, echoing the
// steal counter it observed back through P on the fast path.
func (q *THEP) Take(c tso.Context) (uint64, Status) {
	t := i64(c.Load(q.t)) - 1
	c.Store(q.t, u64(t))
	s, h := unpack32(c.Load(q.h))
	if t < int64(h) {
		q.lk.lock(c)
		c.Store(q.p, pBottom)
		_, h = unpack32(c.Load(q.h))
		if int64(h) >= t+1 {
			c.Store(q.t, u64(t+1))
			q.lk.unlock(c)
			return 0, Empty
		}
		q.lk.unlock(c)
	} else {
		// Echo: publish the heartbeat we observed. A thief waiting for
		// s+1 learns the worker has seen its raised head.
		c.Store(q.p, uint64(s))
	}
	return c.Load(q.slot(t)), OK
}

// Steal implements Deque (Figure 5 lines 108–130). It never returns Abort.
func (q *THEP) Steal(c tso.Context) (uint64, Status) {
	q.lk.lock(c)
	s, h := unpack32(c.Load(q.h))
	c.Store(q.h, pack32(s+1, h+1))
	c.Fence()
	var (
		ret uint64
		st  Status
	)
	if i64(c.Load(q.t))-q.delta <= int64(h) {
		// Uncertain: wait for the worker's echo, bailing out if the queue
		// becomes observably empty (T < H, i.e. T was H before we raised
		// it), which is what bounds the wait.
		for c.Load(q.p) != uint64(s+1) {
			if int64(h)+1 > i64(c.Load(q.t)) {
				c.Store(q.h, pack32(s+1, h))
				q.lk.unlock(c)
				return 0, Empty
			}
		}
		t := i64(c.Load(q.t))
		if int64(h)+1 <= t {
			ret = c.Load(q.slot(int64(h)))
			st = OK
		} else {
			c.Store(q.h, pack32(s+1, h))
			st = Empty
		}
	} else {
		ret = c.Load(q.slot(int64(h)))
		st = OK
	}
	q.lk.unlock(c)
	return ret, st
}
