package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/tso"
)

// This file is the Multiplicity spec's mutation self-test, mirroring
// broken_test.go: two deliberately sabotaged WS-MULT variants whose
// planted bugs must surface as the spec's two failure classes — "lost"
// for a dropped publish store and "dup>k" for a dropped head advance.
// If the Multiplicity checker ever stops flagging either mutant, the
// checker is broken, not the queues.

// brokenWSMultLossy is WS-MULT with Put's tail store dropped. In this
// family the tail advance IS the task's announcement to extractors —
// without it the task sits initialized but invisible below an
// unmoving tail, and a drained run must report it lost.
type brokenWSMultLossy struct {
	head, tail, tasks, ann tso.Addr
	w                      int64
	nann                   int
}

func newBrokenWSMultLossy(a tso.Allocator, capacity, nann int) *brokenWSMultLossy {
	return &brokenWSMultLossy{
		head: a.Alloc(1), tail: a.Alloc(1), tasks: a.Alloc(capacity),
		ann: a.Alloc(nann), w: int64(capacity), nann: nann,
	}
}

func (q *brokenWSMultLossy) slot(i int64) tso.Addr {
	i %= q.w
	if i < 0 {
		i += q.w
	}
	return q.tasks + tso.Addr(i)
}

func (q *brokenWSMultLossy) Name() string { return "broken-WS-MULT-lossy" }

func (q *brokenWSMultLossy) Put(c tso.Context, v uint64) {
	t := int64(c.Load(q.tail))
	c.Store(q.slot(t), v)
	// the planted bug: the publishing store c.Store(q.tail, t+1) is gone
}

func (q *brokenWSMultLossy) extract(c tso.Context) (uint64, core.Status) {
	h := int64(c.Load(q.head))
	for i := 0; i < q.nann; i++ {
		if a := int64(c.Load(q.ann + tso.Addr(i))); a > h {
			h = a
		}
	}
	t := int64(c.Load(q.tail))
	if h >= t {
		return 0, core.Empty
	}
	c.Store(q.ann+tso.Addr(c.ThreadID()), uint64(h+1))
	v := c.Load(q.slot(h))
	c.Store(q.head, uint64(h+1))
	return v, core.OK
}

func (q *brokenWSMultLossy) Take(c tso.Context) (uint64, core.Status)  { return q.extract(c) }
func (q *brokenWSMultLossy) Steal(c tso.Context) (uint64, core.Status) { return q.extract(c) }

func (q *brokenWSMultLossy) Prefill(p core.Poker, vals []uint64) {
	for i, v := range vals {
		p.Poke(q.slot(int64(i)), v)
	}
	p.Poke(q.head, 0)
	p.Poke(q.tail, uint64(len(vals)))
}

// brokenWSMultStuck is WS-MULT-R with extract's head store dropped:
// nothing ever advances the head, so every extraction redelivers the
// task at the initial index and duplication is unbounded — the
// Multiplicity budget must be exceeded on every schedule.
type brokenWSMultStuck struct {
	head, tail, tasks tso.Addr
	w                 int64
}

func newBrokenWSMultStuck(a tso.Allocator, capacity int) *brokenWSMultStuck {
	return &brokenWSMultStuck{head: a.Alloc(1), tail: a.Alloc(1), tasks: a.Alloc(capacity), w: int64(capacity)}
}

func (q *brokenWSMultStuck) slot(i int64) tso.Addr {
	i %= q.w
	if i < 0 {
		i += q.w
	}
	return q.tasks + tso.Addr(i)
}

func (q *brokenWSMultStuck) Name() string { return "broken-WS-MULT-stuck" }

func (q *brokenWSMultStuck) Put(c tso.Context, v uint64) {
	t := int64(c.Load(q.tail))
	c.Store(q.slot(t), v)
	c.Store(q.tail, uint64(t+1))
}

func (q *brokenWSMultStuck) extract(c tso.Context) (uint64, core.Status) {
	h := int64(c.Load(q.head))
	t := int64(c.Load(q.tail))
	if h >= t {
		return 0, core.Empty
	}
	v := c.Load(q.slot(h))
	// the planted bug: the claiming store c.Store(q.head, h+1) is gone
	return v, core.OK
}

func (q *brokenWSMultStuck) Take(c tso.Context) (uint64, core.Status)  { return q.extract(c) }
func (q *brokenWSMultStuck) Steal(c tso.Context) (uint64, core.Status) { return q.extract(c) }

func (q *brokenWSMultStuck) Prefill(p core.Poker, vals []uint64) {
	for i, v := range vals {
		p.Poke(q.slot(int64(i)), v)
	}
	p.Poke(q.head, 0)
	p.Poke(q.tail, uint64(len(vals)))
}

// lossyScenario puts one task through the lossy mutant over a one-task
// prefill and drains, with a single racing steal attempt. The thief is
// thread 0 so the planted bug sits on an early DFS path.
func lossyScenario() oracle.Scenario {
	return oracle.Scenario{
		Name:   "broken-WS-MULT lossy mutant",
		Config: tso.Config{Threads: 2, BufferSize: 2},
		Build: func(m *tso.Machine) ([]func(tso.Context), *oracle.History) {
			h := oracle.NewHistory()
			q := oracle.Instrument(newBrokenWSMultLossy(m, 8, 2), h)
			q.Prefill(m, []uint64{1})
			h.ExpectDrained()
			worker := func(c tso.Context) {
				q.Put(c, 2)
				for {
					if _, st := q.Take(c); st == core.Empty {
						break
					}
				}
			}
			thief := func(c tso.Context) {
				q.Steal(c)
			}
			return []func(tso.Context){thief, worker}, h
		},
	}
}

// stuckScenario runs fixed extraction budgets — two takes, two steals —
// over a two-task prefill with NO drain loop: the stuck head never
// reports Empty, so a drain would spin forever. Four extractions of the
// same index must breach the k=2 budget for task 1 on every schedule.
func stuckScenario() oracle.Scenario {
	return oracle.Scenario{
		Name:   "broken-WS-MULT stuck mutant",
		Config: tso.Config{Threads: 2, BufferSize: 2},
		Build: func(m *tso.Machine) ([]func(tso.Context), *oracle.History) {
			h := oracle.NewHistory()
			q := oracle.Instrument(newBrokenWSMultStuck(m, 8), h)
			q.Prefill(m, []uint64{1, 2})
			worker := func(c tso.Context) {
				q.Take(c)
				q.Take(c)
			}
			thief := func(c tso.Context) {
				q.Steal(c)
				q.Steal(c)
			}
			return []func(tso.Context){thief, worker}, h
		},
	}
}

// runMutant explores the scenario exhaustively under spec and asserts a
// violation whose verdict contains marker, then replays the extracted
// counterexample.
func runMutant(t *testing.T, sc oracle.Scenario, spec oracle.Spec, marker string) {
	t.Helper()
	rep := oracle.Run(sc, oracle.RunOptions{Spec: spec, Prune: true, Counterexample: true})
	if !rep.Complete {
		t.Fatalf("exploration incomplete after %d executed schedules", rep.Executed)
	}
	if rep.Violating == 0 {
		t.Fatalf("%s missed the planted bug: %v", spec.Name(), rep.Outcomes)
	}
	found := false
	for o := range rep.Outcomes {
		if strings.Contains(o, marker) {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations found but none %q: %v", marker, rep.Outcomes)
	}
	ce := rep.Counterexample
	if ce == nil {
		t.Fatal("no counterexample extracted")
	}
	viols, _, err := oracle.Replay(sc, spec, ce.Choices)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if got := oracle.RenderVerdict(viols); got != ce.Outcome {
		t.Fatalf("replay verdict %q != counterexample %q", got, ce.Outcome)
	}
}

// TestMultiplicityCatchesLostPublish: dropping Put's tail store must
// surface as a lost-task verdict under the Multiplicity spec.
func TestMultiplicityCatchesLostPublish(t *testing.T) {
	runMutant(t, lossyScenario(), oracle.Multiplicity{K: 2}, "lost")
}

// TestMultiplicityCatchesUnboundedDuplication: dropping extract's head
// store must surface as a dup-budget verdict under the Multiplicity
// spec.
func TestMultiplicityCatchesUnboundedDuplication(t *testing.T) {
	runMutant(t, stuckScenario(), oracle.Multiplicity{K: 2}, "dup>2")
}

// TestMultiplicityAcceptsRealWSMult is the lossy mutation test's
// control: the same put-and-drain duel over the real WS-MULT stays
// clean under the same spec, so the lost verdicts are attributable to
// the dropped publish store alone.
func TestMultiplicityAcceptsRealWSMult(t *testing.T) {
	p := oracle.Program{Algo: core.AlgoWSMult, S: 2, Delta: 1, Prefill: 1, WorkerOps: "P", Thieves: []int{1}, Drain: true}
	rep := oracle.Run(p.Scenario(), oracle.RunOptions{Spec: oracle.Multiplicity{K: 2}, Prune: true, SleepSets: true, Counterexample: true})
	if !rep.Complete {
		t.Fatalf("exploration incomplete after %d executed schedules", rep.Executed)
	}
	if rep.Violating != 0 {
		t.Fatalf("real WS-MULT flagged: %v (counterexample: %+v)", rep.Outcomes, rep.Counterexample)
	}
}

// TestIdempotentAcceptsRealWSMultRelaxed is the stuck mutation test's
// control: the same fixed-budget extraction race over the real
// announce-free variant is clean under its own (at-least-once)
// contract — the real head advance keeps redelivery finite and the
// run loses nothing.
func TestIdempotentAcceptsRealWSMultRelaxed(t *testing.T) {
	p := oracle.Program{Algo: core.AlgoWSMultRelaxed, S: 2, Delta: 1, Prefill: 2, WorkerOps: "TT", Thieves: []int{2}}
	rep := oracle.Run(p.Scenario(), oracle.RunOptions{Spec: oracle.Idempotent{}, Prune: true, SleepSets: true, Counterexample: true})
	if !rep.Complete {
		t.Fatalf("exploration incomplete after %d executed schedules", rep.Executed)
	}
	if rep.Violating != 0 {
		t.Fatalf("real WS-MULT-R flagged: %v (counterexample: %+v)", rep.Outcomes, rep.Counterexample)
	}
}
