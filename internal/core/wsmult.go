package core

import (
	"fmt"

	"repro/internal/tso"
)

// This file implements the fully read/write work-stealing queues in the
// style of Castañeda & Piña ("Fully Read/Write Fence-Free Work-Stealing
// with Multiplicity", arXiv:2008.04424): no CAS anywhere — not even in
// Steal — and no fence, at the price of the *multiplicity* relaxation:
// a task may be extracted more than once, but never lost. This goes one
// step past the source paper's contribution (which elides the fence
// from take() but keeps the thief's CAS) and two past the idempotent
// comparators (whose Steal still CASes the anchor).
//
// Both variants are single-ended FIFO queues over plain loads and
// stores: the owner Puts at the tail; owner and thieves alike extract
// from the head. Head and tail are separate words, so the only racing
// writes are the competing head advances of concurrent extractors —
// which is exactly where multiplicity comes from.
//
// The no-loss invariant is write-local: the only instruction that
// writes head is the final store of an extraction, and an extractor
// that stores head = h+1 has itself returned task h. By induction any
// value h readable from head certifies that every task below h was
// returned by someone, so skipping to h never skips an unextracted
// task. TSO's per-thread FIFO drain order supplies phantom-freedom: the
// owner stores tasks[t] before tail = t+1, so any extractor that reads
// t' from the tail word finds every slot below t' already initialized.
//
// What differs between the variants is how far duplication can go:
//
//   - WSMult bounds it. Each extractor owns an announce slot; an
//     extraction first *collects* h = max(head, all announce slots),
//     then *announces* h+1 before reading the task. A thread always
//     sees its own announce store (TSO forwards a thread's own buffered
//     stores), so its successive claims are strictly increasing and it
//     can extract any given index at most once: per-task multiplicity
//     is bounded by the number of extracting threads, on every TSO[S]
//     schedule, for every S. The bound is tight — the announce stores
//     themselves sit in store buffers, so n extractors whose announces
//     are all still buffered can each claim the same index once.
//   - WSMultRelaxed drops the announce slots and reads head alone. A
//     slow extractor's stale head store, draining after faster
//     extractors have moved on, rewinds the memory head and re-opens
//     already-extracted indices; the rewind can recur, so no fixed
//     per-task bound exists (internal/oracle's boundary tests pin the
//     smallest schedules that exceed k=2).
//
// Like the idempotent comparators, these queues only suit clients that
// tolerate re-execution (Algo.ExactlyOnce() is false): the scheduler
// allows Spawn-style task graphs and internal/load's fork/join serving
// path rejects them.

// wsMultDefaultExtractors sizes the announce array when the allocator
// does not reveal the machine's thread count.
const wsMultDefaultExtractors = 8

// wsMultBase is the memory layout shared by both variants: head, tail,
// and a cyclic task array with non-wrapping indices (Chase-Lev style).
type wsMultBase struct {
	head, tail tso.Addr
	tasks      tso.Addr
	w          int64
}

func newWSMultBase(a tso.Allocator, capacity int) wsMultBase {
	if capacity < 1 {
		panic(fmt.Sprintf("core: queue capacity %d < 1", capacity))
	}
	return wsMultBase{
		head:  a.Alloc(1),
		tail:  a.Alloc(1),
		tasks: a.Alloc(capacity),
		w:     int64(capacity),
	}
}

func (q *wsMultBase) slot(i int64) tso.Addr {
	i %= q.w
	if i < 0 {
		i += q.w
	}
	return q.tasks + tso.Addr(i)
}

// put enqueues at the tail with two plain stores. TSO drains them in
// order, so the tail advance publishes an already-visible task.
func (q *wsMultBase) put(c tso.Context, v uint64) {
	t := i64(c.Load(q.tail))
	if t-i64(c.Load(q.head)) >= q.w {
		panic(fmt.Sprintf("core: WS-MULT overflow (capacity %d)", q.w))
	}
	c.Store(q.slot(t), v)
	c.Store(q.tail, u64(t+1))
}

// prefill implements Prefiller for both variants.
func (q *wsMultBase) prefill(p Poker, vals []uint64) {
	if int64(len(vals)) > q.w {
		panic("core: prefill exceeds capacity")
	}
	for i, v := range vals {
		p.Poke(q.slot(int64(i)), v)
	}
	p.Poke(q.head, 0)
	p.Poke(q.tail, u64(int64(len(vals))))
}

// WSMult is the announce/collect variant: fully read/write with
// per-task multiplicity bounded by the number of extracting threads.
type WSMult struct {
	wsMultBase
	ann  tso.Addr
	nann int
}

// NewWSMult allocates a bounded-multiplicity queue. The announce array
// has one slot per machine thread when a reveals its configuration
// (both tso engines do); otherwise wsMultDefaultExtractors slots.
func NewWSMult(a tso.Allocator, capacity int) *WSMult {
	n := wsMultDefaultExtractors
	if m, ok := a.(interface{ Config() tso.Config }); ok {
		if t := m.Config().Threads; t > 0 {
			n = t
		}
	}
	return &WSMult{
		wsMultBase: newWSMultBase(a, capacity),
		ann:        a.Alloc(n),
		nann:       n,
	}
}

// Name implements Deque.
func (q *WSMult) Name() string { return "WS-MULT" }

// Put implements Deque.
func (q *WSMult) Put(c tso.Context, v uint64) { q.put(c, v) }

// collect reads head and every announce slot and returns the maximum:
// the lowest index no extractor is known to have claimed. Reading the
// caller's own slot through c forwards its own buffered announce, which
// is what makes a thread's claims strictly increasing.
func (q *WSMult) collect(c tso.Context) int64 {
	h := i64(c.Load(q.head))
	for i := 0; i < q.nann; i++ {
		if a := i64(c.Load(q.ann + tso.Addr(i))); a > h {
			h = a
		}
	}
	return h
}

// extract is the shared owner/thief removal: collect, claim by
// announcing h+1, read the task, then advance head — all plain
// loads and stores.
func (q *WSMult) extract(c tso.Context) (uint64, Status) {
	h := q.collect(c)
	t := i64(c.Load(q.tail))
	if h >= t {
		return 0, Empty
	}
	tid := c.ThreadID()
	if tid >= q.nann {
		panic(fmt.Sprintf("core: WS-MULT announce array has %d slots, thread %d extracting", q.nann, tid))
	}
	c.Store(q.ann+tso.Addr(tid), u64(h+1))
	v := c.Load(q.slot(h))
	c.Store(q.head, u64(h+1))
	return v, OK
}

// Take implements Deque.
func (q *WSMult) Take(c tso.Context) (uint64, Status) { return q.extract(c) }

// Steal implements Deque: identical to Take — there is no owner
// privilege and no CAS arbitration, only the announce protocol.
func (q *WSMult) Steal(c tso.Context) (uint64, Status) { return q.extract(c) }

// Prefill implements Prefiller.
func (q *WSMult) Prefill(p Poker, vals []uint64) { q.prefill(p, vals) }

// MetaSize implements MetaSizer. The size must be computed against the
// collected maximum, not the head word alone: a stale head store
// landing late can leave memory head below an announce forever, and a
// size derived from it would keep the scheduler's termination detector
// waiting on tasks every extractor already considers claimed.
func (q *WSMult) MetaSize(peek func(tso.Addr) uint64) int64 {
	h := i64(peek(q.head))
	for i := 0; i < q.nann; i++ {
		if a := i64(peek(q.ann + tso.Addr(i))); a > h {
			h = a
		}
	}
	return i64(peek(q.tail)) - h
}

// WSMultRelaxed is the announce-free variant: the same fully read/write
// queue with unbounded multiplicity. Extractions race on the head word
// alone, so a stale head store draining late re-opens already-extracted
// indices and duplication can cascade without bound.
type WSMultRelaxed struct {
	wsMultBase
}

// NewWSMultRelaxed allocates an unbounded-multiplicity queue.
func NewWSMultRelaxed(a tso.Allocator, capacity int) *WSMultRelaxed {
	return &WSMultRelaxed{newWSMultBase(a, capacity)}
}

// Name implements Deque.
func (q *WSMultRelaxed) Name() string { return "WS-MULT-R" }

// Put implements Deque.
func (q *WSMultRelaxed) Put(c tso.Context, v uint64) { q.put(c, v) }

// extract removes from the head with plain operations only. The head
// re-advance after a stale rewind is what lets the scheduler's
// termination detector converge: re-extractions push the memory head
// back up to the tail (at the price of duplicate deliveries).
func (q *WSMultRelaxed) extract(c tso.Context) (uint64, Status) {
	h := i64(c.Load(q.head))
	t := i64(c.Load(q.tail))
	if h >= t {
		return 0, Empty
	}
	v := c.Load(q.slot(h))
	c.Store(q.head, u64(h+1))
	return v, OK
}

// Take implements Deque.
func (q *WSMultRelaxed) Take(c tso.Context) (uint64, Status) { return q.extract(c) }

// Steal implements Deque.
func (q *WSMultRelaxed) Steal(c tso.Context) (uint64, Status) { return q.extract(c) }

// Prefill implements Prefiller.
func (q *WSMultRelaxed) Prefill(p Poker, vals []uint64) { q.prefill(p, vals) }

// MetaSize implements MetaSizer (T - H).
func (q *WSMultRelaxed) MetaSize(peek func(tso.Addr) uint64) int64 {
	return i64(peek(q.tail)) - i64(peek(q.head))
}
