package core

import "repro/internal/tso"

// MetaSizer exposes a queue's size as read directly from simulated memory,
// bypassing store buffers. This is *harness* instrumentation, not part of
// the protocols: the scheduler's termination detector polls it (together
// with worker idleness) the way a real runtime would use its own
// out-of-band bookkeeping. The value can lag the owner's view while its
// stores are buffered, which is always in the conservative (non-empty)
// direction once all workers are idle.
type MetaSizer interface {
	MetaSize(peek func(tso.Addr) uint64) int64
}

// MetaSize implements MetaSizer for THE and FF-THE (T - H).
func (q *theBase) MetaSize(peek func(tso.Addr) uint64) int64 {
	t := i64(peek(q.t))
	h := i64(peek(q.h))
	if q.packedHead {
		_, lo := unpack32(u64(h))
		h = int64(lo)
	}
	return t - h
}

// MetaSize implements MetaSizer for ChaseLev and FFCL (T - H).
func (q *clBase) MetaSize(peek func(tso.Addr) uint64) int64 {
	return i64(peek(q.t)) - i64(peek(q.h))
}

// MetaSize implements MetaSizer for IdempotentLIFO (the size half of the
// anchor).
func (q *IdempotentLIFO) MetaSize(peek func(tso.Addr) uint64) int64 {
	t, _ := unpack32(peek(q.anchor))
	return int64(t)
}

// MetaSize implements MetaSizer for IdempotentDE (the size field of the
// anchor).
func (q *IdempotentDE) MetaSize(peek func(tso.Addr) uint64) int64 {
	_, s, _ := unpackDE(peek(q.anchor))
	return int64(s)
}
