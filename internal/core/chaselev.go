package core

import (
	"fmt"

	"repro/internal/tso"
)

// clBase holds the memory layout shared by ChaseLev and FFCL: head and
// tail indices and a cyclic task array with non-wrapping indices. Unlike
// the THE family there is no lock — conflicts are decided by CAS on H.
type clBase struct {
	h, t  tso.Addr
	tasks tso.Addr
	w     int64
}

func newCLBase(a tso.Allocator, capacity int) clBase {
	if capacity < 1 {
		panic(fmt.Sprintf("core: queue capacity %d < 1", capacity))
	}
	return clBase{
		h:     a.Alloc(1),
		t:     a.Alloc(1),
		tasks: a.Alloc(capacity),
		w:     int64(capacity),
	}
}

func (q *clBase) slot(i int64) tso.Addr {
	i %= q.w
	if i < 0 {
		i += q.w
	}
	return q.tasks + tso.Addr(i)
}

func (q *clBase) put(c tso.Context, v uint64) {
	t := i64(c.Load(q.t))
	if t-i64(c.Load(q.h)) >= q.w {
		panic(fmt.Sprintf("core: queue overflow (capacity %d); the simulated Chase-Lev queues do not grow (the native library's does)", q.w))
	}
	c.Store(q.slot(t), v)
	c.Store(q.t, u64(t+1))
}

// take is Figure 2c's take(); withFence selects between Chase-Lev (true)
// and FF-CL (false, Figure 4).
func (q *clBase) take(c tso.Context, withFence bool) (uint64, Status) {
	t := i64(c.Load(q.t)) - 1
	c.Store(q.t, u64(t))
	if withFence {
		c.Fence()
	}
	h := i64(c.Load(q.h))
	if t > h {
		return c.Load(q.slot(t)), OK
	}
	if t < h {
		// Queue was empty, or a thief concurrently advanced H past us:
		// restore T and give up.
		c.Store(q.t, u64(h))
		return 0, Empty
	}
	// t == h: contend for the last task with a CAS, like a thief would.
	c.Store(q.t, u64(h+1))
	if _, ok := c.CAS(q.h, u64(h), u64(h+1)); !ok {
		return 0, Empty
	}
	return c.Load(q.slot(t)), OK
}

// Prefill implements Prefiller.
func (q *clBase) Prefill(p Poker, vals []uint64) {
	if int64(len(vals)) > q.w {
		panic("core: prefill exceeds capacity")
	}
	for i, v := range vals {
		p.Poke(q.slot(int64(i)), v)
	}
	p.Poke(q.h, 0)
	p.Poke(q.t, u64(int64(len(vals))))
}

// ChaseLev is the Chase-Lev work-stealing deque (Figure 2c): the
// non-blocking fenced baseline. Thieves race each other and the worker
// with a CAS on H.
type ChaseLev struct {
	clBase
}

// NewChaseLev allocates a Chase-Lev queue with the given capacity.
func NewChaseLev(a tso.Allocator, capacity int) *ChaseLev {
	return &ChaseLev{newCLBase(a, capacity)}
}

// Name implements Deque.
func (q *ChaseLev) Name() string { return "Chase-Lev" }

// Put implements Deque.
func (q *ChaseLev) Put(c tso.Context, v uint64) { q.put(c, v) }

// Take implements Deque (with the worker fence).
func (q *ChaseLev) Take(c tso.Context) (uint64, Status) { return q.take(c, true) }

// Steal implements Deque (Figure 2c lines 44–55).
func (q *ChaseLev) Steal(c tso.Context) (uint64, Status) {
	for {
		h := i64(c.Load(q.h))
		t := i64(c.Load(q.t))
		if h >= t {
			return 0, Empty
		}
		task := c.Load(q.slot(h))
		if _, ok := c.CAS(q.h, u64(h), u64(h+1)); !ok {
			continue // lost a race; retry from scratch
		}
		return task, OK
	}
}

// FFCL is the fence-free Chase-Lev queue of Figure 4. The worker's fence
// is removed; a thief steals task h only when T - δ > h, which certifies
// the worker's store T := h (its attempt to claim the last task) cannot be
// hiding in the store buffer — so if the worker does contend for task h it
// will do so through the CAS.
type FFCL struct {
	clBase
	delta int64
}

// NewFFCL allocates an FF-CL queue. delta must be ≥ 1.
func NewFFCL(a tso.Allocator, capacity, delta int) *FFCL {
	if delta < 1 {
		panic(fmt.Sprintf("core: FF-CL needs delta >= 1, got %d", delta))
	}
	return &FFCL{clBase: newCLBase(a, capacity), delta: int64(delta)}
}

// Name implements Deque.
func (q *FFCL) Name() string { return "FF-CL" }

// Delta returns the queue's δ parameter.
func (q *FFCL) Delta() int { return int(q.delta) }

// Put implements Deque.
func (q *FFCL) Put(c tso.Context, v uint64) { q.put(c, v) }

// Take implements Deque: Chase-Lev's take() without the memory fence.
func (q *FFCL) Take(c tso.Context) (uint64, Status) { return q.take(c, false) }

// Steal implements Deque (Figure 4 lines 70–83).
func (q *FFCL) Steal(c tso.Context) (uint64, Status) {
	for {
		h := i64(c.Load(q.h))
		t := i64(c.Load(q.t))
		if h >= t {
			return 0, Empty
		}
		if t-q.delta <= h {
			return 0, Abort
		}
		task := c.Load(q.slot(h))
		if _, ok := c.CAS(q.h, u64(h), u64(h+1)); !ok {
			continue
		}
		return task, OK
	}
}
