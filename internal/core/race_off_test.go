//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in. The
// bounded duel proofs skip themselves under -race: the exploration is
// single-purpose wall-clock work (hundreds of thousands of executed
// runs) that the detector slows ~30×, and the concurrency it would
// check is the frontier machinery already race-tested in internal/tso.
const raceEnabled = false
