package core

import (
	"fmt"

	"repro/internal/tso"
)

// This file implements Michael, Vechev & Saraswat's idempotent work
// stealing queues (PPoPP 2009), the §8.2 comparators. They avoid the
// worker's fence by weakening exactly-once removal to at-least-once: a
// task may be handed out twice when a worker's anchor update is still in
// its store buffer while a thief steals. Clients must tolerate duplicate
// execution (the paper's graph workloads do by construction).
//
// Both queues keep their entire synchronization state in one 64-bit
// "anchor" word so the owner can update it with a single plain store:
//
//   - IdempotentLIFO:  anchor = <size:32, tag:32>; worker and thieves both
//     remove from the top of the stack.
//   - IdempotentDE:    anchor = <head:24, size:16, tag:24>; the worker puts
//     and takes at the tail, thieves steal from the head, and the last
//     task is reachable from both ends.
//
// The tag increments on every put and is compared by the thieves' CAS,
// preventing ABA on reused slots.

// IdempotentLIFO is the idempotent LIFO (stack) queue.
type IdempotentLIFO struct {
	anchor tso.Addr
	tasks  tso.Addr
	w      int64
}

// NewIdempotentLIFO allocates an idempotent LIFO queue.
func NewIdempotentLIFO(a tso.Allocator, capacity int) *IdempotentLIFO {
	if capacity < 1 || int64(capacity) >= 1<<31 {
		panic(fmt.Sprintf("core: bad idempotent LIFO capacity %d", capacity))
	}
	return &IdempotentLIFO{anchor: a.Alloc(1), tasks: a.Alloc(capacity), w: int64(capacity)}
}

// Name implements Deque.
func (q *IdempotentLIFO) Name() string { return "Idempotent LIFO" }

// Put implements Deque: write the task, then publish <size+1, tag+1> with
// one plain store (no fence; FIFO drain order makes the task visible
// before the anchor).
func (q *IdempotentLIFO) Put(c tso.Context, v uint64) {
	t, g := unpack32(c.Load(q.anchor))
	if int64(t) >= q.w {
		panic(fmt.Sprintf("core: idempotent LIFO overflow (capacity %d)", q.w))
	}
	c.Store(q.tasks+tso.Addr(t), v)
	c.Store(q.anchor, pack32(uint32(int64(t)+1), g+1))
}

// Take implements Deque: pop the top with a plain anchor store. No fence —
// this is what makes the queue idempotent rather than exact.
func (q *IdempotentLIFO) Take(c tso.Context) (uint64, Status) {
	t, g := unpack32(c.Load(q.anchor))
	if t == 0 {
		return 0, Empty
	}
	v := c.Load(q.tasks + tso.Addr(t-1))
	c.Store(q.anchor, pack32(t-1, g))
	return v, OK
}

// Steal implements Deque: thieves also pop the top, racing through a CAS
// on the anchor. A take() buffered in the worker's store buffer can let a
// thief win the same task — the tolerated duplicate.
func (q *IdempotentLIFO) Steal(c tso.Context) (uint64, Status) {
	for {
		old := c.Load(q.anchor)
		t, g := unpack32(old)
		if t == 0 {
			return 0, Empty
		}
		v := c.Load(q.tasks + tso.Addr(t-1))
		if _, ok := c.CAS(q.anchor, old, pack32(t-1, g)); !ok {
			continue
		}
		return v, OK
	}
}

// Prefill implements Prefiller.
func (q *IdempotentLIFO) Prefill(p Poker, vals []uint64) {
	if int64(len(vals)) > q.w {
		panic("core: prefill exceeds capacity")
	}
	for i, v := range vals {
		p.Poke(q.tasks+tso.Addr(i), v)
	}
	p.Poke(q.anchor, pack32(uint32(len(vals)), uint32(len(vals))))
}

// Anchor field widths for IdempotentDE.
const (
	deHeadBits = 24
	deSizeBits = 16
	deTagBits  = 24
	deHeadMax  = 1 << deHeadBits
	deSizeMax  = 1 << deSizeBits
	deTagMax   = 1 << deTagBits
)

func packDE(h, s, g uint64) uint64 {
	return h<<(deSizeBits+deTagBits) | s<<deTagBits | g
}

func unpackDE(v uint64) (h, s, g uint64) {
	return v >> (deSizeBits + deTagBits) & (deHeadMax - 1),
		v >> deTagBits & (deSizeMax - 1),
		v & (deTagMax - 1)
}

// IdempotentDE is the idempotent double-ended queue: FIFO for thieves
// (steal at head), LIFO for the worker (put/take at tail).
type IdempotentDE struct {
	anchor tso.Addr
	tasks  tso.Addr
	w      int64
}

// NewIdempotentDE allocates an idempotent double-ended queue. Capacity is
// limited by the anchor's 16-bit size field.
func NewIdempotentDE(a tso.Allocator, capacity int) *IdempotentDE {
	if capacity < 1 || capacity >= deSizeMax {
		panic(fmt.Sprintf("core: bad idempotent DE capacity %d (max %d)", capacity, deSizeMax-1))
	}
	return &IdempotentDE{anchor: a.Alloc(1), tasks: a.Alloc(capacity), w: int64(capacity)}
}

// Name implements Deque.
func (q *IdempotentDE) Name() string { return "Idempotent DE" }

func (q *IdempotentDE) slot(i uint64) tso.Addr {
	return q.tasks + tso.Addr(int64(i)%q.w)
}

// Put implements Deque.
func (q *IdempotentDE) Put(c tso.Context, v uint64) {
	h, s, g := unpackDE(c.Load(q.anchor))
	if int64(s) >= q.w {
		panic(fmt.Sprintf("core: idempotent DE overflow (capacity %d)", q.w))
	}
	c.Store(q.slot(h+s), v)
	c.Store(q.anchor, packDE(h, s+1, (g+1)%deTagMax))
}

// Take implements Deque: the worker removes from the tail with a plain
// anchor store.
func (q *IdempotentDE) Take(c tso.Context) (uint64, Status) {
	h, s, g := unpackDE(c.Load(q.anchor))
	if s == 0 {
		return 0, Empty
	}
	v := c.Load(q.slot(h + s - 1))
	c.Store(q.anchor, packDE(h, s-1, g))
	return v, OK
}

// Steal implements Deque: thieves remove from the head with a CAS. When
// size is 1 the head and tail coincide, so the worker and a thief can both
// remove the final task — the paper's description of this queue.
func (q *IdempotentDE) Steal(c tso.Context) (uint64, Status) {
	for {
		old := c.Load(q.anchor)
		h, s, g := unpackDE(old)
		if s == 0 {
			return 0, Empty
		}
		v := c.Load(q.slot(h))
		if _, ok := c.CAS(q.anchor, old, packDE((h+1)%deHeadMax, s-1, g)); !ok {
			continue
		}
		return v, OK
	}
}

// Prefill implements Prefiller.
func (q *IdempotentDE) Prefill(p Poker, vals []uint64) {
	if int64(len(vals)) > q.w {
		panic("core: prefill exceeds capacity")
	}
	for i, v := range vals {
		p.Poke(q.slot(uint64(i)), v)
	}
	p.Poke(q.anchor, packDE(0, uint64(len(vals)), uint64(len(vals))%deTagMax))
}
