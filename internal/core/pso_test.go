package core

import (
	"testing"

	"repro/internal/tso"
)

// TestQueuesRequireTSO demonstrates the §10 future-work boundary: under
// PSO (store→store reordering allowed), a put()'s task store can drain
// *after* its tail-index store, so a thief can steal a slot whose task
// value has not reached memory — it reads garbage. Every queue in the
// paper relies on TSO's FIFO publication here, with no δ to save it.
func TestQueuesRequireTSO(t *testing.T) {
	for _, algo := range []Algo{AlgoChaseLev, AlgoTHE, AlgoIdempotentLIFO} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			sawGarbage := false
			for seed := int64(0); seed < 400 && !sawGarbage; seed++ {
				m := tso.NewMachine(tso.Config{
					Threads:    2,
					BufferSize: 4,
					Model:      tso.ModelPSO,
					Seed:       seed,
					DrainBias:  0.15,
				})
				q := New(algo, m, 16, 1)
				putDone := false
				var stolen uint64
				stole := false
				err := m.Run(
					func(c tso.Context) {
						q.Put(c, 7) // the only real task value
						putDone = true
						for i := 0; i < 60; i++ {
							c.Work(1) // keep the put buffered: no fence
						}
					},
					func(c tso.Context) {
						for !putDone {
							c.Work(1)
						}
						for i := 0; i < 40 && !stole; i++ {
							if v, st := q.Steal(c); st == OK {
								stolen = v
								stole = true
							}
						}
					},
				)
				if err != nil {
					t.Fatal(err)
				}
				if stole && stolen != 7 {
					sawGarbage = true // stole the slot before the task store drained
				}
			}
			if !sawGarbage {
				t.Fatalf("%v: no garbage steal under PSO in 400 seeds; the TSO dependence is not being exercised", algo)
			}
		})
	}
}

// TestQueuesSafeOnTSOControl is the control for the PSO demonstration: the
// identical program on the TSO machine never steals garbage.
func TestQueuesSafeOnTSOControl(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		m := tso.NewMachine(tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.15})
		q := NewChaseLev(m, 16)
		putDone := false
		var stolen uint64
		stole := false
		err := m.Run(
			func(c tso.Context) {
				q.Put(c, 7)
				putDone = true
				for i := 0; i < 60; i++ {
					c.Work(1)
				}
			},
			func(c tso.Context) {
				for !putDone {
					c.Work(1)
				}
				for i := 0; i < 40 && !stole; i++ {
					if v, st := q.Steal(c); st == OK {
						stolen = v
						stole = true
					}
				}
			},
		)
		if err != nil {
			t.Fatal(err)
		}
		if stole && stolen != 7 {
			t.Fatalf("seed %d: stole %d on TSO — FIFO publication broken", seed, stolen)
		}
	}
}
