package core

import "repro/internal/tso"

// spinlock is the per-queue lock used by the THE family (§3.2). Acquire is
// a CAS loop (the atomic acts as a fence, rule 4 of the abstract machine);
// release is a plain store, which is a correct release under TSO because
// the store buffer drains in FIFO order — every critical-section store
// reaches memory before the unlocking store does.
type spinlock struct {
	addr tso.Addr
}

func newSpinlock(a tso.Allocator) spinlock {
	return spinlock{addr: a.Alloc(1)}
}

func (l spinlock) lock(c tso.Context) {
	for {
		if _, ok := c.CAS(l.addr, 0, 1); ok {
			return
		}
		// Spin on a plain load until the lock looks free, then retry the
		// CAS (test-and-test-and-set keeps chaos schedules shorter and is
		// what real runtimes do).
		for c.Load(l.addr) != 0 {
		}
	}
}

func (l spinlock) unlock(c tso.Context) {
	c.Store(l.addr, 0)
}
