package expt

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tso"
	"repro/internal/viz"
)

// This file is the end of the observability pipeline: it runs one
// instrumented workload on a platform, bundles the machine's per-thread
// metric series with the scheduler's per-worker counters into a single
// report, and renders that report as text histograms/tables or as the
// stable JSON the -metrics flags emit.

// MetricsReport bundles everything the observability layer records for one
// instrumented run: the machine-level series (per-thread occupancy, stall
// and drain-latency metrics), the machine's aggregate op counts, and the
// scheduler's per-worker steal-outcome counters.
type MetricsReport struct {
	// Platform names the simulated machine configuration.
	Platform string `json:"platform"`
	// Engine is "timed" or "chaos".
	Engine string `json:"engine"`
	// App is the workload that generated the series.
	App string `json:"app"`
	// Algo is the queue algorithm the scheduler ran.
	Algo string `json:"algo"`
	// Machine holds the per-thread metric series.
	Machine *tso.MachineMetrics `json:"machine"`
	// MachineStats is the machine's aggregate op counters.
	MachineStats tso.Stats `json:"machine_stats"`
	// Sched is the scheduler-level result, including per-worker counters.
	Sched sched.Stats `json:"sched"`
}

// CollectMetrics runs the standard observability workload — Fib at test
// size under THEP with the default δ — on an instrumented copy of the
// platform and returns the combined report. engine selects "timed" (the
// performance model) or "chaos" (the adversarial interleaver); the series'
// units follow the engine (virtual cycles vs. scheduler steps/forced
// drains). The run is seeded, so a report is reproducible per platform.
func CollectMetrics(p Platform, engine string) (MetricsReport, error) {
	cfg := p.Cfg
	cfg.Metrics = true
	cfg.Seed = 1

	var m sched.Machine
	switch engine {
	case "timed":
		m = tso.NewTimedMachine(cfg)
	case "chaos":
		m = tso.NewMachine(cfg)
	default:
		return MetricsReport{}, fmt.Errorf("expt: unknown metrics engine %q (want timed or chaos)", engine)
	}

	app, _ := apps.ByName("Fib")
	rep := MetricsReport{
		Platform: p.Name,
		Engine:   engine,
		App:      app.Name,
		Algo:     core.AlgoTHEP.String(),
	}
	pool := sched.NewPool(m, sched.Options{
		Algo:  core.AlgoTHEP,
		Delta: core.DefaultDelta(cfg.ObservableBound()),
		Seed:  1,
	})
	root, verify := app.Build(apps.SizeTest)
	st, err := pool.Run(root)
	if err != nil {
		return rep, fmt.Errorf("expt: metrics run: %w", err)
	}
	if err := verify(); err != nil {
		return rep, fmt.Errorf("expt: metrics run: %w", err)
	}
	mm := m.(interface{ Metrics() *tso.MachineMetrics })
	ms := m.(interface{ Stats() tso.Stats })
	rep.Machine = mm.Metrics()
	rep.MachineStats = ms.Stats()
	rep.Sched = st
	return rep, nil
}

// RenderMetrics writes the report as text: the aggregate occupancy
// histogram, a per-thread series table, and a per-worker steal-outcome
// table.
func RenderMetrics(w io.Writer, rep MetricsReport) {
	fmt.Fprintf(w, "Metrics: %s on the %s engine — %s under %s\n\n",
		rep.App, rep.Engine, rep.Platform, rep.Algo)

	unit := "steps"
	if rep.Engine == "timed" {
		unit = "cycles"
	}

	if rep.Machine != nil {
		agg := make([]int64, rep.Machine.Bound+1)
		for _, t := range rep.Machine.Threads {
			for k, c := range t.OccupancyHist {
				agg[k] += c
			}
		}
		viz.Histogram(w, fmt.Sprintf("Store-buffer occupancy at issue (all threads, bound %d):", rep.Machine.Bound), agg, viz.Options{})
		fmt.Fprintln(w)

		var rows [][]string
		for _, t := range rep.Machine.Threads {
			rows = append(rows, []string{
				fmt.Sprint(t.Thread),
				fmt.Sprint(t.MaxOccupancy),
				fmt.Sprintf("%.1f", t.MeanDrainLatency()),
				fmt.Sprint(t.DrainLatencyMax),
				fmt.Sprint(t.FenceStallCost),
				fmt.Sprint(t.CASStallCost),
				fmt.Sprint(t.ForwardLoads),
				fmt.Sprint(t.Coalesces),
			})
		}
		WriteTable(w, []string{"thread", "max occ",
			"drain lat mean (" + unit + ")", "max",
			"fence stall (" + unit + ")", "CAS stall (" + unit + ")",
			"fwd loads", "coalesces"}, rows)
		fmt.Fprintln(w)
	}

	if rep.Sched.Workers != nil {
		var rows [][]string
		for i, ws := range rep.Sched.Workers {
			rows = append(rows, []string{
				fmt.Sprint(i),
				fmt.Sprint(ws.Takes),
				fmt.Sprint(ws.Steals),
				fmt.Sprint(ws.Aborts),
				fmt.Sprint(ws.Empties),
			})
		}
		WriteTable(w, []string{"worker", "takes", "steals", "aborts", "empty/lost"}, rows)
		fmt.Fprintln(w)
	}

	s := rep.MachineStats
	fmt.Fprintf(w, "machine totals: %d loads, %d stores, %d fences, %d CASes, %d drains, %d coalesces, %d forwarded loads\n",
		s.Loads, s.Stores, s.Fences, s.CASes, s.Drains, s.Coalesces, s.ForwardLoads)
}
