// Package expt contains the experiment drivers that regenerate every
// table and figure in the paper's evaluation (§8), shared by the cmd/
// executables and the root benchmark harness. Each driver returns typed
// rows; render.go turns them into the aligned text tables recorded in
// EXPERIMENTS.md.
package expt

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tso"
)

// Platform names a simulated machine configuration from §8.
type Platform struct {
	Name string
	Cfg  tso.Config
}

// Westmere is the Xeon E7-4870 model: 10 cores, observable bound 33.
func Westmere() Platform { return Platform{Name: "Westmere-EX", Cfg: tso.WestmereEX()} }

// HaswellP is the Core i7-4770 model: 4 cores, observable bound 43.
func HaswellP() Platform { return Platform{Name: "Haswell", Cfg: tso.Haswell()} }

// ScaledWestmere and ScaledHaswell are the Figure 10/11 platforms: the
// same core counts and drain-stage microarchitecture, but with the store
// buffer scaled down alongside the benchmark inputs. The paper's inputs
// (fib 42, 1024×1024 meshes) give task-queue depths far above δ=⌈S/2⌉, so
// most steals take the certain fast path; our scaled inputs would sit
// below the full-size δ and push every steal onto the uncertainty path,
// inverting the experiment. Scaling S preserves the paper's
// δ-to-queue-depth regime: the default δ (6 and 8) still exceeds the
// shallow per-stage queues of LUD/cholesky-style programs (reproducing the
// FF-THE collapse), while recursive programs run deeper than δ
// (reproducing the fast certain steals). The unscaled configurations
// remain in use everywhere queue depth is not involved (Figures 1, 7, 8).

// ScaledWestmere returns the input-scaled Westmere-EX model (bound 12).
func ScaledWestmere() Platform {
	return Platform{Name: "Westmere-EX (scaled)", Cfg: tso.Config{Threads: 10, BufferSize: 11, DrainBuffer: true}}
}

// ScaledHaswell returns the input-scaled Haswell model (bound 14).
func ScaledHaswell() Platform {
	return Platform{Name: "Haswell (scaled)", Cfg: tso.Config{Threads: 4, BufferSize: 13, DrainBuffer: true}}
}

// HT converts a platform to its hyperthreaded configuration: twice the
// threads, pairs sharing cores (tso.Config.SMT). §8.1 reports the
// fence-removal benefit shrinking under hyperthreading because the core
// runs the sibling during a fence stall; Figure10 on an HT platform
// reproduces that.
func HT(p Platform) Platform {
	p.Name += " +HT"
	p.Cfg.Threads *= 2
	p.Cfg.SMT = true
	return p
}

// runApp executes one app on a fresh timed machine and returns the
// makespan in virtual cycles plus scheduler stats. It fails loudly on any
// verification error, since a wrong answer invalidates the timing.
func runApp(app apps.App, size apps.Size, cfg tso.Config, threads int,
	opt sched.Options) (uint64, sched.Stats, error) {
	cfg.Threads = threads
	m := tso.NewTimedMachine(cfg)
	defer m.Close()
	p := sched.NewPool(m, opt)
	root, verify := app.Build(size)
	st, err := p.Run(root)
	if err != nil {
		return 0, st, fmt.Errorf("%s [%s]: %w", app.Name, opt.Algo, err)
	}
	if err := verify(); err != nil {
		return 0, st, fmt.Errorf("%s [%s]: %w", app.Name, opt.Algo, err)
	}
	return st.Elapsed, st, nil
}

// summaries computes the paper's median/p10/p90 presentation.
func summarize(samples []float64) stats.Summary { return stats.Summarize(samples) }

// Variant is one algorithm configuration of Figure 10.
type Variant struct {
	Label string
	Algo  core.Algo
	// Delta maps the platform's observable bound S to this variant's δ
	// (ignored for algorithms without δ).
	Delta func(s int) int
}

// Figure10Variants returns the five non-baseline configurations evaluated
// in Figure 10, in the paper's legend order.
func Figure10Variants() []Variant {
	return []Variant{
		{Label: "FF-THE", Algo: core.AlgoFFTHE, Delta: core.DefaultDelta},
		{Label: "FF-THE d=4", Algo: core.AlgoFFTHE, Delta: func(int) int { return 4 }},
		{Label: "THEP d=inf", Algo: core.AlgoTHEP, Delta: func(int) int { return core.DeltaInfinite }},
		{Label: "THEP", Algo: core.AlgoTHEP, Delta: core.DefaultDelta},
		{Label: "THEP d=4", Algo: core.AlgoTHEP, Delta: func(int) int { return 4 }},
	}
}
