package expt

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/tso"
)

// Fig8Result holds both panels of Figure 8: the same litmus runs
// interpreted under an assumed bound of S=32 (the documented store-buffer
// capacity — panel a) and S=33 (the true observable bound — panel b).
type Fig8Result struct {
	Raw    []litmus.Result
	PanelA []litmus.GridPoint // assuming S = 32
	PanelB []litmus.GridPoint // assuming S = 33
}

// Figure8 runs the litmus grid on the Westmere model (32 raw entries plus
// the coalescing drain stage → observable bound 33). For each L of the
// paper's sweep it tests δ at the S=32 prediction, the S=33 prediction,
// and one above; panel a should show failures exactly where ⌈32/(L+1)⌉
// divides evenly (δ one too low), and panel b should be correct on and
// above the line δ = α except at L=0, where same-location coalescing
// breaks any bound.
func Figure8(opts litmus.Options) Fig8Result {
	res, err := Figure8Ctx(context.Background(), opts)
	if err != nil {
		panic(fmt.Sprintf("expt: %v", err))
	}
	return res
}

// Figure8Ctx is Figure8 with cancellation. The grid runs on opts.Runner
// when set (nil: serially); parallel and serial runs produce identical
// panels because every litmus run carries its own seed and machine.
func Figure8Ctx(ctx context.Context, opts litmus.Options) (Fig8Result, error) {
	cfg := tso.Config{BufferSize: 32, DrainBuffer: true}
	deltasFor := func(l int) []int {
		set := map[int]bool{}
		for _, d := range []int{core.Delta(32, l), core.Delta(33, l), core.Delta(33, l) + 1} {
			set[d] = true
		}
		out := make([]int, 0, len(set))
		for d := range set {
			out = append(out, d)
		}
		// deterministic order
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	raw, err := litmus.RunPointsCtx(ctx, cfg, litmus.Figure8Ls(), deltasFor, opts)
	if err != nil {
		return Fig8Result{}, err
	}
	return Fig8Result{
		Raw:    raw,
		PanelA: litmus.Interpret(raw, 32),
		PanelB: litmus.Interpret(raw, 33),
	}, nil
}
