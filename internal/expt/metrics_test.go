package expt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestMetricsJSONSchema is the stability contract for the -metrics JSON:
// it validates the envelope and every field name plotting scripts may rely
// on, so an accidental rename fails here rather than downstream.
func TestMetricsJSONSchema(t *testing.T) {
	rep, err := CollectMetrics(ScaledHaswell(), "timed")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	env := decodeEnvelope(t, &buf, "metrics")
	data, ok := env["data"].(map[string]any)
	if !ok {
		t.Fatalf("data is %T", env["data"])
	}
	for _, key := range []string{"platform", "engine", "app", "algo", "machine", "machine_stats", "sched"} {
		if _, ok := data[key]; !ok {
			t.Errorf("data missing key %q", key)
		}
	}
	if data["engine"] != "timed" {
		t.Errorf("engine = %v", data["engine"])
	}

	machine, ok := data["machine"].(map[string]any)
	if !ok {
		t.Fatalf("machine is %T", data["machine"])
	}
	if machine["bound"].(float64) != float64(ScaledHaswell().Cfg.ObservableBound()) {
		t.Errorf("bound = %v", machine["bound"])
	}
	threads, ok := machine["threads"].([]any)
	if !ok || len(threads) != ScaledHaswell().Cfg.Threads {
		t.Fatalf("threads = %v", machine["threads"])
	}
	th := threads[0].(map[string]any)
	for _, key := range []string{"thread", "occupancy_hist", "fence_stall_cost",
		"cas_stall_cost", "drain_latency_sum", "drain_latency_max",
		"drained_entries", "forward_loads", "coalesces", "max_occupancy"} {
		if _, ok := th[key]; !ok {
			t.Errorf("thread series missing key %q", key)
		}
	}
	if hist := th["occupancy_hist"].([]any); len(hist) != ScaledHaswell().Cfg.ObservableBound()+1 {
		t.Errorf("occupancy_hist has %d buckets", len(hist))
	}

	sched, ok := data["sched"].(map[string]any)
	if !ok {
		t.Fatalf("sched is %T", data["sched"])
	}
	if _, ok := sched["Workers"].([]any); !ok {
		t.Errorf("sched.Workers = %v (per-worker counters missing)", sched["Workers"])
	}

	// The report must survive a round trip back into the typed struct.
	var rt struct {
		Data MetricsReport `json:"data"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rt); err != nil {
		t.Fatal(err)
	}
	if rt.Data.Machine == nil || len(rt.Data.Machine.Threads) != len(rep.Machine.Threads) {
		t.Fatal("machine metrics did not round-trip")
	}
}

// TestCollectMetricsBothEngines checks the engine-independent invariants of
// a report: every issued store lands in exactly one occupancy bucket, and
// the per-worker scheduler counters sum to the pool totals.
func TestCollectMetricsBothEngines(t *testing.T) {
	for _, engine := range []string{"timed", "chaos"} {
		rep, err := CollectMetrics(ScaledHaswell(), engine)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if rep.Machine == nil {
			t.Fatalf("%s: no machine metrics", engine)
		}
		var pushes int64
		for _, th := range rep.Machine.Threads {
			for _, c := range th.OccupancyHist {
				pushes += c
			}
			if th.MaxOccupancy > rep.Machine.Bound {
				t.Errorf("%s: thread %d max occupancy %d exceeds bound %d",
					engine, th.Thread, th.MaxOccupancy, rep.Machine.Bound)
			}
		}
		if pushes != rep.MachineStats.Stores {
			t.Errorf("%s: occupancy histogram has %d samples, %d stores issued",
				engine, pushes, rep.MachineStats.Stores)
		}
		var takes, steals, aborts int64
		for _, ws := range rep.Sched.Workers {
			takes += ws.Takes
			steals += ws.Steals
			aborts += ws.Aborts
		}
		if steals != rep.Sched.Steals {
			t.Errorf("%s: per-worker steals %d != pool steals %d", engine, steals, rep.Sched.Steals)
		}
		if aborts != rep.Sched.Aborts {
			t.Errorf("%s: per-worker aborts %d != pool aborts %d", engine, aborts, rep.Sched.Aborts)
		}
		if takes+steals != rep.Sched.Executed {
			t.Errorf("%s: takes %d + steals %d != executed %d", engine, takes, steals, rep.Sched.Executed)
		}
	}
}

func TestCollectMetricsUnknownEngine(t *testing.T) {
	if _, err := CollectMetrics(ScaledHaswell(), "warp"); err == nil {
		t.Fatal("no error for unknown engine")
	}
}

func TestRenderMetrics(t *testing.T) {
	rep, err := CollectMetrics(ScaledHaswell(), "timed")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderMetrics(&buf, rep)
	out := buf.String()
	for _, want := range []string{"Store-buffer occupancy", "thread", "worker", "machine totals", "cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}
