package expt

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/litmus"
)

func TestFigure1ShapeSmall(t *testing.T) {
	rows, err := Figure1(apps.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows want 7", len(rows))
	}
	byApp := map[string]Fig1Row{}
	for _, r := range rows {
		if r.NormalizedPct >= 100 {
			t.Errorf("%s: removing the fence did not speed up the run (%.1f%%)", r.App, r.NormalizedPct)
		}
		if r.NormalizedPct < 50 {
			t.Errorf("%s: implausibly large fence share (%.1f%%)", r.App, r.NormalizedPct)
		}
		byApp[r.App] = r
	}
	// The paper's ordering: fine-grained Fib gains far more than
	// coarse-grained cholesky.
	if byApp["Fib"].NormalizedPct >= byApp["cholesky"].NormalizedPct {
		t.Errorf("Fib (%.1f%%) should benefit more than cholesky (%.1f%%)",
			byApp["Fib"].NormalizedPct, byApp["cholesky"].NormalizedPct)
	}
}

func TestFigure7BothPlatforms(t *testing.T) {
	for _, p := range []Platform{Westmere(), HaswellP()} {
		res, err := Figure7(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		want := p.Cfg.ObservableBound()
		if res.Measured != want {
			t.Errorf("%s: measured %d want %d", p.Name, res.Measured, want)
		}
		if res.SameMeasured != want {
			t.Errorf("%s: same-location measured %d want %d", p.Name, res.SameMeasured, want)
		}
	}
}

func TestFigure8Tiny(t *testing.T) {
	// A reduced grid: only the L values where the S=32 vs S=33 analysis
	// disagrees most sharply, few seeds. The real grid runs in cmd/litmus.
	res := Figure8(litmus.Options{Tasks: 48, Seeds: 25, DrainBiases: []float64{0.02, 0.2}})
	if len(res.PanelA) == 0 || len(res.PanelB) == 0 {
		t.Fatal("empty panels")
	}
	// Panel B: every δ > α point with L > 0 must be correct.
	for _, gp := range res.PanelB {
		hasL0 := false
		for _, l := range gp.Ls {
			if l == 0 {
				hasL0 = true
			}
		}
		if hasL0 {
			continue
		}
		if gp.Delta > gp.Alpha && !gp.Correct {
			t.Errorf("panel b: α=%d δ=%d (no L=0) incorrect", gp.Alpha, gp.Delta)
		}
	}
	var buf bytes.Buffer
	RenderFigure8Panel(&buf, "Figure 8a", 32, res.PanelA)
	RenderFigure8Panel(&buf, "Figure 8b", 33, res.PanelB)
	if !strings.Contains(buf.String(), "alpha") {
		t.Fatal("render produced no grid")
	}
}

func TestFigure10SmallRun(t *testing.T) {
	// One fast platform pass at test size to exercise the whole driver.
	p := HaswellP()
	res, err := Figure10(p, apps.SizeTest, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("got %d rows want 11", len(res.Rows))
	}
	if len(res.GeoMean) != 5 {
		t.Fatalf("got %d geomeans want 5", len(res.GeoMean))
	}
	for _, row := range res.Rows {
		if row.BaselineCycles <= 0 {
			t.Fatalf("%s: zero baseline", row.App)
		}
		for label, c := range row.Cells {
			if c.Median <= 0 {
				t.Fatalf("%s/%s: nonpositive normalized median", row.App, label)
			}
		}
	}
	var buf bytes.Buffer
	RenderFigure10(&buf, res)
	if !strings.Contains(buf.String(), "Geo mean") {
		t.Fatal("render missing geomean row")
	}
}

func TestFigure11SmallRun(t *testing.T) {
	res, err := Figure11(HaswellP(), 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d workloads want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		cl := row.Cells["Chase-Lev"]
		if cl.NormalizedPct < 99 || cl.NormalizedPct > 101 {
			t.Fatalf("%s: baseline not ~100%% (%.1f)", row.Workload, cl.NormalizedPct)
		}
		for label, c := range row.Cells {
			if c.StolenPct < 0 || c.StolenPct > 100 {
				t.Fatalf("%s/%s: stolen%% %v", row.Workload, label, c.StolenPct)
			}
		}
	}
	var buf bytes.Buffer
	RenderFigure11(&buf, res)
	if !strings.Contains(buf.String(), "stolen work") {
		t.Fatal("render missing stolen-work panel")
	}
}

func TestWriteTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	WriteTable(&buf, []string{"a", "long-header"}, [][]string{{"xxxxx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines want 4", len(lines))
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Fatalf("missing separator: %q", lines[1])
	}
}
