package expt

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tso"
)

// Fig11Algo is one Figure 11 series.
type Fig11Algo struct {
	Label string
	Algo  core.Algo
}

// Figure11Algos returns the queues compared in Figure 11 (Chase-Lev is
// the normalization baseline): the paper's four, plus the fully
// read/write WS-MULT family as extra series — the same graph workloads
// priced without CAS anywhere, duplication bounded (WS-MULT) or merely
// finite (WS-MULT-R).
func Figure11Algos() []Fig11Algo {
	return []Fig11Algo{
		{"Chase-Lev", core.AlgoChaseLev},
		{"Idempotent DE", core.AlgoIdempotentDE},
		{"Idempotent LIFO", core.AlgoIdempotentLIFO},
		{"FF-CL", core.AlgoFFCL},
		{"WS-MULT", core.AlgoWSMult},
		{"WS-MULT-R", core.AlgoWSMultRelaxed},
	}
}

// Fig11Cell is one workload×algorithm measurement.
type Fig11Cell struct {
	NormalizedPct float64 // median run time vs Chase-Lev ×100 (Figure 11a)
	P10, P90      float64
	StolenPct     float64 // work obtained by stealing, percent (Figure 11b)
}

// Fig11Row groups the cells of one input graph.
type Fig11Row struct {
	Workload string
	Threads  int
	Baseline float64 // Chase-Lev median cycles
	Cells    map[string]Fig11Cell
}

// Fig11Result is the whole figure.
type Fig11Result struct {
	Platform string
	Rows     []Fig11Row
}

// Problem selects the §8.2 graph computation. The paper reports the
// transitive closure and notes "spanning tree results are similar"; both
// are available here.
type Problem int

const (
	// ProblemTransitiveClosure is Figure 11's reported workload.
	ProblemTransitiveClosure Problem = iota
	// ProblemSpanningTree is the companion workload.
	ProblemSpanningTree
)

func (p Problem) String() string {
	if p == ProblemSpanningTree {
		return "spanning tree"
	}
	return "transitive closure"
}

// build returns a fresh root task and verifier for the problem on g.
func (p Problem) build(g *graph.Graph, root int) (sched.TaskFunc, func() error) {
	if p == ProblemSpanningTree {
		return graph.SpanningTree(g, root)
	}
	return graph.TransitiveClosure(g, root)
}

// Figure11 regenerates Figure 11: parallel transitive closure on the
// K-graph, random graph and torus, comparing Chase-Lev, the two
// idempotent queues and FF-CL. scale sets the graph sizes (see
// graph.Figure11Workloads); runs is the seeds-per-cell count.
func Figure11(p Platform, scale, runs int) (Fig11Result, error) {
	return Figure11Problem(p, ProblemTransitiveClosure, scale, runs)
}

// Figure11Problem is Figure11 generalized over the graph computation.
func Figure11Problem(p Platform, problem Problem, scale, runs int) (Fig11Result, error) {
	return Figure11ProblemCtx(context.Background(), nil, p, problem, scale, runs)
}

// Figure11Ctx is Figure11 on a runner pool (nil r: serial) with
// cancellation.
func Figure11Ctx(ctx context.Context, r *runner.Runner, p Platform, scale, runs int) (Fig11Result, error) {
	return Figure11ProblemCtx(ctx, r, p, ProblemTransitiveClosure, scale, runs)
}

// fig11Cell is one scheduled traversal of the Figure 11 matrix: one
// workload under one queue with one scheduler seed. The input graph is
// built once per workload and shared read-only; every mutable structure
// (visited/parent arrays, machine, scheduler) is created inside the run.
type fig11Cell struct {
	wl      graph.Workload
	g       *graph.Graph
	al      Fig11Algo
	seed    int64
	problem Problem
}

// fig11Sample is one traversal's measured quantities.
type fig11Sample struct {
	cycles float64
	stolen float64
}

// Figure11ProblemCtx is Figure11Problem on a runner pool (nil r: serial)
// with cancellation. The workload × algorithm × seed matrix runs as
// independent jobs and is folded in the fixed matrix order, so the
// figure is identical at any worker count.
func Figure11ProblemCtx(ctx context.Context, r *runner.Runner, p Platform, problem Problem, scale, runs int) (Fig11Result, error) {
	res := Fig11Result{Platform: fmt.Sprintf("%s on %s", problem, p.Name)}
	s := p.Cfg.ObservableBound()
	workloads := graph.Figure11Workloads(scale, p.Cfg.Threads)
	algos := Figure11Algos()
	var cells []fig11Cell
	for _, wl := range workloads {
		g := wl.Build()
		for _, al := range algos {
			for run := 0; run < runs; run++ {
				cells = append(cells, fig11Cell{wl: wl, g: g, al: al, seed: int64(run)*131 + 7, problem: problem})
			}
		}
	}
	name := func(_ int, c fig11Cell) string {
		return fmt.Sprintf("fig11 %s %s seed=%d", c.wl.Name, c.al.Label, c.seed)
	}
	samples, err := runner.Map(ctx, r, cells, name, func(_ context.Context, c fig11Cell) (fig11Sample, error) {
		cfg := p.Cfg
		cfg.Threads = c.wl.Threads
		m := tso.NewTimedMachine(cfg)
		defer m.Close()
		pool := sched.NewPool(m, sched.Options{Algo: c.al.Algo, Delta: core.DefaultDelta(s), Seed: c.seed})
		root, verify := c.problem.build(c.g, 0)
		st, err := pool.Run(root)
		if err != nil {
			return fig11Sample{}, fmt.Errorf("%s [%s]: %w", c.wl.Name, c.al.Label, err)
		}
		if err := verify(); err != nil {
			return fig11Sample{}, fmt.Errorf("%s [%s]: %w", c.wl.Name, c.al.Label, err)
		}
		return fig11Sample{cycles: float64(st.Elapsed), stolen: 100 * st.StolenFrac}, nil
	})
	if err != nil {
		return res, err
	}

	idx := 0
	for _, wl := range workloads {
		row := Fig11Row{Workload: wl.Name, Threads: wl.Threads, Cells: map[string]Fig11Cell{}}
		perAlgo := map[string][]fig11Sample{}
		for _, al := range algos {
			perAlgo[al.Label] = samples[idx : idx+runs]
			idx += runs
		}
		cyclesOf := func(label string) []float64 {
			out := make([]float64, 0, runs)
			for _, s := range perAlgo[label] {
				out = append(out, s.cycles)
			}
			return out
		}
		base := stats.Median(cyclesOf("Chase-Lev"))
		row.Baseline = base
		for _, al := range algos {
			sum := stats.Summarize(cyclesOf(al.Label))
			stolen := make([]float64, 0, runs)
			for _, s := range perAlgo[al.Label] {
				stolen = append(stolen, s.stolen)
			}
			row.Cells[al.Label] = Fig11Cell{
				NormalizedPct: 100 * sum.Median / base,
				P10:           100 * sum.P10 / base,
				P90:           100 * sum.P90 / base,
				StolenPct:     stats.Median(stolen),
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
