package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tso"
)

// Fig11Algo is one Figure 11 series.
type Fig11Algo struct {
	Label string
	Algo  core.Algo
}

// Figure11Algos returns the four queues compared in Figure 11 (Chase-Lev
// is the normalization baseline).
func Figure11Algos() []Fig11Algo {
	return []Fig11Algo{
		{"Chase-Lev", core.AlgoChaseLev},
		{"Idempotent DE", core.AlgoIdempotentDE},
		{"Idempotent LIFO", core.AlgoIdempotentLIFO},
		{"FF-CL", core.AlgoFFCL},
	}
}

// Fig11Cell is one workload×algorithm measurement.
type Fig11Cell struct {
	NormalizedPct float64 // median run time vs Chase-Lev ×100 (Figure 11a)
	P10, P90      float64
	StolenPct     float64 // work obtained by stealing, percent (Figure 11b)
}

// Fig11Row groups the cells of one input graph.
type Fig11Row struct {
	Workload string
	Threads  int
	Baseline float64 // Chase-Lev median cycles
	Cells    map[string]Fig11Cell
}

// Fig11Result is the whole figure.
type Fig11Result struct {
	Platform string
	Rows     []Fig11Row
}

// Problem selects the §8.2 graph computation. The paper reports the
// transitive closure and notes "spanning tree results are similar"; both
// are available here.
type Problem int

const (
	// ProblemTransitiveClosure is Figure 11's reported workload.
	ProblemTransitiveClosure Problem = iota
	// ProblemSpanningTree is the companion workload.
	ProblemSpanningTree
)

func (p Problem) String() string {
	if p == ProblemSpanningTree {
		return "spanning tree"
	}
	return "transitive closure"
}

// build returns a fresh root task and verifier for the problem on g.
func (p Problem) build(g *graph.Graph, root int) (sched.TaskFunc, func() error) {
	if p == ProblemSpanningTree {
		return graph.SpanningTree(g, root)
	}
	return graph.TransitiveClosure(g, root)
}

// Figure11 regenerates Figure 11: parallel transitive closure on the
// K-graph, random graph and torus, comparing Chase-Lev, the two
// idempotent queues and FF-CL. scale sets the graph sizes (see
// graph.Figure11Workloads); runs is the seeds-per-cell count.
func Figure11(p Platform, scale, runs int) (Fig11Result, error) {
	return Figure11Problem(p, ProblemTransitiveClosure, scale, runs)
}

// Figure11Problem is Figure11 generalized over the graph computation.
func Figure11Problem(p Platform, problem Problem, scale, runs int) (Fig11Result, error) {
	res := Fig11Result{Platform: fmt.Sprintf("%s on %s", problem, p.Name)}
	s := p.Cfg.ObservableBound()
	for _, wl := range graph.Figure11Workloads(scale, p.Cfg.Threads) {
		g := wl.Build()
		row := Fig11Row{Workload: wl.Name, Threads: wl.Threads, Cells: map[string]Fig11Cell{}}
		samples := map[string][]float64{}
		stolen := map[string][]float64{}
		for _, al := range Figure11Algos() {
			for r := 0; r < runs; r++ {
				cfg := p.Cfg
				cfg.Threads = wl.Threads
				m := tso.NewTimedMachine(cfg)
				opt := sched.Options{Algo: al.Algo, Delta: core.DefaultDelta(s), Seed: int64(r)*131 + 7}
				pool := sched.NewPool(m, opt)
				root, verify := problem.build(g, 0)
				st, err := pool.Run(root)
				if err != nil {
					return res, fmt.Errorf("%s [%s]: %w", wl.Name, al.Label, err)
				}
				if err := verify(); err != nil {
					return res, fmt.Errorf("%s [%s]: %w", wl.Name, al.Label, err)
				}
				samples[al.Label] = append(samples[al.Label], float64(st.Elapsed))
				stolen[al.Label] = append(stolen[al.Label], 100*st.StolenFrac)
			}
		}
		base := stats.Median(samples["Chase-Lev"])
		row.Baseline = base
		for _, al := range Figure11Algos() {
			sum := stats.Summarize(samples[al.Label])
			row.Cells[al.Label] = Fig11Cell{
				NormalizedPct: 100 * sum.Median / base,
				P10:           100 * sum.P10 / base,
				P90:           100 * sum.P90 / base,
				StolenPct:     stats.Median(stolen[al.Label]),
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
