package expt

import (
	"repro/internal/measure"
	"repro/internal/tso"
)

// Fig7Result is the Figure 6/7 experiment output for one platform: the
// cycles-per-iteration curve and the capacity its knee implies.
type Fig7Result struct {
	Platform     string
	RawCapacity  int // documented store-buffer entries (S)
	Points       []measure.Point
	Measured     int // knee position = observable bound
	SameLocation []measure.Point
	SameMeasured int
}

// Figure7 regenerates Figure 7 for the given platform, sweeping store
// sequences past the expected knee, for both distinct-location and
// same-location stores (§7.2's coalescing follow-up).
func Figure7(p Platform) (Fig7Result, error) {
	maxSeq := p.Cfg.ObservableBound() + 10
	opts := measure.CapacityOptions{MaxSeq: maxSeq, Iters: 32}
	cost := p.Cfg.Cost
	if cost == (tso.CostModel{}) {
		cost = tso.DefaultCost
	}

	res := Fig7Result{Platform: p.Name, RawCapacity: p.Cfg.BufferSize}
	res.Points = measure.StoreBufferCapacity(p.Cfg, opts)
	m, err := measure.DetectCapacity(res.Points, cost)
	if err != nil {
		return res, err
	}
	res.Measured = m

	sameOpts := opts
	sameOpts.SameLocation = true
	res.SameLocation = measure.StoreBufferCapacity(p.Cfg, sameOpts)
	sm, err := measure.DetectCapacity(res.SameLocation, cost)
	if err != nil {
		return res, err
	}
	res.SameMeasured = sm
	return res, nil
}
