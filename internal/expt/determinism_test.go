package expt

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/apps"
	"repro/internal/litmus"
	"repro/internal/litmusdsl"
	"repro/internal/runner"
)

// The runner retrofit's contract: parallel and serial execution render
// byte-identical figures, because every job owns its seeded RNG and
// machine and results are folded in submission order.

func TestFigure8ParallelMatchesSerial(t *testing.T) {
	opts := litmus.Options{Tasks: 48, Seeds: 6, DrainBiases: []float64{0.02, 0.2}}
	serial := Figure8(opts)

	popts := opts
	popts.Runner = runner.New(4)
	parallel := Figure8(popts)

	var bs, bp bytes.Buffer
	RenderFigure8Panel(&bs, "Figure 8a", 32, serial.PanelA)
	RenderFigure8Panel(&bs, "Figure 8b", 33, serial.PanelB)
	RenderFigure8Panel(&bp, "Figure 8a", 32, parallel.PanelA)
	RenderFigure8Panel(&bp, "Figure 8b", 33, parallel.PanelB)
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Fatalf("parallel Figure 8 differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", bs.String(), bp.String())
	}
}

func TestFigure10ParallelMatchesSerial(t *testing.T) {
	p := HaswellP()
	serial, err := Figure10Ctx(context.Background(), nil, p, apps.SizeTest, 2)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure10Ctx(context.Background(), runner.New(4), p, apps.SizeTest, 2)
	if err != nil {
		t.Fatal(err)
	}
	var bs, bp bytes.Buffer
	RenderFigure10(&bs, serial)
	RenderFigure10(&bp, parallel)
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Fatalf("parallel Figure 10 differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", bs.String(), bp.String())
	}
}

func TestFigure11ParallelMatchesSerial(t *testing.T) {
	p := HaswellP()
	serial, err := Figure11Ctx(context.Background(), nil, p, 120, 2)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure11Ctx(context.Background(), runner.New(4), p, 120, 2)
	if err != nil {
		t.Fatal(err)
	}
	var bs, bp bytes.Buffer
	RenderFigure11(&bs, serial)
	RenderFigure11(&bp, parallel)
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Fatalf("parallel Figure 11 differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", bs.String(), bp.String())
	}
}

func TestLitmusMatrixParallelMatchesSerial(t *testing.T) {
	// The cheap half of the library; the full matrix (exhaustive, ~10s)
	// already runs once in litmusdsl's own suite and in reproduce -full.
	lib := litmusdsl.Library[:6]
	serial, err := litmusMatrix(context.Background(), nil, lib)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := litmusMatrix(context.Background(), runner.New(4), lib)
	if err != nil {
		t.Fatal(err)
	}
	var bs, bp bytes.Buffer
	RenderLitmusMatrix(&bs, serial)
	RenderLitmusMatrix(&bp, parallel)
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Fatalf("parallel matrix differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", bs.String(), bp.String())
	}
	for _, row := range serial {
		if !row.Ok {
			t.Errorf("%s: verdict %s does not match expectation %s", row.Name, row.Verdict, row.Expect)
		}
	}
}

func TestFigure8CtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := litmus.Options{Tasks: 48, Seeds: 4, DrainBiases: []float64{0.02}, Runner: runner.New(2)}
	_, err := Figure8Ctx(ctx, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFigureCacheRoundTrip checks the property cmd/reproduce's cache
// depends on: a figure decoded from the on-disk cache renders the same
// bytes as the freshly computed one.
func TestFigureCacheRoundTrip(t *testing.T) {
	c, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := litmus.Options{Tasks: 48, Seeds: 4, DrainBiases: []float64{0.02, 0.2}}
	compute := func() (Fig8Result, error) { return Figure8Ctx(context.Background(), opts) }

	fresh, hit, err := runner.Cached(c, "figure8", opts, compute)
	if err != nil || hit {
		t.Fatalf("first call: hit=%v err=%v", hit, err)
	}
	cached, hit, err := runner.Cached(c, "figure8", opts, compute)
	if err != nil || !hit {
		t.Fatalf("second call: hit=%v err=%v", hit, err)
	}
	var bf, bc bytes.Buffer
	RenderFigure8Panel(&bf, "Figure 8a", 32, fresh.PanelA)
	RenderFigure8Panel(&bf, "Figure 8b", 33, fresh.PanelB)
	RenderFigure8Panel(&bc, "Figure 8a", 32, cached.PanelA)
	RenderFigure8Panel(&bc, "Figure 8b", 33, cached.PanelB)
	if !bytes.Equal(bf.Bytes(), bc.Bytes()) {
		t.Fatalf("cached render differs from fresh:\n--- fresh ---\n%s\n--- cached ---\n%s", bf.String(), bc.String())
	}
}
