package expt

import (
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Fig10Cell is one bar of Figure 10: a variant's run time on one app,
// normalized to the THE baseline (percent; <100 is faster than Cilk).
type Fig10Cell struct {
	Median float64 // normalized median
	P10    float64
	P90    float64
}

// Fig10Row is one app's group of bars.
type Fig10Row struct {
	App            string
	BaselineCycles float64 // THE median, virtual cycles
	Cells          map[string]Fig10Cell
}

// Fig10Result is one platform's panel.
type Fig10Result struct {
	Platform string
	Threads  int
	DeltaS   int // the observable bound used for default δ
	Variants []string
	Rows     []Fig10Row
	// GeoMean maps variant label to the geometric mean of normalized
	// medians — the paper's "Geo mean" group.
	GeoMean map[string]float64
}

// Figure10 regenerates one panel of Figure 10 (10a: Westmere, 10b:
// Haswell): the 11-program suite under the five fence-free variants,
// normalized to the default (THE) runtime, median of `runs` scheduler
// seeds with p10/p90.
func Figure10(p Platform, size apps.Size, runs int) (Fig10Result, error) {
	s := p.Cfg.ObservableBound()
	threads := p.Cfg.Threads
	res := Fig10Result{
		Platform: p.Name,
		Threads:  threads,
		DeltaS:   s,
		GeoMean:  map[string]float64{},
	}
	variants := Figure10Variants()
	for _, v := range variants {
		res.Variants = append(res.Variants, v.Label)
	}
	perVariant := map[string][]float64{}
	for _, app := range apps.All() {
		row := Fig10Row{App: app.Name, Cells: map[string]Fig10Cell{}}
		base, err := medianCycles(app, size, p.Cfg, threads, sched.Options{Algo: core.AlgoTHE}, runs)
		if err != nil {
			return res, err
		}
		baseMed := stats.Median(base)
		row.BaselineCycles = baseMed
		for _, v := range variants {
			opt := sched.Options{Algo: v.Algo, Delta: v.Delta(s)}
			sample, err := medianCycles(app, size, p.Cfg, threads, opt, runs)
			if err != nil {
				return res, err
			}
			sum := summarize(sample)
			cell := Fig10Cell{
				Median: 100 * sum.Median / baseMed,
				P10:    100 * sum.P10 / baseMed,
				P90:    100 * sum.P90 / baseMed,
			}
			row.Cells[v.Label] = cell
			perVariant[v.Label] = append(perVariant[v.Label], cell.Median)
		}
		res.Rows = append(res.Rows, row)
	}
	for label, meds := range perVariant {
		res.GeoMean[label] = stats.GeoMean(meds)
	}
	return res, nil
}
