package expt

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Fig10Cell is one bar of Figure 10: a variant's run time on one app,
// normalized to the THE baseline (percent; <100 is faster than Cilk).
type Fig10Cell struct {
	Median float64 // normalized median
	P10    float64
	P90    float64
}

// Fig10Row is one app's group of bars.
type Fig10Row struct {
	App            string
	BaselineCycles float64 // THE median, virtual cycles
	Cells          map[string]Fig10Cell
}

// Fig10Result is one platform's panel.
type Fig10Result struct {
	Platform string
	Threads  int
	DeltaS   int // the observable bound used for default δ
	Variants []string
	Rows     []Fig10Row
	// GeoMean maps variant label to the geometric mean of normalized
	// medians — the paper's "Geo mean" group.
	GeoMean map[string]float64
}

// Figure10 regenerates one panel of Figure 10 (10a: Westmere, 10b:
// Haswell): the 11-program suite under the five fence-free variants,
// normalized to the default (THE) runtime, median of `runs` scheduler
// seeds with p10/p90.
func Figure10(p Platform, size apps.Size, runs int) (Fig10Result, error) {
	return Figure10Ctx(context.Background(), nil, p, size, runs)
}

// fig10Cell is one scheduled measurement of the Figure 10 matrix: one
// app under one queue configuration with one scheduler seed.
type fig10Cell struct {
	app   apps.App
	label string
	opt   sched.Options
}

// fig10Cells flattens the app × (baseline + variants) × seed matrix in
// the canonical aggregation order. The seed formula reproduces the
// paper's "run each program 10 times and report the median" methodology,
// with scheduler seeds providing the run-to-run variation that
// wall-clock noise provides on hardware.
func fig10Cells(variants []Variant, s, runs int) []fig10Cell {
	var cells []fig10Cell
	for _, app := range apps.All() {
		for r := 0; r < runs; r++ {
			cells = append(cells, fig10Cell{app: app, label: "THE",
				opt: sched.Options{Algo: core.AlgoTHE, Seed: int64(r)*7919 + 13}})
		}
		for _, v := range variants {
			for r := 0; r < runs; r++ {
				cells = append(cells, fig10Cell{app: app, label: v.Label,
					opt: sched.Options{Algo: v.Algo, Delta: v.Delta(s), Seed: int64(r)*7919 + 13}})
			}
		}
	}
	return cells
}

// Figure10Ctx is Figure10 on a runner pool (nil r: serial) with
// cancellation. The whole app × algorithm × seed matrix is flattened to
// independent jobs — each builds its own timed machine and scheduler —
// then aggregated in the fixed matrix order, so the panel is identical
// at any worker count.
func Figure10Ctx(ctx context.Context, r *runner.Runner, p Platform, size apps.Size, runs int) (Fig10Result, error) {
	s := p.Cfg.ObservableBound()
	threads := p.Cfg.Threads
	res := Fig10Result{
		Platform: p.Name,
		Threads:  threads,
		DeltaS:   s,
		GeoMean:  map[string]float64{},
	}
	variants := Figure10Variants()
	for _, v := range variants {
		res.Variants = append(res.Variants, v.Label)
	}
	cells := fig10Cells(variants, s, runs)
	name := func(_ int, c fig10Cell) string {
		return fmt.Sprintf("fig10 %s %s seed=%d", c.app.Name, c.label, c.opt.Seed)
	}
	samples, err := runner.Map(ctx, r, cells, name, func(_ context.Context, c fig10Cell) (float64, error) {
		cycles, _, err := runApp(c.app, size, p.Cfg, threads, c.opt)
		return float64(cycles), err
	})
	if err != nil {
		return res, err
	}

	perVariant := map[string][]float64{}
	idx := 0
	take := func() []float64 { out := samples[idx : idx+runs]; idx += runs; return out }
	for _, app := range apps.All() {
		base := take()
		row := Fig10Row{App: app.Name, Cells: map[string]Fig10Cell{}}
		baseMed := stats.Median(base)
		row.BaselineCycles = baseMed
		for _, v := range variants {
			sum := summarize(take())
			cell := Fig10Cell{
				Median: 100 * sum.Median / baseMed,
				P10:    100 * sum.P10 / baseMed,
				P90:    100 * sum.P90 / baseMed,
			}
			row.Cells[v.Label] = cell
			perVariant[v.Label] = append(perVariant[v.Label], cell.Median)
		}
		res.Rows = append(res.Rows, row)
	}
	for label, meds := range perVariant {
		res.GeoMean[label] = stats.GeoMean(meds)
	}
	return res, nil
}
