package expt

import (
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sched"
)

// Fig1Row is one bar of Figure 1: single-threaded execution time without
// the take() fence, normalized to the fenced baseline.
type Fig1Row struct {
	App             string
	FencedCycles    uint64
	FencelessCycles uint64
	// NormalizedPct is 100 × fenceless/fenced — Figure 1's y-axis.
	NormalizedPct float64
}

// Figure1 regenerates Figure 1: each of the seven apps runs single
// threaded on the Haswell model with the standard THE queue and with
// FF-THE (identical but for the worker fence). With one worker there are
// no thieves, so the entire difference is the fence.
func Figure1(size apps.Size) ([]Fig1Row, error) {
	platform := HaswellP()
	rows := make([]Fig1Row, 0, 7)
	for _, app := range apps.Figure1Apps() {
		fenced, _, err := runApp(app, size, platform.Cfg, 1, sched.Options{Algo: core.AlgoTHE, Seed: 1})
		if err != nil {
			return nil, err
		}
		free, _, err := runApp(app, size, platform.Cfg, 1, sched.Options{Algo: core.AlgoFFTHE, Delta: core.DefaultDelta(platform.Cfg.ObservableBound()), Seed: 1})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig1Row{
			App:             app.Name,
			FencedCycles:    fenced,
			FencelessCycles: free,
			NormalizedPct:   100 * float64(free) / float64(fenced),
		})
	}
	return rows, nil
}
