package expt

import (
	"encoding/json"
	"io"
)

// JSON output for every experiment, so results can be consumed by plotting
// scripts without scraping the text tables. The structures marshal the
// exported experiment types directly; this file only adds envelopes that
// name the experiment and the schema version.

// jsonEnvelope wraps a result with identification.
type jsonEnvelope struct {
	Experiment string `json:"experiment"`
	Schema     int    `json:"schema"`
	Data       any    `json:"data"`
}

const schemaVersion = 1

func writeJSON(w io.Writer, experiment string, data any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonEnvelope{Experiment: experiment, Schema: schemaVersion, Data: data})
}

// WriteFigure1JSON emits the Figure 1 rows as JSON.
func WriteFigure1JSON(w io.Writer, rows []Fig1Row) error {
	return writeJSON(w, "figure1", rows)
}

// WriteFigure7JSON emits a capacity-measurement result as JSON.
func WriteFigure7JSON(w io.Writer, res Fig7Result) error {
	return writeJSON(w, "figure7", res)
}

// WriteFigure8JSON emits both litmus panels as JSON.
func WriteFigure8JSON(w io.Writer, res Fig8Result) error {
	return writeJSON(w, "figure8", res)
}

// WriteFigure10JSON emits one Figure 10 panel as JSON.
func WriteFigure10JSON(w io.Writer, res Fig10Result) error {
	return writeJSON(w, "figure10", res)
}

// WriteFigure11JSON emits a Figure 11 result as JSON.
func WriteFigure11JSON(w io.Writer, res Fig11Result) error {
	return writeJSON(w, "figure11", res)
}

// WriteLitmusMatrixJSON emits the classic-litmus validation matrix as
// JSON.
func WriteLitmusMatrixJSON(w io.Writer, rows []MatrixRow) error {
	return writeJSON(w, "litmus-matrix", rows)
}

// WriteAblationJSON emits one ablation sweep as JSON.
func WriteAblationJSON(w io.Writer, title string, rows []AblationRow) error {
	return writeJSON(w, "ablation: "+title, rows)
}

// WriteMetricsJSON emits one observability report (see CollectMetrics) as
// JSON. The envelope and the report's field names are stable: plotting
// scripts may rely on data.machine.threads[].occupancy_hist et al.
func WriteMetricsJSON(w io.Writer, rep MetricsReport) error {
	return writeJSON(w, "metrics", rep)
}

// ManifestEntry pairs one experiment's name with its result data inside
// the single-file manifest cmd/reproduce -json writes.
type ManifestEntry struct {
	// Experiment names the figure or table ("figure8", "table1", ...).
	Experiment string `json:"experiment"`
	// Data is the experiment's typed result, marshalled directly.
	Data any `json:"data"`
}

// WriteManifestJSON emits one manifest holding every figure's result —
// the whole-evaluation counterpart of the per-figure writers above.
func WriteManifestJSON(w io.Writer, entries []ManifestEntry) error {
	return writeJSON(w, "manifest", entries)
}
