package expt

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestAblationClientStores(t *testing.T) {
	rows, err := AblationClientStores(ScaledHaswell())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// x=0 forces delta = S: on fib's shallow-at-scale queue that means few
	// or no steals; larger x must not be slower than x=0.
	if rows[0].Steals > rows[3].Steals {
		t.Fatalf("steals did not increase with client stores: %+v", rows)
	}
	if rows[3].Cycles > rows[0].Cycles {
		t.Fatalf("smaller delta did not help: x=0 %d cycles, x=4 %d", rows[0].Cycles, rows[3].Cycles)
	}
}

func TestAblationDeltaCliff(t *testing.T) {
	rows, err := AblationDeltaCliff(ScaledHaswell())
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.Cycles <= first.Cycles {
		t.Fatalf("no cliff: delta=%s %d cycles vs %s %d", first.Label, first.Cycles, last.Label, last.Cycles)
	}
	if last.Steals != 0 {
		t.Fatalf("huge delta still stole %d times", last.Steals)
	}
	if first.Steals == 0 {
		t.Fatal("small delta never stole")
	}
}

func TestAblationDrainLatencyMonotone(t *testing.T) {
	rows, err := AblationDrainLatency()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Percent >= rows[i-1].Percent {
			t.Fatalf("fence overhead not increasing with drain latency: %+v", rows)
		}
	}
}

func TestAblationStealBackoffRuns(t *testing.T) {
	rows, err := AblationStealBackoff(ScaledHaswell())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Steals == 0 {
			t.Fatalf("%s: no steals on a wide flat graph", r.Label)
		}
	}
}

func TestRenderAblation(t *testing.T) {
	var buf bytes.Buffer
	RenderAblation(&buf, "title", []AblationRow{{Label: "a", Cycles: 10, Percent: 100}})
	if !strings.Contains(buf.String(), "title") || !strings.Contains(buf.String(), "100.0%") {
		t.Fatalf("render output:\n%s", buf.String())
	}
}

func TestAblationWorkerScaling(t *testing.T) {
	for _, algo := range []struct {
		a core.Algo
		d int
	}{{core.AlgoTHE, 0}, {core.AlgoTHEP, 7}} {
		rows, err := AblationWorkerScaling(algo.a, algo.d, []int{1, 2, 4})
		if err != nil {
			t.Fatal(err)
		}
		if rows[2].Cycles >= rows[0].Cycles {
			t.Fatalf("%v: 4 workers (%d cycles) not faster than 1 (%d)", algo.a, rows[2].Cycles, rows[0].Cycles)
		}
		if rows[2].Steals == 0 {
			t.Fatalf("%v: no steals at 4 workers", algo.a)
		}
	}
}
