package expt

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/litmus"
	"repro/internal/measure"
	"repro/internal/viz"
)

// WriteTable renders an aligned plain-text table.
func WriteTable(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// RenderFigure1 writes the Figure 1 table.
func RenderFigure1(w io.Writer, rows []Fig1Row) {
	fmt.Fprintln(w, "Figure 1: single-threaded execution time without the take() fence")
	fmt.Fprintln(w, "(normalized to the fenced THE baseline; lower is better)")
	fmt.Fprintln(w)
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			r.App,
			fmt.Sprintf("%d", r.FencedCycles),
			fmt.Sprintf("%d", r.FencelessCycles),
			fmt.Sprintf("%.1f%%", r.NormalizedPct),
		}
	}
	WriteTable(w, []string{"Benchmark", "Fenced (cycles)", "Fence-free (cycles)", "Normalized"}, body)
	fmt.Fprintln(w)
	bars := make([]viz.Bar, len(rows))
	for i, r := range rows {
		bars[i] = viz.Bar{Label: r.App, Value: r.NormalizedPct}
	}
	viz.NormalizedChart(w, "", bars, 110)
}

// RenderFigure7 writes the capacity curve and its knee.
func RenderFigure7(w io.Writer, res Fig7Result) {
	fmt.Fprintf(w, "Figure 7: store buffer capacity measurement on %s (documented capacity %d)\n\n",
		res.Platform, res.RawCapacity)
	body := make([][]string, 0, len(res.Points))
	for i, pt := range res.Points {
		same := ""
		if i < len(res.SameLocation) {
			same = fmt.Sprintf("%.1f", res.SameLocation[i].CyclesPerIter)
		}
		marker := ""
		if pt.Stores == res.Measured {
			marker = "<- knee (measured capacity)"
		}
		body = append(body, []string{
			fmt.Sprintf("%d", pt.Stores),
			fmt.Sprintf("%.1f", pt.CyclesPerIter),
			same,
			marker,
		})
	}
	WriteTable(w, []string{"# stores", "cycles/iter", "same-loc cycles/iter", ""}, body)
	fmt.Fprintf(w, "\nMeasured capacity: %d (distinct locations), %d (same location)\n",
		res.Measured, res.SameMeasured)
}

// RenderFigure8Panel writes one panel's classification grid.
func RenderFigure8Panel(w io.Writer, title string, assumedS int, grid []litmus.GridPoint) {
	fmt.Fprintf(w, "%s (assuming S = %d)\n\n", title, assumedS)
	body := make([][]string, len(grid))
	for i, gp := range grid {
		verdict := "CORRECT"
		if !gp.Correct {
			verdict = "INCORRECT"
		}
		onLine := ""
		if gp.Delta >= gp.Alpha {
			onLine = "delta >= alpha"
		}
		body[i] = []string{
			fmt.Sprintf("%d", gp.Alpha),
			fmt.Sprintf("%d", gp.Delta),
			fmt.Sprintf("%v", gp.Ls),
			onLine,
			verdict,
		}
	}
	WriteTable(w, []string{"alpha=ceil(S/(L+1))", "delta", "L values", "region", "result"}, body)
	fmt.Fprintln(w)
}

// RenderFigure10 writes one platform's Figure 10 panel.
func RenderFigure10(w io.Writer, res Fig10Result) {
	fmt.Fprintf(w, "Figure 10: CilkPlus suite on %s (%d threads, observable bound S=%d)\n",
		res.Platform, res.Threads, res.DeltaS)
	fmt.Fprintln(w, "(median run time normalized to the THE baseline, %; lower is better)")
	fmt.Fprintln(w)
	headers := append([]string{"Benchmark"}, res.Variants...)
	body := make([][]string, 0, len(res.Rows)+1)
	for _, row := range res.Rows {
		cells := []string{row.App}
		for _, v := range res.Variants {
			c := row.Cells[v]
			cells = append(cells, fmt.Sprintf("%.1f", c.Median))
		}
		body = append(body, cells)
	}
	gm := []string{"Geo mean"}
	for _, v := range res.Variants {
		gm = append(gm, fmt.Sprintf("%.1f", res.GeoMean[v]))
	}
	body = append(body, gm)
	WriteTable(w, headers, body)
	fmt.Fprintln(w)
	bars := make([]viz.Bar, 0, len(res.Rows)+1)
	for _, row := range res.Rows {
		c := row.Cells["THEP"]
		note := ""
		if c.Median > 160 {
			note = "off scale"
		}
		bars = append(bars, viz.Bar{Label: row.App, Value: c.Median, Note: note})
	}
	bars = append(bars, viz.Bar{Label: "Geo mean", Value: res.GeoMean["THEP"]})
	viz.NormalizedChart(w, "THEP vs THE (the headline variant):", bars, 160)
	fmt.Fprintln(w)
}

// RenderFigure11 writes both Figure 11 panels.
func RenderFigure11(w io.Writer, res Fig11Result) {
	fmt.Fprintf(w, "Figure 11: %s\n", res.Platform)
	fmt.Fprintln(w, "(a) run time normalized to Chase-Lev (%), (b) work obtained by stealing (%)")
	fmt.Fprintln(w)
	algoLabels := make([]string, 0, 4)
	for _, a := range Figure11Algos() {
		algoLabels = append(algoLabels, a.Label)
	}
	headers := append([]string{"Input", "Metric"}, algoLabels...)
	var body [][]string
	for _, row := range res.Rows {
		timeCells := []string{row.Workload, "norm time %"}
		stealCells := []string{"", "stolen work %"}
		for _, a := range algoLabels {
			c := row.Cells[a]
			timeCells = append(timeCells, fmt.Sprintf("%.1f", c.NormalizedPct))
			stealCells = append(stealCells, fmt.Sprintf("%.3f", c.StolenPct))
		}
		body = append(body, timeCells, stealCells)
	}
	WriteTable(w, headers, body)
	fmt.Fprintln(w)
	for _, row := range res.Rows {
		bars := make([]viz.Bar, 0, 4)
		for _, a := range algoLabels {
			bars = append(bars, viz.Bar{Label: a, Value: row.Cells[a].NormalizedPct})
		}
		viz.NormalizedChart(w, row.Workload+":", bars, 120)
		fmt.Fprintln(w)
	}
}

// RenderCapacityCSV emits the Figure 7 curve as CSV for plotting.
func RenderCapacityCSV(w io.Writer, pts []measure.Point) {
	fmt.Fprintln(w, "stores,cycles_per_iter")
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%.2f\n", p.Stores, p.CyclesPerIter)
	}
}
