package expt

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/apps"
	"repro/internal/litmus"
	"repro/internal/measure"
)

func decodeEnvelope(t *testing.T, buf *bytes.Buffer, wantExperiment string) map[string]any {
	t.Helper()
	var env map[string]any
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if env["experiment"] != wantExperiment {
		t.Fatalf("experiment = %v want %v", env["experiment"], wantExperiment)
	}
	if env["schema"] != float64(1) {
		t.Fatalf("schema = %v", env["schema"])
	}
	if env["data"] == nil {
		t.Fatal("no data")
	}
	return env
}

func TestFigure1JSONRoundTrip(t *testing.T) {
	rows, err := Figure1(apps.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFigure1JSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	env := decodeEnvelope(t, &buf, "figure1")
	data := env["data"].([]any)
	if len(data) != 7 {
		t.Fatalf("rows = %d", len(data))
	}
	first := data[0].(map[string]any)
	if first["App"] != "Fib" {
		t.Fatalf("first app = %v", first["App"])
	}
	if first["NormalizedPct"].(float64) <= 0 {
		t.Fatal("missing normalized value")
	}
}

func TestFigure7JSON(t *testing.T) {
	res := Fig7Result{Platform: "x", RawCapacity: 8, Measured: 9,
		Points: []measure.Point{{Stores: 1, CyclesPerIter: 2}}}
	var buf bytes.Buffer
	if err := WriteFigure7JSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, &buf, "figure7")
}

func TestFigure8JSON(t *testing.T) {
	res := Fig8Result{
		Raw:    []litmus.Result{{L: 1, Delta: 2, Runs: 3}},
		PanelA: []litmus.GridPoint{{Alpha: 1, Delta: 1, Correct: false, Ls: []int{1}}},
	}
	var buf bytes.Buffer
	if err := WriteFigure8JSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, &buf, "figure8")
}

func TestFigure10And11JSON(t *testing.T) {
	res10 := Fig10Result{Platform: "p", Threads: 2, DeltaS: 4,
		Variants: []string{"THEP"},
		Rows:     []Fig10Row{{App: "Fib", BaselineCycles: 10, Cells: map[string]Fig10Cell{"THEP": {Median: 90}}}},
		GeoMean:  map[string]float64{"THEP": 90},
	}
	var buf bytes.Buffer
	if err := WriteFigure10JSON(&buf, res10); err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, &buf, "figure10")

	res11 := Fig11Result{Platform: "p",
		Rows: []Fig11Row{{Workload: "t", Threads: 2, Baseline: 5,
			Cells: map[string]Fig11Cell{"FF-CL": {NormalizedPct: 80}}}}}
	buf.Reset()
	if err := WriteFigure11JSON(&buf, res11); err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, &buf, "figure11")
}
