package expt

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tso"
)

// Ablations isolate the design choices the reproduction (and the paper)
// depend on: how client stores between takes shrink δ (§4's x parameter),
// how δ trades against queue depth (the FF-THE collapse mechanism), how
// the fence penalty scales with drain latency (the Figure 1 mechanism),
// and the scheduler's steal backoff.

// AblationRow is one configuration's measurement.
type AblationRow struct {
	Label   string
	Cycles  uint64
	Steals  int64
	Aborts  int64
	Detail  string
	Percent float64 // normalized to the first row where meaningful
}

// AblationClientStores varies the number of post-take client stores x and
// uses the matching sound δ = ⌈S/(x+1)⌉ for FF-THE: more client stores →
// smaller δ → thieves certain sooner → more steals. This is §4's
// "Determining δ" as an experiment.
func AblationClientStores(p Platform) ([]AblationRow, error) {
	s := p.Cfg.ObservableBound()
	app, _ := apps.ByName("Fib")
	rows := []AblationRow{}
	for _, x := range []int{0, 1, 2, 4, 8} {
		post := x
		if x == 0 {
			post = -1 // literal zero stores
		}
		delta := core.Delta(s, x)
		cycles, st, err := runApp(app, apps.SizeBench, p.Cfg, p.Cfg.Threads, sched.Options{
			Algo:           core.AlgoFFTHE,
			Delta:          delta,
			PostTakeStores: post,
			Seed:           1,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label:  fmt.Sprintf("x=%d", x),
			Cycles: cycles,
			Steals: st.Steals,
			Aborts: st.Aborts,
			Detail: fmt.Sprintf("delta=%d", delta),
		})
	}
	normalize(rows)
	return rows, nil
}

// AblationDeltaCliff fixes the workload and sweeps δ for FF-THE, exposing
// the cliff where the queue's typical depth drops below δ and stealing
// shuts off — the isolated mechanism behind Figure 10's FF-THE collapse.
func AblationDeltaCliff(p Platform) ([]AblationRow, error) {
	app, _ := apps.ByName("Fib")
	rows := []AblationRow{}
	for _, delta := range []int{1, 2, 4, 8, 12, 16, 24, 32} {
		cycles, st, err := runApp(app, apps.SizeBench, p.Cfg, p.Cfg.Threads, sched.Options{
			Algo:  core.AlgoFFTHE,
			Delta: delta,
			Seed:  1,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label:  fmt.Sprintf("delta=%d", delta),
			Cycles: cycles,
			Steals: st.Steals,
			Aborts: st.Aborts,
		})
	}
	normalize(rows)
	return rows, nil
}

// AblationDrainLatency sweeps the cost model's drain latency and measures
// the single-threaded fence overhead on Fib: the fence penalty is the
// drain latency made visible, so overhead must grow with it. This
// validates that the reproduction's Figure 1 is driven by the modelled
// mechanism rather than incidental constants.
func AblationDrainLatency() ([]AblationRow, error) {
	app, _ := apps.ByName("Fib")
	rows := []AblationRow{}
	for _, d := range []uint64{4, 8, 12, 24, 48} {
		cfg := tso.Haswell()
		cfg.Cost = tso.DefaultCost
		cfg.Cost.DrainCycles = d
		fenced, _, err := runApp(app, apps.SizeBench, cfg, 1, sched.Options{Algo: core.AlgoTHE, Seed: 1})
		if err != nil {
			return nil, err
		}
		free, _, err := runApp(app, apps.SizeBench, cfg, 1, sched.Options{
			Algo: core.AlgoFFTHE, Delta: core.DefaultDelta(cfg.ObservableBound()), Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label:   fmt.Sprintf("drain=%d", d),
			Cycles:  fenced,
			Detail:  fmt.Sprintf("fence-free %d cycles", free),
			Percent: 100 * float64(free) / float64(fenced),
		})
	}
	return rows, nil
}

// AblationStealBackoff sweeps the scheduler's failed-steal backoff on a
// wide flat task graph where thieves hammer one victim.
func AblationStealBackoff(p Platform) ([]AblationRow, error) {
	rows := []AblationRow{}
	m := tso.NewTimedMachine(p.Cfg)
	defer m.Close()
	for _, backoff := range []uint64{1, 4, 16, 64} {
		m.Reset()
		pool := sched.NewPool(m, sched.Options{Algo: core.AlgoTHE, StealBackoff: backoff, Seed: 1})
		st, err := pool.Run(func(w *sched.Worker) {
			for i := 0; i < 300; i++ {
				w.Spawn(func(w *sched.Worker) { w.Work(120) })
			}
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label:  fmt.Sprintf("backoff=%d", backoff),
			Cycles: st.Elapsed,
			Steals: st.Steals,
		})
	}
	normalize(rows)
	return rows, nil
}

// AblationWorkerScaling measures makespan versus worker count for a fenced
// and a fence-free queue on Fib. Not a paper figure (the paper fixes the
// thread count at the machine's core count), but it checks that the
// runtime actually scales and that the fence-free advantage persists
// across parallelism levels.
func AblationWorkerScaling(algo core.Algo, delta int, workers []int) ([]AblationRow, error) {
	app, _ := apps.ByName("Fib")
	rows := []AblationRow{}
	for _, n := range workers {
		cfg := tso.Config{Threads: n, BufferSize: 13, DrainBuffer: true}
		cycles, st, err := runApp(app, apps.SizeBench, cfg, n, sched.Options{
			Algo: algo, Delta: delta, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label:  fmt.Sprintf("%s w=%d", algo, n),
			Cycles: cycles,
			Steals: st.Steals,
		})
	}
	normalize(rows)
	return rows, nil
}

func normalize(rows []AblationRow) {
	if len(rows) == 0 || rows[0].Cycles == 0 {
		return
	}
	base := float64(rows[0].Cycles)
	for i := range rows {
		rows[i].Percent = 100 * float64(rows[i].Cycles) / base
	}
}

// RenderAblation writes one ablation table.
func RenderAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w)
	body := make([][]string, len(rows))
	for i, r := range rows {
		body[i] = []string{
			r.Label,
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%.1f%%", r.Percent),
			fmt.Sprintf("%d", r.Steals),
			fmt.Sprintf("%d", r.Aborts),
			r.Detail,
		}
	}
	WriteTable(w, []string{"config", "cycles", "normalized", "steals", "aborts", ""}, body)
	fmt.Fprintln(w)
}
