package expt

import (
	"context"
	"fmt"
	"io"

	"repro/internal/litmusdsl"
	"repro/internal/runner"
)

// MatrixRow is one classic litmus test's verdict from the memory-model
// validation matrix (litmusdsl.Library run to completion).
type MatrixRow struct {
	// Name is the test's name (SB, MP, ...).
	Name string
	// Expect is the literature verdict the test declares.
	Expect string
	// Verdict is what exhaustive exploration concluded.
	Verdict string
	// Schedules is the number of schedules explored.
	Schedules int
	// Complete reports whether exploration covered every schedule.
	Complete bool
	// Ok reports whether Verdict matches Expect.
	Ok bool
}

// LitmusMatrix runs every test in litmusdsl.Library to its verdict, one
// runner job per test (nil r: serial). Each exploration owns its machine
// state, so rows are identical at any worker count and returned in
// library order.
func LitmusMatrix(ctx context.Context, r *runner.Runner) ([]MatrixRow, error) {
	return litmusMatrix(ctx, r, litmusdsl.Library)
}

// litmusMatrix is LitmusMatrix over an explicit test list (the test suite
// passes a reduced library).
func litmusMatrix(ctx context.Context, r *runner.Runner, srcs []string) ([]MatrixRow, error) {
	name := func(i int, _ string) string { return fmt.Sprintf("litmusdsl[%d]", i) }
	return runner.Map(ctx, r, srcs, name, func(_ context.Context, src string) (MatrixRow, error) {
		tst, err := litmusdsl.Parse(src)
		if err != nil {
			return MatrixRow{}, err
		}
		res, err := litmusdsl.Run(tst, litmusdsl.RunOptions{})
		if err != nil {
			return MatrixRow{}, fmt.Errorf("%s: %w", tst.Name, err)
		}
		return MatrixRow{
			Name:      tst.Name,
			Expect:    tst.Expect,
			Verdict:   res.Verdict,
			Schedules: res.Schedules,
			Complete:  res.Complete,
			Ok:        res.Ok(),
		}, nil
	})
}

// RenderLitmusMatrix writes the validation matrix in the one-line-per-test
// format cmd/reproduce prints.
func RenderLitmusMatrix(w io.Writer, rows []MatrixRow) {
	for _, row := range rows {
		ok := "ok  "
		if !row.Ok {
			ok = "FAIL"
		}
		fmt.Fprintf(w, "%s %-14s %s (expect %s, %d schedules, complete=%v)\n",
			ok, row.Name, row.Verdict, row.Expect, row.Schedules, row.Complete)
	}
}
