package stats

import (
	"encoding/json"
	"fmt"
	"math/bits"
)

// histSubBits sets the histogram's resolution: 1<<histSubBits sub-buckets
// per power of two, i.e. a relative quantile error below 1/2^histSubBits
// (12.5% at 3). Values below 1<<histSubBits are recorded exactly.
const histSubBits = 3

// histBuckets is the fixed bucket count for 64-bit values under the
// scheme in bucketOf: 1<<histSubBits exact small buckets plus
// (64-histSubBits) octaves of 1<<histSubBits sub-buckets each.
const histBuckets = (64 - histSubBits + 1) << histSubBits

// Histogram is a streaming log-bucketed histogram of uint64 samples —
// the latency accumulator of the serving benchmarks (internal/load).
// Memory is a fixed 496-bucket array regardless of sample count, Record
// is O(1) with no allocation, and the bucketing is a pure function of
// the value, so histograms from independent runs Merge bucket-by-bucket
// (pooling seeds or shards) without rebinning. Quantiles come back as
// bucket upper bounds: conservative (never below the true quantile) and
// within 2^-histSubBits relative error. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    uint64
	max    uint64
}

// bucketOf maps a value to its bucket: values below 1<<histSubBits map
// to themselves; larger values map to (octave, top histSubBits mantissa
// bits), HDR-histogram style. The mapping is monotone and contiguous.
func bucketOf(v uint64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= histSubBits
	sub := (v >> (uint(exp) - histSubBits)) & (1<<histSubBits - 1)
	return (exp-histSubBits+1)<<histSubBits + int(sub)
}

// bucketMax returns the largest value mapping to bucket b — the value
// reported for quantiles landing in b.
func bucketMax(b int) uint64 {
	if b < 1<<histSubBits {
		return uint64(b)
	}
	exp := uint(b>>histSubBits) + histSubBits - 1
	sub := uint64(b & (1<<histSubBits - 1))
	return (1<<histSubBits+sub+1)<<(exp-histSubBits) - 1
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the exact arithmetic mean of the samples (0 when empty);
// the sum is tracked outside the buckets, so no bucketing error.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// MaxValue returns the exact largest recorded sample (0 when empty).
func (h *Histogram) MaxValue() uint64 { return h.max }

// Quantile returns an upper bound for the q-th quantile (q in [0, 1]):
// the upper edge of the bucket holding the ceil(q·n)-th smallest sample,
// except the exact maximum for any q landing on the last sample. It
// panics on an empty histogram or q outside [0, 1].
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		panic("stats: quantile of empty histogram")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range [0,1]", q))
	}
	rank := uint64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			if seen == h.n && c > 0 && b == h.lastBucket() {
				return h.max
			}
			return bucketMax(b)
		}
	}
	return h.max
}

// lastBucket returns the highest non-empty bucket index (-1 when empty).
func (h *Histogram) lastBucket() int {
	for b := histBuckets - 1; b >= 0; b-- {
		if h.counts[b] > 0 {
			return b
		}
	}
	return -1
}

// Merge adds other's samples into h. Buckets are value-determined and
// identical across instances, so merging then querying is equivalent to
// recording both sample streams into one histogram.
func (h *Histogram) Merge(other *Histogram) {
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// histogramJSON is the wire form: the dense count array is run-length
// trimmed to the sparse non-zero entries to keep cached sweep results
// small.
type histogramJSON struct {
	// Buckets maps bucket index to count, sparse.
	Buckets map[int]uint64 `json:"buckets,omitempty"`
	// N is the total sample count.
	N uint64 `json:"n"`
	// Sum is the exact sample sum.
	Sum uint64 `json:"sum"`
	// Max is the exact sample maximum.
	Max uint64 `json:"max"`
}

// MarshalJSON implements json.Marshaler with a sparse bucket encoding,
// so histograms survive the runner cache and sweep artifacts byte-for-
// byte (map key order does not matter: decoding is order-insensitive,
// and encoding/json sorts keys for determinism).
func (h *Histogram) MarshalJSON() ([]byte, error) {
	out := histogramJSON{N: h.n, Sum: h.sum, Max: h.max}
	if h.n > 0 {
		out.Buckets = make(map[int]uint64)
		for b, c := range h.counts {
			if c > 0 {
				out.Buckets[b] = c
			}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var in histogramJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*h = Histogram{n: in.N, sum: in.Sum, max: in.Max}
	for b, c := range in.Buckets {
		if b < 0 || b >= histBuckets {
			return fmt.Errorf("stats: histogram bucket %d out of range", b)
		}
		h.counts[b] = c
	}
	return nil
}
