package stats

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
)

// TestBucketRoundTrip checks the bucket mapping is monotone, contiguous,
// and that bucketMax is the exact upper edge: bucketOf(bucketMax(b)) == b
// and bucketOf(bucketMax(b)+1) == b+1.
func TestBucketRoundTrip(t *testing.T) {
	for b := 0; b < histBuckets; b++ {
		top := bucketMax(b)
		if got := bucketOf(top); got != b {
			t.Fatalf("bucketOf(bucketMax(%d)=%d) = %d", b, top, got)
		}
		if b+1 < histBuckets {
			if got := bucketOf(top + 1); got != b+1 {
				t.Fatalf("bucketOf(%d) = %d, want %d", top+1, got, b+1)
			}
		}
	}
	if got := bucketOf(^uint64(0)); got != histBuckets-1 {
		t.Fatalf("bucketOf(max uint64) = %d, want %d", got, histBuckets-1)
	}
}

// TestHistogramSmallExact checks values below 2^histSubBits are recorded
// and quantiled exactly.
func TestHistogramSmallExact(t *testing.T) {
	var h Histogram
	for v := uint64(0); v < 1<<histSubBits; v++ {
		h.Record(v)
	}
	for v := uint64(0); v < 1<<histSubBits; v++ {
		q := (float64(v) + 1) / float64(1<<histSubBits)
		if got := h.Quantile(q); got != v {
			t.Errorf("Quantile(%v) = %d, want %d", q, got, v)
		}
	}
}

// TestHistogramQuantileBounds draws random samples and checks every
// quantile estimate is an upper bound on the true quantile and within
// the promised 2^-histSubBits relative error.
func TestHistogramQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	samples := make([]uint64, 5000)
	for i := range samples {
		v := uint64(rng.Int63n(1 << uint(4+rng.Intn(30))))
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(q * float64(len(samples)))
		if rank < 1 {
			rank = 1
		}
		exact := samples[rank-1]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%v) = %d below exact %d", q, got, exact)
		}
		// Upper bound within one bucket: relative error < 2^-histSubBits.
		limit := exact + exact>>histSubBits + 1
		if got > limit {
			t.Errorf("Quantile(%v) = %d, exact %d: error beyond bucket width (limit %d)", q, got, exact, limit)
		}
	}
	if h.Quantile(1) != h.MaxValue() {
		t.Errorf("Quantile(1) = %d, want exact max %d", h.Quantile(1), h.MaxValue())
	}
	mean := h.Mean()
	var sum float64
	for _, v := range samples {
		sum += float64(v)
	}
	if want := sum / float64(len(samples)); mean != want {
		t.Errorf("Mean = %v, want exact %v", mean, want)
	}
}

// TestHistogramMerge checks merging two histograms equals recording the
// concatenated stream into one.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, all Histogram
	for i := 0; i < 1000; i++ {
		v := uint64(rng.Int63n(1 << 20))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(&b)
	if a != all {
		t.Fatal("merged histogram differs from single-stream histogram")
	}
}

// TestHistogramJSONRoundTrip checks the sparse JSON codec reproduces the
// histogram exactly, including through a Merge after decoding.
func TestHistogramJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var h Histogram
	for i := 0; i < 500; i++ {
		h.Record(uint64(rng.Int63n(1 << 24)))
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatal("JSON round trip changed the histogram")
	}
	var empty Histogram
	data, err = json.Marshal(&empty)
	if err != nil {
		t.Fatal(err)
	}
	var backEmpty Histogram
	if err := json.Unmarshal(data, &backEmpty); err != nil {
		t.Fatal(err)
	}
	if backEmpty != empty {
		t.Fatal("empty histogram JSON round trip mismatch")
	}
	if err := json.Unmarshal([]byte(`{"buckets":{"9999":1},"n":1}`), &back); err == nil {
		t.Fatal("out-of-range bucket index accepted")
	}
}
