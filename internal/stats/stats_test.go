package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 5, 5, 5}, 5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v want %v", c.in, got, c.want)
		}
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("p0 = %v want 10", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("p100 = %v want 50", got)
	}
	if got := Percentile(xs, 50); got != 30 {
		t.Errorf("p50 = %v want 30", got)
	}
	// Interpolation: p25 of 5 elements = rank 1.0 exactly -> 20.
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("p25 = %v want 20", got)
	}
	// p10 = rank 0.4 -> between 10 and 20.
	if got := Percentile(xs, 10); got != 14 {
		t.Errorf("p10 = %v want 14", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"median-empty":     func() { Median(nil) },
		"percentile-range": func() { Percentile([]float64{1}, 101) },
		"percentile-neg":   func() { Percentile([]float64{1}, -1) },
		"mean-empty":       func() { Mean(nil) },
		"geomean-empty":    func() { GeoMean(nil) },
		"geomean-zero":     func() { GeoMean([]float64{1, 0}) },
		"geomean-negative": func() { GeoMean([]float64{1, -2}) },
		"min-empty":        func() { Min(nil) },
		"max-empty":        func() { Max(nil) },
		"summary-empty":    func() { Summarize(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMeanGeoMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("mean = %v want 4", got)
	}
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-12 {
		t.Errorf("geomean = %v want 10", got)
	}
	if got := GeoMean([]float64{7}); got != 7 {
		t.Errorf("geomean single = %v want 7", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Min(xs); got != -1 {
		t.Errorf("min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("max = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || s.Min != 1 || s.Max != 10 || s.Median != 5.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P10 >= s.Median || s.Median >= s.P90 {
		t.Fatalf("percentile ordering broken: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

// Properties: percentiles are monotone in p, bounded by min/max, and the
// geometric mean never exceeds the arithmetic mean (AM-GM).
func TestQuickProperties(t *testing.T) {
	gen := func(seed int64) []float64 {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(40))
		for i := range xs {
			xs[i] = r.Float64()*1000 + 0.001
		}
		return xs
	}
	f := func(seed int64, pRaw uint8, qRaw uint8) bool {
		xs := gen(seed)
		p := float64(pRaw) / 255 * 100
		q := float64(qRaw) / 255 * 100
		if p > q {
			p, q = q, p
		}
		lo, hi := Percentile(xs, p), Percentile(xs, q)
		if lo > hi {
			return false
		}
		if lo < Min(xs) || hi > Max(xs) {
			return false
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPercentileMatchesSortRank cross-checks against a direct definition
// for exact-rank percentiles.
func TestPercentileMatchesSortRank(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	xs := make([]float64, 11) // 11 points: p0,p10,...,p100 are exact ranks
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i := 0; i <= 10; i++ {
		want := sorted[i]
		if got := Percentile(xs, float64(i*10)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("p%d = %v want %v", i*10, got, want)
		}
	}
}
