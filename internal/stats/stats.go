// Package stats provides the small set of summary statistics used by the
// experiment harnesses: median, arbitrary percentiles, mean, and geometric
// mean. The paper reports medians with 10th/90th percentile error bars
// (§8 "Methodology") and geometric-mean normalized run times (Figure 10),
// so those are the primitives offered here.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs. It panics if xs is empty.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics if xs is empty or p is
// outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs. It panics if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// it panics otherwise. The paper's "Geo mean" column in Figure 10 is the
// geometric mean of per-benchmark normalized run times.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geomean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the minimum of xs. It panics if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the statistics the harnesses report for a sample of runs.
type Summary struct {
	N      int
	Median float64
	P10    float64
	P90    float64
	Mean   float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. It panics if xs is empty.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Median: Median(xs),
		P10:    Percentile(xs, 10),
		P90:    Percentile(xs, 90),
		Mean:   Mean(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d median=%.2f p10=%.2f p90=%.2f", s.N, s.Median, s.P10, s.P90)
}
