// Package load is the serving-regime workload layer: an open-loop
// request generator over the timed machine and the work-stealing
// scheduler, measuring tail latency instead of makespan.
//
// The paper's evaluation (§8) is throughput-shaped: a fixed task DAG,
// makespan as the metric. A server runs the other regime — requests
// arrive on their own clock whether or not the runtime keeps up, and
// the metric is the latency distribution, dominated by its tail. The
// generator here is open-loop for exactly that reason: arrival times
// are drawn up front from the arrival process and a request's latency
// is measured from its *scheduled* arrival, so when the runtime falls
// behind, the backlog shows up as growing latency rather than being
// silently absorbed by a slowed-down generator (the coordinated-
// omission mistake of closed-loop load generators).
//
// The model is a network thread: worker 0 runs a dispatcher task that
// sleeps (Worker.Work) until each arrival and Spawns the request onto
// its own queue. Every request therefore enters the system at one
// queue, and the only mechanism spreading it across cores is work
// stealing — which is what makes the steal path a serving-latency
// concern and the scheduler's victim-selection and batching knobs
// (sched.Options.Victim, sched.Options.BatchSteal) worth measuring.
// Requests are Cilk-style fork/join trees: a root costing RootWork
// forks Fanout leaves costing Grain each, and the join continuation
// stamps the completion time, playing the role of the reply write.
// All timestamps are virtual cycles from sched.Worker.Now.
package load

import (
	"fmt"
	"math/rand"

	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tso"
)

// Workload describes one open-loop serving run.
type Workload struct {
	// Requests is the number of requests to dispatch (>= 1).
	Requests int
	// MeanGap is the mean inter-arrival gap in virtual cycles; arrivals
	// are Poisson (exponential gaps). The offered rate is 1/MeanGap
	// regardless of Burst.
	MeanGap float64
	// Burst groups arrivals: every Burst consecutive requests share one
	// arrival instant, with the gaps between instants scaled by Burst so
	// the mean rate is unchanged. 0 or 1 means no bursting.
	Burst int
	// Fanout is the number of parallel leaf tasks a request forks; 0
	// means the request is a single sequential task.
	Fanout int
	// Grain is the computation per leaf in cycles; with Fanout == 0 it
	// is the sequential request's computation instead.
	Grain uint64
	// RootWork is the sequential work a request does before forking
	// (parsing, routing) in cycles.
	RootWork uint64
	// Seed drives the arrival process. The same (Workload, machine
	// config, scheduler options) triple reproduces a run exactly.
	Seed int64
}

// withDefaults normalizes the degenerate field encodings.
func (wl Workload) withDefaults() Workload {
	if wl.Burst < 1 {
		wl.Burst = 1
	}
	return wl
}

// arrivals precomputes the open-loop arrival timetable: Poisson group
// instants (first group at 0), Burst requests per group.
func (wl Workload) arrivals() []uint64 {
	rng := rand.New(rand.NewSource(wl.Seed))
	out := make([]uint64, wl.Requests)
	var at float64
	for i := 0; i < wl.Requests; i += wl.Burst {
		if i > 0 {
			at += rng.ExpFloat64() * wl.MeanGap * float64(wl.Burst)
		}
		for j := i; j < i+wl.Burst && j < wl.Requests; j++ {
			out[j] = uint64(at)
		}
	}
	return out
}

// Result is one serving run's measurement.
type Result struct {
	// Requests echoes the workload size.
	Requests int
	// Hist is the request-latency histogram in virtual cycles.
	Hist *stats.Histogram
	// P50, P99 and P999 are latency quantiles from Hist (conservative
	// upper bounds, see stats.Histogram.Quantile); Max is exact.
	P50, P99, P999, Max uint64
	// Mean is the exact mean latency.
	Mean float64
	// Sched carries the scheduler's counters for the run.
	Sched sched.Stats
	// StealsPerReq is successful steal visits per request — the
	// steal-path pressure the knobs aim at.
	StealsPerReq float64
	// StolenPerReq is tasks moved between queues per request (differs
	// from StealsPerReq only under batching).
	StolenPerReq float64
	// AbortsPerReq is fence-free steal aborts per request.
	AbortsPerReq float64
	// DupsPerReq is duplicate task executions per request — the relaxed
	// queues' cost model: a redelivered request re-runs its body
	// (burning RootWork again) before the first-completion filter drops
	// the repeat measurement. Always 0 for exactly-once algorithms.
	DupsPerReq float64
	// Elapsed is the virtual-cycle makespan of the whole run.
	Elapsed uint64
}

// Run executes one open-loop serving run of wl on a fresh timed machine
// built from cfg, under the scheduler options opt. The queue contract is
// checked by capability, not by name: fork/join requests (Fanout > 0)
// require an exactly-once algorithm, because a duplicate delivery would
// fire the join early (sched.Worker.Fork documents the same
// restriction). Sequential requests (Fanout == 0) run on any algorithm;
// a relaxed queue may redeliver a request, which re-executes its body —
// the duplication cost the sweep measures as DupsPerReq — while the
// latency histogram counts only the first completion.
func Run(cfg tso.Config, opt sched.Options, wl Workload) (Result, error) {
	wl = wl.withDefaults()
	if wl.Requests < 1 {
		return Result{}, fmt.Errorf("load: workload needs at least 1 request, got %d", wl.Requests)
	}
	if wl.Fanout > 0 && !opt.Algo.ExactlyOnce() {
		return Result{}, fmt.Errorf("load: %s may duplicate deliveries; fork/join requests (fanout %d) need an exact queue", opt.Algo, wl.Fanout)
	}
	m := tso.NewTimedMachine(cfg)
	defer m.Close()
	pool := sched.NewPool(m, opt)

	arr := wl.arrivals()
	hist := &stats.Histogram{}
	// record stamps request i's first completion; a redelivered request
	// (relaxed queues, Fanout == 0) re-runs its body but must not count
	// twice. Task bodies run with the machine's one-thread-at-a-time
	// guarantee, so the shared state needs no locking.
	done := make([]bool, wl.Requests)
	record := func(w *sched.Worker, i int) {
		if done[i] {
			return
		}
		done[i] = true
		var lat uint64
		if now := w.Now(); now > arr[i] {
			lat = now - arr[i]
		}
		hist.Record(lat)
	}
	request := func(i int) sched.TaskFunc {
		return func(w *sched.Worker) {
			if wl.RootWork > 0 {
				w.Work(wl.RootWork)
			}
			if wl.Fanout == 0 {
				if wl.Grain > 0 {
					w.Work(wl.Grain)
				}
				record(w, i)
				return
			}
			leaves := make([]sched.TaskFunc, wl.Fanout)
			for j := range leaves {
				leaves[j] = func(w *sched.Worker) { w.Work(wl.Grain) }
			}
			w.Fork(func(w *sched.Worker) { record(w, i) }, leaves...)
		}
	}
	dispatcher := func(w *sched.Worker) {
		for i := range arr {
			if now := w.Now(); now < arr[i] {
				w.Work(arr[i] - now) // idle until the next scheduled arrival
			}
			w.Spawn(request(i))
		}
	}

	st, err := pool.Run(dispatcher)
	if err != nil {
		return Result{}, fmt.Errorf("load: %s: %w", opt.Algo, err)
	}
	if got := hist.Count(); got != uint64(wl.Requests) {
		return Result{}, fmt.Errorf("load: %d of %d requests completed", got, wl.Requests)
	}
	return NewResult(wl.Requests, hist, st), nil
}

// NewResult assembles a Result from a latency histogram and scheduler
// counters, deriving the quantiles and per-request rates; the sweep
// uses it to re-derive merged results across seeds.
func NewResult(requests int, hist *stats.Histogram, st sched.Stats) Result {
	n := float64(requests)
	return Result{
		Requests:     requests,
		Hist:         hist,
		P50:          hist.Quantile(0.50),
		P99:          hist.Quantile(0.99),
		P999:         hist.Quantile(0.999),
		Max:          hist.MaxValue(),
		Mean:         hist.Mean(),
		Sched:        st,
		StealsPerReq: float64(st.Steals) / n,
		StolenPerReq: float64(st.StolenTasks) / n,
		AbortsPerReq: float64(st.Aborts) / n,
		DupsPerReq:   float64(st.Duplicates) / n,
		Elapsed:      st.Elapsed,
	}
}
