package load

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the BENCH_sched.json schema: the sweep's rows plus the
// request volume behind each cell, so a reader can judge how much data
// is under the quantiles.
type Report struct {
	// Requests is requests per cell per seed; Seeds the merged runs.
	Requests int `json:"requests"`
	// Seeds is how many seeded runs each row merges.
	Seeds int `json:"seeds"`
	// Rows are the sweep cells in sweep order.
	Rows []Row `json:"rows"`
}

// WriteReport writes the report as indented JSON with a trailing
// newline — the exact bytes of results/BENCH_sched.json.
func WriteReport(w io.Writer, r Report) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}
