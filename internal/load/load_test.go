package load

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/tso"
)

// testCfg is a small timed platform for the unit tests.
func testCfg() tso.Config {
	return tso.Config{Threads: 4, BufferSize: 11, DrainBuffer: true}
}

// testWL is a modest serving workload completing in well under a second.
func testWL() Workload {
	return Workload{Requests: 64, MeanGap: 300, Burst: 2, Fanout: 4, Grain: 128, RootWork: 16, Seed: 1}
}

// TestArrivalsOpenLoop checks the arrival timetable: monotone, bursts of
// exactly Burst sharing an instant, and a mean gap near MeanGap
// independent of Burst.
func TestArrivalsOpenLoop(t *testing.T) {
	for _, burst := range []int{1, 4} {
		wl := Workload{Requests: 4000, MeanGap: 100, Burst: burst, Seed: 7}.withDefaults()
		arr := wl.arrivals()
		if arr[0] != 0 {
			t.Fatalf("burst=%d: first arrival at %d, want 0", burst, arr[0])
		}
		for i := 1; i < len(arr); i++ {
			if arr[i] < arr[i-1] {
				t.Fatalf("burst=%d: arrivals not monotone at %d", burst, i)
			}
			sameGroup := i%burst != 0
			if sameGroup && arr[i] != arr[i-1] {
				t.Fatalf("burst=%d: request %d not co-arriving with its burst", burst, i)
			}
		}
		mean := float64(arr[len(arr)-1]) / float64(len(arr)-1)
		if mean < 80 || mean > 120 {
			t.Errorf("burst=%d: empirical mean gap %.1f, want ~100", burst, mean)
		}
	}
}

// TestRunDeterministic checks a serving run is a pure function of its
// (config, options, workload) triple.
func TestRunDeterministic(t *testing.T) {
	opt := sched.Options{Algo: core.AlgoFFCL, Delta: 6, Victim: sched.VictimPowerOfTwo, BatchSteal: 4, Seed: 3}
	a, err := Run(testCfg(), opt, testWL())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testCfg(), opt, testWL())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs differ:\n%+v\n%+v", a, b)
	}
	if a.Requests != 64 || a.Hist.Count() != 64 {
		t.Fatalf("run measured %d latencies for %d requests", a.Hist.Count(), a.Requests)
	}
	if a.P50 > a.P99 || a.P99 > a.P999 || a.P999 > a.Max {
		t.Fatalf("quantiles not monotone: %+v", a)
	}
}

// TestRunCapabilityGate is the regression test for the queue-contract
// check: Run must gate on the ExactlyOnce capability predicate, not on a
// hard-coded algorithm list, so every algorithm in the registry —
// including ones added later — is classified by what it guarantees.
// Fork/join workloads (Fanout > 0) reject exactly the non-exact
// algorithms; sequential workloads (Fanout == 0) accept everything.
func TestRunCapabilityGate(t *testing.T) {
	forked := testWL()
	seq := testWL()
	seq.Fanout = 0
	for _, algo := range core.AllAlgos {
		opt := sched.Options{Algo: algo, Delta: 6, Seed: 3}
		_, err := Run(testCfg(), opt, forked)
		if algo.ExactlyOnce() && err != nil {
			t.Errorf("%v: exact algorithm rejected from fork/join workload: %v", algo, err)
		}
		if !algo.ExactlyOnce() && err == nil {
			t.Errorf("%v: relaxed algorithm accepted for a fork/join workload", algo)
		}
		if _, err := Run(testCfg(), opt, seq); err != nil {
			t.Errorf("%v: sequential workload failed: %v", algo, err)
		}
	}
}

// TestRunSequentialRelaxed pins the relaxed-queue serving semantics: on
// a sequential workload over WS-MULT every request completes and is
// measured exactly once — duplicate deliveries re-execute the body
// (surfacing as DupsPerReq) but never inflate the latency histogram.
func TestRunSequentialRelaxed(t *testing.T) {
	wl := testWL()
	wl.Fanout = 0
	for _, algo := range []core.Algo{core.AlgoWSMult, core.AlgoWSMultRelaxed} {
		res, err := Run(testCfg(), sched.Options{Algo: algo, Seed: 3}, wl)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if got := res.Hist.Count(); got != uint64(wl.Requests) {
			t.Fatalf("%v: %d latencies for %d requests", algo, got, wl.Requests)
		}
		if res.DupsPerReq < 0 {
			t.Fatalf("%v: negative DupsPerReq %v", algo, res.DupsPerReq)
		}
		if res.DupsPerReq > 0 {
			t.Logf("%v: observed %.4f duplicate executions per request", algo, res.DupsPerReq)
		}
	}
}

// TestBatchKnobInertWithoutSupport checks the paper-fidelity fallback:
// on an algorithm without BatchStealer support (FF-THE), turning the
// batch knob changes nothing — the whole Result is identical.
func TestBatchKnobInertWithoutSupport(t *testing.T) {
	base := sched.Options{Algo: core.AlgoFFTHE, Delta: 6, Seed: 5}
	batched := base
	batched.BatchSteal = 8
	a, err := Run(testCfg(), base, testWL())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testCfg(), batched, testWL())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("batch knob changed an FF-THE run:\n%+v\n%+v", a, b)
	}
}

// TestBatchingReducesStealVisits checks the batched-steal win on a
// saturated Chase-Lev run: strictly fewer steal visits per request than
// single steal, with the same number of requests completing.
func TestBatchingReducesStealVisits(t *testing.T) {
	wl := testWL()
	wl.MeanGap = 50 // saturate: deep backlog on worker 0's queue
	single := sched.Options{Algo: core.AlgoChaseLev, Seed: 5}
	batched := single
	batched.BatchSteal = 8
	a, err := Run(testCfg(), single, wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testCfg(), batched, wl)
	if err != nil {
		t.Fatal(err)
	}
	if b.StealsPerReq >= a.StealsPerReq {
		t.Errorf("batched steals/req %.2f not below single %.2f", b.StealsPerReq, a.StealsPerReq)
	}
	if b.Sched.Workers != nil {
		t.Errorf("worker metrics populated without Config.Metrics")
	}
}

// TestVictimPoliciesRun checks every victim policy completes the
// workload on every exact algorithm, and that the policy changes the
// measured schedule (different steal traffic) on at least one of them.
func TestVictimPoliciesRun(t *testing.T) {
	wl := testWL()
	changed := false
	for _, ac := range []AlgoCase{{Algo: core.AlgoTHE}, {Algo: core.AlgoChaseLev}, {Algo: core.AlgoFFCL, Delta: 6}} {
		var base Result
		for i, v := range sched.VictimPolicies {
			res, err := Run(testCfg(), sched.Options{Algo: ac.Algo, Delta: ac.Delta, Victim: v, Seed: 9}, wl)
			if err != nil {
				t.Fatalf("%s/%s: %v", ac.Algo, v, err)
			}
			if i == 0 {
				base = res
			} else if res.Sched.Steals != base.Sched.Steals || res.Elapsed != base.Elapsed {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("no victim policy changed any schedule; the knob is inert")
	}
}

// TestSweepCacheResume checks the sweep is deterministic and that a
// second pass over a warm cache returns identical rows (checkpoint/
// resume at cell granularity).
func TestSweepCacheResume(t *testing.T) {
	sc := SweepConfig{
		Cfg:      testCfg(),
		Requests: 24, Fanout: 3, Burst: 2, RootWork: 8,
		Gaps:   []float64{150},
		Grains: []uint64{64},
		Algos:  []AlgoCase{{Algo: core.AlgoChaseLev}, {Algo: core.AlgoFFCL, Delta: 6}},
		Knobs: []Knob{
			{Name: "base", Victim: sched.VictimUniform, Batch: 1},
			{Name: "batch4", Victim: sched.VictimUniform, Batch: 4},
		},
		Seeds: 2,
	}
	cache := &runner.Cache{Dir: t.TempDir(), Version: "test"}
	cold, err := Sweep(context.Background(), runner.New(2), cache, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != 4 {
		t.Fatalf("sweep returned %d rows, want 4", len(cold))
	}
	warm, err := Sweep(context.Background(), runner.New(2), cache, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm-cache sweep differs:\ncold %+v\nwarm %+v", cold, warm)
	}
	serial, err := Sweep(context.Background(), nil, nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, serial) {
		t.Fatalf("parallel sweep differs from serial:\npar %+v\nser %+v", cold, serial)
	}
	keys := map[string]bool{}
	for _, r := range cold {
		if keys[r.Key()] {
			t.Fatalf("duplicate row key %q", r.Key())
		}
		keys[r.Key()] = true
	}
}
