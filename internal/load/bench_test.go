package load

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
)

// TestBenchSched runs the canonical serving sweep (ReferenceSweep): the
// open-loop latency workload over the algorithm × scheduler-knob ×
// arrival-rate × grain cross product. It only runs when BENCH_SCHED_OUT
// names an output file, where it writes the Report JSON (CI uploads it
// as the BENCH_sched.json artifact). The checked-in copy under results/
// doubles as a regression gate: every quantity is a deterministic
// function of the simulated machine, so a p99 or steals-per-request
// more than 25% above its reference value fails the bench.
func TestBenchSched(t *testing.T) {
	out := os.Getenv("BENCH_SCHED_OUT")
	if out == "" {
		t.Skip("set BENCH_SCHED_OUT=path to run the serving-scheduler bench")
	}

	sc := ReferenceSweep()
	start := time.Now()
	rows, err := Sweep(context.Background(), runner.New(0), nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	// The multiplicity companion sweep (sequential requests, relaxed
	// queues legal) merges into the same report; Fanout in Row.Key keeps
	// the two grids from colliding.
	mrows, err := Sweep(context.Background(), runner.New(0), nil, ReferenceMultSweep())
	if err != nil {
		t.Fatal(err)
	}
	rows = append(rows, mrows...)
	t.Logf("%d cells in %v", len(rows), time.Since(start).Round(time.Millisecond))

	rep := Report{Requests: sc.Requests, Seeds: sc.Seeds, Rows: rows}
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Paper-fidelity invariant, asserted on fresh data rather than the
	// reference: on an algorithm without batch support (the THE family)
	// the batch knob must be completely inert — identical measurements,
	// not merely close ones.
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Key()] = r
	}
	for _, r := range rows {
		if r.Knob != "batch8" || r.Algo != "THE" && r.Algo != "FF-THE" {
			continue
		}
		base := r
		base.Knob, base.Victim, base.Batch = "base", "uniform", 1
		b, ok := byKey[base.Key()]
		if !ok {
			t.Fatalf("no base row for %s", r.Key())
		}
		b.Knob, b.Victim, b.Batch = r.Knob, r.Victim, r.Batch
		if b != r {
			t.Errorf("batch knob changed a non-batchable run:\nbase  %+v\nbatch %+v", byKey[base.Key()], r)
		}
	}
	// And batching must actually batch where it is supported: on the
	// Chase-Lev family some cell moves more tasks than it makes visits.
	batchedWorks := false
	for _, r := range rows {
		if r.Batch > 1 && (r.Algo == "Chase-Lev" || r.Algo == "FF-CL") && r.StolenPerReq > r.StealsPerReq {
			batchedWorks = true
		}
	}
	if !batchedWorks {
		t.Error("no Chase-Lev-family cell ever took more than one task per steal visit")
	}
	// The duplication cost model: exactly-once rows price duplication at
	// zero everywhere; only the relaxed rows may pay DupsPerReq > 0.
	for _, r := range rows {
		algo, ok := core.ParseAlgo(r.Algo)
		if !ok {
			t.Fatalf("row names unknown algorithm %q", r.Algo)
		}
		if algo.ExactlyOnce() && r.DupsPerReq != 0 {
			t.Errorf("%s: exact queue with dups/request %v", r.Key(), r.DupsPerReq)
		}
	}

	// Regression gate against the checked-in reference.
	ref, err := os.ReadFile("../../results/BENCH_sched.json")
	if err != nil {
		t.Fatalf("no checked-in reference to gate against: %v", err)
	}
	var refRep Report
	if err := json.Unmarshal(ref, &refRep); err != nil {
		t.Fatalf("results/BENCH_sched.json: %v", err)
	}
	refRows := map[string]Row{}
	for _, r := range refRep.Rows {
		refRows[r.Key()] = r
	}
	for _, r := range rows {
		want, ok := refRows[r.Key()]
		if !ok {
			t.Errorf("reference BENCH_sched.json lacks row %q; regenerate it", r.Key())
			continue
		}
		if float64(r.P99) > float64(want.P99)*1.25 {
			t.Errorf("%s: p99 regressed >25%%: %d cycles, reference %d", r.Key(), r.P99, want.P99)
		}
		// The absolute slack keeps near-zero steal rates from gating on
		// noise-scale shifts (0.01 → 0.02 is not a regression story).
		if r.StealsPerReq > want.StealsPerReq*1.25+0.1 {
			t.Errorf("%s: steals/request regressed >25%%: %.3f, reference %.3f",
				r.Key(), r.StealsPerReq, want.StealsPerReq)
		}
	}
}
