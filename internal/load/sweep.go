package load

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tso"
)

// AlgoCase is one queue-algorithm column of a sweep.
type AlgoCase struct {
	// Algo is the queue algorithm.
	Algo core.Algo
	// Delta is δ for the fence-free algorithms (ignored otherwise).
	Delta int
}

// Knob is one scheduler-ablation column of a sweep: a named
// (victim policy, batch width) pair.
type Knob struct {
	// Name labels the knob combination in rows and reports.
	Name string
	// Victim is the victim-selection policy.
	Victim sched.VictimPolicy
	// Batch is sched.Options.BatchSteal (<= 1: single steal).
	Batch int
}

// SweepConfig spans a serving sweep: the cross product of arrival rate
// (Gaps) × task grain (Grains) × algorithm (Algos) × scheduler knobs
// (Knobs), each cell averaged over Seeds independent runs.
type SweepConfig struct {
	// Cfg is the simulated platform; every cell runs on a fresh timed
	// machine built from it.
	Cfg tso.Config
	// Requests, Fanout, Burst and RootWork fix the non-swept Workload
	// fields (see Workload).
	Requests, Fanout, Burst int
	// RootWork is the per-request sequential prelude in cycles.
	RootWork uint64
	// Gaps lists the mean inter-arrival gaps to sweep (cycles).
	Gaps []float64
	// Grains lists the per-leaf computation grains to sweep (cycles).
	Grains []uint64
	// Algos lists the queue algorithms to sweep.
	Algos []AlgoCase
	// Knobs lists the scheduler-knob combinations to sweep.
	Knobs []Knob
	// Seeds is how many seeded runs each cell merges (>= 1); run s uses
	// workload seed s+1 and scheduler seed 1000+s.
	Seeds int
}

// Row is one sweep cell's merged measurement, in a flat JSON-friendly
// shape (the BENCH_sched.json schema).
type Row struct {
	Algo   string  `json:"algo"`   // algorithm display name
	Delta  int     `json:"delta"`  // δ for the fence-free algorithms (0 unused)
	Knob   string  `json:"knob"`   // scheduler-knob combination name
	Victim string  `json:"victim"` // victim-selection policy name
	Batch  int     `json:"batch"`  // batch-steal width (<= 1: single)
	Gap    float64 `json:"gap"`    // mean inter-arrival gap, cycles
	Grain  uint64  `json:"grain"`  // per-leaf computation, cycles
	Fanout int     `json:"fanout"` // leaves per request (0: sequential requests)
	P50    uint64  `json:"p50"`    // median latency, cycles (merged seeds)
	P99    uint64  `json:"p99"`    // 99th-percentile latency, cycles
	P999   uint64  `json:"p999"`   // 99.9th-percentile latency, cycles
	Max    uint64  `json:"max"`    // worst latency, cycles (exact)
	Mean   float64 `json:"mean"`   // mean latency, cycles (exact)
	// StealsPerReq is successful steal visits per request.
	StealsPerReq float64 `json:"steals_per_req"`
	// StolenPerReq is tasks moved cross-queue per request.
	StolenPerReq float64 `json:"stolen_per_req"`
	// AbortsPerReq is fence-free steal aborts per request.
	AbortsPerReq float64 `json:"aborts_per_req"`
	// DupsPerReq is duplicate request executions per request — the
	// relaxed queues' duplication cost (always 0 under exact queues).
	DupsPerReq float64 `json:"dups_per_req"`
}

// Key identifies the row's cell within a sweep: the comparison key the
// regression gate joins on. Fanout is part of the key so the fork/join
// reference sweep and the sequential multiplicity sweep can merge into
// one report without colliding.
func (r Row) Key() string {
	return fmt.Sprintf("%s/d%d/%s/f%d/gap%g/grain%d", r.Algo, r.Delta, r.Knob, r.Fanout, r.Gap, r.Grain)
}

// cellKey is the cache key for one sweep cell: everything the cell's
// result depends on. Any change recomputes the cell; unchanged cells
// are served from the cache, which is what gives an interrupted sweep
// checkpoint/resume at cell granularity.
type cellKey struct {
	Cfg                     tso.Config
	Requests, Fanout, Burst int
	RootWork                uint64
	Gap                     float64
	Grain                   uint64
	Algo                    string
	Delta                   int
	Victim                  string
	Batch                   int
	Seeds                   int
}

// cellValue is the cached per-cell aggregate: the merged histogram plus
// summed scheduler counters, from which the Row is re-derived (so the
// cache stays valid if only presentation changes).
type cellValue struct {
	// Hist is the latency histogram merged across the cell's seeds.
	Hist *stats.Histogram `json:"hist"`
	// Sched is the sum of the per-seed scheduler counters.
	Sched sched.Stats `json:"sched"`
}

// cell pairs a key with its position so results keep sweep order.
type cell struct {
	key cellKey
	sc  SweepConfig
}

// Sweep runs the full cross product of sc on r's worker pool, one job
// per cell, caching each cell in cache (nil: no caching). Row order is
// gap-major, then grain, algorithm, knob. A cancelled context returns
// the context error; completed cells stay cached for the next attempt.
func Sweep(ctx context.Context, r *runner.Runner, cache *runner.Cache, sc SweepConfig) ([]Row, error) {
	if sc.Seeds < 1 {
		sc.Seeds = 1
	}
	var cells []cell
	for _, gap := range sc.Gaps {
		for _, grain := range sc.Grains {
			for _, ac := range sc.Algos {
				for _, k := range sc.Knobs {
					delta := ac.Delta
					if !ac.Algo.UsesDelta() {
						delta = 0
					}
					cells = append(cells, cell{sc: sc, key: cellKey{
						Cfg: sc.Cfg, Requests: sc.Requests, Fanout: sc.Fanout,
						Burst: sc.Burst, RootWork: sc.RootWork,
						Gap: gap, Grain: grain,
						Algo: ac.Algo.String(), Delta: delta,
						Victim: k.Victim.String(), Batch: k.Batch,
						Seeds: sc.Seeds,
					}})
				}
			}
		}
	}
	name := func(i int, c cell) string {
		return fmt.Sprintf("serve %s d=%d %s/b%d gap=%g grain=%d",
			c.key.Algo, c.key.Delta, c.key.Victim, c.key.Batch, c.key.Gap, c.key.Grain)
	}
	return runner.Map(ctx, r, cells, name, func(ctx context.Context, c cell) (Row, error) {
		v, _, err := runner.Cached(cache, "serve", c.key, func() (cellValue, error) {
			return runCell(ctx, c.key)
		})
		if err != nil {
			return Row{}, err
		}
		res := NewResult(c.key.Requests*c.key.Seeds, v.Hist, v.Sched)
		return Row{
			Algo: c.key.Algo, Delta: c.key.Delta,
			Knob: knobName(c.sc.Knobs, c.key), Victim: c.key.Victim, Batch: c.key.Batch,
			Gap: c.key.Gap, Grain: c.key.Grain, Fanout: c.key.Fanout,
			P50: res.P50, P99: res.P99, P999: res.P999, Max: res.Max, Mean: res.Mean,
			StealsPerReq: res.StealsPerReq, StolenPerReq: res.StolenPerReq,
			AbortsPerReq: res.AbortsPerReq, DupsPerReq: res.DupsPerReq,
		}, nil
	})
}

// knobName recovers the display name of the key's knob combination.
func knobName(knobs []Knob, k cellKey) string {
	for _, kn := range knobs {
		if kn.Victim.String() == k.Victim && kn.Batch == k.Batch {
			return kn.Name
		}
	}
	return fmt.Sprintf("%s/b%d", k.Victim, k.Batch)
}

// runCell computes one cell: Seeds independent runs, histograms merged
// and scheduler counters summed.
func runCell(ctx context.Context, k cellKey) (cellValue, error) {
	algo, ok := core.ParseAlgo(k.Algo)
	if !ok {
		return cellValue{}, fmt.Errorf("load: unknown algorithm %q", k.Algo)
	}
	victim, ok := sched.ParseVictimPolicy(k.Victim)
	if !ok {
		return cellValue{}, fmt.Errorf("load: unknown victim policy %q", k.Victim)
	}
	agg := cellValue{Hist: &stats.Histogram{}}
	for s := 0; s < k.Seeds; s++ {
		if err := ctx.Err(); err != nil {
			return cellValue{}, err
		}
		res, err := Run(k.Cfg, sched.Options{
			Algo: algo, Delta: k.Delta,
			Victim: victim, BatchSteal: k.Batch,
			Seed: int64(1000 + s),
		}, Workload{
			Requests: k.Requests, MeanGap: k.Gap, Burst: k.Burst,
			Fanout: k.Fanout, Grain: k.Grain, RootWork: k.RootWork,
			Seed: int64(s + 1),
		})
		if err != nil {
			return cellValue{}, err
		}
		agg.Hist.Merge(res.Hist)
		addStats(&agg.Sched, res.Sched)
	}
	return agg, nil
}

// addStats accumulates one run's scheduler counters into the aggregate
// (the derived StolenFrac is re-computed from the sums).
func addStats(dst *sched.Stats, s sched.Stats) {
	dst.Executed += s.Executed
	dst.Duplicates += s.Duplicates
	dst.Spawned += s.Spawned
	dst.Steals += s.Steals
	dst.StolenTasks += s.StolenTasks
	dst.Aborts += s.Aborts
	dst.FailedSteal += s.FailedSteal
	if s.Elapsed > dst.Elapsed {
		dst.Elapsed = s.Elapsed
	}
	if dst.Executed > 0 {
		dst.StolenFrac = float64(dst.StolenTasks) / float64(dst.Executed)
	}
}

// ReferenceSweep is the canonical serving sweep: cmd/servebench's
// default and the configuration behind results/BENCH_sched.json and the
// CI perf-smoke gate. Platform: a scaled Westmere-EX-style machine
// (8 cores, observable bound 12, default δ 6 — see expt.ScaledWestmere
// for the scaling rationale). Workload: 256 requests of 6×grain leaves,
// bursts of 4, at a saturating and a moderate arrival rate.
func ReferenceSweep() SweepConfig {
	cfg := tso.Config{Threads: 8, BufferSize: 11, DrainBuffer: true}
	delta := core.DefaultDelta(cfg.ObservableBound())
	return SweepConfig{
		Cfg:      cfg,
		Requests: 256,
		Fanout:   6,
		Burst:    4,
		RootWork: 32,
		Gaps:     []float64{200, 800},
		Grains:   []uint64{64, 512},
		Algos: []AlgoCase{
			{Algo: core.AlgoTHE},
			{Algo: core.AlgoFFTHE, Delta: delta},
			{Algo: core.AlgoChaseLev},
			{Algo: core.AlgoFFCL, Delta: delta},
		},
		Knobs: []Knob{
			{Name: "base", Victim: sched.VictimUniform, Batch: 1},
			{Name: "batch8", Victim: sched.VictimUniform, Batch: 8},
			{Name: "last", Victim: sched.VictimLastSuccess, Batch: 1},
			{Name: "p2c", Victim: sched.VictimPowerOfTwo, Batch: 1},
		},
		Seeds: 3,
	}
}

// ReferenceMultSweep is the multiplicity-cost companion sweep: the same
// platform serving sequential requests (Fanout 0 — the only shape the
// relaxed queues support, since a duplicated delivery would fire a
// fork/join early). It puts the fully read/write WS-MULT family next to
// the paper's exact queues on identical workloads, so the duplication
// cost of giving up CAS shows up in the same report: DupsPerReq > 0 is
// legal here and priced as re-executed request bodies, while the exact
// rows pin it at 0.
func ReferenceMultSweep() SweepConfig {
	cfg := tso.Config{Threads: 8, BufferSize: 11, DrainBuffer: true}
	delta := core.DefaultDelta(cfg.ObservableBound())
	return SweepConfig{
		Cfg:      cfg,
		Requests: 256,
		Fanout:   0,
		Burst:    4,
		RootWork: 32,
		Gaps:     []float64{200, 800},
		Grains:   []uint64{256},
		Algos: []AlgoCase{
			{Algo: core.AlgoTHE},
			{Algo: core.AlgoChaseLev},
			{Algo: core.AlgoFFCL, Delta: delta},
			{Algo: core.AlgoWSMult},
			{Algo: core.AlgoWSMultRelaxed},
		},
		Knobs: []Knob{
			{Name: "base", Victim: sched.VictimUniform, Batch: 1},
			{Name: "last", Victim: sched.VictimLastSuccess, Batch: 1},
		},
		Seeds: 3,
	}
}
