package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/tso"
)

// Program is a small declarative deque workload — the unit the fuzzing
// harness generates and the corpus files store. One worker thread runs
// WorkerOps against the queue (optionally draining it at the end); each
// entry of Thieves adds a thief thread making that many steal attempts.
// Tasks are numbered 1..Prefill for the prefilled ones and onward for the
// worker's puts, so every task value is unique and multiset accounting in
// the specs is exact.
type Program struct {
	// Algo selects the queue implementation.
	Algo core.Algo `json:"algo"`
	// S is the machine's store-buffer size.
	S int `json:"s"`
	// Stage enables the §7.3 post-retirement drain stage (bound S+1).
	Stage bool `json:"stage"`
	// Delta is the δ parameter for the fence-free variants (ignored by
	// the algorithms that do not use it).
	Delta int `json:"delta"`
	// Capacity is the queue capacity (default 64).
	Capacity int `json:"capacity,omitempty"`
	// Prefill installs tasks 1..Prefill before the run.
	Prefill int `json:"prefill"`
	// WorkerOps is the owner's script: 'P' puts the next task, 'T' takes.
	WorkerOps string `json:"worker_ops"`
	// Thieves holds one steal-attempt budget per thief thread. A thief
	// stops early when a steal reports Empty (Abort may be transient, so
	// it does not stop the loop).
	Thieves []int `json:"thieves"`
	// Drain makes the worker end with a take-until-Empty loop and marks
	// the history ExpectDrained, arming the specs' loss detection.
	Drain bool `json:"drain"`
}

// Config returns the machine configuration the program runs under.
func (p Program) Config() tso.Config {
	return tso.Config{Threads: 1 + len(p.Thieves), BufferSize: p.S, DrainBuffer: p.Stage}
}

// String renders the program compactly for reports.
func (p Program) String() string {
	return fmt.Sprintf("%s S=%d stage=%v delta=%d pre=%d ops=%s thieves=%v drain=%v",
		p.Algo, p.S, p.Stage, p.Delta, p.Prefill, p.WorkerOps, p.Thieves, p.Drain)
}

// Spec returns the specification the program's algorithm must meet.
// For WS-MULT the generic SpecFor answer (Idempotent) is tightened to
// the algorithm's actual claim: per-task multiplicity bounded by the
// number of extracting threads, which the program shape fixes as the
// worker plus its thieves. The relaxed variant keeps the unbounded
// Idempotent contract — its whole point is that no such bound exists.
func (p Program) Spec() Spec {
	if p.Algo == core.AlgoWSMult {
		return Multiplicity{K: 1 + len(p.Thieves)}
	}
	return SpecFor(p.Algo)
}

// Scenario compiles the program into a runnable oracle scenario. The
// returned Build is safe for the exhaustive engine's parallel workers:
// every call constructs a fresh queue and history.
func (p Program) Scenario() Scenario {
	capacity := p.Capacity
	if capacity == 0 {
		capacity = 64
	}
	return Scenario{
		Name:   p.String(),
		Config: p.Config(),
		Build: func(m *tso.Machine) ([]func(tso.Context), *History) {
			h := NewHistory()
			q := Instrument(core.New(p.Algo, m, capacity, p.Delta), h)
			if p.Prefill > 0 {
				vals := make([]uint64, p.Prefill)
				for i := range vals {
					vals[i] = uint64(i + 1)
				}
				q.Prefill(m, vals)
			}
			if p.Drain {
				h.ExpectDrained()
			}
			progs := make([]func(tso.Context), 0, 1+len(p.Thieves))
			progs = append(progs, func(c tso.Context) {
				next := uint64(p.Prefill)
				for _, op := range p.WorkerOps {
					if op == 'P' {
						next++
						q.Put(c, next)
					} else {
						q.Take(c)
					}
				}
				if p.Drain {
					for {
						if _, st := q.Take(c); st == core.Empty {
							break
						}
					}
				}
			})
			for _, attempts := range p.Thieves {
				n := attempts
				progs = append(progs, func(c tso.Context) {
					for k := 0; k < n; k++ {
						if _, st := q.Steal(c); st == core.Empty {
							break
						}
					}
				})
			}
			return progs, h
		},
	}
}

// decode limits: the fuzzers keep programs tiny so sampled or explored
// schedule spaces stay tractable.
const (
	maxFuzzWorkerOps = 5
	maxFuzzThieves   = 2
	maxFuzzAttempts  = 3
	maxFuzzPrefill   = 3
)

// DecodeProgram derives a bounded, soundly-configured Program from raw
// fuzz bytes (nil ok=false when data is too short). Soundness means the
// decoded δ always equals the machine's observable bound and the drain
// stage is only enabled for algorithms whose safety does not depend on δ
// — so a fuzz-found violation is a real bug, not a paper-predicted
// unsound configuration. (The unsound configurations are covered
// deliberately by the seeded corpus instead.)
func DecodeProgram(data []byte) (Program, bool) {
	if len(data) < 7 {
		return Program{}, false
	}
	p := Program{
		Algo:    core.AllAlgos[int(data[0])%len(core.AllAlgos)],
		S:       1 + int(data[1])%2,
		Prefill: int(data[2]) % (maxFuzzPrefill + 1),
		Drain:   data[3]%2 == 0,
	}
	// The drain stage widens the observable bound to S+1; with δ kept at
	// the bound that is sound for steals, but a δ-dependent queue under
	// back-to-back takes can still defeat it (the coalescing boundary
	// explored in the corpus tests), so fuzzing pairs the stage only with
	// queues that take no δ.
	if data[3]%4 >= 2 && !p.Algo.UsesDelta() {
		p.Stage = true
	}
	p.Delta = p.Config().ObservableBound()
	nops := int(data[4]) % (maxFuzzWorkerOps + 1)
	ops := make([]byte, 0, nops)
	for i := 0; i < nops; i++ {
		b := byte(0)
		if 5+i < len(data) {
			b = data[5+i]
		}
		if b%2 == 0 {
			ops = append(ops, 'P')
		} else {
			ops = append(ops, 'T')
		}
	}
	p.WorkerOps = string(ops)
	nthieves := 1 + int(data[5])%maxFuzzThieves
	for i := 0; i < nthieves; i++ {
		b := byte(1)
		if 6+i < len(data) {
			b = data[6+i]
		}
		p.Thieves = append(p.Thieves, 1+int(b)%maxFuzzAttempts)
	}
	return p, true
}

// RandomProgram draws a program from the same bounded, soundly-configured
// space as DecodeProgram — the generator behind `tsoexplore -fuzz`.
func RandomProgram(r *rand.Rand) Program {
	data := make([]byte, 7+maxFuzzWorkerOps)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	p, ok := DecodeProgram(data)
	if !ok {
		panic("oracle: RandomProgram buffer too short")
	}
	return p
}

// CorpusEntry is the JSON schema of a checked-in counterexample under
// internal/oracle/testdata/: a program, the spec it violates, the
// schedule choices that reach the violation (tso.ReplaySchedule format),
// and the canonical verdict the replay must reproduce.
type CorpusEntry struct {
	// Comment says what the entry demonstrates.
	Comment string `json:"comment"`
	// Program is the workload.
	Program Program `json:"program"`
	// Spec names the checked contract ("precise", "idempotent", or
	// "multiplicity(k=N)").
	Spec string `json:"spec"`
	// Choices is the violating schedule's decision prefix.
	Choices []int `json:"choices"`
	// Outcome is the canonical verdict string the replay must report.
	Outcome string `json:"outcome"`
}

// SpecByName resolves a corpus entry's spec name. Every Spec's Name()
// round-trips: "precise", "idempotent", and "multiplicity(k=N)" for any
// integer N ≥ 0.
func SpecByName(name string) (Spec, bool) {
	switch name {
	case "precise":
		return Precise{}, true
	case "idempotent":
		return Idempotent{}, true
	}
	var k int
	if n, err := fmt.Sscanf(name, "multiplicity(k=%d)", &k); err == nil && n == 1 && k >= 0 {
		if s := (Multiplicity{K: k}); s.Name() == name {
			return s, true
		}
	}
	return nil, false
}
