// Package oracle is the per-run deque-semantics oracle: a history
// recorder plus specification checker that rides every execution engine.
// An Instrumented wrapper around any core.Deque emits typed operation
// events (put/take/steal begin and end, task id, thread, outcome) into a
// per-run History; a pluggable Spec — Precise for the exact-once queues,
// Idempotent for Michael et al.'s at-least-once relaxation — classifies
// the completed run as ok, lost-task, duplicate, phantom, or torn, and
// Run wires the checker into schedule sampling, the sequential explorer,
// and the pruned exhaustive model checker, extracting a replayable
// counterexample (schedule choices plus a tso trace dump) when a
// violation is reachable.
//
// Soundness under pruning: the exhaustive engine memoizes canonical
// machine states whose identity includes each thread's full
// request/response history, so two runs that converge on a memoized
// state carry identical per-thread event subsequences even when their
// cross-thread interleavings differ. Every verdict below is therefore
// computed from order-insensitive data — per-task multisets of puts and
// removals, and per-thread begin/end matching — which makes the rendered
// verdict a function of exactly what the memo table preserves, and the
// oracle's outcome counts under Prune byte-identical to the sequential
// engine's.
package oracle

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// OpKind is the deque operation class an Event records.
type OpKind int

const (
	// OpPut is an owner enqueue.
	OpPut OpKind = iota
	// OpTake is an owner dequeue.
	OpTake
	// OpSteal is a thief dequeue.
	OpSteal
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpTake:
		return "take"
	case OpSteal:
		return "steal"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Event is one half of a recorded deque operation: its begin (the call)
// or its end (the return, with outcome). Events carry the global history
// position so a dumped history reads in schedule order.
type Event struct {
	// Seq is the event's position in the run's history (0, 1, …).
	Seq int
	// Thread is the simulated thread that issued the operation.
	Thread int
	// Kind is the operation class.
	Kind OpKind
	// Begin distinguishes the call (true) from the return (false).
	Begin bool
	// Task is the task value: always set on put events, set on take/steal
	// ends when Status is core.OK, zero otherwise.
	Task uint64
	// Status is the operation's outcome; meaningful on end events of
	// takes and steals only.
	Status core.Status
}

func (e Event) String() string {
	half := "end"
	if e.Begin {
		half = "begin"
	}
	switch {
	case e.Kind == OpPut:
		return fmt.Sprintf("%3d th%d put %s task=%d", e.Seq, e.Thread, half, e.Task)
	case e.Begin:
		return fmt.Sprintf("%3d th%d %s begin", e.Seq, e.Thread, e.Kind)
	case e.Status == core.OK:
		return fmt.Sprintf("%3d th%d %s end OK task=%d", e.Seq, e.Thread, e.Kind, e.Task)
	default:
		return fmt.Sprintf("%3d th%d %s end %s", e.Seq, e.Thread, e.Kind, e.Status)
	}
}

// History accumulates the deque events of one run. The machine executes
// at most one simulated thread at a time once scheduling begins, but
// Machine.Run launches every worker goroutine up front and they compute
// concurrently until each issues its first Context call — so the run's
// very first Begin events can genuinely race. The mutex serializes those
// appends; event *order* within that window is scheduling-dependent,
// which is harmless because every Spec verdict is order-insensitive (see
// the package comment). A History must still not be shared between
// concurrently executing runs.
type History struct {
	mu      sync.Mutex
	events  []Event
	prefill []uint64
	drained bool
}

// NewHistory returns an empty per-run history.
func NewHistory() *History { return &History{} }

// RecordPrefill notes tasks installed directly in memory before the run
// (core.Prefiller); they count as puts for every spec.
func (h *History) RecordPrefill(vals []uint64) {
	h.prefill = append(h.prefill, vals...)
}

// ExpectDrained marks that the scenario drains the queue before
// finishing (the worker ends with a take-until-Empty loop), so a task
// that was put but never removed is a genuine loss rather than a task
// legitimately left behind.
func (h *History) ExpectDrained() { h.drained = true }

// Drained reports whether ExpectDrained was called.
func (h *History) Drained() bool { return h.drained }

// Begin records the start of an operation. For puts, task is the value
// being enqueued; for takes and steals it is ignored.
func (h *History) Begin(thread int, kind OpKind, task uint64) {
	if kind != OpPut {
		task = 0
	}
	h.mu.Lock()
	h.events = append(h.events, Event{Seq: len(h.events), Thread: thread, Kind: kind, Begin: true, Task: task})
	h.mu.Unlock()
}

// End records the completion of an operation. For takes and steals, task
// is the removed value when st is core.OK and ignored otherwise.
func (h *History) End(thread int, kind OpKind, task uint64, st core.Status) {
	if kind != OpPut && st != core.OK {
		task = 0
	}
	h.mu.Lock()
	h.events = append(h.events, Event{Seq: len(h.events), Thread: thread, Kind: kind, Task: task, Status: st})
	h.mu.Unlock()
}

// Events returns the recorded events in schedule order. The slice is the
// history's own backing store; callers must not mutate it.
func (h *History) Events() []Event { return h.events }

// Prefilled returns the tasks recorded by RecordPrefill.
func (h *History) Prefilled() []uint64 { return h.prefill }

// Reset empties the history for reuse by a subsequent run.
func (h *History) Reset() {
	h.events = h.events[:0]
	h.prefill = h.prefill[:0]
	h.drained = false
}
