package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Verdict classifies one way a run can violate its specification.
type Verdict int

const (
	// VerdictLost flags a task that was put (or prefilled) but never
	// removed even though the scenario drained the queue.
	VerdictLost Verdict = iota
	// VerdictDuplicate flags a task removed more often than it was put —
	// a violation for precise queues, expected for idempotent ones.
	VerdictDuplicate
	// VerdictPhantom flags a removal of a task that was never put: the
	// queue handed out garbage (an uninitialized or torn-read value).
	VerdictPhantom
	// VerdictTorn flags a malformed history: an operation that ended
	// without beginning, began twice, or never ended on a completed run.
	// It indicates a broken harness or instrumentation, not a queue bug.
	VerdictTorn
	// VerdictDupBound flags a task removed more often than a Multiplicity
	// spec's per-task duplicate budget allows — the failure class of the
	// bounded-multiplicity relaxation (rendered "dup>k tN"). The plain
	// VerdictDuplicate remains the precise-contract class (any removal
	// beyond the puts).
	VerdictDupBound
)

func (v Verdict) String() string {
	switch v {
	case VerdictLost:
		return "lost"
	case VerdictDuplicate:
		return "duplicate"
	case VerdictPhantom:
		return "phantom"
	case VerdictTorn:
		return "torn"
	case VerdictDupBound:
		return "dup-bound"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Violation is one spec violation found in a history.
type Violation struct {
	// Verdict is the violation class.
	Verdict Verdict
	// Task is the affected task value (zero for torn interleavings).
	Task uint64
	// Thread is the offending thread for torn interleavings, -1 when the
	// violation is a property of the whole history.
	Thread int
	// Bound is the exceeded per-task removal budget for VerdictDupBound
	// violations (0 otherwise).
	Bound int `json:",omitempty"`
	// Detail is a human-readable elaboration (counts, op kind).
	Detail string
}

func (v Violation) String() string {
	if v.Verdict == VerdictTorn {
		return fmt.Sprintf("torn th%d: %s", v.Thread, v.Detail)
	}
	if v.Verdict == VerdictDupBound {
		return fmt.Sprintf("dup>%d t%d: %s", v.Bound, v.Task, v.Detail)
	}
	return fmt.Sprintf("%s t%d: %s", v.Verdict, v.Task, v.Detail)
}

// Spec checks a completed run's history against a queue contract.
// Implementations must derive every violation from order-insensitive
// facts (per-task multisets, per-thread begin/end matching) — see the
// package comment for why the pruned exhaustive engine requires this.
type Spec interface {
	// Name identifies the spec in reports.
	Name() string
	// Check returns the history's violations, deterministically ordered;
	// an empty slice means the run satisfied the spec.
	Check(h *History) []Violation
}

// Precise is the exact-once specification (§3.1's deterministic
// work-stealing contract): every removal matches a put, no task is
// removed twice, and — when the scenario drains the queue — no task is
// left unremoved.
type Precise struct{}

// Name implements Spec.
func (Precise) Name() string { return "precise" }

// Check implements Spec.
func (Precise) Check(h *History) []Violation {
	puts, removals, viols := tally(h)
	for task, r := range removals {
		p := puts[task]
		switch {
		case p == 0:
			viols = append(viols, Violation{Verdict: VerdictPhantom, Task: task, Thread: -1,
				Detail: fmt.Sprintf("removed %dx but never put", r)})
		case r > p:
			viols = append(viols, Violation{Verdict: VerdictDuplicate, Task: task, Thread: -1,
				Detail: fmt.Sprintf("removed %dx for %d put(s)", r, p)})
		}
	}
	if h.Drained() {
		for task, p := range puts {
			if removals[task] < p {
				viols = append(viols, Violation{Verdict: VerdictLost, Task: task, Thread: -1,
					Detail: fmt.Sprintf("put %dx, removed %dx, queue drained", p, removals[task])})
			}
		}
	}
	return sortViolations(viols)
}

// Idempotent is Michael et al.'s at-least-once relaxation (the paper's
// §8.2 comparators, and the multiplicity relaxation of Castañeda & Piña):
// a task may be handed out more than once, but phantoms are still
// forbidden and — when the scenario drains the queue — every put task
// must be removed at least once.
type Idempotent struct{}

// Name implements Spec.
func (Idempotent) Name() string { return "idempotent" }

// Check implements Spec.
func (Idempotent) Check(h *History) []Violation {
	puts, removals, viols := tally(h)
	for task, r := range removals {
		if puts[task] == 0 {
			viols = append(viols, Violation{Verdict: VerdictPhantom, Task: task, Thread: -1,
				Detail: fmt.Sprintf("removed %dx but never put", r)})
		}
	}
	if h.Drained() {
		for task, p := range puts {
			if removals[task] == 0 {
				viols = append(viols, Violation{Verdict: VerdictLost, Task: task, Thread: -1,
					Detail: fmt.Sprintf("put %dx, never removed, queue drained", p)})
			}
		}
	}
	return sortViolations(viols)
}

// Multiplicity is the bounded-duplicates relaxation of Castañeda & Piña:
// Idempotent's contract (no phantoms, no losses on a drained run) plus a
// per-task removal budget. A task put p times may be removed at most
// p·max(K, 1) times; exceeding the budget is a VerdictDupBound
// violation. K ≤ 1 degenerates to the Precise spec's duplicate rule
// (any removal beyond the puts violates), with losses still judged by
// the relaxed at-least-once rule. Like every Spec, the check is a
// function of order-insensitive multiset facts only, so it is sound
// under the pruned exhaustive engines.
type Multiplicity struct {
	// K is the per-put removal budget (values below 1 behave as 1).
	K int
}

// Name implements Spec.
func (s Multiplicity) Name() string { return fmt.Sprintf("multiplicity(k=%d)", s.K) }

// budget is the allowed removal count for a task put p times.
func (s Multiplicity) budget(p int) int {
	k := s.K
	if k < 1 {
		k = 1
	}
	return p * k
}

// Check implements Spec.
func (s Multiplicity) Check(h *History) []Violation {
	puts, removals, viols := tally(h)
	for task, r := range removals {
		p := puts[task]
		switch {
		case p == 0:
			viols = append(viols, Violation{Verdict: VerdictPhantom, Task: task, Thread: -1,
				Detail: fmt.Sprintf("removed %dx but never put", r)})
		case r > s.budget(p):
			viols = append(viols, Violation{Verdict: VerdictDupBound, Task: task, Thread: -1,
				Bound: s.budget(p),
				Detail: fmt.Sprintf("removed %dx for %d put(s), budget %d", r, p, s.budget(p))})
		}
	}
	if h.Drained() {
		for task, p := range puts {
			if removals[task] == 0 {
				viols = append(viols, Violation{Verdict: VerdictLost, Task: task, Thread: -1,
					Detail: fmt.Sprintf("put %dx, never removed, queue drained", p)})
			}
		}
	}
	return sortViolations(viols)
}

// SpecFor returns the specification the algorithm is expected to meet:
// Idempotent for the duplicate-tolerant queues (the idempotent
// comparators and the WS-MULT family), Precise for everything else.
// WS-MULT's *bounded*-multiplicity claim depends on the extractor
// count, which an Algo alone does not know — Program.Spec tightens it.
func SpecFor(a core.Algo) Spec {
	if a.Idempotent() {
		return Idempotent{}
	}
	return Precise{}
}

// tally folds a history into its order-insensitive facts: how often each
// task was put (prefill included) and removed, plus any torn-interleaving
// violations found by per-thread begin/end matching.
func tally(h *History) (puts, removals map[uint64]int, viols []Violation) {
	puts = map[uint64]int{}
	removals = map[uint64]int{}
	for _, t := range h.Prefilled() {
		puts[t]++
	}
	open := map[int]Event{}
	for _, e := range h.Events() {
		if e.Begin {
			if prev, ok := open[e.Thread]; ok {
				viols = append(viols, Violation{Verdict: VerdictTorn, Task: 0, Thread: e.Thread,
					Detail: fmt.Sprintf("%s begins inside open %s", e.Kind, prev.Kind)})
			}
			open[e.Thread] = e
			continue
		}
		prev, ok := open[e.Thread]
		switch {
		case !ok:
			viols = append(viols, Violation{Verdict: VerdictTorn, Task: 0, Thread: e.Thread,
				Detail: fmt.Sprintf("%s ends without beginning", e.Kind)})
		case prev.Kind != e.Kind:
			viols = append(viols, Violation{Verdict: VerdictTorn, Task: 0, Thread: e.Thread,
				Detail: fmt.Sprintf("%s ends inside open %s", e.Kind, prev.Kind)})
			delete(open, e.Thread)
		default:
			delete(open, e.Thread)
		}
		switch {
		case e.Kind == OpPut:
			puts[e.Task]++
		case e.Status == core.OK:
			removals[e.Task]++
		}
	}
	for tid, e := range open {
		viols = append(viols, Violation{Verdict: VerdictTorn, Task: 0, Thread: tid,
			Detail: fmt.Sprintf("%s never ends", e.Kind)})
	}
	return puts, removals, viols
}

// sortViolations orders violations canonically (verdict, then task, then
// thread, then detail) so a rendered verdict string is a deterministic,
// order-insensitive function of the history's facts.
func sortViolations(viols []Violation) []Violation {
	sort.Slice(viols, func(i, j int) bool {
		a, b := viols[i], viols[j]
		if a.Verdict != b.Verdict {
			return a.Verdict < b.Verdict
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		return a.Detail < b.Detail
	})
	return viols
}

// RenderVerdict collapses a violation list into the canonical outcome
// string the exploration engines bucket runs by: "ok" for a clean run,
// otherwise the sorted short forms joined with "; " (e.g. "lost t3" or
// "duplicate t5; duplicate t6").
func RenderVerdict(viols []Violation) string {
	if len(viols) == 0 {
		return "ok"
	}
	parts := make([]string, 0, len(viols))
	for _, v := range viols {
		switch v.Verdict {
		case VerdictTorn:
			parts = append(parts, fmt.Sprintf("torn th%d", v.Thread))
		case VerdictDupBound:
			parts = append(parts, fmt.Sprintf("dup>%d t%d", v.Bound, v.Task))
		default:
			parts = append(parts, fmt.Sprintf("%s t%d", v.Verdict, v.Task))
		}
	}
	return strings.Join(parts, "; ")
}
