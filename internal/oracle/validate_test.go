package oracle

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func validProgram() Program {
	return Program{
		Algo:      core.AlgoFFCL,
		S:         2,
		Delta:     2,
		Prefill:   1,
		WorkerOps: "PT",
		Thieves:   []int{2},
	}
}

// TestProgramValidate drives each field of the taxonomy through its
// rejection and checks errors.Is classification.
func TestProgramValidate(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(p *Program)
		want error
	}{
		{"algo", func(p *Program) { p.Algo = core.Algo(99) }, ErrBadAlgo},
		{"buffer-size", func(p *Program) { p.S = 0 }, ErrBadBufferSize},
		{"negative-delta", func(p *Program) { p.Delta = -1 }, ErrBadDelta},
		{"missing-delta", func(p *Program) { p.Delta = 0 }, ErrBadDelta},
		{"capacity", func(p *Program) { p.Capacity = -1 }, ErrBadCapacity},
		{"prefill", func(p *Program) { p.Prefill = -2 }, ErrBadPrefill},
		{"worker-ops", func(p *Program) { p.WorkerOps = "PXT" }, ErrBadWorkerOps},
		{"thieves", func(p *Program) { p.Thieves = []int{1, 0} }, ErrBadThieves},
		{"threads", func(p *Program) { p.Thieves = make([]int, MaxProgramThreads) }, ErrTooManyThreads},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validProgram()
			if tc.name == "threads" {
				// Thief budgets must individually validate so the thread
				// bound is the only violation.
				tc.mut(&p)
				for i := range p.Thieves {
					p.Thieves[i] = 1
				}
			} else {
				tc.mut(&p)
			}
			err := p.Validate()
			if err == nil {
				t.Fatalf("mutation %q accepted", tc.name)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("mutation %q: error %q is not %q", tc.name, err, tc.want)
			}
		})
	}

	// Zero delta is fine for algorithms that ignore δ.
	p := validProgram()
	p.Algo, p.Delta = core.AlgoChaseLev, 0
	if err := p.Validate(); err != nil {
		t.Fatalf("delta-free algorithm rejected for delta=0: %v", err)
	}

	// Every fuzz-decoded program is inside the validated space — the
	// service can ingest regression programs straight from the fuzzers.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if err := RandomProgram(r).Validate(); err != nil {
			t.Fatalf("fuzz-decoded program rejected: %v", err)
		}
	}
}
