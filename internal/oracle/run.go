package oracle

import (
	"sync"

	"repro/internal/tso"
)

// Scenario is one oracle-checked workload: a machine configuration plus a
// factory that builds the per-thread programs and the history they record
// into. Build is invoked once per explored schedule (concurrently on
// distinct machines when the exhaustive engine runs parallel workers), so
// it must construct fresh state — queue, history, task counters — on
// every call and must not write captured shared state.
type Scenario struct {
	// Name identifies the scenario in reports and corpus files.
	Name string
	// Config is the machine configuration the scenario runs under.
	Config tso.Config
	// Build allocates the scenario on m and returns one program per
	// configured thread plus the run's history.
	Build func(m *tso.Machine) ([]func(tso.Context), *History)
}

// Outcomes adapts the scenario to the exhaustive engine's callback pair:
// a program factory and a per-run verdict function checking spec (nil
// means Precise). The pair shares internal state and is safe for the
// engine's parallel workers; callers that drive tso.ExploreExhaustive,
// tso.ShardFrontier, or a resumed shard directly (the verification
// service's dispatcher) get verdict bucketing identical to Run's.
func (sc Scenario) Outcomes(spec Spec) (mk func(m *tso.Machine) []func(tso.Context), out func(m *tso.Machine) string) {
	if spec == nil {
		spec = Precise{}
	}
	// The engines call mk and out for the same run on the same worker and
	// machine; the map carries each machine's current history from one to
	// the other across the engine's reuse of machines.
	var mu sync.Mutex
	hists := map[*tso.Machine]*History{}
	mk = func(m *tso.Machine) []func(tso.Context) {
		progs, h := sc.Build(m)
		mu.Lock()
		hists[m] = h
		mu.Unlock()
		return progs
	}
	out = func(m *tso.Machine) string {
		mu.Lock()
		h := hists[m]
		mu.Unlock()
		return RenderVerdict(spec.Check(h))
	}
	return mk, out
}

// RunOptions configures an oracle Run.
type RunOptions struct {
	// Spec is the contract to check (default Precise).
	Spec Spec
	// MaxSchedules caps exhaustive exploration (default 1<<20 schedules;
	// see tso.ExploreOptions.MaxRuns).
	MaxSchedules int
	// MaxStepsPerRun bounds each schedule; step-limited runs are bucketed
	// under "<step-limit>" and not spec-checked (their histories are
	// legitimately torn). Default 100_000.
	MaxStepsPerRun int64
	// Parallel is the exhaustive engine's worker count (<=1 sequential).
	Parallel int
	// Prune enables the exhaustive engine's canonical-state memoization.
	// Sound for oracle verdicts because every Spec is order-insensitive
	// (see the package comment).
	Prune bool
	// SleepSets additionally prunes commuting drain orders; the set of
	// reachable verdicts is preserved, per-verdict counts are not.
	SleepSets bool
	// MaxReorderings, when >= 1, restricts exhaustive exploration to
	// schedules with at most that many store→load reorderings
	// (tso.ExhaustiveOptions.MaxReorderings). Zero or negative explores
	// the full TSO[S] schedule space. A clean verdict under a bound k is
	// a proof over the k-bounded schedule space only.
	MaxReorderings int
	// DPOR enables source-set dynamic partial-order reduction
	// (tso.ExhaustiveOptions.DPOR): one executed run per Mazurkiewicz
	// class. Sound for oracle verdicts — the set of reachable verdicts,
	// Complete, and Violating > 0 are preserved — but per-verdict counts
	// collapse to class representatives, so a DPOR report's Outcomes
	// tallies are not comparable to an unreduced run's. Incompatible
	// with MaxReorderings and PSO (tso.ExhaustiveOptions.DPOR); Prune
	// and SleepSets are superseded and auto-disabled under it.
	DPOR bool
	// SampleRuns, when positive, switches from exhaustive exploration to
	// chaos sampling under seeds 0..SampleRuns-1 — the cheap mode the
	// fuzzing harness uses.
	SampleRuns int
	// Counterexample asks Run to re-explore a violating schedule
	// sequentially and attach its replayable choices and trace. The
	// sequential re-exploration is bounded by MaxSchedules (or SampleRuns
	// seeds in sampling mode), so a counterexample that only pruned or
	// deep exploration reaches may come back nil even when Violating > 0.
	Counterexample bool
}

// Counterexample is a replayable witness of a spec violation: the
// schedule that produced it (decision choices for Replay, or a chaos seed
// in sampling mode) plus the machine-level trace of the interleaving.
type Counterexample struct {
	// Outcome is the canonical verdict string (RenderVerdict).
	Outcome string `json:"outcome"`
	// Violations are the spec violations the schedule produced.
	Violations []Violation `json:"-"`
	// Choices is the schedule's decision prefix, replayable with Replay /
	// tso.ReplaySchedule. Nil for sampling-mode counterexamples.
	Choices []int `json:"choices"`
	// Seed is the chaos seed that produced the violation in sampling
	// mode, -1 otherwise.
	Seed int64 `json:"seed"`
	// Trace is the machine-level event dump (tso.Event strings, schedule
	// order, most recent window) of the violating run.
	Trace []string `json:"-"`
}

// Report summarizes an oracle Run over a scenario's schedules.
type Report struct {
	// Scenario and Spec name what ran and against which contract.
	Scenario string
	// Spec is the checked specification's name.
	Spec string
	// Outcomes tallies schedules by canonical verdict string ("ok",
	// "lost t3", "<step-limit>", …).
	Outcomes map[string]int
	// Schedules is the number of schedules accounted for (with pruning,
	// more than were executed).
	Schedules int
	// Executed is the number of schedules actually run on a machine.
	Executed int
	// Complete reports whether the whole decision tree was covered
	// (always false in sampling mode).
	Complete bool
	// StepLimited counts schedules that hit MaxStepsPerRun.
	StepLimited int
	// Violating is the number of accounted schedules whose verdict was a
	// violation (neither "ok" nor "<step-limit>").
	Violating int
	// Counterexample is a replayable violating schedule, when requested
	// and found; see RunOptions.Counterexample.
	Counterexample *Counterexample
}

// Run explores the scenario's schedules — exhaustively (optionally
// parallel and pruned) or by chaos sampling — checking every completed
// run's history against the spec and bucketing it by verdict.
func Run(sc Scenario, opts RunOptions) Report {
	spec := opts.Spec
	if spec == nil {
		spec = Precise{}
	}
	mk, out := sc.Outcomes(spec)

	rep := Report{Scenario: sc.Name, Spec: spec.Name()}
	if opts.SampleRuns > 0 {
		c := sc.Config
		if opts.MaxStepsPerRun > 0 {
			c.MaxSteps = opts.MaxStepsPerRun
		}
		set := tso.SampleOutcomes(c, opts.SampleRuns, mk, out)
		rep.Outcomes = set.Counts
		rep.Schedules = set.Total()
		rep.Executed = opts.SampleRuns
	} else {
		set, res := tso.ExploreExhaustive(sc.Config, mk, out, tso.ExhaustiveOptions{
			ExploreOptions: tso.ExploreOptions{MaxRuns: opts.MaxSchedules, MaxStepsPerRun: opts.MaxStepsPerRun},
			Parallel:       opts.Parallel,
			Prune:          opts.Prune,
			SleepSets:      opts.SleepSets,
			MaxReorderings: opts.MaxReorderings,
			DPOR:           opts.DPOR,
		})
		rep.Outcomes = set.Counts
		rep.Schedules = set.Total()
		rep.Executed = res.Runs
		rep.Complete = res.Complete
		rep.StepLimited = res.StepLimited
	}
	for o, n := range rep.Outcomes {
		if o != "ok" && o != "<step-limit>" {
			rep.Violating += n
		}
	}
	if rep.Violating > 0 && opts.Counterexample {
		rep.Counterexample = FindCounterexample(sc, spec, opts)
	}
	return rep
}

// traceWindow is how many machine events a counterexample retains.
const traceWindow = 4096

// FindCounterexample re-explores the scenario looking for the first
// schedule that violates spec (nil means Precise) and packages it
// replayably. The search is sequential and bounded by opts.MaxSchedules
// (or opts.SampleRuns seeds in sampling mode), so a violation that only
// pruned or deeper exploration reaches comes back nil. Run calls this
// when RunOptions.Counterexample is set; the verification service calls
// it directly to attach a witness to a finished job.
func FindCounterexample(sc Scenario, spec Spec, opts RunOptions) *Counterexample {
	if spec == nil {
		spec = Precise{}
	}
	if opts.SampleRuns > 0 {
		c := sc.Config
		if opts.MaxStepsPerRun > 0 {
			c.MaxSteps = opts.MaxStepsPerRun
		}
		m := tso.NewMachine(c)
		defer m.Close()
		for seed := 0; seed < opts.SampleRuns; seed++ {
			m.ResetSeed(int64(seed))
			tr := tso.NewRingTracer(traceWindow)
			m.SetTracer(tr)
			progs, h := sc.Build(m)
			if err := m.Run(progs...); err != nil {
				continue
			}
			viols := spec.Check(h)
			if len(viols) == 0 {
				continue
			}
			return &Counterexample{
				Outcome:    RenderVerdict(viols),
				Violations: viols,
				Seed:       int64(seed),
				Trace:      traceLines(tr),
			}
		}
		return nil
	}
	var ce *Counterexample
	var tr *tso.RingTracer
	var hist *History
	mk := func(m *tso.Machine) []func(tso.Context) {
		tr = tso.NewRingTracer(traceWindow)
		m.SetTracer(tr)
		progs, h := sc.Build(m)
		hist = h
		return progs
	}
	eopts := tso.ExploreOptions{MaxRuns: opts.MaxSchedules, MaxStepsPerRun: opts.MaxStepsPerRun}
	tso.ExploreWithChoices(sc.Config, mk, eopts, func(m *tso.Machine, err error, choices []int) bool {
		if err != nil {
			return false
		}
		viols := spec.Check(hist)
		if len(viols) == 0 {
			return false
		}
		ce = &Counterexample{
			Outcome:    RenderVerdict(viols),
			Violations: viols,
			Choices:    append([]int(nil), choices...),
			Seed:       -1,
			Trace:      traceLines(tr),
		}
		return true
	})
	return ce
}

// Replay re-executes one recorded schedule of the scenario (a
// Counterexample's Choices, or a corpus file's) and returns the spec's
// violations for that single run plus its machine-level trace. A non-nil
// error means the replayed schedule did not complete (step limit or
// program panic); its history is not checked.
func Replay(sc Scenario, spec Spec, choices []int) ([]Violation, []string, error) {
	if spec == nil {
		spec = Precise{}
	}
	var tr *tso.RingTracer
	var hist *History
	mk := func(m *tso.Machine) []func(tso.Context) {
		tr = tso.NewRingTracer(traceWindow)
		m.SetTracer(tr)
		progs, h := sc.Build(m)
		hist = h
		return progs
	}
	cfg := sc.Config
	err := tso.ReplaySchedule(cfg, mk, choices, nil)
	if err != nil {
		return nil, traceLines(tr), err
	}
	return spec.Check(hist), traceLines(tr), nil
}

// traceLines renders a ring tracer's retained events, oldest first.
func traceLines(tr *tso.RingTracer) []string {
	evs := tr.Events()
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.String()
	}
	return out
}
