package oracle

import (
	"testing"

	"repro/internal/core"
)

// s4Proof is the FF-CL δ-soundness workload the reorder bound unlocks: an
// S=4 machine, a worker interleaving three put/take rounds over a
// two-task prefill, and a three-attempt thief. Its oracle histories make
// canonical states far more distinct than the bare-queue duels in
// internal/core (every delivery lands in the history words), so the memo
// table alone no longer collapses the space into a small executed-run
// budget the way it does there.
func s4Proof(t *testing.T) Program {
	t.Helper()
	p := Program{Algo: core.AlgoFFCL, S: 4, Prefill: 2, WorkerOps: "PTPTPT", Thieves: []int{3}}
	p.Delta = p.Config().ObservableBound()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// s4Budget is the executed-schedule budget both runs below get. The
// sequential engine is deterministic, so the two sides of the boundary
// are exact, not timing-dependent: unbounded exploration needs 7703
// executed runs to cover the ~10.6T-schedule space and runs out of this
// budget, while the k=1-bounded space (~15.9B schedules) completes in
// 2092 — roughly 2x clear of the budget on both sides.
const s4Budget = 1 << 12

// TestReorderBoundUnlocksS4Soundness is the acceptance proof for the
// reorder-bounded mode: an FF-CL δ-soundness result at S=4 — past the
// S=2 machines the unbounded suite proves — completes under the
// documented bound k=1 within an executed-run budget that unbounded
// exploration exceeds. The verdict is weaker by construction: zero
// violations over every schedule with at most one store→load reordering,
// not over all of TSO[4]. The companion test below pins the unbounded
// side of the same budget.
func TestReorderBoundUnlocksS4Soundness(t *testing.T) {
	p := s4Proof(t)
	rep := Run(p.Scenario(), RunOptions{
		Spec: p.Spec(), Prune: true, MaxSchedules: s4Budget, MaxReorderings: 1,
	})
	if !rep.Complete {
		t.Fatalf("bounded exploration incomplete after %d executed schedules", rep.Executed)
	}
	if rep.Violating != 0 {
		t.Fatalf("FF-CL violated its spec in the k=1-bounded space: %v", rep.Outcomes)
	}
	if rep.Outcomes["ok"] == 0 {
		t.Fatalf("no ok schedules recorded: %v", rep.Outcomes)
	}
	t.Logf("k=1: %d schedules proved clean via %d executed runs, outcomes %v",
		rep.Schedules, rep.Executed, rep.Outcomes)
}

// TestReorderBoundS4UnboundedBustsBudget documents why the bound above is
// load-bearing: the same workload without a reorder bound exhausts the
// same executed-run budget before covering its tree. If this ever starts
// completing, the engine got enough faster that the proof above should be
// promoted to a larger machine or a bigger k.
func TestReorderBoundS4UnboundedBustsBudget(t *testing.T) {
	p := s4Proof(t)
	rep := Run(p.Scenario(), RunOptions{
		Spec: p.Spec(), Prune: true, MaxSchedules: s4Budget,
	})
	if rep.Complete {
		t.Fatalf("unbounded exploration completed in %d executed schedules; raise the proof's ambition", rep.Executed)
	}
	if rep.Executed < s4Budget {
		t.Fatalf("unbounded exploration stopped early at %d executed schedules", rep.Executed)
	}
}
