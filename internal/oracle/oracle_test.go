package oracle

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// exhaustOpts is the shared configuration for the pruned full-state
// explorations below: parallel workers exercise the mc frontier path, and
// pruning exercises the order-insensitivity the specs guarantee.
func exhaustOpts(spec Spec) RunOptions {
	return RunOptions{
		Spec:           spec,
		Prune:          true,
		Parallel:       2,
		Counterexample: true,
	}
}

// TestOracleChaseLevExhaustive is the acceptance gate for the precise
// spec: a pruned full-state exploration of a Chase-Lev put/take/steal
// program with a draining worker reports zero violations.
func TestOracleChaseLevExhaustive(t *testing.T) {
	p := Program{Algo: core.AlgoChaseLev, S: 2, Prefill: 2, WorkerOps: "PT", Thieves: []int{2}, Drain: true}
	rep := Run(p.Scenario(), exhaustOpts(p.Spec()))
	if !rep.Complete {
		t.Fatalf("exploration incomplete after %d executed schedules", rep.Executed)
	}
	if rep.Violating != 0 {
		t.Fatalf("Chase-Lev violated its spec: %v (counterexample: %+v)", rep.Outcomes, rep.Counterexample)
	}
	if rep.Outcomes["ok"] == 0 {
		t.Fatalf("no ok schedules recorded: %v", rep.Outcomes)
	}
	t.Logf("chaselev: %d schedules (%d executed), outcomes %v", rep.Schedules, rep.Executed, rep.Outcomes)
}

// TestOracleIdempotentFIFOExhaustive is the acceptance gate for the
// idempotent spec: full-state exploration of the idempotent FIFO reports
// zero violations — duplicates are allowed, loss and phantoms are not.
func TestOracleIdempotentFIFOExhaustive(t *testing.T) {
	p := Program{Algo: core.AlgoIdempotentFIFO, S: 1, Prefill: 2, WorkerOps: "T", Thieves: []int{1}, Drain: true}
	rep := Run(p.Scenario(), exhaustOpts(p.Spec()))
	if !rep.Complete {
		t.Fatalf("exploration incomplete after %d executed schedules", rep.Executed)
	}
	if rep.Violating != 0 {
		t.Fatalf("idempotent FIFO violated the idempotent spec: %v (counterexample: %+v)", rep.Outcomes, rep.Counterexample)
	}
	t.Logf("idempotent FIFO: %d schedules, outcomes %v", rep.Schedules, rep.Outcomes)
}

// TestOracleIdempotentFIFOMultiplicityReachable runs the same program
// against the *precise* spec and demonstrates that the multiplicity
// relaxation is real: some schedule double-delivers a task, so the
// precise spec must flag a duplicate that the idempotent spec accepts.
func TestOracleIdempotentFIFOMultiplicityReachable(t *testing.T) {
	p := Program{Algo: core.AlgoIdempotentFIFO, S: 1, Prefill: 2, WorkerOps: "T", Thieves: []int{1}, Drain: true}
	rep := Run(p.Scenario(), exhaustOpts(Precise{}))
	if !rep.Complete {
		t.Fatalf("exploration incomplete after %d executed schedules", rep.Executed)
	}
	if rep.Violating == 0 {
		t.Fatalf("no duplicate delivery found — the idempotent queue's relaxation never fired: %v", rep.Outcomes)
	}
	for o := range rep.Outcomes {
		if o != "ok" && o != "<step-limit>" && !strings.Contains(o, "duplicate") {
			t.Fatalf("idempotent FIFO produced a non-duplicate violation %q: %v", o, rep.Outcomes)
		}
	}
	if rep.Counterexample == nil {
		t.Fatal("no counterexample extracted for a reachable duplicate")
	}
}

// TestOracleFlagsUnsoundFFCL replays PR 3's headline unsoundness through
// the oracle: FF-CL with δ=1 below the machine's S=2 bound double-delivers
// a task in some schedule, and the counterexample is replayable.
func TestOracleFlagsUnsoundFFCL(t *testing.T) {
	p := Program{Algo: core.AlgoFFCL, S: 2, Delta: 1, Prefill: 3, WorkerOps: "TT", Thieves: []int{2}}
	rep := Run(p.Scenario(), exhaustOpts(Precise{}))
	if !rep.Complete {
		t.Fatalf("exploration incomplete after %d executed schedules", rep.Executed)
	}
	if rep.Violating == 0 {
		t.Fatalf("oracle missed the δ<S double delivery: %v", rep.Outcomes)
	}
	ce := rep.Counterexample
	if ce == nil {
		t.Fatal("no counterexample extracted")
	}
	if !strings.Contains(ce.Outcome, "duplicate") {
		t.Fatalf("counterexample outcome %q, want a duplicate", ce.Outcome)
	}
	if len(ce.Choices) == 0 || ce.Seed != -1 {
		t.Fatalf("exhaustive counterexample not replayable: %+v", ce)
	}
	if len(ce.Trace) == 0 {
		t.Fatal("counterexample carries no trace")
	}
	viols, trace, err := Replay(p.Scenario(), Precise{}, ce.Choices)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if got := RenderVerdict(viols); got != ce.Outcome {
		t.Fatalf("replay verdict %q != counterexample %q", got, ce.Outcome)
	}
	found := false
	for _, line := range trace {
		if strings.Contains(line, "drain") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("replay trace has no drain events:\n%s", strings.Join(trace, "\n"))
	}
}

// TestOracleSoundFFCLClean is the fixed-configuration counterpart: with
// δ=S the same duel has zero violations in the full tree.
func TestOracleSoundFFCLClean(t *testing.T) {
	p := Program{Algo: core.AlgoFFCL, S: 2, Delta: 2, Prefill: 3, WorkerOps: "TT", Thieves: []int{2}}
	rep := Run(p.Scenario(), exhaustOpts(Precise{}))
	if !rep.Complete {
		t.Fatalf("exploration incomplete after %d executed schedules", rep.Executed)
	}
	if rep.Violating != 0 {
		t.Fatalf("δ=S FF-CL flagged: %v (counterexample: %+v)", rep.Outcomes, rep.Counterexample)
	}
}

// TestOraclePruningPreservesVerdictCounts is the soundness check the
// package comment promises: with Prune on, the per-verdict schedule
// counts must be byte-identical to the unpruned sequential engine's.
func TestOraclePruningPreservesVerdictCounts(t *testing.T) {
	// The idempotent FIFO race tree is small enough to enumerate unpruned
	// and produces several verdict classes (ok plus two duplicate tasks),
	// so the comparison covers violating counts, not just clean ones.
	p := Program{Algo: core.AlgoIdempotentFIFO, S: 1, Prefill: 2, WorkerOps: "T", Thieves: []int{1}, Drain: true}
	plain := Run(p.Scenario(), RunOptions{Spec: Precise{}})
	pruned := Run(p.Scenario(), RunOptions{Spec: Precise{}, Prune: true, Parallel: 2})
	if !plain.Complete || !pruned.Complete {
		t.Fatal("incomplete exploration")
	}
	if len(plain.Outcomes) != len(pruned.Outcomes) {
		t.Fatalf("outcome sets differ: %v vs %v", plain.Outcomes, pruned.Outcomes)
	}
	for o, n := range plain.Outcomes {
		if pruned.Outcomes[o] != n {
			t.Fatalf("outcome %q: plain %d, pruned %d", o, n, pruned.Outcomes[o])
		}
	}
	if pruned.Executed >= plain.Executed {
		t.Fatalf("pruning saved nothing: %d vs %d executed", pruned.Executed, plain.Executed)
	}
}

// TestOracleSamplingMode exercises the chaos-sampling path: a sound
// configuration stays clean across seeded schedules, and the report
// accounts for every sampled run.
func TestOracleSamplingMode(t *testing.T) {
	p := Program{Algo: core.AlgoChaseLev, S: 2, Prefill: 2, WorkerOps: "PT", Thieves: []int{2}, Drain: true}
	rep := Run(p.Scenario(), RunOptions{Spec: p.Spec(), SampleRuns: 200})
	if rep.Schedules != 200 || rep.Executed != 200 {
		t.Fatalf("sampling accounted %d/%d schedules, want 200", rep.Schedules, rep.Executed)
	}
	if rep.Violating != 0 {
		t.Fatalf("sound Chase-Lev flagged under sampling: %v", rep.Outcomes)
	}
	if rep.Complete {
		t.Fatal("sampling must not claim completeness")
	}
}

// TestOracleSamplingCounterexample checks the sampling-mode witness path
// on the unsound FF-CL configuration: chaos schedules under a starved
// drain bias reach the double delivery, and the counterexample carries
// the seed and trace rather than choices.
func TestOracleSamplingCounterexample(t *testing.T) {
	p := Program{Algo: core.AlgoFFCL, S: 2, Delta: 1, Prefill: 3, WorkerOps: "TT", Thieves: []int{2}}
	sc := p.Scenario()
	sc.Config.DrainBias = 0.05
	rep := Run(sc, RunOptions{Spec: Precise{}, SampleRuns: 500, Counterexample: true})
	if rep.Violating == 0 {
		t.Skip("no violating seed in the sampled window; exhaustive coverage lives in TestOracleFlagsUnsoundFFCL")
	}
	ce := rep.Counterexample
	if ce == nil {
		t.Fatal("violations sampled but no counterexample extracted")
	}
	if ce.Seed < 0 || ce.Choices != nil {
		t.Fatalf("sampling counterexample should carry a seed, not choices: %+v", ce)
	}
	if len(ce.Trace) == 0 {
		t.Fatal("sampling counterexample has no trace")
	}
}
