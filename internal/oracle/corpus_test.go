package oracle

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
)

var updateCorpus = flag.Bool("update-corpus", false,
	"regenerate the testdata/corpus counterexample files from exhaustive exploration")

// corpusCase pins one known-buggy configuration: the program that
// violates, the spec it violates, and a repaired twin of the program that
// the very same schedule must leave clean. The checked-in JSON file holds
// the minimized violating schedule so the regression runs as a single
// replay, not a re-exploration.
type corpusCase struct {
	file    string
	comment string
	program Program
	spec    string
	fixed   Program
	// budget caps the regeneration search and the fixed twin's bounded
	// clean check (0: engine default).
	budget int
	// exhaustiveFixed proves the fixed twin clean over the complete
	// schedule space. Off for the staged cases, whose space is far too
	// large to finish: those twins get chaos sampling plus the recorded
	// schedule's replay instead.
	exhaustiveFixed bool
}

func corpusCases() []corpusCase {
	// The FF-CL δ<S duel: with two steal attempts racing a worker running
	// back-to-back takes, δ=1 under S=2 lets the thief act on a tail the
	// owner has already privately moved past — the paper's δ must cover
	// the full observable bound. Raising δ to the bound repairs it.
	duel := Program{Algo: core.AlgoFFCL, S: 2, Delta: 1, Prefill: 3, WorkerOps: "TT", Thieves: []int{2}}
	duelFixed := duel
	duelFixed.Delta = duel.Config().ObservableBound()

	// The coalescing boundary: the §7.3 post-retirement drain stage
	// widens the observable bound from S to S+1, so a δ that was sound
	// for the bare buffer (δ=S=1) is one short once the stage is on.
	// Setting δ to the staged bound repairs it.
	stage := Program{Algo: core.AlgoFFTHE, S: 1, Stage: true, Delta: 1, Prefill: 2, WorkerOps: "TT", Thieves: []int{1}}
	stageFixed := stage
	stageFixed.Delta = stage.Config().ObservableBound()

	// The multiplicity relaxation made concrete: on the fully read/write
	// WS-MULT queue a thief whose announce store is still buffered races
	// the draining owner onto the same index, and a prefilled task is
	// delivered twice — already at S=1. The repaired twin runs the same
	// duel on the CAS-arbitrated Chase-Lev deque, which the recorded
	// schedule (and the whole space) leaves clean: the duplicate is
	// exactly the price of giving up CAS.
	mult := Program{Algo: core.AlgoWSMult, S: 1, Delta: 1, Prefill: 2, Thieves: []int{1}, Drain: true}
	multFixed := mult
	multFixed.Algo = core.AlgoChaseLev

	// The unbounded cascade: without announce slots a stale head store
	// draining late rewinds the queue, and with just two steal attempts
	// racing two owner takes the same task is delivered three times —
	// beyond WS-MULT's k=2 budget for two extractors. Restoring the
	// announce slots (the WS-MULT twin) provably re-establishes the
	// bound on every schedule.
	cascade := Program{Algo: core.AlgoWSMultRelaxed, S: 1, Delta: 1, Prefill: 3, WorkerOps: "TT", Thieves: []int{2}, Drain: true}
	cascadeFixed := cascade
	cascadeFixed.Algo = core.AlgoWSMult

	return []corpusCase{
		{
			file:            "ffcl-delta-below-bound.json",
			comment:         "FF-CL duel with δ=1 < S=2: thief steals a task the owner already took",
			program:         duel,
			spec:            "precise",
			fixed:           duelFixed,
			exhaustiveFixed: true,
		},
		{
			file:    "ffthe-stage-coalescing-boundary.json",
			comment: "FF-THE with δ=S=1 under the drain stage: the stage widens the bound to S+1, defeating δ",
			program: stage,
			spec:    "precise",
			fixed:   stageFixed,
			budget:  1 << 20,
		},
		{
			file:            "wsmult-duplicate-reachable.json",
			comment:         "WS-MULT duel at S=1: a buffered announce lets owner and thief extract the same task — the multiplicity relaxation is inhabited",
			program:         mult,
			spec:            "precise",
			fixed:           multFixed,
			exhaustiveFixed: true,
		},
		{
			file:            "wsmultr-dup-bound-exceeded.json",
			comment:         "WS-MULT-R cascade at S=1: stale head stores rewind the queue past the k=2 budget; announce slots (WS-MULT) restore the bound",
			program:         cascade,
			spec:            "multiplicity(k=2)",
			fixed:           cascadeFixed,
			exhaustiveFixed: true,
		},
	}
}

// TestSeededCorpus replays every checked-in counterexample and asserts the
// oracle still flags it with the recorded verdict — and that the same
// schedule on the repaired configuration is clean. With -update-corpus the
// files are regenerated from a fresh exhaustive exploration.
func TestSeededCorpus(t *testing.T) {
	for _, c := range corpusCases() {
		c := c
		t.Run(c.file, func(t *testing.T) {
			path := filepath.Join("testdata", "corpus", c.file)
			if *updateCorpus {
				regenerateCorpusEntry(t, c, path)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading corpus entry (regenerate with -update-corpus): %v", err)
			}
			var e CorpusEntry
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("corpus entry: %v", err)
			}
			if !reflect.DeepEqual(e.Program, c.program) {
				t.Fatalf("corpus file program drifted from the case table:\n file %+v\ntable %+v\nrerun with -update-corpus", e.Program, c.program)
			}
			spec, ok := SpecByName(e.Spec)
			if !ok {
				t.Fatalf("corpus entry names unknown spec %q", e.Spec)
			}
			viols, trace, err := Replay(e.Program.Scenario(), spec, e.Choices)
			if err != nil {
				t.Fatalf("replay did not complete: %v", err)
			}
			if len(viols) == 0 {
				t.Fatalf("recorded schedule no longer violates %s for %s\ntrace tail: %v",
					e.Spec, e.Program, tail(trace, 10))
			}
			if got := RenderVerdict(viols); got != e.Outcome {
				t.Fatalf("replay verdict %q, corpus recorded %q", got, e.Outcome)
			}
			// The repaired twin under the very same schedule must be clean.
			fviols, ftrace, err := Replay(c.fixed.Scenario(), spec, e.Choices)
			if err != nil {
				t.Fatalf("fixed-config replay did not complete: %v", err)
			}
			if len(fviols) > 0 {
				t.Fatalf("fixed config %s still violates on the recorded schedule: %v\ntrace tail: %v",
					c.fixed, RenderVerdict(fviols), tail(ftrace, 10))
			}
		})
	}
}

// TestSeededCorpusFixedConfigsClean checks the repaired twins beyond the
// recorded schedule — the other half of the regression: the fix is a fix,
// not a dodge of one interleaving. Where the schedule space is tractable
// the twin is proved clean exhaustively; the staged twins instead get chaos
// sampling (their recorded schedule's clean replay is asserted by
// TestSeededCorpus).
func TestSeededCorpusFixedConfigsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("schedule exploration in -short mode")
	}
	for _, c := range corpusCases() {
		c := c
		t.Run(c.file, func(t *testing.T) {
			spec, _ := SpecByName(c.spec)
			if c.exhaustiveFixed {
				rep := Run(c.fixed.Scenario(), RunOptions{
					Spec: spec, Prune: true, SleepSets: true, Parallel: 2, MaxSchedules: c.budget,
				})
				if !rep.Complete {
					t.Fatalf("exploration of fixed config incomplete after %d schedules", rep.Schedules)
				}
				if rep.Violating != 0 {
					t.Fatalf("fixed config %s violates %s on %d/%d schedules: %v",
						c.fixed, c.spec, rep.Violating, rep.Schedules, rep.Outcomes)
				}
				return
			}
			rep := Run(c.fixed.Scenario(), RunOptions{Spec: spec, SampleRuns: 2000, Counterexample: true})
			if rep.Violating != 0 {
				t.Fatalf("fixed config %s violates %s on %d/%d sampled schedules: %v",
					c.fixed, c.spec, rep.Violating, rep.Executed, rep.Outcomes)
			}
		})
	}
}

// regenerateCorpusEntry searches the case's program for its first
// violating schedule (DFS with early exit — completing the exploration is
// not required, which keeps the staged cases tractable), minimizes the
// choice list (ReplaySchedule pads with zeros, so a trailing-zero suffix
// is redundant), and writes the JSON file.
func regenerateCorpusEntry(t *testing.T, c corpusCase, path string) {
	t.Helper()
	spec, ok := SpecByName(c.spec)
	if !ok {
		t.Fatalf("case names unknown spec %q", c.spec)
	}
	ce := FindCounterexample(c.program.Scenario(), spec, RunOptions{MaxSchedules: c.budget})
	if ce == nil || len(ce.Choices) == 0 {
		t.Fatalf("%s: no replayable violation found — the case table is stale", c.file)
	}
	choices := append([]int(nil), ce.Choices...)
	for len(choices) > 0 && choices[len(choices)-1] == 0 {
		choices = choices[:len(choices)-1]
	}
	if viols, _, err := Replay(c.program.Scenario(), spec, choices); err != nil || RenderVerdict(viols) != ce.Outcome {
		// Minimization changed the outcome (should not happen — zero
		// padding is exact); fall back to the full prefix.
		choices = ce.Choices
	}
	e := CorpusEntry{
		Comment: c.comment,
		Program: c.program,
		Spec:    c.spec,
		Choices: choices,
		Outcome: ce.Outcome,
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: recorded %q via %d choices", c.file, ce.Outcome, len(choices))
}

func tail(lines []string, n int) []string {
	if len(lines) <= n {
		return lines
	}
	return lines[len(lines)-n:]
}
