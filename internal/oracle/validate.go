package oracle

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Validation error taxonomy for Program. Each exported sentinel names one
// rejected field so ingestion boundaries (the verification service's job
// intake, corpus loaders) can classify failures with errors.Is while the
// wrapped message carries the offending value.
var (
	// ErrBadAlgo rejects an algorithm outside the implemented registry.
	ErrBadAlgo = errors.New("oracle: unknown algorithm")
	// ErrBadBufferSize rejects a non-positive store-buffer size.
	ErrBadBufferSize = errors.New("oracle: store-buffer size must be >= 1")
	// ErrBadDelta rejects a δ that is negative, or missing (zero) for an
	// algorithm that is parameterized by δ.
	ErrBadDelta = errors.New("oracle: bad delta")
	// ErrBadCapacity rejects a negative queue capacity (zero selects the
	// default).
	ErrBadCapacity = errors.New("oracle: queue capacity must be >= 0")
	// ErrBadPrefill rejects a negative prefill count.
	ErrBadPrefill = errors.New("oracle: prefill must be >= 0")
	// ErrBadWorkerOps rejects a worker script with characters other than
	// 'P' and 'T'.
	ErrBadWorkerOps = errors.New("oracle: worker ops must be 'P' or 'T'")
	// ErrBadThieves rejects a thief with a non-positive attempt budget.
	ErrBadThieves = errors.New("oracle: thief attempts must be >= 1")
	// ErrTooManyThreads rejects a program whose thread count (worker plus
	// thieves) exceeds MaxProgramThreads — exhaustive exploration beyond
	// that is intractable, and the bound keeps service inputs sane.
	ErrTooManyThreads = errors.New("oracle: too many threads")
)

// MaxProgramThreads bounds a validated program's total thread count
// (one worker plus its thieves).
const MaxProgramThreads = 8

// Validate checks the program's fields against the taxonomy above and
// returns the first violation, wrapped so errors.Is matches the sentinel
// and the message names the offending value. A nil error means Scenario
// and Config produce a well-formed, explorable workload. Fuzz-decoded
// and corpus programs always validate; the method exists for inputs that
// cross a trust boundary, like the verification service's job intake.
func (p Program) Validate() error {
	if _, ok := core.ParseAlgo(p.Algo.String()); !ok {
		return fmt.Errorf("%w: %d", ErrBadAlgo, int(p.Algo))
	}
	if p.S < 1 {
		return fmt.Errorf("%w: got %d", ErrBadBufferSize, p.S)
	}
	if p.Delta < 0 {
		return fmt.Errorf("%w: negative delta %d", ErrBadDelta, p.Delta)
	}
	if p.Delta == 0 && p.Algo.UsesDelta() {
		return fmt.Errorf("%w: %s is parameterized by delta, got 0", ErrBadDelta, p.Algo)
	}
	if p.Capacity < 0 {
		return fmt.Errorf("%w: got %d", ErrBadCapacity, p.Capacity)
	}
	if p.Prefill < 0 {
		return fmt.Errorf("%w: got %d", ErrBadPrefill, p.Prefill)
	}
	for i, op := range p.WorkerOps {
		if op != 'P' && op != 'T' {
			return fmt.Errorf("%w: op %d is %q", ErrBadWorkerOps, i, string(op))
		}
	}
	for i, attempts := range p.Thieves {
		if attempts < 1 {
			return fmt.Errorf("%w: thief %d has budget %d", ErrBadThieves, i, attempts)
		}
	}
	if threads := 1 + len(p.Thieves); threads > MaxProgramThreads {
		return fmt.Errorf("%w: %d threads, max %d", ErrTooManyThreads, threads, MaxProgramThreads)
	}
	return nil
}
