package oracle

import (
	"repro/internal/core"
	"repro/internal/tso"
)

// Instrumented wraps a core.Deque so every Put/Take/Steal emits begin and
// end events into a History. The wrapper adds no simulated memory
// operations — recording happens in harness (host) code around the inner
// calls — so an instrumented run explores exactly the schedules of the
// uninstrumented one, and disabling the oracle cannot change any
// experiment's outcome.
type Instrumented struct {
	inner core.Deque
	hist  *History
}

// Instrument wraps d so its operations are recorded into h.
func Instrument(d core.Deque, h *History) *Instrumented {
	return &Instrumented{inner: d, hist: h}
}

// Name implements core.Deque.
func (q *Instrumented) Name() string { return q.inner.Name() }

// Put implements core.Deque, recording the enqueue.
func (q *Instrumented) Put(c tso.Context, v uint64) {
	q.hist.Begin(c.ThreadID(), OpPut, v)
	q.inner.Put(c, v)
	q.hist.End(c.ThreadID(), OpPut, v, core.OK)
}

// Take implements core.Deque, recording the dequeue and its outcome.
func (q *Instrumented) Take(c tso.Context) (uint64, core.Status) {
	q.hist.Begin(c.ThreadID(), OpTake, 0)
	v, st := q.inner.Take(c)
	q.hist.End(c.ThreadID(), OpTake, v, st)
	return v, st
}

// Steal implements core.Deque, recording the dequeue and its outcome.
func (q *Instrumented) Steal(c tso.Context) (uint64, core.Status) {
	q.hist.Begin(c.ThreadID(), OpSteal, 0)
	v, st := q.inner.Steal(c)
	q.hist.End(c.ThreadID(), OpSteal, v, st)
	return v, st
}

// Prefill implements core.Prefiller by delegating to the wrapped queue
// (which must itself be a Prefiller) and recording the installed tasks.
func (q *Instrumented) Prefill(p core.Poker, vals []uint64) {
	q.inner.(core.Prefiller).Prefill(p, vals)
	q.hist.RecordPrefill(vals)
}
