package oracle

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// This file is the proof/refutation suite for the WS-MULT family (the
// fully read/write queues of wsmult.go) on the bounded-TSO machine:
//
//   - no task loss or phantom, proved over every explored schedule
//     across S × stage × δ (δ being a no-op for this family — proved,
//     not assumed), with a DPOR cross-check of the verdict set;
//   - duplicates *reachable* (the relaxation is real, not slack), with
//     replayable counterexamples;
//   - the announce/collect bound k = #extractors proved for WS-MULT
//     and shown tight (k-1 refuted);
//   - the boundary where WS-MULT-R exceeds k=2: one thief attempt
//     keeps every schedule within the bound, a second attempt is the
//     smallest program that breaks it, already at S=1.
//
// Engine choice: the proofs run under the canonical-state memoizer
// (Prune+SleepSets), which collapses WS-MULT's collect-loop states far
// better than DPOR does — the announce reads make almost every pair of
// extractor steps dependent, so the dependence-aware reduction has
// little commuting structure to exploit here (the reverse of the
// Chase-Lev workloads in dpor_test.go). A DPOR run cross-checks the
// verdict set on the S=1 duel, where it is still tractable.

// wsMultDuel is the lean workload the grid proofs run: one prefilled
// task, a concurrent Put from the owner, then a drain, against a thief
// making one steal attempt. It exercises put, take, and steal on every
// path while keeping complete exploration tractable at S=4 with the
// drain stage on.
func wsMultDuel(algo core.Algo, s int) Program {
	return Program{Algo: algo, S: s, Delta: 1, Prefill: 1, WorkerOps: "P", Thieves: []int{1}, Drain: true}
}

// exhaust runs a complete exploration under the memoizing engine and
// fails the test if the schedule space was not fully covered. ce
// requests counterexample extraction (a sequential re-search — only ask
// when the test replays it).
func exhaust(t *testing.T, p Program, spec Spec, ce bool) Report {
	t.Helper()
	rep := Run(p.Scenario(), RunOptions{Spec: spec, Prune: true, SleepSets: true, Parallel: 4, Counterexample: ce})
	if !rep.Complete {
		t.Fatalf("%s: exploration incomplete after %d executed schedules", p, rep.Executed)
	}
	if rep.StepLimited > 0 {
		t.Fatalf("%s: %d schedules hit the step limit; the proof has holes", p, rep.StepLimited)
	}
	return rep
}

// outcomesWith reports whether any schedule's verdict contains marker.
func outcomesWith(rep Report, marker string) bool {
	for o := range rep.Outcomes {
		if strings.Contains(o, marker) {
			return true
		}
	}
	return false
}

// sameVerdictSet compares outcome keys only: the memoizer weights
// counts by collapsed suffixes and DPOR counts Mazurkiewicz classes, so
// tallies are not comparable across engines — the verdict set is.
func sameVerdictSet(a, b Report) bool {
	if len(a.Outcomes) != len(b.Outcomes) {
		return false
	}
	for o := range a.Outcomes {
		if _, ok := b.Outcomes[o]; !ok {
			return false
		}
	}
	return true
}

// replayCounterexample re-executes a report's counterexample schedule
// and fails unless it reproduces the recorded verdict.
func replayCounterexample(t *testing.T, p Program, spec Spec, rep Report) {
	t.Helper()
	ce := rep.Counterexample
	if ce == nil {
		t.Fatalf("%s: no counterexample extracted", p)
	}
	viols, _, err := Replay(p.Scenario(), spec, ce.Choices)
	if err != nil {
		t.Fatalf("%s: replay failed: %v", p, err)
	}
	if got := RenderVerdict(viols); got != ce.Outcome {
		t.Fatalf("%s: replay verdict %q != counterexample %q", p, got, ce.Outcome)
	}
}

// TestWSMultNoLossProofGrid proves the family's safety half across the
// machine grid: under the at-least-once (Idempotent) spec, no schedule
// of the duel loses a task or hands out a phantom, for both variants,
// at S ∈ {1, 2, 4}, with and without the §7.3 drain stage. And since
// neither variant takes a δ, the verdict set is proved identical under
// δ=1 and δ=observable-bound rather than asserted so.
func TestWSMultNoLossProofGrid(t *testing.T) {
	sizes := []int{1, 2, 4}
	stages := []bool{false, true}
	if testing.Short() {
		sizes = []int{1, 2}
		stages = []bool{false}
	}
	for _, algo := range []core.Algo{core.AlgoWSMult, core.AlgoWSMultRelaxed} {
		for _, s := range sizes {
			for _, stage := range stages {
				p := wsMultDuel(algo, s)
				p.Stage = stage
				rep := exhaust(t, p, Idempotent{}, false)
				if rep.Violating != 0 {
					t.Errorf("%s: %d schedule classes violate at-least-once: %v",
						p, rep.Violating, rep.Outcomes)
				}
				if s == 1 {
					// δ-independence, proved: the same duel with δ at
					// the machine's observable bound explores an
					// identical verdict set.
					q := p
					q.Delta = q.Config().ObservableBound()
					if rep2 := exhaust(t, q, Idempotent{}, false); !sameVerdictSet(rep, rep2) {
						t.Errorf("%s: verdicts differ across δ: %v vs %v", q, rep2.Outcomes, rep.Outcomes)
					}
				}
			}
		}
	}
}

// TestWSMultDPORCrossCheck re-proves the S=1 drain race under
// source-set DPOR and requires the exact verdict set the memoizer
// found — guarding the grid proof against a hypothetical memoizer
// unsoundness on this family's access pattern (and vice versa). The
// check runs under Precise so the compared set is non-trivial (it
// contains the reachable duplicate verdicts, not just "ok"), and on
// the put-free race because the owner's concurrent Put stretches the
// drain loop beyond what DPOR explores in reasonable time — the very
// asymmetry the file comment describes.
func TestWSMultDPORCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("DPOR exploration of the WS-MULT drain race is slow in -short mode")
	}
	for _, algo := range []core.Algo{core.AlgoWSMult, core.AlgoWSMultRelaxed} {
		p := Program{Algo: algo, S: 1, Delta: 1, Prefill: 2, Thieves: []int{1}, Drain: true}
		pruned := exhaust(t, p, Precise{}, false)
		dpor := Run(p.Scenario(), RunOptions{Spec: Precise{}, DPOR: true, Parallel: 4})
		if !dpor.Complete {
			t.Fatalf("%s: DPOR exploration incomplete after %d runs", p, dpor.Executed)
		}
		if (dpor.Violating > 0) != (pruned.Violating > 0) || !sameVerdictSet(pruned, dpor) {
			t.Errorf("%s: DPOR disagrees: %v vs %v", p, dpor.Outcomes, pruned.Outcomes)
		}
	}
}

// TestWSMultDuplicatesReachable shows the relaxation is inhabited: for
// both variants some schedule removes a prefilled task twice, so the
// precise spec is genuinely refuted — with a replayed counterexample,
// already at S=1 (one buffered store per thread suffices: the thief's
// head advance, resp. announce, stalls in its buffer while the owner
// extracts the same index).
func TestWSMultDuplicatesReachable(t *testing.T) {
	for _, algo := range []core.Algo{core.AlgoWSMult, core.AlgoWSMultRelaxed} {
		p := Program{Algo: algo, S: 1, Delta: 1, Prefill: 2, Thieves: []int{1}, Drain: true}
		rep := exhaust(t, p, Precise{}, true)
		if !outcomesWith(rep, "duplicate") {
			t.Fatalf("%s: no schedule duplicated a task: %v", p, rep.Outcomes)
		}
		replayCounterexample(t, p, Precise{}, rep)
	}
}

// TestWSMultAnnounceBound proves WS-MULT's multiplicity claim and its
// tightness: with e extracting threads, every schedule respects the
// per-task budget k = e, and some schedule exceeds k = e-1. Proved for
// e=2 (worker + one thief, with the k=1 counterexample replayed) and
// e=3 (two thieves racing the drain of a single prefilled task).
func TestWSMultAnnounceBound(t *testing.T) {
	t.Run("one-thief", func(t *testing.T) {
		p := Program{Algo: core.AlgoWSMult, S: 1, Delta: 1, Prefill: 2, Thieves: []int{1}, Drain: true}
		if rep := exhaust(t, p, Multiplicity{K: 2}, false); rep.Violating != 0 {
			t.Errorf("%s: budget k=2 violated: %v", p, rep.Outcomes)
		}
		rep := exhaust(t, p, Multiplicity{K: 1}, true)
		if !outcomesWith(rep, "dup>1") {
			t.Fatalf("%s: budget k=1 never exceeded: %v — the bound is not tight", p, rep.Outcomes)
		}
		replayCounterexample(t, p, Multiplicity{K: 1}, rep)
	})
	t.Run("two-thieves", func(t *testing.T) {
		if testing.Short() {
			t.Skip("3-thread exhaustive proof in -short mode")
		}
		p := Program{Algo: core.AlgoWSMult, S: 1, Delta: 1, Prefill: 1, Thieves: []int{1, 1}, Drain: true}
		if rep := exhaust(t, p, Multiplicity{K: 3}, false); rep.Violating != 0 {
			t.Errorf("%s: budget k=3 violated: %v", p, rep.Outcomes)
		}
		if rep := exhaust(t, p, Multiplicity{K: 2}, false); !outcomesWith(rep, "dup>2") {
			t.Errorf("%s: budget k=2 never exceeded: %v — the bound is not tight", p, rep.Outcomes)
		}
	})
}

// TestWSMultRelaxedBoundary locates the smallest configuration where
// the announce-free variant exceeds the budget k=2 that WS-MULT proves
// with one thief. A single steal attempt cannot: the thief's lone stale
// head store rewinds the owner at most once per index. Giving the same
// thief a second attempt is the smallest change that breaks k=2, and it
// breaks already at S=1 — the head-rewind cascade needs only one
// buffered store per thread. The same program on WS-MULT (the announce
// slots restored) is proved within k=2, so the boundary is attributable
// to the missing announce protocol alone.
func TestWSMultRelaxedBoundary(t *testing.T) {
	within := Program{Algo: core.AlgoWSMultRelaxed, S: 1, Delta: 1, Prefill: 3, WorkerOps: "TT", Thieves: []int{1}, Drain: true}
	if rep := exhaust(t, within, Multiplicity{K: 2}, false); rep.Violating != 0 {
		t.Errorf("%s: k=2 exceeded with a single steal attempt: %v", within, rep.Outcomes)
	}

	beyond := within
	beyond.Thieves = []int{2}
	rep := exhaust(t, beyond, Multiplicity{K: 2}, true)
	if !outcomesWith(rep, "dup>2") {
		t.Fatalf("%s: k=2 never exceeded: %v — boundary moved, update this test", beyond, rep.Outcomes)
	}
	replayCounterexample(t, beyond, Multiplicity{K: 2}, rep)

	repaired := beyond
	repaired.Algo = core.AlgoWSMult
	if rep := exhaust(t, repaired, Multiplicity{K: 2}, false); rep.Violating != 0 {
		t.Errorf("%s: announce protocol did not restore the bound: %v", repaired, rep.Outcomes)
	}
}
