package oracle

import (
	"testing"

	"repro/internal/core"
)

// decodeHistory turns raw fuzz bytes into an arbitrary — including
// malformed — history, 4 bytes per step. Unlike the machine-driven
// histories the checker normally sees, these can interleave begins and
// ends in every broken way, which is the point: the checker must classify
// anything without panicking.
func decodeHistory(data []byte) *History {
	h := NewHistory()
	if len(data) == 0 {
		return h
	}
	npre := int(data[0]) % 4
	for i := 0; i < npre; i++ {
		h.RecordPrefill([]uint64{uint64(i + 1)})
	}
	if data[0]%2 == 0 {
		h.ExpectDrained()
	}
	for i := 1; i+3 < len(data); i += 4 {
		thread := int(data[i]) % 3
		kind := OpKind(int(data[i+1]) % 3)
		task := uint64(data[i+2]) % 8
		st := core.Status(int(data[i+3]) % 3)
		if data[i+1]%2 == 0 {
			h.Begin(thread, kind, task)
		} else {
			h.End(thread, kind, task, st)
		}
	}
	return h
}

// FuzzCheckerMetamorphic feeds the checker arbitrary histories and pins
// its metamorphic invariants: Check never panics, verdicts are
// deterministic, and the specs form a weakening chain — every violation
// a relaxed spec reports must also be reported (same or corresponding
// class, same task or thread) by every stricter one. Concretely:
// Idempotent ⊆ Multiplicity{K} ⊆ Precise (a dup-bound breach implies a
// precise duplicate on the same task), and Multiplicity is monotone in
// K (a k=3 breach is a fortiori a k=2 breach).
func FuzzCheckerMetamorphic(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 1, 0, 0, 1, 1, 0})             // prefill + begin/end pair
	f.Add([]byte{1, 1, 2, 5, 0})                         // steal begins, never ends
	f.Add([]byte{3, 0, 3, 7, 1})                         // end without begin
	f.Add([]byte{2, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1, 0}) // triple removal of task 1: dup-bound territory
	f.Fuzz(func(t *testing.T, data []byte) {
		h := decodeHistory(data)
		precise := Precise{}.Check(h)
		relaxed := Idempotent{}.Check(h)
		mult2 := Multiplicity{K: 2}.Check(h)
		mult3 := Multiplicity{K: 3}.Check(h)
		if got, again := RenderVerdict(precise), RenderVerdict(Precise{}.Check(h)); got != again {
			t.Fatalf("precise verdict unstable: %q then %q", got, again)
		}
		if got, again := RenderVerdict(mult2), RenderVerdict(Multiplicity{K: 2}.Check(h)); got != again {
			t.Fatalf("multiplicity verdict unstable: %q then %q", got, again)
		}
		// matches reports whether vs contains a violation of the given
		// class on the same task (or, for torn, the same thread).
		matches := func(vs []Violation, verdict Verdict, want Violation) bool {
			for _, v := range vs {
				if v.Verdict != verdict {
					continue
				}
				if verdict == VerdictTorn && v.Thread == want.Thread {
					return true
				}
				if verdict != VerdictTorn && v.Task == want.Task {
					return true
				}
			}
			return false
		}
		for _, v := range relaxed {
			if v.Verdict == VerdictDuplicate || v.Verdict == VerdictDupBound {
				t.Fatalf("idempotent spec reported a duplicate: %v", v)
			}
			if !matches(precise, v.Verdict, v) {
				t.Fatalf("idempotent violation %v has no precise counterpart %v", v, precise)
			}
			// Multiplicity extends Idempotent: everything the weaker spec
			// flags, the budgeted one flags identically.
			if !matches(mult2, v.Verdict, v) {
				t.Fatalf("idempotent violation %v has no multiplicity counterpart %v", v, mult2)
			}
		}
		for _, v := range mult2 {
			if v.Verdict == VerdictDuplicate {
				t.Fatalf("multiplicity spec reported a plain duplicate: %v", v)
			}
			want := v.Verdict
			if want == VerdictDupBound {
				// A budget breach is a fortiori a precise duplicate.
				want = VerdictDuplicate
			}
			if !matches(precise, want, v) {
				t.Fatalf("multiplicity violation %v has no precise counterpart %v", v, precise)
			}
		}
		for _, v := range mult3 {
			if v.Verdict != VerdictDupBound {
				continue
			}
			if !matches(mult2, VerdictDupBound, v) {
				t.Fatalf("k=3 breach %v not flagged under k=2: %v", v, mult2)
			}
		}
	})
}

// fuzzSampleSeeds is how many chaos seeds each differential fuzz
// iteration samples per algorithm; fuzzStepLimit bounds a sampled
// schedule so spin-heavy interleavings (an echo-protocol thief waiting on
// a worker the scheduler starves) cost bounded time and bucket as
// "<step-limit>" rather than hanging the fuzzer.
const (
	fuzzSampleSeeds = 12
	fuzzStepLimit   = 20_000
)

// FuzzDifferentialPrograms decodes a small workload shape from the fuzz
// input and runs it across EVERY implemented algorithm under that
// algorithm's own contract: precise queues must deliver exactly-once,
// idempotent ones at-least-once. The decoded configurations are sound by
// construction (δ at the machine's observable bound), so any violation is
// a real implementation bug, not a paper-predicted unsound parameter.
func FuzzDifferentialPrograms(f *testing.F) {
	f.Add([]byte{0, 0, 2, 0, 2, 1, 2})            // drained put/take mix, one thief
	f.Add([]byte{4, 1, 3, 2, 3, 0, 1, 2})         // FF-CL, S=2, prefetched takes
	f.Add([]byte{7, 0, 1, 1, 5, 3, 0, 1, 2, 3})   // idempotent FIFO duel
	f.Add([]byte{2, 1, 0, 2, 4, 1, 1, 0, 0, 255}) // THEP with drain stage off
	f.Add([]byte{8, 0, 2, 0, 2, 1, 2})            // WS-MULT drained duel (bounded-multiplicity contract)
	f.Add([]byte{9, 1, 3, 2, 3, 1, 2, 1})         // WS-MULT-R, S=2, staged, two thieves
	f.Fuzz(func(t *testing.T, data []byte) {
		shape, ok := DecodeProgram(data)
		if !ok {
			t.Skip("input too short for a program")
		}
		for _, algo := range core.AllAlgos {
			p := shape
			p.Algo = algo
			p.Delta = p.Config().ObservableBound()
			rep := Run(p.Scenario(), RunOptions{
				Spec:           p.Spec(),
				SampleRuns:     fuzzSampleSeeds,
				MaxStepsPerRun: fuzzStepLimit,
				Counterexample: true,
			})
			if rep.Violating != 0 {
				t.Errorf("%s violates %s spec: %v (counterexample: %+v)",
					p, rep.Spec, rep.Outcomes, rep.Counterexample)
			}
		}
	})
}

// FuzzReplaySound replays arbitrary byte-derived schedules against
// soundly configured pinned programs: whatever interleaving the
// (clamped) choices select, a completed run must satisfy the program's
// contract — exactly-once for the FF-CL duel, the proved k=2
// multiplicity budget for the WS-MULT duel. This drives
// ReplaySchedule's clamping through schedules no exploration order
// would produce.
func FuzzReplaySound(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 2, 1, 1, 0, 3})
	f.Add([]byte{255, 254, 253, 7, 9, 11, 13, 2, 1, 0})
	pinned := []struct {
		p    Program
		spec Spec
	}{
		{Program{Algo: core.AlgoFFCL, S: 2, Delta: 2, Prefill: 2, WorkerOps: "T", Thieves: []int{1}}, Precise{}},
		{Program{Algo: core.AlgoWSMult, S: 2, Delta: 1, Prefill: 2, WorkerOps: "T", Thieves: []int{1}, Drain: true}, Multiplicity{K: 2}},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			t.Skip("choice prefix longer than any schedule of this program")
		}
		choices := make([]int, len(data))
		for i, b := range data {
			choices[i] = int(b) - 128 // exercise negative clamping too
		}
		for _, c := range pinned {
			viols, _, err := Replay(c.p.Scenario(), c.spec, choices)
			if err != nil {
				t.Fatalf("replay of terminating program %s failed: %v", c.p, err)
			}
			if len(viols) != 0 {
				t.Fatalf("sound %s violated %s under choices %v: %v", c.p, c.spec.Name(), choices, viols)
			}
		}
	})
}
