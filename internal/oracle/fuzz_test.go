package oracle

import (
	"testing"

	"repro/internal/core"
)

// decodeHistory turns raw fuzz bytes into an arbitrary — including
// malformed — history, 4 bytes per step. Unlike the machine-driven
// histories the checker normally sees, these can interleave begins and
// ends in every broken way, which is the point: the checker must classify
// anything without panicking.
func decodeHistory(data []byte) *History {
	h := NewHistory()
	if len(data) == 0 {
		return h
	}
	npre := int(data[0]) % 4
	for i := 0; i < npre; i++ {
		h.RecordPrefill([]uint64{uint64(i + 1)})
	}
	if data[0]%2 == 0 {
		h.ExpectDrained()
	}
	for i := 1; i+3 < len(data); i += 4 {
		thread := int(data[i]) % 3
		kind := OpKind(int(data[i+1]) % 3)
		task := uint64(data[i+2]) % 8
		st := core.Status(int(data[i+3]) % 3)
		if data[i+1]%2 == 0 {
			h.Begin(thread, kind, task)
		} else {
			h.End(thread, kind, task, st)
		}
	}
	return h
}

// FuzzCheckerMetamorphic feeds the checker arbitrary histories and pins
// its metamorphic invariants: Check never panics, verdicts are
// deterministic, and Idempotent is a strict weakening of Precise — every
// violation the relaxed spec reports must also be reported (same class,
// same task or thread) by the strict one.
func FuzzCheckerMetamorphic(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 1, 0, 0, 1, 1, 0}) // prefill + begin/end pair
	f.Add([]byte{1, 1, 2, 5, 0})             // steal begins, never ends
	f.Add([]byte{3, 0, 3, 7, 1})             // end without begin
	f.Fuzz(func(t *testing.T, data []byte) {
		h := decodeHistory(data)
		precise := Precise{}.Check(h)
		relaxed := Idempotent{}.Check(h)
		if got, again := RenderVerdict(precise), RenderVerdict(Precise{}.Check(h)); got != again {
			t.Fatalf("precise verdict unstable: %q then %q", got, again)
		}
		match := func(want Violation) bool {
			for _, v := range precise {
				if v.Verdict != want.Verdict {
					continue
				}
				if want.Verdict == VerdictTorn && v.Thread == want.Thread {
					return true
				}
				if want.Verdict != VerdictTorn && v.Task == want.Task {
					return true
				}
			}
			return false
		}
		for _, v := range relaxed {
			if v.Verdict == VerdictDuplicate {
				t.Fatalf("idempotent spec reported a duplicate: %v", v)
			}
			if !match(v) {
				t.Fatalf("idempotent violation %v has no precise counterpart %v", v, precise)
			}
		}
	})
}

// fuzzSampleSeeds is how many chaos seeds each differential fuzz
// iteration samples per algorithm; fuzzStepLimit bounds a sampled
// schedule so spin-heavy interleavings (an echo-protocol thief waiting on
// a worker the scheduler starves) cost bounded time and bucket as
// "<step-limit>" rather than hanging the fuzzer.
const (
	fuzzSampleSeeds = 12
	fuzzStepLimit   = 20_000
)

// FuzzDifferentialPrograms decodes a small workload shape from the fuzz
// input and runs it across EVERY implemented algorithm under that
// algorithm's own contract: precise queues must deliver exactly-once,
// idempotent ones at-least-once. The decoded configurations are sound by
// construction (δ at the machine's observable bound), so any violation is
// a real implementation bug, not a paper-predicted unsound parameter.
func FuzzDifferentialPrograms(f *testing.F) {
	f.Add([]byte{0, 0, 2, 0, 2, 1, 2})            // drained put/take mix, one thief
	f.Add([]byte{4, 1, 3, 2, 3, 0, 1, 2})         // FF-CL, S=2, prefetched takes
	f.Add([]byte{7, 0, 1, 1, 5, 3, 0, 1, 2, 3})   // idempotent FIFO duel
	f.Add([]byte{2, 1, 0, 2, 4, 1, 1, 0, 0, 255}) // THEP with drain stage off
	f.Fuzz(func(t *testing.T, data []byte) {
		shape, ok := DecodeProgram(data)
		if !ok {
			t.Skip("input too short for a program")
		}
		for _, algo := range core.AllAlgos {
			p := shape
			p.Algo = algo
			p.Delta = p.Config().ObservableBound()
			rep := Run(p.Scenario(), RunOptions{
				Spec:           p.Spec(),
				SampleRuns:     fuzzSampleSeeds,
				MaxStepsPerRun: fuzzStepLimit,
				Counterexample: true,
			})
			if rep.Violating != 0 {
				t.Errorf("%s violates %s spec: %v (counterexample: %+v)",
					p, rep.Spec, rep.Outcomes, rep.Counterexample)
			}
		}
	})
}

// FuzzReplaySound replays arbitrary byte-derived schedules against a
// soundly configured FF-CL duel: whatever interleaving the (clamped)
// choices select, a completed run must satisfy the precise spec. This
// drives ReplaySchedule's clamping through schedules no exploration order
// would produce.
func FuzzReplaySound(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 2, 1, 1, 0, 3})
	f.Add([]byte{255, 254, 253, 7, 9, 11, 13, 2, 1, 0})
	p := Program{Algo: core.AlgoFFCL, S: 2, Delta: 2, Prefill: 2, WorkerOps: "T", Thieves: []int{1}}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			t.Skip("choice prefix longer than any schedule of this program")
		}
		choices := make([]int, len(data))
		for i, b := range data {
			choices[i] = int(b) - 128 // exercise negative clamping too
		}
		viols, _, err := Replay(p.Scenario(), Precise{}, choices)
		if err != nil {
			t.Fatalf("replay of a terminating program failed: %v", err)
		}
		if len(viols) != 0 {
			t.Fatalf("sound FF-CL violated the precise spec under choices %v: %v", choices, viols)
		}
	})
}
