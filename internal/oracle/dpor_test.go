package oracle

import (
	"testing"

	"repro/internal/core"
)

// TestOracleDPORPreservesVerdicts is the oracle-level preservation bar
// for source-set DPOR: on a 3-thread workload (worker plus two thieves)
// the set of reachable verdicts, completeness, and whether any violation
// exists must match a Prune-only complete exploration exactly.
// Per-verdict counts are NOT compared: DPOR executes one representative
// per Mazurkiewicz class, so its tallies are class counts.
func TestOracleDPORPreservesVerdicts(t *testing.T) {
	p := Program{Algo: core.AlgoIdempotentFIFO, S: 1, Prefill: 2, WorkerOps: "T", Thieves: []int{1, 1}, Drain: true}
	pruned := Run(p.Scenario(), RunOptions{Spec: Precise{}, Prune: true, Parallel: 2})
	dpor := Run(p.Scenario(), RunOptions{Spec: Precise{}, DPOR: true, Parallel: 2})
	if !pruned.Complete || !dpor.Complete {
		t.Fatalf("incomplete exploration: pruned=%v dpor=%v", pruned.Complete, dpor.Complete)
	}
	for o := range pruned.Outcomes {
		if dpor.Outcomes[o] == 0 {
			t.Errorf("verdict %q lost under DPOR (got %v)", o, dpor.Outcomes)
		}
	}
	for o := range dpor.Outcomes {
		if pruned.Outcomes[o] == 0 {
			t.Errorf("verdict %q invented under DPOR", o)
		}
	}
	if (pruned.Violating > 0) != (dpor.Violating > 0) {
		t.Errorf("violation existence diverged: pruned %d, DPOR %d", pruned.Violating, dpor.Violating)
	}
	t.Logf("3-thread idempotent FIFO: pruned executed %d, DPOR executed %d, verdicts %v",
		pruned.Executed, dpor.Executed, dpor.Outcomes)
}

// TestOracleDPORExecutedRunReduction is the acceptance criterion from the
// dependence-layer work: on 3-thread oracle workloads DPOR must execute
// at least 5x fewer schedules than the Prune-only engine while reaching
// the same verdict set (checked above). The workloads are worker-take vs
// two thief-steals on a prefilled Chase-Lev deque — the two ends touch
// disjoint cells, exactly the commuting structure a dependence-aware
// reduction collapses and canonical-state memoization cannot. (The
// reverse exists too: CAS-retry-heavy workloads like the idempotent FIFO
// converge state-wise and favor the memoizer — see EXPERIMENTS.md.)
func TestOracleDPORExecutedRunReduction(t *testing.T) {
	cases := []Program{
		{Algo: core.AlgoChaseLev, S: 1, Prefill: 3, WorkerOps: "T", Thieves: []int{1, 1}},
		{Algo: core.AlgoChaseLev, S: 2, Prefill: 3, WorkerOps: "T", Thieves: []int{1, 1}},
		{Algo: core.AlgoChaseLev, S: 1, Prefill: 3, WorkerOps: "TT", Thieves: []int{1, 1}},
	}
	for _, p := range cases {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			pruned := Run(p.Scenario(), RunOptions{Spec: p.Spec(), Prune: true, Parallel: 2})
			dpor := Run(p.Scenario(), RunOptions{Spec: p.Spec(), DPOR: true, Parallel: 2})
			if !pruned.Complete || !dpor.Complete {
				t.Fatalf("incomplete exploration: pruned=%v dpor=%v", pruned.Complete, dpor.Complete)
			}
			if dpor.Executed*5 > pruned.Executed {
				t.Errorf("DPOR executed %d runs, prune-only %d: reduction below 5x",
					dpor.Executed, pruned.Executed)
			}
			t.Logf("%s: prune-only executed %d, DPOR executed %d (%.1fx)",
				p.Algo, pruned.Executed, dpor.Executed, float64(pruned.Executed)/float64(dpor.Executed))
		})
	}
}
