package oracle

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// buildHistory hand-constructs a history from a compact op script so the
// checker is tested independently of any machine. Each step is applied to
// the given thread in order.
type histStep struct {
	thread int
	kind   OpKind
	begin  bool
	task   uint64
	status core.Status
}

func mkHist(drained bool, prefill []uint64, steps []histStep) *History {
	h := NewHistory()
	h.RecordPrefill(prefill)
	if drained {
		h.ExpectDrained()
	}
	for _, s := range steps {
		if s.begin {
			h.Begin(s.thread, s.kind, s.task)
		} else {
			h.End(s.thread, s.kind, s.task, s.status)
		}
	}
	return h
}

// op builds the begin+end pair of one completed operation.
func op(thread int, kind OpKind, task uint64, st core.Status) []histStep {
	return []histStep{
		{thread: thread, kind: kind, begin: true, task: task},
		{thread: thread, kind: kind, task: task, status: st},
	}
}

func cat(groups ...[]histStep) []histStep {
	var out []histStep
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func TestCheckerVerdictTable(t *testing.T) {
	cases := []struct {
		name           string
		drained        bool
		prefill        []uint64
		steps          []histStep
		wantPrecise    string // RenderVerdict under Precise
		wantIdempotent string // RenderVerdict under Idempotent
		wantMult       string // RenderVerdict under Multiplicity{K: 2}
	}{
		{
			name:    "ok: put-take-steal balance",
			drained: true,
			prefill: []uint64{1},
			steps: cat(
				op(0, OpPut, 2, core.OK),
				op(1, OpSteal, 1, core.OK),
				op(0, OpTake, 2, core.OK),
				op(0, OpTake, 0, core.Empty),
			),
			wantPrecise:    "ok",
			wantIdempotent: "ok",
			wantMult:       "ok",
		},
		{
			name:    "ok: undrained run may leave tasks behind",
			drained: false,
			prefill: []uint64{1, 2},
			steps:   op(1, OpSteal, 1, core.OK),
			// Task 2 was never removed, but the scenario did not drain, so
			// neither spec may call it lost.
			wantPrecise:    "ok",
			wantIdempotent: "ok",
			wantMult:       "ok",
		},
		{
			name:    "lost: drained run with an unremoved task",
			drained: true,
			prefill: []uint64{1, 2},
			steps: cat(
				op(0, OpTake, 2, core.OK),
				op(0, OpTake, 0, core.Empty),
			),
			wantPrecise:    "lost t1",
			wantIdempotent: "lost t1",
			wantMult:       "lost t1",
		},
		{
			name:    "duplicate: precise fails, idempotent accepts",
			drained: true,
			prefill: []uint64{1},
			steps: cat(
				op(0, OpTake, 1, core.OK),
				op(1, OpSteal, 1, core.OK),
			),
			wantPrecise:    "duplicate t1",
			wantIdempotent: "ok",
			wantMult:       "ok",
		},
		{
			name:    "phantom: removal of a task never put",
			drained: false,
			prefill: []uint64{1},
			steps:   op(1, OpSteal, 99, core.OK),
			// Garbage is a violation under both contracts.
			wantPrecise:    "phantom t99",
			wantIdempotent: "phantom t99",
			wantMult:       "phantom t99",
		},
		{
			name:    "torn: steal never ends",
			drained: false,
			prefill: []uint64{1},
			steps: []histStep{
				{thread: 1, kind: OpSteal, begin: true},
			},
			wantPrecise:    "torn th1",
			wantIdempotent: "torn th1",
			wantMult:       "torn th1",
		},
		{
			name:    "torn: end without begin",
			drained: false,
			steps: []histStep{
				{thread: 0, kind: OpTake, status: core.Empty},
			},
			wantPrecise:    "torn th0",
			wantIdempotent: "torn th0",
			wantMult:       "torn th0",
		},
		{
			name:    "torn: op begins inside an open op",
			drained: false,
			steps: []histStep{
				{thread: 0, kind: OpPut, begin: true, task: 1},
				{thread: 0, kind: OpTake, begin: true},
				{thread: 0, kind: OpTake, task: 1, status: core.OK},
				{thread: 0, kind: OpPut, task: 1, status: core.OK},
			},
			// Two torn findings: the take begins inside the open put, and
			// the put's own end is then orphaned.
			wantPrecise:    "torn th0; torn th0",
			wantIdempotent: "torn th0; torn th0",
			wantMult:       "torn th0; torn th0",
		},
		{
			name:    "dup at budget: three removals of one put exceed k=2",
			drained: true,
			prefill: []uint64{1},
			steps: cat(
				op(0, OpTake, 1, core.OK),
				op(1, OpSteal, 1, core.OK),
				op(1, OpSteal, 1, core.OK),
			),
			wantPrecise:    "duplicate t1",
			wantIdempotent: "ok",
			wantMult:       "dup>2 t1",
		},
		{
			name:    "dup budget scales with put count",
			drained: true,
			prefill: []uint64{1},
			steps: cat(
				op(0, OpPut, 1, core.OK), // task 1 put a second time
				op(0, OpTake, 1, core.OK),
				op(1, OpSteal, 1, core.OK),
				op(1, OpSteal, 1, core.OK),
				op(0, OpTake, 1, core.OK),
			),
			// Four removals of a twice-put task: within budget 2·2 for
			// k=2, beyond the puts for Precise.
			wantPrecise:    "duplicate t1",
			wantIdempotent: "ok",
			wantMult:       "ok",
		},
		{
			name:    "empty and aborted attempts never count as removals",
			drained: true,
			prefill: []uint64{1},
			steps: cat(
				op(1, OpSteal, 0, core.Abort),
				op(0, OpTake, 1, core.OK),
				op(1, OpSteal, 0, core.Empty),
				op(0, OpTake, 0, core.Empty),
			),
			wantPrecise:    "ok",
			wantIdempotent: "ok",
			wantMult:       "ok",
		},
		{
			name:    "multiple violations render sorted",
			drained: true,
			prefill: []uint64{1, 2},
			steps: cat(
				op(0, OpTake, 2, core.OK),
				op(1, OpSteal, 2, core.OK),
				op(1, OpSteal, 7, core.OK),
			),
			// lost t1 (never removed), duplicate t2, phantom t7 — sorted by
			// verdict class then task.
			wantPrecise:    "lost t1; duplicate t2; phantom t7",
			wantIdempotent: "lost t1; phantom t7",
			wantMult:       "lost t1; phantom t7",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := mkHist(tc.drained, tc.prefill, tc.steps)
			if got := RenderVerdict(Precise{}.Check(h)); got != tc.wantPrecise {
				t.Errorf("precise: got %q want %q", got, tc.wantPrecise)
			}
			if got := RenderVerdict(Idempotent{}.Check(h)); got != tc.wantIdempotent {
				t.Errorf("idempotent: got %q want %q", got, tc.wantIdempotent)
			}
			if got := RenderVerdict(Multiplicity{K: 2}.Check(h)); got != tc.wantMult {
				t.Errorf("multiplicity(k=2): got %q want %q", got, tc.wantMult)
			}
		})
	}
}

// TestMultiplicityDegenerateK pins the low end of the budget rule: K=1
// and K=0 both mean "removals may not exceed puts" — exactly Precise's
// duplicate rule — while losses are still judged by the relaxed
// at-least-once rule, and the verdict class stays dup-bound.
func TestMultiplicityDegenerateK(t *testing.T) {
	dup := mkHist(true, []uint64{1}, cat(
		op(0, OpTake, 1, core.OK),
		op(1, OpSteal, 1, core.OK),
	))
	for _, k := range []int{0, 1} {
		if got := RenderVerdict(Multiplicity{K: k}.Check(dup)); got != "dup>1 t1" {
			t.Errorf("k=%d on a double removal: got %q want %q", k, got, "dup>1 t1")
		}
	}
	// A drained run where one of two puts of the same task is never
	// matched: Precise counts puts, Multiplicity (any K) only requires
	// at least one removal.
	half := mkHist(true, []uint64{1, 1}, op(0, OpTake, 1, core.OK))
	if got := RenderVerdict(Precise{}.Check(half)); got != "lost t1" {
		t.Errorf("precise on half-removed double put: got %q want %q", got, "lost t1")
	}
	for _, k := range []int{0, 1, 2} {
		if got := RenderVerdict(Multiplicity{K: k}.Check(half)); got != "ok" {
			t.Errorf("k=%d on half-removed double put: got %q want ok", k, got)
		}
	}
}

// TestMultiplicityOrderInsensitive feeds the checker the same multiset
// of operations in two different interleaved orders and requires the
// same verdict — the property the pruned exhaustive engines rely on.
func TestMultiplicityOrderInsensitive(t *testing.T) {
	forward := mkHist(true, []uint64{1, 2}, cat(
		op(0, OpTake, 1, core.OK),
		op(1, OpSteal, 1, core.OK),
		op(1, OpSteal, 1, core.OK),
		op(0, OpTake, 2, core.OK),
	))
	backward := mkHist(true, []uint64{2, 1}, cat(
		op(0, OpTake, 2, core.OK),
		op(1, OpSteal, 1, core.OK),
		op(0, OpTake, 1, core.OK),
		op(1, OpSteal, 1, core.OK),
	))
	spec := Multiplicity{K: 2}
	f, b := RenderVerdict(spec.Check(forward)), RenderVerdict(spec.Check(backward))
	if f != b || f != "dup>2 t1" {
		t.Errorf("order sensitivity: forward %q, backward %q, want both %q", f, b, "dup>2 t1")
	}
}

// TestViolationJSONRoundTrip checks the Bound field survives the trip
// through the corpus/service JSON encoding and stays omitted for the
// classes that do not use it.
func TestViolationJSONRoundTrip(t *testing.T) {
	in := []Violation{
		{Verdict: VerdictDupBound, Task: 3, Thread: -1, Bound: 2, Detail: "removed 3x for 1 put(s), budget 2"},
		{Verdict: VerdictLost, Task: 1, Thread: -1, Detail: "put 1x, never removed, queue drained"},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Bound":2`) {
		t.Errorf("dup-bound violation lost its bound: %s", data)
	}
	if strings.Count(string(data), "Bound") != 1 {
		t.Errorf("zero Bound not omitted: %s", data)
	}
	var out []Violation
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip drifted: %+v != %+v", out, in)
	}
	if got := out[0].String(); got != "dup>2 t3: removed 3x for 1 put(s), budget 2" {
		t.Errorf("rendered violation: %q", got)
	}
}

// TestSpecByNameRoundTrip pins the corpus/service spec naming: every
// spec's Name resolves back to an equivalent spec, multiplicity for
// any k ≥ 0, and malformed names are rejected.
func TestSpecByNameRoundTrip(t *testing.T) {
	for _, spec := range []Spec{Precise{}, Idempotent{}, Multiplicity{}, Multiplicity{K: 1}, Multiplicity{K: 2}, Multiplicity{K: 17}} {
		got, ok := SpecByName(spec.Name())
		if !ok || got.Name() != spec.Name() {
			t.Errorf("SpecByName(%q) = %v,%v", spec.Name(), got, ok)
		}
	}
	for _, bad := range []string{"", "exact", "multiplicity", "multiplicity(k=)", "multiplicity(k=-1)", "multiplicity(k=2x)", "Multiplicity(k=2)"} {
		if got, ok := SpecByName(bad); ok {
			t.Errorf("SpecByName(%q) = %v, want rejection", bad, got)
		}
	}
}

func TestCheckerViolationDetails(t *testing.T) {
	h := mkHist(true, []uint64{1}, cat(
		op(0, OpTake, 1, core.OK),
		op(1, OpSteal, 1, core.OK),
	))
	viols := Precise{}.Check(h)
	if len(viols) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(viols), viols)
	}
	v := viols[0]
	if v.Verdict != VerdictDuplicate || v.Task != 1 {
		t.Fatalf("wrong violation: %+v", v)
	}
	if !strings.Contains(v.Detail, "2x") || !strings.Contains(v.String(), "duplicate t1") {
		t.Fatalf("uninformative violation: %q / %q", v.Detail, v.String())
	}
}

func TestSpecForMatchesRegistry(t *testing.T) {
	for _, a := range core.AllAlgos {
		want := "precise"
		if a.Idempotent() {
			want = "idempotent"
		}
		if got := SpecFor(a).Name(); got != want {
			t.Errorf("%s: spec %q, want %q", a, got, want)
		}
	}
}

func TestHistoryReset(t *testing.T) {
	h := mkHist(true, []uint64{1}, op(0, OpTake, 1, core.OK))
	h.Reset()
	if len(h.Events()) != 0 || len(h.Prefilled()) != 0 || h.Drained() {
		t.Fatal("Reset did not clear the history")
	}
	if got := RenderVerdict(Precise{}.Check(h)); got != "ok" {
		t.Fatalf("empty history verdict %q", got)
	}
}

func TestEventAndKindStrings(t *testing.T) {
	for _, k := range []OpKind{OpPut, OpTake, OpSteal, OpKind(99)} {
		if k.String() == "" {
			t.Fatalf("empty String for kind %d", int(k))
		}
	}
	evs := []Event{
		{Seq: 0, Thread: 0, Kind: OpPut, Begin: true, Task: 3},
		{Seq: 1, Thread: 1, Kind: OpSteal, Begin: true},
		{Seq: 2, Thread: 1, Kind: OpSteal, Task: 3, Status: core.OK},
		{Seq: 3, Thread: 0, Kind: OpTake, Status: core.Empty},
	}
	for _, e := range evs {
		if e.String() == "" {
			t.Fatalf("empty String for %+v", e)
		}
	}
	if !strings.Contains(evs[2].String(), "task=3") {
		t.Fatalf("steal end missing task: %q", evs[2])
	}
}
