package oracle

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// buildHistory hand-constructs a history from a compact op script so the
// checker is tested independently of any machine. Each step is applied to
// the given thread in order.
type histStep struct {
	thread int
	kind   OpKind
	begin  bool
	task   uint64
	status core.Status
}

func mkHist(drained bool, prefill []uint64, steps []histStep) *History {
	h := NewHistory()
	h.RecordPrefill(prefill)
	if drained {
		h.ExpectDrained()
	}
	for _, s := range steps {
		if s.begin {
			h.Begin(s.thread, s.kind, s.task)
		} else {
			h.End(s.thread, s.kind, s.task, s.status)
		}
	}
	return h
}

// op builds the begin+end pair of one completed operation.
func op(thread int, kind OpKind, task uint64, st core.Status) []histStep {
	return []histStep{
		{thread: thread, kind: kind, begin: true, task: task},
		{thread: thread, kind: kind, task: task, status: st},
	}
}

func cat(groups ...[]histStep) []histStep {
	var out []histStep
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func TestCheckerVerdictTable(t *testing.T) {
	cases := []struct {
		name           string
		drained        bool
		prefill        []uint64
		steps          []histStep
		wantPrecise    string // RenderVerdict under Precise
		wantIdempotent string // RenderVerdict under Idempotent
	}{
		{
			name:    "ok: put-take-steal balance",
			drained: true,
			prefill: []uint64{1},
			steps: cat(
				op(0, OpPut, 2, core.OK),
				op(1, OpSteal, 1, core.OK),
				op(0, OpTake, 2, core.OK),
				op(0, OpTake, 0, core.Empty),
			),
			wantPrecise:    "ok",
			wantIdempotent: "ok",
		},
		{
			name:    "ok: undrained run may leave tasks behind",
			drained: false,
			prefill: []uint64{1, 2},
			steps:   op(1, OpSteal, 1, core.OK),
			// Task 2 was never removed, but the scenario did not drain, so
			// neither spec may call it lost.
			wantPrecise:    "ok",
			wantIdempotent: "ok",
		},
		{
			name:    "lost: drained run with an unremoved task",
			drained: true,
			prefill: []uint64{1, 2},
			steps: cat(
				op(0, OpTake, 2, core.OK),
				op(0, OpTake, 0, core.Empty),
			),
			wantPrecise:    "lost t1",
			wantIdempotent: "lost t1",
		},
		{
			name:    "duplicate: precise fails, idempotent accepts",
			drained: true,
			prefill: []uint64{1},
			steps: cat(
				op(0, OpTake, 1, core.OK),
				op(1, OpSteal, 1, core.OK),
			),
			wantPrecise:    "duplicate t1",
			wantIdempotent: "ok",
		},
		{
			name:    "phantom: removal of a task never put",
			drained: false,
			prefill: []uint64{1},
			steps:   op(1, OpSteal, 99, core.OK),
			// Garbage is a violation under both contracts.
			wantPrecise:    "phantom t99",
			wantIdempotent: "phantom t99",
		},
		{
			name:    "torn: steal never ends",
			drained: false,
			prefill: []uint64{1},
			steps: []histStep{
				{thread: 1, kind: OpSteal, begin: true},
			},
			wantPrecise:    "torn th1",
			wantIdempotent: "torn th1",
		},
		{
			name:    "torn: end without begin",
			drained: false,
			steps: []histStep{
				{thread: 0, kind: OpTake, status: core.Empty},
			},
			wantPrecise:    "torn th0",
			wantIdempotent: "torn th0",
		},
		{
			name:    "torn: op begins inside an open op",
			drained: false,
			steps: []histStep{
				{thread: 0, kind: OpPut, begin: true, task: 1},
				{thread: 0, kind: OpTake, begin: true},
				{thread: 0, kind: OpTake, task: 1, status: core.OK},
				{thread: 0, kind: OpPut, task: 1, status: core.OK},
			},
			// Two torn findings: the take begins inside the open put, and
			// the put's own end is then orphaned.
			wantPrecise:    "torn th0; torn th0",
			wantIdempotent: "torn th0; torn th0",
		},
		{
			name:    "multiple violations render sorted",
			drained: true,
			prefill: []uint64{1, 2},
			steps: cat(
				op(0, OpTake, 2, core.OK),
				op(1, OpSteal, 2, core.OK),
				op(1, OpSteal, 7, core.OK),
			),
			// lost t1 (never removed), duplicate t2, phantom t7 — sorted by
			// verdict class then task.
			wantPrecise:    "lost t1; duplicate t2; phantom t7",
			wantIdempotent: "lost t1; phantom t7",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := mkHist(tc.drained, tc.prefill, tc.steps)
			if got := RenderVerdict(Precise{}.Check(h)); got != tc.wantPrecise {
				t.Errorf("precise: got %q want %q", got, tc.wantPrecise)
			}
			if got := RenderVerdict(Idempotent{}.Check(h)); got != tc.wantIdempotent {
				t.Errorf("idempotent: got %q want %q", got, tc.wantIdempotent)
			}
		})
	}
}

func TestCheckerViolationDetails(t *testing.T) {
	h := mkHist(true, []uint64{1}, cat(
		op(0, OpTake, 1, core.OK),
		op(1, OpSteal, 1, core.OK),
	))
	viols := Precise{}.Check(h)
	if len(viols) != 1 {
		t.Fatalf("got %d violations, want 1: %v", len(viols), viols)
	}
	v := viols[0]
	if v.Verdict != VerdictDuplicate || v.Task != 1 {
		t.Fatalf("wrong violation: %+v", v)
	}
	if !strings.Contains(v.Detail, "2x") || !strings.Contains(v.String(), "duplicate t1") {
		t.Fatalf("uninformative violation: %q / %q", v.Detail, v.String())
	}
}

func TestSpecForMatchesRegistry(t *testing.T) {
	for _, a := range core.AllAlgos {
		want := "precise"
		if a.Idempotent() {
			want = "idempotent"
		}
		if got := SpecFor(a).Name(); got != want {
			t.Errorf("%s: spec %q, want %q", a, got, want)
		}
	}
}

func TestHistoryReset(t *testing.T) {
	h := mkHist(true, []uint64{1}, op(0, OpTake, 1, core.OK))
	h.Reset()
	if len(h.Events()) != 0 || len(h.Prefilled()) != 0 || h.Drained() {
		t.Fatal("Reset did not clear the history")
	}
	if got := RenderVerdict(Precise{}.Check(h)); got != "ok" {
		t.Fatalf("empty history verdict %q", got)
	}
}

func TestEventAndKindStrings(t *testing.T) {
	for _, k := range []OpKind{OpPut, OpTake, OpSteal, OpKind(99)} {
		if k.String() == "" {
			t.Fatalf("empty String for kind %d", int(k))
		}
	}
	evs := []Event{
		{Seq: 0, Thread: 0, Kind: OpPut, Begin: true, Task: 3},
		{Seq: 1, Thread: 1, Kind: OpSteal, Begin: true},
		{Seq: 2, Thread: 1, Kind: OpSteal, Task: 3, Status: core.OK},
		{Seq: 3, Thread: 0, Kind: OpTake, Status: core.Empty},
	}
	for _, e := range evs {
		if e.String() == "" {
			t.Fatalf("empty String for %+v", e)
		}
	}
	if !strings.Contains(evs[2].String(), "task=3") {
		t.Fatalf("steal end missing task: %q", evs[2])
	}
}
