package litmusdsl_test

import (
	"fmt"

	"repro/internal/litmusdsl"
)

// Example runs a litmus test from source and reports its verdict, proved
// over every schedule of the abstract machine.
func Example() {
	test, err := litmusdsl.Parse(`name: MP
P0: x=1; y=1
P1: r0=y; r1=x
exists: P1.r0=1 & P1.r1=0
expect: forbidden`)
	if err != nil {
		panic(err)
	}
	res, err := litmusdsl.Run(test, litmusdsl.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("verdict:", res.Verdict)
	fmt.Println("proved over every schedule:", res.Complete)
	fmt.Println("matches expectation:", res.Ok())
	// Output:
	// verdict: forbidden
	// proved over every schedule: true
	// matches expectation: true
}
