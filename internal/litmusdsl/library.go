package litmusdsl

// Library is the built-in suite of classic memory-model litmus tests with
// their verdicts on this machine's models. Each is written in the package's
// textual format so they double as parser fixtures, documentation, and a
// validation matrix for the abstract machine: the TSO verdicts below are
// the standard x86-TSO results from the literature (Sewell et al.), and
// the PSO entries show which of them weaken.
var Library = []string{
	`name: SB
# Store buffering: the one reordering TSO allows.
model: TSO
sbuf: 2
P0: x=1; r0=y
P1: y=1; r1=x
exists: P0.r0=0 & P1.r1=0
expect: allowed`,

	`name: SB+fences
model: TSO
sbuf: 2
P0: x=1; fence; r0=y
P1: y=1; fence; r1=x
exists: P0.r0=0 & P1.r1=0
expect: forbidden`,

	`name: SB+cas
# An atomic RMW orders like a fence (rule 4).
model: TSO
sbuf: 2
P0: x=1; r2=cas s 0 1; r0=y
P1: y=1; r3=cas t 0 1; r1=x
exists: P0.r0=0 & P1.r1=0
expect: forbidden`,

	`name: MP
# Message passing: FIFO drains keep data before flag.
model: TSO
sbuf: 2
P0: x=1; y=1
P1: r0=y; r1=x
exists: P1.r0=1 & P1.r1=0
expect: forbidden`,

	`name: MP+PSO
# ...but PSO reorders the two stores.
model: PSO
sbuf: 2
P0: x=1; y=1
P1: r0=y; r1=x
exists: P1.r0=1 & P1.r1=0
expect: allowed`,

	`name: LB
# Load buffering: needs load->store reordering, which TSO (and PSO, and
# this machine) never perform.
model: TSO
sbuf: 2
P0: r0=y; x=1
P1: r1=x; y=1
exists: P0.r0=1 & P1.r1=1
expect: forbidden`,

	`name: CoRR
# Coherence of read-read: two reads of one location by the same process
# never observe its writes out of order.
model: TSO
sbuf: 2
P0: x=1; x=2
P1: r0=x; r1=x
exists: P1.r0=2 & P1.r1=1
expect: forbidden`,

	`name: CoRR+PSO
# Per-address order survives even under PSO.
model: PSO
sbuf: 2
P0: x=1; x=2
P1: r0=x; r1=x
exists: P1.r0=2 & P1.r1=1
expect: forbidden`,

	`name: 2+2W
# Two writers to two locations: the final state with both first writes
# surviving needs store-store reordering; forbidden under TSO, allowed
# under PSO.
model: TSO
sbuf: 2
P0: x=1; y=2
P1: y=1; x=2
exists: x=1 & y=1
expect: forbidden`,

	`name: 2+2W+PSO
model: PSO
sbuf: 2
P0: x=1; y=2
P1: y=1; x=2
exists: x=1 & y=1
expect: allowed`,

	`name: S
# The S pattern: if P1 observes y=1, FIFO drains mean x=2 already reached
# memory, and P1's own x=1 drains later still — so x cannot finish at 2.
model: TSO
sbuf: 2
P0: x=2; y=1
P1: r0=y; x=1
exists: P1.r0=1 & x=2
expect: forbidden`,

	`name: R
# The R pattern: store buffering with one reader; allowed under TSO.
model: TSO
sbuf: 2
P0: x=1; r0=y
P1: y=1; y=2
exists: P0.r0=0 & y=2
expect: allowed`,

	`name: SB+one-fence
# A single fence does not restore order for the unfenced side.
model: TSO
sbuf: 2
P0: x=1; fence; r0=y
P1: y=1; r1=x
exists: P0.r0=0 & P1.r1=0
expect: allowed`,

	`name: WRC-ish
# Write-to-read causality through a middleman: under TSO (multi-copy
# atomic: stores become visible to everyone at once when they drain),
# P2 cannot see y=1 without x=1.
model: TSO
sbuf: 2
P0: x=1
P1: r0=x; y=1
P2: r1=y; r2=x
exists: P1.r0=1 & P2.r1=1 & P2.r2=0
expect: forbidden`,
}
