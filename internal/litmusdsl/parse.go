// Package litmusdsl is a small litmus-test language for the abstract
// TSO[S] machine, in the spirit of the herd/litmus tools the memory-model
// literature uses. A test names a handful of shared variables, gives each
// process a straight-line program of stores, loads, fences and CASes, and
// asks whether a final condition is reachable:
//
//	name: SB
//	model: TSO
//	sbuf: 4
//	init: x=0 y=0
//	P0: x=1; r0=y
//	P1: y=1; r1=x
//	exists: P0.r0=0 & P1.r1=0
//	expect: allowed
//
// Run verifies the `expect` verdict by exhaustive schedule exploration
// (tso.Explore), so "forbidden" means proved unreachable over every
// interleaving and drain schedule, not merely unobserved.
//
// Grammar notes: identifiers matching r<digits> are per-process registers;
// anything else on the right of a load or left of a store is a shared
// variable. Statements are semicolon-separated. The condition is a
// conjunction of `P<i>.r<j>=<int>` register terms and `<var>=<int>` final
// memory terms.
package litmusdsl

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/tso"
)

// StmtKind enumerates the statement forms.
type StmtKind int

// Statement kinds.
const (
	StmtStore StmtKind = iota // var = const
	StmtLoad                  // reg = var
	StmtFence                 // fence
	StmtCAS                   // reg = cas var old new
)

// Stmt is one parsed statement.
type Stmt struct {
	Kind StmtKind
	Var  string // shared variable (store/load/cas)
	Reg  string // destination register (load/cas)
	Val  uint64 // store value / CAS new
	Old  uint64 // CAS expected
}

// CondTerm is one conjunct of the exists condition.
type CondTerm struct {
	Proc int    // process index for register terms; -1 for memory terms
	Reg  string // register name (register terms)
	Var  string // variable name (memory terms)
	Val  uint64
}

// Test is a parsed litmus test.
type Test struct {
	Name   string
	Model  tso.MemoryModel
	SBuf   int // store buffer size (default 2)
	Init   map[string]uint64
	Procs  [][]Stmt
	Exists []CondTerm
	// Expect is the verdict under the declared model: "allowed" means the
	// exists condition is reachable, "forbidden" that it is not.
	Expect string
}

var (
	regIdent = regexp.MustCompile(`^r[0-9]+$`)
	varIdent = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	procHead = regexp.MustCompile(`^P([0-9]+)$`)
)

// Parse reads a litmus test from its textual form. Lines are `key: value`;
// blank lines and `#` comments are ignored.
func Parse(src string) (*Test, error) {
	t := &Test{SBuf: 2, Init: map[string]uint64{}, Expect: "allowed"}
	procs := map[int][]Stmt{}
	maxProc := -1
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("line %d: expected `key: value`, got %q", lineNo+1, line)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch {
		case key == "name":
			t.Name = val
		case key == "model":
			switch strings.ToUpper(val) {
			case "TSO":
				t.Model = tso.ModelTSO
			case "PSO":
				t.Model = tso.ModelPSO
			default:
				return nil, fmt.Errorf("line %d: unknown model %q", lineNo+1, val)
			}
		case key == "sbuf":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("line %d: bad sbuf %q", lineNo+1, val)
			}
			t.SBuf = n
		case key == "init":
			if err := parseInit(t, val); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
		case key == "exists":
			terms, err := parseExists(val)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			t.Exists = terms
		case key == "expect":
			if val != "allowed" && val != "forbidden" {
				return nil, fmt.Errorf("line %d: expect must be allowed or forbidden, got %q", lineNo+1, val)
			}
			t.Expect = val
		case procHead.MatchString(key):
			idx, _ := strconv.Atoi(key[1:])
			stmts, err := parseStmts(val)
			if err != nil {
				return nil, fmt.Errorf("line %d (%s): %v", lineNo+1, key, err)
			}
			if _, dup := procs[idx]; dup {
				return nil, fmt.Errorf("line %d: duplicate process %s", lineNo+1, key)
			}
			procs[idx] = stmts
			if idx > maxProc {
				maxProc = idx
			}
		default:
			return nil, fmt.Errorf("line %d: unknown key %q", lineNo+1, key)
		}
	}
	if t.Name == "" {
		return nil, fmt.Errorf("litmusdsl: test has no name")
	}
	if maxProc < 0 {
		return nil, fmt.Errorf("litmusdsl: test %q has no processes", t.Name)
	}
	for i := 0; i <= maxProc; i++ {
		stmts, ok := procs[i]
		if !ok {
			return nil, fmt.Errorf("litmusdsl: missing process P%d", i)
		}
		t.Procs = append(t.Procs, stmts)
	}
	if len(t.Exists) == 0 {
		return nil, fmt.Errorf("litmusdsl: test %q has no exists condition", t.Name)
	}
	return t, nil
}

func parseInit(t *Test, s string) error {
	for _, f := range strings.Fields(s) {
		name, v, ok := strings.Cut(f, "=")
		if !ok || !varIdent.MatchString(name) || regIdent.MatchString(name) {
			return fmt.Errorf("bad init %q", f)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("bad init value %q", f)
		}
		t.Init[name] = n
	}
	return nil
}

func parseStmts(s string) ([]Stmt, error) {
	var out []Stmt
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "fence" {
			out = append(out, Stmt{Kind: StmtFence})
			continue
		}
		lhs, rhs, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad statement %q", part)
		}
		lhs = strings.TrimSpace(lhs)
		rhs = strings.TrimSpace(rhs)
		switch {
		case regIdent.MatchString(lhs) && strings.HasPrefix(rhs, "cas "):
			f := strings.Fields(rhs)
			if len(f) != 4 || !isVar(f[1]) {
				return nil, fmt.Errorf("bad cas %q (want `r = cas var old new`)", part)
			}
			old, err1 := strconv.ParseUint(f[2], 10, 64)
			nv, err2 := strconv.ParseUint(f[3], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad cas values in %q", part)
			}
			out = append(out, Stmt{Kind: StmtCAS, Reg: lhs, Var: f[1], Old: old, Val: nv})
		case regIdent.MatchString(lhs):
			if !isVar(rhs) {
				return nil, fmt.Errorf("load %q: %q is not a variable", part, rhs)
			}
			out = append(out, Stmt{Kind: StmtLoad, Reg: lhs, Var: rhs})
		case isVar(lhs):
			n, err := strconv.ParseUint(rhs, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("store %q: %q is not a constant", part, rhs)
			}
			out = append(out, Stmt{Kind: StmtStore, Var: lhs, Val: n})
		default:
			return nil, fmt.Errorf("bad statement %q", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty process body")
	}
	return out, nil
}

func isVar(s string) bool {
	return varIdent.MatchString(s) && !regIdent.MatchString(s) && s != "fence" && s != "cas"
}

func parseExists(s string) ([]CondTerm, error) {
	var out []CondTerm
	for _, part := range strings.Split(s, "&") {
		part = strings.TrimSpace(part)
		lhs, rhs, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad condition term %q", part)
		}
		lhs = strings.TrimSpace(lhs)
		v, err := strconv.ParseUint(strings.TrimSpace(rhs), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad condition value in %q", part)
		}
		if proc, reg, ok := strings.Cut(lhs, "."); ok {
			m := procHead.FindStringSubmatch(proc)
			if m == nil || !regIdent.MatchString(reg) {
				return nil, fmt.Errorf("bad register term %q (want P<i>.r<j>=v)", part)
			}
			idx, _ := strconv.Atoi(m[1])
			out = append(out, CondTerm{Proc: idx, Reg: reg, Val: v})
			continue
		}
		if !isVar(lhs) {
			return nil, fmt.Errorf("bad memory term %q", part)
		}
		out = append(out, CondTerm{Proc: -1, Var: lhs, Val: v})
	}
	return out, nil
}
