package litmusdsl

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/tso"
)

// TestDPORIdentityAcrossLibrary is the litmus-level preservation bar for
// source-set DPOR: on every TSO test in the library the outcome *set*,
// verdict, Complete, and MaxOccupancy must be byte-identical to the
// unreduced exploration, sequentially and in parallel. Per-outcome
// counts are class counts under DPOR and are not compared.
func TestDPORIdentityAcrossLibrary(t *testing.T) {
	for _, src := range Library {
		tt := mustParse(t, src)
		if tt.Model == tso.ModelPSO {
			continue // rejected by Run; covered below
		}
		t.Run(tt.Name, func(t *testing.T) {
			ref, err := Run(tt, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{0, 4} {
				got, err := Run(tt, RunOptions{DPOR: true, Parallel: par})
				if err != nil {
					t.Fatal(err)
				}
				if got.Verdict != ref.Verdict || got.Complete != ref.Complete {
					t.Errorf("par=%d: verdict %q complete=%v, want %q %v",
						par, got.Verdict, got.Complete, ref.Verdict, ref.Complete)
				}
				for o := range ref.Outcomes {
					if got.Outcomes[o] == 0 {
						t.Errorf("par=%d: outcome %q lost under DPOR", par, o)
					}
				}
				for o := range got.Outcomes {
					if ref.Outcomes[o] == 0 {
						t.Errorf("par=%d: outcome %q invented under DPOR", par, o)
					}
				}
				if !reflect.DeepEqual(got.MaxOccupancy, ref.MaxOccupancy) {
					t.Errorf("par=%d: MaxOccupancy %v, want %v", par, got.MaxOccupancy, ref.MaxOccupancy)
				}
				if got.Executed > ref.Executed {
					t.Errorf("par=%d: DPOR executed %d schedules, unreduced %d",
						par, got.Executed, ref.Executed)
				}
			}
		})
	}
}

// TestDPORRunRejections pins the error paths Run mirrors from the
// exploration engine's dporCheck, so misconfiguration surfaces as an
// error rather than a panic.
func TestDPORRunRejections(t *testing.T) {
	var pso *Test
	for _, src := range Library {
		if tt := mustParse(t, src); tt.Model == tso.ModelPSO {
			pso = tt
			break
		}
	}
	if pso == nil {
		t.Fatal("library has no PSO test")
	}
	if _, err := Run(pso, RunOptions{DPOR: true}); err == nil || !strings.Contains(err.Error(), "PSO") {
		t.Errorf("DPOR on a PSO test: err = %v, want PSO rejection", err)
	}
	sb := mustParse(t, Library[0])
	if _, err := Run(sb, RunOptions{DPOR: true, MaxReorderings: 1}); err == nil || !strings.Contains(err.Error(), "reorder") {
		t.Errorf("DPOR with a reorder bound: err = %v, want reorder rejection", err)
	}
}

// TestReorderBoundPlumbing checks RunOptions.MaxReorderings reaches the
// engine: on SB a bound of 1 still reaches every outcome (each thread
// needs only one store->load reordering for the weak result) but binds —
// fewer schedules are accounted and the skip counter moves.
func TestReorderBoundPlumbing(t *testing.T) {
	sb := mustParse(t, Library[0])
	full, err := Run(sb, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Run(sb, RunOptions{MaxReorderings: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bounded.Complete || bounded.Verdict != full.Verdict {
		t.Fatalf("k=1: verdict %q complete=%v, want %q complete", bounded.Verdict, bounded.Complete, full.Verdict)
	}
	for o := range full.Outcomes {
		if bounded.Outcomes[o] == 0 {
			t.Errorf("k=1 pruned outcome %q", o)
		}
	}
	if bounded.Schedules >= full.Schedules {
		t.Errorf("k=1 did not bind: %d schedules vs %d unbounded", bounded.Schedules, full.Schedules)
	}
	if bounded.Prune.ReorderSkips == 0 {
		t.Error("k=1 binds but ReorderSkips == 0")
	}
}
