package litmusdsl

import (
	"fmt"
	"sort"

	"repro/internal/tso"
)

// Result is the outcome of running a litmus test.
type Result struct {
	Test *Test
	// Witnessed reports whether the exists condition was reached.
	Witnessed bool
	// Complete reports whether exploration covered every schedule; only
	// then is a non-witnessed condition *proved* unreachable.
	Complete bool
	// Schedules is the number of schedules accounted for. Executed is the
	// number actually run on a machine — smaller under pruning, which is
	// the point.
	Schedules int
	Executed  int
	// Outcomes tallies distinct final states (registers + condition
	// variables), rendered canonically.
	Outcomes map[string]int
	// Verdict is "allowed" if witnessed, "forbidden" if proved
	// unreachable, "unobserved" if not witnessed but exploration was
	// capped before completing.
	Verdict string
	// Witness is the event trace of one schedule reaching the condition
	// (RunOptions.Witness).
	Witness []string
	// WitnessChoices is that schedule's decision prefix, replayable with
	// tso.ReplaySchedule (RunOptions.Witness).
	WitnessChoices []int
	// MaxOccupancy is each process's high-water mark of buffered stores
	// across every explored schedule — how much of the TSO[S] bound the
	// test actually exercised.
	MaxOccupancy []int
	// Tree is the shape of the explored decision tree; Prune reports the
	// state-space reduction (zero without RunOptions.Prune).
	Tree  tso.TreeStats
	Prune tso.PruneStats
}

// Ok reports whether the verdict matches the test's expectation.
func (r Result) Ok() bool {
	if r.Test.Expect == "allowed" {
		return r.Verdict == "allowed"
	}
	return r.Verdict == "forbidden"
}

// RunOptions bounds the exploration.
type RunOptions struct {
	// MaxSchedules caps the exploration (default 2_000_000).
	MaxSchedules int
	// Witness, when the condition is reachable, re-explores to the first
	// witnessing schedule and records its event trace in Result.Witness.
	Witness bool
	// Parallel is the number of exploration workers (<= 1: sequential).
	Parallel int
	// Prune enables canonical-state memoization; outcome counts are
	// unchanged while far fewer schedules execute (tso.ExhaustiveOptions).
	Prune bool
	// SleepSets additionally prunes commuting drain orders; outcome
	// *counts* are then representative rather than exact, but the verdict,
	// Complete, and MaxOccupancy are preserved.
	SleepSets bool
	// MaxReorderings, when >= 1, restricts exploration to schedules with
	// at most that many store->load reorderings
	// (tso.ExhaustiveOptions.MaxReorderings). Zero or negative explores
	// the full schedule space. A "forbidden" verdict under a bound k
	// proves unreachability over the k-bounded schedule space only;
	// Result does not record the bound, so callers reporting a bounded
	// verdict must.
	MaxReorderings int
	// DPOR enables source-set dynamic partial-order reduction
	// (tso.ExhaustiveOptions.DPOR): one executed schedule per
	// Mazurkiewicz equivalence class. The outcome *set*, the verdict,
	// Complete, and MaxOccupancy are preserved exactly; per-outcome
	// counts collapse to one per class. Requires the TSO model and no
	// MaxReorderings (Run returns an error otherwise); Prune and
	// SleepSets are superseded and auto-disabled under it.
	DPOR bool
}

// Run explores every schedule of the test on the abstract machine and
// evaluates the exists condition against each final state.
func Run(t *Test, opts RunOptions) (Result, error) {
	if opts.MaxSchedules <= 0 {
		opts.MaxSchedules = 2_000_000
	}
	if opts.DPOR {
		// Mirror tso's dporCheck so misconfiguration surfaces as an error
		// from Run rather than a panic out of the exploration engine.
		if t.Model == tso.ModelPSO {
			return Result{}, fmt.Errorf("litmusdsl: %s: DPOR requires the TSO model, test declares PSO", t.Name)
		}
		if opts.MaxReorderings > 0 {
			return Result{}, fmt.Errorf("litmusdsl: %s: DPOR cannot combine with a reorder bound", t.Name)
		}
	}
	// Collect the variables and registers the test mentions.
	vars := map[string]bool{}
	for v := range t.Init {
		vars[v] = true
	}
	regsPerProc := make([]map[string]bool, len(t.Procs))
	for pi, p := range t.Procs {
		regsPerProc[pi] = map[string]bool{}
		for _, s := range p {
			if s.Var != "" {
				vars[s.Var] = true
			}
			if s.Reg != "" {
				regsPerProc[pi][s.Reg] = true
			}
		}
	}
	for _, c := range t.Exists {
		if c.Proc == -1 {
			vars[c.Var] = true
			continue
		}
		if c.Proc >= len(t.Procs) {
			return Result{}, fmt.Errorf("litmusdsl: condition references P%d but test has %d processes", c.Proc, len(t.Procs))
		}
		if !regsPerProc[c.Proc][c.Reg] {
			return Result{}, fmt.Errorf("litmusdsl: condition references P%d.%s which is never assigned", c.Proc, c.Reg)
		}
	}
	varNames := sortedKeys(vars)

	// Address layout: one word per variable, then one result word per
	// (proc, register), offset by +1 so "never written" is distinguishable
	// if a test reads an unassigned register. Alloc hands out addresses
	// deterministically, so the layout is computed once up front and the
	// factory below only reads it — which is what makes it safe to run on
	// the exhaustive engine's concurrent workers.
	varAddr := map[string]tso.Addr{}
	next := tso.Addr(0)
	for _, v := range varNames {
		varAddr[v] = next
		next++
	}
	regAddr := make([]map[string]tso.Addr, len(t.Procs))
	for pi := range t.Procs {
		regAddr[pi] = map[string]tso.Addr{}
		for _, r := range sortedKeys(regsPerProc[pi]) {
			regAddr[pi][r] = next
			next++
		}
	}

	mk := func(m *tso.Machine) []func(tso.Context) {
		for _, v := range varNames {
			a := m.Alloc(1)
			if a != varAddr[v] {
				panic("litmusdsl: address layout drifted from Alloc order")
			}
			m.Poke(a, t.Init[v])
		}
		for pi := range t.Procs {
			for range sortedKeys(regsPerProc[pi]) {
				m.Alloc(1)
			}
		}
		progs := make([]func(tso.Context), len(t.Procs))
		for pi := range t.Procs {
			pi := pi
			stmts := t.Procs[pi]
			progs[pi] = func(c tso.Context) {
				regs := map[string]uint64{}
				for _, s := range stmts {
					switch s.Kind {
					case StmtStore:
						c.Store(varAddr[s.Var], s.Val)
					case StmtLoad:
						regs[s.Reg] = c.Load(varAddr[s.Var])
					case StmtFence:
						c.Fence()
					case StmtCAS:
						if _, ok := c.CAS(varAddr[s.Var], s.Old, s.Val); ok {
							regs[s.Reg] = 1
						} else {
							regs[s.Reg] = 0
						}
					}
				}
				// Publish registers (+1 so zero-valued registers are
				// distinguishable from never-run); flushed at run end.
				for r, v := range regs {
					c.Store(regAddr[pi][r], v+1)
				}
			}
		}
		return progs
	}

	outcome := func(m *tso.Machine) string {
		s := ""
		for pi := range t.Procs {
			for _, r := range sortedKeys(regsPerProc[pi]) {
				s += fmt.Sprintf("P%d.%s=%d ", pi, r, m.Peek(regAddr[pi][r])-1)
			}
		}
		for _, v := range varNames {
			s += fmt.Sprintf("%s=%d ", v, m.Peek(varAddr[v]))
		}
		return s
	}

	cfg := tso.Config{Threads: len(t.Procs), BufferSize: t.SBuf, Model: t.Model}
	set, eres := tso.ExploreExhaustive(cfg, mk, outcome, tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxRuns: opts.MaxSchedules},
		Parallel:       opts.Parallel,
		Prune:          opts.Prune,
		SleepSets:      opts.SleepSets,
		MaxReorderings: opts.MaxReorderings,
		DPOR:           opts.DPOR,
	})

	res := Result{Test: t, Complete: eres.Complete, Schedules: set.Total(), Executed: eres.Runs,
		Outcomes: set.Counts, MaxOccupancy: set.MaxOccupancy, Tree: eres.Tree, Prune: eres.Prune}
	for o := range set.Counts {
		if condHolds(t, o) {
			res.Witnessed = true
		}
	}
	switch {
	case res.Witnessed:
		res.Verdict = "allowed"
	case res.Complete:
		res.Verdict = "forbidden"
	default:
		res.Verdict = "unobserved"
	}

	if res.Witnessed && opts.Witness {
		// Re-explore deterministically with a tracer attached; the first
		// witnessing schedule appears at the same position, so the search
		// is bounded by the exploration that already ran.
		var tr *tso.RingTracer
		mkTraced := func(m *tso.Machine) []func(tso.Context) {
			tr = tso.NewRingTracer(4096)
			m.SetTracer(tr)
			return mk(m)
		}
		tso.ExploreWithChoices(cfg, mkTraced, tso.ExploreOptions{MaxRuns: opts.MaxSchedules},
			func(m *tso.Machine, err error, choices []int) bool {
				if err == nil && condHolds(t, outcome(m)) {
					for _, e := range tr.Events() {
						res.Witness = append(res.Witness, e.String())
					}
					res.WitnessChoices = append([]int(nil), choices...)
					return true
				}
				return false
			})
	}
	return res, nil
}

// condHolds evaluates the conjunction against a rendered outcome.
func condHolds(t *Test, outcome string) bool {
	fields := map[string]string{}
	for _, f := range splitFields(outcome) {
		if k, v, ok := cut(f, "="); ok {
			fields[k] = v
		}
	}
	for _, c := range t.Exists {
		var key string
		if c.Proc == -1 {
			key = c.Var
		} else {
			key = fmt.Sprintf("P%d.%s", c.Proc, c.Reg)
		}
		if fields[key] != fmt.Sprintf("%d", c.Val) {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func splitFields(s string) []string {
	var out []string
	cur := ""
	for _, ch := range s {
		if ch == ' ' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(ch)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func cut(s, sep string) (string, string, bool) {
	for i := 0; i+len(sep) <= len(s); i++ {
		if s[i:i+len(sep)] == sep {
			return s[:i], s[i+len(sep):], true
		}
	}
	return s, "", false
}
