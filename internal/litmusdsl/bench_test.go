package litmusdsl

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkExplore measures exhaustive exploration of the litmus library
// under the engine's scalability knobs: the sequential reference engine,
// the parallel frontier, canonical-state pruning, and both combined.
// Regenerate results/explore_bench.txt with:
//
//	go test ./internal/litmusdsl/ -run - -bench BenchmarkExplore -benchtime 2x
//
// The interesting metric is schedules-accounted per schedule-executed
// (reported as sched/run): pruning proves the same tree with a fraction of
// the machine runs, and the parallel frontier spreads the remainder over
// cores.
func BenchmarkExplore(b *testing.B) {
	variants := []struct {
		name string
		opts RunOptions
	}{
		{"seq", RunOptions{}},
		{"par", RunOptions{Parallel: runtime.NumCPU()}},
		{"prune", RunOptions{Prune: true}},
		{"par+prune", RunOptions{Parallel: runtime.NumCPU(), Prune: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var schedules, executed int64
			for i := 0; i < b.N; i++ {
				schedules, executed = 0, 0
				for _, src := range Library {
					t, err := Parse(src)
					if err != nil {
						b.Fatal(err)
					}
					res, err := Run(t, v.opts)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Complete {
						b.Fatalf("%s: incomplete", t.Name)
					}
					schedules += int64(res.Schedules)
					executed += int64(res.Executed)
				}
			}
			b.ReportMetric(float64(schedules), "sched")
			b.ReportMetric(float64(executed), "runs")
			b.ReportMetric(float64(schedules)/float64(executed), "sched/run")
		})
	}
}

// BenchmarkExploreIRIW isolates the engine's headline case: the 4-thread
// IRIW tree (~9.6M schedules), intractable for the sequential engine's
// default budget, fully proved by the pruned engine in a few thousand runs.
func BenchmarkExploreIRIW(b *testing.B) {
	src := `name: IRIW
model: TSO
sbuf: 1
P0: x=1
P1: y=1
P2: r0=x; r1=y
P3: r2=y; r3=x
exists: P2.r0=1 & P2.r1=0 & P3.r2=1 & P3.r3=0
expect: forbidden`
	for _, par := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("prune/par=%d", par), func(b *testing.B) {
			t, err := Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := Run(t, RunOptions{MaxSchedules: 1 << 20, Prune: true, Parallel: par})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Complete {
					b.Fatal("incomplete")
				}
			}
		})
	}
}
