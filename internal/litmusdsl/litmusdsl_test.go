package litmusdsl

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/tso"
)

func mustParse(t *testing.T, src string) *Test {
	t.Helper()
	tt, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestParseSB(t *testing.T) {
	tt := mustParse(t, Library[0])
	if tt.Name != "SB" || tt.Model != tso.ModelTSO || tt.SBuf != 2 {
		t.Fatalf("header: %+v", tt)
	}
	if len(tt.Procs) != 2 || len(tt.Procs[0]) != 2 {
		t.Fatalf("procs: %+v", tt.Procs)
	}
	if tt.Procs[0][0].Kind != StmtStore || tt.Procs[0][0].Var != "x" || tt.Procs[0][0].Val != 1 {
		t.Fatalf("stmt 0: %+v", tt.Procs[0][0])
	}
	if tt.Procs[0][1].Kind != StmtLoad || tt.Procs[0][1].Reg != "r0" || tt.Procs[0][1].Var != "y" {
		t.Fatalf("stmt 1: %+v", tt.Procs[0][1])
	}
	if len(tt.Exists) != 2 || tt.Exists[0].Proc != 0 || tt.Exists[0].Reg != "r0" {
		t.Fatalf("exists: %+v", tt.Exists)
	}
	if tt.Expect != "allowed" {
		t.Fatalf("expect: %q", tt.Expect)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no-name":      "P0: x=1\nexists: x=1",
		"no-procs":     "name: t\nexists: x=1",
		"no-exists":    "name: t\nP0: x=1",
		"bad-model":    "name: t\nmodel: ARM\nP0: x=1\nexists: x=1",
		"bad-stmt":     "name: t\nP0: x+1\nexists: x=1",
		"bad-load":     "name: t\nP0: r0=5\nexists: x=1",
		"bad-cond":     "name: t\nP0: x=1\nexists: P0.q=1",
		"bad-cas":      "name: t\nP0: r0=cas x 1\nexists: x=1",
		"gap-in-procs": "name: t\nP0: x=1\nP2: y=1\nexists: x=1",
		"dup-proc":     "name: t\nP0: x=1\nP0: y=1\nexists: x=1",
		"bad-expect":   "name: t\nP0: x=1\nexists: x=1\nexpect: maybe",
		"unknown-reg":  "name: t\nP0: x=1\nexists: P0.r9=1",
		"bad-key":      "name: t\nfoo: bar\nP0: x=1\nexists: x=1",
	}
	for label, src := range cases {
		if _, err := Parse(src); err == nil {
			if label == "unknown-reg" {
				// caught at Run time, not parse time
				tt := mustParse(t, src)
				if _, err := Run(tt, RunOptions{}); err == nil {
					t.Errorf("%s: accepted", label)
				}
				continue
			}
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestParseComments(t *testing.T) {
	tt := mustParse(t, "name: c\n# full comment\nP0: x=1 # trailing\nexists: x=1\n")
	if len(tt.Procs[0]) != 1 {
		t.Fatalf("procs: %+v", tt.Procs)
	}
}

// TestLibraryVerdicts is the validation matrix: every classic litmus test
// in the library must produce its literature verdict on the abstract
// machine, exhaustively.
func TestLibraryVerdicts(t *testing.T) {
	for _, src := range Library {
		tt := mustParse(t, src)
		t.Run(tt.Name, func(t *testing.T) {
			res, err := Run(tt, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete {
				t.Fatalf("exploration incomplete after %d schedules", res.Schedules)
			}
			if !res.Ok() {
				t.Fatalf("verdict %q want %q (outcomes: %v)", res.Verdict, tt.Expect, res.Outcomes)
			}
		})
	}
}

func TestRunReportsOutcomes(t *testing.T) {
	tt := mustParse(t, Library[0]) // SB
	res, err := Run(tt, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 4 {
		t.Fatalf("SB outcomes = %d want 4: %v", len(res.Outcomes), res.Outcomes)
	}
	for o := range res.Outcomes {
		if !strings.Contains(o, "P0.r0=") || !strings.Contains(o, "x=") {
			t.Fatalf("outcome rendering: %q", o)
		}
	}
}

func TestInitValuesRespected(t *testing.T) {
	tt := mustParse(t, `name: init
init: x=7
P0: r0=x
exists: P0.r0=7
expect: allowed`)
	res, err := Run(tt, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("init not applied: %v", res.Outcomes)
	}
}

func TestCASStatement(t *testing.T) {
	tt := mustParse(t, `name: cas
P0: r0=cas x 0 5
P1: r1=cas x 0 6
exists: P0.r0=1 & P1.r1=1
expect: forbidden`)
	res, err := Run(tt, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("two CASes on one location both succeeded: %v", res.Outcomes)
	}
}

func TestUnobservedVerdictUnderCap(t *testing.T) {
	tt := mustParse(t, Library[1]) // SB+fences, forbidden
	res, err := Run(tt, RunOptions{MaxSchedules: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("3-schedule cap claimed completeness")
	}
	if res.Verdict != "unobserved" {
		t.Fatalf("verdict %q want unobserved", res.Verdict)
	}
	if res.Ok() {
		t.Fatal("unobserved must not satisfy a forbidden expectation")
	}
}

func TestWitnessExtraction(t *testing.T) {
	tt := mustParse(t, Library[0]) // SB, allowed
	res, err := Run(tt, RunOptions{Witness: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Witnessed || len(res.Witness) == 0 {
		t.Fatalf("no witness recorded (witnessed=%v)", res.Witnessed)
	}
	// The witness must contain both stores and both loads, with each load
	// happening before the corresponding remote drain (that is what makes
	// the outcome r0=r1=0 possible); at minimum check the events exist.
	joined := strings.Join(res.Witness, "\n")
	for _, want := range []string{"store", "load", "drain"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("witness missing %q:\n%s", want, joined)
		}
	}
	if len(res.WitnessChoices) == 0 {
		t.Fatal("witness recorded without its schedule choices")
	}
}

func TestNoWitnessChoicesForForbidden(t *testing.T) {
	tt := mustParse(t, Library[3]) // MP, forbidden
	res, err := Run(tt, RunOptions{Witness: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WitnessChoices) != 0 {
		t.Fatalf("forbidden test produced witness choices: %v", res.WitnessChoices)
	}
}

func TestNoWitnessForForbidden(t *testing.T) {
	tt := mustParse(t, Library[3]) // MP, forbidden
	res, err := Run(tt, RunOptions{Witness: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Witness) != 0 {
		t.Fatalf("forbidden test produced a witness: %v", res.Witness)
	}
}

func TestIRIWForbiddenUnderTSO(t *testing.T) {
	// Independent reads of independent writes: x86-TSO stores are
	// multi-copy atomic, so the two readers cannot disagree on the order
	// of the two writes. Four threads; kept out of the default Library to
	// bound litmustool's default runtime, proved here instead.
	tt := mustParse(t, `name: IRIW
model: TSO
sbuf: 1
P0: x=1
P1: y=1
P2: r0=x; r1=y
P3: r2=y; r3=x
exists: P2.r0=1 & P2.r1=0 & P3.r2=1 & P3.r3=0
expect: forbidden`)
	// The 4-thread decision tree (~9.6M schedules) used to be far beyond a
	// unit test's budget, so this was a bounded could-not-witness check.
	// With canonical-state pruning the whole tree collapses to a few
	// thousand executed runs and the verdict becomes a *proof*.
	res, err := Run(tt, RunOptions{MaxSchedules: 1 << 20, Prune: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("IRIW exploration incomplete: %d executed of budget (prune: %+v)", res.Executed, res.Prune)
	}
	if !res.Ok() {
		t.Fatalf("IRIW outcome witnessed: the machine is not multi-copy atomic (outcomes: %v)", res.Outcomes)
	}
	if res.Executed >= res.Schedules/100 {
		t.Fatalf("pruning ineffective: %d runs executed for %d schedules", res.Executed, res.Schedules)
	}
	t.Logf("IRIW proved forbidden: %d schedules via %d executed runs (%d states deduped, %d schedules saved)",
		res.Schedules, res.Executed, res.Prune.StatesDeduped, res.Prune.SchedulesSaved)
}

// TestEngineEquivalenceAcrossLibrary is the acceptance bar for the
// exhaustive engine: for every litmus test in the library, parallel+pruned
// exploration must produce byte-identical outcome counts, the same
// completeness, and the same occupancy high-water marks as the sequential
// reference engine.
func TestEngineEquivalenceAcrossLibrary(t *testing.T) {
	for _, src := range Library {
		tt := mustParse(t, src)
		t.Run(tt.Name, func(t *testing.T) {
			ref, err := Run(tt, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, opts := range []RunOptions{
				{Prune: true},
				{Parallel: 4},
				{Parallel: 4, Prune: true},
			} {
				got, err := Run(tt, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got.Complete != ref.Complete {
					t.Errorf("par=%d prune=%v: complete=%v, reference %v", opts.Parallel, opts.Prune, got.Complete, ref.Complete)
				}
				if !reflect.DeepEqual(got.Outcomes, ref.Outcomes) {
					t.Errorf("par=%d prune=%v: outcome counts diverge:\n got %v\nwant %v",
						opts.Parallel, opts.Prune, got.Outcomes, ref.Outcomes)
				}
				if !reflect.DeepEqual(got.MaxOccupancy, ref.MaxOccupancy) {
					t.Errorf("par=%d prune=%v: MaxOccupancy %v, want %v",
						opts.Parallel, opts.Prune, got.MaxOccupancy, ref.MaxOccupancy)
				}
				if got.Verdict != ref.Verdict {
					t.Errorf("par=%d prune=%v: verdict %q, want %q", opts.Parallel, opts.Prune, got.Verdict, ref.Verdict)
				}
			}
			// Sleep sets only preserve the outcome *support* and verdict.
			slept, err := Run(tt, RunOptions{Prune: true, SleepSets: true})
			if err != nil {
				t.Fatal(err)
			}
			if slept.Verdict != ref.Verdict || slept.Complete != ref.Complete {
				t.Errorf("sleep sets: verdict %q complete=%v, want %q %v",
					slept.Verdict, slept.Complete, ref.Verdict, ref.Complete)
			}
			for o := range ref.Outcomes {
				if slept.Outcomes[o] == 0 {
					t.Errorf("sleep sets lost outcome %q", o)
				}
			}
			for o := range slept.Outcomes {
				if ref.Outcomes[o] == 0 {
					t.Errorf("sleep sets invented outcome %q", o)
				}
			}
			if !reflect.DeepEqual(slept.MaxOccupancy, ref.MaxOccupancy) {
				t.Errorf("sleep sets: MaxOccupancy %v, want %v", slept.MaxOccupancy, ref.MaxOccupancy)
			}
		})
	}
}
